module Graph = Aig.Graph

let check = Alcotest.(check bool)

let sample_graph () =
  let g = Graph.create ~name:"sample" () in
  let a = Graph.add_pi ~name:"a" g in
  let b = Graph.add_pi ~name:"b" g in
  let c = Graph.add_pi ~name:"c" g in
  let ab = Graph.and_ g a (Graph.lit_not b) in
  let y = Aig.Builder.xor g ab c in
  ignore (Graph.add_po ~name:"y" g y);
  ignore (Graph.add_po ~name:"z" g (Graph.lit_not ab));
  ignore (Graph.add_po ~name:"k0" g Graph.const0);
  ignore (Graph.add_po ~name:"k1" g Graph.const1);
  g

let test_blif_roundtrip () =
  let g = sample_graph () in
  let text = Circuit_io.Blif.graph_to_string g in
  let g' = Circuit_io.Blif.parse text in
  check "same PI count" true (Graph.num_pis g' = Graph.num_pis g);
  check "same PO count" true (Graph.num_pos g' = Graph.num_pos g);
  check "equivalent" true (Util.equivalent g g')

let prop_blif_roundtrip =
  QCheck.Test.make ~name:"blif roundtrip on random graphs" ~count:30
    QCheck.(make Gen.(int_range 0 100000))
    (fun seed ->
      let rng = Logic.Rng.create seed in
      let g = Util.random_graph rng ~npis:5 ~nands:30 in
      Util.equivalent g (Circuit_io.Blif.parse (Circuit_io.Blif.graph_to_string g)))

let test_blif_out_of_order () =
  (* .names sections referencing signals defined later. *)
  let text =
    ".model weird\n.inputs a b\n.outputs y\n.names t y\n1 1\n.names a b t\n11 1\n.end\n"
  in
  let g = Circuit_io.Blif.parse text in
  check "a&b" true
    ((Util.eval_naive g [| true; true |]).(0)
    && not (Util.eval_naive g [| true; false |]).(0))

let test_blif_off_set_cover () =
  (* Output column 0: the OFF-set is given, function is its complement. *)
  let text = ".model m\n.inputs a\n.outputs y\n.names a y\n1 0\n.end\n" in
  let g = Circuit_io.Blif.parse text in
  check "y = !a" true
    ((Util.eval_naive g [| false |]).(0) && not (Util.eval_naive g [| true |]).(0))

let test_blif_multi_cube () =
  let text =
    ".model m\n.inputs a b c\n.outputs y\n.names a b c y\n11- 1\n--1 1\n.end\n"
  in
  let g = Circuit_io.Blif.parse text in
  for m = 0 to 7 do
    let inputs = Util.bools_of_int m 3 in
    let expected = (inputs.(0) && inputs.(1)) || inputs.(2) in
    check "ab + c" expected (Util.eval_naive g inputs).(0)
  done

let test_blif_rejects_latch () =
  Alcotest.check_raises "latch" (Failure "blif:4: unsupported BLIF construct .latch")
    (fun () ->
      ignore
        (Circuit_io.Blif.parse ".model m\n.inputs a\n.outputs y\n.latch a y\n.end\n"))

let test_blif_rejects_loop () =
  let text = ".model m\n.inputs a\n.outputs y\n.names y a y\n11 1\n.end\n" in
  Alcotest.check_raises "loop" (Failure "blif: combinational loop through y") (fun () ->
      ignore (Circuit_io.Blif.parse text))

let test_blif_undefined_signal () =
  Alcotest.check_raises "undefined" (Failure "blif: undefined signal ghost") (fun () ->
      ignore (Circuit_io.Blif.parse ".model m\n.inputs a\n.outputs ghost\n.end\n"))

let test_bench_roundtrip () =
  let g = sample_graph () in
  let g' = Circuit_io.Bench_fmt.parse (Circuit_io.Bench_fmt.graph_to_string g) in
  check "equivalent" true (Util.equivalent g g')

let prop_bench_roundtrip =
  QCheck.Test.make ~name:"bench roundtrip on random graphs" ~count:30
    QCheck.(make Gen.(int_range 0 100000))
    (fun seed ->
      let rng = Logic.Rng.create seed in
      let g = Util.random_graph rng ~npis:5 ~nands:30 in
      Util.equivalent g (Circuit_io.Bench_fmt.parse (Circuit_io.Bench_fmt.graph_to_string g)))

let test_bench_gates () =
  let text =
    "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nt = NAND(a, b)\nu = XOR(a, b)\ny = OR(t, u)\n"
  in
  let g = Circuit_io.Bench_fmt.parse text in
  for m = 0 to 3 do
    let inputs = Util.bools_of_int m 2 in
    let expected =
      (not (inputs.(0) && inputs.(1))) || inputs.(0) <> inputs.(1)
    in
    check "nand|xor" expected (Util.eval_naive g inputs).(0)
  done

let test_mapped_blif_parses_back () =
  let g = sample_graph () in
  let mapped = Techmap.Lutmap.run g in
  let text = Circuit_io.Blif.mapped_to_string mapped in
  let g' = Circuit_io.Blif.parse text in
  check "mapped blif equivalent to source" true (Util.equivalent g g')

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_verilog_output () =
  let g = sample_graph () in
  let text = Circuit_io.Verilog.graph_to_string g in
  check "has module" true (contains text "module sample");
  let mapped = Techmap.Cellmap.run g in
  let vtext = Circuit_io.Verilog.mapped_to_string mapped in
  check "mapped verilog has endmodule" true (contains vtext "endmodule");
  check "mapped verilog has assigns" true (contains vtext "assign")

let test_dot_output () =
  let g = sample_graph () in
  let text = Circuit_io.Dot.graph_to_string g in
  check "digraph" true (String.sub text 0 7 = "digraph");
  check "dashed complement edges" true (contains text "style=dashed")

let test_file_roundtrip () =
  let g = sample_graph () in
  let path = Filename.temp_file "alsrac" ".blif" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Circuit_io.Blif.write_graph path g;
      check "file parse" true (Util.equivalent g (Circuit_io.Blif.read path)))

(* ---------- AIGER ---------- *)

let test_aiger_roundtrip () =
  let g = sample_graph () in
  let g' = Circuit_io.Aiger.parse (Circuit_io.Aiger.graph_to_string g) in
  check "equivalent" true (Util.equivalent g g');
  Alcotest.(check string) "pi name preserved" "a" (Graph.pi_name g' 0);
  Alcotest.(check string) "po name preserved" "y" (Graph.po_name g' 0)

let prop_aiger_roundtrip =
  QCheck.Test.make ~name:"aiger roundtrip on random graphs" ~count:30
    QCheck.(make Gen.(int_range 0 100000))
    (fun seed ->
      let rng = Logic.Rng.create seed in
      let g = Util.random_graph rng ~npis:5 ~nands:30 in
      Util.equivalent g (Circuit_io.Aiger.parse (Circuit_io.Aiger.graph_to_string g)))

let test_aiger_rejects_binary () =
  Alcotest.check_raises "binary aig"
    (Failure "aiger:1: only the ASCII (aag) variant is supported") (fun () ->
      ignore (Circuit_io.Aiger.parse "aig 3 1 0 1 1
"))

let test_aiger_rejects_latches () =
  Alcotest.check_raises "latches" (Failure "aiger:1: latches are not supported")
    (fun () -> ignore (Circuit_io.Aiger.parse "aag 3 1 1 1 0
2
4 2
4
"))

(* ---------- Hostile input ---------- *)

(* A parser fed a corrupted stream must either produce a graph or raise
   [Failure] — nothing else may escape, and it must not allocate
   proportionally to counts a hostile header merely claims. *)
let only_failure name parse text =
  match parse text with
  | (_ : Graph.t) -> ()
  | exception Failure _ -> ()
  | exception e ->
      Alcotest.failf "%s leaked %s on %S" name (Printexc.to_string e) text

let test_aiger_hostile_header () =
  (* A billion declared ANDs backed by four lines of text: must fail fast
     with a line-numbered Failure, before any table is allocated. *)
  let bomb = "aag 1000000000 1 0 1 999999998\n2\n2\n4 2 2\n" in
  (match Circuit_io.Aiger.parse bomb with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg ->
      check "line-numbered" true (String.length msg >= 8 && String.sub msg 0 8 = "aiger:1:"));
  List.iter
    (only_failure "aiger" Circuit_io.Aiger.parse)
    [
      "";
      "aag 3 -1 0 1 1\n";            (* negative count *)
      "aag 5 2 0 2 3\n2\n4\n";        (* declares more than present *)
      "aag 99 2 0 1 2\n2\n4\n6\n6 2 4\n8 6 2\n" (* m exceeds definitions *);
      "aag 3 1 0 1 1\n2\n6\n6 99 2\n" (* literal out of range *);
      "aag 3 1 0 1 1\n2\n6\n2 2 2\n"  (* redefines an input *);
      "aag 2 1 0 1 1\n2\n4\n4 4 2\n"  (* AND depends on itself *);
    ]

let test_blif_hostile_input () =
  List.iter
    (only_failure "blif" Circuit_io.Blif.parse)
    [
      "";
      ".model m\n.inputs a\n.outputs y\n.names a y\n";
      ".model m\n.outputs y\n.names y\n11 1\n.end\n";
      ".model m\n.inputs a\n.outputs y\n.names a y\nxx 1\n.end\n";
    ]

(* Dropping any single character from well-formed text must never make the
   parser throw anything but [Failure].  (Most drops still parse — AIGER
   symbol tables are free-form — the point is what escapes when they don't.) *)
let truncation_prop name to_string parse =
  QCheck.Test.make ~name ~count:40
    QCheck.(make Gen.(int_range 0 100000))
    (fun seed ->
      let rng = Logic.Rng.create seed in
      let g = Util.random_graph rng ~npis:4 ~nands:12 in
      let text = to_string g in
      let n = String.length text in
      for i = 0 to n - 1 do
        let cut = String.sub text 0 i ^ String.sub text (i + 1) (n - i - 1) in
        only_failure name parse cut
      done;
      (* Byte-level truncation, as a torn write would leave behind. *)
      for keep = 0 to min 80 n do
        only_failure name parse (String.sub text 0 keep)
      done;
      true)

let prop_aiger_truncation =
  truncation_prop "aiger survives single-char corruption"
    Circuit_io.Aiger.graph_to_string Circuit_io.Aiger.parse

let prop_blif_truncation =
  truncation_prop "blif survives single-char corruption"
    Circuit_io.Blif.graph_to_string Circuit_io.Blif.parse

let test_atomic_write_replaces () =
  let path = Filename.temp_file "alsrac_atomic" ".txt" in
  Circuit_io.Atomic_file.write path "first";
  check "write" true (Circuit_io.Atomic_file.read path = "first");
  Circuit_io.Atomic_file.write path "second, longer than the first";
  check "replace" true (Circuit_io.Atomic_file.read path = "second, longer than the first");
  (* No temp litter left next to the target. *)
  let dir = Filename.dirname path and base = Filename.basename path in
  let litter =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > String.length base
           && String.sub f 0 (String.length base) = base)
  in
  check "no temp files left behind" true (litter = []);
  Sys.remove path

let test_aiger_known_file () =
  (* The canonical half-adder example: s = a^b, c = a&b. *)
  let text =
    "aag 5 2 0 2 3
2
4
10
6
6 2 4
8 3 5
10 7 9
i0 a
i1 b
o0 s
o1 c
"
  in
  let g = Circuit_io.Aiger.parse text in
  for m = 0 to 3 do
    let inputs = Util.bools_of_int m 2 in
    let out = Util.eval_naive g inputs in
    check "sum" (inputs.(0) <> inputs.(1)) out.(0);
    check "carry" (inputs.(0) && inputs.(1)) out.(1)
  done

let () =
  Alcotest.run "io"
    [
      ( "blif",
        [
          Alcotest.test_case "roundtrip" `Quick test_blif_roundtrip;
          Alcotest.test_case "out of order" `Quick test_blif_out_of_order;
          Alcotest.test_case "off-set cover" `Quick test_blif_off_set_cover;
          Alcotest.test_case "multi cube" `Quick test_blif_multi_cube;
          Alcotest.test_case "rejects latch" `Quick test_blif_rejects_latch;
          Alcotest.test_case "rejects loop" `Quick test_blif_rejects_loop;
          Alcotest.test_case "undefined signal" `Quick test_blif_undefined_signal;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "mapped netlist" `Quick test_mapped_blif_parses_back;
        ]
        @ Util.qcheck_cases [ prop_blif_roundtrip ] );
      ( "bench",
        [
          Alcotest.test_case "roundtrip" `Quick test_bench_roundtrip;
          Alcotest.test_case "gate zoo" `Quick test_bench_gates;
        ]
        @ Util.qcheck_cases [ prop_bench_roundtrip ] );
      ( "aiger",
        [
          Alcotest.test_case "roundtrip" `Quick test_aiger_roundtrip;
          Alcotest.test_case "rejects binary" `Quick test_aiger_rejects_binary;
          Alcotest.test_case "rejects latches" `Quick test_aiger_rejects_latches;
          Alcotest.test_case "half adder" `Quick test_aiger_known_file;
        ]
        @ Util.qcheck_cases [ prop_aiger_roundtrip ] );
      ( "hostile",
        [
          Alcotest.test_case "aiger hostile header" `Quick test_aiger_hostile_header;
          Alcotest.test_case "blif hostile input" `Quick test_blif_hostile_input;
          Alcotest.test_case "atomic write" `Quick test_atomic_write_replaces;
        ]
        @ Util.qcheck_cases [ prop_aiger_truncation; prop_blif_truncation ] );
      ( "verilog-dot",
        [
          Alcotest.test_case "verilog" `Quick test_verilog_output;
          Alcotest.test_case "dot" `Quick test_dot_output;
        ] );
    ]
