module Bitvec = Logic.Bitvec
module Graph = Aig.Graph
module Metrics = Errest.Metrics

let check = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let vec s = Bitvec.of_string s

(* ---------- Metrics on hand-built signatures ---------- *)

let test_er_basic () =
  (* 8 rounds, 2 POs; rounds 1 and 5 differ. *)
  let golden = [| vec "01010101"; vec "00110011" |] in
  let approx = [| vec "00010001"; vec "00110011" |] in
  check_float "er" 0.25 (Metrics.er ~golden ~approx)

let test_er_zero_on_equal () =
  let golden = [| vec "0110"; vec "1010" |] in
  check_float "zero" 0.0 (Metrics.er ~golden ~approx:golden)

let test_output_values () =
  (* PO 0 = LSB.  Round 0: 1,0 -> 1.  Round 1: 0,1 -> 2.  Round 2: 1,1 -> 3. *)
  let pos = [| vec "101"; vec "011" |] in
  Alcotest.(check (array int)) "decode" [| 1; 2; 3 |] (Metrics.output_values pos)

let test_mean_ed () =
  let golden = [| vec "10"; vec "01" |] in
  (* values 1, 2 *)
  let approx = [| vec "01"; vec "01" |] in
  (* values 0, 3 *)
  check_float "mean |d|" 1.0 (Metrics.mean_ed ~golden ~approx)

let test_nmed () =
  let golden = [| vec "10"; vec "01" |] in
  let approx = [| vec "01"; vec "01" |] in
  (* mean ED 1.0 over maxval 3. *)
  check_float "nmed" (1.0 /. 3.0) (Metrics.nmed ~golden ~approx)

let test_mred () =
  let golden = [| vec "10"; vec "01" |] in
  (* 1, 2 *)
  let approx = [| vec "00"; vec "01" |] in
  (* 0, 2 *)
  (* |1-0|/1 = 1; |2-2|/2 = 0 -> mean 0.5 *)
  check_float "mred" 0.5 (Metrics.mred ~golden ~approx)

let test_mred_zero_guard () =
  let golden = [| vec "0" |] in
  (* correct value 0: denominator max(0,1)=1. *)
  let approx = [| vec "1" |] in
  check_float "division guard" 1.0 (Metrics.mred ~golden ~approx)

let test_shape_mismatch () =
  Alcotest.check_raises "po count" (Invalid_argument "Metrics: PO count mismatch")
    (fun () -> ignore (Metrics.er ~golden:[| vec "0" |] ~approx:[||]))

(* ---------- compare_graphs / evaluate ---------- *)

let test_compare_graphs_exact () =
  (* approx = original with one PO inverted: er = 1. *)
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g in
  ignore (Graph.add_po g (Graph.and_ g a b));
  let h = Graph.create () in
  let a' = Graph.add_pi h and b' = Graph.add_pi h in
  ignore (Graph.add_po h (Graph.lit_not (Graph.and_ h a' b')));
  let pats = Sim.Patterns.exhaustive ~npis:2 in
  check_float "always wrong" 1.0 (Metrics.compare_graphs Metrics.Er ~original:g ~approx:h pats)

let test_evaluate_known_er () =
  (* approx of AND2 by constant 0: wrong only on input 11 -> ER 0.25. *)
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g in
  ignore (Graph.add_po g (Graph.and_ g a b));
  let h = Graph.create () in
  ignore (Graph.add_pi h);
  ignore (Graph.add_pi h);
  ignore (Graph.add_po h Graph.const0);
  check_float "er 1/4" 0.25 (Metrics.evaluate Metrics.Er ~original:g ~approx:h)

(* ---------- Observability ---------- *)

let test_observability_tree_exact () =
  (* On a fanout-free tree the backward masks are exact: compare against
     flip-and-resimulate. *)
  let rng = Logic.Rng.create 17 in
  for _ = 1 to 10 do
    (* Build a random tree: every node used exactly once. *)
    let g = Graph.create () in
    let pool = ref (List.init 8 (fun _ -> Graph.add_pi g)) in
    while List.length !pool > 1 do
      match !pool with
      | a :: b :: rest ->
          let a = if Logic.Rng.bool rng then Graph.lit_not a else a in
          let b = if Logic.Rng.bool rng then Graph.lit_not b else b in
          pool := rest @ [ Graph.and_ g a b ]
      | _ -> assert false
    done;
    ignore (Graph.add_po g (List.hd !pool));
    let pats = Sim.Patterns.exhaustive ~npis:8 in
    let sigs = Sim.Engine.simulate g pats in
    let obs = Errest.Observability.masks g ~sigs in
    Graph.iter_ands g (fun id ->
        let tfo = Aig.Cone.tfo_mask g id in
        let flipped = Bitvec.lognot sigs.(id) in
        let pos = Sim.Engine.resimulate_tfo g ~base:sigs ~tfo ~node:id ~value:flipped in
        let golden = Sim.Engine.po_values g sigs in
        let diff = Bitvec.create (Bitvec.length flipped) in
        Array.iteri
          (fun i p -> Bitvec.logor_inplace diff (Bitvec.logxor p golden.(i)))
          pos;
        check "tree observability exact" true (Bitvec.equal diff obs.(id)))
  done

let test_observability_po_drivers_full () =
  (* A PO driver is always fully observable, and the heuristic should agree
     with exact propagation on a clear majority of (node, round) pairs even
     under reconvergence. *)
  let rng = Logic.Rng.create 23 in
  for _ = 1 to 10 do
    let g = Util.random_graph rng ~npis:6 ~nands:30 in
    let pats = Sim.Patterns.exhaustive ~npis:6 in
    let sigs = Sim.Engine.simulate g pats in
    let obs = Errest.Observability.masks g ~sigs in
    Graph.iter_pos g (fun _ l ->
        let id = Graph.node_of l in
        if not (Graph.is_const id) then
          check "po driver fully observable" true (Bitvec.is_ones obs.(id)));
    let golden = Sim.Engine.po_values g sigs in
    let agree = ref 0 and total = ref 0 in
    Graph.iter_ands g (fun id ->
        let tfo = Aig.Cone.tfo_mask g id in
        let flipped = Bitvec.lognot sigs.(id) in
        let pos = Sim.Engine.resimulate_tfo g ~base:sigs ~tfo ~node:id ~value:flipped in
        let diff = Bitvec.create (Bitvec.length flipped) in
        Array.iteri (fun i p -> Bitvec.logor_inplace diff (Bitvec.logxor p golden.(i))) pos;
        total := !total + Bitvec.length diff;
        agree := !agree + (Bitvec.length diff - Bitvec.hamming diff obs.(id)));
    if !total > 0 then
      check "heuristic mostly agrees with exact" true
        (float_of_int !agree /. float_of_int !total > 0.8)
  done

(* ---------- Batch ---------- *)

let prop_batch_equals_rebuild =
  QCheck.Test.make ~name:"batch candidate error equals rebuilt-circuit error"
    ~count:30
    QCheck.(make Gen.(int_range 0 100000))
    (fun seed ->
      let rng = Logic.Rng.create seed in
      let g = Util.random_graph rng ~npis:5 ~nands:40 in
      if Graph.num_ands g = 0 then true
      else begin
        let pats = Sim.Patterns.exhaustive ~npis:5 in
        let golden = Sim.Engine.simulate_pos g pats in
        let base = Sim.Engine.simulate g pats in
        let batch = Errest.Batch.create g ~metric:Metrics.Er ~golden ~base in
        (* Candidate: substitute a random AND node by an earlier literal. *)
        let ands = ref [] in
        Graph.iter_ands g (fun id -> ands := id :: !ands);
        let arr = Array.of_list !ands in
        let v = arr.(Logic.Rng.int rng (Array.length arr)) in
        let s = 1 + Logic.Rng.int rng (max 1 (v - 1)) in
        let compl = Logic.Rng.bool rng in
        let new_sig = if compl then Bitvec.lognot base.(s) else Bitvec.copy base.(s) in
        let fast = Errest.Batch.candidate_error batch ~node:v ~new_sig in
        let rebuilt =
          Graph.rebuild
            ~replace:(fun id ->
              if id = v then Some (Graph.Replace_lit (Graph.make_lit s compl)) else None)
            g
        in
        let slow = Metrics.compare_graphs Metrics.Er ~original:g ~approx:rebuilt pats in
        (* The rebuilt comparison is against g itself (golden = g's outputs). *)
        Float.abs (fast -. slow) < 1e-9
      end)

let test_batch_base_error_zero () =
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g in
  ignore (Graph.add_po g (Graph.and_ g a b));
  let pats = Sim.Patterns.exhaustive ~npis:2 in
  let golden = Sim.Engine.simulate_pos g pats in
  let base = Sim.Engine.simulate g pats in
  let batch = Errest.Batch.create g ~metric:Metrics.Er ~golden ~base in
  check_float "no change, no error" 0.0 (Errest.Batch.base_error batch)

(* ---------- Differential oracle: event-driven kernel vs full resim ----------

   The event-driven kernel (sparse frontier + difference-mask early exit +
   incremental metric deltas) must return EXACTLY — [Float.equal], not
   within a tolerance — the error a naive full TFO re-simulation and full
   prepared measurement returns, for every metric and candidate shape. *)

let oracle_error g ~prep ~base ~node ~new_sig =
  let tfo = Aig.Cone.tfo_mask g node in
  let pos = Sim.Engine.resimulate_tfo g ~base ~tfo ~node ~value:new_sig in
  Metrics.measure_prepared prep ~approx:pos

let all_metrics = [ Metrics.Er; Metrics.Nmed; Metrics.Mred ]

(* Candidate signatures exercising every kernel path: divisor copy and
   complement (what the LAC flow produces), a fully random signature (dense
   diffs, many changed words), and the base signature itself (trivial). *)
let candidate_specs rng ~base ~targets =
  let len = Bitvec.length base.(0) in
  List.concat_map
    (fun node ->
      let s = Logic.Rng.int rng (max 1 node) in
      [
        (node, Bitvec.copy base.(s));
        (node, Bitvec.lognot base.(s));
        (node, Bitvec.random rng len);
        (node, Bitvec.copy base.(node));
      ])
    targets

let random_targets rng g ~count =
  let ands = ref [] in
  Graph.iter_ands g (fun id -> ands := id :: !ands);
  match Array.of_list !ands with
  | [||] -> []
  | arr -> List.init count (fun _ -> arr.(Logic.Rng.int rng (Array.length arr)))

(* Score [specs] with the kernel (optionally through a pool) and demand
   bit-identity with the oracle on every candidate, plus on the base error
   itself. *)
let differential_check ?pool g ~metric ~pats ~specs =
  let golden = Sim.Engine.simulate_pos g pats in
  let base = Sim.Engine.simulate g pats in
  let prep = Metrics.prepare metric ~golden in
  let batch = Errest.Batch.create g ~metric ~golden ~base in
  let base_oracle =
    Metrics.measure_prepared prep ~approx:(Sim.Engine.po_values g base)
  in
  if not (Float.equal (Errest.Batch.base_error batch) base_oracle) then
    Alcotest.failf "base error: kernel %.17g <> oracle %.17g"
      (Errest.Batch.base_error batch) base_oracle;
  let specs = Array.of_list specs in
  let fast = Errest.Batch.candidate_errors ?pool batch specs in
  Array.iteri
    (fun i (node, new_sig) ->
      let slow = oracle_error g ~prep ~base ~node ~new_sig in
      if not (Float.equal fast.(i) slow) then
        Alcotest.failf
          "metric %s, node %d, candidate %d: kernel %.17g <> oracle %.17g"
          (Metrics.kind_to_string metric) node i fast.(i) slow)
    specs;
  Errest.Batch.stats batch

(* Pattern lengths chosen to exercise full words, a partial tail word, and
   the single-word case. *)
let pattern_lens = [| 62; 50; 193; 248 |]

let gen_profile seed =
  {
    Verify.Gen.npis = 5 + (seed mod 4);
    npos = 2 + (seed mod 6);
    nands = 40 + (seed mod 60);
    reconv = 0.3 +. (0.1 *. float_of_int (seed mod 5));
    compl_p = 0.5;
  }

let test_differential_random_circuits () =
  for seed = 1 to 120 do
    let g = Verify.Gen.random ~profile:(gen_profile seed) seed in
    let rng = Logic.Rng.create (seed * 7919) in
    let pats =
      Sim.Patterns.random rng ~npis:(Graph.num_pis g)
        ~len:pattern_lens.(seed mod Array.length pattern_lens)
    in
    let metric = List.nth all_metrics (seed mod 3) in
    match random_targets rng g ~count:2 with
    | [] -> ()
    | targets ->
        let base = Sim.Engine.simulate g pats in
        let specs = candidate_specs rng ~base ~targets in
        ignore (differential_check g ~metric ~pats ~specs : Errest.Batch.stats)
  done

let test_differential_jobs_invariance () =
  (* The same circuits and candidates through a 4-lane pool: per-candidate
     errors AND the merged scoring counters must match the sequential run
     exactly. *)
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      for seed = 1 to 40 do
        let g = Verify.Gen.random ~profile:(gen_profile seed) (seed + 1000) in
        let rng = Logic.Rng.create (seed * 104729) in
        let pats =
          Sim.Patterns.random rng ~npis:(Graph.num_pis g)
            ~len:pattern_lens.(seed mod Array.length pattern_lens)
        in
        let metric = List.nth all_metrics (seed mod 3) in
        match random_targets rng g ~count:2 with
        | [] -> ()
        | targets ->
            let base = Sim.Engine.simulate g pats in
            let specs = candidate_specs rng ~base ~targets in
            let s1 = differential_check g ~metric ~pats ~specs in
            let s4 = differential_check ~pool g ~metric ~pats ~specs in
            check "stats identical at jobs=1 and jobs=4" true (s1 = s4)
      done)

let test_differential_benchmark_suite () =
  List.iter
    (fun name ->
      match Circuits.Suite.find name with
      | None -> Alcotest.failf "unknown benchmark %s" name
      | Some e ->
          let g = (e.Circuits.Suite.build) () in
          let rng = Logic.Rng.create 0xD1FF in
          let pats = Sim.Patterns.random rng ~npis:(Graph.num_pis g) ~len:248 in
          let base = Sim.Engine.simulate g pats in
          let targets = random_targets rng g ~count:3 in
          let specs = candidate_specs rng ~base ~targets in
          List.iter
            (fun metric ->
              ignore (differential_check g ~metric ~pats ~specs : Errest.Batch.stats))
            all_metrics)
    [ "c880"; "c1908"; "c2670" ]

let test_early_exit_counter () =
  (* y = (a AND b) AND c.  Flip x = a AND b exactly where c = 0: the
     difference dies at y, so the kernel must early-exit to the base error
     without materializing any PO. *)
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g and c = Graph.add_pi g in
  let x = Graph.and_ g a b in
  let y = Graph.and_ g x c in
  ignore (Graph.add_po g y);
  let pats = Sim.Patterns.exhaustive ~npis:3 in
  let golden = Sim.Engine.simulate_pos g pats in
  let base = Sim.Engine.simulate g pats in
  let batch = Errest.Batch.create g ~metric:Metrics.Er ~golden ~base in
  let xn = Graph.node_of x and cn = Graph.node_of c in
  let new_sig = Bitvec.logxor base.(xn) (Bitvec.lognot base.(cn)) in
  let e = Errest.Batch.candidate_error batch ~node:xn ~new_sig in
  check "masked change keeps base error" true
    (Float.equal e (Errest.Batch.base_error batch));
  let s = Errest.Batch.stats batch in
  Alcotest.(check int) "one early exit" 1 s.Errest.Batch.early_exits;
  Alcotest.(check int) "frontier visited only y" 1 s.Errest.Batch.frontier_nodes;
  Alcotest.(check int) "no changed POs" 0 s.Errest.Batch.changed_pos;
  (* A trivial candidate is counted separately and touches no frontier. *)
  let e' = Errest.Batch.candidate_error batch ~node:xn ~new_sig:(Bitvec.copy base.(xn)) in
  check "trivial keeps base error" true (Float.equal e' (Errest.Batch.base_error batch));
  Alcotest.(check int) "trivial counted" 1 (Errest.Batch.stats batch).Errest.Batch.trivial

let test_kill_resume_bit_identity () =
  (* The journaled-resume guarantee must survive the kernel swap: a killed
     run resumed (at a different pool size) finishes with the same applied
     count, the same final sampled error to the last bit, and an equivalent
     circuit as the uninterrupted run. *)
  let config =
    { (Core.Config.default ~metric:Metrics.Er ~threshold:0.05) with
      Core.Config.eval_rounds = 1024; max_iters = 12; seed = 11 }
  in
  let g () = Circuits.Epfl_control.cavlc () in
  let a_full, r_full = Core.Flow.run ~config (g ()) in
  let dir = Filename.temp_file "alsrac_errest_resume" "" ^ ".d" in
  (match
     Core.Flow.run ~journal:dir
       ~config:
         { config with Core.Config.fault = [ Core.Fault.Kill_after { applied = 2 } ] }
       (g ())
   with
  | _ -> Alcotest.fail "expected the injected kill to fire"
  | exception Core.Fault.Killed -> ());
  let a_res, r_res = Core.Flow.resume ~jobs:2 dir in
  Alcotest.(check int) "same applied count" r_full.Core.Flow.applied
    r_res.Core.Flow.applied;
  Alcotest.(check int) "same final AND count" (Graph.num_ands a_full)
    (Graph.num_ands a_res);
  check "bit-identical final error" true
    (Float.equal r_full.Core.Flow.final_est_error r_res.Core.Flow.final_est_error);
  check "identical PO behaviour" true (Util.equivalent a_full a_res)

(* ---------- Certify ---------- *)

let test_hoeffding_margin_shrinks () =
  let m1 = Errest.Certify.hoeffding_margin ~samples:100 ~confidence:0.95 in
  let m2 = Errest.Certify.hoeffding_margin ~samples:10000 ~confidence:0.95 in
  check "more samples, smaller margin" true (m2 < m1);
  check "margin positive" true (m2 > 0.0);
  (* Known value: sqrt (ln 20 / 200) ~ 0.1224. *)
  Alcotest.(check (float 1e-4)) "known margin" 0.12239 m1

let test_certified_le () =
  check "certifies" true
    (Errest.Certify.certified_le ~sampled:0.005 ~samples:100000 ~confidence:0.95
       ~threshold:0.01);
  check "refuses on few samples" false
    (Errest.Certify.certified_le ~sampled:0.005 ~samples:100 ~confidence:0.95
       ~threshold:0.01)

let test_samples_needed_roundtrip () =
  let n = Errest.Certify.samples_needed ~margin:0.01 ~confidence:0.99 in
  check "enough" true
    (Errest.Certify.hoeffding_margin ~samples:n ~confidence:0.99 <= 0.01 +. 1e-12);
  check "tight" true
    (Errest.Certify.hoeffding_margin ~samples:(n - 100) ~confidence:0.99 > 0.01)

let test_certify_validation () =
  let bad_confidence = Invalid_argument "Certify: confidence must be in (0, 1)" in
  Alcotest.check_raises "confidence > 1" bad_confidence (fun () ->
      ignore (Errest.Certify.hoeffding_margin ~samples:10 ~confidence:1.5));
  Alcotest.check_raises "confidence = 1" bad_confidence (fun () ->
      ignore (Errest.Certify.hoeffding_margin ~samples:10 ~confidence:1.0));
  Alcotest.check_raises "confidence = 0" bad_confidence (fun () ->
      ignore (Errest.Certify.samples_needed ~margin:0.01 ~confidence:0.0));
  Alcotest.check_raises "zero samples"
    (Invalid_argument "Certify: sample count must be positive") (fun () ->
      ignore (Errest.Certify.hoeffding_margin ~samples:0 ~confidence:0.95));
  Alcotest.check_raises "negative samples"
    (Invalid_argument "Certify: sample count must be positive") (fun () ->
      ignore (Errest.Certify.upper_bound ~sampled:0.1 ~samples:(-1) ~confidence:0.95));
  Alcotest.check_raises "zero margin"
    (Invalid_argument "Certify: margin must be positive") (fun () ->
      ignore (Errest.Certify.samples_needed ~margin:0.0 ~confidence:0.95))

let test_certify_monotone () =
  (* Margin strictly shrinks as samples grow... *)
  let prev = ref infinity in
  List.iter
    (fun samples ->
      let m = Errest.Certify.hoeffding_margin ~samples ~confidence:0.999 in
      check "monotone in samples" true (m < !prev);
      prev := m)
    [ 10; 100; 1_000; 10_000; 100_000 ];
  (* ...and strictly grows with the confidence demanded. *)
  let prev = ref 0.0 in
  List.iter
    (fun confidence ->
      let m = Errest.Certify.hoeffding_margin ~samples:4096 ~confidence in
      check "monotone in confidence" true (m > !prev);
      prev := m)
    [ 0.5; 0.9; 0.99; 0.999; 0.9999 ]

(* samples_needed is the least count whose margin meets the request: the
   returned [n] suffices and [n - 1] does not. *)
let prop_samples_needed_minimal =
  QCheck.Test.make ~name:"samples_needed is minimal" ~count:200
    QCheck.(pair (float_range 0.001 0.3) (float_range 0.5 0.9999))
    (fun (margin, confidence) ->
      let n = Errest.Certify.samples_needed ~margin ~confidence in
      n >= 1
      && Errest.Certify.hoeffding_margin ~samples:n ~confidence <= margin +. 1e-12
      && (n = 1
         || Errest.Certify.hoeffding_margin ~samples:(n - 1) ~confidence
            > margin -. 1e-12))

let () =
  Alcotest.run "errest"
    [
      ( "metrics",
        [
          Alcotest.test_case "er basic" `Quick test_er_basic;
          Alcotest.test_case "er equal" `Quick test_er_zero_on_equal;
          Alcotest.test_case "output values" `Quick test_output_values;
          Alcotest.test_case "mean ed" `Quick test_mean_ed;
          Alcotest.test_case "nmed" `Quick test_nmed;
          Alcotest.test_case "mred" `Quick test_mred;
          Alcotest.test_case "mred zero guard" `Quick test_mred_zero_guard;
          Alcotest.test_case "shape mismatch" `Quick test_shape_mismatch;
          Alcotest.test_case "compare graphs" `Quick test_compare_graphs_exact;
          Alcotest.test_case "evaluate known" `Quick test_evaluate_known_er;
        ] );
      ( "observability",
        [
          Alcotest.test_case "exact on trees" `Quick test_observability_tree_exact;
          Alcotest.test_case "po drivers / agreement" `Quick test_observability_po_drivers_full;
        ] );
      ( "batch",
        [ Alcotest.test_case "base error" `Quick test_batch_base_error_zero ]
        @ Util.qcheck_cases [ prop_batch_equals_rebuild ] );
      ( "differential",
        [
          Alcotest.test_case "random circuits vs oracle" `Quick
            test_differential_random_circuits;
          Alcotest.test_case "jobs invariance" `Quick test_differential_jobs_invariance;
          Alcotest.test_case "benchmark suite vs oracle" `Quick
            test_differential_benchmark_suite;
          Alcotest.test_case "early exit + counters" `Quick test_early_exit_counter;
          Alcotest.test_case "kill and resume bit identity" `Slow
            test_kill_resume_bit_identity;
        ] );
      ( "certify",
        [
          Alcotest.test_case "margin shrinks" `Quick test_hoeffding_margin_shrinks;
          Alcotest.test_case "certified_le" `Quick test_certified_le;
          Alcotest.test_case "samples needed" `Quick test_samples_needed_roundtrip;
          Alcotest.test_case "validation" `Quick test_certify_validation;
          Alcotest.test_case "monotonicity" `Quick test_certify_monotone;
        ]
        @ Util.qcheck_cases [ prop_samples_needed_minimal ] );
    ]
