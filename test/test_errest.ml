module Bitvec = Logic.Bitvec
module Graph = Aig.Graph
module Metrics = Errest.Metrics
module Distr = Errest.Distr
module Maxerr = Errest.Maxerr

let check = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let vec s = Bitvec.of_string s

(* ---------- Metrics on hand-built signatures ---------- *)

let test_er_basic () =
  (* 8 rounds, 2 POs; rounds 1 and 5 differ. *)
  let golden = [| vec "01010101"; vec "00110011" |] in
  let approx = [| vec "00010001"; vec "00110011" |] in
  check_float "er" 0.25 (Metrics.er ~golden ~approx)

let test_er_zero_on_equal () =
  let golden = [| vec "0110"; vec "1010" |] in
  check_float "zero" 0.0 (Metrics.er ~golden ~approx:golden)

let test_output_values () =
  (* PO 0 = LSB.  Round 0: 1,0 -> 1.  Round 1: 0,1 -> 2.  Round 2: 1,1 -> 3. *)
  let pos = [| vec "101"; vec "011" |] in
  Alcotest.(check (array int)) "decode" [| 1; 2; 3 |] (Metrics.output_values pos)

let test_mean_ed () =
  let golden = [| vec "10"; vec "01" |] in
  (* values 1, 2 *)
  let approx = [| vec "01"; vec "01" |] in
  (* values 0, 3 *)
  check_float "mean |d|" 1.0 (Metrics.mean_ed ~golden ~approx)

let test_nmed () =
  let golden = [| vec "10"; vec "01" |] in
  let approx = [| vec "01"; vec "01" |] in
  (* mean ED 1.0 over maxval 3. *)
  check_float "nmed" (1.0 /. 3.0) (Metrics.nmed ~golden ~approx)

let test_mred () =
  let golden = [| vec "10"; vec "01" |] in
  (* 1, 2 *)
  let approx = [| vec "00"; vec "01" |] in
  (* 0, 2 *)
  (* |1-0|/1 = 1; |2-2|/2 = 0 -> mean 0.5 *)
  check_float "mred" 0.5 (Metrics.mred ~golden ~approx)

let test_mred_zero_guard () =
  let golden = [| vec "0" |] in
  (* correct value 0: denominator max(0,1)=1. *)
  let approx = [| vec "1" |] in
  check_float "division guard" 1.0 (Metrics.mred ~golden ~approx)

let test_shape_mismatch () =
  Alcotest.check_raises "po count" (Invalid_argument "Metrics: PO count mismatch")
    (fun () -> ignore (Metrics.er ~golden:[| vec "0" |] ~approx:[||]))

(* ---------- compare_graphs / evaluate ---------- *)

let test_compare_graphs_exact () =
  (* approx = original with one PO inverted: er = 1. *)
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g in
  ignore (Graph.add_po g (Graph.and_ g a b));
  let h = Graph.create () in
  let a' = Graph.add_pi h and b' = Graph.add_pi h in
  ignore (Graph.add_po h (Graph.lit_not (Graph.and_ h a' b')));
  let pats = Sim.Patterns.exhaustive ~npis:2 in
  check_float "always wrong" 1.0 (Metrics.compare_graphs Metrics.Er ~original:g ~approx:h pats)

let test_evaluate_known_er () =
  (* approx of AND2 by constant 0: wrong only on input 11 -> ER 0.25. *)
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g in
  ignore (Graph.add_po g (Graph.and_ g a b));
  let h = Graph.create () in
  ignore (Graph.add_pi h);
  ignore (Graph.add_pi h);
  ignore (Graph.add_po h Graph.const0);
  check_float "er 1/4" 0.25 (Metrics.evaluate Metrics.Er ~original:g ~approx:h)

(* ---------- Observability ---------- *)

let test_observability_tree_exact () =
  (* On a fanout-free tree the backward masks are exact: compare against
     flip-and-resimulate. *)
  let rng = Logic.Rng.create 17 in
  for _ = 1 to 10 do
    (* Build a random tree: every node used exactly once. *)
    let g = Graph.create () in
    let pool = ref (List.init 8 (fun _ -> Graph.add_pi g)) in
    while List.length !pool > 1 do
      match !pool with
      | a :: b :: rest ->
          let a = if Logic.Rng.bool rng then Graph.lit_not a else a in
          let b = if Logic.Rng.bool rng then Graph.lit_not b else b in
          pool := rest @ [ Graph.and_ g a b ]
      | _ -> assert false
    done;
    ignore (Graph.add_po g (List.hd !pool));
    let pats = Sim.Patterns.exhaustive ~npis:8 in
    let sigs = Sim.Engine.simulate g pats in
    let obs = Errest.Observability.masks g ~sigs in
    Graph.iter_ands g (fun id ->
        let tfo = Aig.Cone.tfo_mask g id in
        let flipped = Bitvec.lognot sigs.(id) in
        let pos = Sim.Engine.resimulate_tfo g ~base:sigs ~tfo ~node:id ~value:flipped in
        let golden = Sim.Engine.po_values g sigs in
        let diff = Bitvec.create (Bitvec.length flipped) in
        Array.iteri
          (fun i p -> Bitvec.logor_inplace diff (Bitvec.logxor p golden.(i)))
          pos;
        check "tree observability exact" true (Bitvec.equal diff obs.(id)))
  done

let test_observability_po_drivers_full () =
  (* A PO driver is always fully observable, and the heuristic should agree
     with exact propagation on a clear majority of (node, round) pairs even
     under reconvergence. *)
  let rng = Logic.Rng.create 23 in
  for _ = 1 to 10 do
    let g = Util.random_graph rng ~npis:6 ~nands:30 in
    let pats = Sim.Patterns.exhaustive ~npis:6 in
    let sigs = Sim.Engine.simulate g pats in
    let obs = Errest.Observability.masks g ~sigs in
    Graph.iter_pos g (fun _ l ->
        let id = Graph.node_of l in
        if not (Graph.is_const id) then
          check "po driver fully observable" true (Bitvec.is_ones obs.(id)));
    let golden = Sim.Engine.po_values g sigs in
    let agree = ref 0 and total = ref 0 in
    Graph.iter_ands g (fun id ->
        let tfo = Aig.Cone.tfo_mask g id in
        let flipped = Bitvec.lognot sigs.(id) in
        let pos = Sim.Engine.resimulate_tfo g ~base:sigs ~tfo ~node:id ~value:flipped in
        let diff = Bitvec.create (Bitvec.length flipped) in
        Array.iteri (fun i p -> Bitvec.logor_inplace diff (Bitvec.logxor p golden.(i))) pos;
        total := !total + Bitvec.length diff;
        agree := !agree + (Bitvec.length diff - Bitvec.hamming diff obs.(id)));
    if !total > 0 then
      check "heuristic mostly agrees with exact" true
        (float_of_int !agree /. float_of_int !total > 0.8)
  done

(* ---------- Batch ---------- *)

let prop_batch_equals_rebuild =
  QCheck.Test.make ~name:"batch candidate error equals rebuilt-circuit error"
    ~count:30
    QCheck.(make Gen.(int_range 0 100000))
    (fun seed ->
      let rng = Logic.Rng.create seed in
      let g = Util.random_graph rng ~npis:5 ~nands:40 in
      if Graph.num_ands g = 0 then true
      else begin
        let pats = Sim.Patterns.exhaustive ~npis:5 in
        let golden = Sim.Engine.simulate_pos g pats in
        let base = Sim.Engine.simulate g pats in
        let batch = Errest.Batch.create g ~metric:Metrics.Er ~golden ~base in
        (* Candidate: substitute a random AND node by an earlier literal. *)
        let ands = ref [] in
        Graph.iter_ands g (fun id -> ands := id :: !ands);
        let arr = Array.of_list !ands in
        let v = arr.(Logic.Rng.int rng (Array.length arr)) in
        let s = 1 + Logic.Rng.int rng (max 1 (v - 1)) in
        let compl = Logic.Rng.bool rng in
        let new_sig = if compl then Bitvec.lognot base.(s) else Bitvec.copy base.(s) in
        let fast = Errest.Batch.candidate_error batch ~node:v ~new_sig in
        let rebuilt =
          Graph.rebuild
            ~replace:(fun id ->
              if id = v then Some (Graph.Replace_lit (Graph.make_lit s compl)) else None)
            g
        in
        let slow = Metrics.compare_graphs Metrics.Er ~original:g ~approx:rebuilt pats in
        (* The rebuilt comparison is against g itself (golden = g's outputs). *)
        Float.abs (fast -. slow) < 1e-9
      end)

let test_batch_base_error_zero () =
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g in
  ignore (Graph.add_po g (Graph.and_ g a b));
  let pats = Sim.Patterns.exhaustive ~npis:2 in
  let golden = Sim.Engine.simulate_pos g pats in
  let base = Sim.Engine.simulate g pats in
  let batch = Errest.Batch.create g ~metric:Metrics.Er ~golden ~base in
  check_float "no change, no error" 0.0 (Errest.Batch.base_error batch)

(* ---------- Differential oracle: event-driven kernel vs full resim ----------

   The event-driven kernel (sparse frontier + difference-mask early exit +
   incremental metric deltas) must return EXACTLY — [Float.equal], not
   within a tolerance — the error a naive full TFO re-simulation and full
   prepared measurement returns, for every metric and candidate shape. *)

let oracle_error g ~prep ~base ~node ~new_sig =
  let tfo = Aig.Cone.tfo_mask g node in
  let pos = Sim.Engine.resimulate_tfo g ~base ~tfo ~node ~value:new_sig in
  Metrics.measure_prepared prep ~approx:pos

let all_metrics = Metrics.all_kinds
let nmetrics = List.length all_metrics

(* Candidate signatures exercising every kernel path: divisor copy and
   complement (what the LAC flow produces), a fully random signature (dense
   diffs, many changed words), and the base signature itself (trivial). *)
let candidate_specs rng ~base ~targets =
  let len = Bitvec.length base.(0) in
  List.concat_map
    (fun node ->
      let s = Logic.Rng.int rng (max 1 node) in
      [
        (node, Bitvec.copy base.(s));
        (node, Bitvec.lognot base.(s));
        (node, Bitvec.random rng len);
        (node, Bitvec.copy base.(node));
      ])
    targets

let random_targets rng g ~count =
  let ands = ref [] in
  Graph.iter_ands g (fun id -> ands := id :: !ands);
  match Array.of_list !ands with
  | [||] -> []
  | arr -> List.init count (fun _ -> arr.(Logic.Rng.int rng (Array.length arr)))

(* Score [specs] with the kernel (optionally through a pool) and demand
   bit-identity with the oracle on every candidate, plus on the base error
   itself. *)
let differential_check ?pool g ~metric ~pats ~specs =
  let golden = Sim.Engine.simulate_pos g pats in
  let base = Sim.Engine.simulate g pats in
  let prep = Metrics.prepare metric ~golden in
  let batch = Errest.Batch.create g ~metric ~golden ~base in
  let base_oracle =
    Metrics.measure_prepared prep ~approx:(Sim.Engine.po_values g base)
  in
  if not (Float.equal (Errest.Batch.base_error batch) base_oracle) then
    Alcotest.failf "base error: kernel %.17g <> oracle %.17g"
      (Errest.Batch.base_error batch) base_oracle;
  let specs = Array.of_list specs in
  let fast = Errest.Batch.candidate_errors ?pool batch specs in
  Array.iteri
    (fun i (node, new_sig) ->
      let slow = oracle_error g ~prep ~base ~node ~new_sig in
      if not (Float.equal fast.(i) slow) then
        Alcotest.failf
          "metric %s, node %d, candidate %d: kernel %.17g <> oracle %.17g"
          (Metrics.kind_to_string metric) node i fast.(i) slow)
    specs;
  Errest.Batch.stats batch

(* Pattern lengths chosen to exercise full words, a partial tail word, and
   the single-word case. *)
let pattern_lens = [| 62; 50; 193; 248 |]

let gen_profile seed =
  {
    Verify.Gen.npis = 5 + (seed mod 4);
    npos = 2 + (seed mod 6);
    nands = 40 + (seed mod 60);
    reconv = 0.3 +. (0.1 *. float_of_int (seed mod 5));
    compl_p = 0.5;
  }

let test_differential_random_circuits () =
  for seed = 1 to 120 do
    let g = Verify.Gen.random ~profile:(gen_profile seed) seed in
    let rng = Logic.Rng.create (seed * 7919) in
    let pats =
      Sim.Patterns.random rng ~npis:(Graph.num_pis g)
        ~len:pattern_lens.(seed mod Array.length pattern_lens)
    in
    let metric = List.nth all_metrics (seed mod nmetrics) in
    match random_targets rng g ~count:2 with
    | [] -> ()
    | targets ->
        let base = Sim.Engine.simulate g pats in
        let specs = candidate_specs rng ~base ~targets in
        ignore (differential_check g ~metric ~pats ~specs : Errest.Batch.stats)
  done

let test_differential_jobs_invariance () =
  (* The same circuits and candidates through a 4-lane pool: per-candidate
     errors AND the merged scoring counters must match the sequential run
     exactly. *)
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      for seed = 1 to 40 do
        let g = Verify.Gen.random ~profile:(gen_profile seed) (seed + 1000) in
        let rng = Logic.Rng.create (seed * 104729) in
        let pats =
          Sim.Patterns.random rng ~npis:(Graph.num_pis g)
            ~len:pattern_lens.(seed mod Array.length pattern_lens)
        in
        let metric = List.nth all_metrics (seed mod nmetrics) in
        match random_targets rng g ~count:2 with
        | [] -> ()
        | targets ->
            let base = Sim.Engine.simulate g pats in
            let specs = candidate_specs rng ~base ~targets in
            let s1 = differential_check g ~metric ~pats ~specs in
            let s4 = differential_check ~pool g ~metric ~pats ~specs in
            check "stats identical at jobs=1 and jobs=4" true (s1 = s4)
      done)

let test_differential_benchmark_suite () =
  List.iter
    (fun name ->
      match Circuits.Suite.find name with
      | None -> Alcotest.failf "unknown benchmark %s" name
      | Some e ->
          let g = (e.Circuits.Suite.build) () in
          let rng = Logic.Rng.create 0xD1FF in
          let pats = Sim.Patterns.random rng ~npis:(Graph.num_pis g) ~len:248 in
          let base = Sim.Engine.simulate g pats in
          let targets = random_targets rng g ~count:3 in
          let specs = candidate_specs rng ~base ~targets in
          List.iter
            (fun metric ->
              ignore (differential_check g ~metric ~pats ~specs : Errest.Batch.stats))
            all_metrics)
    [ "c880"; "c1908"; "c2670" ]

let test_early_exit_counter () =
  (* y = (a AND b) AND c.  Flip x = a AND b exactly where c = 0: the
     difference dies at y, so the kernel must early-exit to the base error
     without materializing any PO. *)
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g and c = Graph.add_pi g in
  let x = Graph.and_ g a b in
  let y = Graph.and_ g x c in
  ignore (Graph.add_po g y);
  let pats = Sim.Patterns.exhaustive ~npis:3 in
  let golden = Sim.Engine.simulate_pos g pats in
  let base = Sim.Engine.simulate g pats in
  let batch = Errest.Batch.create g ~metric:Metrics.Er ~golden ~base in
  let xn = Graph.node_of x and cn = Graph.node_of c in
  let new_sig = Bitvec.logxor base.(xn) (Bitvec.lognot base.(cn)) in
  let e = Errest.Batch.candidate_error batch ~node:xn ~new_sig in
  check "masked change keeps base error" true
    (Float.equal e (Errest.Batch.base_error batch));
  let s = Errest.Batch.stats batch in
  Alcotest.(check int) "one early exit" 1 s.Errest.Batch.early_exits;
  Alcotest.(check int) "frontier visited only y" 1 s.Errest.Batch.frontier_nodes;
  Alcotest.(check int) "no changed POs" 0 s.Errest.Batch.changed_pos;
  (* A trivial candidate is counted separately and touches no frontier. *)
  let e' = Errest.Batch.candidate_error batch ~node:xn ~new_sig:(Bitvec.copy base.(xn)) in
  check "trivial keeps base error" true (Float.equal e' (Errest.Batch.base_error batch));
  Alcotest.(check int) "trivial counted" 1 (Errest.Batch.stats batch).Errest.Batch.trivial

let test_kill_resume_bit_identity () =
  (* The journaled-resume guarantee must survive the kernel swap: a killed
     run resumed (at a different pool size) finishes with the same applied
     count, the same final sampled error to the last bit, and an equivalent
     circuit as the uninterrupted run. *)
  let config =
    { (Core.Config.default ~metric:Metrics.Er ~threshold:0.05) with
      Core.Config.eval_rounds = 1024; max_iters = 12; seed = 11 }
  in
  let g () = Circuits.Epfl_control.cavlc () in
  let a_full, r_full = Core.Flow.run ~config (g ()) in
  let dir = Filename.temp_file "alsrac_errest_resume" "" ^ ".d" in
  (match
     Core.Flow.run ~journal:dir
       ~config:
         { config with Core.Config.fault = [ Core.Fault.Kill_after { applied = 2 } ] }
       (g ())
   with
  | _ -> Alcotest.fail "expected the injected kill to fire"
  | exception Core.Fault.Killed -> ());
  let a_res, r_res = Core.Flow.resume ~jobs:2 dir in
  Alcotest.(check int) "same applied count" r_full.Core.Flow.applied
    r_res.Core.Flow.applied;
  Alcotest.(check int) "same final AND count" (Graph.num_ands a_full)
    (Graph.num_ands a_res);
  check "bit-identical final error" true
    (Float.equal r_full.Core.Flow.final_est_error r_res.Core.Flow.final_est_error);
  check "identical PO behaviour" true (Util.equivalent a_full a_res)

(* ---------- Certify ---------- *)

let test_hoeffding_margin_shrinks () =
  let m1 = Errest.Certify.hoeffding_margin ~samples:100 ~confidence:0.95 in
  let m2 = Errest.Certify.hoeffding_margin ~samples:10000 ~confidence:0.95 in
  check "more samples, smaller margin" true (m2 < m1);
  check "margin positive" true (m2 > 0.0);
  (* Known value: sqrt (ln 20 / 200) ~ 0.1224. *)
  Alcotest.(check (float 1e-4)) "known margin" 0.12239 m1

let test_certified_le () =
  check "certifies" true
    (Errest.Certify.certified_le ~sampled:0.005 ~samples:100000 ~confidence:0.95
       ~threshold:0.01);
  check "refuses on few samples" false
    (Errest.Certify.certified_le ~sampled:0.005 ~samples:100 ~confidence:0.95
       ~threshold:0.01)

let test_samples_needed_roundtrip () =
  let n = Errest.Certify.samples_needed ~margin:0.01 ~confidence:0.99 in
  check "enough" true
    (Errest.Certify.hoeffding_margin ~samples:n ~confidence:0.99 <= 0.01 +. 1e-12);
  check "tight" true
    (Errest.Certify.hoeffding_margin ~samples:(n - 100) ~confidence:0.99 > 0.01)

let test_certify_validation () =
  let bad_confidence = Invalid_argument "Certify: confidence must be in (0, 1)" in
  Alcotest.check_raises "confidence > 1" bad_confidence (fun () ->
      ignore (Errest.Certify.hoeffding_margin ~samples:10 ~confidence:1.5));
  Alcotest.check_raises "confidence = 1" bad_confidence (fun () ->
      ignore (Errest.Certify.hoeffding_margin ~samples:10 ~confidence:1.0));
  Alcotest.check_raises "confidence = 0" bad_confidence (fun () ->
      ignore (Errest.Certify.samples_needed ~margin:0.01 ~confidence:0.0));
  Alcotest.check_raises "zero samples"
    (Invalid_argument "Certify: sample count must be positive") (fun () ->
      ignore (Errest.Certify.hoeffding_margin ~samples:0 ~confidence:0.95));
  Alcotest.check_raises "negative samples"
    (Invalid_argument "Certify: sample count must be positive") (fun () ->
      ignore (Errest.Certify.upper_bound ~sampled:0.1 ~samples:(-1) ~confidence:0.95));
  Alcotest.check_raises "zero margin"
    (Invalid_argument "Certify: margin must be positive") (fun () ->
      ignore (Errest.Certify.samples_needed ~margin:0.0 ~confidence:0.95))

let test_certify_monotone () =
  (* Margin strictly shrinks as samples grow... *)
  let prev = ref infinity in
  List.iter
    (fun samples ->
      let m = Errest.Certify.hoeffding_margin ~samples ~confidence:0.999 in
      check "monotone in samples" true (m < !prev);
      prev := m)
    [ 10; 100; 1_000; 10_000; 100_000 ];
  (* ...and strictly grows with the confidence demanded. *)
  let prev = ref 0.0 in
  List.iter
    (fun confidence ->
      let m = Errest.Certify.hoeffding_margin ~samples:4096 ~confidence in
      check "monotone in confidence" true (m > !prev);
      prev := m)
    [ 0.5; 0.9; 0.99; 0.999; 0.9999 ]

(* samples_needed is the least count whose margin meets the request: the
   returned [n] suffices and [n - 1] does not. *)
let prop_samples_needed_minimal =
  QCheck.Test.make ~name:"samples_needed is minimal" ~count:200
    QCheck.(pair (float_range 0.001 0.3) (float_range 0.5 0.9999))
    (fun (margin, confidence) ->
      let n = Errest.Certify.samples_needed ~margin ~confidence in
      n >= 1
      && Errest.Certify.hoeffding_margin ~samples:n ~confidence <= margin +. 1e-12
      && (n = 1
         || Errest.Certify.hoeffding_margin ~samples:(n - 1) ~confidence
            > margin -. 1e-12))

(* ---------- Extended metric families (hand values) ---------- *)

(* golden values 1, 3, 4; approx values 0, 2, 6. *)
let hand_golden = [| vec "110"; vec "010"; vec "001" |]
let hand_approx = [| vec "000"; vec "011"; vec "001" |]

let test_mean_families_hand () =
  (* EDs 1, 1, 2; HDs 1, 1, 1 (3-bit codes). *)
  check_float "mse" 2.0 (Metrics.mse ~golden:hand_golden ~approx:hand_approx);
  check_float "mhd" 1.0 (Metrics.mhd ~golden:hand_golden ~approx:hand_approx);
  check_float "nmhd" (1.0 /. 3.0) (Metrics.nmhd ~golden:hand_golden ~approx:hand_approx);
  check_float "med" (4.0 /. 3.0) (Metrics.med ~golden:hand_golden ~approx:hand_approx);
  check_float "nmed" (4.0 /. 21.0) (Metrics.nmed ~golden:hand_golden ~approx:hand_approx)

let test_max_families_hand () =
  check_float "maxed" 2.0 (Metrics.max_ed ~golden:hand_golden ~approx:hand_approx);
  check_float "maxhd" 1.0 (Metrics.max_hd ~golden:hand_golden ~approx:hand_approx);
  (* REDs 1/1, 1/3, 2/4. *)
  check_float "maxred" 1.0 (Metrics.max_red ~golden:hand_golden ~approx:hand_approx);
  Alcotest.(check int) "worst-case ed" 2
    (Metrics.worst_case_ed ~golden:hand_golden ~approx:hand_approx)

let test_kind_classification () =
  Alcotest.(check int) "ten kinds" 10 (List.length Metrics.all_kinds);
  List.iter
    (fun k ->
      match Metrics.kind_of_string (Metrics.kind_to_string k) with
      | Some k' when k' = k -> ()
      | _ -> Alcotest.failf "kind %s does not round-trip" (Metrics.kind_to_string k))
    Metrics.all_kinds;
  check "unknown name rejected" true (Metrics.kind_of_string "wced" = None);
  check "max kinds" true
    (List.filter Metrics.is_max Metrics.all_kinds
    = [ Metrics.Maxed; Metrics.Maxhd; Metrics.Maxred ]);
  check "bounded means" true
    (List.filter Metrics.bounded_mean Metrics.all_kinds
    = [ Metrics.Er; Metrics.Nmed; Metrics.Nmhd ]);
  check "no kind is both max and bounded-mean" true
    (not
       (List.exists
          (fun k -> Metrics.is_max k && Metrics.bounded_mean k)
          Metrics.all_kinds))

let test_weighted_measure_hand () =
  (* golden values 1, 0; approx 0, 0 — only round 0 errs. *)
  let golden = [| vec "10" |] and approx = [| vec "00" |] in
  (* Probability-weighted mean: (1*1 + 3*0) / 4. *)
  check_float "weighted med" 0.25
    (Metrics.measure ~weights:[| 1.0; 3.0 |] Metrics.Med ~golden ~approx);
  check_float "weighted er" 0.25
    (Metrics.measure ~weights:[| 1.0; 3.0 |] Metrics.Er ~golden ~approx);
  (* A zero weight excludes a round from the worst-case support... *)
  check_float "maxed off-support" 0.0
    (Metrics.measure ~weights:[| 0.0; 1.0 |] Metrics.Maxed ~golden ~approx);
  (* ...while any positive weight keeps the unscaled metric weight: the
     worst case is never probability-scaled. *)
  check_float "maxed on-support" 1.0
    (Metrics.measure ~weights:[| 0.125; 1.0 |] Metrics.Maxed ~golden ~approx);
  let bad msg w =
    Alcotest.check_raises msg
      (Invalid_argument "Metrics: distribution weights must be finite and non-negative")
      (fun () -> ignore (Metrics.measure ~weights:w Metrics.Med ~golden ~approx))
  in
  bad "negative weight" [| 1.0; -1.0 |];
  bad "nan weight" [| 1.0; Float.nan |];
  Alcotest.check_raises "weight count"
    (Invalid_argument "Metrics: distribution weight count mismatch") (fun () ->
      ignore (Metrics.measure ~weights:[| 1.0 |] Metrics.Med ~golden ~approx));
  Alcotest.check_raises "zero total"
    (Invalid_argument "Metrics: distribution weights sum to zero") (fun () ->
      ignore (Metrics.measure ~weights:[| 0.0; 0.0 |] Metrics.Med ~golden ~approx))

(* ---------- Distr: enumerated input distributions ---------- *)

let test_distr_parse_and_roundtrip () =
  let lines = [ "# header comment"; ""; "0101 1.0"; "1111 0.25"; "0000 2.5" ] in
  match Distr.parse_lines lines with
  | Error e -> Alcotest.fail e
  | Ok d ->
      check "enum" true (Distr.is_enum d);
      check "unif is not enum" false (Distr.is_enum Distr.unif);
      Alcotest.(check (option int)) "npis" (Some 4) (Distr.npis d);
      Alcotest.(check (option int)) "unif npis" None (Distr.npis Distr.unif);
      Alcotest.(check int) "rows" 3 (Distr.num_rows d);
      (match Distr.of_string (Distr.to_string d) with
      | Ok d' -> check "journal round trip is bit-exact" true (Distr.equal d d')
      | Error e -> Alcotest.fail e);
      (match Distr.of_string "unif" with
      | Ok Distr.Unif -> ()
      | _ -> Alcotest.fail "unif must parse to Unif");
      check "fits 4-PI circuits" true (Distr.validate_npis d ~npis:4 = Ok ());
      check "rejects other widths" true (Result.is_error (Distr.validate_npis d ~npis:5));
      check "unif fits anything" true (Distr.validate_npis Distr.unif ~npis:64 = Ok ());
      (match Distr.round_weights d with
      | Some [| 1.0; 0.25; 2.5 |] -> ()
      | _ -> Alcotest.fail "round weights in file order");
      (* Signature orientation: one vector per PI, one round per row,
         leftmost file character = PI 0. *)
      let sigs = Distr.signatures d in
      Alcotest.(check int) "one signature per PI" 4 (Array.length sigs);
      check "pi0 over rounds" true (Bitvec.equal sigs.(0) (vec "010"));
      check "pi1 over rounds" true (Bitvec.equal sigs.(1) (vec "110"));
      check "pi2 over rounds" true (Bitvec.equal sigs.(2) (vec "010"));
      check "pi3 over rounds" true (Bitvec.equal sigs.(3) (vec "110"))

let test_distr_parse_errors () =
  let bad lines =
    match Distr.parse_lines lines with Ok _ -> false | Error _ -> true
  in
  check "ragged rows" true (bad [ "01 1"; "011 1" ]);
  check "bad weight" true (bad [ "01 x" ]);
  check "negative weight" true (bad [ "01 -1" ]);
  check "zero total" true (bad [ "01 0"; "10 0" ]);
  check "missing weight" true (bad [ "01" ]);
  check "empty file" true (bad [ "# nothing"; "" ]);
  check "non-binary pattern" true (bad [ "0x1 1" ]);
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check "enum rejects empty" true
    (raises (fun () -> Distr.enum ~rows:[||] ~weights:[||]));
  check "enum rejects count mismatch" true
    (raises (fun () -> Distr.enum ~rows:[| [| true |] |] ~weights:[| 1.0; 2.0 |]))

let test_distr_sample_support () =
  let rows = [| [| false; true |]; [| true; false |] |] in
  let d = Distr.enum ~rows ~weights:[| 3.0; 1.0 |] in
  let rng = Logic.Rng.create 5 in
  let pats = Distr.sample d rng ~npis:2 ~len:400 in
  Alcotest.(check int) "one vector per PI" 2 (Array.length pats);
  let heavy = ref 0 in
  for m = 0 to 399 do
    let b0 = Bitvec.get pats.(0) m and b1 = Bitvec.get pats.(1) m in
    if (not b0) && b1 then incr heavy
    else if b0 && not b1 then ()
    else Alcotest.fail "sampled a round outside the support"
  done;
  check "weight-3 row dominates" true (!heavy > 200)

(* ---------- The metric x distribution matrix oracle ----------

   An independent naive reimplementation of every metric under every
   distribution shape: bits read one at a time with [Bitvec.get], values
   decoded by shifting, terms and weights recombined with the kernel's
   documented float-evaluation order (62-round blocked sums, per-round
   [term * (metric_weight * (p * scale))] association) so agreement can be
   demanded with [Float.equal] — zero tolerance, every cell. *)

let oracle_popcount x =
  let n = ref 0 and x = ref x in
  while !x <> 0 do
    n := !n + (!x land 1);
    x := !x lsr 1
  done;
  !n

let oracle_decode pos m =
  let v = ref 0 in
  Array.iteri (fun i s -> if Bitvec.get s m then v := !v lor (1 lsl i)) pos;
  !v

let oracle_sum_blocked len f =
  let acc = ref 0.0 and lo = ref 0 in
  while !lo < len do
    let hi = min len (!lo + Bitvec.word_bits) in
    let block = ref 0.0 in
    for m = !lo to hi - 1 do
      block := !block +. f m
    done;
    acc := !acc +. !block;
    lo := hi
  done;
  !acc

let oracle_term kind g a =
  match kind with
  | Metrics.Er -> if g = a then 0.0 else 1.0
  | Metrics.Med | Metrics.Nmed | Metrics.Mred | Metrics.Maxed | Metrics.Maxred ->
      float_of_int (abs (g - a))
  | Metrics.Mse ->
      let d = float_of_int (g - a) in
      d *. d
  | Metrics.Mhd | Metrics.Nmhd | Metrics.Maxhd ->
      float_of_int (oracle_popcount (g lxor a))

let oracle_metric_weight kind ~npos g =
  match kind with
  | Metrics.Er | Metrics.Med | Metrics.Mse | Metrics.Mhd | Metrics.Maxed
  | Metrics.Maxhd ->
      1.0
  | Metrics.Nmed ->
      1.0 /. (if npos = 0 then 1.0 else (2.0 ** float_of_int npos) -. 1.0)
  | Metrics.Nmhd -> 1.0 /. (if npos = 0 then 1.0 else float_of_int npos)
  | Metrics.Mred | Metrics.Maxred -> 1.0 /. float_of_int (max g 1)

let oracle_measure ?weights kind ~golden ~approx =
  let len = Bitvec.length golden.(0) in
  let npos = Array.length golden in
  let gv = Array.init len (oracle_decode golden) in
  let av = Array.init len (oracle_decode approx) in
  match (weights, kind) with
  | None, Metrics.Er ->
      let wrong = ref 0 in
      for m = 0 to len - 1 do
        if gv.(m) <> av.(m) then incr wrong
      done;
      float_of_int !wrong /. float_of_int len
  | None, Metrics.Nmed ->
      oracle_sum_blocked len (fun m -> float_of_int (abs (gv.(m) - av.(m))))
      /. float_of_int len
      /. ((2.0 ** float_of_int npos) -. 1.0)
  | None, Metrics.Mred ->
      oracle_sum_blocked len (fun m ->
          float_of_int (abs (gv.(m) - av.(m))) /. float_of_int (max gv.(m) 1))
      /. float_of_int len
  | _ ->
      let w = Array.init len (fun m -> oracle_metric_weight kind ~npos gv.(m)) in
      (match weights with
      | None -> ()
      | Some p ->
          if Metrics.is_max kind then
            Array.iteri (fun m pm -> if pm <= 0.0 then w.(m) <- 0.0) p
          else begin
            let total = Array.fold_left ( +. ) 0.0 p in
            let scale = float_of_int len /. total in
            Array.iteri (fun m pm -> w.(m) <- w.(m) *. (pm *. scale)) p
          end);
      let round m = oracle_term kind gv.(m) av.(m) *. w.(m) in
      if Metrics.is_max kind then begin
        let worst = ref 0.0 in
        for m = 0 to len - 1 do
          let t = round m in
          if t > !worst then worst := t
        done;
        !worst
      end
      else oracle_sum_blocked len round /. float_of_int len

(* A random single-node approximation of [g]: one AND node rebuilt onto an
   earlier literal, exactly the shape the LAC flow commits. *)
let mutate_graph rng g =
  let ands = ref [] in
  Graph.iter_ands g (fun id -> ands := id :: !ands);
  match Array.of_list !ands with
  | [||] -> g
  | arr ->
      let v = arr.(Logic.Rng.int rng (Array.length arr)) in
      let s = 1 + Logic.Rng.int rng (max 1 (v - 1)) in
      let compl = Logic.Rng.bool rng in
      Graph.rebuild
        ~replace:(fun id ->
          if id = v then Some (Graph.Replace_lit (Graph.make_lit s compl)) else None)
        g

(* The four distribution shapes of a matrix row: uniform (no weights),
   enumerated-uniform, enumerated-weighted, and a sparse support with
   excluded rounds. *)
let matrix_weight_cells rng len =
  [
    ("unif", None);
    ("enum-uniform", Some (Array.make len 1.0));
    ("enum-weighted", Some (Array.init len (fun _ -> 0.0625 +. Logic.Rng.float rng)));
    ( "enum-sparse",
      Some
        (Array.init len (fun m ->
             if m land 3 = 0 then 0.5 +. Logic.Rng.float rng else 0.0)) );
  ]

let test_matrix_oracle_exhaustive () =
  for seed = 1 to 30 do
    let npis = 4 + (seed mod 9) in
    let profile =
      {
        Verify.Gen.npis;
        npos = 1 + (seed mod 6);
        nands = 20 + (seed mod 50);
        reconv = 0.35;
        compl_p = 0.5;
      }
    in
    let g = Verify.Gen.random ~profile seed in
    let rng = Logic.Rng.create (seed * 65537) in
    let h = mutate_graph rng g in
    let pats = Sim.Patterns.exhaustive ~npis in
    let len = 1 lsl npis in
    let golden = Sim.Engine.simulate_pos g pats in
    let approx = Sim.Engine.simulate_pos h pats in
    List.iter
      (fun metric ->
        List.iter
          (fun (cell, weights) ->
            let got = Metrics.measure ?weights metric ~golden ~approx in
            let want = oracle_measure ?weights metric ~golden ~approx in
            if not (Float.equal got want) then
              Alcotest.failf "seed %d metric %s cell %s: measure %.17g <> oracle %.17g"
                seed (Metrics.kind_to_string metric) cell got want;
            let via_graphs =
              Metrics.compare_graphs ?weights metric ~original:g ~approx:h pats
            in
            if not (Float.equal via_graphs want) then
              Alcotest.failf
                "seed %d metric %s cell %s: compare_graphs %.17g <> oracle %.17g"
                seed (Metrics.kind_to_string metric) cell via_graphs want)
          (matrix_weight_cells rng len))
      all_metrics
  done

let test_matrix_enum_support_oracle () =
  (* The end-to-end ENUM path: an enumerated distribution's signatures +
     round weights through [measure] must equal the naive oracle over the
     support, for every metric. *)
  for seed = 1 to 20 do
    let npis = 4 + (seed mod 7) in
    let profile =
      {
        Verify.Gen.npis;
        npos = 1 + (seed mod 6);
        nands = 20 + (seed mod 40);
        reconv = 0.35;
        compl_p = 0.5;
      }
    in
    let g = Verify.Gen.random ~profile (seed + 300) in
    let rng = Logic.Rng.create (seed * 131) in
    let h = mutate_graph rng g in
    let nrows = 3 + Logic.Rng.int rng 60 in
    let rows =
      Array.init nrows (fun _ -> Array.init npis (fun _ -> Logic.Rng.bool rng))
    in
    let weights = Array.init nrows (fun _ -> 0.125 +. (2.0 *. Logic.Rng.float rng)) in
    let d = Distr.enum ~rows ~weights in
    let pats = Distr.signatures d in
    Array.iteri
      (fun i s ->
        for m = 0 to nrows - 1 do
          if Bitvec.get s m <> rows.(m).(i) then
            Alcotest.fail "signature orientation: rows.(m).(i) = round m of PI i"
        done)
      pats;
    let golden = Sim.Engine.simulate_pos g pats in
    let approx = Sim.Engine.simulate_pos h pats in
    List.iter
      (fun metric ->
        let got =
          Metrics.measure ?weights:(Distr.round_weights d) metric ~golden ~approx
        in
        let want = oracle_measure ~weights metric ~golden ~approx in
        if not (Float.equal got want) then
          Alcotest.failf "seed %d metric %s: enum support %.17g <> oracle %.17g"
            seed (Metrics.kind_to_string metric) got want)
      all_metrics
  done

(* ---------- Maxerr: exact worst-case certification ---------- *)

let max_kinds = [ Metrics.Maxed; Metrics.Maxhd; Metrics.Maxred ]

let rational_of_round kind g a =
  match kind with
  | Metrics.Maxed -> (abs (g - a), 1)
  | Metrics.Maxhd -> (oracle_popcount (g lxor a), 1)
  | Metrics.Maxred -> (abs (g - a), max g 1)
  | _ -> assert false

(* Exact rational maximum by 2^n enumeration, compared with integer cross
   multiplication — no floats anywhere. *)
let brute_max_rational kind ~gv ~av =
  let best = ref (0, 1) in
  Array.iteri
    (fun m g ->
      let rn, rd = rational_of_round kind g av.(m) in
      let bn, bd = !best in
      if rn * bd > bn * rd then best := (rn, rd))
    gv;
  !best

let test_maxerr_certify_matches_brute_force () =
  for seed = 1 to 12 do
    let npis = 4 + (seed mod 6) in
    let profile =
      {
        Verify.Gen.npis;
        npos = 2 + (seed mod 5);
        nands = 25 + (seed mod 40);
        reconv = 0.35;
        compl_p = 0.5;
      }
    in
    let g = Verify.Gen.random ~profile seed in
    let rng = Logic.Rng.create (seed * 31) in
    let h = mutate_graph rng g in
    let pats = Sim.Patterns.exhaustive ~npis in
    let golden = Sim.Engine.simulate_pos g pats in
    let approx = Sim.Engine.simulate_pos h pats in
    let gv = Metrics.output_values golden and av = Metrics.output_values approx in
    List.iter
      (fun kind ->
        let bn, bd = brute_max_rational kind ~gv ~av in
        match Maxerr.certify kind ~original:g ~approx:h with
        | Maxerr.Undecided msg ->
            Alcotest.failf "seed %d %s: undecided: %s" seed
              (Metrics.kind_to_string kind) msg
        | Maxerr.Exact { max; num; den; refinements } ->
            if num * bd <> bn * den then
              Alcotest.failf "seed %d %s: certified %d/%d <> brute force %d/%d" seed
                (Metrics.kind_to_string kind) num den bn bd;
            check "certified float is the rational, correctly rounded" true
              (Float.equal max (float_of_int bn /. float_of_int bd));
            (* Integer-valued kinds: the certificate must equal the sampled
               measurement to the last bit. *)
            if kind <> Metrics.Maxred then
              check "certified max equals measured max" true
                (Float.equal max (Metrics.measure kind ~golden ~approx));
            (* An exhaustive starting sample already attains the true
               maximum, so the first miter must close the proof. *)
            Alcotest.(check int) "no refinement needed from an exhaustive start" 0
              refinements)
      max_kinds
  done

let test_maxerr_violation_miter_oracle () =
  (* The violation miter's single PO must be true exactly where the error
     strictly exceeds num/den — checked against all 2^n inputs. *)
  for seed = 1 to 8 do
    let npis = 3 + (seed mod 4) in
    let profile =
      {
        Verify.Gen.npis;
        npos = 2 + (seed mod 4);
        nands = 15 + seed;
        reconv = 0.3;
        compl_p = 0.5;
      }
    in
    let g = Verify.Gen.random ~profile (seed + 500) in
    let rng = Logic.Rng.create (seed * 77) in
    let h = mutate_graph rng g in
    let pats = Sim.Patterns.exhaustive ~npis in
    let gv = Metrics.output_values (Sim.Engine.simulate_pos g pats) in
    let av = Metrics.output_values (Sim.Engine.simulate_pos h pats) in
    List.iter
      (fun kind ->
        let bounds =
          match kind with
          | Metrics.Maxred -> [ (0, 1); (1, 2); (1, 1); (3, 2); (7, 3) ]
          | _ -> [ (0, 1); (1, 1); (2, 1); (5, 1) ]
        in
        List.iter
          (fun (num, den) ->
            let miter = Maxerr.violation kind ~original:g ~approx:h ~num ~den in
            Alcotest.(check int) "miter shares the PIs" npis (Graph.num_pis miter);
            Alcotest.(check int) "single violation output" 1 (Graph.num_pos miter);
            let got = (Sim.Engine.simulate_pos miter pats).(0) in
            let want =
              Bitvec.init (1 lsl npis) (fun m ->
                  let rn, rd = rational_of_round kind gv.(m) av.(m) in
                  rn * den > num * rd)
            in
            if not (Bitvec.equal got want) then
              Alcotest.failf "seed %d %s bound %d/%d: miter disagrees with oracle"
                seed (Metrics.kind_to_string kind) num den)
          bounds)
      max_kinds
  done

let test_maxerr_refinement_loop () =
  (* AND of 18 PIs vs constant 0: the single erring input (all ones) has
     probability 2^-18, so the 4096-round starting sample misses it and
     certification must climb to the true maximum through miter
     counterexamples — the witness-refinement loop itself. *)
  let g = Graph.create () in
  let lits = List.init 18 (fun _ -> Graph.add_pi g) in
  let conj =
    List.fold_left (fun acc l -> Graph.and_ g acc l) (List.hd lits) (List.tl lits)
  in
  ignore (Graph.add_po g conj);
  let h = Graph.create () in
  for _ = 1 to 18 do
    ignore (Graph.add_pi h)
  done;
  ignore (Graph.add_po h Graph.const0);
  (match Maxerr.certify Metrics.Maxed ~original:g ~approx:h with
  | Maxerr.Exact { max; num; den; refinements } ->
      check_float "true max is 1" 1.0 max;
      Alcotest.(check int) "num" 1 num;
      Alcotest.(check int) "den" 1 den;
      check "the sample missed it: a refinement was needed" true (refinements >= 1)
  | Maxerr.Undecided msg -> Alcotest.failf "undecided: %s" msg);
  match Maxerr.certified_le Metrics.Maxed ~original:g ~approx:h ~threshold:0.5 with
  | Ok ok -> check "max 1 exceeds threshold 0.5" false ok
  | Error msg -> Alcotest.failf "certified_le undecided: %s" msg

let test_maxerr_validation () =
  let g = Graph.create () in
  let a = Graph.add_pi g in
  ignore (Graph.add_po g a);
  Alcotest.check_raises "mean metric rejected"
    (Invalid_argument "Maxerr.certify: not a max metric") (fun () ->
      ignore (Maxerr.certify Metrics.Er ~original:g ~approx:g));
  let h = Graph.create () in
  ignore (Graph.add_pi h);
  ignore (Graph.add_pi h);
  ignore (Graph.add_po h Graph.const0);
  Alcotest.check_raises "interface mismatch"
    (Invalid_argument "Maxerr.certify: PI count mismatch") (fun () ->
      ignore (Maxerr.certify Metrics.Maxed ~original:g ~approx:h))

(* ---------- Properties (with shrinking) ---------- *)

(* Same interface, every PO constant 0: a maximally-wrong approximation
   that shrinks along with the circuit. *)
let const0_like g =
  let h = Graph.create () in
  for _ = 1 to Graph.num_pis g do
    ignore (Graph.add_pi h)
  done;
  Graph.iter_pos g (fun _ _ -> ignore (Graph.add_po h Graph.const0));
  h

let prop_profile =
  { Verify.Gen.npis = 8; npos = 5; nands = 50; reconv = 0.4; compl_p = 0.5 }

let test_prop_mhd_bounded_by_er () =
  Verify.Prop.check_exn ~profile:prop_profile ~name:"mhd <= npos * er" ~seed:100
    ~count:40 (fun g ->
      let npis = Graph.num_pis g and npos = Graph.num_pos g in
      if npos = 0 then Ok ()
      else begin
        let pats = Sim.Patterns.exhaustive ~npis in
        let golden = Sim.Engine.simulate_pos g pats in
        let approx = Sim.Engine.simulate_pos (const0_like g) pats in
        let mhd = Metrics.mhd ~golden ~approx and er = Metrics.er ~golden ~approx in
        if mhd <= (float_of_int npos *. er) +. 1e-9 then Ok ()
        else
          Error
            (Printf.sprintf "mhd %.17g > %d * er %.17g" mhd npos er)
      end)

let test_prop_enum_uniform_is_unif () =
  (* Uniform enumerated weights must change NOTHING: the effective
     multiplier is exactly 1.0, so weighted measurement is bit-identical to
     the unweighted prepared path for every metric. *)
  Verify.Prop.check_exn ~profile:prop_profile
    ~name:"uniform enum weights are the uniform distribution" ~seed:200 ~count:30
    (fun g ->
      if Graph.num_pos g = 0 then Ok ()
      else begin
        let pats = Sim.Patterns.exhaustive ~npis:(Graph.num_pis g) in
        let len = 1 lsl Graph.num_pis g in
        let golden = Sim.Engine.simulate_pos g pats in
        let approx = Sim.Engine.simulate_pos (const0_like g) pats in
        let uniform = Array.make len 1.0 in
        let rec go = function
          | [] -> Ok ()
          | kind :: rest ->
              let weighted = Metrics.measure ~weights:uniform kind ~golden ~approx in
              let plain =
                Metrics.measure_prepared (Metrics.prepare kind ~golden) ~approx
              in
              if Float.equal weighted plain then go rest
              else
                Error
                  (Printf.sprintf "%s: weighted %.17g <> unweighted %.17g"
                     (Metrics.kind_to_string kind) weighted plain)
        in
        go all_metrics
      end)

let test_prop_sampled_max_lower_bounds () =
  (* A sampled maximum ranges over a subset of the per-round terms the
     exhaustive maximum ranges over, so it can never exceed it — as exact
     floats, no tolerance. *)
  Verify.Prop.check_exn ~profile:prop_profile
    ~name:"sampled max never exceeds the exhaustive max" ~seed:300 ~count:30
    (fun g ->
      if Graph.num_pos g = 0 then Ok ()
      else begin
        let npis = Graph.num_pis g in
        let h = const0_like g in
        let full = Sim.Patterns.exhaustive ~npis in
        let rng = Logic.Rng.create ((Graph.num_ands g * 17) + 1) in
        let sample = Sim.Patterns.random rng ~npis ~len:128 in
        let rec go = function
          | [] -> Ok ()
          | kind :: rest ->
              let exact = Metrics.compare_graphs kind ~original:g ~approx:h full in
              let sampled = Metrics.compare_graphs kind ~original:g ~approx:h sample in
              if sampled <= exact then go rest
              else
                Error
                  (Printf.sprintf "%s: sampled %.17g > exhaustive %.17g"
                     (Metrics.kind_to_string kind) sampled exact)
        in
        go max_kinds
      end)

let sigs_of_values npos vs =
  Array.init npos (fun i ->
      Bitvec.init (Array.length vs) (fun m -> (vs.(m) lsr i) land 1 = 1))

let test_prop_prefix_max_monotone () =
  (* Value-level property with shrinking: over any pair of output-value
     sequences, the max metrics are monotone in the observed prefix and
     every prefix is bounded by the full maximum. *)
  let gen seed =
    let rng = Logic.Rng.create (0xBEEF + seed) in
    let n = 1 + Logic.Rng.int rng 80 in
    ( Array.init n (fun _ -> Logic.Rng.int rng 256),
      Array.init n (fun _ -> Logic.Rng.int rng 256) )
  in
  let shrink (gv, av) =
    let n = Array.length gv in
    if n <= 1 then []
    else
      [
        (Array.sub gv 0 (n / 2), Array.sub av 0 (n / 2));
        (Array.sub gv 0 (n - 1), Array.sub av 0 (n - 1));
      ]
  in
  let repr (gv, av) =
    Printf.sprintf "%d rounds, first pair (%d, %d)" (Array.length gv) gv.(0) av.(0)
  in
  Verify.Prop.check_value_exn ~name:"prefix maxima are monotone" ~seed:900 ~count:50
    ~gen ~shrink ~repr (fun (gv, av) ->
      let n = Array.length gv in
      let golden = sigs_of_values 8 gv and approx = sigs_of_values 8 av in
      let prefix kind k =
        Metrics.measure kind
          ~golden:(Array.map (fun s -> Bitvec.init k (Bitvec.get s)) golden)
          ~approx:(Array.map (fun s -> Bitvec.init k (Bitvec.get s)) approx)
      in
      let rec per_kind = function
        | [] -> Ok ()
        | kind :: rest ->
            let full = prefix kind n in
            let rec loop k prev =
              if k > n then per_kind rest
              else
                let p = prefix kind k in
                if p > full then
                  Error
                    (Printf.sprintf "%s: prefix %d max %.17g > full %.17g"
                       (Metrics.kind_to_string kind) k p full)
                else if p < prev then
                  Error
                    (Printf.sprintf "%s: prefix max shrank at %d (%.17g < %.17g)"
                       (Metrics.kind_to_string kind) k p prev)
                else loop (k + 7) p
            in
            loop 1 0.0
      in
      per_kind max_kinds)

(* ---------- Flow certificates: the right bound family, and only it ---------- *)

let test_flow_max_miter_certificate () =
  (* ctrl has 7 PIs, so eval_rounds 256 makes the evaluation exhaustive:
     the sampled max IS the true max, and the miter certificate must agree
     with it to the last bit. *)
  let config =
    {
      (Core.Config.default ~metric:Metrics.Maxed ~threshold:6.0) with
      Core.Config.eval_rounds = 256;
      max_iters = 6;
      seed = 3;
    }
  in
  let g = Circuits.Epfl_control.ctrl () in
  let _, r = Core.Flow.run ~config g in
  match r.Core.Flow.certified with
  | Some { Core.Flow.upper; family = Core.Flow.Max_miter } ->
      check "certified max equals the exhaustively sampled max" true
        (Float.equal upper r.Core.Flow.final_est_error);
      check "certified within the budget" true (upper <= 6.0)
  | Some { Core.Flow.family; _ } ->
      Alcotest.failf "expected max-miter, got %s" (Core.Flow.family_to_string family)
  | None -> Alcotest.fail "expected a max-miter certificate"

let test_flow_never_hoeffding_for_max () =
  (* Monte-Carlo evaluation (512 < 2^10 rounds on cavlc): a mean metric
     earns a Hoeffding certificate, a max metric NEVER does — its sampled
     value bounds the truth from below, so the only sound families are the
     miter proof or nothing. *)
  let run metric threshold =
    let config =
      {
        (Core.Config.default ~metric ~threshold) with
        Core.Config.eval_rounds = 512;
        max_iters = 4;
        seed = 7;
      }
    in
    snd (Core.Flow.run ~config (Circuits.Epfl_control.cavlc ()))
  in
  let r_mean = run Metrics.Er 0.05 in
  (match r_mean.Core.Flow.certified with
  | Some { Core.Flow.upper; family = Core.Flow.Hoeffding } ->
      check "hoeffding upper bounds the sample" true
        (upper >= r_mean.Core.Flow.final_est_error)
  | Some { Core.Flow.family; _ } ->
      Alcotest.failf "er run: expected hoeffding, got %s"
        (Core.Flow.family_to_string family)
  | None -> Alcotest.fail "er run: expected a hoeffding certificate");
  let r_max = run Metrics.Maxed 2.0 in
  match r_max.Core.Flow.certified with
  | Some { Core.Flow.family = Core.Flow.Hoeffding; _ } ->
      Alcotest.fail "a max-metric report claimed a Hoeffding bound"
  | Some { Core.Flow.upper; family = Core.Flow.Max_miter } ->
      check "sampled max is a lower bound on the proven max" true
        (upper >= r_max.Core.Flow.final_est_error)
  | Some { Core.Flow.family = Core.Flow.Exhaustive; _ } ->
      Alcotest.fail "monte-carlo evaluation cannot be exhaustive"
  | None ->
      (* An undecided miter is a sound reason to certify nothing; claiming
         Hoeffding would not be. *)
      ()

let test_flow_enum_exhaustive_certificate () =
  (* An enumerated distribution is measured exactly over its support, so
     the certificate is the measurement itself, family Exhaustive. *)
  let rows = Array.init 12 (fun m -> Array.init 7 (fun i -> (m lsr i) land 1 = 1)) in
  let weights = Array.init 12 (fun m -> 1.0 +. float_of_int (m mod 3)) in
  let config =
    {
      (Core.Config.default ~metric:Metrics.Er ~threshold:0.25) with
      Core.Config.eval_rounds = 256;
      max_iters = 4;
      seed = 5;
      distr = Distr.enum ~rows ~weights;
    }
  in
  let _, r = Core.Flow.run ~config (Circuits.Epfl_control.ctrl ()) in
  match r.Core.Flow.certified with
  | Some { Core.Flow.upper; family = Core.Flow.Exhaustive } ->
      check "exact over the support" true
        (Float.equal upper r.Core.Flow.final_est_error)
  | Some { Core.Flow.family; _ } ->
      Alcotest.failf "expected exhaustive, got %s" (Core.Flow.family_to_string family)
  | None -> Alcotest.fail "expected an exhaustive certificate"

let test_maxed_kill_resume_bit_identity () =
  (* The resume guarantee must hold for a worst-case-error run too: same
     final sampled max, same certificate, equivalent circuit. *)
  let config =
    {
      (Core.Config.default ~metric:Metrics.Maxed ~threshold:2.0) with
      Core.Config.eval_rounds = 1024;
      max_iters = 10;
      seed = 13;
    }
  in
  let g () = Circuits.Epfl_control.cavlc () in
  let a_full, r_full = Core.Flow.run ~config (g ()) in
  let dir = Filename.temp_file "alsrac_errest_maxresume" "" ^ ".d" in
  (match
     Core.Flow.run ~journal:dir
       ~config:
         { config with Core.Config.fault = [ Core.Fault.Kill_after { applied = 1 } ] }
       (g ())
   with
  | _ -> Alcotest.fail "expected the injected kill to fire"
  | exception Core.Fault.Killed -> ());
  let a_res, r_res = Core.Flow.resume ~jobs:2 dir in
  Alcotest.(check int) "same applied count" r_full.Core.Flow.applied
    r_res.Core.Flow.applied;
  check "bit-identical final sampled max" true
    (Float.equal r_full.Core.Flow.final_est_error r_res.Core.Flow.final_est_error);
  (match (r_full.Core.Flow.certified, r_res.Core.Flow.certified) with
  | Some a, Some b ->
      check "same certified upper bound" true
        (Float.equal a.Core.Flow.upper b.Core.Flow.upper);
      check "same bound family" true (a.Core.Flow.family = b.Core.Flow.family)
  | None, None -> ()
  | _ -> Alcotest.fail "certificates diverged across resume");
  check "identical PO behaviour" true (Util.equivalent a_full a_res)

let () =
  Alcotest.run "errest"
    [
      ( "metrics",
        [
          Alcotest.test_case "er basic" `Quick test_er_basic;
          Alcotest.test_case "er equal" `Quick test_er_zero_on_equal;
          Alcotest.test_case "output values" `Quick test_output_values;
          Alcotest.test_case "mean ed" `Quick test_mean_ed;
          Alcotest.test_case "nmed" `Quick test_nmed;
          Alcotest.test_case "mred" `Quick test_mred;
          Alcotest.test_case "mred zero guard" `Quick test_mred_zero_guard;
          Alcotest.test_case "shape mismatch" `Quick test_shape_mismatch;
          Alcotest.test_case "compare graphs" `Quick test_compare_graphs_exact;
          Alcotest.test_case "evaluate known" `Quick test_evaluate_known_er;
        ] );
      ( "observability",
        [
          Alcotest.test_case "exact on trees" `Quick test_observability_tree_exact;
          Alcotest.test_case "po drivers / agreement" `Quick test_observability_po_drivers_full;
        ] );
      ( "batch",
        [ Alcotest.test_case "base error" `Quick test_batch_base_error_zero ]
        @ Util.qcheck_cases [ prop_batch_equals_rebuild ] );
      ( "differential",
        [
          Alcotest.test_case "random circuits vs oracle" `Quick
            test_differential_random_circuits;
          Alcotest.test_case "jobs invariance" `Quick test_differential_jobs_invariance;
          Alcotest.test_case "benchmark suite vs oracle" `Quick
            test_differential_benchmark_suite;
          Alcotest.test_case "early exit + counters" `Quick test_early_exit_counter;
          Alcotest.test_case "kill and resume bit identity" `Slow
            test_kill_resume_bit_identity;
        ] );
      ( "certify",
        [
          Alcotest.test_case "margin shrinks" `Quick test_hoeffding_margin_shrinks;
          Alcotest.test_case "certified_le" `Quick test_certified_le;
          Alcotest.test_case "samples needed" `Quick test_samples_needed_roundtrip;
          Alcotest.test_case "validation" `Quick test_certify_validation;
          Alcotest.test_case "monotonicity" `Quick test_certify_monotone;
        ]
        @ Util.qcheck_cases [ prop_samples_needed_minimal ] );
      ( "metrics-ext",
        [
          Alcotest.test_case "mean families hand values" `Quick test_mean_families_hand;
          Alcotest.test_case "max families hand values" `Quick test_max_families_hand;
          Alcotest.test_case "kind classification" `Quick test_kind_classification;
          Alcotest.test_case "weighted measurement" `Quick test_weighted_measure_hand;
        ] );
      ( "distr",
        [
          Alcotest.test_case "parse and round trip" `Quick test_distr_parse_and_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_distr_parse_errors;
          Alcotest.test_case "sampling stays on support" `Quick test_distr_sample_support;
        ] );
      ( "matrix-oracle",
        [
          Alcotest.test_case "every metric x every distribution shape" `Quick
            test_matrix_oracle_exhaustive;
          Alcotest.test_case "enumerated support end to end" `Quick
            test_matrix_enum_support_oracle;
        ] );
      ( "maxerr",
        [
          Alcotest.test_case "certify equals 2^n brute force" `Quick
            test_maxerr_certify_matches_brute_force;
          Alcotest.test_case "violation miter vs oracle" `Quick
            test_maxerr_violation_miter_oracle;
          Alcotest.test_case "witness refinement loop" `Slow test_maxerr_refinement_loop;
          Alcotest.test_case "validation" `Quick test_maxerr_validation;
        ] );
      ( "properties",
        [
          Alcotest.test_case "mhd bounded by npos * er" `Quick test_prop_mhd_bounded_by_er;
          Alcotest.test_case "uniform enum weights change nothing" `Quick
            test_prop_enum_uniform_is_unif;
          Alcotest.test_case "sampled max lower-bounds exhaustive" `Quick
            test_prop_sampled_max_lower_bounds;
          Alcotest.test_case "prefix maxima monotone" `Quick test_prop_prefix_max_monotone;
        ] );
      ( "flow-certificates",
        [
          Alcotest.test_case "max-miter family on exhaustive eval" `Slow
            test_flow_max_miter_certificate;
          Alcotest.test_case "never hoeffding for a max metric" `Slow
            test_flow_never_hoeffding_for_max;
          Alcotest.test_case "enum distribution is exhaustive" `Slow
            test_flow_enum_exhaustive_certificate;
          Alcotest.test_case "maxed kill and resume bit identity" `Slow
            test_maxed_kill_resume_bit_identity;
        ] );
    ]
