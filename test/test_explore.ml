(* lib/explore: canonical Pareto fronts (unit + property tests), budget
   ladders, the UCB1 bandit policy (including journaled kill/resume), and
   the corpus sweep's resume/shard/jobs determinism — down to a SIGKILL of
   the real CLI mid-corpus. *)

module F = Explore.Front
module Rng = Logic.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let fresh_dir () = Filename.temp_file "alsrac_explore" "" ^ ".d"

(* ---------- Front: unit ---------- *)

let p ?(tag = "t") err cost = { F.err; cost; tag }

let test_front_basics () =
  let f = F.of_points [ p 0.1 10.0; p 0.2 5.0; p 0.3 2.0 ] in
  check_int "incomparable points all kept" 3 (F.size f);
  let f = F.insert f (p 0.15 20.0) in
  check_int "dominated insert is a no-op" 3 (F.size f);
  let f = F.insert f (p 0.05 1.0) in
  check_int "dominating insert evicts everything" 1 (F.size f);
  check "result is an antichain" true (F.is_antichain f)

let test_front_tag_tiebreak () =
  (* Equal coordinates: the lexicographically smaller tag wins, in both
     insertion orders — that is what makes the front canonical. *)
  let a = F.insert (F.insert F.empty (p ~tag:"b" 0.1 1.0)) (p ~tag:"a" 0.1 1.0) in
  let b = F.insert (F.insert F.empty (p ~tag:"a" 0.1 1.0)) (p ~tag:"b" 0.1 1.0) in
  check "same front either way" true (F.equal a b);
  check_str "smaller tag kept" "a" (List.hd (F.points a)).F.tag

let test_front_serialization () =
  let f = F.of_points [ p ~tag:"x" 0.125 3.0; p ~tag:"y" 0.0625 7.5 ] in
  let s = F.to_string f in
  check "round-trips" true (F.equal f (F.of_string s));
  check_str "byte-stable" s (F.to_string (F.of_string s));
  (match F.of_string "p nonsense 1.0 t" with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ());
  match F.insert F.empty (p ~tag:"bad tag" 0.1 1.0) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ---------- Front: properties ---------- *)

(* Coarse coordinate grid so random cases hit equal coordinates and exact
   dominance often; tags from a small pool to exercise the tie-break. *)
let gen_points seed =
  let rng = Rng.create seed in
  List.init
    (1 + Rng.int rng 40)
    (fun _ ->
      {
        F.err = float_of_int (Rng.int rng 8) /. 8.0;
        cost = float_of_int (Rng.int rng 8);
        tag = Printf.sprintf "t%d" (Rng.int rng 6);
      })

(* Shrink a point list by dropping one element at a time. *)
let shrink_points ps =
  List.init (List.length ps) (fun i -> List.filteri (fun j _ -> j <> i) ps)

let repr_points ps =
  String.concat "; "
    (List.map (fun q -> Printf.sprintf "(%g,%g,%s)" q.F.err q.F.cost q.F.tag) ps)

let check_prop ~name prop =
  Verify.Prop.check_value_exn ~name ~seed:1 ~count:200 ~gen:gen_points
    ~shrink:shrink_points ~repr:repr_points prop

let test_prop_antichain () =
  check_prop ~name:"front-antichain" (fun ps ->
      if F.is_antichain (F.of_points ps) then Ok ()
      else Error "of_points is not an antichain")

let test_prop_dominated_never_survives () =
  check_prop ~name:"front-no-dominated" (fun ps ->
      let f = F.of_points ps in
      let offender =
        List.find_opt
          (fun m -> List.exists (fun q -> F.dominates q m) ps)
          (F.points f)
      in
      match offender with
      | None -> Ok ()
      | Some m ->
          Error (Printf.sprintf "member (%g,%g,%s) is dominated" m.F.err m.F.cost m.F.tag))

let test_prop_merge_equals_union () =
  check_prop ~name:"front-merge-union" (fun ps ->
      let rng = Rng.create (Hashtbl.hash ps) in
      let nshards = 1 + Rng.int rng 4 in
      let parts = Array.make nshards [] in
      List.iteri (fun i q -> parts.(i mod nshards) <- q :: parts.(i mod nshards)) ps;
      let merged =
        Array.fold_left (fun acc part -> F.merge acc (F.of_points part)) F.empty parts
      in
      let whole = F.of_points ps in
      if not (F.equal merged whole) then
        Error (Printf.sprintf "merge of %d shard fronts differs from union front" nshards)
      else if F.to_string merged <> F.to_string whole then
        Error "equal fronts serialized to different bytes"
      else Ok ())

(* ---------- Ladder ---------- *)

let test_ladder_parse () =
  (match Explore.Ladder.parse "default" with
  | Ok ls -> check_int "three default ladders" 3 (List.length ls)
  | Error e -> Alcotest.fail e);
  match Explore.Ladder.parse "er=0.01,0.05;nmed=0.001" with
  | Ok [ a; b ] ->
      check "er ladder" true (a.Explore.Ladder.metric = Errest.Metrics.Er);
      check "nmed ladder" true (b.Explore.Ladder.metric = Errest.Metrics.Nmed);
      check_int "two er budgets" 2 (List.length a.Explore.Ladder.budgets)
  | Ok _ -> Alcotest.fail "expected two ladders"
  | Error e -> Alcotest.fail e

let test_ladder_roundtrip_and_rejects () =
  (match Explore.Ladder.parse "er=0.001,0.03;mred=0.01,0.1" with
  | Ok ls -> (
      let spec = Explore.Ladder.to_spec ls in
      match Explore.Ladder.parse spec with
      | Ok ls' -> check "spec round-trips exactly" true (ls = ls')
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Explore.Ladder.parse bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted bad spec %S" bad)
      | Error _ -> ())
    [ "er=0.05,0.01"; "er=0"; "er=2.0"; "banana=0.1"; "er=0.01;er=0.05"; "er=" ]

let test_ladder_max_budgets () =
  (* Worst-case and absolute-distance ladders are not rate-like: budgets
     above 1 are legal (a max-ED ladder of 1,3,7), zero is not, and the
     rate-like metrics keep their (0, 1] range. *)
  (match Explore.Ladder.parse "maxed=1,3,7" with
  | Ok [ l ] ->
      check "maxed metric" true (l.Explore.Ladder.metric = Errest.Metrics.Maxed);
      check "budgets kept" true (l.Explore.Ladder.budgets = [ 1.0; 3.0; 7.0 ])
  | Ok _ -> Alcotest.fail "expected one ladder"
  | Error e -> Alcotest.fail e);
  (match Explore.Ladder.parse "mse=0.5,2.5;maxhd=2" with
  | Ok [ _; _ ] -> ()
  | Ok _ -> Alcotest.fail "expected two ladders"
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Explore.Ladder.parse bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted bad spec %S" bad)
      | Error _ -> ())
    [ "maxed=0"; "maxed=3,1"; "maxed=1,1"; "nmhd=1.5"; "maxred=inf"; "mhd=-1" ];
  match Explore.Ladder.parse "maxed=1,3,7;maxred=0.5,2" with
  | Ok ls -> (
      match Explore.Ladder.parse (Explore.Ladder.to_spec ls) with
      | Ok ls' -> check "max ladders round-trip through hex spec" true (ls = ls')
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e

(* ---------- Policy ---------- *)

let test_policy_classify_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let a =
      Explore.Policy.classify
        ~depth_frac:(Rng.float rng *. 1.5)
        ~ndivisors:(Rng.int rng 9)
    in
    check "arm in range" true (a >= 0 && a < Explore.Policy.arms)
  done

let is_permutation order =
  let seen = Array.make Explore.Policy.arms false in
  Array.length order = Explore.Policy.arms
  && Array.for_all
       (fun a ->
         a >= 0 && a < Explore.Policy.arms && not seen.(a) && (seen.(a) <- true; true))
       order

let test_policy_deterministic_and_restorable () =
  let feed_script h =
    List.iter
      (fun (arm, reward) -> h.Core.Config.feed ~arm ~reward)
      [ (3, 0.5); (3, 0.25); (7, 0.9); (1, 0.0); (7, 0.8); (11, 0.1) ]
  in
  let h1 = Explore.Policy.hook () and h2 = Explore.Policy.hook () in
  check "untried order is by index" true
    (h1.Core.Config.choose () = Array.init Explore.Policy.arms Fun.id);
  feed_script h1;
  feed_script h2;
  check "permutation" true (is_permutation (h1.Core.Config.choose ()));
  check "same history, same order" true
    (h1.Core.Config.choose () = h2.Core.Config.choose ());
  let h3 = Explore.Policy.hook () in
  h3.Core.Config.restore_state (h1.Core.Config.policy_state ());
  check "state restore preserves order" true
    (h1.Core.Config.choose () = h3.Core.Config.choose ());
  check_str "state serialization is stable"
    (h1.Core.Config.policy_state ())
    (h3.Core.Config.policy_state ());
  match h3.Core.Config.restore_state "ucb1 garbage" with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ()

(* ---------- Flow with the bandit: determinism and kill/resume ---------- *)

let bandit_config =
  { (Core.Config.default ~metric:Errest.Metrics.Er ~threshold:0.05) with
    Core.Config.eval_rounds = 1024; max_iters = 12; seed = 7;
    policy = Explore.Policy.make Explore.Policy.Bandit }

let circuit () = Circuits.Epfl_control.cavlc ()

let bandit_baseline =
  lazy
    (Core.Flow.run
       ~config:{ bandit_config with Core.Config.policy = Explore.Policy.make Explore.Policy.Bandit }
       (circuit ()))

let test_bandit_flow_deterministic () =
  let a1, r1 = Lazy.force bandit_baseline in
  let a2, r2 =
    Core.Flow.run
      ~config:{ bandit_config with Core.Config.policy = Explore.Policy.make Explore.Policy.Bandit }
      (circuit ())
  in
  check "bandit accepted something" true (r1.Core.Flow.applied > 0);
  check_int "same ands" (Aig.Graph.num_ands a1) (Aig.Graph.num_ands a2);
  check "same events" true (r1.Core.Flow.events = r2.Core.Flow.events);
  match r1.Core.Flow.policy with
  | Some pr ->
      check_str "reported policy name" Explore.Policy.bandit_name
        pr.Core.Flow.policy_name;
      check_int "arm stats cover all arms" Explore.Policy.arms
        (Array.length pr.Core.Flow.arm_stats)
  | None -> Alcotest.fail "bandit run reported no policy stats"

let test_bandit_kill_and_resume () =
  let a_full, r_full = Lazy.force bandit_baseline in
  check "baseline applied enough LACs" true (r_full.Core.Flow.applied >= 4);
  let dir = fresh_dir () in
  let config =
    { bandit_config with
      Core.Config.policy = Explore.Policy.make Explore.Policy.Bandit;
      fault = [ Core.Fault.Kill_after { applied = 3 } ] }
  in
  (match Core.Flow.run ~journal:dir ~config (circuit ()) with
  | _ -> Alcotest.fail "expected the injected kill to fire"
  | exception Core.Fault.Killed -> ());
  (* Resuming without the bandit hook must refuse: the policy is code,
     the journal only names it. *)
  (match Core.Flow.resume dir with
  | _ -> Alcotest.fail "resume without the policy hook should fail"
  | exception Failure _ -> ());
  let a_res, r_res = Core.Flow.resume ~policy:(Explore.Policy.hook ()) dir in
  check "resumed flag set" true r_res.Core.Flow.resumed;
  check_int "same final AND count" (Aig.Graph.num_ands a_full) (Aig.Graph.num_ands a_res);
  check_int "same applied count" r_full.Core.Flow.applied r_res.Core.Flow.applied;
  check "identical PO behaviour" true (Util.equivalent a_full a_res)

(* ---------- Sweep: resume idempotence, shard and jobs invariance ---------- *)

let tiny_spec dir =
  {
    Explore.Sweep.dir;
    benchmarks = [ "ctrl"; "int2float" ];
    ladders =
      [ { Explore.Ladder.metric = Errest.Metrics.Er; budgets = [ 0.01; 0.05 ] } ];
    policy = Explore.Policy.Greedy;
    seed = 1;
    eval_rounds = 128;
    max_iters = 3;
    shards = 1;
    shard_id = 0;
    jobs = 1;
    distr = Errest.Distr.Unif;
  }

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let front_files dir =
  let d = Filename.concat dir "fronts" in
  Sys.readdir d |> Array.to_list |> List.sort compare
  |> List.map (fun f -> (f, read_file (Filename.concat d f)))

let run_spec spec =
  match Explore.Sweep.run spec with
  | Ok p -> p
  | Error e -> Alcotest.fail e

let test_sweep_smoke_and_resume () =
  let dir = fresh_dir () in
  let p1 = run_spec (tiny_spec dir) in
  check_int "four points" 4 p1.Explore.Sweep.total;
  check_int "all ran" 4 p1.Explore.Sweep.ran;
  let fronts1 = front_files dir in
  check "per-bench and corpus fronts written" true (List.length fronts1 = 3);
  (* Resume onto the completed directory: nothing re-runs, fronts stay
     byte-identical.  The CLI flags are deliberately different — the
     stored manifest must supersede them. *)
  let p2 = run_spec { (tiny_spec dir) with Explore.Sweep.seed = 999; jobs = 2 } in
  check_int "nothing re-ran" 0 p2.Explore.Sweep.ran;
  check_int "all found done" 4 p2.Explore.Sweep.already_done;
  check "fronts unchanged" true (front_files dir = fronts1)

let test_sweep_shard_and_jobs_invariance () =
  let ref_dir = fresh_dir () in
  let _ = run_spec (tiny_spec ref_dir) in
  let reference = front_files ref_dir in
  (* Two shard processes over a shared directory. *)
  let sharded = fresh_dir () in
  let _ = run_spec { (tiny_spec sharded) with Explore.Sweep.shards = 2; shard_id = 0 } in
  let p = run_spec { (tiny_spec sharded) with Explore.Sweep.shards = 2; shard_id = 1 } in
  check_int "shard 1 owns half" 2 p.Explore.Sweep.owned;
  check "sharded fronts byte-identical" true (front_files sharded = reference);
  (* Same sweep at jobs = 2. *)
  let jobs2 = fresh_dir () in
  let _ = run_spec { (tiny_spec jobs2) with Explore.Sweep.jobs = 2 } in
  check "jobs=2 fronts byte-identical" true (front_files jobs2 = reference)

let test_sweep_rejects () =
  (match Explore.Sweep.run { (tiny_spec (fresh_dir ())) with Explore.Sweep.shards = 2; shard_id = 2 } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted shard_id >= shards");
  match
    Explore.Sweep.run
      { (tiny_spec (fresh_dir ())) with Explore.Sweep.benchmarks = [ "nonesuch" ] }
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an unknown benchmark"

(* ---------- Sweep: worst-case ladders and enumerated distributions ---------- *)

let maxed_spec dir =
  {
    (tiny_spec dir) with
    Explore.Sweep.benchmarks = [ "ctrl" ];
    ladders =
      [ { Explore.Ladder.metric = Errest.Metrics.Maxed; budgets = [ 1.0; 3.0; 7.0 ] } ];
    eval_rounds = 256;
  }

let test_sweep_maxed_shard_and_jobs_invariance () =
  (* The determinism contract must hold for a worst-case-error sweep too:
     fronts byte-identical across shard splits and pool sizes. *)
  let ref_dir = fresh_dir () in
  let p = run_spec (maxed_spec ref_dir) in
  check_int "three points" 3 p.Explore.Sweep.total;
  let reference = front_files ref_dir in
  check "maxed fronts written" true (reference <> []);
  let sharded = fresh_dir () in
  let _ = run_spec { (maxed_spec sharded) with Explore.Sweep.shards = 3; shard_id = 2 } in
  let _ = run_spec { (maxed_spec sharded) with Explore.Sweep.shards = 3; shard_id = 0 } in
  let _ = run_spec { (maxed_spec sharded) with Explore.Sweep.shards = 3; shard_id = 1 } in
  check "sharded maxed fronts byte-identical" true (front_files sharded = reference);
  let jobs2 = fresh_dir () in
  let _ = run_spec { (maxed_spec jobs2) with Explore.Sweep.jobs = 2 } in
  check "jobs=2 maxed fronts byte-identical" true (front_files jobs2 = reference)

(* 16 support rows over ctrl's 7 inputs, weights cycling 1..4. *)
let enum_distr_7pis =
  Errest.Distr.enum
    ~rows:(Array.init 16 (fun m -> Array.init 7 (fun i -> ((m * 37) lsr i) land 1 = 1)))
    ~weights:(Array.init 16 (fun m -> 1.0 +. float_of_int (m mod 4)))

let test_sweep_enum_distr_manifest () =
  let dir = fresh_dir () in
  let spec =
    { (tiny_spec dir) with Explore.Sweep.benchmarks = [ "ctrl" ]; distr = enum_distr_7pis }
  in
  let p = run_spec spec in
  check_int "all points ran" p.Explore.Sweep.total p.Explore.Sweep.ran;
  (* The distribution is part of the manifest and round-trips bit-exactly. *)
  (match Explore.Store.load_manifest dir with
  | Some m ->
      check "manifest distr round-trips" true
        (Errest.Distr.equal m.Explore.Store.distr enum_distr_7pis)
  | None -> Alcotest.fail "no manifest written");
  let fronts = front_files dir in
  (* Resume with a DIFFERENT command-line distribution: the stored manifest
     supersedes it — nothing re-runs, fronts stay byte-identical. *)
  let p2 = run_spec { spec with Explore.Sweep.distr = Errest.Distr.Unif } in
  check_int "nothing re-ran" 0 p2.Explore.Sweep.ran;
  check "fronts unchanged" true (front_files dir = fronts)

let test_sweep_enum_distr_rejects_width_mismatch () =
  match
    Explore.Sweep.run
      {
        (tiny_spec (fresh_dir ())) with
        Explore.Sweep.benchmarks = [ "ctrl"; "int2float" ];
        distr = enum_distr_7pis;
      }
  with
  | Error e ->
      check "names the offending benchmark" true
        (String.length e >= 9 && String.sub e 0 9 = "benchmark")
  | Ok _ -> Alcotest.fail "accepted an 11-PI benchmark under a 7-PI distribution"

(* ---------- CLI: SIGKILL mid-corpus, resume with different sharding ---------- *)

let alsrac_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/alsrac.exe"

let explore_argv dir ~benchmarks ~ladder ~shards ~shard_id =
  [| alsrac_exe; "explore"; "--dir"; dir; "--benchmarks"; benchmarks;
     "--ladder"; ladder; "--eval-rounds"; "512";
     "--max-iters"; "8"; "--shards"; string_of_int shards; "--shard-id";
     string_of_int shard_id; "--quiet" |]

let spawn_explore dir ~benchmarks ~ladder ~shards ~shard_id =
  let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process alsrac_exe
      (explore_argv dir ~benchmarks ~ladder ~shards ~shard_id)
      null null null
  in
  Unix.close null;
  pid

let run_explore_blocking dir ~benchmarks ~ladder ~shards ~shard_id =
  let pid = spawn_explore dir ~benchmarks ~ladder ~shards ~shard_id in
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, _ -> Alcotest.fail "alsrac explore exited non-zero"

let is_completed_point name =
  (* Ignore [Atomic_file] temp files mid-rename: the kill must land after
     a point actually completed, not while one is being staged. *)
  String.length name >= 6
  && String.sub name 0 6 = "point-"
  && not (String.exists (fun c -> c = '.') name)

let wait_for_some_point dir ~timeout_s =
  let points = Filename.concat dir "points" in
  let t0 = Unix.gettimeofday () in
  let rec go () =
    let have =
      Sys.file_exists points
      && Array.exists is_completed_point (Sys.readdir points)
    in
    if have then true
    else if Unix.gettimeofday () -. t0 > timeout_s then false
    else begin
      Thread.delay 0.002;
      go ()
    end
  in
  go ()

let compare_front_files reference dir =
  List.iter2
    (fun (name_a, bytes_a) (name_b, bytes_b) ->
      check_str "front file name" name_a name_b;
      check_str (Printf.sprintf "front bytes of %s" name_a) bytes_a bytes_b)
    reference (front_files dir)

let test_cli_kill_and_resume_across_shards () =
  let benchmarks = "ctrl,int2float" and ladder = "er=0.005,0.01,0.02,0.05" in
  (* Uninterrupted reference sweep. *)
  let ref_dir = fresh_dir () in
  run_explore_blocking ref_dir ~benchmarks ~ladder ~shards:1 ~shard_id:0;
  let reference = front_files ref_dir in
  check "reference produced fronts" true (reference <> []);
  (* Kill a fresh sweep mid-corpus (as soon as the first point lands)... *)
  let dir = fresh_dir () in
  let pid = spawn_explore dir ~benchmarks ~ladder ~shards:1 ~shard_id:0 in
  let saw_point = wait_for_some_point dir ~timeout_s:60.0 in
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  check "a point completed before the kill" true saw_point;
  let npoints dir = Array.length (Sys.readdir (Filename.concat dir "points")) in
  check "the kill interrupted the corpus" true (npoints dir < 8);
  (* ... and resume it under a different sharding: two processes, one per
     shard.  The completed set must converge and the final front files be
     byte-identical to the uninterrupted run's. *)
  run_explore_blocking dir ~benchmarks ~ladder ~shards:2 ~shard_id:0;
  run_explore_blocking dir ~benchmarks ~ladder ~shards:2 ~shard_id:1;
  check_int "all points completed after resume" 8 (npoints dir);
  compare_front_files reference dir

let test_cli_maxed_kill_and_resume () =
  (* The same SIGKILL discipline for a worst-case-error ladder: a killed
     max-ED sweep resumed under a different sharding converges to the
     uninterrupted run's fronts, byte for byte. *)
  let benchmarks = "ctrl" and ladder = "maxed=1,3,7" in
  let ref_dir = fresh_dir () in
  run_explore_blocking ref_dir ~benchmarks ~ladder ~shards:1 ~shard_id:0;
  let reference = front_files ref_dir in
  check "reference produced fronts" true (reference <> []);
  let dir = fresh_dir () in
  let pid = spawn_explore dir ~benchmarks ~ladder ~shards:1 ~shard_id:0 in
  let saw_point = wait_for_some_point dir ~timeout_s:60.0 in
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  check "a point completed before the kill" true saw_point;
  run_explore_blocking dir ~benchmarks ~ladder ~shards:2 ~shard_id:0;
  run_explore_blocking dir ~benchmarks ~ladder ~shards:2 ~shard_id:1;
  check_int "all points completed after resume" 3
    (Array.length (Sys.readdir (Filename.concat dir "points")));
  compare_front_files reference dir

let () =
  Alcotest.run "explore"
    [
      ( "front",
        [
          Alcotest.test_case "basics" `Quick test_front_basics;
          Alcotest.test_case "tag tie-break" `Quick test_front_tag_tiebreak;
          Alcotest.test_case "serialization" `Quick test_front_serialization;
          Alcotest.test_case "antichain property" `Quick test_prop_antichain;
          Alcotest.test_case "no dominated survivor" `Quick
            test_prop_dominated_never_survives;
          Alcotest.test_case "merge = union front" `Quick test_prop_merge_equals_union;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "parse" `Quick test_ladder_parse;
          Alcotest.test_case "round-trip and rejects" `Quick
            test_ladder_roundtrip_and_rejects;
          Alcotest.test_case "worst-case budgets" `Quick test_ladder_max_budgets;
        ] );
      ( "policy",
        [
          Alcotest.test_case "classify bounds" `Quick test_policy_classify_bounds;
          Alcotest.test_case "deterministic and restorable" `Quick
            test_policy_deterministic_and_restorable;
        ] );
      ( "bandit-flow",
        [
          Alcotest.test_case "deterministic" `Slow test_bandit_flow_deterministic;
          Alcotest.test_case "kill and resume" `Slow test_bandit_kill_and_resume;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "smoke and resume" `Slow test_sweep_smoke_and_resume;
          Alcotest.test_case "shard and jobs invariance" `Slow
            test_sweep_shard_and_jobs_invariance;
          Alcotest.test_case "rejects" `Quick test_sweep_rejects;
          Alcotest.test_case "maxed shard and jobs invariance" `Slow
            test_sweep_maxed_shard_and_jobs_invariance;
          Alcotest.test_case "enum distr manifest" `Slow test_sweep_enum_distr_manifest;
          Alcotest.test_case "enum distr width mismatch" `Quick
            test_sweep_enum_distr_rejects_width_mismatch;
          Alcotest.test_case "CLI kill and resume" `Slow
            test_cli_kill_and_resume_across_shards;
          Alcotest.test_case "CLI maxed kill and resume" `Slow
            test_cli_maxed_kill_and_resume;
        ] );
    ]
