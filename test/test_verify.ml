(* Tests for the verification subsystem (lib/verify):

   - Cec fundamentals: proven equivalence, validated counterexamples,
     interface-mismatch rejection, determinism of verdicts.
   - Satellite 1: property-based equivalence of every exact transform over
     hundreds of seeded random circuits.
   - Satellite 2: differential mapping — LUT and cell mapping proven
     equivalent to their source AIGs (random graphs + the benchmark suite).
   - Satellite 3: brute-force oracles for Errest.Metrics and containment of
     the Errest.Certify bound.
   - Satellite 4: mutation self-test — seeded single-gate faults must be
     flagged with a validated counterexample, never passed.
   - Prop/Gen self-tests: shrinking, dumping, seed determinism.
   - Flow integration: --certify-exact verdicts in the report.

   The CI seed matrix sets ALSRAC_PROP_SEED; every generated circuit in this
   file derives from it, so each matrix entry exercises a disjoint circuit
   population while staying bit-reproducible. *)

module Graph = Aig.Graph
module Cec = Verify.Cec
module Gen = Verify.Gen
module Prop = Verify.Prop

let seed_base =
  match Sys.getenv_opt "ALSRAC_PROP_SEED" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some k -> k * 1_000_000
      | None -> Alcotest.failf "ALSRAC_PROP_SEED is not an integer: %S" s)
  | None -> 1_000_000

let dump_dir = Sys.getenv_opt "ALSRAC_PROP_DUMP"

(* Alcotest wrapper: run a Prop check and fail with the reproducer line. *)
let prop_case name ?profile ~count prop =
  match Prop.check ?profile ?dump_dir ~name ~seed:seed_base ~count prop with
  | Prop.Passed _ -> ()
  | Prop.Failed f -> Alcotest.fail (Prop.failure_to_string ~name f)

let cec_ok g h =
  match Cec.run g h with
  | Cec.Equivalent -> Ok ()
  | v -> Error (Cec.verdict_to_string v)

(* ------------------------------------------------------------------ *)
(* Cec fundamentals                                                    *)
(* ------------------------------------------------------------------ *)

let test_cec_identical () =
  List.iter
    (fun name ->
      let e = Option.get (Circuits.Suite.find name) in
      let g = e.Circuits.Suite.build () in
      match Cec.run g g with
      | Cec.Equivalent -> ()
      | v -> Alcotest.failf "%s vs itself: %s" name (Cec.verdict_to_string v))
    [ "c880"; "rca32" ]

let test_cec_inequivalent_basic () =
  (* AND vs OR on two inputs: differ on 01, 10. *)
  let mk op =
    let g = Graph.create ~name:"t" () in
    let a = Graph.add_pi g and b = Graph.add_pi g in
    ignore (Graph.add_po g (op g a b));
    g
  in
  let g_and = mk (fun g a b -> Graph.and_ g a b) in
  let g_or =
    mk (fun g a b -> Graph.lit_not (Graph.and_ g (Graph.lit_not a) (Graph.lit_not b)))
  in
  match Cec.run g_and g_or with
  | Cec.Inequivalent cex ->
      Alcotest.(check bool) "cex validates" true (Cec.holds g_and g_or cex);
      Alcotest.(check bool) "values differ" true (cex.Cec.value_a <> cex.Cec.value_b)
  | v -> Alcotest.failf "AND vs OR: %s" (Cec.verdict_to_string v)

let test_cec_interface_mismatch () =
  let g1 = Gen.random ~profile:{ Gen.default with npis = 4 } seed_base in
  let g2 = Gen.random ~profile:{ Gen.default with npis = 5 } seed_base in
  Alcotest.check_raises "PI mismatch rejected"
    (Invalid_argument "Verify.Cec.run: PI count mismatch") (fun () ->
      ignore (Cec.run g1 g2))

let test_cec_wide_transform () =
  (* Wide circuits (no exhaustive closure): miter sweeping + support closure
     must still prove exact transforms equivalent. *)
  let profile = { Gen.default with npis = 40; npos = 6; nands = 300 } in
  for i = 0 to 4 do
    let g = Gen.random ~profile (seed_base + (77 * i)) in
    let h = Aig.Resyn.compress2 g in
    match Cec.run g h with
    | Cec.Equivalent -> ()
    | v ->
        Alcotest.failf "compress2 on 40-PI graph (seed %d): %s"
          (seed_base + (77 * i))
          (Cec.verdict_to_string v)
  done

let test_cec_deterministic () =
  let g = Gen.random ~profile:{ Gen.default with npis = 20; nands = 120 } seed_base in
  match Gen.mutate ~seed:(seed_base + 1) g with
  | None -> Alcotest.fail "no mutation site"
  | Some (h, _) ->
      let v1 = Cec.run ~seed:9 g h and v2 = Cec.run ~seed:9 g h in
      Alcotest.(check string) "same verdict" (Cec.verdict_to_string v1)
        (Cec.verdict_to_string v2)

(* ------------------------------------------------------------------ *)
(* Satellite 1: every exact transform, property-checked                *)
(* ------------------------------------------------------------------ *)

let transforms =
  [
    ("balance", Aig.Balance.run);
    ("rewrite", fun g -> Aig.Rewrite.run g);
    ("refactor", fun g -> Aig.Refactor.run g);
    ("resyn_light", Aig.Resyn.light);
    ("compress2", fun g -> Aig.Resyn.compress2 g);
    ("strash_dce", Graph.compact);
    ("fraig", fun g -> Sim.Fraig.run g);
  ]

let test_transform_equivalence () =
  List.iter
    (fun (name, f) ->
      prop_case ("transform-" ^ name) ~count:200 (fun g -> cec_ok g (f g)))
    transforms

let test_transform_equivalence_reconvergent () =
  (* A second population: deeper, heavily reconvergent cones where rewriting
     and refactoring actually fire. *)
  let profile = { Gen.npis = 10; npos = 4; nands = 150; reconv = 0.85; compl_p = 0.5 } in
  List.iter
    (fun (name, f) ->
      prop_case ("transform-reconv-" ^ name) ~profile ~count:60 (fun g ->
          cec_ok g (f g)))
    transforms

let test_transform_suite () =
  (* Acceptance criterion: Equivalent on exact-transform pairs from the
     benchmark suite itself (bounded by size so the run stays quick).
     Beyond ~80 PIs the portfolio's known frontier is compressor-tree
     majority logic (voter), where closing the miter needs SAT; there an
     honest Undecided is accepted but a refutation never is. *)
  Circuits.Suite.all
  |> List.iter (fun e ->
         let g = e.Circuits.Suite.build () in
         if Graph.num_ands g <= 1000 && Graph.num_pis g >= 1 then
           List.iter
             (fun (name, f) ->
               match Cec.run g (f g) with
               | Cec.Equivalent -> ()
               | Cec.Undecided _ when Graph.num_pis g > 80 -> ()
               | v ->
                   Alcotest.failf "%s under %s: %s" e.Circuits.Suite.name name
                     (Cec.verdict_to_string v))
             [ ("balance", Aig.Balance.run); ("compress2", fun g -> Aig.Resyn.compress2 g) ])

(* ------------------------------------------------------------------ *)
(* Satellite 2: differential mapping                                   *)
(* ------------------------------------------------------------------ *)

let test_mapping_random () =
  let profile = { Gen.npis = 10; npos = 4; nands = 120; reconv = 0.6; compl_p = 0.5 } in
  List.iter
    (fun (name, map) ->
      prop_case ("map-" ^ name) ~profile ~count:100 (fun g ->
          let m = map g in
          match Cec.run_mapped g m with
          | Cec.Equivalent -> Ok ()
          | v -> Error (Cec.verdict_to_string v)))
    [
      ("lut", fun g -> Techmap.Lutmap.run g);
      ("cell", fun g -> Techmap.Cellmap.run g);
    ]

let test_mapping_suite () =
  Circuits.Suite.all
  |> List.iter (fun e ->
         let g = e.Circuits.Suite.build () in
         if Graph.num_ands g <= 600 then
           List.iter
             (fun (name, map) ->
               let m = map g in
               match Cec.run_mapped g m with
               | Cec.Equivalent -> ()
               | Cec.Inequivalent cex ->
                   Alcotest.failf "%s %s-mapped: inequivalent on PO %d"
                     e.Circuits.Suite.name name cex.Cec.po
               | Cec.Undecided msg ->
                   (* Wide circuits may defeat the bounded portfolio; only a
                      refutation is a failure, but small-PI circuits must
                      close. *)
                   if Graph.num_pis g <= 14 then
                     Alcotest.failf "%s %s-mapped: undecided (%s)"
                       e.Circuits.Suite.name name msg)
             [
               ("lut", fun g -> Techmap.Lutmap.run g);
               ("cell", fun g -> Techmap.Cellmap.run g);
             ])

(* ------------------------------------------------------------------ *)
(* Satellite 3: brute-force oracles for Errest                         *)
(* ------------------------------------------------------------------ *)

(* Exhaustive reference metrics by naive evaluation: mirrors the documented
   conventions (PO 0 = LSB; NMED denominator 2^O - 1; MRED denominator
   max(golden, 1)) without sharing any code with Errest. *)
let oracle_metrics g approx =
  let npis = Graph.num_pis g and npos = Graph.num_pos g in
  assert (npis <= 12);
  let total = 1 lsl npis in
  let err_rounds = ref 0 and sum_ed = ref 0.0 and sum_red = ref 0.0 in
  for m = 0 to total - 1 do
    let inputs = Util.bools_of_int m npis in
    let vg = Util.int_of_bools (Util.eval_naive g inputs) in
    let va = Util.int_of_bools (Util.eval_naive approx inputs) in
    if vg <> va then incr err_rounds;
    let d = float_of_int (abs (vg - va)) in
    sum_ed := !sum_ed +. d;
    sum_red := !sum_red +. (d /. float_of_int (max vg 1))
  done;
  let n = float_of_int total in
  let er = float_of_int !err_rounds /. n in
  let nmed = !sum_ed /. n /. float_of_int ((1 lsl npos) - 1) in
  let mred = !sum_red /. n in
  (er, nmed, mred)

let metric_pairs =
  (* Same interface, different functions: the generator is deterministic in
     (profile, seed), so two seeds give comparable circuits. *)
  let profile = { Gen.npis = 9; npos = 4; nands = 70; reconv = 0.5; compl_p = 0.5 } in
  List.init 6 (fun i ->
      ( Gen.random ~profile (seed_base + (1000 * i)),
        Gen.random ~profile (seed_base + (1000 * i) + 500) ))

let test_metrics_oracle () =
  let close what a b =
    if Float.abs (a -. b) > 1e-9 then Alcotest.failf "%s: oracle %.12g vs %.12g" what a b
  in
  List.iteri
    (fun i (g, approx) ->
      let er, nmed, mred = oracle_metrics g approx in
      let pats = Sim.Patterns.exhaustive ~npis:(Graph.num_pis g) in
      let m k = Errest.Metrics.compare_graphs k ~original:g ~approx pats in
      close (Printf.sprintf "pair %d ER" i) er (m Errest.Metrics.Er);
      close (Printf.sprintf "pair %d NMED" i) nmed (m Errest.Metrics.Nmed);
      close (Printf.sprintf "pair %d MRED" i) mred (m Errest.Metrics.Mred);
      (* evaluate takes the exhaustive path for 9 PIs. *)
      close
        (Printf.sprintf "pair %d evaluate ER" i)
        er
        (Errest.Metrics.evaluate Errest.Metrics.Er ~original:g ~approx))
    metric_pairs

let test_certify_contains_truth () =
  (* The Hoeffding upper bound on a 2048-round sample must lie above the
     exhaustive truth for the [0,1]-bounded metrics. *)
  List.iteri
    (fun i (g, approx) ->
      let er, nmed, _ = oracle_metrics g approx in
      let rng = Logic.Rng.create (seed_base + i) in
      let pats = Sim.Patterns.random rng ~npis:(Graph.num_pis g) ~len:2048 in
      List.iter
        (fun (what, kind, truth) ->
          let sampled = Errest.Metrics.compare_graphs kind ~original:g ~approx pats in
          let ub =
            Errest.Certify.upper_bound ~sampled ~samples:2048 ~confidence:0.999
          in
          if ub < truth then
            Alcotest.failf "pair %d %s: certified bound %.6g below truth %.6g" i what
              ub truth)
        [ ("ER", Errest.Metrics.Er, er); ("NMED", Errest.Metrics.Nmed, nmed) ])
    metric_pairs

(* ------------------------------------------------------------------ *)
(* Satellite 4: mutation self-test                                     *)
(* ------------------------------------------------------------------ *)

let test_mutation_detection () =
  (* Collect >= 100 genuinely function-changing single-gate mutants (screened
     by the exhaustive naive oracle, which shares no code with Cec) and
     demand a validated refutation for every one.  Functionally silent
     mutants must conversely be proven equivalent. *)
  let profile = { Gen.npis = 8; npos = 3; nands = 80; reconv = 0.6; compl_p = 0.5 } in
  let differing = ref 0 and silent = ref 0 and seed = ref 0 in
  while !differing < 100 && !seed < 600 do
    let s = seed_base + !seed in
    incr seed;
    let g = Gen.random ~profile s in
    match Gen.mutate ~seed:(s + 31337) g with
    | None -> ()
    | Some (h, mutation) -> (
        let really_differs = not (Util.equivalent g h) in
        match Cec.run g h with
        | Cec.Equivalent ->
            if really_differs then
              Alcotest.failf
                "seed %d: false equivalence for function-changing mutation %s" s
                (Gen.mutation_to_string mutation)
            else incr silent
        | Cec.Undecided msg ->
            Alcotest.failf "seed %d: undecided on an 8-PI mutant (%s)" s msg
        | Cec.Inequivalent cex ->
            if not really_differs then
              Alcotest.failf "seed %d: refuted a silent mutation %s" s
                (Gen.mutation_to_string mutation);
            (* Acceptance criterion: the vector must reproduce on both
               circuits — checked by Cec.holds and independently by the naive
               evaluator. *)
            if not (Cec.holds g h cex) then
              Alcotest.failf "seed %d: counterexample does not validate" s;
            let va = (Util.eval_naive g cex.Cec.inputs).(cex.Cec.po) in
            let vb = (Util.eval_naive h cex.Cec.inputs).(cex.Cec.po) in
            if va <> cex.Cec.value_a || vb <> cex.Cec.value_b then
              Alcotest.failf "seed %d: recorded PO values wrong" s;
            incr differing)
  done;
  if !differing < 100 then
    Alcotest.failf "only %d function-changing mutants in %d seeds (%d silent)"
      !differing !seed !silent

(* ------------------------------------------------------------------ *)
(* Prop / Gen self-tests                                               *)
(* ------------------------------------------------------------------ *)

let test_gen_deterministic () =
  let profile = { Gen.npis = 12; npos = 5; nands = 90; reconv = 0.7; compl_p = 0.4 } in
  let a = Gen.random ~profile (seed_base + 5) in
  let b = Gen.random ~profile (seed_base + 5) in
  Alcotest.(check string) "same seed, same graph"
    (Circuit_io.Aiger.graph_to_string a)
    (Circuit_io.Aiger.graph_to_string b);
  let c = Gen.random ~profile (seed_base + 6) in
  Alcotest.(check bool) "different seed, different graph" false
    (Circuit_io.Aiger.graph_to_string a = Circuit_io.Aiger.graph_to_string c)

let test_gen_profile_conformance () =
  List.iter
    (fun profile ->
      for i = 0 to 19 do
        let g = Gen.random ~profile (seed_base + i) in
        Aig.Check.check_exn g;
        Alcotest.(check int) "npis" profile.Gen.npis (Graph.num_pis g);
        Alcotest.(check int) "npos" profile.Gen.npos (Graph.num_pos g);
        if Graph.num_ands g > profile.Gen.nands then
          Alcotest.failf "seed %d: %d ANDs exceeds target %d" (seed_base + i)
            (Graph.num_ands g) profile.Gen.nands
      done)
    [
      Gen.default;
      { Gen.npis = 3; npos = 1; nands = 10; reconv = 0.0; compl_p = 0.0 };
      { Gen.npis = 30; npos = 8; nands = 250; reconv = 0.9; compl_p = 1.0 };
    ]

let test_prop_shrinking () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "alsrac-prop-test" in
  (* Property failing whenever the graph has more than 5 gates: the shrinker
     must descend close to that boundary and the dump must round-trip. *)
  match
    Prop.check ~dump_dir:dir ~name:"self/shrink" ~seed:seed_base ~count:10 (fun g ->
        if Graph.num_ands g > 5 then Error "too many gates" else Ok ())
  with
  | Prop.Passed _ -> Alcotest.fail "property unexpectedly passed"
  | Prop.Failed f ->
      Alcotest.(check string) "message kept" "too many gates" f.Prop.message;
      if Graph.num_ands f.Prop.shrunk >= Graph.num_ands f.Prop.original then
        Alcotest.failf "no shrink: %d -> %d ANDs"
          (Graph.num_ands f.Prop.original)
          (Graph.num_ands f.Prop.shrunk);
      Alcotest.(check bool) "shrunk still fails" true (Graph.num_ands f.Prop.shrunk > 5);
      if Graph.num_ands f.Prop.shrunk > 6 then
        Alcotest.failf "shrinker stopped early at %d ANDs (minimum is 6)"
          (Graph.num_ands f.Prop.shrunk);
      (match f.Prop.dump with
      | None -> Alcotest.fail "no dump written"
      | Some path ->
          let g = Circuit_io.Aiger.read path in
          Alcotest.(check int) "dump round-trips" (Graph.num_ands f.Prop.shrunk)
            (Graph.num_ands g);
          Sys.remove path)

let test_prop_passes () =
  match
    Prop.check ~name:"self/pass" ~seed:seed_base ~count:25 (fun g ->
        Aig.Check.check g)
  with
  | Prop.Passed n -> Alcotest.(check int) "all cases ran" 25 n
  | Prop.Failed f -> Alcotest.fail (Prop.failure_to_string ~name:"self/pass" f)

let test_prop_exception_is_failure () =
  match
    Prop.check ~name:"self/raise" ~seed:seed_base ~count:3 (fun _ ->
        failwith "boom")
  with
  | Prop.Passed _ -> Alcotest.fail "exception not treated as failure"
  | Prop.Failed f ->
      Alcotest.(check bool) "message mentions the exception" true
        (String.length f.Prop.message > 0)

(* ------------------------------------------------------------------ *)
(* Flow integration: --certify-exact                                   *)
(* ------------------------------------------------------------------ *)

let test_flow_certify () =
  let g =
    Gen.random
      ~profile:{ Gen.npis = 8; npos = 4; nands = 120; reconv = 0.6; compl_p = 0.5 }
      (seed_base + 42)
  in
  let base =
    {
      (Core.Config.default ~metric:Errest.Metrics.Er ~threshold:0.05) with
      Core.Config.max_iters = 6;
      eval_rounds = 1024;
      seed = seed_base;
    }
  in
  let plain, report_plain = Core.Flow.run ~config:base g in
  (match report_plain.Core.Flow.certify with
  | None -> ()
  | Some _ -> Alcotest.fail "certify populated without the flag");
  let certified, report =
    Core.Flow.run ~config:{ base with Core.Config.certify_exact = true } g
  in
  Alcotest.(check string) "certification is observational"
    (Circuit_io.Aiger.graph_to_string plain)
    (Circuit_io.Aiger.graph_to_string certified);
  match report.Core.Flow.certify with
  | None -> Alcotest.fail "certify missing from report"
  | Some c ->
      if c.Core.Flow.exact_checks < 1 then Alcotest.fail "no exact checks ran";
      Alcotest.(check int) "no refuted exact transforms" 0 c.Core.Flow.exact_refuted;
      Alcotest.(check int) "no LAC recheck failures" 0
        c.Core.Flow.lac_recheck_failures;
      if report.Core.Flow.applied > 0 && c.Core.Flow.lac_rechecks < 1 then
        Alcotest.fail "accepted LACs but no rechecks recorded"

let () =
  Alcotest.run "verify"
    [
      ( "cec",
        [
          Alcotest.test_case "identical circuits" `Quick test_cec_identical;
          Alcotest.test_case "basic inequivalence" `Quick test_cec_inequivalent_basic;
          Alcotest.test_case "interface mismatch" `Quick test_cec_interface_mismatch;
          Alcotest.test_case "wide transform proof" `Quick test_cec_wide_transform;
          Alcotest.test_case "deterministic verdict" `Quick test_cec_deterministic;
        ] );
      ( "transforms",
        [
          Alcotest.test_case "random circuits" `Quick test_transform_equivalence;
          Alcotest.test_case "reconvergent circuits" `Quick
            test_transform_equivalence_reconvergent;
          Alcotest.test_case "benchmark suite" `Quick test_transform_suite;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "random graphs" `Quick test_mapping_random;
          Alcotest.test_case "benchmark suite" `Quick test_mapping_suite;
        ] );
      ( "errest-oracle",
        [
          Alcotest.test_case "exhaustive metrics" `Quick test_metrics_oracle;
          Alcotest.test_case "certified bound containment" `Quick
            test_certify_contains_truth;
        ] );
      ( "mutation",
        [ Alcotest.test_case "single-gate faults flagged" `Quick test_mutation_detection ] );
      ( "harness",
        [
          Alcotest.test_case "generator determinism" `Quick test_gen_deterministic;
          Alcotest.test_case "profile conformance" `Quick test_gen_profile_conformance;
          Alcotest.test_case "shrinking and dumping" `Quick test_prop_shrinking;
          Alcotest.test_case "passing property" `Quick test_prop_passes;
          Alcotest.test_case "exception handling" `Quick test_prop_exception_is_failure;
        ] );
      ( "flow",
        [ Alcotest.test_case "certify-exact report" `Quick test_flow_certify ] );
    ]
