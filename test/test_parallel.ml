(* lib/parallel: pool stress plus the determinism contract at every
   parallel call site — sharded simulation, batch candidate scoring, LAC
   generation, the end-to-end flow, and kill-and-resume across different
   pool sizes.

   ALSRAC_TEST_JOBS=<n> sets the parallel pool size checked against the
   sequential reference (default 4).  Every check asserts bit-identity, so
   the suite is meaningful — and must pass — even on a single-core host,
   where the pool still runs all its machinery. *)

module Graph = Aig.Graph
module Pool = Parallel.Pool
module Chunk = Parallel.Chunk

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_jobs =
  match Sys.getenv_opt "ALSRAC_TEST_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 2 -> n | _ -> 4)
  | None -> 4

(* ---------- Pool stress ---------- *)

let test_pool_basics () =
  Pool.with_pool ~jobs:test_jobs (fun p ->
      check_int "size" test_jobs (Pool.size p);
      let fs = List.init 100 (fun i -> Pool.async p (fun () -> i * i)) in
      let sum = List.fold_left (fun acc f -> acc + Pool.await p f) 0 fs in
      check_int "sum of squares" 328350 sum)

let test_pool_detect_cores () =
  Pool.with_pool ~jobs:0 (fun p ->
      check "jobs=0 detects at least one lane" true (Pool.size p >= 1))

let test_pool_sequential_eager () =
  (* jobs=1 must run tasks eagerly on the caller: side effects are visible
     immediately after [async], which is what makes it exactly the
     sequential semantics. *)
  Pool.with_pool ~jobs:1 (fun p ->
      let hit = ref false in
      let f = Pool.async p (fun () -> hit := true) in
      check "eager at jobs=1" true !hit;
      Pool.await p f)

let test_pool_cancellation () =
  Pool.with_pool ~jobs:test_jobs (fun p ->
      (* Once the hook fires, queued-but-unstarted tasks fail with
         [Cancelled] instead of running. *)
      let stop = Atomic.make false in
      Pool.set_should_stop p (Some (fun () -> Atomic.get stop));
      let ran = Atomic.make 0 in
      Atomic.set stop true;
      let fs = List.init 50 (fun _ -> Pool.async p (fun () -> Atomic.incr ran)) in
      let cancelled_count =
        List.fold_left
          (fun acc f ->
            match Pool.await p f with
            | () -> acc
            | exception Pool.Cancelled -> acc + 1)
          0 fs
      in
      check_int "every queued task cancelled" 50 cancelled_count;
      check_int "no task body ran" 0 (Atomic.get ran);
      (* Clearing the hook restores normal service: the pool is reusable. *)
      Pool.set_should_stop p None;
      check_int "pool usable after cancellation" 42 (Pool.run p (fun () -> 42)))

let test_chunk_cancellation () =
  (* Chunk computations abort at a chunk boundary on both the parallel path
     and the sequential fallback. *)
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          let done_chunks = Atomic.make 0 in
          let stop = Atomic.make false in
          Pool.set_should_stop p (Some (fun () -> Atomic.get stop));
          (match
             Chunk.map ~pool:p ~chunk_size:1 ~n:64 (fun i ->
                 if Atomic.get stop then ()
                 else if i >= 4 then Atomic.set stop true
                 else ();
                 Atomic.incr done_chunks)
           with
          | _ -> Alcotest.failf "jobs=%d: expected Cancelled" jobs
          | exception Pool.Cancelled -> ());
          check "some chunks ran before the stop" true (Atomic.get done_chunks > 0);
          check "not every chunk ran" true (Atomic.get done_chunks < 64);
          Pool.set_should_stop p None;
          let full = Chunk.map ~pool:p ~n:8 (fun i -> i) in
          check_int "chunk path usable after cancellation" 8 (Array.length full)))
    [ 1; test_jobs ]

let test_pool_nested_submit () =
  Pool.with_pool ~jobs:test_jobs (fun p ->
      (* Tasks submit and await sub-tasks on the same pool: [await] must
         help execute queued work, or this deadlocks once every lane blocks
         on a future whose task nobody is left to run. *)
      let total =
        Pool.run p (fun () ->
            let subs =
              List.init 20 (fun i ->
                  Pool.async p (fun () -> Pool.run p (fun () -> i + 1)))
            in
            List.fold_left (fun acc f -> acc + Pool.await p f) 0 subs)
      in
      check_int "nested sum" 210 total)

exception Boom of int

let test_pool_exception_propagation () =
  Pool.with_pool ~jobs:test_jobs (fun p ->
      let ok = Pool.async p (fun () -> 1) in
      let bad = Pool.async p (fun () -> raise (Boom 42)) in
      (match Pool.await p bad with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 42 -> ());
      check_int "unrelated task unaffected" 1 (Pool.await p ok);
      (* A failed task must not kill a worker: the pool stays usable. *)
      check_int "pool reusable after failure" 99 (Pool.run p (fun () -> 99));
      let fs = List.init 32 (fun i -> Pool.async p (fun () -> 2 * i)) in
      check_int "fan-out after failure" 992
        (List.fold_left (fun acc f -> acc + Pool.await p f) 0 fs))

let test_pool_stats () =
  Pool.with_pool ~jobs:test_jobs (fun p ->
      Pool.reset_stats p;
      let fs = List.init 64 (fun i -> Pool.async p (fun () -> i)) in
      List.iter (fun f -> ignore (Pool.await p f)) fs;
      let st = Pool.stats p in
      check_int "one stat per lane" (Pool.size p) (Array.length st);
      let total = Array.fold_left (fun acc s -> acc + s.Pool.tasks) 0 st in
      check_int "every task executed exactly once" 64 total;
      Pool.reset_stats p;
      check_int "reset clears counters" 0
        (Array.fold_left (fun acc s -> acc + s.Pool.tasks) 0 (Pool.stats p)))

(* ---------- Chunk determinism contract ---------- *)

let test_chunk_ranges () =
  List.iter
    (fun n ->
      let r = Chunk.ranges n in
      let pos = ref 0 in
      Array.iter
        (fun (lo, hi) ->
          check_int "contiguous" !pos lo;
          check "non-empty chunk" true (hi > lo);
          pos := hi)
        r;
      check_int "covers 0..n-1" n !pos;
      check "bounded chunk count" true
        (Array.length r <= Chunk.default_max_chunks))
    [ 1; 2; 63; 64; 65; 1000; 4097 ];
  check_int "n=0 yields no chunks" 0 (Array.length (Chunk.ranges 0));
  check_int "explicit chunk_size" 10 (Array.length (Chunk.ranges ~chunk_size:1 10))

let test_chunk_float_determinism () =
  (* Float addition is non-associative, so identical sums across pool sizes
     prove the boundaries are fixed and the reduction really is ordered. *)
  let n = 10_000 in
  let sum pool =
    Chunk.map_reduce ?pool ~chunk_size:7 ~n
      ~map:(fun lo hi ->
        let s = ref 0.0 in
        for i = lo to hi - 1 do
          s := !s +. (sin (float_of_int i) *. 1e3)
        done;
        !s)
      ~merge:( +. ) ~init:0.0 ()
  in
  let reference = sum None in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          check
            (Printf.sprintf "float sum bit-identical at jobs=%d" jobs)
            true
            (Float.equal (sum (Some p)) reference)))
    [ 1; 2; test_jobs ]

let test_chunk_map_order () =
  Pool.with_pool ~jobs:test_jobs (fun p ->
      let a = Chunk.map ~pool:p ~chunk_size:3 ~n:100 (fun i -> i * i) in
      check "map slots match indices" true
        (Array.for_all Fun.id (Array.mapi (fun i v -> v = i * i) a)))

(* ---------- Determinism of the parallel call sites ---------- *)

let bitvec_arrays_equal a b =
  Array.length a = Array.length b && Array.for_all2 Logic.Bitvec.equal a b

let test_engine_determinism () =
  (* Word-sharded simulation over the ISCAS-class suite circuits. *)
  List.iter
    (fun (e : Circuits.Suite.entry) ->
      let g = e.Circuits.Suite.build () in
      let pats =
        Sim.Patterns.random (Logic.Rng.create 11) ~npis:(Graph.num_pis g)
          ~len:2048
      in
      let reference = Sim.Engine.simulate g pats in
      List.iter
        (fun jobs ->
          Pool.with_pool ~jobs (fun pool ->
              let s = Sim.Engine.simulate ~pool g pats in
              check
                (Printf.sprintf "%s signatures identical at jobs=%d"
                   e.Circuits.Suite.name jobs)
                true
                (bitvec_arrays_equal s reference)))
        [ 1; 2; test_jobs ])
    (Circuits.Suite.of_klass Circuits.Suite.Iscas_arith)

let test_batch_determinism () =
  let g = Circuits.Multipliers.array_mult ~width:8 in
  let pats =
    Sim.Patterns.random (Logic.Rng.create 5) ~npis:(Graph.num_pis g) ~len:2048
  in
  let sigs = Sim.Engine.simulate g pats in
  let golden = Sim.Engine.po_values g sigs in
  let batch = Errest.Batch.create g ~metric:Errest.Metrics.Er ~golden ~base:sigs in
  let ands = ref [] in
  Graph.iter_ands g (fun id -> ands := id :: !ands);
  (* Flipped signatures force a full TFO re-simulation per candidate. *)
  let specs =
    Array.of_list
      (List.rev_map (fun id -> (id, Logic.Bitvec.lognot sigs.(id))) !ands)
  in
  let reference = Errest.Batch.candidate_errors batch specs in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          check
            (Printf.sprintf "candidate errors identical at jobs=%d" jobs)
            true
            (Errest.Batch.candidate_errors ~pool batch specs = reference)))
    [ 1; 2; test_jobs ]

let test_lac_determinism () =
  let g = Circuits.Epfl_control.cavlc () in
  let config = Core.Config.default ~metric:Errest.Metrics.Er ~threshold:0.05 in
  let rounds = 64 in
  let pats =
    Sim.Patterns.random (Logic.Rng.create 3) ~npis:(Graph.num_pis g) ~len:rounds
  in
  let sigs = Sim.Engine.simulate g pats in
  let reference = Core.Lac.generate g ~config ~sigs ~rounds in
  check "reference finds candidates" true (reference <> []);
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          check
            (Printf.sprintf "LAC list identical (contents and order) at jobs=%d"
               jobs)
            true
            (Core.Lac.generate ~pool g ~config ~sigs ~rounds = reference)))
    [ 1; 2; test_jobs ]

(* ---------- End-to-end flow determinism ---------- *)

let flow_config jobs =
  { (Core.Config.default ~metric:Errest.Metrics.Er ~threshold:0.05) with
    Core.Config.eval_rounds = 2048; max_iters = 40; seed = 7; jobs }

let baseline = lazy (Core.Flow.run ~config:(flow_config 1) (Circuits.Epfl_control.cavlc ()))

let test_flow_jobs_determinism () =
  let a1, r1 = Lazy.force baseline in
  let aj, rj =
    Core.Flow.run ~config:(flow_config test_jobs) (Circuits.Epfl_control.cavlc ())
  in
  check "baseline applied enough LACs" true (r1.Core.Flow.applied >= 4);
  check_int "same applied count" r1.Core.Flow.applied rj.Core.Flow.applied;
  check_int "same final AND count" (Graph.num_ands a1) (Graph.num_ands aj);
  check "same event history" true (r1.Core.Flow.events = rj.Core.Flow.events);
  check "same final error" true
    (Float.equal r1.Core.Flow.final_est_error rj.Core.Flow.final_est_error);
  check "identical PO behaviour" true (Util.equivalent a1 aj);
  (* The report surfaces the pool's execution counters. *)
  check_int "one counter per lane" test_jobs (Array.length rj.Core.Flow.pool);
  check "pool executed work" true
    (Array.fold_left (fun acc s -> acc + s.Pool.tasks) 0 rj.Core.Flow.pool > 0)

let test_kill_resume_across_jobs () =
  (* Crash a sequential journaled run, resume it on a pool: the journaled
     RNG stream plus the determinism contract must still reproduce the
     uninterrupted sequential run bit-for-bit. *)
  let a_full, r_full = Lazy.force baseline in
  let dir = Filename.temp_file "alsrac_parallel" "" ^ ".d" in
  let config =
    { (flow_config 1) with
      Core.Config.fault = [ Core.Fault.Kill_after { applied = 3 } ] }
  in
  (match Core.Flow.run ~journal:dir ~config (Circuits.Epfl_control.cavlc ()) with
  | _ -> Alcotest.fail "expected the injected kill to fire"
  | exception Core.Fault.Killed -> ());
  let a_res, r_res = Core.Flow.resume ~jobs:test_jobs dir in
  check "resumed flag set" true r_res.Core.Flow.resumed;
  check_int "same applied count" r_full.Core.Flow.applied r_res.Core.Flow.applied;
  check_int "same final AND count" (Graph.num_ands a_full) (Graph.num_ands a_res);
  check "same event history" true
    (r_full.Core.Flow.events = r_res.Core.Flow.events);
  check "identical PO behaviour" true (Util.equivalent a_full a_res)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          tc "async/await basics" `Quick test_pool_basics;
          tc "jobs=0 detects cores" `Quick test_pool_detect_cores;
          tc "jobs=1 is eager" `Quick test_pool_sequential_eager;
          tc "nested submit/await" `Quick test_pool_nested_submit;
          tc "exception propagation + reuse" `Quick test_pool_exception_propagation;
          tc "execution counters" `Quick test_pool_stats;
          tc "cooperative cancellation" `Quick test_pool_cancellation;
          tc "chunk-boundary cancellation" `Quick test_chunk_cancellation;
        ] );
      ( "chunk",
        [
          tc "range coverage" `Quick test_chunk_ranges;
          tc "ordered float reduction" `Quick test_chunk_float_determinism;
          tc "map preserves slots" `Quick test_chunk_map_order;
        ] );
      ( "determinism",
        [
          tc "sharded simulation" `Quick test_engine_determinism;
          tc "batch candidate scoring" `Quick test_batch_determinism;
          tc "LAC generation" `Quick test_lac_determinism;
          tc "flow at jobs=1 vs jobs=N" `Slow test_flow_jobs_determinism;
          tc "kill + resume at different jobs" `Slow test_kill_resume_across_jobs;
        ] );
    ]
