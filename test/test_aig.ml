module Graph = Aig.Graph
module Truth = Logic.Truth

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- Graph construction ---------- *)

let test_constant_folding () =
  let g = Graph.create () in
  let a = Graph.add_pi g in
  check_int "0 & a" Graph.const0 (Graph.and_ g Graph.const0 a);
  check_int "1 & a" a (Graph.and_ g Graph.const1 a);
  check_int "a & a" a (Graph.and_ g a a);
  check_int "a & !a" Graph.const0 (Graph.and_ g a (Graph.lit_not a));
  check_int "no node created" 0 (Graph.num_ands g)

let test_strash () =
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g in
  let x = Graph.and_ g a b in
  let y = Graph.and_ g b a in
  check_int "commutative dedup" x y;
  check_int "one AND" 1 (Graph.num_ands g);
  let z = Graph.and_ g (Graph.lit_not a) b in
  check "different node" true (x <> z);
  check_int "two ANDs" 2 (Graph.num_ands g)

let test_pi_po_bookkeeping () =
  let g = Graph.create ~name:"t" () in
  let a = Graph.add_pi ~name:"ina" g in
  let b = Graph.add_pi ~name:"inb" g in
  let i = Graph.add_po ~name:"out" g (Graph.and_ g a b) in
  Alcotest.(check string) "pi name" "ina" (Graph.pi_name g 0);
  Alcotest.(check string) "po name" "out" (Graph.po_name g i);
  check_int "pi_index" 1 (Graph.pi_index g (Graph.node_of b));
  check_int "num nodes" 4 (Graph.num_nodes g);
  Aig.Check.check_exn g

let test_build_expr () =
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g and c = Graph.add_pi g in
  let expr =
    Logic.Factor.(Or [ And [ Lit (0, true); Lit (1, false) ]; Lit (2, true) ])
  in
  let l = Graph.build_expr g expr [| a; b; c |] in
  ignore (Graph.add_po g l);
  (* Check against direct evaluation on all 8 inputs. *)
  for m = 0 to 7 do
    let inputs = Util.bools_of_int m 3 in
    let expected = (inputs.(0) && not inputs.(1)) || inputs.(2) in
    let actual = (Util.eval_naive g inputs).(0) in
    check "expr semantics" expected actual
  done

(* ---------- Rebuild ---------- *)

let test_rebuild_preserves_function () =
  let rng = Logic.Rng.create 5 in
  for _ = 1 to 20 do
    let g = Util.random_graph rng ~npis:6 ~nands:40 in
    let r = Graph.rebuild g in
    check "equivalent" true (Util.equivalent g r);
    check "not larger" true (Graph.num_ands r <= Graph.num_ands g);
    Aig.Check.check_exn r
  done

let test_rebuild_substitution () =
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g in
  let x = Graph.and_ g a b in
  ignore (Graph.add_po g x);
  (* Substitute the AND by just [a]. *)
  let r =
    Graph.rebuild
      ~replace:(fun id ->
        if id = Graph.node_of x then Some (Graph.Replace_lit a) else None)
      g
  in
  check_int "no ANDs left" 0 (Graph.num_ands r);
  for m = 0 to 3 do
    let inputs = Util.bools_of_int m 2 in
    check "po = a" inputs.(0) ((Util.eval_naive r inputs).(0))
  done

let test_rebuild_cycle_detection () =
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g in
  let x = Graph.and_ g a b in
  let y = Graph.and_ g x (Graph.lit_not a) in
  ignore (Graph.add_po g y);
  (* x := y creates a cycle x -> y -> x. *)
  Alcotest.check_raises "cycle"
    (Failure "Graph.rebuild: substitution creates a combinational cycle") (fun () ->
      ignore
        (Graph.rebuild
           ~replace:(fun id ->
             if id = Graph.node_of x then Some (Graph.Replace_lit y) else None)
           g))

(* ---------- Topo / Cone ---------- *)

let diamond () =
  (* y = (a & b) & (a & c): node m shared. *)
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g and c = Graph.add_pi g in
  let ab = Graph.and_ g a b in
  let ac = Graph.and_ g a c in
  let y = Graph.and_ g ab ac in
  ignore (Graph.add_po g y);
  (g, a, b, c, ab, ac, y)

let test_levels_depth () =
  let g, _, _, _, ab, _, y = diamond () in
  let lev = Aig.Topo.levels g in
  check_int "ab level" 1 lev.(Graph.node_of ab);
  check_int "y level" 2 lev.(Graph.node_of y);
  check_int "depth" 2 (Aig.Topo.depth g)

let test_fanouts () =
  let g, a, _, _, _, _, _ = diamond () in
  let fo = Aig.Topo.fanout_counts g in
  check_int "a has two fanouts" 2 fo.(Graph.node_of a)

let test_tfi_tfo () =
  let g, a, _, _, ab, ac, y = diamond () in
  let tfi = Aig.Cone.tfi_mask g (Graph.node_of y) in
  check "y in own tfi" true tfi.(Graph.node_of y);
  check "a in tfi" true tfi.(Graph.node_of a);
  let tfo = Aig.Cone.tfo_mask g (Graph.node_of ab) in
  check "y in tfo of ab" true tfo.(Graph.node_of y);
  check "ac not in tfo of ab" false tfo.(Graph.node_of ac)

let test_tfi_nodes_sorted () =
  let g, _, _, _, _, _, y = diamond () in
  let nodes = Aig.Cone.tfi_nodes g (Graph.node_of y) in
  check_int "five tfi nodes" 5 (List.length nodes);
  let lev = Aig.Topo.levels g in
  let rec ascending = function
    | a :: b :: rest -> lev.(a) <= lev.(b) && ascending (b :: rest)
    | _ -> true
  in
  check "sorted by level" true (ascending nodes)

let test_mffc () =
  let g, _, _, _, ab, ac, y = diamond () in
  let fanouts = Aig.Topo.fanout_counts g in
  let mffc = Aig.Cone.mffc g ~fanouts (Graph.node_of y) in
  (* All three ANDs die if y is removed. *)
  check_int "mffc covers the whole cone" 3 (List.length mffc);
  let mffc_ab = Aig.Cone.mffc g ~fanouts (Graph.node_of ab) in
  check_int "shared node: only itself" 1 (List.length mffc_ab);
  ignore ac

let test_cone_inputs () =
  let g, a, b, _, ab, _, _ = diamond () in
  let inputs = Aig.Cone.cone_inputs g [ Graph.node_of ab ] in
  check "inputs are a and b" true
    (List.sort compare inputs = List.sort compare [ Graph.node_of a; Graph.node_of b ]);
  ignore g

(* ---------- Cuts ---------- *)

let test_cut_enumeration () =
  let g, _, _, _, _, _, y = diamond () in
  let cuts = Aig.Cut.enumerate g ~k:4 () in
  let ycuts = cuts.(Graph.node_of y) in
  check "has trivial cut" true
    (List.exists (fun c -> c.Aig.Cut.leaves = [| Graph.node_of y |]) ycuts);
  (* The PI cut {a,b,c} must appear. *)
  check "has PI cut" true
    (List.exists (fun c -> Array.length c.Aig.Cut.leaves = 3) ycuts)

let test_cut_truth () =
  let g, a, b, c, _, _, y = diamond () in
  let leaves = [| Graph.node_of a; Graph.node_of b; Graph.node_of c |] in
  let tt = Aig.Cut.truth g ~root:(Graph.node_of y) ~leaves in
  let expected = Truth.band (Truth.band (Truth.var 3 0) (Truth.var 3 1)) (Truth.var 3 2) in
  check "abc cut function" true (Truth.equal tt expected)

let prop_cut_truth_random =
  QCheck.Test.make ~name:"cut truths match naive evaluation" ~count:30
    QCheck.(make Gen.(int_range 0 10000))
    (fun seed ->
      let rng = Logic.Rng.create seed in
      let g = Util.random_graph rng ~npis:5 ~nands:30 in
      let cuts = Aig.Cut.enumerate g ~k:4 () in
      let ok = ref true in
      Graph.iter_ands g (fun id ->
          List.iter
            (fun cut ->
              let leaves = cut.Aig.Cut.leaves in
              if not (Array.exists (fun l -> l = id) leaves) then begin
                let tt = Aig.Cut.truth g ~root:id ~leaves in
                (* Validate on 16 random points via naive evaluation. *)
                for _ = 1 to 16 do
                  let inputs = Array.init 5 (fun _ -> Logic.Rng.bool rng) in
                  let node_val id' =
                    let g2 = g in
                    let rec eval id =
                      if Graph.is_const id then false
                      else if Graph.is_pi g2 id then inputs.(Graph.pi_index g2 id)
                      else
                        let l0 = Graph.fanin0 g2 id and l1 = Graph.fanin1 g2 id in
                        (eval (Graph.node_of l0) <> Graph.is_compl l0)
                        && (eval (Graph.node_of l1) <> Graph.is_compl l1)
                    in
                    eval id'
                  in
                  let leaf_vals = Array.map node_val leaves in
                  if Truth.eval tt leaf_vals <> node_val id then ok := false
                done
              end)
            cuts.(id));
      !ok)

(* ---------- Optimization passes ---------- *)

let transform_preserves name f =
  QCheck.Test.make ~name ~count:30
    QCheck.(make Gen.(int_range 0 100000))
    (fun seed ->
      let rng = Logic.Rng.create seed in
      let g = Util.random_graph rng ~npis:6 ~nands:60 in
      let r = f g in
      Aig.Check.check_exn r;
      Util.equivalent g r)

let prop_balance = transform_preserves "balance preserves function" Aig.Balance.run
let prop_rewrite = transform_preserves "rewrite preserves function" Aig.Rewrite.run
let prop_refactor = transform_preserves "refactor preserves function" (Aig.Refactor.run ?max_inputs:None)
let prop_compress2 = transform_preserves "compress2 preserves function" (fun g -> Aig.Resyn.compress2 g)

let prop_compress2_shrinks =
  QCheck.Test.make ~name:"compress2 never grows" ~count:30
    QCheck.(make Gen.(int_range 0 100000))
    (fun seed ->
      let rng = Logic.Rng.create seed in
      let g = Util.random_graph rng ~npis:6 ~nands:60 in
      Graph.num_ands (Aig.Resyn.compress2 g) <= Graph.num_ands (Graph.compact g))

let test_balance_reduces_chain_depth () =
  (* A long AND chain must balance to logarithmic depth. *)
  let g = Graph.create () in
  let lits = List.init 16 (fun _ -> Graph.add_pi g) in
  let chain = List.fold_left (fun acc l -> Graph.and_ g acc l) Graph.const1 lits in
  ignore (Graph.add_po g chain);
  check_int "chain depth" 15 (Aig.Topo.depth g);
  let b = Aig.Balance.run g in
  check_int "balanced depth" 4 (Aig.Topo.depth b);
  check "equivalent" true (Util.equivalent g b)

let test_refactor_simplifies_redundancy () =
  (* f = a b + a !b  ==  a: refactoring must collapse it. *)
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g in
  let t1 = Graph.and_ g a b in
  let t2 = Graph.and_ g a (Graph.lit_not b) in
  let f = Graph.lit_not (Graph.and_ g (Graph.lit_not t1) (Graph.lit_not t2)) in
  ignore (Graph.add_po g f);
  let r = Aig.Refactor.run g in
  check_int "collapsed to wire" 0 (Graph.num_ands r);
  check "equivalent" true (Util.equivalent g r)

let test_builder_gates () =
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g and c = Graph.add_pi g in
  ignore (Graph.add_po g (Aig.Builder.maj3 g a b c));
  ignore (Graph.add_po g (Aig.Builder.mux g ~sel:a ~t:b ~e:c));
  ignore (Graph.add_po g (Aig.Builder.xnor g a b));
  ignore (Graph.add_po g (Aig.Builder.nand g a b));
  ignore (Graph.add_po g (Aig.Builder.nor g a b));
  for m = 0 to 7 do
    let i = Util.bools_of_int m 3 in
    let out = Util.eval_naive g i in
    let expect_maj = (i.(0) && i.(1)) || (i.(0) && i.(2)) || (i.(1) && i.(2)) in
    check "maj3" expect_maj out.(0);
    check "mux" (if i.(0) then i.(1) else i.(2)) out.(1);
    check "xnor" (i.(0) = i.(1)) out.(2);
    check "nand" (not (i.(0) && i.(1))) out.(3);
    check "nor" (not (i.(0) || i.(1))) out.(4)
  done

let test_node_count_in_use () =
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g in
  let used = Graph.and_ g a b in
  let _dead = Graph.and_ g a (Graph.lit_not b) in
  ignore (Graph.add_po g used);
  check_int "stored" 2 (Graph.num_ands g);
  check_int "in use" 1 (Aig.Topo.node_count_in_use g)

let test_set_po () =
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g in
  let i = Graph.add_po g a in
  Graph.set_po g i b;
  check_int "updated" b (Graph.po_lit g i)

(* ---------- SoA core: clone, snapshot, views, rebuilder ---------- *)

let dump g = Circuit_io.Aiger.graph_to_string g

(* Reference recomputation of every derived view through the public
   accessors only — shares nothing with the cache under test. *)
let naive_views g =
  let n = Graph.num_nodes g in
  let levels = Array.make n 0 in
  let refs = Array.make n 0 in
  let fan = Array.make n [] in
  let po_fan = Array.make n [] in
  Graph.iter_ands g (fun id ->
      let n0 = Graph.node_of (Graph.fanin0 g id)
      and n1 = Graph.node_of (Graph.fanin1 g id) in
      levels.(id) <- 1 + max levels.(n0) levels.(n1);
      refs.(n0) <- refs.(n0) + 1;
      refs.(n1) <- refs.(n1) + 1;
      fan.(n0) <- id :: fan.(n0);
      if n1 <> n0 then fan.(n1) <- id :: fan.(n1));
  let depth = ref 0 in
  Graph.iter_pos g (fun i l ->
      let d = Graph.node_of l in
      refs.(d) <- refs.(d) + 1;
      po_fan.(d) <- i :: po_fan.(d);
      if levels.(d) > !depth then depth := levels.(d));
  (levels, refs, Array.map List.rev fan, Array.map List.rev po_fan, !depth)

let check_views what g =
  let levels, refs, fan, po_fan, depth = naive_views g in
  Alcotest.(check (array int)) (what ^ ": levels") levels (Aig.Topo.levels g);
  Alcotest.(check (array int)) (what ^ ": refs") refs (Aig.Topo.fanout_counts g);
  check_int (what ^ ": depth") depth (Aig.Topo.depth g);
  let f = Aig.Fanout.build g in
  for v = 0 to Graph.num_nodes g - 1 do
    let acc = ref [] in
    Aig.Fanout.iter_fanouts f v (fun t -> acc := t :: !acc);
    Alcotest.(check (list int)) (what ^ ": fanouts") fan.(v) (List.rev !acc);
    let pacc = ref [] in
    Aig.Fanout.iter_pos f v (fun t -> pacc := t :: !pacc);
    Alcotest.(check (list int)) (what ^ ": po fanouts") po_fan.(v) (List.rev !pacc)
  done

let test_views_random_mutations () =
  for seed = 1 to 30 do
    let g = Verify.Gen.random seed in
    check_views "initial" g;
    let rng = Logic.Rng.create (1000 + seed) in
    (* Randomized structural mutation sequence through the public API —
       appended gates, new POs, PO rewires.  After every step the cached
       views must equal a from-scratch recomputation. *)
    for step = 1 to 12 do
      let rand_lit () =
        Graph.make_lit (Logic.Rng.int rng (Graph.num_nodes g)) (Logic.Rng.int rng 2 = 1)
      in
      (match Logic.Rng.int rng 3 with
      | 0 -> ignore (Graph.and_ g (rand_lit ()) (rand_lit ()))
      | 1 -> ignore (Graph.add_po g (rand_lit ()))
      | _ -> Graph.set_po g (Logic.Rng.int rng (Graph.num_pos g)) (rand_lit ()));
      check_views (Printf.sprintf "seed %d step %d" seed step) g
    done
  done

let test_clone_roundtrip () =
  for seed = 1 to 50 do
    let g = Verify.Gen.random seed in
    let c = Graph.clone g in
    Alcotest.(check string) "clone dump" (dump g) (dump c);
    (* Divergence after the clone stays isolated: mutating the copy leaves
       the original byte-identical, and both sides' views stay correct. *)
    let d0 = dump g in
    ignore (Graph.and_ c (Graph.pi_lit c 0) (Graph.lit_not (Graph.pi_lit c 1)));
    ignore (Graph.add_po c Graph.const1);
    Alcotest.(check string) "original untouched" d0 (dump g);
    check_views "mutated clone" c;
    check_views "original after clone mutation" g;
    Aig.Check.check_exn c;
    Aig.Check.check_exn g
  done

let test_snapshot_restore () =
  for seed = 1 to 50 do
    let g = Verify.Gen.random seed in
    let d0 = dump g in
    let s = Graph.snapshot g in
    let rev0 = Graph.revision g in
    let a = Graph.add_pi g in
    ignore (Graph.add_po g (Graph.and_ g a (Graph.pi_lit g 0)));
    Graph.set_po g 0 Graph.const0;
    check "mutations took" true (dump g <> d0);
    Graph.restore g s;
    Alcotest.(check string) "restored dump" d0 (dump g);
    check "revision stays monotonic" true (Graph.revision g > rev0);
    check_views "restored" g;
    Aig.Check.check_exn g;
    (* The restored strash is live: re-issuing every existing pair must hit
       the table, never create a node. *)
    let n = Graph.num_nodes g in
    Graph.iter_ands g (fun id ->
        ignore (Graph.and_ g (Graph.fanin0 g id) (Graph.fanin1 g id)));
    check_int "strash intact after restore" n (Graph.num_nodes g)
  done

let test_rebuilder_matches_rebuild () =
  (* One shared rebuilder across 220 random circuits: the scratch-reuse
     path must produce byte-identical results to the allocating one, with
     and without substitutions, while recycling destination graphs. *)
  let rb = Graph.rebuilder () in
  for seed = 1 to 220 do
    let g = Verify.Gen.random seed in
    let plain = Graph.rebuild g in
    let reused = Graph.rebuild_with rb g in
    Alcotest.(check string) "compact equal" (dump plain) (dump reused);
    let target = ref (-1) in
    Graph.iter_ands g (fun id -> if !target < 0 then target := id);
    if !target >= 0 then begin
      let replace id =
        if id = !target then Some (Graph.Replace_lit Graph.const0) else None
      in
      let p2 = Graph.rebuild ~replace g in
      let r2 = Graph.rebuild_with rb ~replace g in
      Alcotest.(check string) "substitution equal" (dump p2) (dump r2);
      Graph.recycle rb r2
    end;
    Graph.recycle rb reused
  done

let () =
  Alcotest.run "aig"
    [
      ( "graph",
        [
          Alcotest.test_case "builder gates" `Quick test_builder_gates;
          Alcotest.test_case "node count in use" `Quick test_node_count_in_use;
          Alcotest.test_case "set_po" `Quick test_set_po;
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "strash" `Quick test_strash;
          Alcotest.test_case "pi/po bookkeeping" `Quick test_pi_po_bookkeeping;
          Alcotest.test_case "build_expr" `Quick test_build_expr;
        ] );
      ( "rebuild",
        [
          Alcotest.test_case "preserves function" `Quick test_rebuild_preserves_function;
          Alcotest.test_case "substitution" `Quick test_rebuild_substitution;
          Alcotest.test_case "cycle detection" `Quick test_rebuild_cycle_detection;
        ] );
      ( "topo-cone",
        [
          Alcotest.test_case "levels/depth" `Quick test_levels_depth;
          Alcotest.test_case "fanouts" `Quick test_fanouts;
          Alcotest.test_case "tfi/tfo" `Quick test_tfi_tfo;
          Alcotest.test_case "tfi sorted" `Quick test_tfi_nodes_sorted;
          Alcotest.test_case "mffc" `Quick test_mffc;
          Alcotest.test_case "cone inputs" `Quick test_cone_inputs;
        ] );
      ( "soa-core",
        [
          Alcotest.test_case "views after random mutations" `Quick
            test_views_random_mutations;
          Alcotest.test_case "clone round-trip" `Quick test_clone_roundtrip;
          Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
          Alcotest.test_case "rebuilder matches rebuild" `Quick
            test_rebuilder_matches_rebuild;
        ] );
      ( "cuts",
        [
          Alcotest.test_case "enumeration" `Quick test_cut_enumeration;
          Alcotest.test_case "cut truth" `Quick test_cut_truth;
        ]
        @ Util.qcheck_cases [ prop_cut_truth_random ] );
      ( "passes",
        [
          Alcotest.test_case "balance chain" `Quick test_balance_reduces_chain_depth;
          Alcotest.test_case "refactor redundancy" `Quick test_refactor_simplifies_redundancy;
        ]
        @ Util.qcheck_cases
            [
              prop_balance; prop_rewrite; prop_refactor; prop_compress2;
              prop_compress2_shrinks;
            ] );
    ]
