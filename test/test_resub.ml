(* Exact-resubstitution engine and the divisor/candidate substrate:
   nearest-first divisor truncation (the PR's headline bugfix), TFO/self
   exclusion, brute-force equivalence oracles, determinism across pool
   sizes and kill/resume, and the crash-debris sweeps. *)

module Graph = Aig.Graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fresh_dir () = Filename.temp_file "alsrac_resub" "" ^ ".d"

(* ---------- Divisor collection (satellite 1) ---------- *)

(* A deep AND chain: PI x0..x{k}, then c1 = x0 & x1, c2 = c1 & x2, ... —
   every chain node sits at its own level, so nearest-first order is
   unambiguous. *)
let chain_graph ~k =
  let g = Graph.create ~name:"chain" () in
  let pis = Array.init (k + 1) (fun _ -> Graph.add_pi g) in
  let chain = Array.make k Graph.const0 in
  let cur = ref pis.(0) in
  for i = 1 to k do
    cur := Graph.and_ g !cur pis.(i);
    chain.(i - 1) <- !cur
  done;
  ignore (Graph.add_po g !cur);
  (g, Array.map Graph.node_of chain)

let test_tfi_candidates_nearest_first () =
  let g, chain = chain_graph ~k:10 in
  let target = chain.(9) in
  (* The TFI holds 11 PIs + 9 chain nodes = 20 candidates; cap at 5.  The
     old ascending-level truncation kept 5 PIs and dropped every chain
     node; nearest-first must keep exactly the 5 highest-level nodes —
     chain.(8) down to chain.(4). *)
  let got = Core.Divisor.tfi_candidates g ~max_tfi:5 target in
  check_int "cap respected" 5 (List.length got);
  let levels = Graph.levels g in
  List.iteri
    (fun i id ->
      check ("candidate " ^ string_of_int i ^ " is a chain node, not a PI")
        true
        (Array.exists (fun c -> c = id) chain);
      if i > 0 then
        check "descending level order" true
          (levels.(List.nth got (i - 1)) >= levels.(id)))
    got;
  check "nearest node survives the cap" true
    (List.mem chain.(8) got);
  (* Regression pin: under the old truncation the nearest TFI node was the
     FIRST casualty of the cap.  It must now always be emitted inside some
     divisor set. *)
  let seen_near = ref false in
  Core.Divisor.iter_sets g ~max_tfi:5 target (fun set ->
      if Array.exists (fun d -> d = chain.(8)) set then seen_near := true;
      `Continue);
  check "iter_sets emits a set containing the nearest divisor" true !seen_near

let test_tfi_candidates_uncapped_complete () =
  let g, chain = chain_graph ~k:6 in
  let target = chain.(5) in
  let got = Core.Divisor.tfi_candidates g ~max_tfi:1000 target in
  (* 7 PIs + 5 interior chain nodes, target excluded. *)
  check_int "full TFI enumerated" 12 (List.length got);
  check "target never a candidate" false (List.mem target got)

let test_collect_excludes_tfo_and_target () =
  let g, chain = chain_graph ~k:8 in
  (* Pick a mid-chain target: chain.(3).  Its TFO is chain.(4..7) + itself. *)
  let target = chain.(3) in
  let tfo = Aig.Cone.tfo_mask g target in
  let divs = Core.Divisor.collect g ~tfo ~max:100 target in
  check "collect returns something" true (Array.length divs > 0);
  Array.iter
    (fun d ->
      check "divisor is not the target" true (d <> target);
      check "divisor is outside the TFO" false tfo.(d))
    divs;
  let levels = Graph.levels g in
  Array.iter
    (fun d -> check "divisor level <= target level" true (levels.(d) <= levels.(target)))
    divs

let test_collect_signature_filter () =
  let g, chain = chain_graph ~k:6 in
  let target = chain.(5) in
  let npis = Graph.num_pis g in
  let rng = Logic.Rng.create 3 in
  let pats = Sim.Patterns.random rng ~npis ~len:128 in
  let sigs = Sim.Engine.simulate g pats in
  let tfo = Aig.Cone.tfo_mask g target in
  let divs = Core.Divisor.collect g ~sigs ~tfo ~max:100 target in
  (* No constant signatures survive, and no two kept divisors share a
     signature in either phase. *)
  Array.iter
    (fun d ->
      check "no constant-signature divisor" false
        (Logic.Bitvec.is_zero sigs.(d) || Logic.Bitvec.is_ones sigs.(d)))
    divs;
  let n = Array.length divs in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = sigs.(divs.(i)) and b = sigs.(divs.(j)) in
      check "no duplicate signature (same phase)" false (Logic.Bitvec.equal a b);
      check "no duplicate signature (opposite phase)" false
        (Logic.Bitvec.equal a (Logic.Bitvec.lognot b))
    done
  done

let test_care_scan_rejects_self_divisor () =
  let g, chain = chain_graph ~k:4 in
  let target = chain.(3) in
  let rng = Logic.Rng.create 5 in
  let pats = Sim.Patterns.random rng ~npis:(Graph.num_pis g) ~len:64 in
  let sigs = Sim.Engine.simulate g pats in
  Alcotest.check_raises "target as its own divisor is rejected"
    (Invalid_argument "Care.scan: target node cannot be its own divisor")
    (fun () ->
      ignore (Core.Care.scan ~sigs ~node:target ~divisors:[| target |] ~rounds:64 ()))

(* ---------- Exact-resub oracle suite (satellite 4) ---------- *)

let fast_config =
  { Core.Resub_exact.default with Core.Resub_exact.rounds = 128; cec_rounds = 128 }

let test_oracle_random_circuits () =
  (* Brute force: every resubstituted circuit must compute the identical
     truth table (naive exhaustive evaluation over all 2^npis inputs) AND
     be certified by the CEC portfolio, never grow, and stay structurally
     sound. *)
  for seed = 0 to 29 do
    let g = Verify.Gen.random seed in
    let g', _ = Core.Resub_exact.run ~config:fast_config g in
    let name what = Printf.sprintf "seed %d: %s" seed what in
    check (name "exhaustive truth tables agree") true (Util.equivalent g g');
    (match Verify.Cec.run ~seed:99 ~effort:Verify.Cec.Thorough g g' with
    | Verify.Cec.Equivalent -> ()
    | Verify.Cec.Inequivalent _ -> Alcotest.fail (name "CEC refuted the result")
    | Verify.Cec.Undecided msg ->
        Alcotest.fail (name ("CEC undecided: " ^ msg)));
    check (name "never larger") true
      (Graph.num_ands g' <= Graph.num_ands (Graph.compact g));
    match Aig.Check.check g' with
    | Ok () -> ()
    | Error msg -> Alcotest.fail (name ("structural check: " ^ msg))
  done

let test_oracle_wide_circuits () =
  (* Wider circuits (14 PIs — the satellite's ceiling for the exhaustive
     oracle). *)
  let profile = { Verify.Gen.default with Verify.Gen.npis = 14; nands = 90 } in
  for seed = 100 to 107 do
    let g = Verify.Gen.random ~profile seed in
    let g', _ = Core.Resub_exact.run ~config:fast_config g in
    check (Printf.sprintf "seed %d: 14-PI truth tables agree" seed) true
      (Util.equivalent g g')
  done

let test_acyclicity_property () =
  (* Satellite 3: over 200 seeded circuits, every accepted resubstitution
     leaves the graph acyclic (Replace_expr composition can never smuggle a
     combinational cycle past the TFO exclusion). *)
  let cheap =
    { Core.Resub_exact.default with
      Core.Resub_exact.rounds = 64; cec_rounds = 64; max_passes = 2 }
  in
  Verify.Prop.check_exn ~name:"resub-acyclic" ~seed:1000 ~count:200 (fun g ->
      let g', _ = Core.Resub_exact.run ~config:cheap g in
      match Aig.Check.check g' with
      | Ok () -> Ok ()
      | Error msg -> Error ("resub output fails Aig.Check: " ^ msg))

let test_jobs_invariance () =
  (* Bit-identical output with and without a worker pool: the pool only
     accelerates simulation and batch scoring. *)
  let g = Circuits.Epfl_control.int2float () in
  let seq, st_seq = Core.Resub_exact.run g in
  let par, st_par =
    Parallel.Pool.with_pool ~jobs:4 (fun pool -> Core.Resub_exact.run ~pool g)
  in
  check "AIGER byte-identical at jobs 1 vs 4" true
    (Circuit_io.Aiger.graph_to_string seq = Circuit_io.Aiger.graph_to_string par);
  check_int "same accept count" st_seq.Core.Resub_exact.accepted
    st_par.Core.Resub_exact.accepted

let test_monotone_and_stats () =
  let g = Graph.compact (Circuits.Epfl_control.cavlc ()) in
  let g', st = Core.Resub_exact.run g in
  check "never larger than input" true (Graph.num_ands g' <= Graph.num_ands g);
  check "stats passes > 0" true (st.Core.Resub_exact.passes > 0);
  check "accepted candidates were scored through the batch kernel" true
    (st.Core.Resub_exact.accepted = 0
    || st.Core.Resub_exact.batch.Errest.Batch.scored > 0)

(* ---------- Flow integration: determinism across jobs and kill/resume ---------- *)

let flow_config =
  { (Core.Config.default ~metric:Errest.Metrics.Er ~threshold:0.05) with
    Core.Config.eval_rounds = 2048;
    max_iters = 12;
    seed = 7;
    exact_resub = true }

let flow_circuit () = Circuits.Epfl_control.cavlc ()

let flow_baseline = lazy (Core.Flow.run ~config:flow_config (flow_circuit ()))

let test_flow_exact_resub_reduces () =
  let a, r = Lazy.force flow_baseline in
  check "flow with exact_resub shrinks the circuit" true
    (Graph.num_ands a < r.Core.Flow.input_ands);
  match r.Core.Flow.resub with
  | None -> Alcotest.fail "report is missing the resub stats"
  | Some s -> check "resub pass ran" true (s.Core.Resub_exact.passes > 0)

let test_flow_jobs_invariance () =
  let a1, _ = Lazy.force flow_baseline in
  let a4, _ =
    Core.Flow.run ~config:{ flow_config with Core.Config.jobs = 4 } (flow_circuit ())
  in
  check "flow output byte-identical at jobs 1 vs 4" true
    (Circuit_io.Aiger.graph_to_string a1 = Circuit_io.Aiger.graph_to_string a4)

let no_debris dir =
  (not (Sys.file_exists dir))
  || Array.for_all
       (fun name ->
         let rec has i =
           i + 5 <= String.length name
           && (String.sub name i 5 = ".tmp." || has (i + 1))
         in
         not (has 0))
       (Sys.readdir dir)

let test_flow_kill_resume_identity () =
  (* kill -9 mid-run (fault injection), then resume: byte-identical to the
     uninterrupted run, and no atomic-write debris survives the resume. *)
  let dir = fresh_dir () in
  let config =
    { flow_config with Core.Config.fault = [ Core.Fault.Kill_after { applied = 3 } ] }
  in
  (match Core.Flow.run ~journal:dir ~config (flow_circuit ()) with
  | exception Core.Fault.Killed -> ()
  | _ -> Alcotest.fail "expected the injected kill to fire");
  (* Simulate interrupted atomic writes left behind by the crash. *)
  let plant name = close_out (open_out (Filename.concat dir name)) in
  plant "checkpoint.tmp.4242.7";
  plant "manifest.tmp.1.1";
  let a_res, r_res = Core.Flow.resume dir in
  check "resumed flag set" true r_res.Core.Flow.resumed;
  let a_ref, _ = Lazy.force flow_baseline in
  check "kill+resume matches the uninterrupted run byte-for-byte" true
    (Circuit_io.Aiger.graph_to_string a_ref = Circuit_io.Aiger.graph_to_string a_res);
  check "journal dir holds no .tmp. debris after resume" true (no_debris dir)

(* ---------- Crash-debris sweeps (satellite 2) ---------- *)

let test_sweep_debris_unit () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let plant name = close_out (open_out (Filename.concat dir name)) in
  plant "manifest";
  plant "manifest.tmp.123.4";
  plant "front.json.tmp.99.0";
  plant "tmp.not-debris";
  Circuit_io.Atomic_file.sweep_debris dir;
  let left = Array.to_list (Sys.readdir dir) |> List.sort compare in
  Alcotest.(check (list string))
    "only real files survive" [ "manifest"; "tmp.not-debris" ] left;
  (* Missing directories are ignored, not an error. *)
  Circuit_io.Atomic_file.sweep_debris (Filename.concat dir "nonexistent")

let test_journal_create_sweeps_debris () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  let plant name = close_out (open_out (Filename.concat dir name)) in
  plant "checkpoint.tmp.31337.2";
  let g = Graph.compact (flow_circuit ()) in
  let config = Core.Config.default ~metric:Errest.Metrics.Er ~threshold:0.05 in
  ignore (Core.Journal.create ~dir ~config ~original:g);
  check "Journal.create sweeps pre-existing debris" true (no_debris dir)

let test_session_load_sweeps_debris () =
  let state_dir = fresh_dir () in
  Unix.mkdir state_dir 0o755;
  let g = Graph.compact (Circuits.Epfl_control.ctrl ()) in
  let s =
    Serve.Session.create ~state_dir ~name:"s1" ~circuit:"ctrl" ~graph:g ~priority:0
  in
  let dir = Filename.concat state_dir "s1" in
  let plant d name =
    if not (Sys.file_exists d) then Unix.mkdir d 0o755;
    close_out (open_out (Filename.concat d name))
  in
  plant dir "current.aag.tmp.777.3";
  plant (Serve.Session.journal_dir s) "checkpoint.tmp.8.1";
  let s' = Serve.Session.load_dir ~state_dir ~name:"s1" in
  ignore s';
  check "session dir swept on load" true (no_debris dir);
  check "session journal dir swept on load" true
    (no_debris (Serve.Session.journal_dir s'))

let test_config_exact_resub_roundtrip () =
  let c =
    { (Core.Config.default ~metric:Errest.Metrics.Er ~threshold:0.01) with
      Core.Config.exact_resub = true }
  in
  let c' = Core.Journal.config_of_string (Core.Journal.config_to_string c) in
  check "exact_resub survives the journal round-trip" true
    (c' = c && c'.Core.Config.exact_resub)

let () =
  Alcotest.run "resub"
    [
      ( "divisor",
        [
          Alcotest.test_case "nearest-first truncation" `Quick
            test_tfi_candidates_nearest_first;
          Alcotest.test_case "uncapped enumeration is complete" `Quick
            test_tfi_candidates_uncapped_complete;
          Alcotest.test_case "collect excludes TFO and target" `Quick
            test_collect_excludes_tfo_and_target;
          Alcotest.test_case "collect signature filter" `Quick
            test_collect_signature_filter;
          Alcotest.test_case "care scan rejects self-divisor" `Quick
            test_care_scan_rejects_self_divisor;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "random circuits: exhaustive + CEC" `Quick
            test_oracle_random_circuits;
          Alcotest.test_case "14-PI circuits: exhaustive oracle" `Quick
            test_oracle_wide_circuits;
          Alcotest.test_case "acyclic over 200 seeded circuits" `Slow
            test_acyclicity_property;
          Alcotest.test_case "jobs 1 vs 4 bit-identity" `Quick test_jobs_invariance;
          Alcotest.test_case "monotone + stats" `Quick test_monotone_and_stats;
        ] );
      ( "flow",
        [
          Alcotest.test_case "exact_resub shrinks and reports" `Quick
            test_flow_exact_resub_reduces;
          Alcotest.test_case "flow jobs invariance" `Quick test_flow_jobs_invariance;
          Alcotest.test_case "kill + resume identity, no debris" `Quick
            test_flow_kill_resume_identity;
          Alcotest.test_case "config round-trip" `Quick
            test_config_exact_resub_roundtrip;
        ] );
      ( "debris",
        [
          Alcotest.test_case "sweep_debris unit" `Quick test_sweep_debris_unit;
          Alcotest.test_case "journal create sweeps" `Quick
            test_journal_create_sweeps_debris;
          Alcotest.test_case "session load sweeps" `Quick
            test_session_load_sweeps_debris;
        ] );
    ]
