(* Resilience layer: journaled checkpoint/resume, guarded transforms with
   rollback + quarantine, and fault injection proving each recovery path. *)

module Graph = Aig.Graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A unique run directory per test.  [temp_file] guarantees uniqueness
   across processes; the journal lives next to the (empty) marker file. *)
let fresh_dir () = Filename.temp_file "alsrac_resilience" "" ^ ".d"

(* All tests drive the same small flow: cavlc has 10 PIs, so the evaluation
   sample is exhaustive and every error below is exact. *)
let base_config =
  { (Core.Config.default ~metric:Errest.Metrics.Er ~threshold:0.05) with
    Core.Config.eval_rounds = 2048; max_iters = 40; seed = 7 }

let circuit () = Circuits.Epfl_control.cavlc ()

(* Uninterrupted reference run, shared by the determinism tests. *)
let baseline = lazy (Core.Flow.run ~config:base_config (circuit ()))

(* ---------- Journal serialization ---------- *)

let test_config_roundtrip () =
  let c =
    { (Core.Config.default ~metric:Errest.Metrics.Nmed ~threshold:0.015625) with
      Core.Config.seed = 42;
      sim_rounds = 48;
      scale = 0.85;
      max_seconds = infinity;
      input_probs = Some [| 0.25; 0.5; 0.75 |];
      use_odc = true;
      guard = false;
      confidence = 0.99 }
  in
  let c' = Core.Journal.config_of_string (Core.Journal.config_to_string c) in
  check "config round-trips" true (c = c')

let test_config_rejects_garbage () =
  (match Core.Journal.config_of_string "definitely not a config" with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ());
  match Core.Journal.config_of_string "threshold banana" with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ()

let test_journal_record_load_roundtrip () =
  let dir = fresh_dir () in
  let g = circuit () in
  let original = Graph.compact g in
  let j = Core.Journal.create ~dir ~config:base_config ~original in
  let state =
    {
      Core.Journal.rng_state = -4676534741114219574L;
      rounds = 28;
      patience = 2;
      shrinks_at_floor = 1;
      applied = 3;
      iteration = 9;
      accepts_since_full = 3;
      last_error = 0.015625;
      guard_rejects = 1;
      recovered_exns = 2;
      quarantined = [ 17; 42 ];
      policy_state = "";
      events =
        [
          { Core.Journal.iteration = 9; target = 31; est_error = 0.015625;
            ands_after = 600; rounds = 28 };
          { Core.Journal.iteration = 4; target = 12; est_error = 0.0;
            ands_after = 610; rounds = 32 };
        ];
    }
  in
  Core.Journal.record j state original;
  let r = Core.Journal.load dir in
  check "no degradation" true (r.Core.Journal.degraded = None);
  (match r.Core.Journal.state with
  | None -> Alcotest.fail "expected a checkpoint"
  | Some s -> check "state round-trips" true (s = state));
  check_int "graph round-trips" (Graph.num_ands original)
    (Graph.num_ands r.Core.Journal.graph);
  check "config round-trips" true (r.Core.Journal.config = base_config)

(* ---------- Kill-and-resume determinism ---------- *)

let run_killed_journaled dir ~kill_after =
  let config =
    { base_config with
      Core.Config.fault = [ Core.Fault.Kill_after { applied = kill_after } ] }
  in
  match Core.Flow.run ~journal:dir ~config (circuit ()) with
  | _ -> Alcotest.fail "expected the injected kill to fire"
  | exception Core.Fault.Killed -> ()

let test_kill_and_resume_determinism () =
  let a_full, r_full = Lazy.force baseline in
  check "baseline applied enough LACs" true (r_full.Core.Flow.applied >= 4);
  let dir = fresh_dir () in
  run_killed_journaled dir ~kill_after:3;
  let a_res, r_res = Core.Flow.resume dir in
  check "resumed flag set" true r_res.Core.Flow.resumed;
  check_int "same final AND count" (Graph.num_ands a_full) (Graph.num_ands a_res);
  check_int "same applied count" r_full.Core.Flow.applied r_res.Core.Flow.applied;
  check_int "same event history" (List.length r_full.Core.Flow.events)
    (List.length r_res.Core.Flow.events);
  check "identical PO behaviour" true (Util.equivalent a_full a_res)

let test_double_kill_and_resume () =
  (* Crash the resumed run too: resilience must compose. *)
  let a_full, r_full = Lazy.force baseline in
  let dir = fresh_dir () in
  run_killed_journaled dir ~kill_after:2;
  (match Core.Flow.resume ~fault:[ Core.Fault.Kill_after { applied = 4 } ] dir with
  | _ -> Alcotest.fail "expected the second kill to fire"
  | exception Core.Fault.Killed -> ());
  let a_res, r_res = Core.Flow.resume dir in
  check_int "same final AND count" (Graph.num_ands a_full) (Graph.num_ands a_res);
  check_int "same applied count" r_full.Core.Flow.applied r_res.Core.Flow.applied;
  check "identical PO behaviour" true (Util.equivalent a_full a_res)

(* ---------- Journal corruption ---------- *)

let file_size path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  close_in ic;
  n

let test_resume_from_truncated_checkpoint () =
  let a_full, _ = Lazy.force baseline in
  let dir = fresh_dir () in
  run_killed_journaled dir ~kill_after:3;
  let cp = Filename.concat dir "checkpoint" in
  Core.Fault.truncate_file cp ~keep:(file_size cp / 2);
  let r = Core.Journal.load dir in
  check "torn checkpoint detected" true (r.Core.Journal.degraded <> None);
  check "fell back to the previous checkpoint" true (r.Core.Journal.state <> None);
  let a_res, _ = Core.Flow.resume dir in
  check_int "same final AND count despite torn checkpoint" (Graph.num_ands a_full)
    (Graph.num_ands a_res);
  check "identical PO behaviour" true (Util.equivalent a_full a_res)

let test_resume_from_garbled_checkpoint () =
  let a_full, _ = Lazy.force baseline in
  let dir = fresh_dir () in
  run_killed_journaled dir ~kill_after:3;
  let cp = Filename.concat dir "checkpoint" in
  Core.Fault.corrupt_byte cp ~pos:(file_size cp / 2);
  let r = Core.Journal.load dir in
  check "bit rot detected" true (r.Core.Journal.degraded <> None);
  let a_res, _ = Core.Flow.resume dir in
  check_int "same final AND count despite bit rot" (Graph.num_ands a_full)
    (Graph.num_ands a_res)

let test_resume_after_total_checkpoint_loss () =
  (* Both snapshots corrupt: the journal falls back to a fresh start from
     the recorded original, which by determinism still converges to the
     baseline result. *)
  let a_full, _ = Lazy.force baseline in
  let dir = fresh_dir () in
  run_killed_journaled dir ~kill_after:3;
  Core.Fault.truncate_file (Filename.concat dir "checkpoint") ~keep:7;
  Core.Fault.truncate_file (Filename.concat dir "checkpoint.prev") ~keep:7;
  let r = Core.Journal.load dir in
  check "degraded to fresh start" true
    (r.Core.Journal.degraded <> None && r.Core.Journal.state = None);
  let a_res, r_res = Core.Flow.resume dir in
  check "fresh restart is not flagged resumed" true (not r_res.Core.Flow.resumed);
  check_int "same final AND count from scratch" (Graph.num_ands a_full)
    (Graph.num_ands a_res)

let test_corrupt_manifest_fails_cleanly () =
  let dir = fresh_dir () in
  run_killed_journaled dir ~kill_after:2;
  Core.Fault.truncate_file (Filename.concat dir "manifest") ~keep:25;
  match Core.Journal.load dir with
  | _ -> Alcotest.fail "expected Failure on a corrupt manifest"
  | exception Failure _ -> ()

(* ---------- Guarded transforms ---------- *)

let test_corrupt_lac_rolled_back_and_quarantined () =
  (* Corrupt the chosen LAC of the first five iterations: the guard's
     signature probe must catch the mismatch, roll back, and quarantine. *)
  let fault =
    List.init 5 (fun i -> Core.Fault.Corrupt_lac { iteration = i + 1 })
  in
  let config = { base_config with Core.Config.fault } in
  let g = circuit () in
  let approx, report = Core.Flow.run ~config g in
  check "guard fired" true (report.Core.Flow.guard_rejects >= 1);
  check "targets quarantined" true (report.Core.Flow.quarantined >= 1);
  (* Exhaustive evaluation: the exact error still respects the budget. *)
  let exact = Errest.Metrics.evaluate Errest.Metrics.Er ~original:g ~approx in
  check "error still within threshold" true (exact <= 0.05 +. 1e-9);
  check "interface preserved" true
    (Graph.num_pis approx = Graph.num_pis g && Graph.num_pos approx = Graph.num_pos g)

let test_corrupt_lac_without_guard_poisons () =
  (* Sanity check on the harness itself: with the guard off, the same
     corruption silently commits a wrong graph (the whole point of keeping
     the guard always-on). *)
  let fault = List.init 5 (fun i -> Core.Fault.Corrupt_lac { iteration = i + 1 }) in
  let config = { base_config with Core.Config.fault; guard = false } in
  let _, report = Core.Flow.run ~config (circuit ()) in
  check "no guard, no rollback" true (report.Core.Flow.guard_rejects = 0)

let test_signature_flip_rolled_back () =
  (* Flip one evaluation-signature bit on every node for a few iterations:
     every prediction made from the skewed signatures disagrees with the
     re-measured truth, so the guard must reject those commits. *)
  let fault =
    List.init 3 (fun i -> Core.Fault.Flip_signatures { iteration = i + 1; bit = 0 })
  in
  let config = { base_config with Core.Config.fault } in
  let g = circuit () in
  let approx, report = Core.Flow.run ~config g in
  check "guard fired on skewed signatures" true (report.Core.Flow.guard_rejects >= 1);
  let exact = Errest.Metrics.evaluate Errest.Metrics.Er ~original:g ~approx in
  check "error still within threshold" true (exact <= 0.05 +. 1e-9)

let test_injected_exception_recovered () =
  let fault =
    [ Core.Fault.Raise_at { iteration = 1 }; Core.Fault.Raise_at { iteration = 3 } ]
  in
  let config = { base_config with Core.Config.fault } in
  let g = circuit () in
  let approx, report = Core.Flow.run ~config g in
  check_int "both exceptions recovered" 2 report.Core.Flow.recovered_exns;
  check "flow still made progress" true (report.Core.Flow.applied >= 1);
  let exact = Errest.Metrics.evaluate Errest.Metrics.Er ~original:g ~approx in
  check "error still within threshold" true (exact <= 0.05 +. 1e-9)

let test_faulty_run_still_journals () =
  (* Faults and journaling compose: a run surviving injected corruption
     still checkpoints, and its resume completes. *)
  let dir = fresh_dir () in
  let fault =
    [ Core.Fault.Corrupt_lac { iteration = 2 };
      Core.Fault.Raise_at { iteration = 4 };
      Core.Fault.Kill_after { applied = 3 } ]
  in
  let config = { base_config with Core.Config.fault } in
  (match Core.Flow.run ~journal:dir ~config (circuit ()) with
  | _ -> Alcotest.fail "expected the injected kill to fire"
  | exception Core.Fault.Killed -> ());
  let _, report = Core.Flow.resume dir in
  check "resume completed" true (report.Core.Flow.applied >= 3);
  check "fault counters persisted across resume" true
    (report.Core.Flow.guard_rejects >= 1 || report.Core.Flow.recovered_exns >= 1)

let () =
  Alcotest.run "resilience"
    [
      ( "journal",
        [
          Alcotest.test_case "config round-trip" `Quick test_config_roundtrip;
          Alcotest.test_case "config rejects garbage" `Quick test_config_rejects_garbage;
          Alcotest.test_case "record/load round-trip" `Quick
            test_journal_record_load_roundtrip;
        ] );
      ( "resume",
        [
          Alcotest.test_case "kill and resume determinism" `Slow
            test_kill_and_resume_determinism;
          Alcotest.test_case "double kill and resume" `Slow test_double_kill_and_resume;
          Alcotest.test_case "truncated checkpoint" `Slow
            test_resume_from_truncated_checkpoint;
          Alcotest.test_case "garbled checkpoint" `Slow
            test_resume_from_garbled_checkpoint;
          Alcotest.test_case "total checkpoint loss" `Slow
            test_resume_after_total_checkpoint_loss;
          Alcotest.test_case "corrupt manifest" `Quick test_corrupt_manifest_fails_cleanly;
        ] );
      ( "guard",
        [
          Alcotest.test_case "corrupt LAC rolled back" `Slow
            test_corrupt_lac_rolled_back_and_quarantined;
          Alcotest.test_case "corrupt LAC without guard" `Slow
            test_corrupt_lac_without_guard_poisons;
          Alcotest.test_case "signature flip rolled back" `Slow
            test_signature_flip_rolled_back;
          Alcotest.test_case "injected exception recovered" `Slow
            test_injected_exception_recovered;
          Alcotest.test_case "faults + journal compose" `Slow test_faulty_run_still_journals;
        ] );
    ]
