(* The resident daemon: framed transport, protocol grammar, bounded
   scheduling with shedding, watermark-driven eviction, and the daemon's
   robustness headline — deadline rollback, backpressure under concurrent
   clients, malformed-frame quarantine, and kill -9 + restart resuming an
   in-flight approximation to the bit-identical circuit. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let fresh_dir () = Filename.temp_file "alsrac_serve" "" ^ ".d"

(* Unix-domain socket paths are length-limited (~104 bytes), so sockets get
   short names directly under the temp dir.  [temp_file] reserves the name;
   the placeholder file is removed so [listen] can bind there. *)
let fresh_socket () =
  let p = Filename.temp_file "als" ".sock" in
  Sys.remove p;
  p

(* ---------- Transport ---------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with _ -> ());
      try Unix.close b with _ -> ())
    (fun () -> f a b)

let test_transport_roundtrip () =
  with_socketpair @@ fun a b ->
  let payloads = [ ""; "x"; String.make 100_000 'q'; "line1\nline2\n\x00\xff" ] in
  List.iter
    (fun p ->
      Serve.Transport.send a p;
      check_string "frame round-trips" p (Serve.Transport.recv ~timeout_s:5.0 b))
    payloads

let test_transport_rejects_garbage () =
  (* Bad magic. *)
  with_socketpair (fun a b ->
      ignore (Unix.write_substring a "NOPE\x00\x00\x00\x01x\x00\x00\x00\x00" 0 13);
      match Serve.Transport.recv ~timeout_s:1.0 b with
      | _ -> Alcotest.fail "bad magic accepted"
      | exception Serve.Transport.Malformed _ -> ());
  (* Oversized length field: rejected before allocating. *)
  with_socketpair (fun a b ->
      ignore (Unix.write_substring a "ALS1\x7f\xff\xff\xff" 0 8);
      match Serve.Transport.recv ~timeout_s:1.0 b with
      | _ -> Alcotest.fail "oversized length accepted"
      | exception Serve.Transport.Malformed _ -> ());
  (* Checksum mismatch. *)
  with_socketpair (fun a b ->
      ignore (Unix.write_substring a "ALS1\x00\x00\x00\x02hi\x00\x00\x00\x00" 0 14);
      match Serve.Transport.recv ~timeout_s:1.0 b with
      | _ -> Alcotest.fail "checksum mismatch accepted"
      | exception Serve.Transport.Malformed _ -> ());
  (* EOF mid-frame: the peer died after half a frame. *)
  with_socketpair (fun a b ->
      ignore (Unix.write_substring a "ALS1\x00\x00\x00\x0aabc" 0 11);
      Unix.close a;
      match Serve.Transport.recv ~timeout_s:1.0 b with
      | _ -> Alcotest.fail "torn frame accepted"
      | exception Serve.Transport.Malformed _ -> ());
  (* Clean EOF at a frame boundary is Closed, not Malformed. *)
  with_socketpair (fun a b ->
      Unix.close a;
      match Serve.Transport.recv ~timeout_s:1.0 b with
      | _ -> Alcotest.fail "EOF produced a frame"
      | exception Serve.Transport.Closed -> ())

let test_transport_timeout () =
  with_socketpair @@ fun _a b ->
  let t0 = Unix.gettimeofday () in
  match Serve.Transport.recv ~timeout_s:0.2 b with
  | _ -> Alcotest.fail "recv returned without data"
  | exception Serve.Transport.Timeout ->
      check "timeout honored" true (Unix.gettimeofday () -. t0 < 2.0)

let test_transport_fault_injection () =
  (* Injected mid-frame EOF on send: sender raises, receiver sees a torn
     frame once the socket closes. *)
  let plan = Core.Fault.plan_of_string "eof-mid-frame@1" in
  with_socketpair (fun a b ->
      (match Serve.Transport.send ~faults:plan ~nth:1 a "hello world" with
      | () -> Alcotest.fail "injected send completed"
      | exception Core.Fault.Injected _ -> ());
      Unix.close a;
      match Serve.Transport.recv ~timeout_s:1.0 b with
      | _ -> Alcotest.fail "torn frame accepted"
      | exception Serve.Transport.Malformed _ -> ());
  (* Injected short read on recv: frame lost, connection poisoned. *)
  let plan = Core.Fault.plan_of_string "short-read@1" in
  with_socketpair (fun a b ->
      Serve.Transport.send a "hello world";
      match Serve.Transport.recv ~faults:plan ~nth:1 ~timeout_s:1.0 b with
      | _ -> Alcotest.fail "short read produced a frame"
      | exception Serve.Transport.Malformed _ -> ());
  (* Delayed write completes, just late. *)
  let plan = Core.Fault.plan_of_string "delay-write@1:50" in
  with_socketpair (fun a b ->
      let t0 = Unix.gettimeofday () in
      Serve.Transport.send ~faults:plan ~nth:1 a "slow";
      check_string "delayed frame arrives" "slow"
        (Serve.Transport.recv ~timeout_s:1.0 b);
      check "write was delayed" true (Unix.gettimeofday () -. t0 >= 0.045))

(* ---------- Protocol ---------- *)

let sample_params =
  {
    Serve.Protocol.metric = Errest.Metrics.Nmed;
    threshold = 0.015625;
    seed = 42;
    eval_rounds = 2048;
    max_iters = 17;
  }

let test_protocol_request_roundtrip () =
  let reqs =
    [
      Serve.Protocol.Ping;
      Serve.Protocol.Load
        { session = "s1"; circuit = "mtp8"; graph = None; priority = 3 };
      Serve.Protocol.Load
        {
          session = "shipped";
          circuit = "-";
          graph = Some "aag 3 1 0 1 1\n2\n4\n\x00raw";
          priority = 0;
        };
      Serve.Protocol.Approx
        { session = "s1"; params = sample_params; deadline_s = Some 1.5 };
      Serve.Protocol.Approx
        { session = "s1"; params = sample_params; deadline_s = None };
      Serve.Protocol.Metrics { session = "s1"; metric = Errest.Metrics.Er };
      Serve.Protocol.Cec { session = "s1" };
      Serve.Protocol.Get { session = "s1" };
      Serve.Protocol.Status;
      Serve.Protocol.Evict { session = "s1" };
      Serve.Protocol.Shutdown;
    ]
  in
  List.iter
    (fun req ->
      let req' =
        Serve.Protocol.decode_request (Serve.Protocol.encode_request req)
      in
      check "request round-trips" true (req = req'))
    reqs

let test_protocol_response_roundtrip () =
  let resps =
    [
      Serve.Protocol.Ok ([], None);
      Serve.Protocol.Ok
        ([ ("a", "1"); ("b", "two words"); ("c", "") ], Some "blob\nbytes");
      Serve.Protocol.Err
        {
          code = Serve.Protocol.Overloaded;
          detail = "queue full\nnasty \"detail\"";
          retry_after_s = Some 1.25;
        };
      Serve.Protocol.Err
        { code = Serve.Protocol.Timeout; detail = ""; retry_after_s = None };
    ]
  in
  List.iter
    (fun resp ->
      let resp' =
        Serve.Protocol.decode_response (Serve.Protocol.encode_response resp)
      in
      check "response round-trips" true (resp = resp'))
    resps

let test_protocol_rejects_garbage () =
  let bad =
    [
      "";
      "alsrac-req 2\nverb ping\nend\n";
      "alsrac-req 1\nverb frobnicate\nend\n";
      "alsrac-req 1\nverb load\nsession ../etc\ncircuit x\npriority 0\nend\n";
      "alsrac-req 1\nverb approx\nsession s\nend\n";
      "alsrac-req 1\nverb load\nsession s\ncircuit c\npriority 0\ngraph 999999 0\nend\n";
      "alsrac-req 1\nverb ping";
      "not a protocol frame at all \x00\xff";
    ]
  in
  List.iter
    (fun payload ->
      match Serve.Protocol.decode_request payload with
      | _ -> Alcotest.fail (Printf.sprintf "accepted %S" payload)
      | exception Failure _ -> ())
    bad

let test_protocol_session_names () =
  check "plain ok" true (Serve.Protocol.valid_session_name "my-session_1.x");
  check "empty rejected" false (Serve.Protocol.valid_session_name "");
  check "dotfile rejected" false (Serve.Protocol.valid_session_name ".hidden");
  check "slash rejected" false (Serve.Protocol.valid_session_name "a/b");
  check "space rejected" false (Serve.Protocol.valid_session_name "a b");
  check "long rejected" false
    (Serve.Protocol.valid_session_name (String.make 65 'a'))

(* ---------- Scheduler ---------- *)

let ok_reply tag = Serve.Protocol.Ok ([ ("tag", tag) ], None)

let test_scheduler_priority_and_shed () =
  let s = Serve.Scheduler.create ~max_queue:2 in
  let submit ~priority ~session tag =
    Serve.Scheduler.submit s ~session ~priority ~budget:0.0 ~deadline:infinity
      ~work:(fun () -> ok_reply tag)
  in
  let t_low =
    match submit ~priority:0 ~session:"low" "low" with
    | `Queued t -> t
    | `Overloaded -> Alcotest.fail "low rejected"
  in
  let _t_mid =
    match submit ~priority:1 ~session:"mid" "mid" with
    | `Queued t -> t
    | `Overloaded -> Alcotest.fail "mid rejected"
  in
  (* Queue full: an equal-priority newcomer is refused... *)
  (match submit ~priority:0 ~session:"x" "x" with
  | `Overloaded -> ()
  | `Queued _ -> Alcotest.fail "overflow accepted");
  (* ...but a higher-priority one sheds the lowest-priority entry. *)
  let _t_high =
    match submit ~priority:5 ~session:"high" "high" with
    | `Queued t -> t
    | `Overloaded -> Alcotest.fail "high-priority rejected"
  in
  (match Serve.Scheduler.await t_low with
  | Serve.Protocol.Err { code = Serve.Protocol.Shedding; _ } -> ()
  | _ -> Alcotest.fail "shed job did not get a Shedding error");
  (* Executor order: highest priority first. *)
  let next_tag () =
    match Serve.Scheduler.next s with
    | Some job -> (
        let r = job.Serve.Scheduler.work () in
        Serve.Scheduler.finish s job r;
        match r with
        | Serve.Protocol.Ok ([ ("tag", tag) ], None) -> tag
        | _ -> Alcotest.fail "bad reply")
    | None -> Alcotest.fail "queue empty"
  in
  check_string "high first" "high" (next_tag ());
  check_string "mid second" "mid" (next_tag ());
  check_int "drained" 0 (Serve.Scheduler.depth s)

let test_scheduler_expired_in_queue () =
  let s = Serve.Scheduler.create ~max_queue:4 in
  let t_stale =
    match
      Serve.Scheduler.submit s ~session:"stale" ~priority:9 ~budget:0.0
        ~deadline:(Unix.gettimeofday () -. 1.0)
        ~work:(fun () -> Alcotest.fail "expired job ran")
    with
    | `Queued t -> t
    | `Overloaded -> Alcotest.fail "rejected"
  in
  let t_live =
    match
      Serve.Scheduler.submit s ~session:"live" ~priority:0 ~budget:0.0
        ~deadline:infinity
        ~work:(fun () -> ok_reply "live")
    with
    | `Queued t -> t
    | `Overloaded -> Alcotest.fail "rejected"
  in
  (match Serve.Scheduler.next s with
  | Some job ->
      check_string "only the live job runs" "live" job.Serve.Scheduler.session;
      Serve.Scheduler.finish s job (job.Serve.Scheduler.work ())
  | None -> Alcotest.fail "no job");
  (match Serve.Scheduler.await t_stale with
  | Serve.Protocol.Err { code = Serve.Protocol.Timeout; _ } -> ()
  | _ -> Alcotest.fail "expired job did not time out");
  match Serve.Scheduler.await t_live with
  | Serve.Protocol.Ok _ -> ()
  | _ -> Alcotest.fail "live job failed"

let test_scheduler_fairness_by_budget () =
  let s = Serve.Scheduler.create ~max_queue:4 in
  let submit session budget =
    match
      Serve.Scheduler.submit s ~session ~priority:0 ~budget ~deadline:infinity
        ~work:(fun () -> ok_reply session)
    with
    | `Queued t -> t
    | `Overloaded -> Alcotest.fail "rejected"
  in
  let _ = submit "greedy" 100.0 in
  let _ = submit "frugal" 1.0 in
  match Serve.Scheduler.next s with
  | Some job ->
      check_string "least-budget session first" "frugal"
        job.Serve.Scheduler.session;
      Serve.Scheduler.finish s job (ok_reply "x")
  | None -> Alcotest.fail "no job"

(* ---------- Watchdog ---------- *)

let test_watchdog_evictions () =
  let c name last_used busy bytes =
    { Serve.Watchdog.name; last_used; busy; bytes }
  in
  let candidates =
    [ c "hot" 100.0 false 40; c "cold" 1.0 false 40; c "busy" 0.5 true 40;
      c "warm" 50.0 false 40 ]
  in
  (* Under the high watermark: nothing to do. *)
  check "under watermark" true
    (Serve.Watchdog.plan_evictions ~candidates ~resident_bytes:100
       ~high_watermark:120 ~low_watermark:90
    = []);
  (* Over it: coldest idle first, stop at the low watermark, never evict a
     busy session. *)
  let plan =
    Serve.Watchdog.plan_evictions ~candidates ~resident_bytes:160
      ~high_watermark:120 ~low_watermark:90
  in
  check "coldest idle evicted first" true (plan = [ "cold"; "warm" ]);
  (* Even an impossible target never evicts busy sessions. *)
  let plan =
    Serve.Watchdog.plan_evictions ~candidates ~resident_bytes:160
      ~high_watermark:120 ~low_watermark:0
  in
  check "busy sessions survive" false (List.mem "busy" plan)

let test_watchdog_retry_after () =
  let r = Serve.Watchdog.retry_after ~queue_depth:4 ~mean_service_s:0.5 in
  check "scales with depth" true (r >= 1.9 && r <= 2.1);
  check "clamped below" true
    (Serve.Watchdog.retry_after ~queue_depth:0 ~mean_service_s:0.0 >= 0.1);
  check "clamped above" true
    (Serve.Watchdog.retry_after ~queue_depth:1000 ~mean_service_s:60.0 <= 30.0)

(* ---------- Session persistence ---------- *)

let test_session_persistence () =
  let state_dir = fresh_dir () in
  let g = Circuits.Epfl_control.ctrl () in
  let s =
    Serve.Session.create ~state_dir ~name:"s1" ~circuit:"ctrl" ~graph:g
      ~priority:2
  in
  check "fresh session is exact" true (Serve.Session.metric s Errest.Metrics.Er = 0.0);
  s.Serve.Session.budget_s <- 1.5;
  s.Serve.Session.applied_total <- 7;
  Serve.Session.save_manifest s;
  let req =
    Serve.Protocol.Approx { session = "s1"; params = sample_params; deadline_s = None }
  in
  Serve.Session.record_inflight s req;
  let s' = Serve.Session.load_dir ~state_dir ~name:"s1" in
  (* [Aiger.parse] renames graphs to "aiger", so compare both originals
     after a parse round-trip to factor out the trailing name comment. *)
  let norm g =
    Circuit_io.Aiger.graph_to_string
      (Circuit_io.Aiger.parse (Circuit_io.Aiger.graph_to_string g))
  in
  check_string "original survives reload"
    (norm s.Serve.Session.original)
    (norm s'.Serve.Session.original);
  check_int "applied survives" 7 s'.Serve.Session.applied_total;
  check_int "priority survives" 2 s'.Serve.Session.priority;
  check "budget survives" true (s'.Serve.Session.budget_s = 1.5);
  check "inflight survives" true (Serve.Session.inflight s' = Some req);
  Serve.Session.clear_inflight s';
  check "inflight cleared" true (Serve.Session.inflight s' = None);
  check "scan finds it" true (Serve.Session.scan ~state_dir = [ "s1" ]);
  Serve.Session.destroy s';
  check "destroy removes it" true (Serve.Session.scan ~state_dir = [])

(* ---------- In-process daemon harness ---------- *)

let daemon_config () =
  {
    (Serve.Daemon.default ~socket:(fresh_socket ()) ~state_dir:(fresh_dir ())) with
    Serve.Daemon.default_deadline_s = 60.0;
    read_timeout_s = 10.0;
  }

let with_daemon cfg f =
  let thread = Thread.create (fun () -> Serve.Daemon.run cfg) () in
  let conn = Serve.Client.connect ~path:cfg.Serve.Daemon.socket () in
  let shut () =
    (try ignore (Serve.Client.shutdown conn) with _ -> ());
    Serve.Client.close conn;
    Thread.join thread
  in
  Fun.protect ~finally:shut (fun () -> f conn)

let status_field conn key =
  match Serve.Client.ok_field (Serve.Client.status conn) key with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "status lacks %s" key)

let test_daemon_lifecycle () =
  with_daemon (daemon_config ()) @@ fun conn ->
  check "ping" true (Serve.Client.ping conn);
  (match Serve.Client.load conn ~session:"s1" ~circuit:"ctrl" () with
  | Serve.Protocol.Ok (kvs, _) ->
      check "load reports ands" true (List.mem_assoc "input-ands" kvs)
  | Serve.Protocol.Err _ -> Alcotest.fail "load failed");
  (* Warm metric of an untouched session is exactly zero. *)
  (match Serve.Client.metrics conn ~session:"s1" ~metric:Errest.Metrics.Er with
  | Serve.Protocol.Ok (kvs, _) ->
      check_string "zero error" "0" (List.assoc "value" kvs)
  | Serve.Protocol.Err _ -> Alcotest.fail "metrics failed");
  (match Serve.Client.cec conn ~session:"s1" with
  | Serve.Protocol.Ok (kvs, _) ->
      check_string "cec equivalent" "equivalent" (List.assoc "verdict" kvs)
  | Serve.Protocol.Err _ -> Alcotest.fail "cec failed");
  (match Serve.Client.get conn ~session:"s1" with
  | Serve.Protocol.Ok (_, Some _) -> ()
  | _ -> Alcotest.fail "get returned no graph");
  check_string "one session" "1" (status_field conn "sessions");
  (match Serve.Client.evict conn ~session:"s1" with
  | Serve.Protocol.Ok _ -> ()
  | Serve.Protocol.Err _ -> Alcotest.fail "evict failed");
  match Serve.Client.metrics conn ~session:"s1" ~metric:Errest.Metrics.Er with
  | Serve.Protocol.Err { code = Serve.Protocol.No_session; _ } -> ()
  | _ -> Alcotest.fail "evicted session still answers"

let test_daemon_unknown_session_and_circuit () =
  with_daemon (daemon_config ()) @@ fun conn ->
  (match Serve.Client.load conn ~session:"s1" ~circuit:"definitely-not-real" () with
  | Serve.Protocol.Err { code = Serve.Protocol.Bad_request; _ } -> ()
  | _ -> Alcotest.fail "unknown circuit accepted");
  match
    Serve.Client.approx conn ~session:"ghost" ~params:sample_params ()
  with
  | Serve.Protocol.Err { code = Serve.Protocol.No_session; _ } -> ()
  | _ -> Alcotest.fail "approx on missing session accepted"

let approx_params ~threshold =
  {
    Serve.Protocol.metric = Errest.Metrics.Er;
    threshold;
    seed = 1;
    eval_rounds = 1024;
    max_iters = 1000;
  }

let test_daemon_deadline_rollback () =
  with_daemon (daemon_config ()) @@ fun conn ->
  (match Serve.Client.load conn ~session:"s1" ~circuit:"c1908" () with
  | Serve.Protocol.Ok _ -> ()
  | Serve.Protocol.Err _ -> Alcotest.fail "load failed");
  let original_ands =
    int_of_string
      (Option.get (Serve.Client.ok_field (Serve.Client.get conn ~session:"s1") "ands"))
  in
  (* The c1908 flow needs over a second; a 0.25s deadline must expire
     mid-run, produce a structured timeout and roll the session back. *)
  (match
     Serve.Client.approx conn ~session:"s1"
       ~params:(approx_params ~threshold:0.05) ~deadline_s:0.25 ()
   with
  | Serve.Protocol.Err { code = Serve.Protocol.Timeout; _ } -> ()
  | Serve.Protocol.Ok _ -> Alcotest.fail "run beat a 0.25s deadline?"
  | Serve.Protocol.Err { code; _ } ->
      Alcotest.fail
        ("expected timeout, got " ^ Serve.Protocol.code_to_string code));
  (* The daemon is not wedged and the session rolled back to a guarded
     snapshot: at most the checkpointed prefix of the run is visible. *)
  check "daemon alive after timeout" true (Serve.Client.ping conn);
  let ands_after =
    int_of_string
      (Option.get (Serve.Client.ok_field (Serve.Client.get conn ~session:"s1") "ands"))
  in
  check "rolled back to a snapshot" true (ands_after <= original_ands);
  match Serve.Client.metrics conn ~session:"s1" ~metric:Errest.Metrics.Er with
  | Serve.Protocol.Ok _ -> ()
  | Serve.Protocol.Err _ -> Alcotest.fail "session unusable after rollback"

let test_daemon_backpressure () =
  let cfg = { (daemon_config ()) with Serve.Daemon.max_queue = 1 } in
  with_daemon cfg @@ fun conn ->
  (match Serve.Client.load conn ~session:"s1" ~circuit:"c1908" () with
  | Serve.Protocol.Ok _ -> ()
  | Serve.Protocol.Err _ -> Alcotest.fail "load failed");
  (* Occupy the executor with a deadline-bounded approx... *)
  let approx_done = ref None in
  let approx_thread =
    Thread.create
      (fun () ->
        let c = Serve.Client.connect ~path:cfg.Serve.Daemon.socket () in
        approx_done :=
          Some
            (Serve.Client.approx c ~session:"s1"
               ~params:(approx_params ~threshold:0.05) ~deadline_s:2.0 ());
        Serve.Client.close c)
      ()
  in
  Thread.delay 0.4;
  (* ...then hit the size-1 queue from several concurrent clients. *)
  let results = Array.make 3 None in
  let clients =
    Array.init 3 (fun i ->
        Thread.create
          (fun () ->
            let c = Serve.Client.connect ~path:cfg.Serve.Daemon.socket () in
            results.(i) <-
              Some (Serve.Client.metrics c ~session:"s1" ~metric:Errest.Metrics.Er);
            Serve.Client.close c)
          ())
  in
  Array.iter Thread.join clients;
  Thread.join approx_thread;
  let overloaded = ref 0 and served = ref 0 and hinted = ref 0 in
  Array.iter
    (fun r ->
      match r with
      | Some (Serve.Protocol.Err { code = Serve.Protocol.Overloaded; retry_after_s; _ })
        ->
          incr overloaded;
          if retry_after_s <> None then incr hinted
      | Some (Serve.Protocol.Ok _) -> incr served
      | _ -> ())
    results;
  check "some client was pushed back" true (!overloaded >= 1);
  check_int "every overload carried a retry hint" !overloaded !hinted;
  check "some client was served" true (!served >= 1);
  check "daemon alive under pressure" true (Serve.Client.ping conn)

let test_daemon_busy_approx () =
  let cfg = daemon_config () in
  with_daemon cfg @@ fun conn ->
  (match Serve.Client.load conn ~session:"s1" ~circuit:"c1908" () with
  | Serve.Protocol.Ok _ -> ()
  | Serve.Protocol.Err _ -> Alcotest.fail "load failed");
  let first =
    Thread.create
      (fun () ->
        let c = Serve.Client.connect ~path:cfg.Serve.Daemon.socket () in
        ignore
          (Serve.Client.approx c ~session:"s1"
             ~params:(approx_params ~threshold:0.05) ~deadline_s:2.0 ());
        Serve.Client.close c)
      ()
  in
  Thread.delay 0.4;
  (match
     Serve.Client.approx conn ~session:"s1"
       ~params:(approx_params ~threshold:0.05) ()
   with
  | Serve.Protocol.Err { code = Serve.Protocol.Busy; _ } -> ()
  | _ -> Alcotest.fail "concurrent approx on one session accepted");
  Thread.join first

let test_daemon_malformed_fuzz () =
  let cfg = daemon_config () in
  with_daemon cfg @@ fun conn ->
  check "ping before fuzz" true (Serve.Client.ping conn);
  let socket = cfg.Serve.Daemon.socket in
  let rng = Logic.Rng.create 0xF00D in
  let write_all fd s =
    let pos = ref 0 in
    (try
       while !pos < String.length s do
         pos := !pos + Unix.write_substring fd s !pos (String.length s - !pos)
       done
     with Unix.Unix_error _ -> ())
  in
  let random_bytes n =
    String.init n (fun _ -> Char.chr (Logic.Rng.int rng 256))
  in
  (* Frame-layer garbage: random bytes, corrupt headers, truncated frames.
     Each poisoned connection must be dropped; the daemon must survive. *)
  for i = 1 to 12 do
    let fd = Serve.Transport.connect ~path:socket in
    (match i mod 4 with
    | 0 -> write_all fd (random_bytes (1 + Logic.Rng.int rng 64))
    | 1 -> write_all fd ("XXXX" ^ random_bytes 12)
    | 2 -> write_all fd "ALS1\xff\xff\xff\xff"
    | _ ->
        (* Valid header, missing payload: torn frame. *)
        write_all fd "ALS1\x00\x00\x01\x00half");
    (try Unix.close fd with _ -> ())
  done;
  (* Payload-layer garbage in well-formed frames: the daemon answers each
     with a structured Bad_request, then quarantines the connection after
     three strikes. *)
  let fd = Serve.Transport.connect ~path:socket in
  let bad_requests = ref 0 in
  (try
     for _ = 1 to 3 do
       Serve.Transport.send fd ("alsrac-req 1\nverb " ^ random_bytes 8 ^ "\nend\n");
       match Serve.Protocol.decode_response (Serve.Transport.recv ~timeout_s:5.0 fd) with
       | Serve.Protocol.Err { code = Serve.Protocol.Bad_request; _ } ->
           incr bad_requests
       | _ -> ()
     done
   with _ -> ());
  check_int "each malformed payload got a structured error" 3 !bad_requests;
  (* Fourth strike: the connection is gone. *)
  (try
     Serve.Transport.send fd "alsrac-req 1\nverb nonsense\nend\n";
     match Serve.Transport.recv ~timeout_s:5.0 fd with
     | _ -> Alcotest.fail "quarantined connection still answers"
     | exception (Serve.Transport.Closed | Serve.Transport.Malformed _) -> ()
   with Unix.Unix_error _ -> ());
  (try Unix.close fd with _ -> ());
  (* The daemon survived it all and counted the damage. *)
  check "daemon alive after fuzz" true (Serve.Client.ping conn);
  check "malformed frames were counted" true
    (int_of_string (status_field conn "malformed") >= 12)

let test_daemon_dispatch_fault () =
  let cfg =
    { (daemon_config ()) with Serve.Daemon.fault = Core.Fault.plan_of_string "raise@1" }
  in
  with_daemon cfg @@ fun conn ->
  (* The first request of every connection hits the injected dispatch
     fault as a structured internal error... *)
  (match Serve.Client.status conn with
  | Serve.Protocol.Err { code = Serve.Protocol.Internal; detail; _ } ->
      check "injected detail" true
        (detail = "injected dispatch fault")
  | _ -> Alcotest.fail "dispatch fault not injected");
  (* ...and the connection survives to serve the next one. *)
  check "connection survives the fault" true (Serve.Client.ping conn)

(* ---------- Kill -9 and resume (subprocess daemon) ---------- *)

let alsrac_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/alsrac.exe"

let spawn_daemon ~socket ~state_dir =
  let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process alsrac_exe
      [| alsrac_exe; "serve"; "--socket"; socket; "--state-dir"; state_dir;
         "--deadline"; "300" |]
      null null null
  in
  Unix.close null;
  pid

let wait_for path ~timeout_s =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if Sys.file_exists path then true
    else if Unix.gettimeofday () -. t0 > timeout_s then false
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

let test_daemon_kill_and_resume () =
  let socket = fresh_socket () and state_dir = fresh_dir () in
  let g = Circuits.Epfl_control.cavlc () in
  let bytes = Circuit_io.Aiger.graph_to_string g in
  let threshold = 0.05 in
  let pid = spawn_daemon ~socket ~state_dir in
  let conn = Serve.Client.connect ~path:socket () in
  (match
     Serve.Client.load conn ~session:"s1" ~circuit:"-" ~graph:bytes ()
   with
  | Serve.Protocol.Ok _ -> ()
  | Serve.Protocol.Err _ -> Alcotest.fail "load failed");
  (* Fire the approx from a helper thread (it blocks until completion —
     which never comes, because we SIGKILL the daemon mid-run). *)
  let _approx_thread =
    Thread.create
      (fun () ->
        try
          ignore
            (Serve.Client.approx conn ~session:"s1"
               ~params:(approx_params ~threshold) ())
        with _ -> ())
      ()
  in
  (* Kill the instant the first accepted-LAC checkpoint hits the disk:
     guaranteed mid-run. *)
  let checkpoint =
    Filename.concat state_dir (Filename.concat "s1" "journal/checkpoint")
  in
  check "a checkpoint appeared" true (wait_for checkpoint ~timeout_s:30.0);
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  Serve.Client.close conn;
  let was_inflight =
    Sys.file_exists (Filename.concat state_dir (Filename.concat "s1" "inflight"))
  in
  check "killed mid-request (inflight marker on disk)" true was_inflight;
  (* Restart: the daemon replays the in-flight approximation from its
     journal before opening the socket. *)
  let pid2 = spawn_daemon ~socket ~state_dir in
  let conn2 = Serve.Client.connect ~retries:120 ~path:socket () in
  check_string "restart resumed the session" "1"
    (Option.get (Serve.Client.ok_field (Serve.Client.status conn2) "resumed-sessions"));
  let resumed_bytes =
    match Serve.Client.get conn2 ~session:"s1" with
    | Serve.Protocol.Ok (_, Some b) -> b
    | _ -> Alcotest.fail "get after resume failed"
  in
  ignore (Serve.Client.shutdown conn2);
  Serve.Client.close conn2;
  ignore (Unix.waitpid [] pid2);
  (* Reference: the identical uninterrupted run, in-process.  The daemon
     parses the shipped AIGER, so the reference must too. *)
  let config =
    { (Core.Config.default ~metric:Errest.Metrics.Er ~threshold) with
      Core.Config.seed = 1; eval_rounds = 1024; max_iters = 1000; jobs = 1 }
  in
  let reference, _ = Core.Flow.run ~config (Circuit_io.Aiger.parse bytes) in
  check_string "kill -9 + resume is bit-identical to an uninterrupted run"
    (Circuit_io.Aiger.graph_to_string reference)
    resumed_bytes

(* ---------- Runner ---------- *)

let tc name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "serve"
    [
      ( "transport",
        [
          tc "frame round-trip" test_transport_roundtrip;
          tc "hostile frames rejected" test_transport_rejects_garbage;
          tc "read deadline" test_transport_timeout;
          tc "io fault injection" test_transport_fault_injection;
        ] );
      ( "protocol",
        [
          tc "request round-trip" test_protocol_request_roundtrip;
          tc "response round-trip" test_protocol_response_roundtrip;
          tc "hostile payloads rejected" test_protocol_rejects_garbage;
          tc "session name validation" test_protocol_session_names;
        ] );
      ( "scheduler",
        [
          tc "priority order and shedding" test_scheduler_priority_and_shed;
          tc "queue-expired jobs time out" test_scheduler_expired_in_queue;
          tc "budget fairness" test_scheduler_fairness_by_budget;
        ] );
      ( "watchdog",
        [
          tc "eviction planning" test_watchdog_evictions;
          tc "retry-after hint" test_watchdog_retry_after;
        ] );
      ("session", [ tc "persistence round-trip" test_session_persistence ]);
      ( "daemon",
        [
          tc "lifecycle" test_daemon_lifecycle;
          tc "structured errors" test_daemon_unknown_session_and_circuit;
          tc "deadline expiry rolls back" test_daemon_deadline_rollback;
          tc "backpressure under concurrent clients" test_daemon_backpressure;
          tc "concurrent approx is busy" test_daemon_busy_approx;
          tc "dispatch fault injection" test_daemon_dispatch_fault;
          tc "malformed-frame fuzz" test_daemon_malformed_fuzz;
          tc "kill -9 and resume, bit-identical" test_daemon_kill_and_resume;
        ] );
    ]
