(** BLIF (Berkeley Logic Interchange Format) reading and writing.

    The combinational subset: [.model], [.inputs], [.outputs], [.names] with
    SOP rows, [.end].  [.names] sections may appear in any order; latches
    and subcircuits are rejected. *)

val graph_to_string : Aig.Graph.t -> string
(** One [.names] per AND node plus buffer/constant tables for the POs. *)

val write_graph : string -> Aig.Graph.t -> unit
(** Write to a file path (atomically, via {!Atomic_file.write}). *)

val mapped_to_string : Techmap.Mapped.t -> string
(** One [.names] per cell, rows from an ISOP of the cell function. *)

val write_mapped : string -> Techmap.Mapped.t -> unit

val parse : string -> Aig.Graph.t
(** Parse BLIF text into an AIG (each cover row becomes a product term).
    Raises [Failure] with a line-numbered message on malformed input,
    unsupported constructs, or combinational loops. *)

val read : string -> Aig.Graph.t
(** Parse a file. *)
