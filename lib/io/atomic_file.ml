(* Crash-safe file replacement: write the full contents to a temporary file
   in the destination directory, then rename it over the target.  On POSIX
   systems rename within a filesystem is atomic, so a reader (or a process
   resuming after a crash) sees either the old contents or the new — never a
   truncated mix. *)

let counter = ref 0

let temp_path path =
  incr counter;
  Printf.sprintf "%s.tmp.%d.%d" path (Hashtbl.hash (Sys.executable_name, Sys.time ())) !counter

let write path contents =
  let tmp = temp_path path in
  let oc = open_out_bin tmp in
  (try
     output_string oc contents;
     (* Push the bytes to the OS before the rename makes them visible. *)
     flush oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  try Sys.rename tmp path
  with Sys_error _ as e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A process killed between [open_out_bin] and [Sys.rename] strands its
   temporary file.  Exact-path readers never see the debris, but directory
   scans do, so stores sweep their directories on (re)open.  The marker test
   lives here, next to [temp_path], so the two can never drift apart. *)
let has_tmp_marker name =
  let rec go i =
    i + 5 <= String.length name
    && (String.sub name i 5 = ".tmp." || go (i + 1))
  in
  go 0

let sweep_debris dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun name ->
        if has_tmp_marker name then
          try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
      (Sys.readdir dir)
