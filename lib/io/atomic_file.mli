(** Atomic whole-file replacement (write-to-temp + rename).

    All circuit and journal output in this repository goes through {!write},
    so a crash mid-write can never leave a truncated or half-updated file on
    disk: the target either still holds its previous contents or the complete
    new contents. *)

val write : string -> string -> unit
(** [write path contents] atomically replaces [path] with [contents].  The
    temporary file lives next to [path] (same directory, hence same
    filesystem) so the final rename is atomic.  Raises [Sys_error] on I/O
    failure, in which case the temporary file is removed and [path] is left
    untouched. *)

val read : string -> string
(** Read a whole file into a string.  Raises [Sys_error] if unreadable. *)

val sweep_debris : string -> unit
(** Remove stranded [*.tmp.*] temporaries (a crash between staging and
    rename) from one directory, non-recursively.  Every store whose resume
    path lists its directory calls this on (re)open.  Removal races between
    concurrent openers degrade to a loud rename failure on the loser's
    in-flight write, never to corruption; missing directories are ignored. *)
