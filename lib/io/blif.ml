module Graph = Aig.Graph

(* ---------- Writing ---------- *)

let lit_name g l =
  let id = Graph.node_of l in
  let base =
    if Graph.is_const id then "const"
    else if Graph.is_pi g id then Graph.pi_name g (Graph.pi_index g id)
    else Printf.sprintf "n%d" id
  in
  (base, Graph.is_compl l)

let graph_to_string g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf ".model %s\n" (Graph.name g));
  Buffer.add_string buf ".inputs";
  for i = 0 to Graph.num_pis g - 1 do
    Buffer.add_string buf (" " ^ Graph.pi_name g i)
  done;
  Buffer.add_string buf "\n.outputs";
  for i = 0 to Graph.num_pos g - 1 do
    Buffer.add_string buf (" " ^ Graph.po_name g i)
  done;
  Buffer.add_char buf '\n';
  (* AND nodes: one 2-input cover each, fanin phases folded into the row. *)
  Graph.iter_ands g (fun id ->
      let f0 = Graph.fanin0 g id and f1 = Graph.fanin1 g id in
      let n0, c0 = lit_name g f0 and n1, c1 = lit_name g f1 in
      Buffer.add_string buf (Printf.sprintf ".names %s %s n%d\n" n0 n1 id);
      Buffer.add_string buf
        (Printf.sprintf "%c%c 1\n" (if c0 then '0' else '1') (if c1 then '0' else '1')));
  (* PO buffers/inverters/constants. *)
  Graph.iter_pos g (fun i l ->
      let po = Graph.po_name g i in
      let id = Graph.node_of l in
      if Graph.is_const id then begin
        Buffer.add_string buf (Printf.sprintf ".names %s\n" po);
        if Graph.is_compl l then Buffer.add_string buf "1\n"
      end
      else begin
        let n, c = lit_name g l in
        Buffer.add_string buf (Printf.sprintf ".names %s %s\n%c 1\n" n po (if c then '0' else '1'))
      end);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_string path s = Atomic_file.write path s

let write_graph path g = write_string path (graph_to_string g)

let mapped_to_string (m : Techmap.Mapped.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf ".model %s\n" m.Techmap.Mapped.name);
  Buffer.add_string buf ".inputs";
  Array.iter (fun n -> Buffer.add_string buf (" " ^ n)) m.Techmap.Mapped.pi_names;
  Buffer.add_string buf "\n.outputs";
  Array.iter (fun n -> Buffer.add_string buf (" " ^ n)) m.Techmap.Mapped.po_names;
  Buffer.add_char buf '\n';
  let net_name n =
    if n < m.Techmap.Mapped.npis then m.Techmap.Mapped.pi_names.(n)
    else Printf.sprintf "w%d" (n - m.Techmap.Mapped.npis)
  in
  let const_names = ref [] in
  let source_name = function
    | Techmap.Mapped.Net n -> net_name n
    | Techmap.Mapped.Const b ->
        let nm = if b then "const1" else "const0" in
        if not (List.mem nm !const_names) then const_names := nm :: !const_names;
        nm
  in
  Array.iteri
    (fun i (cell : Techmap.Mapped.cell) ->
      let out = net_name (m.Techmap.Mapped.npis + i) in
      let ins = Array.map source_name cell.Techmap.Mapped.fanins in
      Buffer.add_string buf
        (Printf.sprintf ".names %s %s\n" (String.concat " " (Array.to_list ins)) out);
      let k = Logic.Truth.num_vars cell.Techmap.Mapped.tt in
      let cover =
        Logic.Isop.compute ~on:cell.Techmap.Mapped.tt ~dc:(Logic.Truth.const0 k)
      in
      List.iter
        (fun row -> Buffer.add_string buf (row ^ "\n"))
        (Logic.Cover.to_pla_rows cover))
    m.Techmap.Mapped.cells;
  Array.iteri
    (fun i src ->
      let po = m.Techmap.Mapped.po_names.(i) in
      match src with
      | Techmap.Mapped.Const b ->
          Buffer.add_string buf (Printf.sprintf ".names %s\n" po);
          if b then Buffer.add_string buf "1\n"
      | Techmap.Mapped.Net n ->
          Buffer.add_string buf (Printf.sprintf ".names %s %s\n1 1\n" (net_name n) po))
    m.Techmap.Mapped.pos;
  List.iter
    (fun nm ->
      Buffer.add_string buf (Printf.sprintf ".names %s\n" nm);
      if nm = "const1" then Buffer.add_string buf "1\n")
    !const_names;
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_mapped path m = write_string path (mapped_to_string m)

(* ---------- Parsing ---------- *)

type names_def = { inputs : string list; rows : (string * char) list }

let parse_exn text =
  (* Join continuation lines, strip comments, keep line numbers. *)
  let raw_lines = String.split_on_char '\n' text in
  let logical_lines =
    let rec join acc pending pending_no lineno = function
      | [] -> List.rev (match pending with Some p -> (pending_no, p) :: acc | None -> acc)
      | line :: rest ->
          let line =
            match String.index_opt line '#' with
            | Some i -> String.sub line 0 i
            | None -> line
          in
          let line = String.trim line in
          let acc, pending, pending_no =
            match pending with
            | Some p ->
                if String.length line > 0 && line.[String.length line - 1] = '\\' then
                  (acc, Some (p ^ " " ^ String.sub line 0 (String.length line - 1)), pending_no)
                else ((pending_no, p ^ " " ^ line) :: acc, None, 0)
            | None ->
                if String.length line > 0 && line.[String.length line - 1] = '\\' then
                  (acc, Some (String.sub line 0 (String.length line - 1)), lineno)
                else if line = "" then (acc, None, 0)
                else ((lineno, line) :: acc, None, 0)
          in
          join acc pending pending_no (lineno + 1) rest
    in
    join [] None 0 1 raw_lines
  in
  let fail lineno fmt = Printf.ksprintf (fun s -> failwith (Printf.sprintf "blif:%d: %s" lineno s)) fmt in
  let model = ref "blif" in
  let inputs = ref [] and outputs = ref [] in
  let defs : (string, names_def) Hashtbl.t = Hashtbl.create 256 in
  let current : (string * string list * (string * char) list ref) option ref = ref None in
  let flush_current () =
    match !current with
    | None -> ()
    | Some (out, ins, rows) ->
        Hashtbl.replace defs out { inputs = ins; rows = List.rev !rows };
        current := None
  in
  let tokens s =
    String.map (fun c -> if c = '\t' then ' ' else c) s
    |> String.split_on_char ' '
    |> List.filter (fun t -> t <> "")
  in
  List.iter
    (fun (lineno, line) ->
      match tokens line with
      | [] -> ()
      | tok :: rest when String.length tok > 0 && tok.[0] = '.' -> (
          flush_current ();
          match tok with
          | ".model" -> (match rest with [ n ] -> model := n | _ -> ())
          | ".inputs" -> inputs := !inputs @ rest
          | ".outputs" -> outputs := !outputs @ rest
          | ".names" -> (
              match List.rev rest with
              | out :: ins_rev -> current := Some (out, List.rev ins_rev, ref [])
              | [] -> fail lineno ".names without a signal")
          | ".end" -> ()
          | ".exdc" | ".latch" | ".subckt" | ".gate" ->
              fail lineno "unsupported BLIF construct %s" tok
          | _ -> fail lineno "unknown BLIF directive %s" tok)
      | toks -> (
          match !current with
          | None -> fail lineno "cover row outside a .names section"
          | Some (_, ins, rows) -> (
              match toks with
              | [ pattern; value ] when List.length ins > 0 ->
                  if String.length pattern <> List.length ins then
                    fail lineno "cover row width mismatch";
                  if value <> "1" && value <> "0" then
                    fail lineno "only 1/0 output covers supported";
                  rows := (pattern, value.[0]) :: !rows
              | [ value ] when ins = [] ->
                  if value <> "1" && value <> "0" then fail lineno "bad constant row";
                  rows := ("", value.[0]) :: !rows
              | _ -> fail lineno "malformed cover row")))
    logical_lines;
  flush_current ();
  let g = Graph.create ~name:!model () in
  let env : (string, Graph.lit) Hashtbl.t = Hashtbl.create 256 in
  List.iter (fun n -> Hashtbl.replace env n (Graph.add_pi ~name:n g)) !inputs;
  let building : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec lookup name =
    match Hashtbl.find_opt env name with
    | Some l -> l
    | None -> (
        if Hashtbl.mem building name then
          failwith (Printf.sprintf "blif: combinational loop through %s" name);
        Hashtbl.replace building name ();
        let l =
          match Hashtbl.find_opt defs name with
          | None -> failwith (Printf.sprintf "blif: undefined signal %s" name)
          | Some def -> build def
        in
        Hashtbl.remove building name;
        Hashtbl.replace env name l;
        l)
  and build def =
    let input_lits = List.map lookup def.inputs in
    let lits = Array.of_list input_lits in
    (* Determine the cover polarity: BLIF allows an OFF-set cover ("0"
       outputs); mixing is rejected. *)
    let on_rows = List.filter (fun (_, v) -> v = '1') def.rows in
    let off_rows = List.filter (fun (_, v) -> v = '0') def.rows in
    let rows, polarity =
      match (on_rows, off_rows) with
      | [], [] -> ([], '1') (* constant 0 *)
      | rows, [] -> (rows, '1')
      | [], rows -> (rows, '0')
      | _ -> failwith "blif: mixed-polarity cover"
    in
    let cube_lit (pattern, _) =
      let conj = ref Graph.const1 in
      String.iteri
        (fun i c ->
          match c with
          | '1' -> conj := Graph.and_ g !conj lits.(i)
          | '0' -> conj := Graph.and_ g !conj (Graph.lit_not lits.(i))
          | '-' -> ()
          | _ -> failwith "blif: bad cover character")
        pattern;
      !conj
    in
    let disj =
      List.fold_left
        (fun acc row ->
          Graph.lit_not (Graph.and_ g (Graph.lit_not acc) (Graph.lit_not (cube_lit row))))
        Graph.const0 rows
    in
    if polarity = '1' then disj else Graph.lit_not disj
  in
  List.iter (fun n -> ignore (Graph.add_po ~name:n g (lookup n))) !outputs;
  g

(* Backstop: malformed input must surface as [Failure] only; no stray
   [Invalid_argument]/[Not_found] from string or table operations. *)
let parse text =
  try parse_exn text with
  | Failure _ as e -> raise e
  | Invalid_argument msg -> failwith (Printf.sprintf "blif: malformed input (%s)" msg)
  | Not_found -> failwith "blif: malformed input"

let read path = parse (Atomic_file.read path)
