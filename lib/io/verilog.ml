module Graph = Aig.Graph
module Mapped = Techmap.Mapped

let sanitize name =
  String.map (fun c -> if c = '[' || c = ']' || c = '.' then '_' else c) name

let cover_expression cover args =
  let cube_str (c : Logic.Cube.t) =
    let lits = ref [] in
    for v = 29 downto 0 do
      match Logic.Cube.phase_of c v with
      | Some true -> lits := args.(v) :: !lits
      | Some false -> lits := ("~" ^ args.(v)) :: !lits
      | None -> ()
    done;
    match !lits with [] -> "1'b1" | ls -> String.concat " & " ls
  in
  match cover.Logic.Cover.cubes with
  | [] -> "1'b0"
  | cubes -> String.concat " | " (List.map (fun c -> "(" ^ cube_str c ^ ")") cubes)

let mapped_to_string (m : Mapped.t) =
  let buf = Buffer.create 4096 in
  let pis = Array.map sanitize m.Mapped.pi_names in
  let pos = Array.map sanitize m.Mapped.po_names in
  Buffer.add_string buf (Printf.sprintf "module %s (\n" (sanitize m.Mapped.name));
  Array.iter (fun n -> Buffer.add_string buf (Printf.sprintf "  input %s,\n" n)) pis;
  Buffer.add_string buf
    (String.concat ",\n"
       (Array.to_list (Array.map (fun n -> Printf.sprintf "  output %s" n) pos)));
  Buffer.add_string buf "\n);\n";
  let net_name n =
    if n < m.Mapped.npis then pis.(n) else Printf.sprintf "w%d" (n - m.Mapped.npis)
  in
  let source_str = function
    | Mapped.Const b -> if b then "1'b1" else "1'b0"
    | Mapped.Net n -> net_name n
  in
  Array.iteri
    (fun i (cell : Mapped.cell) ->
      let out = net_name (m.Mapped.npis + i) in
      Buffer.add_string buf (Printf.sprintf "  wire %s;  // %s\n" out cell.Mapped.label))
    m.Mapped.cells;
  Array.iteri
    (fun i (cell : Mapped.cell) ->
      let out = net_name (m.Mapped.npis + i) in
      let args = Array.map source_str cell.Mapped.fanins in
      let k = Logic.Truth.num_vars cell.Mapped.tt in
      let cover = Logic.Isop.compute ~on:cell.Mapped.tt ~dc:(Logic.Truth.const0 k) in
      Buffer.add_string buf
        (Printf.sprintf "  assign %s = %s;\n" out (cover_expression cover args)))
    m.Mapped.cells;
  Array.iteri
    (fun i src ->
      Buffer.add_string buf (Printf.sprintf "  assign %s = %s;\n" pos.(i) (source_str src)))
    m.Mapped.pos;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let graph_to_string g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "module %s (\n" (sanitize (Graph.name g)));
  for i = 0 to Graph.num_pis g - 1 do
    Buffer.add_string buf (Printf.sprintf "  input %s,\n" (sanitize (Graph.pi_name g i)))
  done;
  Buffer.add_string buf
    (String.concat ",\n"
       (List.init (Graph.num_pos g) (fun i ->
            Printf.sprintf "  output %s" (sanitize (Graph.po_name g i)))));
  Buffer.add_string buf "\n);\n";
  let lit_str l =
    let id = Graph.node_of l in
    let base =
      if Graph.is_const id then "1'b0"
      else if Graph.is_pi g id then sanitize (Graph.pi_name g (Graph.pi_index g id))
      else Printf.sprintf "n%d" id
    in
    if Graph.is_compl l then
      if base = "1'b0" then "1'b1" else "~" ^ base
    else base
  in
  Graph.iter_ands g (fun id ->
      Buffer.add_string buf
        (Printf.sprintf "  wire n%d = %s & %s;\n" id
           (lit_str (Graph.fanin0 g id))
           (lit_str (Graph.fanin1 g id))));
  Graph.iter_pos g (fun i l ->
      Buffer.add_string buf
        (Printf.sprintf "  assign %s = %s;\n" (sanitize (Graph.po_name g i)) (lit_str l)));
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let write_string path s = Atomic_file.write path s

let write_mapped path m = write_string path (mapped_to_string m)

let write_graph path g = write_string path (graph_to_string g)
