(** AIGER format (ASCII [aag] variant) reading and writing.

    AIGER is the standard interchange format for AND-inverter graphs
    (Biere, FMV reports); its literal encoding ([2 * var + complement],
    literal 0 = false) coincides with this library's, so conversion is a
    direct renumbering.  The combinational subset is supported: latches are
    rejected on input and never produced on output.  Symbol and comment
    sections are written and parsed. *)

val graph_to_string : Aig.Graph.t -> string

val write_graph : string -> Aig.Graph.t -> unit
(** Atomic: goes through {!Atomic_file.write}, so a crash mid-write never
    leaves a truncated file. *)

val parse : string -> Aig.Graph.t
(** Raises [Failure] with a line-numbered message on malformed input or on
    sequential (latch) content — no other exception escapes.  Declared
    header counts are bounds-checked against the actual input size before
    any allocation, so a hostile header (e.g. claiming [10^9] ANDs) fails
    fast instead of exhausting memory. *)

val read : string -> Aig.Graph.t
