module Graph = Aig.Graph

let graph_to_string g =
  let buf = Buffer.create 4096 in
  (* AIGER variables: inputs first, then ANDs, densely numbered. *)
  let n = Graph.num_nodes g in
  let var_of = Array.make n 0 in
  let next = ref 1 in
  for i = 0 to Graph.num_pis g - 1 do
    var_of.(Graph.pi_node g i) <- !next;
    incr next
  done;
  let and_ids = ref [] in
  Graph.iter_ands g (fun id ->
      var_of.(id) <- !next;
      incr next;
      and_ids := id :: !and_ids);
  let and_ids = List.rev !and_ids in
  let lit_of l =
    let id = Graph.node_of l in
    let base = if Graph.is_const id then 0 else 2 * var_of.(id) in
    base + if Graph.is_compl l then 1 else 0
  in
  let m = !next - 1 in
  Buffer.add_string buf
    (Printf.sprintf "aag %d %d 0 %d %d\n" m (Graph.num_pis g) (Graph.num_pos g)
       (List.length and_ids));
  for i = 0 to Graph.num_pis g - 1 do
    Buffer.add_string buf (Printf.sprintf "%d\n" (2 * var_of.(Graph.pi_node g i)))
  done;
  Graph.iter_pos g (fun _ l -> Buffer.add_string buf (Printf.sprintf "%d\n" (lit_of l)));
  List.iter
    (fun id ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d\n" (2 * var_of.(id))
           (lit_of (Graph.fanin0 g id))
           (lit_of (Graph.fanin1 g id))))
    and_ids;
  for i = 0 to Graph.num_pis g - 1 do
    Buffer.add_string buf (Printf.sprintf "i%d %s\n" i (Graph.pi_name g i))
  done;
  for i = 0 to Graph.num_pos g - 1 do
    Buffer.add_string buf (Printf.sprintf "o%d %s\n" i (Graph.po_name g i))
  done;
  Buffer.add_string buf (Printf.sprintf "c\n%s\n" (Graph.name g));
  Buffer.contents buf

let write_graph path g = Atomic_file.write path (graph_to_string g)

let parse_exn text =
  let lines = String.split_on_char '\n' text in
  let fail lineno fmt =
    Printf.ksprintf (fun s -> failwith (Printf.sprintf "aiger:%d: %s" lineno s)) fmt
  in
  match lines with
  | [] -> failwith "aiger:1: empty input"
  | header :: rest -> (
      let ints_of lineno s =
        String.split_on_char ' ' s
        |> List.filter (fun t -> t <> "")
        |> List.map (fun t ->
               match int_of_string_opt t with
               | Some v -> v
               | None -> fail lineno "bad integer %S" t)
      in
      if not (String.length header >= 4 && String.sub header 0 4 = "aag ") then
        failwith "aiger:1: only the ASCII (aag) variant is supported"
      else (
          match ints_of 1 (String.sub header 4 (String.length header - 4)) with
          | [ m; i; l; o; a ] ->
              if m < 0 || i < 0 || l < 0 || o < 0 || a < 0 then
                fail 1 "negative count in header";
              if l <> 0 then fail 1 "latches are not supported";
              (* Bound every allocation by the actual input size BEFORE
                 touching the heap: a header is one short line and may claim
                 arbitrary counts, but each declared input/output/AND needs
                 its own line of text to back it. *)
              let nlines = List.length rest in
              if i > nlines || o > nlines || a > nlines then
                fail 1 "header declares more entries (%d/%d/%d) than the %d lines present"
                  i o a nlines;
              if i + o + a > nlines then
                fail 1 "header declares more entries than the %d lines present" nlines;
              (* With no latches every variable must be an input or an AND;
                 this also caps the variable table by the line count above. *)
              if m > i + a then
                fail 1 "header claims %d variables but only %d definitions" m (i + a);
              let g = Graph.create ~name:"aiger" () in
              (* lit_map.(aiger var) = our literal for the positive phase. *)
              let lit_map = Array.make (m + 1) Graph.const0 in
              let declared = Array.make (m + 1) false in
              let lineno = ref 1 in
              let take = ref rest in
              let next_line () =
                incr lineno;
                match !take with
                | [] -> fail !lineno "unexpected end of file"
                | x :: tl ->
                    take := tl;
                    String.trim x
              in
              let declare ln v =
                if v < 1 || v > m then fail ln "variable %d out of range [1, %d]" v m;
                if declared.(v) then fail ln "variable %d defined twice" v;
                declared.(v) <- true
              in
              let check_rhs ln lit =
                if lit < 0 || lit / 2 > m then fail ln "literal %d out of range" lit
              in
              let input_vars = Array.make i 0 in
              for k = 0 to i - 1 do
                match ints_of !lineno (next_line ()) with
                | [ lit ] when lit >= 2 && lit mod 2 = 0 ->
                    declare !lineno (lit / 2);
                    input_vars.(k) <- lit / 2
                | _ -> fail !lineno "bad input literal"
              done;
              let po_lits = Array.make o 0 in
              for k = 0 to o - 1 do
                match ints_of !lineno (next_line ()) with
                | [ lit ] ->
                    check_rhs !lineno lit;
                    po_lits.(k) <- lit
                | _ -> fail !lineno "bad output literal"
              done;
              let and_defs = Array.make a (0, 0, 0) in
              for k = 0 to a - 1 do
                match ints_of !lineno (next_line ()) with
                | [ lhs; r0; r1 ] when lhs mod 2 = 0 && lhs >= 2 ->
                    declare !lineno (lhs / 2);
                    check_rhs !lineno r0;
                    check_rhs !lineno r1;
                    and_defs.(k) <- (lhs, r0, r1)
                | _ -> fail !lineno "bad AND definition"
              done;
              (* Symbols (optional). *)
              let pi_names = Array.make i None and po_names = Array.make o None in
              (* The first comment line doubles as the model name (the writer
                 emits [c\n<name>]); keep it so a checkpoint round-trip is
                 byte-identical to the graph it serialized. *)
              let model_name = ref None in
              let in_comment = ref false in
              List.iteri
                (fun _ line ->
                  let line = String.trim line in
                  if !in_comment then begin
                    if !model_name = None && line <> "" then model_name := Some line
                  end
                  else if line = "c" then in_comment := true
                  else if String.length line >= 2 then begin
                    let kind = line.[0] in
                    match String.index_opt line ' ' with
                    | Some sp when kind = 'i' || kind = 'o' -> (
                        let idx = String.sub line 1 (sp - 1) in
                        let name = String.sub line (sp + 1) (String.length line - sp - 1) in
                        match (kind, int_of_string_opt idx) with
                        | 'i', Some k when k >= 0 && k < i -> pi_names.(k) <- Some name
                        | 'o', Some k when k >= 0 && k < o -> po_names.(k) <- Some name
                        | _ -> ())
                    | _ -> ()
                  end)
                !take;
              (match !model_name with
              | Some n -> Graph.set_name g n
              | None -> ());
              (* Build: PIs in declaration order, ANDs in file order (AIGER
                 requires definitions before use for aag produced by most
                 tools; we verify as we go). *)
              Array.iteri
                (fun k v ->
                  let name = Option.value ~default:(Printf.sprintf "x%d" k) pi_names.(k) in
                  lit_map.(v) <- Graph.add_pi ~name g)
                input_vars;
              let defined = Array.make (m + 1) false in
              Array.iter (fun v -> defined.(v) <- true) input_vars;
              let our_lit aiger_lit =
                let v = aiger_lit / 2 in
                if v > m then failwith "aiger: literal out of range";
                if v > 0 && not defined.(v) then
                  failwith "aiger: literal used before definition";
                Graph.lit_not_cond lit_map.(v) (aiger_lit mod 2 = 1)
              in
              Array.iter
                (fun (lhs, r0, r1) ->
                  let v = lhs / 2 in
                  let l = Graph.and_ g (our_lit r0) (our_lit r1) in
                  lit_map.(v) <- l;
                  defined.(v) <- true)
                and_defs;
              Array.iteri
                (fun k lit ->
                  let name = Option.value ~default:(Printf.sprintf "y%d" k) po_names.(k) in
                  ignore (Graph.add_po ~name g (our_lit lit)))
                po_lits;
              g
          | _ -> failwith "aiger:1: malformed header"))

(* Backstop: the checks above should make every malformed input fail with a
   line-numbered [Failure]; anything else slipping out of the parser is a
   parser bug, but callers are still promised plain [Failure]. *)
let parse text =
  try parse_exn text with
  | Failure _ as e -> raise e
  | Invalid_argument msg -> failwith (Printf.sprintf "aiger: malformed input (%s)" msg)
  | Not_found -> failwith "aiger: malformed input"

let read path = parse (Atomic_file.read path)
