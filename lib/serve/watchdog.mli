(** Degradation policy: pure decision functions, so the watermark logic is
    unit-testable without sockets or threads.

    The daemon tracks the summed {!Session.resident_bytes} of its sessions.
    Above the high watermark it evicts coldest-first until back under the
    low watermark (hysteresis, so one borderline load does not thrash);
    busy sessions are never evicted.  Queue pressure turns into a
    retry-after hint scaled by observed service time. *)

type candidate = {
  name : string;
  last_used : float;
  busy : bool;  (** running or queued work; never evicted *)
  bytes : int;
}

val plan_evictions :
  candidates:candidate list ->
  resident_bytes:int ->
  high_watermark:int ->
  low_watermark:int ->
  string list
(** Names to evict, coldest first — empty unless [resident_bytes >
    high_watermark]; stops as soon as the projected residency drops to
    [low_watermark] or below, or when only busy sessions remain. *)

val retry_after : queue_depth:int -> mean_service_s:float -> float
(** Backpressure hint in seconds: roughly the time for the queue to drain
    one slot, clamped to [0.1 .. 30]. *)
