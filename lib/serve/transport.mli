(** Framed transport over Unix-domain sockets.

    Every message travels as one frame:

    {v
    "ALS1"  magic, 4 bytes
    length  payload byte count, 4 bytes big-endian
    payload
    check   31-bit payload checksum, 4 bytes big-endian
    v}

    The decoder is hostile-input-hardened: the magic must match, the length
    must fit [0 .. max_frame_bytes], the checksum must verify, and every
    read runs under a deadline — a peer that sends half a frame and stalls
    costs one timeout, never a wedged thread.  Decode failures are
    non-recoverable for the connection (the stream position is unknown), so
    they raise {!Malformed} and the caller must close the socket.

    Fault injection ({!Core.Fault} [Io_*] kinds): [send] and [recv] accept
    the connection's fault plan plus a per-connection operation counter and
    deliberately misbehave at the planned operation — a short read
    (receiver stops mid-payload), a mid-frame EOF (sender truncates after
    the header), a delayed write.  With the empty plan every hook is a
    no-op. *)

exception Closed
(** Clean EOF at a frame boundary: the peer hung up between frames. *)

exception Timeout
(** The read deadline expired (possibly mid-frame). *)

exception Malformed of string
(** Bad magic, oversized or negative length, checksum mismatch, or EOF in
    the middle of a frame.  The connection must be dropped. *)

val max_frame_bytes : int
(** Upper bound on a payload (64 MiB); larger length fields are rejected
    without allocating. *)

val checksum : string -> int
(** The 31-bit frame checksum, exposed so the protocol layer can guard
    embedded binary sections with the same function. *)

val listen : path:string -> Unix.file_descr
(** Bind and listen on a Unix-domain socket, unlinking a stale socket file
    first.  Raises [Failure] if the path is unusable. *)

val accept : ?timeout_s:float -> stop:(unit -> bool) -> Unix.file_descr -> Unix.file_descr option
(** Accept the next connection, polling [stop] every [timeout_s] (default
    0.25s); [None] once [stop] returns [true]. *)

val connect : path:string -> Unix.file_descr
(** Connect to a daemon socket.  Raises [Unix.Unix_error] as usual. *)

val send :
  ?faults:Core.Fault.plan -> ?nth:int -> Unix.file_descr -> string -> unit
(** Write one frame.  [nth] is the connection's send counter (for fault
    lookup).  An injected mid-frame EOF truncates the frame and raises
    {!Core.Fault.Injected}; the caller must close the connection. *)

val recv :
  ?faults:Core.Fault.plan ->
  ?nth:int ->
  ?timeout_s:float ->
  Unix.file_descr ->
  string
(** Read one frame's payload.  [timeout_s] (default 30s) bounds the whole
    frame, header included.  Raises {!Closed}, {!Timeout} or
    {!Malformed}. *)
