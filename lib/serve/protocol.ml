type approx_params = {
  metric : Errest.Metrics.kind;
  threshold : float;
  seed : int;
  eval_rounds : int;
  max_iters : int;
}

type request =
  | Ping
  | Load of {
      session : string;
      circuit : string;
      graph : string option;
      priority : int;
    }
  | Approx of {
      session : string;
      params : approx_params;
      deadline_s : float option;
    }
  | Metrics of { session : string; metric : Errest.Metrics.kind }
  | Cec of { session : string }
  | Get of { session : string }
  | Status
  | Evict of { session : string }
  | Shutdown

type error_code =
  | Timeout
  | Overloaded
  | Shedding
  | No_session
  | Bad_request
  | Busy
  | Internal

type response =
  | Ok of (string * string) list * string option
  | Err of { code : error_code; detail : string; retry_after_s : float option }

let code_to_string = function
  | Timeout -> "timeout"
  | Overloaded -> "overloaded"
  | Shedding -> "shedding"
  | No_session -> "no-session"
  | Bad_request -> "bad-request"
  | Busy -> "busy"
  | Internal -> "internal"

let code_of_string = function
  | "timeout" -> Some Timeout
  | "overloaded" -> Some Overloaded
  | "shedding" -> Some Shedding
  | "no-session" -> Some No_session
  | "bad-request" -> Some Bad_request
  | "busy" -> Some Busy
  | "internal" -> Some Internal
  | _ -> None

let valid_session_name s =
  let n = String.length s in
  n > 0 && n <= 64
  && s.[0] <> '.'
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true
         | _ -> false)
       s

(* Hex-float serialization so decode(encode f) = f bit-for-bit, matching the
   journal's convention. *)
let float_to_string f =
  if f = infinity then "inf"
  else if f = neg_infinity then "-inf"
  else Printf.sprintf "%h" f

let float_of_string_exn key s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> failwith (Printf.sprintf "protocol: bad float for %s: %S" key s)

let int_of_string_exn key s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> failwith (Printf.sprintf "protocol: bad int for %s: %S" key s)

(* ---------- Encoding ---------- *)

let add_kv b k v =
  Buffer.add_string b k;
  Buffer.add_char b ' ';
  Buffer.add_string b v;
  Buffer.add_char b '\n'

let add_graph b bytes =
  Buffer.add_string b
    (Printf.sprintf "graph %d %d\n" (String.length bytes)
       (Transport.checksum bytes));
  Buffer.add_string b bytes;
  Buffer.add_char b '\n'

let encode_request req =
  let b = Buffer.create 256 in
  Buffer.add_string b "alsrac-req 1\n";
  (match req with
  | Ping -> add_kv b "verb" "ping"
  | Load { session; circuit; graph; priority } ->
      add_kv b "verb" "load";
      add_kv b "session" session;
      add_kv b "circuit" circuit;
      add_kv b "priority" (string_of_int priority);
      Option.iter (add_graph b) graph
  | Approx { session; params; deadline_s } ->
      add_kv b "verb" "approx";
      add_kv b "session" session;
      add_kv b "metric" (Errest.Metrics.kind_to_string params.metric);
      add_kv b "threshold" (float_to_string params.threshold);
      add_kv b "seed" (string_of_int params.seed);
      add_kv b "eval-rounds" (string_of_int params.eval_rounds);
      add_kv b "max-iters" (string_of_int params.max_iters);
      Option.iter (fun d -> add_kv b "deadline" (float_to_string d)) deadline_s
  | Metrics { session; metric } ->
      add_kv b "verb" "metrics";
      add_kv b "session" session;
      add_kv b "metric" (Errest.Metrics.kind_to_string metric)
  | Cec { session } ->
      add_kv b "verb" "cec";
      add_kv b "session" session
  | Get { session } ->
      add_kv b "verb" "get";
      add_kv b "session" session
  | Status -> add_kv b "verb" "status"
  | Evict { session } ->
      add_kv b "verb" "evict";
      add_kv b "session" session
  | Shutdown -> add_kv b "verb" "shutdown");
  Buffer.add_string b "end\n";
  Buffer.contents b

let encode_response resp =
  let b = Buffer.create 256 in
  Buffer.add_string b "alsrac-resp 1\n";
  (match resp with
  | Ok (kvs, graph) ->
      add_kv b "status" "ok";
      List.iter (fun (k, v) -> add_kv b k v) kvs;
      Option.iter (add_graph b) graph
  | Err { code; detail; retry_after_s } ->
      add_kv b "status" "err";
      add_kv b "code" (code_to_string code);
      add_kv b "detail" (String.escaped detail);
      Option.iter
        (fun r -> add_kv b "retry-after" (float_to_string r))
        retry_after_s);
  Buffer.add_string b "end\n";
  Buffer.contents b

(* ---------- Decoding ---------- *)

type cursor = { s : string; mutable pos : int }

let next_line c =
  if c.pos >= String.length c.s then failwith "protocol: truncated payload";
  match String.index_from_opt c.s c.pos '\n' with
  | None ->
      let l = String.sub c.s c.pos (String.length c.s - c.pos) in
      c.pos <- String.length c.s;
      l
  | Some i ->
      let l = String.sub c.s c.pos (i - c.pos) in
      c.pos <- i + 1;
      l

let read_blob c n ck =
  if n < 0 || n > String.length c.s - c.pos then
    failwith "protocol: graph length out of bounds";
  let bytes = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  if c.pos < String.length c.s && c.s.[c.pos] = '\n' then c.pos <- c.pos + 1;
  if Transport.checksum bytes <> ck then
    failwith "protocol: graph checksum mismatch";
  bytes

(* Parse the body shared by requests and responses: kv lines plus at most
   one graph section, terminated by "end". *)
let parse_body c =
  let kvs = ref [] and graph = ref None and fini = ref false in
  while not !fini do
    let line = next_line c in
    if line = "end" then fini := true
    else
      match String.index_opt line ' ' with
      | None -> failwith (Printf.sprintf "protocol: bad line %S" line)
      | Some i -> (
          let key = String.sub line 0 i in
          let value = String.sub line (i + 1) (String.length line - i - 1) in
          match key with
          | "graph" -> (
              if !graph <> None then failwith "protocol: duplicate graph";
              match String.split_on_char ' ' value with
              | [ n; ck ] ->
                  graph :=
                    Some
                      (read_blob c
                         (int_of_string_exn "graph-len" n)
                         (int_of_string_exn "graph-ck" ck))
              | _ -> failwith "protocol: bad graph header")
          | _ -> kvs := (key, value) :: !kvs)
  done;
  (List.rev !kvs, !graph)

let find kvs key =
  match List.assoc_opt key kvs with
  | Some v -> v
  | None -> failwith (Printf.sprintf "protocol: missing key %s" key)

let find_opt kvs key = List.assoc_opt key kvs

let session_of kvs =
  let s = find kvs "session" in
  if not (valid_session_name s) then
    failwith (Printf.sprintf "protocol: invalid session name %S" s);
  s

let metric_of kvs =
  let m = find kvs "metric" in
  match Errest.Metrics.kind_of_string m with
  | Some k -> k
  | None -> failwith (Printf.sprintf "protocol: unknown metric %S" m)

let decode_request payload =
  let c = { s = payload; pos = 0 } in
  (match next_line c with
  | "alsrac-req 1" -> ()
  | l -> failwith (Printf.sprintf "protocol: bad request header %S" l));
  let kvs, graph = parse_body c in
  match find kvs "verb" with
  | "ping" -> Ping
  | "load" ->
      Load
        {
          session = session_of kvs;
          circuit = find kvs "circuit";
          graph;
          priority = int_of_string_exn "priority" (find kvs "priority");
        }
  | "approx" ->
      Approx
        {
          session = session_of kvs;
          params =
            {
              metric = metric_of kvs;
              threshold = float_of_string_exn "threshold" (find kvs "threshold");
              seed = int_of_string_exn "seed" (find kvs "seed");
              eval_rounds =
                int_of_string_exn "eval-rounds" (find kvs "eval-rounds");
              max_iters = int_of_string_exn "max-iters" (find kvs "max-iters");
            };
          deadline_s =
            Option.map (float_of_string_exn "deadline")
              (find_opt kvs "deadline");
        }
  | "metrics" -> Metrics { session = session_of kvs; metric = metric_of kvs }
  | "cec" -> Cec { session = session_of kvs }
  | "get" -> Get { session = session_of kvs }
  | "status" -> Status
  | "evict" -> Evict { session = session_of kvs }
  | "shutdown" -> Shutdown
  | v -> failwith (Printf.sprintf "protocol: unknown verb %S" v)

let decode_response payload =
  let c = { s = payload; pos = 0 } in
  (match next_line c with
  | "alsrac-resp 1" -> ()
  | l -> failwith (Printf.sprintf "protocol: bad response header %S" l));
  let kvs, graph = parse_body c in
  match find kvs "status" with
  | "ok" ->
      let kvs = List.filter (fun (k, _) -> k <> "status") kvs in
      Ok (kvs, graph)
  | "err" ->
      let code =
        match code_of_string (find kvs "code") with
        | Some c -> c
        | None -> failwith "protocol: unknown error code"
      in
      Err
        {
          code;
          detail = Scanf.unescaped (find kvs "detail");
          retry_after_s =
            Option.map
              (float_of_string_exn "retry-after")
              (find_opt kvs "retry-after");
        }
  | s -> failwith (Printf.sprintf "protocol: bad status %S" s)
