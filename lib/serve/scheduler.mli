(** Bounded request queue with explicit backpressure.

    Connection threads {!submit} work; the single executor thread pulls it
    with {!next} and completes it with {!finish}.  The queue never grows
    past [max_queue]:

    - a full queue sheds its lowest-priority entry when the newcomer
      outranks it (the shed request's client gets a [Shedding] error), and
    - rejects the newcomer with [`Overloaded] otherwise — the daemon turns
      that into an [Overloaded] reply with a retry-after hint.

    Selection order at {!next}: highest priority first, then the session
    that has consumed the least executor budget (fairness), then FIFO.
    Entries whose deadline expired while queued are completed with a
    [Timeout] error at dequeue time, never executed. *)

type t

type job = {
  seq : int;
  session : string;
  priority : int;
  enqueued : float;
  deadline : float;  (** absolute; [infinity] = none *)
  budget : float;  (** owning session's consumed budget at enqueue *)
  work : unit -> Protocol.response;
}

type ticket
(** A submitted job's completion handle. *)

val create : max_queue:int -> t

val submit :
  t ->
  session:string ->
  priority:int ->
  budget:float ->
  deadline:float ->
  work:(unit -> Protocol.response) ->
  [ `Queued of ticket | `Overloaded ]
(** Raises [Invalid_argument] after {!stop}. *)

val await : ticket -> Protocol.response
(** Block until the job completes (executor, shed, expiry, or drain). *)

val next : t -> job option
(** Executor: block for the next runnable job; [None] once stopped and
    drained.  Expired entries are completed with [Timeout] errors here. *)

val finish : t -> job -> Protocol.response -> unit
(** Deliver the executor's result to the waiting client. *)

val depth : t -> int
val max_queue : t -> int

val stop : t -> unit
(** Reject new submissions and complete every queued job with an
    [Internal "daemon stopping"] error; {!next} then returns [None]. *)
