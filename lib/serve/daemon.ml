type config = {
  socket : string;
  state_dir : string;
  jobs : int;
  max_queue : int;
  max_resident_mb : int;
  default_deadline_s : float;
  read_timeout_s : float;
  max_sessions : int;
  fault : Core.Fault.plan;
  log : bool;
}

let default ~socket ~state_dir =
  {
    socket;
    state_dir;
    jobs = 1;
    max_queue = 32;
    max_resident_mb = 512;
    default_deadline_s = 30.0;
    read_timeout_s = 30.0;
    max_sessions = 64;
    fault = Core.Fault.none;
    log = false;
  }

type counters = {
  mutable requests : int;
  mutable timeouts : int;
  mutable overloads : int;
  mutable shed : int;
  mutable malformed : int;
  mutable evictions : int;
  mutable resumed : int;
  mutable service_total_s : float;
  mutable service_n : int;
}

type daemon = {
  cfg : config;
  sched : Scheduler.t;
  pool : Parallel.Pool.t;
  sessions : (string, Session.t) Hashtbl.t;
  mutex : Mutex.t;  (* sessions table + counters + stop flag *)
  counters : counters;
  started : float;
  mutable stop : bool;
}

let logf d fmt =
  if d.cfg.log then
    Printf.ksprintf
      (fun s ->
        Printf.eprintf "[serve %.3f] %s\n%!" (Unix.gettimeofday () -. d.started) s)
      fmt
  else Printf.ksprintf (fun _ -> ()) fmt

let locked d f =
  Mutex.lock d.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock d.mutex) f

let stop_reason_to_string : Core.Flow.stop_reason -> string = function
  | Budget_exhausted -> "budget-exhausted"
  | Stalled -> "stalled"
  | Max_iters -> "max-iters"
  | Emptied -> "emptied"
  | Timed_out -> "timed-out"

let err ?retry_after_s code detail =
  Protocol.Err { code; detail; retry_after_s }

let mean_service d =
  if d.counters.service_n = 0 then 0.25
  else d.counters.service_total_s /. float_of_int d.counters.service_n

let overloaded_reply d =
  let retry =
    Watchdog.retry_after ~queue_depth:(Scheduler.depth d.sched)
      ~mean_service_s:(locked d (fun () -> mean_service d))
  in
  err ~retry_after_s:retry Protocol.Overloaded "request queue full"

(* ---------- Memory watermarks ---------- *)

let resident_total d =
  Hashtbl.fold (fun _ s acc -> acc + Session.resident_bytes s) d.sessions 0

(* Executor thread only (sessions are mutated there), so reading session
   fields without [d.mutex] is safe for the busy/bytes snapshot. *)
let enforce_watermarks d =
  let high = d.cfg.max_resident_mb * 1024 * 1024 in
  let low = high * 3 / 4 in
  let candidates, resident =
    locked d (fun () ->
        ( Hashtbl.fold
            (fun name s acc ->
              {
                Watchdog.name;
                last_used = s.Session.last_used;
                busy = s.Session.busy;
                bytes = Session.resident_bytes s;
              }
              :: acc)
            d.sessions [],
          resident_total d ))
  in
  let plan =
    Watchdog.plan_evictions ~candidates ~resident_bytes:resident
      ~high_watermark:high ~low_watermark:low
  in
  List.iter
    (fun name ->
      locked d (fun () ->
          match Hashtbl.find_opt d.sessions name with
          | Some s when not s.Session.busy ->
              Hashtbl.remove d.sessions name;
              Session.destroy s;
              d.counters.evictions <- d.counters.evictions + 1;
              logf d "evicted session %s (memory watermark)" name
          | _ -> ()))
    plan

(* ---------- Request execution (executor thread) ---------- *)

let session_or_err d name f =
  match locked d (fun () -> Hashtbl.find_opt d.sessions name) with
  | None -> err Protocol.No_session (Printf.sprintf "no session %S" name)
  | Some s ->
      Session.touch s;
      f s

let flow_config (p : Protocol.approx_params) ~jobs =
  let base = Core.Config.default ~metric:p.metric ~threshold:p.threshold in
  {
    base with
    Core.Config.seed = p.seed;
    eval_rounds = p.eval_rounds;
    max_iters = p.max_iters;
    jobs;
  }

let approx_reply (s : Session.t) (report : Core.Flow.report) =
  Protocol.Ok
    ( [
        ("session", s.Session.name);
        ("applied", string_of_int report.Core.Flow.applied);
        ("input-ands", string_of_int report.Core.Flow.input_ands);
        ("output-ands", string_of_int report.Core.Flow.output_ands);
        ("est-error", Printf.sprintf "%.6g" report.Core.Flow.final_est_error);
        ("stop-reason", stop_reason_to_string report.Core.Flow.stop_reason);
        ("resumed", string_of_bool report.Core.Flow.resumed);
        ("wall-s", Printf.sprintf "%.3f" report.Core.Flow.wall_s);
      ],
      None )

let run_approx d (s : Session.t) (req : Protocol.request)
    (params : Protocol.approx_params) ~deadline =
  let cancel () = d.stop || Unix.gettimeofday () > deadline in
  let config = flow_config params ~jobs:d.cfg.jobs in
  Session.record_inflight s req;
  let t0 = Unix.gettimeofday () in
  let finish_budget () =
    let dt = Unix.gettimeofday () -. t0 in
    s.Session.budget_s <- s.Session.budget_s +. dt;
    Session.save_manifest s;
    locked d (fun () ->
        d.counters.service_total_s <- d.counters.service_total_s +. dt;
        d.counters.service_n <- d.counters.service_n + 1)
  in
  match
    Core.Flow.run ~journal:(Session.journal_dir s) ~cancel ~pool:d.pool ~config
      s.Session.original
  with
  | g, report ->
      finish_budget ();
      Session.set_current s g;
      s.Session.applied_total <- s.Session.applied_total + report.Core.Flow.applied;
      Session.clear_inflight s;
      Session.save_manifest s;
      approx_reply s report
  | exception Core.Flow.Cancelled ->
      finish_budget ();
      (* The contract: a timed-out request never leaves a half-applied
         circuit behind.  Roll back to the journal's last accepted
         checkpoint and report a structured timeout. *)
      Session.rollback_to_snapshot s;
      Session.clear_inflight s;
      logf d "approx on %s timed out; rolled back" s.Session.name;
      err Protocol.Timeout
        (Printf.sprintf "deadline expired after %.1fs; session rolled back"
           (Unix.gettimeofday () -. t0))
  | exception e ->
      finish_budget ();
      (* Contained failure: the session keeps its last committed circuit;
         the errored request is not replayed at restart. *)
      Session.clear_inflight s;
      err Protocol.Internal (Printexc.to_string e)

let run_cec (s : Session.t) =
  let verdict =
    Verify.Cec.run ~effort:Verify.Cec.Fast s.Session.original s.Session.current
  in
  let kvs =
    match verdict with
    | Verify.Cec.Equivalent -> [ ("verdict", "equivalent") ]
    | Verify.Cec.Inequivalent cex ->
        [ ("verdict", "inequivalent"); ("po", string_of_int cex.Verify.Cec.po) ]
    | Verify.Cec.Undecided why -> [ ("verdict", "undecided"); ("why", why) ]
  in
  Protocol.Ok (("session", s.Session.name) :: kvs, None)

let run_load d ~session ~circuit ~graph ~priority =
  match
    match graph with
    | Some bytes -> (
        match Circuit_io.Aiger.parse bytes with
        | g -> Result.Ok g
        | exception _ -> Result.Error "unparseable AIGER payload")
    | None -> (
        match Circuits.Suite.find circuit with
        | Some e -> Result.Ok (e.Circuits.Suite.build ())
        | None -> Result.Error (Printf.sprintf "unknown circuit %S" circuit))
  with
  | Result.Error detail -> err Protocol.Bad_request detail
  | Result.Ok g ->
      let table_full =
        locked d (fun () ->
            (not (Hashtbl.mem d.sessions session))
            && Hashtbl.length d.sessions >= d.cfg.max_sessions)
      in
      if table_full then
        err ~retry_after_s:5.0 Protocol.Overloaded "session table full"
      else begin
        (match locked d (fun () -> Hashtbl.find_opt d.sessions session) with
        | Some old -> Session.destroy old
        | None -> ());
        let s =
          Session.create ~state_dir:d.cfg.state_dir ~name:session ~circuit
            ~graph:g ~priority
        in
        locked d (fun () -> Hashtbl.replace d.sessions session s);
        enforce_watermarks d;
        logf d "loaded session %s (%s, %d ANDs)" session circuit
          (Aig.Graph.num_ands g);
        Protocol.Ok (("session", session) :: Session.info s, None)
      end

let execute d (req : Protocol.request) ~deadline =
  match req with
  | Protocol.Load { session; circuit; graph; priority } ->
      run_load d ~session ~circuit ~graph ~priority
  | Protocol.Approx { session; params; _ } ->
      session_or_err d session (fun s -> run_approx d s req params ~deadline)
  | Protocol.Metrics { session; metric } ->
      session_or_err d session (fun s ->
          let v = Session.metric s metric in
          Protocol.Ok
            ( [
                ("session", session);
                ("metric", Errest.Metrics.kind_to_string metric);
                ("value", Printf.sprintf "%.6g" v);
                ( "rounds",
                  string_of_int
                    (if Array.length s.Session.eval_pats = 0 then 0
                     else Logic.Bitvec.length s.Session.eval_pats.(0)) );
              ],
              None ))
  | Protocol.Cec { session } -> session_or_err d session (fun s -> run_cec s)
  | Protocol.Get { session } ->
      session_or_err d session (fun s ->
          Protocol.Ok
            ( [
                ("session", session);
                ("ands", string_of_int (Aig.Graph.num_ands s.Session.current));
              ],
              Some (Circuit_io.Aiger.graph_to_string s.Session.current) ))
  | Protocol.Ping | Protocol.Status | Protocol.Evict _ | Protocol.Shutdown ->
      (* handled inline by the connection thread *)
      err Protocol.Internal "not a queued request"

(* ---------- Inline requests (connection threads) ---------- *)

let status_reply d =
  locked d (fun () ->
      let c = d.counters in
      let kvs =
        [
          ("uptime-s", Printf.sprintf "%.3f" (Unix.gettimeofday () -. d.started));
          ("sessions", string_of_int (Hashtbl.length d.sessions));
          ("queue-depth", string_of_int (Scheduler.depth d.sched));
          ("max-queue", string_of_int (Scheduler.max_queue d.sched));
          ("resident-bytes", string_of_int (resident_total d));
          ("requests", string_of_int c.requests);
          ("timeouts", string_of_int c.timeouts);
          ("overloads", string_of_int c.overloads);
          ("shed", string_of_int c.shed);
          ("malformed", string_of_int c.malformed);
          ("evictions", string_of_int c.evictions);
          ("resumed-sessions", string_of_int c.resumed);
          ("jobs", string_of_int (Parallel.Pool.size d.pool));
        ]
      in
      let per_session =
        Hashtbl.fold
          (fun name s acc ->
            let line =
              Session.info s
              |> List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v)
              |> String.concat " "
            in
            (("session", Printf.sprintf "%s %s" name line)) :: acc)
          d.sessions []
        |> List.sort compare
      in
      Protocol.Ok (kvs @ per_session, None))

let evict_reply d name =
  locked d (fun () ->
      match Hashtbl.find_opt d.sessions name with
      | None -> err Protocol.No_session (Printf.sprintf "no session %S" name)
      | Some s when s.Session.busy ->
          err Protocol.Busy "session has queued or running work"
      | Some s ->
          Hashtbl.remove d.sessions name;
          Session.destroy s;
          Protocol.Ok ([ ("evicted", name) ], None))

(* ---------- Connection handling ---------- *)

let count_response d (resp : Protocol.response) =
  locked d (fun () ->
      let c = d.counters in
      c.requests <- c.requests + 1;
      match resp with
      | Protocol.Err { code = Protocol.Timeout; _ } -> c.timeouts <- c.timeouts + 1
      | Protocol.Err { code = Protocol.Overloaded; _ } ->
          c.overloads <- c.overloads + 1
      | Protocol.Err { code = Protocol.Shedding; _ } -> c.shed <- c.shed + 1
      | _ -> ())

let handle_request d (req : Protocol.request) =
  match req with
  | Protocol.Ping -> Protocol.Ok ([ ("pong", "1") ], None)
  | Protocol.Status -> status_reply d
  | Protocol.Evict { session } -> evict_reply d session
  | Protocol.Shutdown ->
      locked d (fun () -> d.stop <- true);
      logf d "shutdown requested";
      Protocol.Ok ([ ("stopping", "1") ], None)
  | Protocol.Load _ | Protocol.Metrics _ | Protocol.Cec _ | Protocol.Get _
  | Protocol.Approx _ -> (
      let session, priority, deadline_s =
        match req with
        | Protocol.Load { session; priority; _ } -> (session, priority, None)
        | Protocol.Approx { session; params = _; deadline_s } ->
            (session, 0, deadline_s)
        | Protocol.Metrics { session; _ }
        | Protocol.Cec { session }
        | Protocol.Get { session } -> (session, 0, None)
        | _ -> assert false
      in
      let priority =
        match
          locked d (fun () -> Hashtbl.find_opt d.sessions session)
        with
        | Some s -> s.Session.priority
        | None -> priority
      in
      let deadline =
        Unix.gettimeofday ()
        +. Option.value deadline_s ~default:d.cfg.default_deadline_s
      in
      (* At most one approx per session in flight: Busy beats queueing a
         duplicate that would fight over the same journal. *)
      let busy_guard =
        match req with
        | Protocol.Approx _ -> (
            locked d (fun () ->
                match Hashtbl.find_opt d.sessions session with
                | None -> `No_session
                | Some s when s.Session.busy -> `Busy
                | Some s ->
                    s.Session.busy <- true;
                    `Claimed (Some s)))
        | _ -> `Claimed None
      in
      match busy_guard with
      | `No_session ->
          err Protocol.No_session (Printf.sprintf "no session %S" session)
      | `Busy -> err Protocol.Busy "approx already queued or running"
      | `Claimed claimed -> (
          let release () =
            match claimed with
            | Some s -> s.Session.busy <- false
            | None -> ()
          in
          let budget =
            match
              locked d (fun () -> Hashtbl.find_opt d.sessions session)
            with
            | Some s -> s.Session.budget_s
            | None -> 0.0
          in
          match
            Scheduler.submit d.sched ~session ~priority ~budget ~deadline
              ~work:(fun () -> execute d req ~deadline)
          with
          | `Overloaded ->
              release ();
              overloaded_reply d
          | `Queued ticket ->
              let resp = Scheduler.await ticket in
              release ();
              resp))

let connection_loop d fd =
  let recv_n = ref 0 and send_n = ref 0 and strikes = ref 0 in
  let faults = d.cfg.fault in
  let send resp =
    incr send_n;
    Transport.send ~faults ~nth:!send_n fd (Protocol.encode_response resp)
  in
  let rec loop () =
    incr recv_n;
    match
      Transport.recv ~faults ~nth:!recv_n ~timeout_s:d.cfg.read_timeout_s fd
    with
    | exception Transport.Closed -> ()
    | exception Transport.Timeout -> logf d "connection read timeout"
    | exception Transport.Malformed m ->
        (* Frame-level damage: the stream position is unknowable, so the
           connection is quarantined immediately. *)
        locked d (fun () ->
            d.counters.malformed <- d.counters.malformed + 1);
        logf d "malformed frame (%s); dropping connection" m;
        (try send (err Protocol.Bad_request m) with _ -> ())
    | payload -> (
        match Protocol.decode_request payload with
        | exception Failure m ->
            (* Payload-level damage: framing is intact, so we can answer —
               but three strikes quarantines the connection. *)
            locked d (fun () ->
                d.counters.malformed <- d.counters.malformed + 1);
            incr strikes;
            (try send (err Protocol.Bad_request m) with _ -> ());
            if !strikes < 3 then loop ()
            else logf d "connection quarantined after %d malformed payloads" !strikes
        | req ->
            let resp =
              (* Dispatch-layer fault hook: an injected failure here must
                 produce a structured error, never a dead connection. *)
              if Core.Fault.should_raise faults ~iteration:!recv_n then
                err Protocol.Internal "injected dispatch fault"
              else
                try handle_request d req
                with e -> err Protocol.Internal (Printexc.to_string e)
            in
            count_response d resp;
            (match (try send resp; true with _ -> false) with
            | true -> if req <> Protocol.Shutdown then loop ()
            | false -> ()))
  in
  (try loop () with _ -> ());
  try Unix.close fd with _ -> ()

(* ---------- Startup resume ---------- *)

let resume_sessions d =
  let names = Session.scan ~state_dir:d.cfg.state_dir in
  List.iter
    (fun name ->
      match Session.load_dir ~state_dir:d.cfg.state_dir ~name with
      | exception Failure m -> logf d "skipping %s: %s" name m
      | s -> (
          Hashtbl.replace d.sessions name s;
          match Session.inflight s with
          | None -> ()
          | Some (Protocol.Approx { params; _ }) ->
              logf d "resuming in-flight approx on %s" name;
              let journal = Session.journal_dir s in
              let has_checkpoint =
                Sys.file_exists (Filename.concat journal "manifest")
              in
              let result =
                try
                  if has_checkpoint then
                    Some (Core.Flow.resume ~pool:d.pool journal)
                  else
                    Some
                      (Core.Flow.run ~journal ~pool:d.pool
                         ~config:(flow_config params ~jobs:d.cfg.jobs)
                         s.Session.original)
                with e ->
                  logf d "resume of %s failed: %s" name (Printexc.to_string e);
                  None
              in
              (match result with
              | Some (g, report) ->
                  Session.set_current s g;
                  s.Session.applied_total <-
                    s.Session.applied_total + report.Core.Flow.applied;
                  d.counters.resumed <- d.counters.resumed + 1
              | None -> ());
              Session.clear_inflight s;
              Session.save_manifest s
          | Some _ -> Session.clear_inflight s))
    names;
  if d.counters.resumed > 0 then
    logf d "resumed %d in-flight session(s)" d.counters.resumed

(* ---------- Main ---------- *)

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let run cfg =
  mkdir_p cfg.state_dir;
  Parallel.Pool.with_pool ~jobs:(max 1 cfg.jobs) (fun pool ->
      let d =
        {
          cfg;
          sched = Scheduler.create ~max_queue:cfg.max_queue;
          pool;
          sessions = Hashtbl.create 16;
          mutex = Mutex.create ();
          counters =
            {
              requests = 0;
              timeouts = 0;
              overloads = 0;
              shed = 0;
              malformed = 0;
              evictions = 0;
              resumed = 0;
              service_total_s = 0.0;
              service_n = 0;
            };
          started = Unix.gettimeofday ();
          stop = false;
        }
      in
      (match Sys.signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
      let on_signal _ = d.stop <- true in
      (match Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) with _ -> ());
      (match Sys.signal Sys.sigint (Sys.Signal_handle on_signal) with _ -> ());
      (* Crash-resume happens before the socket opens: a client that can
         connect always sees fully recovered sessions. *)
      resume_sessions d;
      let listener = Transport.listen ~path:cfg.socket in
      logf d "listening on %s (%d session(s) resident)" cfg.socket
        (Hashtbl.length d.sessions);
      let executor =
        Thread.create
          (fun () ->
            let rec loop () =
              match Scheduler.next d.sched with
              | None -> ()
              | Some job ->
                  let resp =
                    try job.Scheduler.work ()
                    with e -> err Protocol.Internal (Printexc.to_string e)
                  in
                  Scheduler.finish d.sched job resp;
                  loop ()
            in
            loop ())
          ()
      in
      let rec accept_loop () =
        match Transport.accept ~stop:(fun () -> d.stop) listener with
        | None -> ()
        | Some conn ->
            ignore (Thread.create (fun () -> connection_loop d conn) ());
            accept_loop ()
      in
      accept_loop ();
      logf d "draining";
      Scheduler.stop d.sched;
      Thread.join executor;
      (try Unix.close listener with _ -> ());
      (try Unix.unlink cfg.socket with _ -> ());
      logf d "stopped")
