exception Closed
exception Timeout
exception Malformed of string

let magic = "ALS1"
let header_bytes = 8
let max_frame_bytes = 1 lsl 26

(* Same 31-bit rolling checksum as the journal: cheap, and torn frames are
   what we defend against, not adversarial collisions. *)
let checksum s =
  let h = ref 0 in
  String.iter (fun ch -> h := ((!h * 131) + Char.code ch) land 0x3FFFFFFF) s;
  !h

let put_be32 b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let get_be32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

(* ---------- Sockets ---------- *)

let listen ~path =
  if String.length path >= 104 then
    failwith (Printf.sprintf "serve: socket path too long (%d bytes): %s"
                (String.length path) path);
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> failwith (Printf.sprintf "serve: %s exists and is not a socket" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 64
   with Unix.Unix_error (e, _, _) ->
     Unix.close fd;
     failwith (Printf.sprintf "serve: cannot listen on %s: %s" path
                 (Unix.error_message e)));
  fd

let accept ?(timeout_s = 0.25) ~stop fd =
  let rec loop () =
    if stop () then None
    else
      match Unix.select [ fd ] [] [] timeout_s with
      | [], _, _ -> loop ()
      | _ -> (
          match Unix.accept fd with
          | conn, _ -> Some conn
          | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> loop ())
  in
  loop ()

let connect ~path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     Unix.close fd;
     raise e);
  fd

(* ---------- Framed IO ---------- *)

(* Write everything; partial writes just continue. *)
let write_all fd s pos len =
  let pos = ref pos and left = ref len in
  while !left > 0 do
    let n = Unix.write_substring fd s !pos !left in
    pos := !pos + n;
    left := !left - n
  done

let send ?(faults = []) ?(nth = 0) fd payload =
  (match Core.Fault.io_delay_write faults ~nth with
  | Some ms -> Unix.sleepf (float_of_int ms /. 1000.0)
  | None -> ());
  let len = String.length payload in
  if len > max_frame_bytes then
    invalid_arg (Printf.sprintf "Transport.send: frame too large (%d bytes)" len);
  let header = Bytes.create header_bytes in
  Bytes.blit_string magic 0 header 0 4;
  put_be32 header 4 len;
  let trailer = Bytes.create 4 in
  put_be32 trailer 0 (checksum payload);
  if Core.Fault.io_eof_mid_frame faults ~nth then begin
    (* Injected peer death: ship the header and half the payload, then bail
       out.  The caller closes the socket; the receiver must classify the
       truncated frame as malformed, not wait forever. *)
    write_all fd (Bytes.to_string header) 0 header_bytes;
    write_all fd payload 0 (len / 2);
    raise (Core.Fault.Injected (Printf.sprintf "eof-mid-frame at send %d" nth))
  end;
  write_all fd (Bytes.to_string header) 0 header_bytes;
  write_all fd payload 0 len;
  write_all fd (Bytes.to_string trailer) 0 4

(* Read exactly [len] bytes before [deadline] (absolute).  Distinguishes the
   three failure shapes the daemon must react to differently. *)
let read_exact fd buf off len ~deadline ~mid_frame =
  let off = ref off and left = ref len in
  while !left > 0 do
    let remaining = deadline -. Unix.gettimeofday () in
    if remaining <= 0.0 then raise Timeout;
    (match Unix.select [ fd ] [] [] remaining with
    | [], _, _ -> raise Timeout
    | _ -> ());
    match Unix.read fd buf !off !left with
    | 0 ->
        if mid_frame () then raise (Malformed "eof mid-frame") else raise Closed
    | n ->
        off := !off + n;
        left := !left - n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let recv ?(faults = []) ?(nth = 0) ?(timeout_s = 30.0) fd =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let header = Bytes.create header_bytes in
  let got = ref 0 in
  (* EOF before any header byte is a clean close; EOF after is a torn
     frame. *)
  let read_header () =
    read_exact fd header 0 header_bytes ~deadline ~mid_frame:(fun () -> !got > 0)
  in
  (* track partial header reads for the mid_frame classification *)
  let () =
    try read_header ()
    with Closed when !got > 0 -> raise (Malformed "eof mid-header")
  in
  if Bytes.sub_string header 0 4 <> magic then
    raise (Malformed (Printf.sprintf "bad magic %S" (Bytes.sub_string header 0 4)));
  let len = get_be32 header 4 in
  if len < 0 || len > max_frame_bytes then
    raise (Malformed (Printf.sprintf "frame length %d out of bounds" len));
  let payload = Bytes.create len in
  if Core.Fault.io_short_read faults ~nth then begin
    (* Injected stall: consume part of the payload then behave exactly as a
       timed-out read would — the frame is lost, the connection poisoned. *)
    let part = len / 2 in
    read_exact fd payload 0 part ~deadline ~mid_frame:(fun () -> true);
    raise (Malformed (Printf.sprintf "injected short read at recv %d" nth))
  end;
  read_exact fd payload 0 len ~deadline ~mid_frame:(fun () -> true);
  let trailer = Bytes.create 4 in
  read_exact fd trailer 0 4 ~deadline ~mid_frame:(fun () -> true);
  let body = Bytes.to_string payload in
  if get_be32 trailer 0 <> checksum body then raise (Malformed "checksum mismatch");
  body
