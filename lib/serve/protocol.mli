(** Request/response grammar of the [alsrac serve] protocol (version 1).

    A payload (one transport frame) is line-oriented ASCII:

    {v
    request  ::= "alsrac-req 1" NL line* "end" NL?
    response ::= "alsrac-resp 1" NL line* "end" NL?
    line     ::= KEY " " VALUE NL
               | "graph " NBYTES " " CHECKSUM NL RAWBYTES NL
    v}

    Keys are single tokens; a value is the rest of its line.  Floats are
    serialized as hex literals ([%h], with [inf]/[-inf]), so decode/encode
    round-trips bit-exactly — the same convention the journal uses.  A
    [graph] section carries an AIGER-serialized circuit as raw bytes,
    length-prefixed and guarded by the transport checksum.

    Decoding hostile input never allocates unbounded memory and raises
    [Failure] on any violation; the daemon maps that to a [Bad_request]
    reply and counts a malformed strike against the connection. *)

type approx_params = {
  metric : Errest.Metrics.kind;
  threshold : float;
  seed : int;
  eval_rounds : int;
  max_iters : int;
}
(** The knobs a client may set on a resident approximation run; everything
    else comes from {!Core.Config.default}. *)

type request =
  | Ping
  | Load of {
      session : string;
      circuit : string;  (** named benchmark, or ["-"] with [graph] set *)
      graph : string option;  (** AIGER bytes when shipping a circuit *)
      priority : int;  (** higher sheds later under overload *)
    }
  | Approx of {
      session : string;
      params : approx_params;
      deadline_s : float option;  (** per-request budget override *)
    }
  | Metrics of { session : string; metric : Errest.Metrics.kind }
  | Cec of { session : string }
  | Get of { session : string }  (** fetch the session's current circuit *)
  | Status
  | Evict of { session : string }
  | Shutdown

type error_code =
  | Timeout  (** deadline expired; session rolled back to last snapshot *)
  | Overloaded  (** queue full; retry after the hinted delay *)
  | Shedding  (** queued request dropped for a higher-priority one *)
  | No_session
  | Bad_request
  | Busy  (** session already has a running/queued request *)
  | Internal

type response =
  | Ok of (string * string) list * string option
      (** key/value results plus an optional graph blob *)
  | Err of { code : error_code; detail : string; retry_after_s : float option }

val code_to_string : error_code -> string
val code_of_string : string -> error_code option

val valid_session_name : string -> bool
(** Session names become state-directory names: nonempty,
    [\[A-Za-z0-9._-\]] only, no leading dot, at most 64 bytes. *)

val encode_request : request -> string
val decode_request : string -> request
val encode_response : response -> string
val decode_response : string -> response
