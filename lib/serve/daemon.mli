(** The [alsrac serve] daemon: a resident ALS service on a Unix-domain
    socket.

    One process holds every session's parsed AIG, fanout CSR and simulation
    state warm ({!Session}), so repeated requests skip the cold-start cost
    of a CLI invocation.  Robustness properties (see DESIGN.md §11):

    - {b Deadlines}: every [approx] runs under an absolute deadline,
      enforced by cooperative cancellation inside the flow and the pool; a
      timed-out request gets a structured [Timeout] error and its session
      rolls back to the journal's last accepted checkpoint — a worker is
      never killed or wedged.
    - {b Backpressure}: the request queue is bounded ({!Scheduler});
      overflow is answered with [Overloaded] plus a retry-after hint, or
      sheds a lower-priority queued request ([Shedding]).
    - {b Graceful degradation}: past the resident-memory high watermark the
      coldest idle sessions are evicted ({!Watchdog}) until under the low
      watermark.
    - {b Crash-resume}: sessions persist under [state_dir]; at startup,
      every session whose [inflight] marker survived a kill is replayed —
      via {!Core.Flow.resume} when the flow journal has a checkpoint —
      before the socket opens, reaching the exact circuit an uninterrupted
      run produces.
    - {b Hostile input}: frames are length- and checksum-guarded
      ({!Transport}); a connection accumulating 3 malformed payloads is
      quarantined (closed).  [fault] injects socket/decode/dispatch faults
      for the resilience tests. *)

type config = {
  socket : string;  (** Unix-domain socket path *)
  state_dir : string;  (** session persistence root *)
  jobs : int;  (** resident worker-pool size (0 = detect) *)
  max_queue : int;  (** bound on queued requests *)
  max_resident_mb : int;  (** high watermark; low is 3/4 of it *)
  default_deadline_s : float;  (** per-request budget when unspecified *)
  read_timeout_s : float;  (** per-connection frame-read deadline *)
  max_sessions : int;
  fault : Core.Fault.plan;  (** injected socket/dispatch faults (tests) *)
  log : bool;  (** chatter on stderr *)
}

val default : socket:string -> state_dir:string -> config
(** jobs 1, queue 32, 512 MiB, 30s deadline, 30s read timeout, 64
    sessions, no faults, quiet. *)

val run : config -> unit
(** Resume persisted sessions, open the socket, and serve until a
    [shutdown] request or SIGTERM/SIGINT.  Blocks; returns after a clean
    drain.  Raises [Failure] if the socket or state dir is unusable. *)
