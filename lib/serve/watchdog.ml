type candidate = { name : string; last_used : float; busy : bool; bytes : int }

let plan_evictions ~candidates ~resident_bytes ~high_watermark ~low_watermark =
  if resident_bytes <= high_watermark then []
  else begin
    let idle =
      List.filter (fun c -> not c.busy) candidates
      |> List.sort (fun a b -> compare a.last_used b.last_used)
    in
    let remaining = ref resident_bytes and plan = ref [] in
    List.iter
      (fun c ->
        if !remaining > low_watermark then begin
          remaining := !remaining - c.bytes;
          plan := c.name :: !plan
        end)
      idle;
    List.rev !plan
  end

let retry_after ~queue_depth ~mean_service_s =
  let hint = float_of_int (max 1 queue_depth) *. Float.max 0.05 mean_service_s in
  Float.min 30.0 (Float.max 0.1 hint)
