type t = {
  name : string;
  dir : string;
  circuit : string;
  original : Aig.Graph.t;
  fanout : Aig.Fanout.t;
  eval_pats : Logic.Bitvec.t array;
  golden : Logic.Bitvec.t array;
  mutable current : Aig.Graph.t;
  mutable revision : int;
  mutable priority : int;
  mutable last_used : float;
  mutable budget_s : float;
  mutable applied_total : int;
  mutable busy : bool;
  mutable metric_cache : (Errest.Metrics.kind * int * float) list;
}

let eval_rounds = 4096
let eval_seed = 7

let ( // ) = Filename.concat

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (path // e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* Evaluation sample: exhaustive when that is at most [eval_rounds]
   patterns, Monte-Carlo otherwise — the resident analogue of
   [Errest.Metrics.evaluate]. *)
let make_eval_pats g =
  let npis = Aig.Graph.num_pis g in
  if npis <= Sim.Patterns.exhaustive_limit && 1 lsl npis <= eval_rounds then
    Sim.Patterns.exhaustive ~npis
  else Sim.Patterns.random (Logic.Rng.create eval_seed) ~npis ~len:eval_rounds

let manifest_path dir = dir // "manifest"
let original_path dir = dir // "original.aag"
let current_path dir = dir // "current.aag"
let inflight_path dir = dir // "inflight"
let journal_dir t = t.dir // "journal"

let float_to_string f =
  if f = infinity then "inf"
  else if f = neg_infinity then "-inf"
  else Printf.sprintf "%h" f

let save_manifest t =
  let b = Buffer.create 128 in
  Printf.bprintf b "alsrac-session 1\n";
  Printf.bprintf b "circuit %s\n" t.circuit;
  Printf.bprintf b "priority %d\n" t.priority;
  Printf.bprintf b "applied %d\n" t.applied_total;
  Printf.bprintf b "budget %s\n" (float_to_string t.budget_s);
  Circuit_io.Atomic_file.write (manifest_path t.dir) (Buffer.contents b)

let warm ~name ~dir ~circuit ~original ~current ~priority ~budget_s
    ~applied_total =
  let eval_pats = make_eval_pats original in
  {
    name;
    dir;
    circuit;
    original;
    fanout = Aig.Fanout.build original;
    eval_pats;
    golden = Sim.Engine.simulate_pos original eval_pats;
    current;
    revision = 0;
    priority;
    last_used = Unix.gettimeofday ();
    budget_s;
    applied_total;
    busy = false;
    metric_cache = [];
  }

let create ~state_dir ~name ~circuit ~graph ~priority =
  let dir = state_dir // name in
  rm_rf dir;
  mkdir_p dir;
  Circuit_io.Atomic_file.write (original_path dir)
    (Circuit_io.Aiger.graph_to_string graph);
  let t =
    (* [current] starts as a cheap blit-level clone so no later in-place
       mutation of the working graph can reach the pristine [original] the
       golden signatures and the CSR handle were built from. *)
    warm ~name ~dir ~circuit ~original:graph ~current:(Aig.Graph.clone graph)
      ~priority ~budget_s:0.0 ~applied_total:0
  in
  save_manifest t;
  t

let parse_manifest path =
  let contents = Circuit_io.Atomic_file.read path in
  let circuit = ref "-" and priority = ref 0 in
  let applied = ref 0 and budget = ref 0.0 in
  let lines = String.split_on_char '\n' contents in
  (match lines with
  | "alsrac-session 1" :: _ -> ()
  | _ -> failwith (Printf.sprintf "session: bad manifest %s" path));
  List.iteri
    (fun i line ->
      if i > 0 && line <> "" then
        match String.index_opt line ' ' with
        | None -> failwith (Printf.sprintf "session: bad manifest line %S" line)
        | Some j -> (
            let key = String.sub line 0 j in
            let v = String.sub line (j + 1) (String.length line - j - 1) in
            match key with
            | "circuit" -> circuit := v
            | "priority" -> priority := int_of_string v
            | "applied" -> applied := int_of_string v
            | "budget" -> budget := float_of_string v
            | _ -> failwith (Printf.sprintf "session: unknown manifest key %s" key)))
    lines;
  (!circuit, !priority, !applied, !budget)

let load_dir ~state_dir ~name =
  let dir = state_dir // name in
  (* A daemon killed inside [Atomic_file.write] (manifest, current.aag,
     inflight, or a flow checkpoint in journal/) strands its staged temp;
     sweep both levels before trusting the directory's contents. *)
  Circuit_io.Atomic_file.sweep_debris dir;
  Circuit_io.Atomic_file.sweep_debris (dir // "journal");
  let circuit, priority, applied_total, budget_s =
    try parse_manifest (manifest_path dir)
    with Sys_error _ | Failure _ ->
      failwith (Printf.sprintf "session: %s is not a usable session" dir)
  in
  let original =
    try Circuit_io.Aiger.read (original_path dir)
    with _ -> failwith (Printf.sprintf "session: %s: unreadable original" dir)
  in
  let current =
    if Sys.file_exists (current_path dir) then
      try Circuit_io.Aiger.read (current_path dir) with _ -> original
    else original
  in
  warm ~name ~dir ~circuit ~original ~current ~priority ~budget_s
    ~applied_total

let scan ~state_dir =
  if not (Sys.file_exists state_dir) then []
  else
    Sys.readdir state_dir |> Array.to_list
    |> List.filter (fun name ->
           Protocol.valid_session_name name
           && Sys.file_exists (manifest_path (state_dir // name)))
    |> List.sort compare

let set_current t g =
  t.current <- g;
  t.revision <- t.revision + 1;
  t.metric_cache <- [];
  Circuit_io.Atomic_file.write (current_path t.dir)
    (Circuit_io.Aiger.graph_to_string g);
  save_manifest t

let rollback_to_snapshot t =
  let snapshot =
    match Core.Journal.load (journal_dir t) with
    | resume -> resume.Core.Journal.graph
    | exception Failure _ ->
        (* Clone rather than alias: [current] must never share node arrays
           with the pristine [original]. *)
        Aig.Graph.clone t.original
  in
  set_current t snapshot

let record_inflight t req =
  Circuit_io.Atomic_file.write (inflight_path t.dir)
    (Protocol.encode_request req)

let clear_inflight t =
  try Unix.unlink (inflight_path t.dir)
  with Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let inflight t =
  let path = inflight_path t.dir in
  if not (Sys.file_exists path) then None
  else
    match Protocol.decode_request (Circuit_io.Atomic_file.read path) with
    | req -> Some req
    | exception Failure _ ->
        (* A corrupt marker is quarantined, not retried: replaying garbage
           would wedge startup forever. *)
        (try Unix.rename path (path ^ ".bad") with _ -> ());
        None

let metric t kind =
  match
    List.find_opt (fun (k, r, _) -> k = kind && r = t.revision) t.metric_cache
  with
  | Some (_, _, v) -> v
  | None ->
      let approx = Sim.Engine.simulate_pos t.current t.eval_pats in
      let v = Errest.Metrics.measure kind ~golden:t.golden ~approx in
      t.metric_cache <- (kind, t.revision, v) :: t.metric_cache;
      v

let touch t = t.last_used <- Unix.gettimeofday ()

let resident_bytes t =
  let graph g = 24 * Aig.Graph.num_nodes g in
  let csr =
    8
    * (Array.length (Aig.Fanout.offsets t.fanout)
      + Array.length (Aig.Fanout.targets t.fanout)
      + Array.length (Aig.Fanout.po_offsets t.fanout)
      + Array.length (Aig.Fanout.po_targets t.fanout))
  in
  let sigs =
    let rounds = ref 0 in
    if Array.length t.eval_pats > 0 then
      rounds := Logic.Bitvec.length t.eval_pats.(0);
    8 * ((!rounds / 62) + 1) * (Array.length t.eval_pats + Array.length t.golden)
  in
  graph t.original + graph t.current + csr + sigs

let info t =
  [
    ("circuit", t.circuit);
    ("input-ands", string_of_int (Aig.Graph.num_ands t.original));
    ("current-ands", string_of_int (Aig.Graph.num_ands t.current));
    ("revision", string_of_int t.revision);
    ("applied", string_of_int t.applied_total);
    ("priority", string_of_int t.priority);
    ("budget-s", Printf.sprintf "%.3f" t.budget_s);
    ("resident-bytes", string_of_int (resident_bytes t));
    ("busy", string_of_bool t.busy);
  ]

let destroy t = rm_rf t.dir
