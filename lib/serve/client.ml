type t = {
  fd : Unix.file_descr;
  mutable send_n : int;
  mutable recv_n : int;
}

let connect ?(retries = 20) ?(retry_delay_s = 0.25) ~path () =
  let rec go attempt =
    match Transport.connect ~path with
    | fd -> { fd; send_n = 0; recv_n = 0 }
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when attempt < retries ->
        Unix.sleepf retry_delay_s;
        go (attempt + 1)
    | exception Unix.Unix_error (e, _, _) ->
        failwith
          (Printf.sprintf "client: cannot connect to %s: %s" path
             (Unix.error_message e))
  in
  go 0

let close t = try Unix.close t.fd with _ -> ()

let request ?(timeout_s = 120.0) t req =
  t.send_n <- t.send_n + 1;
  Transport.send ~nth:t.send_n t.fd (Protocol.encode_request req);
  t.recv_n <- t.recv_n + 1;
  Protocol.decode_response (Transport.recv ~nth:t.recv_n ~timeout_s t.fd)

let request_retry ?timeout_s ?(max_wait_s = 30.0) t req =
  let rec go waited =
    match request ?timeout_s t req with
    | Protocol.Err { code = Protocol.Overloaded | Protocol.Shedding; retry_after_s; _ }
      as resp ->
        let pause = Option.value retry_after_s ~default:0.5 in
        if waited +. pause > max_wait_s then resp
        else begin
          Unix.sleepf pause;
          go (waited +. pause)
        end
    | resp -> resp
  in
  go 0.0

let ping t =
  match request ~timeout_s:5.0 t Protocol.Ping with
  | Protocol.Ok _ -> true
  | Protocol.Err _ -> false
  | exception _ -> false

let load t ~session ~circuit ?graph ?(priority = 0) () =
  request t (Protocol.Load { session; circuit; graph; priority })

let approx t ~session ~params ?deadline_s () =
  request t (Protocol.Approx { session; params; deadline_s })

let metrics t ~session ~metric = request t (Protocol.Metrics { session; metric })
let cec t ~session = request t (Protocol.Cec { session })
let get t ~session = request t (Protocol.Get { session })
let status t = request t Protocol.Status
let evict t ~session = request t (Protocol.Evict { session })
let shutdown t = request t Protocol.Shutdown

let ok_field resp key =
  match resp with
  | Protocol.Ok (kvs, _) -> List.assoc_opt key kvs
  | Protocol.Err _ -> None
