(** Resident, crash-resumable daemon sessions.

    A session keeps everything expensive warm across requests: the parsed
    original AIG, its fanout CSR, a fixed evaluation pattern set with the
    golden PO signatures already simulated, and the current approximate
    circuit with a per-revision metrics cache.  A warm metric re-simulates
    only the approximate side (and only when the circuit changed since the
    last ask) — this is the resident speedup the daemon exists for.

    Every state change is persisted under the session's directory before it
    is acknowledged:

    {v
    <state-dir>/<name>/
      manifest       key/value lines (atomic replace)
      original.aag   loaded circuit, immutable
      current.aag    latest approximation (absent until one exists)
      inflight       encoded Approx request while queued/running
      journal/       Core.Journal run directory of the in-flight approx
    v}

    The [inflight] marker plus the flow journal make [kill -9] recoverable:
    {!scan} + {!load_dir} + {!resume_inflight} at daemon startup replays
    every interrupted approximation to the exact circuit an uninterrupted
    run would have produced (the flow's determinism contract). *)

type t = {
  name : string;
  dir : string;
  circuit : string;  (** name given at load time (["-"] for shipped AIGER) *)
  original : Aig.Graph.t;
  fanout : Aig.Fanout.t;  (** CSR of [original], kept resident *)
  eval_pats : Logic.Bitvec.t array;  (** fixed evaluation pattern set *)
  golden : Logic.Bitvec.t array;  (** PO signatures of [original] on it *)
  mutable current : Aig.Graph.t;
  mutable revision : int;  (** bumped on every [set_current] *)
  mutable priority : int;
  mutable last_used : float;  (** [Unix.gettimeofday] of last touch *)
  mutable budget_s : float;  (** executor seconds consumed by this session *)
  mutable applied_total : int;  (** accepted LACs across all approx runs *)
  mutable busy : bool;  (** an approx is queued or running *)
  mutable metric_cache : (Errest.Metrics.kind * int * float) list;
      (** (kind, revision, value) memo for warm metrics *)
}

val eval_rounds : int
(** Size of the resident evaluation sample (exhaustive when the PI count
    allows it, Monte-Carlo otherwise). *)

val create :
  state_dir:string ->
  name:string ->
  circuit:string ->
  graph:Aig.Graph.t ->
  priority:int ->
  t
(** Build and persist a fresh session (replacing any previous one of the
    same name on disk). *)

val load_dir : state_dir:string -> name:string -> t
(** Reload a persisted session; raises [Failure] if its directory is not a
    usable session. *)

val scan : state_dir:string -> string list
(** Names of the sessions persisted under [state_dir], sorted. *)

val journal_dir : t -> string

val set_current : t -> Aig.Graph.t -> unit
(** Commit a new approximate circuit: bump the revision, drop the metric
    cache, persist [current.aag] and the manifest. *)

val rollback_to_snapshot : t -> unit
(** Roll [current] back to the journal's last accepted checkpoint (or the
    original when none exists) — the deadline-expiry recovery path. *)

val record_inflight : t -> Protocol.request -> unit
(** Persist the request about to run so a crash can replay it. *)

val clear_inflight : t -> unit

val inflight : t -> Protocol.request option
(** The persisted in-flight request, if any (daemon startup). *)

val metric : t -> Errest.Metrics.kind -> float
(** Warm metric of [current] against [original] on the resident sample;
    cached per revision. *)

val touch : t -> unit
val resident_bytes : t -> int
(** Rough resident footprint (graphs + CSR + signatures), for watermarks. *)

val save_manifest : t -> unit
val info : t -> (string * string) list
(** Status lines: ANDs, revision, priority, budget, residency. *)

val destroy : t -> unit
(** Remove the session's directory tree (evict). *)
