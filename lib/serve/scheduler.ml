type job = {
  seq : int;
  session : string;
  priority : int;
  enqueued : float;
  deadline : float;
  budget : float;
  work : unit -> Protocol.response;
}

type ticket = {
  t_mutex : Mutex.t;
  t_cond : Condition.t;
  mutable t_result : Protocol.response option;
}

type entry = { job : job; ticket : ticket }

type t = {
  max_queue : int;
  mutex : Mutex.t;
  cond : Condition.t;  (* queue became nonempty, or stop was requested *)
  mutable queue : entry list;  (* unordered; [max_queue] is small *)
  mutable seq : int;
  mutable stopped : bool;
  running : (int, ticket) Hashtbl.t;  (* seq -> ticket of dequeued jobs *)
}

let create ~max_queue =
  if max_queue < 1 then invalid_arg "Scheduler.create: max_queue < 1";
  {
    max_queue;
    mutex = Mutex.create ();
    cond = Condition.create ();
    queue = [];
    seq = 0;
    stopped = false;
    running = Hashtbl.create 8;
  }

let complete entry resp =
  Mutex.lock entry.ticket.t_mutex;
  entry.ticket.t_result <- Some resp;
  Condition.broadcast entry.ticket.t_cond;
  Mutex.unlock entry.ticket.t_mutex

let shed_error =
  Protocol.Err
    {
      code = Protocol.Shedding;
      detail = "dropped for a higher-priority request";
      retry_after_s = Some 1.0;
    }

let expired_error =
  Protocol.Err
    {
      code = Protocol.Timeout;
      detail = "deadline expired while queued";
      retry_after_s = None;
    }

let drain_error =
  Protocol.Err
    { code = Protocol.Internal; detail = "daemon stopping"; retry_after_s = None }

(* Selection order, smaller = served first. *)
let rank e = (-e.job.priority, e.job.budget, e.job.seq)

let submit t ~session ~priority ~budget ~deadline ~work =
  Mutex.lock t.mutex;
  if t.stopped then begin
    Mutex.unlock t.mutex;
    invalid_arg "Scheduler.submit: stopped"
  end;
  let shed =
    if List.length t.queue < t.max_queue then None
    else
      (* Full: the newcomer may displace the worst queued entry, but only
         when it strictly outranks it on priority — equal priority waits its
         turn rather than churning the queue. *)
      let worst =
        List.fold_left
          (fun acc e ->
            match acc with
            | None -> Some e
            | Some w -> if rank e > rank w then Some e else acc)
          None t.queue
      in
      match worst with
      | Some w when priority > w.job.priority -> Some w
      | _ -> None
  in
  match (List.length t.queue < t.max_queue, shed) with
  | false, None ->
      Mutex.unlock t.mutex;
      `Overloaded
  | fits, _ ->
      (match (fits, shed) with
      | false, Some w ->
          t.queue <- List.filter (fun e -> e != w) t.queue;
          complete w shed_error
      | _ -> ());
      let ticket =
        { t_mutex = Mutex.create (); t_cond = Condition.create (); t_result = None }
      in
      t.seq <- t.seq + 1;
      let job =
        { seq = t.seq; session; priority; enqueued = Unix.gettimeofday ();
          deadline; budget; work }
      in
      t.queue <- { job; ticket } :: t.queue;
      Condition.signal t.cond;
      Mutex.unlock t.mutex;
      `Queued ticket

let await ticket =
  Mutex.lock ticket.t_mutex;
  while ticket.t_result = None do
    Condition.wait ticket.t_cond ticket.t_mutex
  done;
  let r = Option.get ticket.t_result in
  Mutex.unlock ticket.t_mutex;
  r

let next t =
  Mutex.lock t.mutex;
  let rec loop () =
    (* Expire stale entries first so they never run. *)
    let now = Unix.gettimeofday () in
    let expired, live =
      List.partition (fun e -> e.job.deadline < now) t.queue
    in
    t.queue <- live;
    List.iter (fun e -> complete e expired_error) expired;
    match t.queue with
    | [] ->
        if t.stopped then None
        else begin
          Condition.wait t.cond t.mutex;
          loop ()
        end
    | _ :: _ ->
        let best =
          List.fold_left
            (fun acc e ->
              match acc with
              | None -> Some e
              | Some b -> if rank e < rank b then Some e else acc)
            None t.queue
        in
        let e = Option.get best in
        t.queue <- List.filter (fun x -> x != e) t.queue;
        Hashtbl.replace t.running e.job.seq e.ticket;
        Some e.job
  in
  let r = loop () in
  Mutex.unlock t.mutex;
  r

let finish t (job : job) resp =
  Mutex.lock t.mutex;
  let ticket = Hashtbl.find_opt t.running job.seq in
  Hashtbl.remove t.running job.seq;
  Mutex.unlock t.mutex;
  match ticket with
  | Some ticket -> complete { job; ticket } resp
  | None -> ()

let depth t =
  Mutex.lock t.mutex;
  let d = List.length t.queue in
  Mutex.unlock t.mutex;
  d

let max_queue t = t.max_queue

let stop t =
  Mutex.lock t.mutex;
  t.stopped <- true;
  let drained = t.queue in
  t.queue <- [];
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  List.iter (fun e -> complete e drain_error) drained
