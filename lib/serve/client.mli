(** Client side of the [alsrac serve] protocol: one synchronous
    request/response connection, plus convenience wrappers per verb and a
    backpressure-honoring retry helper. *)

type t

val connect : ?retries:int -> ?retry_delay_s:float -> path:string -> unit -> t
(** Connect to the daemon socket, retrying [retries] times (default 20)
    every [retry_delay_s] (default 0.25s) — covers the race of a client
    starting while the daemon is still resuming sessions.  Raises
    [Failure] when the socket never appears. *)

val close : t -> unit

val request : ?timeout_s:float -> t -> Protocol.request -> Protocol.response
(** Send one request and wait for its reply (default 120s).  Raises
    {!Transport.Timeout} / {!Transport.Closed} / {!Transport.Malformed} on
    transport failure, [Failure] on an undecodable reply. *)

val request_retry :
  ?timeout_s:float -> ?max_wait_s:float -> t -> Protocol.request -> Protocol.response
(** Like {!request}, but sleeps out [Overloaded]/[Shedding] replies using
    the daemon's retry-after hint, up to [max_wait_s] (default 30s) of
    cumulative waiting; the last error is returned when the budget runs
    out. *)

(** {1 Convenience wrappers} *)

val ping : t -> bool

val load :
  t ->
  session:string ->
  circuit:string ->
  ?graph:string ->
  ?priority:int ->
  unit ->
  Protocol.response

val approx :
  t ->
  session:string ->
  params:Protocol.approx_params ->
  ?deadline_s:float ->
  unit ->
  Protocol.response

val metrics :
  t -> session:string -> metric:Errest.Metrics.kind -> Protocol.response

val cec : t -> session:string -> Protocol.response

val get : t -> session:string -> Protocol.response
(** The graph blob of an [Ok] reply is the session's current AIGER text. *)

val status : t -> Protocol.response
val evict : t -> session:string -> Protocol.response
val shutdown : t -> Protocol.response

val ok_field : Protocol.response -> string -> string option
(** Field lookup in an [Ok] reply; [None] on errors or missing keys. *)
