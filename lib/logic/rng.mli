(** Deterministic pseudo-random number generation.

    A small, fast, explicitly-seeded splitmix64 generator.  Every stochastic
    component of the repository (pattern generation, MCMC proposals, benchmark
    workloads) draws from a value of type {!t}, so runs are reproducible from
    a single integer seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val state : t -> int64
(** The raw splitmix64 state, for checkpointing.  Together with {!of_state}
    this allows a run to be suspended and resumed mid-stream: the restored
    generator continues the exact sequence of the saved one. *)

val of_state : int64 -> t
(** Rebuild a generator from a saved {!state}.  Unlike {!create}, no seed
    scrambling is applied: [of_state (state t)] continues [t]'s stream. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val bits62 : t -> int
(** 62 uniformly random bits as a non-negative OCaml [int]. *)

val int : t -> int -> int
(** [int rng n] is uniform in [\[0, n)].  Requires [n > 0]. *)

val bool : t -> bool
(** Uniform coin flip. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val split : t -> t
(** [split rng] advances [rng] and returns a generator seeded from it, for
    decorrelated sub-streams. *)
