(* Splitmix64 (Steele, Lea, Flood 2014): tiny state, excellent statistical
   quality for simulation workloads, and trivially splittable. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let state t = t.state

let of_state s = { state = s }

let golden = 0x9E3779B97F4A7C15L

let next64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits62 t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let limit = (max_int / n) * n in
  let rec draw () =
    let v = bits62 t in
    if v < limit then v mod n else draw ()
  in
  draw ()

let bool t = Int64.logand (next64 t) 1L = 1L

let float t =
  (* 53 high bits -> [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next64 t) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let split t = { state = next64 t }
