type t = { len : int; words : int array }

let word_bits = 62

let word_mask = (1 lsl word_bits) - 1

let words_for len = if len = 0 then 0 else ((len - 1) / word_bits) + 1

let create len =
  if len < 0 then invalid_arg "Bitvec.create: negative length";
  { len; words = Array.make (words_for len) 0 }

let length t = t.len

let num_words t = Array.length t.words

let unsafe_words t = t.words

(* Bits of the last word beyond [len] must stay zero so that popcount,
   equality and hashing can work word-wise. *)
let mask_tail t =
  let n = Array.length t.words in
  if n > 0 then begin
    let used = t.len - ((n - 1) * word_bits) in
    if used < word_bits then
      t.words.(n - 1) <- t.words.(n - 1) land ((1 lsl used) - 1)
  end

let copy t = { len = t.len; words = Array.copy t.words }

let check_index t i =
  if i < 0 || i >= t.len then invalid_arg "Bitvec: index out of bounds"

let get t i =
  check_index t i;
  (t.words.(i / word_bits) lsr (i mod word_bits)) land 1 = 1

let set t i b =
  check_index t i;
  let w = i / word_bits and off = i mod word_bits in
  if b then t.words.(w) <- t.words.(w) lor (1 lsl off)
  else t.words.(w) <- t.words.(w) land lnot (1 lsl off)

let init len f =
  let t = create len in
  for i = 0 to len - 1 do
    if f i then set t i true
  done;
  t

let fill t b =
  Array.fill t.words 0 (Array.length t.words) (if b then word_mask else 0);
  mask_tail t

let equal a b = a.len = b.len && a.words = b.words

let compare a b =
  let c = Stdlib.compare a.len b.len in
  if c <> 0 then c else Stdlib.compare a.words b.words

let hash t = Hashtbl.hash (t.len, t.words)

let check_lengths a b =
  if a.len <> b.len then invalid_arg "Bitvec: length mismatch"

let map2 f a b =
  check_lengths a b;
  let r = create a.len in
  for i = 0 to Array.length a.words - 1 do
    r.words.(i) <- f a.words.(i) b.words.(i)
  done;
  r

let logand a b = map2 ( land ) a b
let logor a b = map2 ( lor ) a b
let logxor a b = map2 ( lxor ) a b

let lognot a =
  let r = create a.len in
  for i = 0 to Array.length a.words - 1 do
    r.words.(i) <- lnot a.words.(i) land word_mask
  done;
  mask_tail r;
  r

let inplace2 f dst src =
  check_lengths dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- f dst.words.(i) src.words.(i)
  done

let logand_inplace dst src = inplace2 ( land ) dst src
let logor_inplace dst src = inplace2 ( lor ) dst src
let logxor_inplace dst src = inplace2 ( lxor ) dst src

let blit src dst =
  check_lengths dst src;
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

(* Fused three-address kernels: no temporaries, one pass per call. *)

let xor_into dst a b =
  check_lengths dst a;
  check_lengths dst b;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- a.words.(i) lxor b.words.(i)
  done

let lognot_into dst src =
  check_lengths dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- lnot src.words.(i) land word_mask
  done;
  mask_tail dst

(* SWAR popcount adapted to 62 significant bits (the two spare top bits are
   always zero, so the 64-bit constants stay valid). *)
let popcount_word w =
  let w = w - ((w lsr 1) land 0x1555555555555555) in
  let w = (w land 0x3333333333333333) + ((w lsr 2) land 0x3333333333333333) in
  let w = (w + (w lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (w * 0x0101010101010101) lsr 56

let popcount t =
  let acc = ref 0 in
  for i = 0 to Array.length t.words - 1 do
    acc := !acc + popcount_word t.words.(i)
  done;
  !acc

let popcount_xor a b =
  check_lengths a b;
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount_word (a.words.(i) lxor b.words.(i))
  done;
  !acc

let hamming = popcount_xor

let is_zero t = Array.for_all (fun w -> w = 0) t.words

let is_ones t = popcount t = t.len

let iter_set t f =
  for wi = 0 to Array.length t.words - 1 do
    let w = ref t.words.(wi) in
    while !w <> 0 do
      let low = !w land -(!w) in
      (* Index of the lowest set bit. *)
      let bit = popcount_word (low - 1) in
      f ((wi * word_bits) + bit);
      w := !w lxor low
    done
  done

let randomize rng t =
  for i = 0 to Array.length t.words - 1 do
    t.words.(i) <- Rng.bits62 rng
  done;
  mask_tail t

let random rng len =
  let t = create len in
  randomize rng t;
  t

let to_string t = String.init t.len (fun i -> if get t i then '1' else '0')

let of_string s =
  init (String.length s) (fun i ->
      match s.[i] with
      | '0' -> false
      | '1' -> true
      | c -> invalid_arg (Printf.sprintf "Bitvec.of_string: bad char %C" c))

let pp ppf t = Format.pp_print_string ppf (to_string t)
