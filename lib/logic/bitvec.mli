(** Packed bit vectors used as simulation signatures.

    A {!t} holds [length t] bits packed into 62-bit OCaml integer words so
    that bitwise operations stay unboxed.  Bit [i] of the vector is the value
    of a signal under simulation pattern [i]; word-parallel operations over
    signatures are the workhorse of the whole ALS flow. *)

type t

val word_bits : int
(** Number of payload bits per word (62). *)

val create : int -> t
(** [create len] is an all-zero vector of [len] bits. Requires [len >= 0]. *)

val init : int -> (int -> bool) -> t
(** [init len f] sets bit [i] to [f i]. *)

val length : t -> int

val num_words : t -> int

val copy : t -> t

val get : t -> int -> bool
(** Bounds-checked bit read. *)

val set : t -> int -> bool -> unit
(** Bounds-checked bit write. *)

val fill : t -> bool -> unit
(** Set every bit to the given value. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

(** {1 Bulk logic}

    All binary operations require operands of equal length. *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val logand_inplace : t -> t -> unit
(** [logand_inplace dst src] stores [dst AND src] in [dst]; similarly below. *)

val logor_inplace : t -> t -> unit
val logxor_inplace : t -> t -> unit
val blit : t -> t -> unit
(** [blit src dst] copies [src] into [dst]. *)

(** {1 Fused kernels}

    Three-address, single-pass, no temporaries — for inner scoring loops. *)

val xor_into : t -> t -> t -> unit
(** [xor_into dst a b] stores [a XOR b] in [dst] ([dst] may alias [a] or
    [b]). *)

val lognot_into : t -> t -> unit
(** [lognot_into dst src] stores [NOT src] in [dst] (tail bits kept zero). *)

val popcount_xor : t -> t -> int
(** [popcount_xor a b] is [popcount (logxor a b)] without materializing the
    difference vector; {!hamming} is an alias. *)

val popcount : t -> int
(** Number of set bits. *)

val hamming : t -> t -> int
(** Number of positions at which the vectors differ. *)

val is_zero : t -> bool
val is_ones : t -> bool

val iter_set : t -> (int -> unit) -> unit
(** Apply the callback to the index of every set bit, in increasing order. *)

val randomize : Rng.t -> t -> unit
(** Fill with uniform random bits. *)

val random : Rng.t -> int -> t
(** Fresh uniformly random vector of the given length. *)

val to_string : t -> string
(** Bit [0] first, e.g. ["0110"]. *)

val of_string : string -> t
(** Inverse of {!to_string}.  Raises [Invalid_argument] on non-[01] chars. *)

val pp : Format.formatter -> t -> unit

(** {1 Unsafe word access}

    For inner simulation loops only.  The last word's unused high bits are
    guaranteed to be zero and must be kept zero by writers ({!mask_tail}
    re-establishes the invariant). *)

val unsafe_words : t -> int array
val mask_tail : t -> unit
val word_mask : int
(** All 62 payload bits set. *)

val popcount_word : int -> int
(** SWAR popcount of one 62-bit payload word. *)
