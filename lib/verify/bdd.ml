type node = int
(* 0 = false terminal, 1 = true terminal, >= 2 internal.  Internal node i
   branches on [var_of.(i)]: [lo_of.(i)] when false, [hi_of.(i)] when
   true.  Ordered (variable indices strictly increase toward the leaves)
   and reduced (no node with lo = hi; unique table), so representation is
   canonical: only node 0 denotes the constant-false function. *)

type mgr = {
  nvars : int;
  limit : int;
  mutable var_of : int array;
  mutable lo_of : int array;
  mutable hi_of : int array;
  mutable n : int;
  unique : (int * int * int, int) Hashtbl.t;
  ite_cache : (int * int * int, int) Hashtbl.t;
}

exception Node_limit

let terminal_var = max_int

let create ?(limit = 1_000_000) ~nvars () =
  let cap = 1024 in
  let m =
    {
      nvars;
      limit;
      var_of = Array.make cap terminal_var;
      lo_of = Array.make cap 0;
      hi_of = Array.make cap 0;
      n = 2;
      unique = Hashtbl.create 4096;
      ite_cache = Hashtbl.create 4096;
    }
  in
  m.lo_of.(1) <- 1;
  m.hi_of.(1) <- 1;
  m

let cfalse _ = 0
let ctrue _ = 1
let is_false _ f = f = 0
let num_nodes m = m.n

let grow m =
  let cap = Array.length m.var_of in
  if m.n >= cap then begin
    let cap' = 2 * cap in
    let extend a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    m.var_of <- extend m.var_of terminal_var;
    m.lo_of <- extend m.lo_of 0;
    m.hi_of <- extend m.hi_of 0
  end

let mk m v lo hi =
  if lo = hi then lo
  else
    let key = (v, lo, hi) in
    match Hashtbl.find_opt m.unique key with
    | Some id -> id
    | None ->
        if m.n >= m.limit then raise Node_limit;
        grow m;
        let id = m.n in
        m.n <- id + 1;
        m.var_of.(id) <- v;
        m.lo_of.(id) <- lo;
        m.hi_of.(id) <- hi;
        Hashtbl.add m.unique key id;
        id

let var m i =
  if i < 0 || i >= m.nvars then invalid_arg "Verify.Bdd.var: index out of range";
  mk m i 0 1

let rec ite m f g h =
  if f = 1 then g
  else if f = 0 then h
  else if g = h then g
  else if g = 1 && h = 0 then f
  else
    let key = (f, g, h) in
    match Hashtbl.find_opt m.ite_cache key with
    | Some r -> r
    | None ->
        let top =
          min m.var_of.(f) (min m.var_of.(g) m.var_of.(h))
        in
        let cof x =
          if x < 2 || m.var_of.(x) <> top then (x, x) else (m.lo_of.(x), m.hi_of.(x))
        in
        let f0, f1 = cof f and g0, g1 = cof g and h0, h1 = cof h in
        let r0 = ite m f0 g0 h0 in
        let r1 = ite m f1 g1 h1 in
        let r = mk m top r0 r1 in
        Hashtbl.add m.ite_cache key r;
        r

let not_ m f = ite m f 0 1
let and_ m f g = ite m f g 0
let xor_ m f g = ite m f (not_ m g) g

let copy_to ~src ~dst roots =
  let memo = Hashtbl.create 4096 in
  let rec go f =
    if f < 2 then f
    else
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
          let r0 = go src.lo_of.(f) in
          let r1 = go src.hi_of.(f) in
          let r = mk dst src.var_of.(f) r0 r1 in
          Hashtbl.add memo f r;
          r
  in
  Array.map go roots

let any_sat m f =
  if f = 0 then invalid_arg "Verify.Bdd.any_sat: constant false";
  (* Canonicity guarantees every non-false node has a path to the true
     terminal along children that are themselves non-false. *)
  let rec walk acc f =
    if f = 1 then List.rev acc
    else if m.hi_of.(f) <> 0 then walk ((m.var_of.(f), true) :: acc) m.hi_of.(f)
    else walk ((m.var_of.(f), false) :: acc) m.lo_of.(f)
  in
  walk [] f
