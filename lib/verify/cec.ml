module Graph = Aig.Graph
module Bitvec = Logic.Bitvec
module Truth = Logic.Truth

type counterexample = {
  inputs : bool array;
  po : int;
  value_a : bool;
  value_b : bool;
}

type verdict = Equivalent | Inequivalent of counterexample | Undecided of string

type effort = Fast | Thorough

(* ---------- Reference evaluation (independent of Sim.Engine) ---------- *)

(* Direct memoized recursion over the graph; deliberately shares nothing
   with the word-parallel engine so counterexample validation does not trust
   the machinery under test. *)
let eval_graph g (inputs : bool array) =
  let values = Array.make (Graph.num_nodes g) None in
  let rec node id =
    match values.(id) with
    | Some v -> v
    | None ->
        let v =
          if Graph.is_const id then false
          else if Graph.is_pi g id then inputs.(Graph.pi_index g id)
          else
            let lit l = node (Graph.node_of l) <> Graph.is_compl l in
            lit (Graph.fanin0 g id) && lit (Graph.fanin1 g id)
        in
        values.(id) <- Some v;
        v
  in
  Array.init (Graph.num_pos g) (fun o ->
      let l = Graph.po_lit g o in
      node (Graph.node_of l) <> Graph.is_compl l)

let holds a b cex =
  Array.length cex.inputs = Graph.num_pis a
  && cex.po >= 0
  && cex.po < Graph.num_pos a
  &&
  let va = (eval_graph a cex.inputs).(cex.po)
  and vb = (eval_graph b cex.inputs).(cex.po) in
  va = cex.value_a && vb = cex.value_b && va <> vb

let mk_cex a b ~inputs ~po =
  let va = (eval_graph a inputs).(po) and vb = (eval_graph b inputs).(po) in
  { inputs; po; value_a = va; value_b = vb }

(* ---------- Random / exhaustive refutation ---------- *)

exception Diff of int * int  (* po, round *)

(* First (po, round) on which the circuits disagree over a pattern set. *)
let first_diff a b pats =
  let pa = Sim.Engine.simulate_pos a pats and pb = Sim.Engine.simulate_pos b pats in
  try
    Array.iteri
      (fun o va ->
        if not (Bitvec.equal va pb.(o)) then
          Bitvec.iter_set (Bitvec.logxor va pb.(o)) (fun m -> raise (Diff (o, m))))
      pa;
    None
  with Diff (o, m) -> Some (o, m)

let cex_at a b pats (o, m) =
  let inputs = Array.map (fun p -> Bitvec.get p m) pats in
  mk_cex a b ~inputs ~po:o

(* ---------- Miter construction ---------- *)

let copy_into g pis src =
  let map = Array.make (Graph.num_nodes src) Graph.const0 in
  for i = 0 to Graph.num_pis src - 1 do
    map.(Graph.pi_node src i) <- pis.(i)
  done;
  let lit l = Graph.lit_not_cond map.(Graph.node_of l) (Graph.is_compl l) in
  Graph.iter_ands src (fun id ->
      map.(id) <- Graph.and_ g (lit (Graph.fanin0 src id)) (lit (Graph.fanin1 src id)));
  Array.init (Graph.num_pos src) (fun o -> lit (Graph.po_lit src o))

let miter a b =
  let g = Graph.create ~name:"miter" () in
  let pis =
    Array.init (Graph.num_pis a) (fun i -> Graph.add_pi ~name:(Graph.pi_name a i) g)
  in
  let pa = copy_into g pis a and pb = copy_into g pis b in
  Array.iteri
    (fun o la ->
      let lb = pb.(o) in
      let x1 = Graph.and_ g la (Graph.lit_not lb) in
      let x2 = Graph.and_ g (Graph.lit_not la) lb in
      let xor = Graph.lit_not (Graph.and_ g (Graph.lit_not x1) (Graph.lit_not x2)) in
      ignore (Graph.add_po ~name:(Printf.sprintf "neq%d" o) g xor))
    pa;
  g

(* ---------- Cut sweeping ---------- *)

(* Two nodes computing the same truth table over the identical cut leaves
   are functionally equal — an exact proof that needs no PI-support bound,
   which is what closes miters of wide circuits after local transforms. *)
let cut_sweep ~k ~max_cuts g =
  let g = Graph.compact g in
  let cuts = Aig.Cut.enumerate g ~k ~max_cuts () in
  let tbl : (string, Graph.lit) Hashtbl.t = Hashtbl.create 4096 in
  let replace : (int, Graph.replacement) Hashtbl.t = Hashtbl.create 64 in
  Graph.iter_ands g (fun id ->
      let rec try_cuts = function
        | [] -> ()
        | (cut : Aig.Cut.t) :: rest ->
            if Aig.Cut.size cut <= 1 then try_cuts rest
            else begin
              let tt = Aig.Cut.truth g ~root:id ~leaves:cut.Aig.Cut.leaves in
              (* Canonical phase: value 0 on the all-zero minterm. *)
              let phase = Truth.get tt 0 in
              let canon = if phase then Truth.bnot tt else tt in
              let key =
                String.concat ","
                  (Array.to_list (Array.map string_of_int cut.Aig.Cut.leaves))
                ^ ":" ^ Truth.to_hex canon
              in
              match Hashtbl.find_opt tbl key with
              | Some lit when Graph.node_of lit < id ->
                  Hashtbl.replace replace id
                    (Graph.Replace_lit (Graph.lit_not_cond lit phase))
              | Some _ -> try_cuts rest
              | None ->
                  Hashtbl.add tbl key (Graph.make_lit id phase);
                  try_cuts rest
            end
      in
      if not (Hashtbl.mem replace id) then try_cuts cuts.(id));
  let n = Hashtbl.length replace in
  if n = 0 then (g, 0)
  else (Graph.compact (Graph.rebuild ~replace:(Hashtbl.find_opt replace) g), n)

(* ---------- Support closure ---------- *)

(* Per-node structural PI support as bitsets over PI indices. *)
let pi_supports g =
  let npis = Graph.num_pis g in
  let sup = Array.init (Graph.num_nodes g) (fun _ -> Bitvec.create npis) in
  for i = 0 to npis - 1 do
    Bitvec.set sup.(Graph.pi_node g i) i true
  done;
  Graph.iter_ands g (fun id ->
      let s = sup.(id) in
      Bitvec.logor_inplace s sup.(Graph.node_of (Graph.fanin0 g id));
      Bitvec.logor_inplace s sup.(Graph.node_of (Graph.fanin1 g id)));
  sup

(* Exhaustive patterns over a subset of the PIs; the rest are held at 0,
   which is sound and complete for outputs whose cone touches only the
   subset. *)
let support_patterns ~npis ~support_pis =
  let n = Array.length support_pis in
  let len = 1 lsl n in
  let pats = Array.init npis (fun _ -> Bitvec.create len) in
  Array.iteri
    (fun j pi -> pats.(pi) <- Bitvec.init len (fun m -> (m lsr j) land 1 = 1))
    support_pis;
  pats

(* ---------- BDD closure ---------- *)

(* Compile one output cone to a BDD under a given variable order
   ([order.(pi_index) = level], [-1] for PIs outside the cone).  Canonicity
   decides the cone outright: the false terminal proves constant 0,
   anything else yields a satisfying input vector.  A node budget turns
   exploding cones into [`Gave_up] instead of unbounded work. *)
let bdd_compile ~limit g ~mark ~order ~nlev ~root =
  let root_id = Graph.node_of root in
  let pi_of_level = Array.make (max 1 nlev) 0 in
  Array.iteri (fun pi lev -> if lev >= 0 then pi_of_level.(lev) <- pi) order;
  (* Per-node BDDs are typically small even when their cumulative count is
     not (compressor-tree cones allocate millions of nodes while no single
     function needs more than a few thousand), so the compile loop tracks
     cone fanout counts and mark-compacts the live BDDs into a fresh
     manager whenever the budget half-fills.  Giving up happens only when
     the LIVE set itself cannot fit, or when cumulative allocation exceeds
     a fixed multiple of the budget (a work cap). *)
  let uses = Array.make (Graph.num_nodes g) 0 in
  for id = 1 to root_id do
    if mark.(id) && not (Graph.is_pi g id) then begin
      let bump f = uses.(Graph.node_of f) <- uses.(Graph.node_of f) + 1 in
      bump (Graph.fanin0 g id);
      bump (Graph.fanin1 g id)
    end
  done;
  uses.(root_id) <- uses.(root_id) + 1;
  let mgr = ref (Bdd.create ~limit ~nvars:(max 1 nlev) ()) in
  let value : (int, Bdd.node) Hashtbl.t = Hashtbl.create 1024 in
  let consume id =
    uses.(id) <- uses.(id) - 1;
    if uses.(id) = 0 then Hashtbl.remove value id
  in
  (* Work cap: the budget bounds LIVE nodes; collections let long chains of
     small functions re-use it, but total allocation across the whole
     compile stays within a fixed multiple so a hopeless cone fails in
     bounded time. *)
  let allocated = ref 0 in
  let gc () =
    allocated := !allocated + Bdd.num_nodes !mgr;
    if !allocated > 8 * limit then raise Bdd.Node_limit;
    let ids = Hashtbl.fold (fun k _ acc -> k :: acc) value [] in
    let roots = Array.of_list (List.map (Hashtbl.find value) ids) in
    let fresh = Bdd.create ~limit ~nvars:(max 1 nlev) () in
    let roots' = Bdd.copy_to ~src:!mgr ~dst:fresh roots in
    mgr := fresh;
    List.iteri (fun i id -> Hashtbl.replace value id roots'.(i)) ids;
    if Bdd.num_nodes fresh > limit / 2 then raise Bdd.Node_limit
  in
  try
    for id = 1 to root_id do
      if mark.(id) && uses.(id) > 0 then
        if Graph.is_pi g id then
          Hashtbl.replace value id (Bdd.var !mgr order.(Graph.pi_index g id))
        else begin
          let arm f =
            let n = Graph.node_of f in
            let b = if Graph.is_const n then Bdd.cfalse !mgr else Hashtbl.find value n in
            if Graph.is_compl f then Bdd.not_ !mgr b else b
          in
          let b = Bdd.and_ !mgr (arm (Graph.fanin0 g id)) (arm (Graph.fanin1 g id)) in
          consume (Graph.node_of (Graph.fanin0 g id));
          consume (Graph.node_of (Graph.fanin1 g id));
          Hashtbl.replace value id b;
          if Bdd.num_nodes !mgr > limit / 2 then gc ()
        end
    done;
    let broot = Hashtbl.find value root_id in
    let f = if Graph.is_compl root then Bdd.not_ !mgr broot else broot in
    if Bdd.is_false !mgr f then `Const0
    else begin
      let inputs = Array.make (Graph.num_pis g) false in
      List.iter (fun (lev, v) -> inputs.(pi_of_level.(lev)) <- v) (Bdd.any_sat !mgr f);
      `Sat inputs
    end
  with Bdd.Node_limit -> `Gave_up

(* Decide one output by BDD compilation, trying a small portfolio of
   static variable orders: first-appearance DFS order from the root first
   (it interleaves related inputs — e.g. the a_i/b_i pairs of an adder —
   which keeps carry-chain BDDs linear), then declaration-order stride
   interleaves for 2 and 4 operand words, then plain PI declaration order
   (better when the cone sums one contiguous input range, as compressor
   trees do). *)
let bdd_decide ~limit ~hint g ~po =
  let root = Graph.po_lit g po in
  let root_id = Graph.node_of root in
  if Graph.is_const root_id then
    if Graph.is_compl root then `Sat (Array.make (Graph.num_pis g) false) else `Const0
  else begin
    (* Cone membership by downward marking (ids are topological). *)
    let mark = Array.make (Graph.num_nodes g) false in
    mark.(root_id) <- true;
    for id = root_id downto 1 do
      if mark.(id) && not (Graph.is_pi g id) then begin
        mark.(Graph.node_of (Graph.fanin0 g id)) <- true;
        mark.(Graph.node_of (Graph.fanin1 g id)) <- true
      end
    done;
    mark.(0) <- false;
    (* DFS first-appearance order (also collects the cone's PI support). *)
    let dfs_order = Array.make (Graph.num_pis g) (-1) in
    let nlev = ref 0 in
    let seen = Array.make (Graph.num_nodes g) false in
    let stack = Stack.create () in
    Stack.push root_id stack;
    while not (Stack.is_empty stack) do
      let id = Stack.pop stack in
      if (not seen.(id)) && not (Graph.is_const id) then begin
        seen.(id) <- true;
        if Graph.is_pi g id then begin
          dfs_order.(Graph.pi_index g id) <- !nlev;
          incr nlev
        end
        else begin
          Stack.push (Graph.node_of (Graph.fanin1 g id)) stack;
          Stack.push (Graph.node_of (Graph.fanin0 g id)) stack
        end
      end
    done;
    let nlev = !nlev in
    (* Stride-interleave orders over the support in declaration order:
       split into [s] equal chunks and zip them (s_0 of each chunk, then
       s_1 of each, ...).  When the cone compares or muxes [s] operand
       words declared back to back this pairs up the same-weight bits
       a_i,b_i,...  — the order under which comparator, adder and word-mux
       BDDs stay polynomial.  [s = 1] is plain PI declaration order (best
       when the cone sums one contiguous input range). *)
    let support = ref [] in
    Array.iteri (fun pi lev -> if lev >= 0 then support := pi :: !support) dfs_order;
    let support = Array.of_list (List.rev !support) in
    let k = Array.length support in
    let stride_zip s =
      let order = Array.make (Graph.num_pis g) (-1) in
      let chunk = (k + s - 1) / s in
      let pos = ref 0 in
      for i = 0 to chunk - 1 do
        for j = 0 to s - 1 do
          let t = (j * chunk) + i in
          if t < k then begin
            order.(support.(t)) <- !pos;
            incr pos
          end
        done
      done;
      order
    in
    let candidates = [| dfs_order; stride_zip 2; stride_zip 4; stride_zip 1 |] in
    (* Sibling outputs of one circuit tend to favour the same order, so
       try the last winner ([hint]) first before sweeping the rest. *)
    let n = Array.length candidates in
    let rec try_orders = function
      | [] -> `Gave_up
      | i :: rest -> (
          match bdd_compile ~limit g ~mark ~order:candidates.(i) ~nlev ~root with
          | `Gave_up -> try_orders rest
          | decided ->
              hint := i;
              decided)
    in
    try_orders (!hint :: List.filter (fun i -> i <> !hint) (List.init n Fun.id))
  end

(* ---------- The decision portfolio ---------- *)

let default_rounds = 1024

let closed m = Graph.po_lit m

let all_pos_const0 m =
  let ok = ref true in
  for o = 0 to Graph.num_pos m - 1 do
    if closed m o <> Graph.const0 then ok := false
  done;
  !ok

let run ?(seed = 1) ?(rounds = default_rounds) ?(effort = Thorough) a b =
  if Graph.num_pis a <> Graph.num_pis b then
    invalid_arg "Verify.Cec.run: PI count mismatch";
  if Graph.num_pos a <> Graph.num_pos b then
    invalid_arg "Verify.Cec.run: PO count mismatch";
  let npis = Graph.num_pis a and npos = Graph.num_pos a in
  let exhaustive_limit, support_limit, sweep_iters, cut_k, cut_max, bdd_limit =
    match effort with
    | Fast -> (12, 12, 3, 6, 8, 50_000)
    | Thorough -> (14, 16, 10, 8, 12, 1_000_000)
  in
  if npos = 0 then Equivalent
  else if npis = 0 then begin
    (* Constant circuits: a single direct evaluation decides. *)
    let va = eval_graph a [||] and vb = eval_graph b [||] in
    match Array.to_list (Array.init npos (fun o -> (o, va.(o), vb.(o)))) with
    | _ when va = vb -> Equivalent
    | l ->
        let o, x, y = List.find (fun (_, x, y) -> x <> y) l in
        Inequivalent { inputs = [||]; po = o; value_a = x; value_b = y }
  end
  else if npis <= exhaustive_limit then begin
    let pats = Sim.Patterns.exhaustive ~npis in
    match first_diff a b pats with
    | Some d ->
        let cex = cex_at a b pats d in
        if holds a b cex then Inequivalent cex
        else Undecided "internal: refutation failed independent validation"
    | None -> Equivalent
  end
  else begin
    (* Random refutation first: cheap, and the only source of
       counterexamples for wide circuits. *)
    let rng = Logic.Rng.create seed in
    let pats = Sim.Patterns.random rng ~npis ~len:(max 62 rounds) in
    match first_diff a b pats with
    | Some d ->
        let cex = cex_at a b pats d in
        if holds a b cex then Inequivalent cex
        else Undecided "internal: refutation failed independent validation"
    | None -> (
        (* Prove: reduce the miter to constants by alternating cut sweeping
           with signature-guided fraig merging. *)
        let m = ref (Graph.compact (miter a b)) in
        let progress = ref true in
        let iters = ref 0 in
        while !progress && (not (all_pos_const0 !m)) && !iters < sweep_iters do
          incr iters;
          let g1, n1 = cut_sweep ~k:cut_k ~max_cuts:cut_max !m in
          let g2, n2 =
            Sim.Fraig.sweep ~max_support:(min 14 support_limit) ~rounds:256 ~seed g1
          in
          m := g2;
          progress := n1 + n2 > 0
        done;
        if all_pos_const0 !m then Equivalent
        else begin
          (* Per-output support closure on the reduced miter. *)
          let sup = pi_supports !m in
          let unresolved = ref [] in
          let refuted = ref None in
          (* Sibling outputs of one miter share cone structure, so once a
             couple of them have exhausted every BDD order the rest will
             too — stop burning the budget on them and report Undecided
             in bounded time. *)
          let bdd_fuel = ref 2 in
          let order_hint = ref 0 in
          for o = npos - 1 downto 0 do
            let l = closed !m o in
            if l = Graph.const0 then ()
            else begin
              let mask = sup.(Graph.node_of l) in
              let width = Bitvec.popcount mask in
              if width > support_limit then begin
                (* Too wide for truth tables: compile the cone to a BDD. *)
                if !bdd_fuel > 0 then
                  match bdd_decide ~limit:bdd_limit ~hint:order_hint !m ~po:o with
                  | `Const0 -> ()
                  | `Sat inputs ->
                      let cex = mk_cex a b ~inputs ~po:o in
                      if holds a b cex then refuted := Some cex
                      else unresolved := (o, width) :: !unresolved
                  | `Gave_up ->
                      decr bdd_fuel;
                      unresolved := (o, width) :: !unresolved
                else unresolved := (o, width) :: !unresolved
              end
              else begin
                let support_pis = ref [] in
                Bitvec.iter_set mask (fun i -> support_pis := i :: !support_pis);
                let support_pis = Array.of_list (List.rev !support_pis) in
                let spats = support_patterns ~npis ~support_pis in
                let po = (Sim.Engine.simulate_pos !m spats).(o) in
                if not (Bitvec.is_zero po) then begin
                  let exception Found of int in
                  let round =
                    try
                      Bitvec.iter_set po (fun r -> raise (Found r));
                      assert false
                    with Found r -> r
                  in
                  let inputs = Array.map (fun p -> Bitvec.get p round) spats in
                  let cex = mk_cex a b ~inputs ~po:o in
                  if holds a b cex then refuted := Some cex
                  else unresolved := (o, width) :: !unresolved
                end
              end
            end
          done;
          match !refuted with
          | Some cex -> Inequivalent cex
          | None ->
              if !unresolved = [] then Equivalent
              else
                Undecided
                  (Printf.sprintf
                     "%d of %d outputs undecided after %d sweep iterations \
                      (widest remaining support %d > limit %d, BDD budget %d \
                      nodes exhausted)"
                     (List.length !unresolved) npos !iters
                     (List.fold_left (fun acc (_, w) -> max acc w) 0 !unresolved)
                     support_limit bdd_limit)
        end)
  end

let run_mapped ?seed ?rounds ?effort a m =
  run ?seed ?rounds ?effort a (Techmap.Mapped.to_graph m)

let verdict_to_string = function
  | Equivalent -> "equivalent"
  | Inequivalent cex ->
      Printf.sprintf "inequivalent at output %d (A=%b, B=%b) under inputs %s" cex.po
        cex.value_a cex.value_b
        (String.concat ""
           (List.map (fun b -> if b then "1" else "0") (Array.to_list cex.inputs)))
  | Undecided msg -> "undecided: " ^ msg
