(** Combinational equivalence checking by miter reduction.

    The repository is simulation-only (no SAT solver, matching the paper's
    flow), so equivalence is decided by a portfolio of exact,
    simulation-guided methods:

    - {b random refutation}: both circuits are simulated on a shared seeded
      pattern set; any disagreeing round is a counterexample;
    - {b exhaustive closure}: circuits with few enough PIs are simulated on
      all [2^n] input vectors — a complete decision procedure;
    - {b miter sweeping}: for wider circuits a miter is built (one
      XOR-output per PO pair; identical substructure is shared by strashing)
      and reduced to fixpoint by alternating cut sweeping (nodes proven
      equal by identical truth tables on an identical cut) with
      {!Sim.Fraig.sweep} (signature-guided candidate classes closed by
      truth-table proofs on small PI supports);
    - {b support closure}: each miter output whose structural PI support is
      small is decided by exhaustive simulation over that support alone;
    - {b BDD closure}: residual outputs too wide for truth tables are
      compiled cone-by-cone to a budgeted {!Bdd} — canonical, so the false
      terminal is a proof and any other result yields a counterexample.

    Every path is exact: [Equivalent] is a proof, [Inequivalent] carries a
    concrete input vector (validated against both circuits), and inputs the
    portfolio cannot decide return [Undecided] rather than a guess.

    Known frontier: the portfolio proves local exact transforms on every
    benchmark of the suite and closes cross-architecture adder miters
    (e.g. ripple-carry vs carry-lookahead), but wide compressor-tree
    majority logic (the 101-input voter) defeats both truth-table and BDD
    closure — deciding it needs a SAT backend, which the repository
    deliberately omits.  Such inputs return [Undecided] in bounded time. *)

type counterexample = {
  inputs : bool array;  (** one value per PI, index = PI position *)
  po : int;  (** an output on which the circuits disagree *)
  value_a : bool;  (** first circuit's value of that PO *)
  value_b : bool;  (** second circuit's value *)
}

type verdict =
  | Equivalent  (** proven functionally equal on every input *)
  | Inequivalent of counterexample
  | Undecided of string
      (** the bounded portfolio could not decide; the message says which
          outputs resisted and why *)

type effort =
  | Fast  (** bounded for in-flow certification: fewer sweep iterations,
              narrower cuts and supports *)
  | Thorough  (** CLI / test-suite default *)

val run :
  ?seed:int ->
  ?rounds:int ->
  ?effort:effort ->
  Aig.Graph.t ->
  Aig.Graph.t ->
  verdict
(** [run a b] checks the circuits output-by-output.  Defaults: [seed = 1],
    [rounds = 1024] random refutation rounds, [effort = Thorough].  The
    result is deterministic in the seed.  Raises [Invalid_argument] if the
    PI or PO counts differ (no counterexample vector can describe an
    interface mismatch). *)

val run_mapped :
  ?seed:int ->
  ?rounds:int ->
  ?effort:effort ->
  Aig.Graph.t ->
  Techmap.Mapped.t ->
  verdict
(** Check an AIG against a technology-mapped netlist
    ({!Techmap.Mapped.to_graph} bridges the representations). *)

val miter : Aig.Graph.t -> Aig.Graph.t -> Aig.Graph.t
(** The shared-PI miter: output [o] is [po_a(o) XOR po_b(o)], so the
    circuits are equivalent iff every miter output is constant false.
    Structural hashing shares identical logic between the two halves. *)

val holds : Aig.Graph.t -> Aig.Graph.t -> counterexample -> bool
(** Validate a counterexample by direct (non-word-parallel) evaluation of
    both circuits: true iff the recorded values are reproduced and differ. *)

val verdict_to_string : verdict -> string
