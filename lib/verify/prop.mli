(** Property-based testing over random circuits, with shrinking.

    [check] runs a property over circuits generated from consecutive seeds;
    on failure the circuit is shrunk toward a minimal counterexample
    (dropping outputs, collapsing gates onto their fanins or constants) and
    optionally dumped as an AIGER file so CI can archive it.  Every case is
    reproducible from its printed seed. *)

type failure = {
  case_seed : int;  (** pass this to {!Gen.random} to rebuild the circuit *)
  message : string;  (** the property's error for the shrunk circuit *)
  original : Aig.Graph.t;
  shrunk : Aig.Graph.t;
  shrink_steps : int;  (** accepted reductions *)
  dump : string option;  (** AIGER path of the shrunk circuit, if written *)
}

type outcome = Passed of int | Failed of failure

val check :
  ?profile:Gen.profile ->
  ?dump_dir:string ->
  name:string ->
  seed:int ->
  count:int ->
  (Aig.Graph.t -> (unit, string) result) ->
  outcome
(** [check ~name ~seed ~count prop] evaluates [prop] on the circuits
    [Gen.random (seed + i)] for [i < count], stopping at the first failure.
    An exception escaping [prop] counts as a failure with the exception
    text.  When [dump_dir] is given — or the [ALSRAC_PROP_DUMP] environment
    variable is set — the shrunk counterexample is written there as
    [<name>-seed<k>.aag] (directory created on demand; dump errors are
    swallowed, the failure is reported either way). *)

val failure_to_string : name:string -> failure -> string
(** One line with the failing seed, the message, and the shrunk sizes —
    what a test harness should print. *)

val check_exn :
  ?profile:Gen.profile ->
  ?dump_dir:string ->
  name:string ->
  seed:int ->
  count:int ->
  (Aig.Graph.t -> (unit, string) result) ->
  unit
(** Like {!check} but raises [Failure] with {!failure_to_string} on a
    failing case. *)
