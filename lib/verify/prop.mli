(** Property-based testing over random circuits, with shrinking.

    [check] runs a property over circuits generated from consecutive seeds;
    on failure the circuit is shrunk toward a minimal counterexample
    (dropping outputs, collapsing gates onto their fanins or constants) and
    optionally dumped as an AIGER file so CI can archive it.  Every case is
    reproducible from its printed seed. *)

type failure = {
  case_seed : int;  (** pass this to {!Gen.random} to rebuild the circuit *)
  message : string;  (** the property's error for the shrunk circuit *)
  original : Aig.Graph.t;
  shrunk : Aig.Graph.t;
  shrink_steps : int;  (** accepted reductions *)
  dump : string option;  (** AIGER path of the shrunk circuit, if written *)
}

type outcome = Passed of int | Failed of failure

val check :
  ?profile:Gen.profile ->
  ?dump_dir:string ->
  name:string ->
  seed:int ->
  count:int ->
  (Aig.Graph.t -> (unit, string) result) ->
  outcome
(** [check ~name ~seed ~count prop] evaluates [prop] on the circuits
    [Gen.random (seed + i)] for [i < count], stopping at the first failure.
    An exception escaping [prop] counts as a failure with the exception
    text.  When [dump_dir] is given — or the [ALSRAC_PROP_DUMP] environment
    variable is set — the shrunk counterexample is written there as
    [<name>-seed<k>.aag] (directory created on demand; dump errors are
    swallowed, the failure is reported either way). *)

val failure_to_string : name:string -> failure -> string
(** One line with the failing seed, the message, and the shrunk sizes —
    what a test harness should print. *)

val check_exn :
  ?profile:Gen.profile ->
  ?dump_dir:string ->
  name:string ->
  seed:int ->
  count:int ->
  (Aig.Graph.t -> (unit, string) result) ->
  unit
(** Like {!check} but raises [Failure] with {!failure_to_string} on a
    failing case. *)

(** {1 Generic values}

    The same check-and-shrink discipline for properties over arbitrary
    values (Pareto fronts, policy states, work lists ...), with
    caller-supplied generation and shrinking. *)

type 'a value_failure = {
  v_case_seed : int;  (** pass to [gen] to rebuild the original *)
  v_message : string;  (** the property's error for the shrunk value *)
  v_original : 'a;
  v_shrunk : 'a;
  v_shrink_steps : int;
}

type 'a value_outcome = Value_passed of int | Value_failed of 'a value_failure

val check_value :
  name:string ->
  seed:int ->
  count:int ->
  gen:(int -> 'a) ->
  shrink:('a -> 'a list) ->
  ('a -> (unit, string) result) ->
  'a value_outcome
(** [check_value ~name ~seed ~count ~gen ~shrink prop] evaluates [prop]
    on [gen (seed + i)] for [i < count], stopping at the first failure,
    which is then shrunk greedily: [shrink v] proposes smaller variants
    in preference order, the first still-failing one is adopted, and the
    loop repeats until no variant fails (or a step budget runs out).
    [shrink] returning [[]] disables shrinking.  An exception escaping
    [prop] counts as a failure with the exception text; determinism is
    the caller's contract — [gen] and [prop] must depend only on their
    arguments. *)

val check_value_exn :
  name:string ->
  seed:int ->
  count:int ->
  gen:(int -> 'a) ->
  shrink:('a -> 'a list) ->
  repr:('a -> string) ->
  ('a -> (unit, string) result) ->
  unit
(** Like {!check_value} but raises [Failure] naming the seed, the
    message and [repr] of the shrunk counterexample. *)
