(** Reduced ordered binary decision diagrams with a node budget.

    The last-resort exact decision procedure of {!Cec}: miter outputs whose
    cones resist sweeping and are too wide for truth-table closure are
    compiled to a BDD — canonical, so the cone is constant false iff its
    BDD is the false terminal, and any other BDD yields a satisfying input
    (a counterexample) by walking one path to the true terminal.

    The manager is deliberately minimal: hash-consed nodes, an ITE cache,
    and a hard node budget ({!Node_limit}) so a cone with an exploding BDD
    degrades into "undecided" instead of consuming the machine. *)

type mgr
(** A manager owns every node it created; nodes from different managers must
    not be mixed. *)

type node
(** A BDD rooted at a hash-consed node; structural equality decides
    functional equality within one manager. *)

exception Node_limit
(** Raised by any operation that would allocate past the manager's budget.
    The manager stays usable (the partial results are just abandoned). *)

val create : ?limit:int -> nvars:int -> unit -> mgr
(** [limit] bounds live nodes (default [1_000_000]). [nvars] is the
    variable universe; variable index doubles as its order level. *)

val cfalse : mgr -> node
val ctrue : mgr -> node

val var : mgr -> int -> node
(** Raises [Invalid_argument] outside [0 .. nvars-1]. *)

val not_ : mgr -> node -> node
val and_ : mgr -> node -> node -> node
val xor_ : mgr -> node -> node -> node

val is_false : mgr -> node -> bool

val num_nodes : mgr -> int
(** Nodes allocated so far (terminals included).  Allocation is cumulative —
    nothing is freed — so callers compiling long node chains should migrate
    their live roots to a fresh manager with {!copy_to} when this
    approaches the budget (mark-compact collection). *)

val copy_to : src:mgr -> dst:mgr -> node array -> node array
(** Rebuild the given roots inside [dst], preserving shared structure
    (one memo table across all roots).  The managers must share the same
    variable universe. *)

val any_sat : mgr -> node -> (int * bool) list
(** A satisfying partial assignment [(variable, value)] for a non-false
    node; variables not listed are don't-cares.  Raises [Invalid_argument]
    on the false terminal. *)
