module Graph = Aig.Graph

type failure = {
  case_seed : int;
  message : string;
  original : Graph.t;
  shrunk : Graph.t;
  shrink_steps : int;
  dump : string option;
}

type outcome = Passed of int | Failed of failure

(* Copy of [g] keeping only the output at index [keep] (PIs preserved). *)
let restrict_po g keep =
  let g' = Graph.create ~name:(Graph.name g) () in
  let map = Array.make (Graph.num_nodes g) Graph.const0 in
  for i = 0 to Graph.num_pis g - 1 do
    map.(Graph.pi_node g i) <- Graph.add_pi ~name:(Graph.pi_name g i) g'
  done;
  let lit l = Graph.lit_not_cond map.(Graph.node_of l) (Graph.is_compl l) in
  Graph.iter_ands g (fun id ->
      map.(id) <- Graph.and_ g' (lit (Graph.fanin0 g id)) (lit (Graph.fanin1 g id)));
  Graph.iter_pos g (fun o l ->
      if o = keep then ignore (Graph.add_po ~name:(Graph.po_name g o) g' (lit l)));
  Graph.compact g'

let replace_node g id l =
  Graph.compact
    (Graph.rebuild ~replace:(fun i -> if i = id then Some (Graph.Replace_lit l) else None) g)

(* Greedy shrinking: accept the first strictly smaller variant that still
   fails, restart from it, stop when a full pass yields nothing (or the
   attempt budget runs out). *)
let shrink fails g0 msg0 =
  let cur = ref g0 and msg = ref msg0 and steps = ref 0 in
  let budget = ref 4000 in
  let smaller c =
    Graph.num_ands c < Graph.num_ands !cur || Graph.num_pos c < Graph.num_pos !cur
  in
  let accept c m =
    cur := c;
    msg := m;
    incr steps
  in
  let try_candidate c =
    decr budget;
    if smaller c then
      match fails c with
      | Some m ->
          accept c m;
          true
      | None -> false
    else false
  in
  let improved = ref true in
  while !improved && !budget > 0 do
    improved := false;
    (* 1. Single-output restriction. *)
    if Graph.num_pos !cur > 1 then begin
      let npos = Graph.num_pos !cur in
      let o = ref 0 in
      while (not !improved) && !o < npos && !budget > 0 do
        if try_candidate (restrict_po !cur !o) then improved := true;
        incr o
      done
    end;
    (* 2. Collapse a gate onto a fanin or a constant, newest first. *)
    if not !improved then begin
      let ands = ref [] in
      Graph.iter_ands !cur (fun id -> ands := id :: !ands);
      let rec over_nodes = function
        | [] -> ()
        | id :: rest when !budget > 0 ->
            let g = !cur in
            let candidates =
              [ Graph.fanin0 g id; Graph.fanin1 g id; Graph.const0 ]
            in
            if List.exists (fun l -> try_candidate (replace_node g id l)) candidates
            then improved := true
            else over_nodes rest
        | _ -> ()
      in
      over_nodes !ands
    end
  done;
  (!cur, !msg, !steps)

let sanitize name =
  String.map (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '-')
    name

let dump_counterexample ~dump_dir ~name ~case_seed shrunk =
  match dump_dir with
  | None -> None
  | Some dir -> (
      try
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let path =
          Filename.concat dir (Printf.sprintf "%s-seed%d.aag" (sanitize name) case_seed)
        in
        Circuit_io.Aiger.write_graph path shrunk;
        Some path
      with _ -> None)

let check ?(profile = Gen.default) ?dump_dir ~name ~seed ~count prop =
  let dump_dir =
    match dump_dir with Some d -> Some d | None -> Sys.getenv_opt "ALSRAC_PROP_DUMP"
  in
  let prop g =
    try prop g
    with e -> Error (Printf.sprintf "exception: %s" (Printexc.to_string e))
  in
  let fails g = match prop g with Error m -> Some m | Ok () -> None in
  let rec loop i =
    if i >= count then Passed count
    else begin
      let case_seed = seed + i in
      let g = Gen.random ~profile case_seed in
      match fails g with
      | None -> loop (i + 1)
      | Some msg ->
          let shrunk, message, shrink_steps = shrink fails g msg in
          let dump = dump_counterexample ~dump_dir ~name ~case_seed shrunk in
          Failed { case_seed; message; original = g; shrunk; shrink_steps; dump }
    end
  in
  loop 0

let failure_to_string ~name f =
  Printf.sprintf
    "property %s failed at seed %d: %s (shrunk %d->%d ands, %d->%d pos in %d steps%s)"
    name f.case_seed f.message (Graph.num_ands f.original) (Graph.num_ands f.shrunk)
    (Graph.num_pos f.original) (Graph.num_pos f.shrunk) f.shrink_steps
    (match f.dump with Some p -> ", dumped to " ^ p | None -> "")

let check_exn ?profile ?dump_dir ~name ~seed ~count prop =
  match check ?profile ?dump_dir ~name ~seed ~count prop with
  | Passed _ -> ()
  | Failed f -> failwith (failure_to_string ~name f)

(* ---------- Generic values ---------- *)

type 'a value_failure = {
  v_case_seed : int;
  v_message : string;
  v_original : 'a;
  v_shrunk : 'a;
  v_shrink_steps : int;
}

type 'a value_outcome = Value_passed of int | Value_failed of 'a value_failure

(* Same greedy discipline as the circuit shrinker: adopt the first
   proposed variant that still fails, restart from it, stop when a full
   proposal list passes (or the budget runs out).  Termination is the
   shrinker's contract (variants should be strictly "smaller"); the
   budget bounds a cyclic shrinker regardless. *)
let shrink_value fails shrink v0 msg0 =
  let cur = ref v0 and msg = ref msg0 and steps = ref 0 in
  let budget = ref 2000 in
  let improved = ref true in
  while !improved && !budget > 0 do
    improved := false;
    let rec try_variants = function
      | [] -> ()
      | v :: rest when !budget > 0 -> (
          decr budget;
          match fails v with
          | Some m ->
              cur := v;
              msg := m;
              incr steps;
              improved := true
          | None -> try_variants rest)
      | _ -> ()
    in
    try_variants (shrink !cur)
  done;
  (!cur, !msg, !steps)

let check_value ~name:_ ~seed ~count ~gen ~shrink prop =
  let prop v =
    try prop v
    with e -> Error (Printf.sprintf "exception: %s" (Printexc.to_string e))
  in
  let fails v = match prop v with Error m -> Some m | Ok () -> None in
  let rec loop i =
    if i >= count then Value_passed count
    else begin
      let v_case_seed = seed + i in
      let v = gen v_case_seed in
      match fails v with
      | None -> loop (i + 1)
      | Some msg ->
          let v_shrunk, v_message, v_shrink_steps = shrink_value fails shrink v msg in
          Value_failed
            { v_case_seed; v_message; v_original = v; v_shrunk; v_shrink_steps }
    end
  in
  loop 0

let check_value_exn ~name ~seed ~count ~gen ~shrink ~repr prop =
  match check_value ~name ~seed ~count ~gen ~shrink prop with
  | Value_passed _ -> ()
  | Value_failed f ->
      failwith
        (Printf.sprintf "property %s failed at seed %d: %s (shrunk in %d steps: %s)"
           name f.v_case_seed f.v_message f.v_shrink_steps (repr f.v_shrunk))
