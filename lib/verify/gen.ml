module Graph = Aig.Graph
module Rng = Logic.Rng

type profile = {
  npis : int;
  npos : int;
  nands : int;
  reconv : float;
  compl_p : float;
}

let default = { npis = 8; npos = 3; nands = 60; reconv = 0.5; compl_p = 0.5 }

let random ?(profile = default) seed =
  let p = profile in
  if p.npis <= 0 || p.npos <= 0 || p.nands < 0 then
    invalid_arg "Verify.Gen.random: non-positive profile counts";
  let rng = Rng.create seed in
  let g = Graph.create ~name:(Printf.sprintf "gen%d" seed) () in
  let lits = Array.make (p.npis + p.nands) Graph.const0 in
  for i = 0 to p.npis - 1 do
    lits.(i) <- Graph.add_pi g
  done;
  let navail = ref p.npis in
  let seen = Hashtbl.create (p.npis + p.nands) in
  for i = 0 to p.npis - 1 do
    Hashtbl.replace seen (Graph.node_of lits.(i)) ()
  done;
  let window = max 2 (p.nands / 8) in
  let pick () =
    let idx =
      if !navail > window && Rng.float rng < p.reconv then
        !navail - 1 - Rng.int rng window
      else Rng.int rng !navail
    in
    let l = lits.(idx) in
    if Rng.float rng < p.compl_p then Graph.lit_not l else l
  in
  (* Strashing may fold an attempt into a constant or an existing signal;
     only genuinely new gates enter the pool, so the AND count is honest. *)
  let attempts = ref 0 in
  while !navail < p.npis + p.nands && !attempts < 8 * (p.nands + 1) do
    incr attempts;
    let l = Graph.and_ g (pick ()) (pick ()) in
    let id = Graph.node_of l in
    if id > 0 && not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      lits.(!navail) <- l;
      incr navail
    end
  done;
  (* POs drive the most recent distinct signals (wrapping when the pool is
     small), each in a random phase. *)
  for o = 0 to p.npos - 1 do
    let l = lits.(!navail - 1 - (o mod !navail)) in
    ignore
      (Graph.add_po ~name:(Printf.sprintf "po%d" o) g
         (if Rng.bool rng then Graph.lit_not l else l))
  done;
  g

(* ---------- Mutations ---------- *)

type mutation =
  | Flip_polarity of { node : int; side : int }
  | Swap_fanin of { node : int; side : int; with_lit : Graph.lit }

let mutation_to_string = function
  | Flip_polarity { node; side } ->
      Printf.sprintf "flip polarity of fanin %d of gate %d" side node
  | Swap_fanin { node; side; with_lit } ->
      Printf.sprintf "swap fanin %d of gate %d with literal %d" side node with_lit

(* AND gates in the transitive fanin of at least one PO. *)
let live_ands g =
  let mark = Array.make (Graph.num_nodes g) false in
  let rec visit id =
    if not mark.(id) then begin
      mark.(id) <- true;
      if Graph.is_and g id then begin
        visit (Graph.node_of (Graph.fanin0 g id));
        visit (Graph.node_of (Graph.fanin1 g id))
      end
    end
  in
  Graph.iter_pos g (fun _ l -> visit (Graph.node_of l));
  let acc = ref [] in
  for id = Graph.num_nodes g - 1 downto 0 do
    if mark.(id) && Graph.is_and g id then acc := id :: !acc
  done;
  !acc

let apply g mutation =
  let g' = Graph.create ~name:(Graph.name g ^ "-mut") () in
  let map = Array.make (Graph.num_nodes g) Graph.const0 in
  for i = 0 to Graph.num_pis g - 1 do
    map.(Graph.pi_node g i) <- Graph.add_pi ~name:(Graph.pi_name g i) g'
  done;
  let lit l = Graph.lit_not_cond map.(Graph.node_of l) (Graph.is_compl l) in
  Graph.iter_ands g (fun id ->
      let f0 = ref (lit (Graph.fanin0 g id)) and f1 = ref (lit (Graph.fanin1 g id)) in
      (match mutation with
      | Flip_polarity { node; side } when node = id ->
          if side = 0 then f0 := Graph.lit_not !f0 else f1 := Graph.lit_not !f1
      | Swap_fanin { node; side; with_lit } when node = id ->
          (* [with_lit] names a node below [id], so it is already mapped. *)
          let wl = lit with_lit in
          if side = 0 then f0 := wl else f1 := wl
      | _ -> ());
      map.(id) <- Graph.and_ g' !f0 !f1);
  Graph.iter_pos g (fun o l -> ignore (Graph.add_po ~name:(Graph.po_name g o) g' (lit l)));
  g'

let mutate ~seed g =
  let rng = Rng.create seed in
  match live_ands g with
  | [] -> None
  | live ->
      let live = Array.of_list live in
      let target = live.(Rng.int rng (Array.length live)) in
      let side = Rng.int rng 2 in
      let mutation =
        if Rng.bool rng then Flip_polarity { node = target; side }
        else begin
          (* Replacement fanin: any non-constant node strictly below the
             target (acyclicity for free), in a random phase. *)
          let below = ref [] in
          for id = target - 1 downto 1 do
            if Graph.is_pi g id || Graph.is_and g id then below := id :: !below
          done;
          match !below with
          | [] -> Flip_polarity { node = target; side }
          | l ->
              let arr = Array.of_list l in
              let with_node = arr.(Rng.int rng (Array.length arr)) in
              Swap_fanin
                { node = target; side; with_lit = Graph.make_lit with_node (Rng.bool rng) }
        end
      in
      Some (apply g mutation, mutation)
