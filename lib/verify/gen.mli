(** Seeded random-circuit generation for verification workloads.

    Everything here is a pure function of an integer seed (through
    {!Logic.Rng}): no wall-clock, no [Random.self_init], consistent with the
    determinism rules of [lib/parallel].  Equal seeds yield structurally
    identical graphs, so a failing seed printed by a test reproduces the
    exact circuit anywhere. *)

type profile = {
  npis : int;  (** primary inputs *)
  npos : int;  (** primary outputs *)
  nands : int;  (** target AND count (strashing may fold a few away) *)
  reconv : float;
      (** probability in [0,1] of drawing a fanin from the most recent
          window of signals instead of uniformly — higher values create
          deeper, more reconvergent cones *)
  compl_p : float;  (** probability of complementing each fanin edge *)
}

val default : profile
(** [{ npis = 8; npos = 3; nands = 60; reconv = 0.5; compl_p = 0.5 }] —
    small enough that equivalence checks close exhaustively, structured
    enough to exercise rewriting and refactoring. *)

val random : ?profile:profile -> int -> Aig.Graph.t
(** [random seed] builds a fresh graph.  The result always has exactly
    [npis] PIs and [npos] POs, passes {!Aig.Check.check}, and contains at
    most [nands] AND gates.  Raises [Invalid_argument] on a non-positive
    PI/PO count. *)

(** {1 Seeded mutations}

    Single-gate faults for checker self-tests: a correct equivalence
    checker must flag every mutation that changes the function. *)

type mutation =
  | Flip_polarity of { node : int; side : int }
      (** complement fanin [side] (0 or 1) of gate [node] *)
  | Swap_fanin of { node : int; side : int; with_lit : Aig.Graph.lit }
      (** replace fanin [side] of gate [node] with an unrelated literal *)

val mutation_to_string : mutation -> string

val mutate : seed:int -> Aig.Graph.t -> (Aig.Graph.t * mutation) option
(** Apply one seeded random mutation to a gate lying in the transitive
    fanin of at least one PO.  [None] if the graph has no such gate.  The
    input graph is not modified.  The mutated gate is live but not
    necessarily observable, so the result {e may} still compute the same
    function — callers that need a guaranteed functional change must screen
    with an oracle (the test-suite uses exhaustive naive evaluation). *)
