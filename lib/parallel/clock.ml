let now_s () = Unix.gettimeofday ()

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let ns_to_s ns = Int64.to_float ns /. 1e9
