(** Domain-based worker pool with per-worker deques and work stealing.

    A pool of [jobs] lanes: lane 0 is the submitting (caller) domain, lanes
    1..jobs-1 are spawned worker domains.  Each lane owns a deque — the
    owner pushes/pops at the bottom, idle lanes steal from the top of other
    lanes' deques.  [jobs = 1] spawns no domains and runs every task eagerly
    on the caller, which is exactly the sequential semantics the
    deterministic call sites fall back to.

    The pool itself makes no ordering promises; determinism is provided one
    level up by {!Chunk} (fixed chunk boundaries, ordered reduction).

    {b Await helps}: a lane blocked in {!await} executes pending pool tasks
    itself, so tasks may freely submit and await sub-tasks on the same pool
    without deadlock.

    {b Exceptions} raised by a task are captured and re-raised (with the
    original backtrace) by {!await}; a failed task never kills a worker and
    the pool remains usable afterwards. *)

type t

type 'a future

type stat = {
  worker : int;  (** lane index; 0 is the caller *)
  tasks : int;  (** tasks this lane executed *)
  steals : int;  (** tasks it took from another lane's deque *)
  busy_ns : int64;  (** wall time spent executing tasks *)
  idle_ns : int64;  (** wall time spent parked waiting for work *)
}

val cpu_count : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains ([jobs] is clamped to
    [1..64]); [jobs = 0] means {!cpu_count}. *)

val size : t -> int
(** Total lanes, caller included. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Await all outstanding futures first;
    tasks still queued at shutdown are dropped.  Idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create] / run / [shutdown], exception-safe. *)

val async : t -> (unit -> 'a) -> 'a future
(** Submit a task to the calling lane's deque (lane 0 when the caller is not
    a pool member). *)

val await : t -> 'a future -> 'a
(** Wait for the result, executing other pool tasks while pending.
    Re-raises the task's exception if it failed. *)

val run : t -> (unit -> 'a) -> 'a
(** [await t (async t f)]. *)

val stats : t -> stat array
(** Per-lane counters since creation (or the last {!reset_stats}). *)

val reset_stats : t -> unit

val pp_stats : Format.formatter -> stat array -> unit
(** One line per worker: tasks, steals, busy/idle seconds. *)
