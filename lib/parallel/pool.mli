(** Domain-based worker pool with per-worker deques and work stealing.

    A pool of [jobs] lanes: lane 0 is the submitting (caller) domain, lanes
    1..jobs-1 are spawned worker domains.  Each lane owns a deque — the
    owner pushes/pops at the bottom, idle lanes steal from the top of other
    lanes' deques.  [jobs = 1] spawns no domains and runs every task eagerly
    on the caller, which is exactly the sequential semantics the
    deterministic call sites fall back to.

    The pool itself makes no ordering promises; determinism is provided one
    level up by {!Chunk} (fixed chunk boundaries, ordered reduction).

    {b Await helps}: a lane blocked in {!await} executes pending pool tasks
    itself, so tasks may freely submit and await sub-tasks on the same pool
    without deadlock.

    {b Exceptions} raised by a task are captured and re-raised (with the
    original backtrace) by {!await}; a failed task never kills a worker and
    the pool remains usable afterwards. *)

type t

type 'a future

exception Cancelled
(** Failure value of a task that was skipped because the pool's
    {!set_should_stop} hook fired before the task body ran; re-raised by
    {!await} on the skipped task's future. *)

type stat = {
  worker : int;  (** lane index; 0 is the caller *)
  tasks : int;  (** tasks this lane executed *)
  steals : int;  (** tasks it took from another lane's deque *)
  busy_ns : int64;  (** wall time spent executing tasks *)
  idle_ns : int64;  (** wall time spent parked waiting for work *)
}

val cpu_count : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains ([jobs] is clamped to
    [1..64]); [jobs = 0] means {!cpu_count}. *)

val size : t -> int
(** Total lanes, caller included. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Await all outstanding futures first;
    tasks still queued at shutdown are dropped.  Idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create] / run / [shutdown], exception-safe. *)

val async : t -> (unit -> 'a) -> 'a future
(** Submit a task to the calling lane's deque (lane 0 when the caller is not
    a pool member). *)

val await : t -> 'a future -> 'a
(** Wait for the result, executing other pool tasks while pending.
    Re-raises the task's exception if it failed. *)

val run : t -> (unit -> 'a) -> 'a
(** [await t (async t f)]. *)

(** {1 Cooperative cancellation}

    Without a hook, a task enqueued on the pool always runs to completion,
    even after its caller has abandoned the result.  Installing a
    [should_stop] hook makes abandonment observable: the hook is consulted
    immediately before every task body — for {!Chunk} computations that is
    exactly the chunk boundaries — and once it returns [true], every
    not-yet-started task fails with {!Cancelled} instead of executing.
    Tasks already mid-body are never interrupted (cancellation is
    cooperative, a wedged task is a bug in the task), so the pool is always
    in a consistent state afterwards and stays fully usable: clear the hook
    and submit new work. *)

val set_should_stop : t -> (unit -> bool) option -> unit
(** Install ([Some f]) or clear ([None]) the cancellation hook.  [f] must be
    cheap and domain-safe: it is called concurrently from every lane.  An
    exception escaping [f] counts as "stop". *)

val cancelled : t -> bool
(** Evaluate the current hook ([false] when none is installed).  Exposed so
    sequential fallback paths ({!Chunk} without a multi-lane pool) can honour
    the same chunk-boundary contract. *)

val stats : t -> stat array
(** Per-lane counters since creation (or the last {!reset_stats}). *)

val reset_stats : t -> unit

val pp_stats : Format.formatter -> stat array -> unit
(** One line per worker: tasks, steals, busy/idle seconds. *)
