(** Wall-clock time for the pool's busy/idle accounting and for benchmark
    timing.  CPU time ([Sys.time]) is the wrong axis once work spreads over
    domains: a 4-worker pool burns ~4 CPU-seconds per wall second, so
    speedups are invisible in CPU time. *)

val now_s : unit -> float
(** Wall-clock seconds since the epoch. *)

val now_ns : unit -> int64
(** Wall-clock nanoseconds since the epoch (gettimeofday precision). *)

val ns_to_s : int64 -> float
