(* Deterministic chunked map/reduce on top of the pool.

   The determinism contract (DESIGN.md section 8): chunk boundaries are a
   function of [n] and [chunk_size] ONLY — never of the pool size or of
   scheduling — and reductions fold chunk results in increasing chunk-index
   order.  A computation whose per-chunk work is a pure function of its index
   range therefore produces bit-identical results at any [jobs] setting,
   including jobs = 1 and no pool at all (both run the same chunks in
   order). *)

let default_max_chunks = 64

let chunk_size_for ?chunk_size n =
  match chunk_size with
  | Some c ->
      if c <= 0 then invalid_arg "Chunk: chunk_size must be positive";
      c
  | None -> max 1 ((n + default_max_chunks - 1) / default_max_chunks)

let ranges ?chunk_size n =
  if n < 0 then invalid_arg "Chunk: negative n";
  let cs = chunk_size_for ?chunk_size n in
  let k = (n + cs - 1) / cs in
  Array.init k (fun i -> (i * cs, min n ((i + 1) * cs)))

(* Run [f lo hi] once per chunk, collecting results by chunk index.  The
   parallel path fans chunks out as pool tasks and awaits them all (the
   caller helps); the sequential path runs the SAME chunks in order. *)
let map_chunks ?pool ?chunk_size ~n f =
  let rs = ranges ?chunk_size n in
  let k = Array.length rs in
  let out = Array.make k None in
  let exec i =
    let lo, hi = rs.(i) in
    out.(i) <- Some (f lo hi)
  in
  (match pool with
  | Some p when Pool.size p > 1 && k > 1 ->
      (* The pool checks its cancellation hook before each chunk task. *)
      let futs = Array.init k (fun i -> Pool.async p (fun () -> exec i)) in
      Array.iter (fun fut -> Pool.await p fut) futs
  | pool ->
      (* Sequential fallback honours the same chunk-boundary cancellation
         contract as the parallel path. *)
      for i = 0 to k - 1 do
        (match pool with
        | Some p when Pool.cancelled p -> raise Pool.Cancelled
        | _ -> ());
        exec i
      done);
  Array.map
    (function Some v -> v | None -> invalid_arg "Chunk: missing chunk result")
    out

let iter ?pool ?chunk_size ~n f =
  ignore (map_chunks ?pool ?chunk_size ~n (fun lo hi : unit -> f lo hi) : unit array)

let map_reduce ?pool ?chunk_size ~n ~map ~merge ~init () =
  Array.fold_left merge init (map_chunks ?pool ?chunk_size ~n map)

let map ?pool ?chunk_size ~n f =
  let out = Array.make n None in
  iter ?pool ?chunk_size ~n (fun lo hi ->
      for i = lo to hi - 1 do
        out.(i) <- Some (f i)
      done);
  Array.map
    (function Some v -> v | None -> invalid_arg "Chunk.map: missing element")
    out
