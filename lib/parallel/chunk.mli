(** Deterministic chunked iteration / map / reduce.

    The determinism contract: chunk boundaries depend only on [n] and
    [?chunk_size] (default: at most {!default_max_chunks} equal chunks) —
    never on the pool size or scheduling — and {!map_reduce} folds chunk
    results in increasing chunk order.  Any computation whose per-chunk work
    is a pure function of its index range is therefore bit-identical at
    every [jobs] setting; this is what makes parallel simulation and
    candidate scoring safe to interleave with journaled checkpoint/resume.

    Without [?pool] (or with a 1-lane pool) the same chunks run sequentially
    in index order on the caller.

    Cancellation: when the pool carries a {!Pool.set_should_stop} hook, it
    is checked at every chunk boundary — on the parallel path by the pool
    itself, on the sequential fallback by this module — and a fired hook
    aborts the computation with {!Pool.Cancelled}.  Chunks already running
    complete normally; no partial chunk result is ever observed. *)

val default_max_chunks : int
(** Default chunk-count ceiling (64): [chunk_size = ceil (n / 64)]. *)

val ranges : ?chunk_size:int -> int -> (int * int) array
(** [ranges n] are the half-open [(lo, hi)] chunk bounds covering [0..n-1],
    in order.  Exposed for callers that need the boundaries themselves. *)

val iter : ?pool:Pool.t -> ?chunk_size:int -> n:int -> (int -> int -> unit) -> unit
(** [iter ~n f] runs [f lo hi] for every chunk.  Chunks must write disjoint
    state (e.g. disjoint array slices). *)

val map : ?pool:Pool.t -> ?chunk_size:int -> n:int -> (int -> 'a) -> 'a array
(** Per-index map; result slot [i] is [f i]. *)

val map_reduce :
  ?pool:Pool.t ->
  ?chunk_size:int ->
  n:int ->
  map:(int -> int -> 'a) ->
  merge:('a -> 'a -> 'a) ->
  init:'a ->
  unit ->
  'a
(** [map_reduce ~n ~map ~merge ~init ()] computes [map lo hi] per chunk and
    folds the results with [merge] in chunk order (ordered reduction:
    float-sum results are reproducible). *)
