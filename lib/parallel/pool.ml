(* Domain-based worker pool with per-worker task deques and work stealing.

   Layout: a pool of [jobs] lanes.  Lane 0 belongs to the submitting
   (caller) domain, lanes 1..jobs-1 each get a spawned worker domain.  Every
   lane owns a deque: the owner pushes and pops at the bottom (LIFO, good
   locality for nested fork/join), thieves steal from the top (FIFO, steals
   the largest pending subtree first).

   Synchronization is deliberately coarse: one mutex + condition variable
   per pool protects every deque, the pending-task signal and future
   completion.  Tasks in this codebase are chunk-sized (a simulation word
   range, a slice of LAC candidates — milliseconds), so a sub-microsecond
   lock is noise, and the single lock makes the no-lost-wakeup argument
   trivial: a waiter only blocks while holding the same lock every producer
   must take to publish work or a result.

   Determinism: the pool executes arbitrary closures in arbitrary order, so
   determinism is a property of the *callers* — see {!Chunk}, which only
   hands the pool tasks whose result placement and reduction order are fixed
   in advance. *)

type stat = {
  worker : int;
  tasks : int;
  steals : int;
  busy_ns : int64;
  idle_ns : int64;
}

type counters = {
  mutable c_tasks : int;
  mutable c_steals : int;
  mutable c_busy : int64;
  mutable c_idle : int64;
}

type task = unit -> unit

(* Owner-bottom / thief-top ring-buffer deque.  Indices grow monotonically;
   the element at logical index [i] lives in slot [i land (capacity - 1)].
   All access is under the pool lock. *)
module Deque = struct
  type t = {
    mutable buf : task option array;  (* capacity always a power of two *)
    mutable top : int;  (* steal end: next element to steal *)
    mutable bottom : int;  (* owner end: next free slot *)
  }

  let create () = { buf = Array.make 64 None; top = 0; bottom = 0 }

  let size d = d.bottom - d.top

  let grow d =
    let cap = Array.length d.buf in
    let buf' = Array.make (2 * cap) None in
    for i = d.top to d.bottom - 1 do
      buf'.(i land ((2 * cap) - 1)) <- d.buf.(i land (cap - 1))
    done;
    d.buf <- buf'

  let push_bottom d x =
    if size d = Array.length d.buf then grow d;
    d.buf.(d.bottom land (Array.length d.buf - 1)) <- Some x;
    d.bottom <- d.bottom + 1

  let pop_bottom d =
    if size d = 0 then None
    else begin
      d.bottom <- d.bottom - 1;
      let slot = d.bottom land (Array.length d.buf - 1) in
      let x = d.buf.(slot) in
      d.buf.(slot) <- None;
      x
    end

  let steal_top d =
    if size d = 0 then None
    else begin
      let slot = d.top land (Array.length d.buf - 1) in
      let x = d.buf.(slot) in
      d.buf.(slot) <- None;
      d.top <- d.top + 1;
      x
    end
end

exception Cancelled

type t = {
  id : int;
  jobs : int;
  mutex : Mutex.t;
  cond : Condition.t;
  deques : Deque.t array;
  counters : counters array;
  mutable stop : bool;
  mutable domains : unit Domain.t array;
  (* Cooperative cancellation: consulted immediately before each task body
     runs (i.e. at chunk boundaries for {!Chunk} callers).  A [None] hook —
     the default — costs one field read per task.  The field is a single
     word, so the unsynchronized read in the task closure is tear-free. *)
  mutable should_stop : (unit -> bool) option;
}

type 'a state = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

type 'a future = { mutable st : 'a state }

let next_id = Atomic.make 0

let cpu_count () = Domain.recommended_domain_count ()

(* Which lane the current domain owns in which pool.  A domain that is not a
   member of the pool it is submitting to (the common case: the caller, or a
   worker of an *outer* pool driving an inner one) uses lane 0. *)
let lane_key : (int * int) Domain.DLS.key = Domain.DLS.new_key (fun () -> (-1, -1))

let lane_of t =
  let pid, lane = Domain.DLS.get lane_key in
  if pid = t.id && lane < t.jobs then lane else 0

(* Pop own bottom, else sweep the other deques top-first.  Lock held. *)
let take t lane =
  match Deque.pop_bottom t.deques.(lane) with
  | Some _ as r -> r
  | None ->
      let rec scan k =
        if k = t.jobs then None
        else
          let victim = (lane + k) mod t.jobs in
          match Deque.steal_top t.deques.(victim) with
          | Some _ as r ->
              t.counters.(lane).c_steals <- t.counters.(lane).c_steals + 1;
              r
          | None -> scan (k + 1)
      in
      scan 1

(* Run one task outside the lock, charging busy time to [lane].  Expects the
   lock held on entry and re-acquires it before returning. *)
let exec_locked t lane task =
  Mutex.unlock t.mutex;
  let t0 = Clock.now_ns () in
  task ();
  let dt = Int64.sub (Clock.now_ns ()) t0 in
  Mutex.lock t.mutex;
  let c = t.counters.(lane) in
  c.c_tasks <- c.c_tasks + 1;
  c.c_busy <- Int64.add c.c_busy dt

let worker_loop t lane =
  Domain.DLS.set lane_key (t.id, lane);
  Mutex.lock t.mutex;
  let rec loop () =
    if not t.stop then begin
      (match take t lane with
      | Some task -> exec_locked t lane task
      | None ->
          let t0 = Clock.now_ns () in
          Condition.wait t.cond t.mutex;
          let c = t.counters.(lane) in
          c.c_idle <- Int64.add c.c_idle (Int64.sub (Clock.now_ns ()) t0));
      loop ()
    end
  in
  loop ();
  Mutex.unlock t.mutex

let create ~jobs =
  let jobs = if jobs = 0 then cpu_count () else jobs in
  if jobs < 0 then invalid_arg "Pool.create: negative jobs";
  let jobs = min jobs 64 in
  let t =
    {
      id = Atomic.fetch_and_add next_id 1;
      jobs;
      mutex = Mutex.create ();
      cond = Condition.create ();
      deques = Array.init jobs (fun _ -> Deque.create ());
      counters =
        Array.init jobs (fun _ ->
            { c_tasks = 0; c_steals = 0; c_busy = 0L; c_idle = 0L });
      stop = false;
      domains = [||];
      should_stop = None;
    }
  in
  if jobs > 1 then
    t.domains <-
      Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let size t = t.jobs

let shutdown t =
  if Array.length t.domains > 0 then begin
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let set_should_stop t hook = t.should_stop <- hook

let cancelled t =
  match t.should_stop with
  | None -> false
  | Some f -> ( try f () with _ -> true)

let async t f =
  let fut = { st = Pending } in
  let task () =
    (* Each task is fully contained: an exception becomes the future's
       value, never a worker death — the pool stays usable after a failed
       task.  A cancelled pool skips the body entirely: a task enqueued
       before the caller abandoned the computation must not keep a worker
       busy, it fails fast with [Cancelled] instead. *)
    let r =
      if cancelled t then Failed (Cancelled, Printexc.get_callstack 0)
      else try Done (f ()) with e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock t.mutex;
    fut.st <- r;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex
  in
  if t.jobs <= 1 then begin
    (* Sequential pool: run eagerly on the caller.  This IS the jobs = 1
       semantics every parallel call site falls back to. *)
    let t0 = Clock.now_ns () in
    task ();
    Mutex.lock t.mutex;
    let c = t.counters.(0) in
    c.c_tasks <- c.c_tasks + 1;
    c.c_busy <- Int64.add c.c_busy (Int64.sub (Clock.now_ns ()) t0);
    Mutex.unlock t.mutex;
    fut
  end
  else begin
    let lane = lane_of t in
    Mutex.lock t.mutex;
    Deque.push_bottom t.deques.(lane) task;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    fut
  end

(* Awaiting helps: while the future is pending the caller executes pool
   tasks itself (its own deque first, then steals), so nested
   submit-and-await from inside a task cannot deadlock — some lane always
   makes progress on the tasks the awaited future depends on. *)
let await t fut =
  let lane = lane_of t in
  Mutex.lock t.mutex;
  let rec loop () =
    match fut.st with
    | Done v ->
        Mutex.unlock t.mutex;
        v
    | Failed (e, bt) ->
        Mutex.unlock t.mutex;
        Printexc.raise_with_backtrace e bt
    | Pending -> (
        match take t lane with
        | Some task ->
            exec_locked t lane task;
            loop ()
        | None ->
            let t0 = Clock.now_ns () in
            Condition.wait t.cond t.mutex;
            let c = t.counters.(lane) in
            c.c_idle <- Int64.add c.c_idle (Int64.sub (Clock.now_ns ()) t0);
            loop ())
  in
  loop ()

let run t f = await t (async t f)

let stats t =
  Mutex.lock t.mutex;
  let s =
    Array.mapi
      (fun i c ->
        {
          worker = i;
          tasks = c.c_tasks;
          steals = c.c_steals;
          busy_ns = c.c_busy;
          idle_ns = c.c_idle;
        })
      t.counters
  in
  Mutex.unlock t.mutex;
  s

let reset_stats t =
  Mutex.lock t.mutex;
  Array.iter
    (fun c ->
      c.c_tasks <- 0;
      c.c_steals <- 0;
      c.c_busy <- 0L;
      c.c_idle <- 0L)
    t.counters;
  Mutex.unlock t.mutex

let pp_stats ppf stats =
  Array.iter
    (fun s ->
      Format.fprintf ppf "worker %d: %d tasks, %d steals, busy %.3fs, idle %.3fs@."
        s.worker s.tasks s.steals (Clock.ns_to_s s.busy_ns) (Clock.ns_to_s s.idle_ns))
    stats
