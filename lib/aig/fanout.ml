(* CSR fanout adjacency: one shared pair of int arrays instead of a dense
   bool mask per source node.  Built in two counting passes over the edges;
   node ids ascend topologically, so each node's consumer slice is sorted
   ascending by construction (the fill pass visits consumers in id order). *)

type t = {
  g : Graph.t;
  revision : int;
  offsets : int array; (* num_nodes + 1 *)
  targets : int array; (* AND consumers, grouped per source node *)
  po_offsets : int array; (* num_nodes + 1 *)
  po_targets : int array; (* PO indexes, grouped per driver node *)
}

let build g =
  let n = Graph.num_nodes g in
  let offsets = Array.make (n + 1) 0 in
  let po_offsets = Array.make (n + 1) 0 in
  (* Pass 1: out-degrees (an AND never has both fanins on the same node —
     strashing folds [a AND a] and [a AND ~a] — but guard anyway so parsed
     graphs cannot produce duplicate edges). *)
  Graph.iter_ands g (fun id ->
      let n0 = Graph.node_of (Graph.fanin0 g id) in
      let n1 = Graph.node_of (Graph.fanin1 g id) in
      offsets.(n0) <- offsets.(n0) + 1;
      if n1 <> n0 then offsets.(n1) <- offsets.(n1) + 1);
  Graph.iter_pos g (fun _ l ->
      let d = Graph.node_of l in
      po_offsets.(d) <- po_offsets.(d) + 1);
  (* Exclusive prefix sums. *)
  let acc = ref 0 in
  for v = 0 to n do
    let c = offsets.(v) in
    offsets.(v) <- !acc;
    acc := !acc + c
  done;
  let targets = Array.make !acc 0 in
  let pacc = ref 0 in
  for v = 0 to n do
    let c = po_offsets.(v) in
    po_offsets.(v) <- !pacc;
    pacc := !pacc + c
  done;
  let po_targets = Array.make !pacc 0 in
  (* Pass 2: fill, using the offsets as write cursors, then restore them by
     shifting back (cursor of v ends exactly at offsets.(v+1)). *)
  let cursor = Array.copy offsets in
  Graph.iter_ands g (fun id ->
      let n0 = Graph.node_of (Graph.fanin0 g id) in
      let n1 = Graph.node_of (Graph.fanin1 g id) in
      targets.(cursor.(n0)) <- id;
      cursor.(n0) <- cursor.(n0) + 1;
      if n1 <> n0 then begin
        targets.(cursor.(n1)) <- id;
        cursor.(n1) <- cursor.(n1) + 1
      end);
  let po_cursor = Array.copy po_offsets in
  Graph.iter_pos g (fun i l ->
      let d = Graph.node_of l in
      po_targets.(po_cursor.(d)) <- i;
      po_cursor.(d) <- po_cursor.(d) + 1);
  { g; revision = Graph.revision g; offsets; targets; po_offsets; po_targets }

let revision t = t.revision
let matches t g = t.g == g && t.revision = Graph.revision g

let offsets t = t.offsets
let targets t = t.targets
let po_offsets t = t.po_offsets
let po_targets t = t.po_targets

let degree t v = t.offsets.(v + 1) - t.offsets.(v)

let iter_fanouts t v f =
  for i = t.offsets.(v) to t.offsets.(v + 1) - 1 do
    f t.targets.(i)
  done

let iter_pos t v f =
  for i = t.po_offsets.(v) to t.po_offsets.(v + 1) - 1 do
    f t.po_targets.(i)
  done
