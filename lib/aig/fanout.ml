(* CSR fanout adjacency, served from the graph's revision-stamped derived
   views ({!Graph.views}): [build] is O(1) when the bundle is warm and a
   bulk two-pass build otherwise.  A [t] pins the arrays of the revision it
   was built at, so it stays internally consistent (merely stale) if the
   graph mutates afterwards — [matches] detects that, exactly as before the
   views cache absorbed the construction. *)

type t = {
  g : Graph.t;
  revision : int;
  offsets : int array; (* num_nodes + 1 *)
  targets : int array; (* AND consumers, grouped per source node *)
  po_offsets : int array; (* num_nodes + 1 *)
  po_targets : int array; (* PO indexes, grouped per driver node *)
}

let build g =
  let v = Graph.views g in
  {
    g;
    revision = v.Graph.v_rev;
    offsets = v.Graph.v_offsets;
    targets = v.Graph.v_targets;
    po_offsets = v.Graph.v_po_offsets;
    po_targets = v.Graph.v_po_targets;
  }

let revision t = t.revision
let matches t g = t.g == g && t.revision = Graph.revision g

let offsets t = t.offsets
let targets t = t.targets
let po_offsets t = t.po_offsets
let po_targets t = t.po_targets

let degree t v = t.offsets.(v + 1) - t.offsets.(v)

let iter_fanouts t v f =
  for i = t.offsets.(v) to t.offsets.(v + 1) - 1 do
    f t.targets.(i)
  done

let iter_pos t v f =
  for i = t.po_offsets.(v) to t.po_offsets.(v + 1) - 1 do
    f t.po_targets.(i)
  done
