let keep_smaller ~candidate ~current =
  if Graph.num_ands candidate <= Graph.num_ands current then candidate else current

let light g =
  let swept = Graph.compact g in
  keep_smaller ~candidate:(Balance.run swept) ~current:swept

let compress2 ?resub g =
  let g0 = Graph.compact g in
  let g1 = keep_smaller ~candidate:(Balance.run g0) ~current:g0 in
  let g2 = Rewrite.run g1 in
  let g3 = Refactor.run g2 in
  let g4 = keep_smaller ~candidate:(Balance.run g3) ~current:g3 in
  let g5 = Rewrite.run g4 in
  let g6 = Graph.compact g5 in
  (* The optional fourth pass (exact resubstitution) lives in [Core] and is
     threaded in as a closure — [Aig] cannot depend on it.  It only ever
     shrinks its input, so monotonicity is preserved. *)
  let g7 =
    match resub with
    | None -> g6
    | Some f -> keep_smaller ~candidate:(f g6) ~current:g6
  in
  keep_smaller ~candidate:g7 ~current:g0
