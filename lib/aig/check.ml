let check g =
  let exception Bad of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  try
    Graph.iter_ands g (fun id ->
        let f0 = Graph.fanin0 g id and f1 = Graph.fanin1 g id in
        if Graph.node_of f0 >= id || Graph.node_of f1 >= id then
          fail "node %d: fanin does not precede it" id;
        if f0 > f1 then fail "node %d: fanins not normalized" id;
        if Graph.node_of f0 = 0 then fail "node %d: constant fanin survived folding" id;
        if Graph.node_of f0 = Graph.node_of f1 then
          fail "node %d: trivial fanin pair survived folding" id;
        (* The strash table is authoritative: probing the pair must land on
           this very node, or the table is inconsistent / the pair occurs
           twice (first insertion wins, so a duplicate resolves elsewhere). *)
        match Graph.find_and g f0 f1 with
        | Some id' when id' = id -> ()
        | Some id' -> fail "node %d: duplicate strash pair (canonical is %d)" id id'
        | None -> fail "node %d: fanin pair missing from strash table" id);
    Graph.iter_pos g (fun i l ->
        if Graph.node_of l < 0 || Graph.node_of l >= Graph.num_nodes g then
          fail "PO %d: literal out of range" i);
    for i = 0 to Graph.num_pis g - 1 do
      let id = Graph.pi_node g i in
      if not (Graph.is_pi g id) then fail "PI %d: node %d is not an input" i id;
      if Graph.pi_index g id <> i then fail "PI %d: inconsistent reverse index" i
    done;
    Ok ()
  with Bad msg -> Error msg

let check_exn g = match check g with Ok () -> () | Error msg -> failwith msg
