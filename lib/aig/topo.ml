(* Structural measurements, served from the graph's revision-stamped
   derived-view cache: repeated queries against an unchanged graph are O(1)
   and share one bulk computation.  The returned arrays are owned by the
   cache — read-only for callers (every in-tree consumer that needs to
   mutate counts, e.g. {!Cone.mffc}, copies first). *)

let levels g = Graph.levels g

let depth g = Graph.depth g

let fanout_counts g = Graph.ref_counts g

let node_count_in_use g =
  let n = Graph.num_nodes g in
  let reachable = Array.make n false in
  let rec mark id =
    if not reachable.(id) then begin
      reachable.(id) <- true;
      if Graph.is_and g id then begin
        mark (Graph.node_of (Graph.fanin0 g id));
        mark (Graph.node_of (Graph.fanin1 g id))
      end
    end
  in
  Graph.iter_pos g (fun _ l -> mark (Graph.node_of l));
  let count = ref 0 in
  Graph.iter_ands g (fun id -> if reachable.(id) then incr count);
  !count
