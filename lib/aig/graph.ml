type lit = int

let const0 = 0
let const1 = 1

let make_lit id compl = (id * 2) + if compl then 1 else 0
let node_of l = l lsr 1
let is_compl l = l land 1 = 1
let lit_not l = l lxor 1
let lit_not_cond l c = if c then l lxor 1 else l
let lit_regular l = l land lnot 1

(* Fanin sentinel distinguishing PIs from ANDs. *)
let pi_sentinel = -1

(* Derived views, rebuilt in bulk per revision (see the .mli). *)
type views = {
  v_rev : int;
  v_levels : int array;
  v_refs : int array;
  v_offsets : int array;
  v_targets : int array;
  v_po_offsets : int array;
  v_po_targets : int array;
  v_depth : int;
}

(* Struct-of-arrays node store: [fanin0]/[fanin1]/[pi_pos] are parallel
   arrays sharing one capacity ([cap]); the strash is an open-addressing
   table of [node id + 1] slots (0 = empty) probed directly against the
   fanin arrays, so a lookup allocates nothing and a copy is a blit. *)
type t = {
  mutable graph_name : string;
  mutable fanin0 : int array;
  mutable fanin1 : int array;
  mutable pi_pos : int array; (* node id -> PI index, -1 otherwise *)
  mutable cap : int; (* shared capacity of the node-indexed arrays *)
  mutable nnodes : int;
  mutable pis : int array;
  mutable pi_names : string array;
  mutable npis : int;
  mutable pos : int array;
  mutable po_names : string array;
  mutable npos : int;
  mutable strash : int array; (* open addressing; slot = id + 1, 0 empty *)
  mutable strash_mask : int; (* Array.length strash - 1 (power of two) *)
  mutable strash_used : int;
  mutable rev : int; (* bumped on every structural mutation *)
  mutable cached_views : views option;
}

(* 2048 slots (16 KiB) holds 1024 ANDs before the first rehash — the same
   effective pre-size as the old tuple-keyed [Hashtbl.create 1024], so
   typical benchmark-scale construction never rehashes at all. *)
let strash_init_size = 2048

let create ?(name = "aig") () =
  let cap = 256 in
  {
    graph_name = name;
    fanin0 = Array.make cap pi_sentinel;
    fanin1 = Array.make cap pi_sentinel;
    pi_pos = Array.make cap (-1);
    cap;
    nnodes = 1; (* node 0 is the constant, marked as a non-AND *)
    pis = Array.make 8 0;
    pi_names = Array.make 8 "";
    npis = 0;
    pos = Array.make 8 0;
    po_names = Array.make 8 "";
    npos = 0;
    strash = Array.make strash_init_size 0;
    strash_mask = strash_init_size - 1;
    strash_used = 0;
    rev = 0;
    cached_views = None;
  }

let name g = g.graph_name
let set_name g n = g.graph_name <- n

(* ---------- Growth: all node-indexed arrays share one capacity ---------- *)

let grow_nodes g n =
  let cap' = max (2 * g.cap) n in
  let f0 = Array.make cap' pi_sentinel in
  let f1 = Array.make cap' pi_sentinel in
  let pp = Array.make cap' (-1) in
  Array.blit g.fanin0 0 f0 0 g.nnodes;
  Array.blit g.fanin1 0 f1 0 g.nnodes;
  Array.blit g.pi_pos 0 pp 0 g.nnodes;
  g.fanin0 <- f0;
  g.fanin1 <- f1;
  g.pi_pos <- pp;
  g.cap <- cap'

let grow_pis g n =
  if n > Array.length g.pis then begin
    let cap' = max (2 * Array.length g.pis) n in
    let pis' = Array.make cap' 0 in
    let names' = Array.make cap' "" in
    Array.blit g.pis 0 pis' 0 g.npis;
    Array.blit g.pi_names 0 names' 0 g.npis;
    g.pis <- pis';
    g.pi_names <- names'
  end

let grow_pos g n =
  if n > Array.length g.pos then begin
    let cap' = max (2 * Array.length g.pos) n in
    let pos' = Array.make cap' 0 in
    let names' = Array.make cap' "" in
    Array.blit g.pos 0 pos' 0 g.npos;
    Array.blit g.po_names 0 names' 0 g.npos;
    g.pos <- pos';
    g.po_names <- names'
  end

(* ---------- Open-addressing strash ---------- *)

let strash_hash a b =
  let h = (a * 0x9E3779B1) lxor (b * 0x85EBCA77) in
  h lxor (h lsr 16)

(* Probe for the AND node with (normalized) fanins [a], [b].  Returns the
   node id on a hit; on a miss, returns [-slot - 1] for the free slot the
   probe ended on, so the caller can insert without a second probe. *)
let strash_lookup g a b =
  let tbl = g.strash and mask = g.strash_mask in
  let f0 = g.fanin0 and f1 = g.fanin1 in
  let rec probe i =
    let s = Array.unsafe_get tbl i in
    if s = 0 then -i - 1
    else
      let id = s - 1 in
      if Array.unsafe_get f0 id = a && Array.unsafe_get f1 id = b then id
      else probe ((i + 1) land mask)
  in
  probe (strash_hash a b land mask)

(* Insert into a table with a known-free slot (growth checked by callers). *)
let table_insert tbl mask a b id =
  let rec probe i =
    if Array.unsafe_get tbl i = 0 then Array.unsafe_set tbl i (id + 1)
    else probe ((i + 1) land mask)
  in
  probe (strash_hash a b land mask)

(* Bulk rehash into a table of [size] slots (a power of two): one pass over
   the fanin arrays — no per-entry key allocation, ever. *)
let rehash_strash g size =
  let tbl = Array.make size 0 in
  let mask = size - 1 in
  let count = ref 0 in
  for id = 1 to g.nnodes - 1 do
    let a = g.fanin0.(id) in
    if a <> pi_sentinel then begin
      table_insert tbl mask a g.fanin1.(id) id;
      incr count
    end
  done;
  g.strash <- tbl;
  g.strash_mask <- mask;
  g.strash_used <- !count

let reserve g n =
  if n > g.cap then grow_nodes g n;
  let cur = Array.length g.strash in
  let target = ref cur in
  while !target < 2 * (n + 1) do
    target := 2 * !target
  done;
  if !target > cur then rehash_strash g !target

(* ---------- Append-only mutation ---------- *)

let new_node g f0 f1 =
  let id = g.nnodes in
  if id >= g.cap then grow_nodes g (id + 1);
  g.fanin0.(id) <- f0;
  g.fanin1.(id) <- f1;
  g.pi_pos.(id) <- -1;
  g.nnodes <- id + 1;
  g.rev <- g.rev + 1;
  id

let add_pi ?name g =
  let id = new_node g pi_sentinel pi_sentinel in
  let idx = g.npis in
  grow_pis g (idx + 1);
  g.pis.(idx) <- id;
  g.pi_names.(idx) <- (match name with Some n -> n | None -> Printf.sprintf "x%d" idx);
  g.npis <- idx + 1;
  g.pi_pos.(id) <- idx;
  make_lit id false

let and_ g a b =
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = const0 then const0
  else if a = const1 then b
  else if a = b then a
  else if a = lit_not b then const0
  else begin
    let r = strash_lookup g a b in
    if r >= 0 then make_lit r false
    else begin
      let id = new_node g a b in
      if 2 * (g.strash_used + 1) > Array.length g.strash then
        (* The bulk rehash scans the fanin arrays, which already hold the
           new node — it is inserted (and counted) by the rehash itself. *)
        rehash_strash g (2 * Array.length g.strash)
      else begin
        (* Reuse the free slot the failed probe ended on: the table has not
           changed since, so it is still the pair's canonical slot. *)
        Array.unsafe_set g.strash (-r - 1) (id + 1);
        g.strash_used <- g.strash_used + 1
      end;
      make_lit id false
    end
  end

let find_and g a b =
  let a, b = if a <= b then (a, b) else (b, a) in
  let id = strash_lookup g a b in
  if id >= 0 then Some id else None

let add_po ?name g l =
  let idx = g.npos in
  grow_pos g (idx + 1);
  g.pos.(idx) <- l;
  g.po_names.(idx) <- (match name with Some n -> n | None -> Printf.sprintf "y%d" idx);
  g.npos <- idx + 1;
  g.rev <- g.rev + 1;
  idx

let set_po g i l =
  if i < 0 || i >= g.npos then invalid_arg "Graph.set_po: index out of range";
  g.pos.(i) <- l;
  g.rev <- g.rev + 1

let revision g = g.rev

let num_nodes g = g.nnodes
let num_pis g = g.npis
let num_pos g = g.npos
let num_ands g = g.nnodes - 1 - g.npis

let check_node g id =
  if id < 0 || id >= g.nnodes then invalid_arg "Graph: node id out of range"

let pi_node g i =
  if i < 0 || i >= g.npis then invalid_arg "Graph.pi_node: index out of range";
  g.pis.(i)

let pi_lit g i = make_lit (pi_node g i) false

let po_lit g i =
  if i < 0 || i >= g.npos then invalid_arg "Graph.po_lit: index out of range";
  g.pos.(i)

let pi_name g i =
  if i < 0 || i >= g.npis then invalid_arg "Graph.pi_name: index out of range";
  g.pi_names.(i)

let po_name g i =
  if i < 0 || i >= g.npos then invalid_arg "Graph.po_name: index out of range";
  g.po_names.(i)

let pi_index g id =
  check_node g id;
  g.pi_pos.(id)

let is_const id = id = 0

let is_pi g id =
  check_node g id;
  id <> 0 && g.fanin0.(id) = pi_sentinel

let is_and g id =
  check_node g id;
  g.fanin0.(id) <> pi_sentinel

let fanin0 g id =
  check_node g id;
  if g.fanin0.(id) = pi_sentinel then invalid_arg "Graph.fanin0: not an AND node";
  g.fanin0.(id)

let fanin1 g id =
  check_node g id;
  if g.fanin1.(id) = pi_sentinel then invalid_arg "Graph.fanin1: not an AND node";
  g.fanin1.(id)

let iter_ands g f =
  for id = 1 to g.nnodes - 1 do
    if g.fanin0.(id) <> pi_sentinel then f id
  done

let iter_pos g f =
  for i = 0 to g.npos - 1 do
    f i g.pos.(i)
  done

(* ---------- Derived views ---------- *)

(* One bulk pass computes levels, reference counts and the out-degree
   histograms; a second fill pass writes the two CSR target arrays.  Node
   ids ascend topologically, so each node's consumer slice is sorted
   ascending by construction, and PO slices are sorted by PO index. *)
let compute_views g =
  let n = g.nnodes in
  let levels = Array.make n 0 in
  let refs = Array.make n 0 in
  let offsets = Array.make (n + 1) 0 in
  let po_offsets = Array.make (n + 1) 0 in
  for id = 1 to n - 1 do
    let f0 = g.fanin0.(id) in
    if f0 <> pi_sentinel then begin
      let f1 = g.fanin1.(id) in
      let n0 = node_of f0 and n1 = node_of f1 in
      let l0 = levels.(n0) and l1 = levels.(n1) in
      levels.(id) <- 1 + if l0 >= l1 then l0 else l1;
      refs.(n0) <- refs.(n0) + 1;
      refs.(n1) <- refs.(n1) + 1;
      (* An AND never has both fanins on the same node after folding, but
         guard anyway so parsed graphs cannot produce duplicate edges. *)
      offsets.(n0) <- offsets.(n0) + 1;
      if n1 <> n0 then offsets.(n1) <- offsets.(n1) + 1
    end
  done;
  let depth = ref 0 in
  for i = 0 to g.npos - 1 do
    let d = node_of g.pos.(i) in
    refs.(d) <- refs.(d) + 1;
    po_offsets.(d) <- po_offsets.(d) + 1;
    if levels.(d) > !depth then depth := levels.(d)
  done;
  (* Exclusive prefix sums. *)
  let acc = ref 0 in
  for v = 0 to n do
    let c = offsets.(v) in
    offsets.(v) <- !acc;
    acc := !acc + c
  done;
  let targets = Array.make !acc 0 in
  let pacc = ref 0 in
  for v = 0 to n do
    let c = po_offsets.(v) in
    po_offsets.(v) <- !pacc;
    pacc := !pacc + c
  done;
  let po_targets = Array.make !pacc 0 in
  (* Fill pass, using copies of the offsets as write cursors. *)
  let cursor = Array.copy offsets in
  for id = 1 to n - 1 do
    let f0 = g.fanin0.(id) in
    if f0 <> pi_sentinel then begin
      let n0 = node_of f0 and n1 = node_of g.fanin1.(id) in
      targets.(cursor.(n0)) <- id;
      cursor.(n0) <- cursor.(n0) + 1;
      if n1 <> n0 then begin
        targets.(cursor.(n1)) <- id;
        cursor.(n1) <- cursor.(n1) + 1
      end
    end
  done;
  let po_cursor = Array.copy po_offsets in
  for i = 0 to g.npos - 1 do
    let d = node_of g.pos.(i) in
    po_targets.(po_cursor.(d)) <- i;
    po_cursor.(d) <- po_cursor.(d) + 1
  done;
  {
    v_rev = g.rev;
    v_levels = levels;
    v_refs = refs;
    v_offsets = offsets;
    v_targets = targets;
    v_po_offsets = po_offsets;
    v_po_targets = po_targets;
    v_depth = !depth;
  }

let views g =
  match g.cached_views with
  | Some v when v.v_rev = g.rev -> v
  | _ ->
      (* Concurrent read-only users may race to this store; both compute the
         same immutable bundle for the same revision, and a record-pointer
         store cannot tear, so either winner is correct. *)
      let v = compute_views g in
      g.cached_views <- Some v;
      v

let levels g = (views g).v_levels
let ref_counts g = (views g).v_refs
let depth g = (views g).v_depth

(* ---------- Whole-graph copies: blits, no strash re-insertion ---------- *)

let clone g =
  {
    graph_name = g.graph_name;
    fanin0 = Array.copy g.fanin0;
    fanin1 = Array.copy g.fanin1;
    pi_pos = Array.copy g.pi_pos;
    cap = g.cap;
    nnodes = g.nnodes;
    pis = Array.copy g.pis;
    pi_names = Array.copy g.pi_names;
    npis = g.npis;
    pos = Array.copy g.pos;
    po_names = Array.copy g.po_names;
    npos = g.npos;
    strash = Array.copy g.strash;
    strash_mask = g.strash_mask;
    strash_used = g.strash_used;
    rev = g.rev;
    (* Views are immutable per revision: sharing the bundle is safe until
       either side mutates (which bumps its own [rev] and recomputes). *)
    cached_views = g.cached_views;
  }

type snapshot = {
  s_name : string;
  s_fanin0 : int array; (* nnodes entries *)
  s_fanin1 : int array;
  s_pi_pos : int array;
  s_nnodes : int;
  s_pis : int array; (* npis entries *)
  s_pi_names : string array;
  s_pos : int array; (* npos entries *)
  s_po_names : string array;
  s_strash : int array;
  s_strash_mask : int;
  s_strash_used : int;
}

let snapshot g =
  {
    s_name = g.graph_name;
    s_fanin0 = Array.sub g.fanin0 0 g.nnodes;
    s_fanin1 = Array.sub g.fanin1 0 g.nnodes;
    s_pi_pos = Array.sub g.pi_pos 0 g.nnodes;
    s_nnodes = g.nnodes;
    s_pis = Array.sub g.pis 0 g.npis;
    s_pi_names = Array.sub g.pi_names 0 g.npis;
    s_pos = Array.sub g.pos 0 g.npos;
    s_po_names = Array.sub g.po_names 0 g.npos;
    s_strash = Array.copy g.strash;
    s_strash_mask = g.strash_mask;
    s_strash_used = g.strash_used;
  }

let restore g s =
  if s.s_nnodes > g.cap then grow_nodes g s.s_nnodes;
  Array.blit s.s_fanin0 0 g.fanin0 0 s.s_nnodes;
  Array.blit s.s_fanin1 0 g.fanin1 0 s.s_nnodes;
  Array.blit s.s_pi_pos 0 g.pi_pos 0 s.s_nnodes;
  g.nnodes <- s.s_nnodes;
  let npis = Array.length s.s_pis in
  grow_pis g npis;
  Array.blit s.s_pis 0 g.pis 0 npis;
  Array.blit s.s_pi_names 0 g.pi_names 0 npis;
  g.npis <- npis;
  let npos = Array.length s.s_pos in
  grow_pos g npos;
  Array.blit s.s_pos 0 g.pos 0 npos;
  Array.blit s.s_po_names 0 g.po_names 0 npos;
  g.npos <- npos;
  if Array.length g.strash = Array.length s.s_strash then
    Array.blit s.s_strash 0 g.strash 0 (Array.length s.s_strash)
  else g.strash <- Array.copy s.s_strash;
  g.strash_mask <- s.s_strash_mask;
  g.strash_used <- s.s_strash_used;
  g.graph_name <- s.s_name;
  (* Monotonic: never reuse a revision, so any derived structure built
     between [snapshot] and [restore] is correctly seen as stale. *)
  g.rev <- g.rev + 1;
  g.cached_views <- None

(* ---------- Restructuring ---------- *)

type replacement =
  | Replace_lit of lit
  | Replace_expr of Logic.Factor.expr * int array

let rec build_expr g expr leaves =
  match expr with
  | Logic.Factor.Const b -> if b then const1 else const0
  | Logic.Factor.Lit (v, phase) ->
      if v < 0 || v >= Array.length leaves then invalid_arg "Graph.build_expr: leaf out of range";
      lit_not_cond leaves.(v) (not phase)
  | Logic.Factor.And es ->
      List.fold_left (fun acc e -> and_ g acc (build_expr g e leaves)) const1 es
  | Logic.Factor.Or es ->
      (* De Morgan: OR = NOT (AND of NOTs). *)
      lit_not
        (List.fold_left
           (fun acc e -> and_ g acc (lit_not (build_expr g e leaves)))
           const1 es)

type rebuilder = {
  mutable rb_map : int array; (* old node id -> new literal scratch *)
  mutable rb_spare : t option; (* recycled destination graph *)
}

let rebuilder () = { rb_map = [||]; rb_spare = None }

(* Reset a recycled graph for reuse: counts back to empty, strash slots
   zeroed in place (no allocation), revision bumped so any derived
   structure built against the previous contents reads as stale. *)
let reset_graph g ~name =
  g.graph_name <- name;
  g.nnodes <- 1;
  g.npis <- 0;
  g.npos <- 0;
  g.fanin0.(0) <- pi_sentinel;
  g.fanin1.(0) <- pi_sentinel;
  g.pi_pos.(0) <- -1;
  Array.fill g.strash 0 (Array.length g.strash) 0;
  g.strash_used <- 0;
  g.rev <- g.rev + 1;
  g.cached_views <- None

let recycle rb g = rb.rb_spare <- Some g

let rebuild_with rb ?replace g =
  let fresh =
    match rb.rb_spare with
    | Some s when s != g ->
        rb.rb_spare <- None;
        reset_graph s ~name:g.graph_name;
        s
    | Some _ | None -> create ~name:g.graph_name ()
  in
  (* The source node count bounds the copy (substitutions can still push
     past it; growth stays amortized): size everything once, up front. *)
  reserve fresh g.nnodes;
  if Array.length rb.rb_map < g.nnodes then rb.rb_map <- Array.make (max 1024 g.nnodes) (-2)
  else Array.fill rb.rb_map 0 g.nnodes (-2);
  (* Map old node id -> new literal; -2 = unvisited, -3 = in progress. *)
  let mapping = rb.rb_map in
  mapping.(0) <- const0;
  for i = 0 to g.npis - 1 do
    let l = add_pi ~name:g.pi_names.(i) fresh in
    mapping.(g.pis.(i)) <- l
  done;
  let rec copy_lit l = lit_not_cond (copy_node (node_of l)) (is_compl l)
  and copy_node id =
    match mapping.(id) with
    | -3 -> failwith "Graph.rebuild: substitution creates a combinational cycle"
    | -2 ->
        mapping.(id) <- -3;
        let result =
          match (match replace with Some r -> r id | None -> None) with
          | Some (Replace_lit l) -> copy_lit l
          | Some (Replace_expr (expr, leaves)) ->
              let leaf_lits = Array.map (fun leaf -> copy_lit (make_lit leaf false)) leaves in
              build_expr fresh expr leaf_lits
          | None -> and_ fresh (copy_lit g.fanin0.(id)) (copy_lit g.fanin1.(id))
        in
        mapping.(id) <- result;
        result
    | l -> l
  in
  for i = 0 to g.npos - 1 do
    ignore (add_po ~name:g.po_names.(i) fresh (copy_lit g.pos.(i)))
  done;
  fresh

let rebuild ?replace g = rebuild_with (rebuilder ()) ?replace g

let compact g = rebuild g

let pp_stats ppf g =
  Format.fprintf ppf "%s: pi=%d po=%d and=%d" g.graph_name g.npis g.npos (num_ands g)
