type lit = int

let const0 = 0
let const1 = 1

let make_lit id compl = (id * 2) + if compl then 1 else 0
let node_of l = l lsr 1
let is_compl l = l land 1 = 1
let lit_not l = l lxor 1
let lit_not_cond l c = if c then l lxor 1 else l
let lit_regular l = l land lnot 1

(* Fanin sentinel distinguishing PIs from ANDs. *)
let pi_sentinel = -1

type t = {
  mutable graph_name : string;
  mutable fanin0 : int array;
  mutable fanin1 : int array;
  mutable nnodes : int;
  mutable pis : int array;
  mutable npis : int;
  mutable pi_names : string array;
  mutable pos : int array;
  mutable npos : int;
  mutable po_names : string array;
  strash : (int * int, int) Hashtbl.t;
  mutable pi_pos : int array; (* node id -> PI index, -1 otherwise *)
  mutable rev : int; (* bumped on every structural mutation *)
}

let create ?(name = "aig") () =
  let cap = 64 in
  let g =
    {
      graph_name = name;
      fanin0 = Array.make cap pi_sentinel;
      fanin1 = Array.make cap pi_sentinel;
      nnodes = 1;
      pis = Array.make 8 0;
      npis = 0;
      pi_names = Array.make 8 "";
      pos = Array.make 8 0;
      npos = 0;
      po_names = Array.make 8 "";
      strash = Hashtbl.create 1024;
      pi_pos = Array.make cap (-1);
      rev = 0;
    }
  in
  (* Node 0 is the constant; mark it as a non-AND. *)
  g.fanin0.(0) <- pi_sentinel;
  g.fanin1.(0) <- pi_sentinel;
  g

let name g = g.graph_name
let set_name g n = g.graph_name <- n

let grow_int arr len fill =
  if len < Array.length arr then arr
  else begin
    let arr' = Array.make (max (2 * Array.length arr) (len + 1)) fill in
    Array.blit arr 0 arr' 0 (Array.length arr);
    arr'
  end

let grow_str arr len =
  if len < Array.length arr then arr
  else begin
    let arr' = Array.make (max (2 * Array.length arr) (len + 1)) "" in
    Array.blit arr 0 arr' 0 (Array.length arr);
    arr'
  end

let new_node g f0 f1 =
  let id = g.nnodes in
  g.fanin0 <- grow_int g.fanin0 id pi_sentinel;
  g.fanin1 <- grow_int g.fanin1 id pi_sentinel;
  g.pi_pos <- grow_int g.pi_pos id (-1);
  g.fanin0.(id) <- f0;
  g.fanin1.(id) <- f1;
  g.pi_pos.(id) <- -1;
  g.nnodes <- id + 1;
  g.rev <- g.rev + 1;
  id

let add_pi ?name g =
  let id = new_node g pi_sentinel pi_sentinel in
  let idx = g.npis in
  g.pis <- grow_int g.pis idx 0;
  g.pi_names <- grow_str g.pi_names idx;
  g.pis.(idx) <- id;
  g.pi_names.(idx) <- (match name with Some n -> n | None -> Printf.sprintf "x%d" idx);
  g.npis <- idx + 1;
  g.pi_pos.(id) <- idx;
  make_lit id false

let and_ g a b =
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = const0 then const0
  else if a = const1 then b
  else if a = b then a
  else if a = lit_not b then const0
  else
    match Hashtbl.find_opt g.strash (a, b) with
    | Some id -> make_lit id false
    | None ->
        let id = new_node g a b in
        Hashtbl.add g.strash (a, b) id;
        make_lit id false

let add_po ?name g l =
  let idx = g.npos in
  g.pos <- grow_int g.pos idx 0;
  g.po_names <- grow_str g.po_names idx;
  g.pos.(idx) <- l;
  g.po_names.(idx) <- (match name with Some n -> n | None -> Printf.sprintf "y%d" idx);
  g.npos <- idx + 1;
  g.rev <- g.rev + 1;
  idx

let set_po g i l =
  if i < 0 || i >= g.npos then invalid_arg "Graph.set_po: index out of range";
  g.pos.(i) <- l;
  g.rev <- g.rev + 1

let revision g = g.rev

let num_nodes g = g.nnodes
let num_pis g = g.npis
let num_pos g = g.npos
let num_ands g = g.nnodes - 1 - g.npis

let check_node g id =
  if id < 0 || id >= g.nnodes then invalid_arg "Graph: node id out of range"

let pi_node g i =
  if i < 0 || i >= g.npis then invalid_arg "Graph.pi_node: index out of range";
  g.pis.(i)

let pi_lit g i = make_lit (pi_node g i) false

let po_lit g i =
  if i < 0 || i >= g.npos then invalid_arg "Graph.po_lit: index out of range";
  g.pos.(i)

let pi_name g i =
  if i < 0 || i >= g.npis then invalid_arg "Graph.pi_name: index out of range";
  g.pi_names.(i)

let po_name g i =
  if i < 0 || i >= g.npos then invalid_arg "Graph.po_name: index out of range";
  g.po_names.(i)

let pi_index g id =
  check_node g id;
  g.pi_pos.(id)

let is_const id = id = 0

let is_pi g id =
  check_node g id;
  id <> 0 && g.fanin0.(id) = pi_sentinel

let is_and g id =
  check_node g id;
  g.fanin0.(id) <> pi_sentinel

let fanin0 g id =
  check_node g id;
  if g.fanin0.(id) = pi_sentinel then invalid_arg "Graph.fanin0: not an AND node";
  g.fanin0.(id)

let fanin1 g id =
  check_node g id;
  if g.fanin1.(id) = pi_sentinel then invalid_arg "Graph.fanin1: not an AND node";
  g.fanin1.(id)

let iter_ands g f =
  for id = 1 to g.nnodes - 1 do
    if g.fanin0.(id) <> pi_sentinel then f id
  done

let iter_pos g f =
  for i = 0 to g.npos - 1 do
    f i g.pos.(i)
  done

type replacement =
  | Replace_lit of lit
  | Replace_expr of Logic.Factor.expr * int array

let rec build_expr g expr leaves =
  match expr with
  | Logic.Factor.Const b -> if b then const1 else const0
  | Logic.Factor.Lit (v, phase) ->
      if v < 0 || v >= Array.length leaves then invalid_arg "Graph.build_expr: leaf out of range";
      lit_not_cond leaves.(v) (not phase)
  | Logic.Factor.And es ->
      List.fold_left (fun acc e -> and_ g acc (build_expr g e leaves)) const1 es
  | Logic.Factor.Or es ->
      (* De Morgan: OR = NOT (AND of NOTs). *)
      lit_not
        (List.fold_left
           (fun acc e -> and_ g acc (lit_not (build_expr g e leaves)))
           const1 es)

let rebuild ?replace g =
  let fresh = create ~name:g.graph_name () in
  (* Map old node id -> new literal; -2 = unvisited, -3 = in progress. *)
  let mapping = Array.make g.nnodes (-2) in
  mapping.(0) <- const0;
  for i = 0 to g.npis - 1 do
    let l = add_pi ~name:g.pi_names.(i) fresh in
    mapping.(g.pis.(i)) <- l
  done;
  let rec copy_lit l = lit_not_cond (copy_node (node_of l)) (is_compl l)
  and copy_node id =
    match mapping.(id) with
    | -3 -> failwith "Graph.rebuild: substitution creates a combinational cycle"
    | -2 ->
        mapping.(id) <- -3;
        let result =
          match (match replace with Some r -> r id | None -> None) with
          | Some (Replace_lit l) -> copy_lit l
          | Some (Replace_expr (expr, leaves)) ->
              let leaf_lits = Array.map (fun leaf -> copy_lit (make_lit leaf false)) leaves in
              build_expr fresh expr leaf_lits
          | None -> and_ fresh (copy_lit g.fanin0.(id)) (copy_lit g.fanin1.(id))
        in
        mapping.(id) <- result;
        result
    | l -> l
  in
  for i = 0 to g.npos - 1 do
    ignore (add_po ~name:g.po_names.(i) fresh (copy_lit g.pos.(i)))
  done;
  fresh

let compact g = rebuild g

let pp_stats ppf g =
  Format.fprintf ppf "%s: pi=%d po=%d and=%d" g.graph_name g.npis g.npos (num_ands g)
