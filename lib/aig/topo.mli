(** Structural measurements over an AIG: levels, depth, fanout counts.

    All of these read the graph's revision-stamped derived-view cache
    ({!Graph.views}): the first query after a structural mutation pays one
    bulk O(|V| + |E|) pass, every later query on the unchanged graph is
    O(1).  The returned arrays are shared with the cache — do not mutate
    them (copy first, as {!Cone.mffc} does with its reference counts). *)

val levels : Graph.t -> int array
(** Per node id: logic level (constant and PIs at 0, AND = 1 + max fanin).
    Cached, read-only. *)

val depth : Graph.t -> int
(** Maximum level over the PO drivers (0 for constant / wire-only graphs). *)

val fanout_counts : Graph.t -> int array
(** Per node id: number of fanout references (AND fanins + PO drivers).
    Cached, read-only. *)

val node_count_in_use : Graph.t -> int
(** Number of AND nodes reachable from the POs. *)
