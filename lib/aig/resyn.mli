(** Traditional logic-optimization pipelines (the "sweep; resyn2" substitute
    used between approximation steps, cf. Algorithm 3 line 9). *)

val light : Graph.t -> Graph.t
(** Sweep (dead-node removal + re-strashing) and balance. *)

val compress2 : ?resub:(Graph.t -> Graph.t) -> Graph.t -> Graph.t
(** The full pipeline: sweep, balance, rewrite, refactor, balance, rewrite,
    sweep — monotone in AND count (never returns a larger graph).
    [?resub] appends a fourth pass after the sweep (the exact-resubstitution
    engine from [Core], threaded as a closure because the dependency points
    the other way); its result is kept only if no larger. *)
