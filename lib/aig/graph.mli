(** Structurally hashed AND-Inverter Graphs.

    An AIG node is the constant (node 0), a primary input, or a two-input AND
    gate.  Edges are literals: [2 * node_id + complement_bit], so inversion is
    free.  Nodes are append-only and every AND's fanins precede it, which
    makes ascending node-id order a topological order.

    Graphs are mutated only by appending ([add_pi], [and_], [add_po],
    [set_po]); all restructuring transforms go through {!rebuild}, which
    walks an old graph from its outputs and produces a fresh graph — dead
    logic vanishes and acyclicity holds by construction. *)

type t

type lit = int
(** Literal: [2 * id + phase]. [0] is constant false, [1] constant true. *)

val const0 : lit
val const1 : lit

(** {1 Literals} *)

val make_lit : int -> bool -> lit
(** [make_lit id compl]. *)

val node_of : lit -> int
val is_compl : lit -> bool
val lit_not : lit -> lit
val lit_not_cond : lit -> bool -> lit
val lit_regular : lit -> lit
(** Strip the complement bit. *)

(** {1 Construction} *)

val create : ?name:string -> unit -> t

val name : t -> string
val set_name : t -> string -> unit

val add_pi : ?name:string -> t -> lit
(** Append a primary input; returns its (positive) literal. *)

val and_ : t -> lit -> lit -> lit
(** Strashed AND with constant folding and the trivial-rule simplifications
    (idempotence, complement annihilation). *)

val add_po : ?name:string -> t -> lit -> int
(** Append a primary output driven by the literal; returns its index. *)

val set_po : t -> int -> lit -> unit

(** {1 Access} *)

val num_nodes : t -> int
(** Including the constant node and the PIs. *)

val revision : t -> int
(** Structural mutation counter: bumped by every node/PO append and
    [set_po].  Derived structures (e.g. {!Fanout.t}) record the revision
    they were built at and treat a mismatch as staleness. *)

val num_pis : t -> int
val num_pos : t -> int

val num_ands : t -> int
(** The AIG size measure used throughout (area proxy before mapping). *)

val pi_node : t -> int -> int
(** Node id of the [i]-th input. *)

val pi_lit : t -> int -> lit
val po_lit : t -> int -> lit
val pi_name : t -> int -> string
val po_name : t -> int -> string
val pi_index : t -> int -> int
(** PI position of a node id, or [-1] if the node is not a PI. *)

val fanin0 : t -> int -> lit
(** Fanins of an AND node.  Raises for PIs and the constant. *)

val fanin1 : t -> int -> lit

val is_const : int -> bool
val is_pi : t -> int -> bool
val is_and : t -> int -> bool

val iter_ands : t -> (int -> unit) -> unit
(** Visit every AND node id in topological (ascending) order. *)

val iter_pos : t -> (int -> lit -> unit) -> unit

(** {1 Restructuring} *)

type replacement =
  | Replace_lit of lit
      (** Substitute the node by an existing literal of the same graph. *)
  | Replace_expr of Logic.Factor.expr * int array
      (** Substitute by an expression over leaf node ids of the same graph. *)

val rebuild : ?replace:(int -> replacement option) -> t -> t
(** Copy the graph from its POs, applying substitutions on the way.  PIs are
    preserved in order (even if dangling); unreachable logic is dropped;
    structural hashing re-merges shared logic.  Raises [Failure] if a
    substitution introduces a combinational cycle. *)

val compact : t -> t
(** [rebuild] without substitutions: dead-node elimination + re-strashing. *)

val build_expr : t -> Logic.Factor.expr -> lit array -> lit
(** Instantiate a factored expression; [leaves.(i)] is the literal standing
    for expression variable [i]. *)

val pp_stats : Format.formatter -> t -> unit
