(** Structurally hashed AND-Inverter Graphs — arena-backed struct-of-arrays.

    An AIG node is the constant (node 0), a primary input, or a two-input AND
    gate.  Edges are literals: [2 * node_id + complement_bit], so inversion is
    free.  Nodes are append-only and every AND's fanins precede it, which
    makes ascending node-id order a topological order.

    The representation is a set of parallel unboxed [int array]s (fanins,
    PI reverse index) sharing one capacity, an open-addressing int-keyed
    structural-hash table probed directly against the fanin arrays (a strash
    hit allocates nothing), and a revision-stamped cache of derived views
    (levels, reference counts, CSR fanout, depth) rebuilt in bulk on demand.

    Graphs are mutated only by appending ([add_pi], [and_], [add_po],
    [set_po]); all restructuring transforms go through {!rebuild}, which
    walks an old graph from its outputs and produces a fresh graph — dead
    logic vanishes and acyclicity holds by construction.  A {!rebuilder}
    arena makes that path allocation-free at steady state, and
    {!clone}/{!snapshot} copy whole graphs by array blits with no strash
    re-insertion. *)

type t

type lit = int
(** Literal: [2 * id + phase]. [0] is constant false, [1] constant true. *)

val const0 : lit
val const1 : lit

(** {1 Literals} *)

val make_lit : int -> bool -> lit
(** [make_lit id compl]. *)

val node_of : lit -> int
val is_compl : lit -> bool
val lit_not : lit -> lit
val lit_not_cond : lit -> bool -> lit
val lit_regular : lit -> lit
(** Strip the complement bit. *)

(** {1 Construction} *)

val create : ?name:string -> unit -> t

val name : t -> string
val set_name : t -> string -> unit

val add_pi : ?name:string -> t -> lit
(** Append a primary input; returns its (positive) literal. *)

val and_ : t -> lit -> lit -> lit
(** Strashed AND with constant folding and the trivial-rule simplifications
    (idempotence, complement annihilation).  A strash hit is a pure probe of
    the open-addressing table against the fanin arrays: no allocation. *)

val add_po : ?name:string -> t -> lit -> int
(** Append a primary output driven by the literal; returns its index. *)

val set_po : t -> int -> lit -> unit

val reserve : t -> int -> unit
(** [reserve g n] pre-sizes the node arrays and the strash table for a graph
    of [n] nodes, so construction up to that size never reallocates. *)

(** {1 Access} *)

val num_nodes : t -> int
(** Including the constant node and the PIs. *)

val revision : t -> int
(** Structural mutation counter: bumped by every node/PO append, [set_po]
    and {!restore}.  Derived structures (e.g. {!Fanout.t}) record the
    revision they were built at and treat a mismatch as staleness. *)

val num_pis : t -> int
val num_pos : t -> int

val num_ands : t -> int
(** The AIG size measure used throughout (area proxy before mapping). *)

val pi_node : t -> int -> int
(** Node id of the [i]-th input. *)

val pi_lit : t -> int -> lit
val po_lit : t -> int -> lit
val pi_name : t -> int -> string
val po_name : t -> int -> string
val pi_index : t -> int -> int
(** PI position of a node id, or [-1] if the node is not a PI. *)

val fanin0 : t -> int -> lit
(** Fanins of an AND node.  Raises for PIs and the constant. *)

val fanin1 : t -> int -> lit

val find_and : t -> lit -> lit -> int option
(** Pure strash probe: the existing AND node with exactly these (normalized)
    fanins, if any.  Never inserts, folds or allocates table state. *)

val is_const : int -> bool
val is_pi : t -> int -> bool
val is_and : t -> int -> bool

val iter_ands : t -> (int -> unit) -> unit
(** Visit every AND node id in topological (ascending) order. *)

val iter_pos : t -> (int -> lit -> unit) -> unit

(** {1 Derived views}

    One revision-stamped bundle of derived structure, rebuilt in bulk the
    first time it is requested after a structural mutation and shared by
    every consumer until the next one.  All arrays are owned by the graph:
    treat them as read-only — mutating them corrupts every other reader of
    the same revision. *)

type views = private {
  v_rev : int;  (** the {!revision} the bundle was built at *)
  v_levels : int array;
      (** per node id: logic level (constant and PIs at 0) *)
  v_refs : int array;
      (** per node id: fanout references (AND fanins + PO drivers) *)
  v_offsets : int array;  (** CSR: node id -> slice of [v_targets] *)
  v_targets : int array;
      (** AND consumers per source node, ascending (hence topological) *)
  v_po_offsets : int array;  (** CSR: node id -> slice of [v_po_targets] *)
  v_po_targets : int array;  (** PO indexes per driver node *)
  v_depth : int;  (** max level over the PO drivers *)
}

val views : t -> views
(** The cached bundle for the current revision; O(|V| + |E|) to (re)build,
    O(1) while the graph is structurally unchanged. *)

val levels : t -> int array
(** [v_levels] of {!views} — cached, read-only. *)

val ref_counts : t -> int array
(** [v_refs] of {!views} — cached, read-only. *)

val depth : t -> int
(** [v_depth] of {!views}. *)

(** {1 Whole-graph copies}

    Both are plain array blits: the strash table is copied verbatim, never
    re-inserted, so copying is O(size) with a tiny constant and is safe to
    use per-candidate (guard/rollback) or per-worker (parallel sweeps). *)

val clone : t -> t
(** An independent graph with identical contents (same node ids, names,
    strash state).  The derived-view bundle is shared until either side
    mutates — views are immutable per revision, so this is safe. *)

type snapshot
(** An immutable copy of a graph's whole structural state. *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Roll the graph back to the snapshotted state in place.  Bumps the
    revision (monotonically — derived structures built after the snapshot
    can never falsely match the restored state). *)

(** {1 Restructuring} *)

type replacement =
  | Replace_lit of lit
      (** Substitute the node by an existing literal of the same graph. *)
  | Replace_expr of Logic.Factor.expr * int array
      (** Substitute by an expression over leaf node ids of the same graph. *)

val rebuild : ?replace:(int -> replacement option) -> t -> t
(** Copy the graph from its POs, applying substitutions on the way.  PIs are
    preserved in order (even if dangling); unreachable logic is dropped;
    structural hashing re-merges shared logic.  Raises [Failure] if a
    substitution introduces a combinational cycle. *)

val compact : t -> t
(** [rebuild] without substitutions: dead-node elimination + re-strashing. *)

type rebuilder
(** A reusable rebuild arena: the old-id -> new-lit map plus a pool of
    recycled destination graphs.  At steady state (map grown to the largest
    source, one graph in the pool) {!rebuild_with} performs no array
    allocation beyond what the rebuilt logic itself demands. *)

val rebuilder : unit -> rebuilder

val rebuild_with :
  rebuilder -> ?replace:(int -> replacement option) -> t -> t
(** Exactly {!rebuild} — same traversal, same node numbering, same result —
    but scratch comes from the arena and the destination graph is taken
    from the arena's pool when one is available.  Ownership of the result
    passes to the caller; hand rejected candidates back with {!recycle}. *)

val recycle : rebuilder -> t -> unit
(** Return a graph produced by {!rebuild_with} to the arena's pool.  The
    graph must no longer be referenced by the caller. *)

val build_expr : t -> Logic.Factor.expr -> lit array -> lit
(** Instantiate a factored expression; [leaves.(i)] is the literal standing
    for expression variable [i]. *)

val pp_stats : Format.formatter -> t -> unit
