module IntSet = Set.Make (Int)

let run g =
  let fanouts = Topo.fanout_counts g in
  let fresh = Graph.create ~name:(Graph.name g) () in
  let mapping = Array.make (Graph.num_nodes g) (-1) in
  mapping.(0) <- Graph.const0;
  for i = 0 to Graph.num_pis g - 1 do
    mapping.(Graph.pi_node g i) <- Graph.add_pi ~name:(Graph.pi_name g i) fresh
  done;
  (* Levels of the graph under construction, tracked incrementally in a
     growable int array (0 = unset; AND levels are always >= 1, and consts
     and PIs sit at level 0, so the default is also the right answer). *)
  let lev = ref (Array.make 1024 0) in
  let level_of l =
    let id = Graph.node_of l in
    if id < Array.length !lev then !lev.(id) else 0
  in
  let set_level id v =
    if id >= Array.length !lev then begin
      let n = ref (2 * Array.length !lev) in
      while id >= !n do n := 2 * !n done;
      let a = Array.make !n 0 in
      Array.blit !lev 0 a 0 (Array.length !lev);
      lev := a
    end;
    !lev.(id) <- v
  in
  let and_tracked a b =
    let r = Graph.and_ fresh a b in
    let id = Graph.node_of r in
    if Graph.is_and fresh id && level_of r = 0 then
      set_level id (1 + max (level_of a) (level_of b));
    r
  in
  (* Gather the operands of the maximal conjunction rooted at [l], stopping
     at complemented edges, PIs and shared (multi-fanout) nodes to preserve
     structural sharing. *)
  let rec collect_leaves l acc =
    let id = Graph.node_of l in
    if (not (Graph.is_compl l)) && Graph.is_and g id && fanouts.(id) = 1 then
      collect_leaves (Graph.fanin0 g id) (collect_leaves (Graph.fanin1 g id) acc)
    else l :: acc
  in
  let rec copy_lit l = Graph.lit_not_cond (copy_node (Graph.node_of l)) (Graph.is_compl l)
  and copy_node id =
    if mapping.(id) >= 0 then mapping.(id)
    else begin
      (* Decompose the root unconditionally; [collect_leaves] only descends
         through single-fanout conjuncts below it. *)
      let leaves =
        collect_leaves (Graph.fanin0 g id) (collect_leaves (Graph.fanin1 g id) [])
      in
      let new_lits = List.map copy_lit leaves in
      let set = IntSet.remove Graph.const1 (IntSet.of_list new_lits) in
      let contradictory =
        IntSet.mem Graph.const0 set
        || IntSet.exists (fun l -> IntSet.mem (Graph.lit_not l) set) set
      in
      let result =
        if contradictory then Graph.const0
        else begin
          (* Huffman-style: repeatedly conjoin the two shallowest operands. *)
          let sorted =
            List.sort (fun a b -> compare (level_of a) (level_of b)) (IntSet.elements set)
          in
          let rec reduce = function
            | [] -> Graph.const1
            | [ x ] -> x
            | a :: b :: rest ->
                let c = and_tracked a b in
                let rec insert = function
                  | [] -> [ c ]
                  | x :: xs when level_of x < level_of c -> x :: insert xs
                  | xs -> c :: xs
                in
                reduce (insert rest)
          in
          reduce sorted
        end
      in
      mapping.(id) <- result;
      result
    end
  in
  Graph.iter_pos g (fun i l ->
      ignore (Graph.add_po ~name:(Graph.po_name g i) fresh (copy_lit l)));
  fresh
