(** CSR fanout adjacency, shared by every node of one graph revision.

    Two compressed-sparse-row maps built in two passes over the edges:

    - [offsets]/[targets]: node id → the AND gates consuming it as a fanin
      (each consumer listed once, in ascending — hence topological — order);
    - [po_offsets]/[po_targets]: node id → the primary-output indexes it
      drives.

    This replaces per-node dense TFO masks (O(|AIG|) memory each, unbounded
    when cached) with one O(|V| + |E|) structure that supports sparse
    frontier traversal: a change at [v] needs to visit only
    [targets[offsets[v] .. offsets[v+1])], not every gate of the graph.

    A [t] snapshots {!Graph.revision} at build time; any later structural
    mutation of the graph makes it stale ({!matches} returns [false]) and
    callers must rebuild.

    The arrays themselves live in the graph's revision-stamped derived-view
    cache ({!Graph.views}): building a [t] against a warm cache is O(1) and
    shares the arrays with every other same-revision consumer — treat them
    as read-only. *)

type t

val build : Graph.t -> t
(** O(1) against a warm {!Graph.views} cache; otherwise the bulk two-pass
    CSR construction, O(|V| + |E|). *)

val revision : t -> int
(** The {!Graph.revision} the structure was built at. *)

val matches : t -> Graph.t -> bool
(** [matches t g] iff [t] was built from this [g] instance and [g] has not
    been structurally mutated since. *)

val degree : t -> int -> int
(** Number of AND consumers of a node. *)

val iter_fanouts : t -> int -> (int -> unit) -> unit
(** Visit the AND consumers of a node in ascending id order. *)

val iter_pos : t -> int -> (int -> unit) -> unit
(** Visit the PO indexes driven by a node. *)

(** {1 Raw arrays}

    For inner loops; treat as read-only.  Slice for node [v] is
    [offsets.(v) .. offsets.(v+1) - 1]. *)

val offsets : t -> int array
val targets : t -> int array
val po_offsets : t -> int array
val po_targets : t -> int array
