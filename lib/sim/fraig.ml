module Graph = Aig.Graph
module Bitvec = Logic.Bitvec

(* Per-node PI support as bitsets over PI indices. *)
let supports g =
  let npis = Graph.num_pis g in
  let n = Graph.num_nodes g in
  let sup = Array.init n (fun _ -> Bitvec.create npis) in
  for i = 0 to npis - 1 do
    Bitvec.set sup.(Graph.pi_node g i) i true
  done;
  Graph.iter_ands g (fun id ->
      let s = sup.(id) in
      Bitvec.logor_inplace s sup.(Graph.node_of (Graph.fanin0 g id));
      Bitvec.logor_inplace s sup.(Graph.node_of (Graph.fanin1 g id)));
  sup

let sweep ?(max_support = 14) ?(rounds = 256) ?(seed = 1) g =
  let g = Graph.compact g in
  let npis = Graph.num_pis g in
  if npis = 0 then (g, 0)
  else begin
    let rng = Logic.Rng.create seed in
    let pats = Patterns.random rng ~npis ~len:rounds in
    let sigs = Engine.simulate g pats in
    let sup = supports g in
    (* Candidate classes keyed by the canonical (phase-normalized)
       signature: a node whose signature starts with 1 is keyed by its
       complement.  The key is hashed directly over the raw signature words
       (no per-node string or complement vector is materialized); hash
       collisions are resolved by exact word comparison against each class
       representative, so classes are identical to the old string-keyed
       ones.  When hashing or comparing "as complemented", the last word is
       reduced to the payload bits: the vector invariant keeps the unused
       tail bits zero, and a virtual complement must not flip them. *)
    let tail =
      let rem = rounds mod Bitvec.word_bits in
      if rem = 0 then Bitvec.word_mask else (1 lsl rem) - 1
    in
    let canon_hash s invert =
      let words = Bitvec.unsafe_words s in
      let nw = Array.length words in
      let inv = if invert then Bitvec.word_mask else 0 in
      let h = ref 0 in
      for i = 0 to nw - 1 do
        let w = words.(i) lxor inv in
        let w = if i = nw - 1 then w land tail else w in
        h := (!h * 0x9E3779B1) lxor w
      done;
      let h = !h lxor (!h lsr 16) in
      h * 0x85EBCA77 land max_int
    in
    let canon_equal a inva b invb =
      let wa = Bitvec.unsafe_words a and wb = Bitvec.unsafe_words b in
      let nw = Array.length wa in
      let eq = ref true in
      let i = ref 0 in
      if inva = invb then
        while !eq && !i < nw do
          if wa.(!i) <> wb.(!i) then eq := false;
          incr i
        done
      else
        (* Opposite stored phases: canonical forms agree iff the raw words
           differ in exactly the payload positions. *)
        while !eq && !i < nw do
          let m = if !i = nw - 1 then tail else Bitvec.word_mask in
          if wa.(!i) lxor wb.(!i) <> m then eq := false;
          incr i
        done;
      !eq
    in
    let classes :
        (int, (Bitvec.t * bool * (int * bool) list ref) list ref) Hashtbl.t =
      Hashtbl.create 256
    in
    let classify id =
      let s = sigs.(id) in
      let phase = rounds > 0 && Bitvec.get s 0 in
      let h = canon_hash s phase in
      match Hashtbl.find_opt classes h with
      | None -> Hashtbl.add classes h (ref [ (s, phase, ref [ (id, phase) ]) ])
      | Some bucket -> (
          match
            List.find_opt (fun (rs, rp, _) -> canon_equal s phase rs rp) !bucket
          with
          | Some (_, _, members) -> members := (id, phase) :: !members
          | None -> bucket := (s, phase, ref [ (id, phase) ]) :: !bucket)
    in
    Graph.iter_ands g classify;
    (* Exact check: tabulate both nodes over the union of their supports. *)
    let support_list mask =
      let acc = ref [] in
      Bitvec.iter_set mask (fun i -> acc := Graph.pi_node g i :: !acc);
      List.rev !acc
    in
    let proved_equal a b =
      let union = Bitvec.logor sup.(a) sup.(b) in
      let k = Bitvec.popcount union in
      if k > max_support || k > Logic.Truth.max_vars then None
      else begin
        let leaves = Array.of_list (support_list union) in
        let ta = Aig.Cut.truth g ~root:a ~leaves in
        let tb = Aig.Cut.truth g ~root:b ~leaves in
        if Logic.Truth.equal ta tb then Some false
        else if Logic.Truth.equal ta (Logic.Truth.bnot tb) then Some true
        else None
      end
    in
    let replacements : (int, Graph.replacement) Hashtbl.t = Hashtbl.create 64 in
    let process_class members =
      match List.sort compare !members with
      | [] | [ _ ] -> ()
      | (rep, rep_phase) :: rest ->
          List.iter
            (fun (id, phase) ->
              if not (Hashtbl.mem replacements id) then
                match proved_equal rep id with
                | Some inverted ->
                    (* Sanity: the simulated phases must agree with the
                       proof. *)
                    ignore (rep_phase, phase);
                    Hashtbl.replace replacements id
                      (Graph.Replace_lit (Graph.make_lit rep inverted))
                | None -> ())
            rest
    in
    Hashtbl.iter
      (fun _ bucket -> List.iter (fun (_, _, members) -> process_class members) !bucket)
      classes;
    if Hashtbl.length replacements = 0 then (g, 0)
    else begin
      let merged = Graph.rebuild ~replace:(Hashtbl.find_opt replacements) g in
      if Graph.num_ands merged <= Graph.num_ands g then
        (merged, Hashtbl.length replacements)
      else (g, 0)
    end
  end

let run ?max_support ?rounds ?seed g = fst (sweep ?max_support ?rounds ?seed g)
