module Graph = Aig.Graph
module Bitvec = Logic.Bitvec

(* Per-node PI support as bitsets over PI indices. *)
let supports g =
  let npis = Graph.num_pis g in
  let n = Graph.num_nodes g in
  let sup = Array.init n (fun _ -> Bitvec.create npis) in
  for i = 0 to npis - 1 do
    Bitvec.set sup.(Graph.pi_node g i) i true
  done;
  Graph.iter_ands g (fun id ->
      let s = sup.(id) in
      Bitvec.logor_inplace s sup.(Graph.node_of (Graph.fanin0 g id));
      Bitvec.logor_inplace s sup.(Graph.node_of (Graph.fanin1 g id)));
  sup

let sweep ?(max_support = 14) ?(rounds = 256) ?(seed = 1) g =
  let g = Graph.compact g in
  let npis = Graph.num_pis g in
  if npis = 0 then (g, 0)
  else begin
    let rng = Logic.Rng.create seed in
    let pats = Patterns.random rng ~npis ~len:rounds in
    let sigs = Engine.simulate g pats in
    let sup = supports g in
    (* Candidate classes keyed by the canonical (phase-normalized)
       signature: a node whose signature starts with 1 is keyed by its
       complement. *)
    let classes : (string, (int * bool) list ref) Hashtbl.t = Hashtbl.create 256 in
    let classify id =
      let s = sigs.(id) in
      let phase = rounds > 0 && Bitvec.get s 0 in
      let canon = if phase then Bitvec.lognot s else s in
      let key = Bitvec.to_string canon in
      (match Hashtbl.find_opt classes key with
      | Some l -> l := (id, phase) :: !l
      | None -> Hashtbl.add classes key (ref [ (id, phase) ]));
      ()
    in
    Graph.iter_ands g classify;
    (* Exact check: tabulate both nodes over the union of their supports. *)
    let support_list mask =
      let acc = ref [] in
      Bitvec.iter_set mask (fun i -> acc := Graph.pi_node g i :: !acc);
      List.rev !acc
    in
    let proved_equal a b =
      let union = Bitvec.logor sup.(a) sup.(b) in
      let k = Bitvec.popcount union in
      if k > max_support || k > Logic.Truth.max_vars then None
      else begin
        let leaves = Array.of_list (support_list union) in
        let ta = Aig.Cut.truth g ~root:a ~leaves in
        let tb = Aig.Cut.truth g ~root:b ~leaves in
        if Logic.Truth.equal ta tb then Some false
        else if Logic.Truth.equal ta (Logic.Truth.bnot tb) then Some true
        else None
      end
    in
    let replacements : (int, Graph.replacement) Hashtbl.t = Hashtbl.create 64 in
    Hashtbl.iter
      (fun _ members ->
        match List.sort compare !members with
        | [] | [ _ ] -> ()
        | (rep, rep_phase) :: rest ->
            List.iter
              (fun (id, phase) ->
                if not (Hashtbl.mem replacements id) then
                  match proved_equal rep id with
                  | Some inverted ->
                      (* Sanity: the simulated phases must agree with the
                         proof. *)
                      ignore (rep_phase, phase);
                      Hashtbl.replace replacements id
                        (Graph.Replace_lit (Graph.make_lit rep inverted))
                  | None -> ())
              rest)
      classes;
    if Hashtbl.length replacements = 0 then (g, 0)
    else begin
      let merged = Graph.rebuild ~replace:(Hashtbl.find_opt replacements) g in
      if Graph.num_ands merged <= Graph.num_ands g then
        (merged, Hashtbl.length replacements)
      else (g, 0)
    end
  end

let run ?max_support ?rounds ?seed g = fst (sweep ?max_support ?rounds ?seed g)
