module Bitvec = Logic.Bitvec
module Graph = Aig.Graph

let word_mask = Bitvec.word_mask

(* dst := (a ^ ma) & (b ^ mb) word-wise, where ma/mb are phase masks. *)
let and_words dst a b ma mb =
  let dw = Bitvec.unsafe_words dst
  and aw = Bitvec.unsafe_words a
  and bw = Bitvec.unsafe_words b in
  for i = 0 to Array.length dw - 1 do
    dw.(i) <- (aw.(i) lxor ma) land (bw.(i) lxor mb)
  done;
  Bitvec.mask_tail dst

let phase_mask l = if Graph.is_compl l then word_mask else 0

(* Word-range variant for sharded simulation: only words [lo, hi) are
   written, and the tail invariant is NOT re-established (junk can only
   appear in the final word's padding bits and bitwise ops are bit-local, so
   one mask pass at the end of the sweep suffices). *)
let and_words_range dst a b ma mb lo hi =
  let dw = Bitvec.unsafe_words dst
  and aw = Bitvec.unsafe_words a
  and bw = Bitvec.unsafe_words b in
  for i = lo to hi - 1 do
    dw.(i) <- (aw.(i) lxor ma) land (bw.(i) lxor mb)
  done

(* Shard the pattern words across the pool: every shard runs the full
   topological sweep over its own word slice.  Word columns are independent,
   shards write disjoint slices of the shared signature arrays, and each
   word's value is computed by the exact same operations as the sequential
   sweep — the result is bit-identical at any pool size. *)
let simulate_sharded pool g sigs nwords =
  let chunk_size = max 8 ((nwords + 63) / 64) in
  Parallel.Chunk.iter ~pool ~chunk_size ~n:nwords (fun lo hi ->
      Graph.iter_ands g (fun id ->
          let f0 = Graph.fanin0 g id and f1 = Graph.fanin1 g id in
          and_words_range sigs.(id)
            sigs.(Graph.node_of f0)
            sigs.(Graph.node_of f1)
            (phase_mask f0) (phase_mask f1) lo hi));
  Graph.iter_ands g (fun id -> Bitvec.mask_tail sigs.(id))

let simulate ?pool g inputs =
  if Array.length inputs <> Graph.num_pis g then
    invalid_arg "Engine.simulate: one signature per PI required";
  let len = if Array.length inputs = 0 then 0 else Bitvec.length inputs.(0) in
  Array.iter
    (fun v ->
      if Bitvec.length v <> len then invalid_arg "Engine.simulate: ragged signatures")
    inputs;
  let sigs = Array.init (Graph.num_nodes g) (fun _ -> Bitvec.create len) in
  for i = 0 to Graph.num_pis g - 1 do
    Bitvec.blit inputs.(i) sigs.(Graph.pi_node g i)
  done;
  let nwords = if len = 0 then 0 else Bitvec.num_words sigs.(0) in
  (match pool with
  | Some p when Parallel.Pool.size p > 1 && nwords > 1 -> simulate_sharded p g sigs nwords
  | _ ->
      Graph.iter_ands g (fun id ->
          let f0 = Graph.fanin0 g id and f1 = Graph.fanin1 g id in
          and_words sigs.(id)
            sigs.(Graph.node_of f0)
            sigs.(Graph.node_of f1)
            (phase_mask f0) (phase_mask f1)));
  sigs

let lit_value sigs l =
  let v = sigs.(Graph.node_of l) in
  if Graph.is_compl l then Bitvec.lognot v else Bitvec.copy v

let po_values g sigs =
  Array.init (Graph.num_pos g) (fun i -> lit_value sigs (Graph.po_lit g i))

let simulate_pos ?pool g inputs = po_values g (simulate ?pool g inputs)

let resimulate_tfo g ~base ~tfo ~node ~value =
  let len = Bitvec.length value in
  (* Scratch signatures only for re-evaluated nodes. *)
  let scratch : Bitvec.t option array = Array.make (Graph.num_nodes g) None in
  scratch.(node) <- Some value;
  let sig_of id =
    match scratch.(id) with Some v -> v | None -> base.(id)
  in
  Graph.iter_ands g (fun id ->
      if tfo.(id) && id <> node then begin
        let f0 = Graph.fanin0 g id and f1 = Graph.fanin1 g id in
        let dst =
          match scratch.(id) with
          | Some v -> v
          | None ->
              let v = Bitvec.create len in
              scratch.(id) <- Some v;
              v
        in
        and_words dst (sig_of (Graph.node_of f0)) (sig_of (Graph.node_of f1))
          (phase_mask f0) (phase_mask f1)
      end);
  Array.init (Graph.num_pos g) (fun i ->
      let l = Graph.po_lit g i in
      let v = sig_of (Graph.node_of l) in
      if Graph.is_compl l then Bitvec.lognot v else Bitvec.copy v)
