(** Simulation-guided exact merging of functionally equivalent nodes
    ("fraig-lite").

    Random simulation partitions nodes into candidate equivalence classes
    (complement-aware); a candidate pair is merged only after an *exact*
    proof — both functions are tabulated over the union of their PI supports
    when that support is small enough.  No SAT solver is involved, keeping
    the whole repository simulation-only like the paper's flow; pairs whose
    support exceeds the bound are simply left alone.

    This is the substitute for the functional-reduction half of ABC's
    [fraig]/[dc2]; structural hashing alone cannot merge functionally equal
    but structurally different logic (e.g. the adder/subtractor pairs in the
    c7552-class benchmark). *)

val run :
  ?max_support:int -> ?rounds:int -> ?seed:int -> Aig.Graph.t -> Aig.Graph.t
(** Defaults: [max_support = 14], [rounds = 256], [seed = 1].  The result is
    functionally equivalent to the input (merges are proven), never larger,
    and re-strashed. *)

val sweep :
  ?max_support:int -> ?rounds:int -> ?seed:int -> Aig.Graph.t -> Aig.Graph.t * int
(** One merge pass with the same defaults and guarantees as {!run}, also
    returning the number of proven merges that were applied ([0] when the
    pass was a no-op).  Callers that need a fixpoint — notably the miter
    reduction loop of [Verify.Cec] — iterate this until the count drops to
    zero. *)
