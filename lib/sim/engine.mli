(** Word-parallel AIG simulation.

    The signature of a node is the vector of its values over all simulation
    rounds; all rounds are processed 62 at a time. *)

val simulate :
  ?pool:Parallel.Pool.t -> Aig.Graph.t -> Logic.Bitvec.t array -> Logic.Bitvec.t array
(** [simulate g inputs] with [inputs.(i)] the pattern signature of PI [i]
    (all the same length) returns per-node signatures indexed by node id.
    The constant node's signature is all-zero.

    With [?pool], the pattern words are sharded across the pool (each shard
    sweeps the whole graph over its own word slice).  Word columns are
    independent, so the result is bit-identical to the sequential sweep at
    any pool size. *)

val po_values : Aig.Graph.t -> Logic.Bitvec.t array -> Logic.Bitvec.t array
(** Apply PO literals (complement included) to node signatures. *)

val simulate_pos :
  ?pool:Parallel.Pool.t -> Aig.Graph.t -> Logic.Bitvec.t array -> Logic.Bitvec.t array
(** [po_values g (simulate ?pool g inputs)]. *)

val lit_value : Logic.Bitvec.t array -> Aig.Graph.lit -> Logic.Bitvec.t
(** Signature of a literal (fresh vector when complemented). *)

val resimulate_tfo :
  Aig.Graph.t ->
  base:Logic.Bitvec.t array ->
  tfo:bool array ->
  node:int ->
  value:Logic.Bitvec.t ->
  Logic.Bitvec.t array
(** PO signatures after overriding [node]'s signature with [value] and
    re-evaluating only the nodes marked in [tfo] (as from
    {!Aig.Cone.tfo_mask}).  [base] is untouched; nodes outside the mask reuse
    their base signatures.  This is the inner operation of batch error
    estimation. *)
