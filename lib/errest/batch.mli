(** Batch statistical error estimation for candidate changes (Su et al.,
    DAC 2018 — reference [13] of the paper).

    One base simulation of the current circuit is shared by all candidates;
    each candidate supplies only the new signature of its target node.  The
    estimator is event-driven (DESIGN.md §10): it walks the change's sparse
    fanout frontier in level order using the {!Aig.Fanout} CSR, recomputes
    only nodes with a changed fanin, stops propagating through any node
    whose recomputed signature equals its base signature (difference-mask
    early exit), and scores the surviving changed signature words through
    {!Metrics.measure_incremental} — bit-identical to a full re-simulation
    and re-measure, at a fraction of the work. *)

type t

val create :
  ?weights:float array ->
  Aig.Graph.t ->
  metric:Metrics.kind ->
  golden:Logic.Bitvec.t array ->
  base:Logic.Bitvec.t array ->
  t
(** [create g ~metric ~golden ~base]: [golden] are the PO signatures of the
    ORIGINAL circuit on the evaluation pattern set, [base] the node
    signatures of the CURRENT circuit [g] on the same set.  [weights] are
    per-round input-distribution weights (see {!Metrics.prepare}), folded
    into the prepared metric so every candidate score — incremental or full
    — is weighted identically.  Builds the
    fanout CSR once; it is rebuilt automatically if [g] is structurally
    mutated later (PO rewiring), but appending nodes after [create]
    invalidates [base] and raises [Invalid_argument] on the next use. *)

val graph : t -> Aig.Graph.t

val base_error : t -> float
(** Error of the current circuit itself (no change applied). *)

val candidate_error : t -> node:int -> new_sig:Logic.Bitvec.t -> float
(** Sampled error of the circuit after forcing [node]'s signature to
    [new_sig].  If the signature equals the base one, this is
    [base_error]. *)

val candidate_pos : t -> node:int -> new_sig:Logic.Bitvec.t -> Logic.Bitvec.t array
(** PO signatures under the override (for callers needing more than the
    scalar error).  The returned vectors live in scratch buffers owned by
    [t] and are only valid until the next [candidate_*] call on [t]; copy
    them if they must outlive it. *)

val candidate_errors :
  ?pool:Parallel.Pool.t -> t -> (int * Logic.Bitvec.t) array -> float array
(** [candidate_errors t specs] is [candidate_error] over an array of
    [(node, new_sig)] pairs, result [i] for candidate [i].  With [?pool],
    candidates are scored concurrently — each chunk works on a private
    scratch clone while sharing the graph, base signatures, fanout CSR and
    the (pre-forced) incremental metric state read-only — and every
    per-candidate computation is unchanged, so the results are bit-identical
    to the sequential path at any pool size.  Chunk counters are folded
    into [t]'s in chunk order, so {!stats} is deterministic too. *)

(** {1 Scoring counters}

    Observational per-process counters (like the certification counters:
    NOT journaled, reset on resume).  Cumulative since [create]. *)

type stats = {
  scored : int;  (** candidates scored, including trivial ones *)
  trivial : int;  (** candidates whose signature equals the base *)
  early_exits : int;  (** non-trivial candidates whose diffs died out
                          before reaching any PO *)
  frontier_nodes : int;  (** fanout-cone nodes recomputed, total *)
  changed_pos : int;  (** changed primary outputs, total *)
  changed_words : int;  (** changed signature words re-measured, total *)
}

val stats : t -> stats

val zero_stats : stats

val add_stats : stats -> stats -> stats
