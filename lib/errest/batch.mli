(** Batch statistical error estimation for candidate changes (Su et al.,
    DAC 2018 — reference [13] of the paper).

    One base simulation of the current circuit is shared by all candidates;
    each candidate supplies only the new signature of its target node, and
    the estimator re-simulates the node's transitive fanout cone to obtain
    the candidate's exact sampled error against the golden outputs.  TFO
    masks are cached per target node, so evaluating many candidates on the
    same node costs one mask computation. *)

type t

val create :
  Aig.Graph.t ->
  metric:Metrics.kind ->
  golden:Logic.Bitvec.t array ->
  base:Logic.Bitvec.t array ->
  t
(** [create g ~metric ~golden ~base]: [golden] are the PO signatures of the
    ORIGINAL circuit on the evaluation pattern set, [base] the node
    signatures of the CURRENT circuit [g] on the same set. *)

val graph : t -> Aig.Graph.t

val base_error : t -> float
(** Error of the current circuit itself (no change applied). *)

val candidate_error : t -> node:int -> new_sig:Logic.Bitvec.t -> float
(** Sampled error of the circuit after forcing [node]'s signature to
    [new_sig].  If the signature equals the base one, this is
    [base_error]. *)

val candidate_pos : t -> node:int -> new_sig:Logic.Bitvec.t -> Logic.Bitvec.t array
(** PO signatures under the override (for callers needing more than the
    scalar error). *)

val candidate_errors :
  ?pool:Parallel.Pool.t -> t -> (int * Logic.Bitvec.t) array -> float array
(** [candidate_errors t specs] is [candidate_error] over an array of
    [(node, new_sig)] pairs, result [i] for candidate [i].  With [?pool],
    candidates are scored concurrently — each chunk works on a private
    scratch clone while sharing the base signatures and (pre-warmed) TFO
    cache read-only — and every per-candidate computation is unchanged, so
    the results are bit-identical to the sequential path at any pool
    size. *)
