(** Input distributions for error measurement (ResubALS [--distrType]).

    [Unif] is the implicit uniform distribution every earlier PR assumed.
    [Enum] is an enumerated distribution: an explicit list of input patterns
    with non-negative weights — measurement over an enumerated distribution
    simulates exactly the listed patterns (one simulation round per row) and
    weights the per-round terms, so it is {e exact over the support}, not a
    Monte-Carlo estimate. *)

type t =
  | Unif
  | Enum of {
      npis : int;  (** width of every pattern row *)
      rows : bool array array;  (** [rows.(m).(i)] = value of PI [i] in row [m] *)
      weights : float array;  (** one non-negative weight per row, positive total *)
    }

val unif : t

val enum : rows:bool array array -> weights:float array -> t
(** Validating constructor.  Raises [Invalid_argument] on empty or ragged
    rows, mismatched weight count, negative/non-finite weights, or a zero
    total. *)

val is_enum : t -> bool

val npis : t -> int option
(** Pattern width; [None] for [Unif] (which fits any circuit). *)

val num_rows : t -> int
(** Number of enumerated patterns; [0] for [Unif]. *)

val equal : t -> t -> bool
(** Structural, with [Float.equal] on weights. *)

val validate_npis : t -> npis:int -> (unit, string) result
(** Check the distribution fits a circuit with the given PI count. *)

val to_string : t -> string
(** Single line, no newlines — the form the run journal stores.  ["unif"],
    or ["enum bits:w,bits:w,..."] with hex-float weights so the round trip
    through {!of_string} is bit-exact. *)

val of_string : string -> (t, string) result

val parse_lines : string list -> (t, string) result
(** Parse the ENUM pattern-file format: one ["bitstring weight"] pair per
    line (leftmost character = PI 0), [#] comments and blank lines
    ignored. *)

val load : string -> (t, string) result
(** {!parse_lines} on a file. *)

val signatures : t -> Logic.Bitvec.t array
(** The enumerated patterns as PI signature vectors: one simulation round
    per row, in file order — simulate these and measure with
    {!val:round_weights} for the exact weighted error.  Raises
    [Invalid_argument] on [Unif]. *)

val round_weights : t -> float array option
(** Per-round weights matching {!signatures}; [None] for [Unif]. *)

val sample : t -> Logic.Rng.t -> npis:int -> len:int -> Logic.Bitvec.t array
(** [len] care-set patterns drawn from the distribution: uniform random
    vectors for [Unif], rows sampled proportionally to their weights for
    [Enum] (whose [npis] must match). *)
