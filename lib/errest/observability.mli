(** Per-pattern output sensitivity by a single backward sweep.

    [masks g ~sigs] returns, per node, a vector whose bit [m] estimates
    whether flipping the node's value in round [m] flips at least one PO,
    propagating the Boolean difference backwards edge-by-edge.  The estimate
    is exact on fanout-free trees; under reconvergence it is a heuristic in
    both directions (parallel paths may cancel a flagged flip, or jointly
    propagate an unflagged one).  This is the change-propagation half of Su
    et al.'s estimator family and serves as a cheap ranking signal; the
    authoritative answer is {!Sim.Engine.resimulate_tfo} as used by
    {!Batch}. *)

val masks : Aig.Graph.t -> sigs:Logic.Bitvec.t array -> Logic.Bitvec.t array

(** {1 Execution observability}

    Rendering of the worker-pool counters carried in flow reports: per
    worker, tasks executed, steals, and busy/idle wall time.  Signal-level
    observability (the masks above) and execution-level observability are
    deliberately reported through the same module. *)

val pp_pool_stats : Format.formatter -> Parallel.Pool.stat array -> unit
(** Multi-line, one worker per line. *)

val pool_summary : Parallel.Pool.stat array -> string
(** One-line aggregate: worker count, total tasks/steals, total busy
    seconds. *)
