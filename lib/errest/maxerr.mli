(** Exact maximum-error certification by error-computation miter.

    Sampling finds candidate worst-case rounds fast, but a sampled maximum is
    only a lower bound on the true worst case.  This module closes the gap
    without SAT: it appends a word-level error computation (subtractor /
    popcount / constant-multiplier comparator, built from {!Circuits.Word})
    to a shared-PI copy of both circuits, producing a {e violation miter}
    whose single output is true exactly on the inputs where the error
    exceeds a candidate bound — then proves that output constant-false with
    the {!Verify.Cec} portfolio.  A counterexample is a concrete input whose
    (exactly re-evaluated) error replaces the bound, so the loop climbs
    through attained error values and terminates at the true maximum:
    attained by a witness {e and} proven unbeatable.

    MaxRED bounds are ratios of output integers; the certificate keeps them
    as exact rationals ([|d| * den > num * max(g,1)] in the miter, 124-bit
    cross products in the comparisons) so no float rounding can leak into a
    proof.

    This is the bound family for the max metrics; the Hoeffding bounds of
    {!Certify} apply only to [0,1]-bounded mean metrics (see
    {!Metrics.bounded_mean}). *)

type outcome =
  | Exact of {
      max : float;  (** [num /. den], for display and threshold checks *)
      num : int;
      den : int;  (** 1 except for [Maxred] *)
      refinements : int;  (** witness-refinement iterations beyond the sample *)
    }
  | Undecided of string
      (** the CEC portfolio could not close the miter (or the refinement
          budget ran out); the message says why *)

val certify :
  ?seed:int ->
  ?rounds:int ->
  ?effort:Verify.Cec.effort ->
  ?max_refinements:int ->
  Metrics.kind ->
  original:Aig.Graph.t ->
  approx:Aig.Graph.t ->
  outcome
(** [certify kind ~original ~approx] computes the exact maximum error under
    the uniform input space for a max metric ([Maxed], [Maxhd], [Maxred] —
    anything else raises [Invalid_argument], as do interface mismatches and
    more than 62 POs).  Defaults: [seed = 1], [rounds = 4096] simulation
    rounds for the starting sample (exhaustive when at most 16 PIs),
    [effort = Thorough], [max_refinements = 200].  Deterministic in the
    seed.

    Enumerated distributions never need this machinery: their support is
    explicit, so the exact maximum is a direct measurement over
    {!Distr.signatures}. *)

val certified_le :
  ?seed:int ->
  ?rounds:int ->
  ?effort:Verify.Cec.effort ->
  ?max_refinements:int ->
  Metrics.kind ->
  original:Aig.Graph.t ->
  approx:Aig.Graph.t ->
  threshold:float ->
  (bool, string) result
(** [Ok true] iff the proven exact maximum respects the threshold;
    [Error msg] when the portfolio cannot decide. *)

val violation :
  Metrics.kind ->
  original:Aig.Graph.t ->
  approx:Aig.Graph.t ->
  num:int ->
  den:int ->
  Aig.Graph.t
(** The raw violation miter: a circuit over the shared PIs with one PO that
    is true exactly where the error of [approx] strictly exceeds
    [num / den].  Exposed for the oracle tests, which enumerate all [2^n]
    inputs against it. *)

val outcome_to_string : outcome -> string
