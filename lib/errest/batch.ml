module Bitvec = Logic.Bitvec
module Graph = Aig.Graph
module Fanout = Aig.Fanout

type stats = {
  scored : int;
  trivial : int;
  early_exits : int;
  frontier_nodes : int;
  changed_pos : int;
  changed_words : int;
}

let zero_stats =
  {
    scored = 0;
    trivial = 0;
    early_exits = 0;
    frontier_nodes = 0;
    changed_pos = 0;
    changed_words = 0;
  }

let add_stats a b =
  {
    scored = a.scored + b.scored;
    trivial = a.trivial + b.trivial;
    early_exits = a.early_exits + b.early_exits;
    frontier_nodes = a.frontier_nodes + b.frontier_nodes;
    changed_pos = a.changed_pos + b.changed_pos;
    changed_words = a.changed_words + b.changed_words;
  }

type counters = {
  mutable c_scored : int;
  mutable c_trivial : int;
  mutable c_early : int;
  mutable c_frontier : int;
  mutable c_pos : int;
  mutable c_words : int;
}

let fresh_counters () =
  {
    c_scored = 0;
    c_trivial = 0;
    c_early = 0;
    c_frontier = 0;
    c_pos = 0;
    c_words = 0;
  }

type t = {
  g : Graph.t;
  metric : Metrics.kind;
  golden : Bitvec.t array;
  base : Bitvec.t array;
  len : int;
  nwords : int;
  tail_mask : int;
  prepared : Metrics.prepared;
  (* Shared read-only once forced (the parallel path forces them before
     fanning out). *)
  mutable fanout : Fanout.t;
  mutable base_pos : Bitvec.t array option;
  mutable inc : Metrics.incremental option;
  mutable base_err : float option;
  (* Candidate scratch, reused across candidates: [stamps.(id) = gen] marks
     a node buffer as holding this candidate's CHANGED value (nodes whose
     recomputed value equals the base are never stamped — that is the
     difference-mask early exit). *)
  bufs : Bitvec.t option array;
  stamps : int array;
  mutable gen : int;
  (* Sparse frontier: a min-heap of node ids.  Ids ascend topologically, so
     popping the minimum processes each gate after all its changed fanins. *)
  heap : int array;
  mutable heap_len : int;
  heap_stamp : int array;
  (* Live words of the current candidate: the signature words where the
     seed diff [new_sig ^ base.(node)] is non-zero.  AND-masking only ever
     shrinks a difference, so no downstream node can differ from its base
     outside this set — propagation recomputes ONLY these words, leaving
     the rest of each scratch buffer stale (and never read). *)
  live_words : int array;
  mutable n_live : int;
  (* Changed POs of the current candidate. *)
  mutable po_stamp : int array;
  mutable changed_po : int array;
  mutable n_changed_po : int;
  changed_words_buf : int array;
  (* Reused PO materialization buffers ({!candidate_pos}). *)
  mutable po_bufs : Bitvec.t option array;
  counters : counters;
}

let tail_mask_for ~len ~nwords =
  if nwords = 0 then 0
  else begin
    let used = len - ((nwords - 1) * Bitvec.word_bits) in
    if used >= Bitvec.word_bits then Bitvec.word_mask else (1 lsl used) - 1
  end

let create ?weights g ~metric ~golden ~base =
  if Array.length base <> Graph.num_nodes g then
    invalid_arg "Batch.create: base signatures must cover every node";
  let len = if Array.length base = 0 then 0 else Bitvec.length base.(0) in
  let nwords = Bitvec.num_words (Bitvec.create len) in
  let n = Graph.num_nodes g in
  {
    g;
    metric;
    golden;
    base;
    len;
    nwords;
    tail_mask = tail_mask_for ~len ~nwords;
    prepared = Metrics.prepare ?weights metric ~golden;
    fanout = Fanout.build g;
    base_pos = None;
    inc = None;
    base_err = None;
    bufs = Array.make n None;
    stamps = Array.make n 0;
    gen = 0;
    heap = Array.make n 0;
    heap_len = 0;
    heap_stamp = Array.make n 0;
    live_words = Array.make (max 1 nwords) 0;
    n_live = 0;
    po_stamp = Array.make (Graph.num_pos g) 0;
    changed_po = Array.make (max 1 (Graph.num_pos g)) 0;
    n_changed_po = 0;
    changed_words_buf = Array.make (max 1 nwords) 0;
    po_bufs = Array.make (Graph.num_pos g) None;
    counters = fresh_counters ();
  }

let graph t = t.g

(* Invalidate derived state if the graph was structurally mutated since the
   fanout CSR was built.  Appending nodes leaves the base signatures
   incomplete — that is unrecoverable; PO rewiring only stales the
   PO-side caches, which are rebuilt. *)
let refresh t =
  if not (Fanout.matches t.fanout t.g) then begin
    if Array.length t.base <> Graph.num_nodes t.g then
      invalid_arg "Batch: graph gained nodes since create; base signatures are stale";
    t.fanout <- Fanout.build t.g;
    t.base_pos <- None;
    t.inc <- None;
    t.base_err <- None;
    let npos = Graph.num_pos t.g in
    if Array.length t.po_stamp <> npos then begin
      t.po_stamp <- Array.make npos 0;
      t.changed_po <- Array.make (max 1 npos) 0;
      t.po_bufs <- Array.make npos None
    end
  end

let base_pos t =
  match t.base_pos with
  | Some pos -> pos
  | None ->
      let pos = Sim.Engine.po_values t.g t.base in
      t.base_pos <- Some pos;
      pos

let incremental t =
  match t.inc with
  | Some inc -> inc
  | None ->
      let inc = Metrics.prepare_incremental t.prepared ~approx:(base_pos t) in
      t.inc <- Some inc;
      inc

let base_error t =
  match t.base_err with
  | Some e -> e
  | None ->
      let e = Metrics.incremental_base (incremental t) in
      t.base_err <- Some e;
      e

(* ---------- Frontier machinery ---------- *)

let heap_push t id =
  if t.heap_stamp.(id) <> t.gen then begin
    t.heap_stamp.(id) <- t.gen;
    let heap = t.heap in
    let i = ref t.heap_len in
    t.heap_len <- t.heap_len + 1;
    heap.(!i) <- id;
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      heap.(p) > heap.(!i)
    do
      let p = (!i - 1) / 2 in
      let tmp = heap.(p) in
      heap.(p) <- heap.(!i);
      heap.(!i) <- tmp;
      i := p
    done
  end

let heap_pop t =
  let heap = t.heap in
  let top = heap.(0) in
  t.heap_len <- t.heap_len - 1;
  heap.(0) <- heap.(t.heap_len);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let s = ref !i in
    if l < t.heap_len && heap.(l) < heap.(!s) then s := l;
    if r < t.heap_len && heap.(r) < heap.(!s) then s := r;
    if !s = !i then continue := false
    else begin
      let tmp = heap.(!s) in
      heap.(!s) <- heap.(!i);
      heap.(!i) <- tmp;
      i := !s
    end
  done;
  top

let push_fanouts t v =
  let offsets = Fanout.offsets t.fanout and targets = Fanout.targets t.fanout in
  for i = offsets.(v) to offsets.(v + 1) - 1 do
    heap_push t targets.(i)
  done

let mark_pos t v =
  let po_offsets = Fanout.po_offsets t.fanout
  and po_targets = Fanout.po_targets t.fanout in
  for i = po_offsets.(v) to po_offsets.(v + 1) - 1 do
    let p = po_targets.(i) in
    if t.po_stamp.(p) <> t.gen then begin
      t.po_stamp.(p) <- t.gen;
      t.changed_po.(t.n_changed_po) <- p;
      t.n_changed_po <- t.n_changed_po + 1
    end
  done

let buf_for t id =
  match t.bufs.(id) with
  | Some v when Bitvec.length v = t.len -> v
  | _ ->
      let v = Bitvec.create t.len in
      t.bufs.(id) <- Some v;
      v

let word_mask = Bitvec.word_mask
let phase_mask l = if Graph.is_compl l then word_mask else 0

(* Fused recompute-and-compare over the candidate's LIVE words only:
   dst.(w) := (a ^ ma) & (b ^ mb) for each live [w], returning whether any
   differs from the base value.  Non-live words of [dst] are left stale —
   no downstream read ever touches them.  The tail word is masked before
   the comparison so phase masks cannot fabricate a difference in the
   padding. *)
let and_words_diff t dst a b ma mb base_v =
  let dw = Bitvec.unsafe_words dst
  and aw = Bitvec.unsafe_words a
  and bw = Bitvec.unsafe_words b
  and ev = Bitvec.unsafe_words base_v in
  let last = Array.length dw - 1 in
  let diff = ref 0 in
  for k = 0 to t.n_live - 1 do
    let i = t.live_words.(k) in
    let x = (aw.(i) lxor ma) land (bw.(i) lxor mb) in
    let x = if i = last then x land t.tail_mask else x in
    dw.(i) <- x;
    diff := !diff lor (x lxor ev.(i))
  done;
  !diff <> 0

(* Level-ordered sparse traversal of the change's actual reach.  Returns
   the number of POs whose driver value changed; the scratch state
   ([stamps]/[bufs]/[live_words]/[changed_po]) describes the candidate
   until the next propagation.  Assumes [new_sig <> base.(node)]. *)
let propagate t ~node ~new_sig =
  t.gen <- t.gen + 1;
  t.heap_len <- 0;
  t.n_changed_po <- 0;
  (* The live-word set: words of the seed difference.  AND gates can only
     mask differences away, never spread them to other rounds, so this set
     bounds every downstream diff. *)
  let nw = Bitvec.unsafe_words new_sig and bw = Bitvec.unsafe_words t.base.(node) in
  t.n_live <- 0;
  for w = 0 to t.nwords - 1 do
    if nw.(w) lxor bw.(w) <> 0 then begin
      t.live_words.(t.n_live) <- w;
      t.n_live <- t.n_live + 1
    end
  done;
  t.stamps.(node) <- t.gen;
  let seed = Bitvec.unsafe_words (buf_for t node) in
  for k = 0 to t.n_live - 1 do
    let w = t.live_words.(k) in
    seed.(w) <- nw.(w)
  done;
  mark_pos t node;
  push_fanouts t node;
  while t.heap_len > 0 do
    let u = heap_pop t in
    t.counters.c_frontier <- t.counters.c_frontier + 1;
    let f0 = Graph.fanin0 t.g u and f1 = Graph.fanin1 t.g u in
    let n0 = Graph.node_of f0 and n1 = Graph.node_of f1 in
    let s0 = if t.stamps.(n0) = t.gen then Option.get t.bufs.(n0) else t.base.(n0) in
    let s1 = if t.stamps.(n1) = t.gen then Option.get t.bufs.(n1) else t.base.(n1) in
    let dst = buf_for t u in
    if and_words_diff t dst s0 s1 (phase_mask f0) (phase_mask f1) t.base.(u) then begin
      t.stamps.(u) <- t.gen;
      mark_pos t u;
      push_fanouts t u
    end
  done;
  t.n_changed_po

(* Word [w] of the candidate signature of PO [po]: the driver's scratch
   buffer when it changed, the base signature otherwise; complemented edges
   are tail-masked so padding stays zero.  Only called for changed words,
   which are live — stale non-live scratch words are never read. *)
let po_word t po w =
  let l = Graph.po_lit t.g po in
  let d = Graph.node_of l in
  let words =
    if t.stamps.(d) = t.gen then Bitvec.unsafe_words (Option.get t.bufs.(d))
    else Bitvec.unsafe_words t.base.(d)
  in
  let x = words.(w) in
  if Graph.is_compl l then
    lnot x land (if w = t.nwords - 1 then t.tail_mask else word_mask)
  else x

(* The signature words the change reached: union over changed POs of the
   driver's non-zero difference words.  Only live words can differ, and
   [live_words] is ascending, so the result is too. *)
let collect_changed_words t =
  let cn = ref 0 in
  for j = 0 to t.n_live - 1 do
    let w = t.live_words.(j) in
    let hit = ref false in
    let k = ref 0 in
    while (not !hit) && !k < t.n_changed_po do
      let d = Graph.node_of (Graph.po_lit t.g t.changed_po.(!k)) in
      let dwords = Bitvec.unsafe_words (Option.get t.bufs.(d)) in
      let bwords = Bitvec.unsafe_words t.base.(d) in
      if dwords.(w) lxor bwords.(w) <> 0 then hit := true;
      incr k
    done;
    if !hit then begin
      t.changed_words_buf.(!cn) <- w;
      incr cn
    end
  done;
  !cn

let candidate_error t ~node ~new_sig =
  refresh t;
  if Bitvec.length new_sig <> t.len then
    invalid_arg "Batch.candidate_error: signature length mismatch";
  t.counters.c_scored <- t.counters.c_scored + 1;
  if Bitvec.equal new_sig t.base.(node) then begin
    t.counters.c_trivial <- t.counters.c_trivial + 1;
    base_error t
  end
  else begin
    let inc = incremental t in
    let ncp = propagate t ~node ~new_sig in
    if ncp = 0 then begin
      (* Every difference was masked out before reaching an output. *)
      t.counters.c_early <- t.counters.c_early + 1;
      base_error t
    end
    else begin
      t.counters.c_pos <- t.counters.c_pos + ncp;
      let cn = collect_changed_words t in
      t.counters.c_words <- t.counters.c_words + cn;
      Metrics.measure_incremental inc ~nchanged:cn
        ~changed_words:t.changed_words_buf
        ~get_word:(fun po w -> po_word t po w)
    end
  end

let candidate_pos t ~node ~new_sig =
  refresh t;
  if Bitvec.length new_sig <> t.len then
    invalid_arg "Batch.candidate_pos: signature length mismatch";
  if Bitvec.equal new_sig t.base.(node) then begin
    (* Invalidate stamps so the materialization below reads pure base. *)
    t.gen <- t.gen + 1;
    t.n_changed_po <- 0
  end
  else ignore (propagate t ~node ~new_sig : int);
  Array.init (Graph.num_pos t.g) (fun i ->
      let l = Graph.po_lit t.g i in
      let d = Graph.node_of l in
      let dst =
        match t.po_bufs.(i) with
        | Some v when Bitvec.length v = t.len -> v
        | _ ->
            let v = Bitvec.create t.len in
            t.po_bufs.(i) <- Some v;
            v
      in
      (* Stamped scratch holds only the live words; everything else is the
         base value. *)
      Bitvec.blit t.base.(d) dst;
      if t.stamps.(d) = t.gen then begin
        let dw = Bitvec.unsafe_words dst
        and sw = Bitvec.unsafe_words (Option.get t.bufs.(d)) in
        for k = 0 to t.n_live - 1 do
          let w = t.live_words.(k) in
          dw.(w) <- sw.(w)
        done
      end;
      if Graph.is_compl l then Bitvec.lognot_into dst dst;
      dst)

let stats t =
  let c = t.counters in
  {
    scored = c.c_scored;
    trivial = c.c_trivial;
    early_exits = c.c_early;
    frontier_nodes = c.c_frontier;
    changed_pos = c.c_pos;
    changed_words = c.c_words;
  }

(* A scratch-only clone for one pool task: shares every read-only part (the
   graph, golden and base signatures, fanout CSR, prepared metric and the
   pre-forced incremental base state) and owns fresh frontier scratch plus
   its own counters.  [base_error]/[incremental] must already be forced on
   [t] so clones never race to compute them. *)
let clone_scratch t =
  let n = Graph.num_nodes t.g in
  {
    t with
    bufs = Array.make n None;
    stamps = Array.make n 0;
    gen = 0;
    heap = Array.make n 0;
    heap_len = 0;
    heap_stamp = Array.make n 0;
    live_words = Array.make (Array.length t.live_words) 0;
    n_live = 0;
    po_stamp = Array.make (Array.length t.po_stamp) 0;
    changed_po = Array.make (Array.length t.changed_po) 0;
    n_changed_po = 0;
    changed_words_buf = Array.make (Array.length t.changed_words_buf) 0;
    po_bufs = Array.make (Array.length t.po_bufs) None;
    counters = fresh_counters ();
  }

let merge_counters ~into c =
  into.c_scored <- into.c_scored + c.c_scored;
  into.c_trivial <- into.c_trivial + c.c_trivial;
  into.c_early <- into.c_early + c.c_early;
  into.c_frontier <- into.c_frontier + c.c_frontier;
  into.c_pos <- into.c_pos + c.c_pos;
  into.c_words <- into.c_words + c.c_words

let candidate_errors ?pool t specs =
  let n = Array.length specs in
  let parallel =
    match pool with Some p -> Parallel.Pool.size p > 1 && n > 1 | None -> false
  in
  if not parallel then
    Array.map (fun (node, new_sig) -> candidate_error t ~node ~new_sig) specs
  else begin
    (* Force the shared state sequentially: after this, tasks only READ the
       fanout CSR, the incremental base contributions and [base_err], so
       sharing them across domains is safe. *)
    refresh t;
    ignore (base_error t : float);
    let out = Array.make n 0.0 in
    let chunk_size = max 1 ((n + 15) / 16) in
    let nchunks = (n + chunk_size - 1) / chunk_size in
    let chunk_counters = Array.make nchunks None in
    Parallel.Chunk.iter ?pool ~chunk_size ~n (fun lo hi ->
        let local = clone_scratch t in
        for i = lo to hi - 1 do
          let node, new_sig = specs.(i) in
          out.(i) <- candidate_error local ~node ~new_sig
        done;
        chunk_counters.(lo / chunk_size) <- Some local.counters);
    (* Counter merge is order-insensitive (integer sums), folded in chunk
       order anyway for good measure. *)
    Array.iter
      (function Some c -> merge_counters ~into:t.counters c | None -> ())
      chunk_counters;
    out
  end
