module Bitvec = Logic.Bitvec
module Graph = Aig.Graph

type t = {
  g : Graph.t;
  metric : Metrics.kind;
  golden : Bitvec.t array;
  base : Bitvec.t array;
  tfo_cache : (int, bool array) Hashtbl.t;
  prepared : Metrics.prepared;
  mutable base_err : float option;
  (* Scratch signatures reused across candidates: [stamps.(id) = gen] marks
     a buffer as holding this candidate's recomputed value. *)
  bufs : Bitvec.t option array;
  stamps : int array;
  mutable gen : int;
}

let create g ~metric ~golden ~base =
  if Array.length base <> Graph.num_nodes g then
    invalid_arg "Batch.create: base signatures must cover every node";
  {
    g;
    metric;
    golden;
    base;
    tfo_cache = Hashtbl.create 64;
    prepared = Metrics.prepare metric ~golden;
    base_err = None;
    bufs = Array.make (Graph.num_nodes g) None;
    stamps = Array.make (Graph.num_nodes g) 0;
    gen = 0;
  }

let graph t = t.g

let base_error t =
  match t.base_err with
  | Some e -> e
  | None ->
      let approx = Sim.Engine.po_values t.g t.base in
      let e = Metrics.measure t.metric ~golden:t.golden ~approx in
      t.base_err <- Some e;
      e

let tfo t node =
  match Hashtbl.find_opt t.tfo_cache node with
  | Some mask -> mask
  | None ->
      let mask = Aig.Cone.tfo_mask t.g node in
      Hashtbl.replace t.tfo_cache node mask;
      mask

let word_mask = Bitvec.word_mask

let and_words dst a b ma mb =
  let dw = Bitvec.unsafe_words dst
  and aw = Bitvec.unsafe_words a
  and bw = Bitvec.unsafe_words b in
  for i = 0 to Array.length dw - 1 do
    dw.(i) <- (aw.(i) lxor ma) land (bw.(i) lxor mb)
  done;
  Bitvec.mask_tail dst

let phase_mask l = if Graph.is_compl l then word_mask else 0

(* TFO re-simulation with buffer reuse (same computation as
   {!Sim.Engine.resimulate_tfo}, minus the per-call allocations). *)
let candidate_pos t ~node ~new_sig =
  let g = t.g in
  let len = Bitvec.length new_sig in
  let tfo = tfo t node in
  t.gen <- t.gen + 1;
  let gen = t.gen in
  let buf_for id =
    match t.bufs.(id) with
    | Some v when Bitvec.length v = len -> v
    | _ ->
        let v = Bitvec.create len in
        t.bufs.(id) <- Some v;
        v
  in
  t.stamps.(node) <- gen;
  let node_buf = buf_for node in
  Bitvec.blit new_sig node_buf;
  let sig_of id = if t.stamps.(id) = gen then Option.get t.bufs.(id) else t.base.(id) in
  Graph.iter_ands g (fun id ->
      if tfo.(id) && id <> node then begin
        let f0 = Graph.fanin0 g id and f1 = Graph.fanin1 g id in
        let s0 = sig_of (Graph.node_of f0) and s1 = sig_of (Graph.node_of f1) in
        let dst = buf_for id in
        and_words dst s0 s1 (phase_mask f0) (phase_mask f1);
        t.stamps.(id) <- gen
      end);
  Array.init (Graph.num_pos g) (fun i ->
      let l = Graph.po_lit g i in
      let v = sig_of (Graph.node_of l) in
      if Graph.is_compl l then Bitvec.lognot v else Bitvec.copy v)

let candidate_error t ~node ~new_sig =
  if Bitvec.equal new_sig t.base.(node) then base_error t
  else begin
    let approx = candidate_pos t ~node ~new_sig in
    Metrics.measure_prepared t.prepared ~approx
  end

(* A scratch-only clone for one pool task: shares every read-only part
   (graph, golden, base signatures, prepared metric, the warmed TFO cache)
   and owns fresh candidate buffers/stamps.  [base_err] must already be
   forced on [t] so clones never race to compute it. *)
let clone_scratch t =
  {
    t with
    bufs = Array.make (Graph.num_nodes t.g) None;
    stamps = Array.make (Graph.num_nodes t.g) 0;
    gen = 0;
  }

let candidate_errors ?pool t specs =
  let n = Array.length specs in
  let parallel =
    match pool with Some p -> Parallel.Pool.size p > 1 && n > 1 | None -> false
  in
  if not parallel then
    Array.map (fun (node, new_sig) -> candidate_error t ~node ~new_sig) specs
  else begin
    (* Warm the shared state sequentially: after this, tasks only READ the
       TFO cache and [base_err], so sharing them across domains is safe. *)
    ignore (base_error t : float);
    Array.iter (fun (node, _) -> ignore (tfo t node : bool array)) specs;
    let out = Array.make n 0.0 in
    let chunk_size = max 1 ((n + 15) / 16) in
    Parallel.Chunk.iter ?pool ~chunk_size ~n (fun lo hi ->
        let local = clone_scratch t in
        for i = lo to hi - 1 do
          let node, new_sig = specs.(i) in
          out.(i) <- candidate_error local ~node ~new_sig
        done);
    out
  end
