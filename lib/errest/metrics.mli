(** Error metrics between a golden and an approximate circuit (Section II-B).

    Output vectors are interpreted as unsigned integers with PO index 0 the
    least-significant bit, matching the conventions of [lib/circuits]. *)

type kind =
  | Er  (** error rate: fraction of rounds with any differing PO *)
  | Nmed  (** mean error distance normalized by [2^O - 1] *)
  | Mred  (** mean relative error distance *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

val er : golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> float
(** From PO signature arrays of equal shape. *)

val mean_ed : golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> float
(** Average absolute difference of the encoded outputs.  Requires at most 62
    POs. *)

val nmed : golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> float
val mred : golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> float

val measure :
  kind -> golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> float

(** {1 Prepared measurement}

    When the same golden outputs are compared against many approximations
    (batch LAC scoring), the golden-side decode is done once. *)

type prepared

val prepare : kind -> golden:Logic.Bitvec.t array -> prepared

val measure_prepared : prepared -> approx:Logic.Bitvec.t array -> float
(** Error of one approximation against the prepared golden outputs.  Error
    distances are summed word-blocked: per 62-round block in round order,
    then across blocks in block order — the same order the incremental path
    below uses, which is what makes the two bit-identical. *)

(** {1 Incremental measurement}

    Per-word base contributions, so a candidate whose change reaches only a
    few signature words pays only for those words plus one cheap fold over
    the per-word partials.  The invariant (enforced by the differential
    tests): for any approximation, substituting the recomputed contributions
    of exactly the words whose PO signatures differ from the base and
    re-folding reproduces {!measure_prepared} on the full approximation
    {e bit-for-bit} ([Float.equal], not approximately). *)

type incremental

val prepare_incremental :
  prepared -> approx:Logic.Bitvec.t array -> incremental
(** [prepare_incremental prep ~approx] caches the per-word state of the BASE
    approximation [approx]: for ER the per-word OR of output differences and
    its popcount; for NMED/MRED the per-word weighted partial sums.  The
    result is immutable and safe to share read-only across domains. *)

val incremental_base : incremental -> float
(** Error of the base approximation itself; bit-identical to
    [measure_prepared prep ~approx:base]. *)

val measure_incremental :
  incremental ->
  nchanged:int ->
  changed_words:int array ->
  get_word:(int -> int -> int) ->
  float
(** [measure_incremental inc ~nchanged ~changed_words ~get_word] is the
    error of a candidate that differs from the base only inside signature
    words [changed_words.(0 .. nchanged - 1)] (sorted ascending, no
    duplicates).  [get_word po w] must return word [w] of the candidate's
    signature for PO [po] — tail-masked, and equal to the base word for
    every [w] outside the changed set. *)

val worst_case_ed : golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> int
(** Largest absolute error distance over the sampled rounds (not one of the
    paper's constraint metrics, but the standard companion measurement). *)

val output_values : Logic.Bitvec.t array -> int array
(** Decode PO signatures into one unsigned integer per simulation round. *)

val compare_graphs :
  kind -> original:Aig.Graph.t -> approx:Aig.Graph.t -> Logic.Bitvec.t array -> float
(** Simulate both circuits on the same pattern set and measure.  The graphs
    must agree in PI and PO counts. *)

val evaluate :
  ?seed:int ->
  ?sample:int ->
  kind ->
  original:Aig.Graph.t ->
  approx:Aig.Graph.t ->
  float
(** Final-quality measurement: exhaustive when the PI count allows (at most
    {!Sim.Patterns.exhaustive_limit} inputs, and at most [sample] rounds),
    Monte-Carlo with [sample] rounds otherwise.  Default [sample] is [2^17];
    the paper uses [10^7] rounds, see DESIGN.md §2.7. *)
