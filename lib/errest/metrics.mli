(** Error metrics between a golden and an approximate circuit (Section II-B,
    extended to the full ResubALS metric set plus worst-case metrics).

    Output vectors are interpreted as unsigned integers with PO index 0 the
    least-significant bit, matching the conventions of [lib/circuits].

    Two aggregate families exist: {e mean} metrics average a per-round term
    over the sampled rounds (optionally weighted by an input distribution),
    and {e max} metrics take the worst per-round term.  Mean metrics compose
    with Hoeffding certification only when bounded in [0, 1]
    ({!bounded_mean}); max metrics are certified exactly by the
    error-computation miter in {!Maxerr}. *)

type kind =
  | Er  (** error rate: fraction of rounds with any differing PO *)
  | Med  (** mean error distance *)
  | Nmed  (** mean error distance normalized by [2^O - 1] *)
  | Mred  (** mean relative error distance *)
  | Mse  (** mean squared error distance *)
  | Mhd  (** mean Hamming distance over the PO bits *)
  | Nmhd  (** mean Hamming distance normalized by the PO count *)
  | Maxed  (** maximum error distance over the rounds *)
  | Maxhd  (** maximum Hamming distance over the rounds *)
  | Maxred  (** maximum relative error distance over the rounds *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

val all_kinds : kind list
(** Every metric, in declaration order — the matrix axis the tests sweep. *)

val is_max : kind -> bool
(** True for the worst-case metrics ([Maxed], [Maxhd], [Maxred]). *)

val bounded_mean : kind -> bool
(** True for mean metrics whose value always lies in [0, 1] ([Er], [Nmed],
    [Nmhd]) — the only kinds a Hoeffding bound ({!Certify}) applies to.
    [Mred] is NOT bounded (a zero golden value makes the relative error
    exceed 1), and the max kinds are not means at all. *)

val er : golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> float
(** From PO signature arrays of equal shape. *)

val mean_ed : golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> float
(** Average absolute difference of the encoded outputs.  Requires at most 62
    POs — as do all the value-decoded metrics below. *)

val med : golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> float
(** Alias of {!mean_ed} under its ResubALS name. *)

val nmed : golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> float
val mred : golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> float
val mse : golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> float
val mhd : golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> float
val nmhd : golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> float

val max_ed : golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> float
val max_hd : golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> float
val max_red : golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> float

val measure :
  ?weights:float array ->
  kind ->
  golden:Logic.Bitvec.t array ->
  approx:Logic.Bitvec.t array ->
  float
(** [measure ?weights kind ~golden ~approx] with [weights] the per-round
    input-distribution weights (one non-negative finite float per round,
    positive total).  For mean kinds the result is the probability-weighted
    mean [sum_m (p_m / total) * term_m]; for max kinds the maximum over the
    support rounds ([p_m > 0]).  Omitting [weights] is the uniform
    distribution.  Weighted measurement decodes output values and therefore
    requires at most 62 POs even for [Er]. *)

(** {1 Prepared measurement}

    When the same golden outputs are compared against many approximations
    (batch LAC scoring), the golden-side decode is done once. *)

type prepared

val prepare : ?weights:float array -> kind -> golden:Logic.Bitvec.t array -> prepared
(** The distribution [weights] (same contract as {!measure}) are folded into
    the prepared per-round multipliers once, so every subsequent
    measurement — full or incremental — is weighted identically. *)

val measure_prepared : prepared -> approx:Logic.Bitvec.t array -> float
(** Error of one approximation against the prepared golden outputs.  Mean
    error distances are summed word-blocked: per 62-round block in round
    order, then across blocks in block order — the same order the
    incremental path below uses, which is what makes the two bit-identical.
    Max kinds take the maximum of the identical per-round terms, which is
    order-insensitive. *)

(** {1 Incremental measurement}

    Per-word base contributions, so a candidate whose change reaches only a
    few signature words pays only for those words plus one cheap fold over
    the per-word partials.  The invariant (enforced by the differential
    tests): for any approximation, substituting the recomputed contributions
    of exactly the words whose PO signatures differ from the base and
    re-folding reproduces {!measure_prepared} on the full approximation
    {e bit-for-bit} ([Float.equal], not approximately). *)

type incremental

val prepare_incremental :
  prepared -> approx:Logic.Bitvec.t array -> incremental
(** [prepare_incremental prep ~approx] caches the per-word state of the BASE
    approximation [approx]: for uniform ER the per-word OR of output
    differences and its popcount; for mean kinds the per-word weighted
    partial sums; for max kinds the per-word maximum term.  The result is
    immutable and safe to share read-only across domains. *)

val incremental_base : incremental -> float
(** Error of the base approximation itself; bit-identical to
    [measure_prepared prep ~approx:base]. *)

val measure_incremental :
  incremental ->
  nchanged:int ->
  changed_words:int array ->
  get_word:(int -> int -> int) ->
  float
(** [measure_incremental inc ~nchanged ~changed_words ~get_word] is the
    error of a candidate that differs from the base only inside signature
    words [changed_words.(0 .. nchanged - 1)] (sorted ascending, no
    duplicates).  [get_word po w] must return word [w] of the candidate's
    signature for PO [po] — tail-masked, and equal to the base word for
    every [w] outside the changed set. *)

val worst_case_ed : golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> int
(** Largest absolute error distance over the sampled rounds, as an exact
    integer ([max_ed] is its float counterpart used by the flow). *)

val output_values : Logic.Bitvec.t array -> int array
(** Decode PO signatures into one unsigned integer per simulation round. *)

val compare_graphs :
  ?weights:float array ->
  kind ->
  original:Aig.Graph.t ->
  approx:Aig.Graph.t ->
  Logic.Bitvec.t array ->
  float
(** Simulate both circuits on the same pattern set and measure.  The graphs
    must agree in PI and PO counts. *)

val evaluate :
  ?seed:int ->
  ?sample:int ->
  kind ->
  original:Aig.Graph.t ->
  approx:Aig.Graph.t ->
  float
(** Final-quality measurement under the uniform distribution: exhaustive
    when the PI count allows (at most {!Sim.Patterns.exhaustive_limit}
    inputs, and at most [sample] rounds), Monte-Carlo with [sample] rounds
    otherwise.  Default [sample] is [2^17]; the paper uses [10^7] rounds,
    see DESIGN.md §2.7. *)
