module Graph = Aig.Graph
module Word = Circuits.Word
module Bitvec = Logic.Bitvec

type outcome =
  | Exact of {
      max : float;  (** [num /. den], for display and threshold checks *)
      num : int;
      den : int;  (** 1 except for [Maxred] *)
      refinements : int;  (** witness-refinement iterations beyond the sample *)
    }
  | Undecided of string

(* ---------- Exact rational comparison ----------

   MaxRED bounds are ratios of output integers, so the certificate must
   compare [a/b > c/d] without float rounding.  Outputs can be 62 bits
   wide, making the cross products up to 124 bits: compute them as three
   31-bit limbs and compare lexicographically. *)

let mul_wide a b =
  let mask = (1 lsl 31) - 1 in
  let a0 = a land mask and a1 = a lsr 31 in
  let b0 = b land mask and b1 = b lsr 31 in
  let ll = a0 * b0 in
  let lh = a0 * b1 in
  let hl = a1 * b0 in
  let t = (ll lsr 31) + (lh land mask) + (hl land mask) in
  let hi = (t lsr 31) + (lh lsr 31) + (hl lsr 31) + (a1 * b1) in
  (hi, t land mask, ll land mask)

let rat_gt (a, b) (c, d) =
  (* a/b > c/d  with  b, d > 0 *)
  compare (mul_wide a d) (mul_wide c b) > 0

(* ---------- Structural copy (the Cec miter idiom) ---------- *)

let copy_into g pis src =
  let map = Array.make (Graph.num_nodes src) Graph.const0 in
  for i = 0 to Graph.num_pis src - 1 do
    map.(Graph.pi_node src i) <- pis.(i)
  done;
  let lit l = Graph.lit_not_cond map.(Graph.node_of l) (Graph.is_compl l) in
  Graph.iter_ands src (fun id ->
      map.(id) <- Graph.and_ g (lit (Graph.fanin0 src id)) (lit (Graph.fanin1 src id)));
  Array.init (Graph.num_pos src) (fun o -> lit (Graph.po_lit src o))

(* ---------- Word-level pieces of the error computation ---------- *)

let num_bits n =
  let b = ref 0 in
  while n lsr !b <> 0 do
    incr b
  done;
  !b

(* |a - b| via two's complement subtract and a sign-selected negate. *)
let abs_diff g a b =
  let diff, a_ge_b = Word.subtract g a b in
  Word.mux_word g ~sel:a_ge_b ~t:diff ~e:(Word.negate g diff)

(* w > n for a constant n >= 0; constant-false when n saturates the width. *)
let gt_const g w n =
  let width = Array.length w in
  if width = 0 || num_bits n > width then Graph.const0
  else Word.less_unsigned g (Word.const_word n ~width) w

(* Number of set bits of [bits] as a word wide enough for the count. *)
let popcount_word g bits =
  let n = Array.length bits in
  let width = max 1 (num_bits n) in
  let acc = ref (Word.zero ~width) in
  Array.iter
    (fun b ->
      let one = Array.init width (fun j -> if j = 0 then b else Graph.const0) in
      acc := fst (Word.ripple_add g !acc one ~cin:Graph.const0))
    bits;
  !acc

(* w * n for a constant n >= 0, by shift-and-add. *)
let mul_const g w n =
  let wn = Array.length w in
  let width = wn + num_bits n in
  let acc = ref (Word.zero ~width) in
  for j = 0 to num_bits n - 1 do
    if (n lsr j) land 1 = 1 then begin
      let shifted =
        Word.resize (Array.append (Array.make j Graph.const0) w) width
      in
      acc := fst (Word.ripple_add g !acc shifted ~cin:Graph.const0)
    end
  done;
  !acc

(* max(value(gw), 1): substitute 1 when the golden word is all-zero. *)
let golden_or_one g gw =
  let is_zero =
    Array.fold_left (fun acc b -> Graph.and_ g acc (Graph.lit_not b)) Graph.const1 gw
  in
  Word.mux_word g ~sel:is_zero
    ~t:(Word.const_word 1 ~width:(Array.length gw))
    ~e:gw

(* The violation miter: one PO that is true exactly on the inputs where the
   error of [approx] against [original] strictly exceeds [num/den]. *)
let violation kind ~original ~approx ~num ~den =
  let g = Graph.create ~name:"maxerr-miter" () in
  let pis = Array.init (Graph.num_pis original) (fun _ -> Graph.add_pi g) in
  let gw = copy_into g pis original and aw = copy_into g pis approx in
  let v =
    match (kind : Metrics.kind) with
    | Maxed -> gt_const g (abs_diff g gw aw) num
    | Maxhd ->
        let bits = Word.xor_word g gw aw in
        gt_const g (popcount_word g bits) num
    | Maxred ->
        (* |d| * den > num * max(g, 1), exactly. *)
        let lhs = mul_const g (abs_diff g gw aw) den in
        let rhs = mul_const g (golden_or_one g gw) num in
        let width = max (Array.length lhs) (Array.length rhs) in
        Word.less_unsigned g (Word.resize rhs width) (Word.resize lhs width)
    | _ -> invalid_arg "Maxerr: not a max metric"
  in
  ignore (Graph.add_po g v);
  g

let const_false_reference ~npis =
  let g = Graph.create ~name:"maxerr-zero" () in
  for _ = 1 to npis do
    ignore (Graph.add_pi g)
  done;
  ignore (Graph.add_po g Graph.const0);
  g

(* ---------- Witness evaluation (direct, non-word-parallel) ---------- *)

let eval_value g inputs =
  let values = Array.make (Graph.num_nodes g) None in
  let rec node id =
    match values.(id) with
    | Some v -> v
    | None ->
        let v =
          if Graph.is_const id then false
          else if Graph.is_pi g id then inputs.(Graph.pi_index g id)
          else
            let lit l = node (Graph.node_of l) <> Graph.is_compl l in
            lit (Graph.fanin0 g id) && lit (Graph.fanin1 g id)
        in
        values.(id) <- Some v;
        v
  in
  let value = ref 0 in
  for o = 0 to Graph.num_pos g - 1 do
    let l = Graph.po_lit g o in
    if node (Graph.node_of l) <> Graph.is_compl l then value := !value lor (1 lsl o)
  done;
  !value

let round_rational kind ~g ~a =
  match (kind : Metrics.kind) with
  | Maxed -> (abs (g - a), 1)
  | Maxhd -> (Bitvec.popcount_word (g lxor a), 1)
  | Maxred -> (abs (g - a), max g 1)
  | _ -> invalid_arg "Maxerr: not a max metric"

(* ---------- Certification ---------- *)

let sampled_start ?(seed = 1) ?(rounds = 4096) kind ~original ~approx =
  let npis = Graph.num_pis original in
  let patterns =
    if npis <= 16 then Sim.Patterns.exhaustive ~npis
    else Sim.Patterns.random (Logic.Rng.create seed) ~npis ~len:rounds
  in
  let gv = Metrics.output_values (Sim.Engine.simulate_pos original patterns) in
  let av = Metrics.output_values (Sim.Engine.simulate_pos approx patterns) in
  let best = ref (0, 1) in
  Array.iteri
    (fun m g ->
      let r = round_rational kind ~g ~a:av.(m) in
      if rat_gt r !best then best := r)
    gv;
  !best

let certify ?(seed = 1) ?(rounds = 4096) ?(effort = Verify.Cec.Thorough)
    ?(max_refinements = 200) kind ~original ~approx =
  if not (Metrics.is_max kind) then invalid_arg "Maxerr.certify: not a max metric";
  if Graph.num_pis original <> Graph.num_pis approx then
    invalid_arg "Maxerr.certify: PI count mismatch";
  if Graph.num_pos original <> Graph.num_pos approx then
    invalid_arg "Maxerr.certify: PO count mismatch";
  if Graph.num_pos original > 62 then
    invalid_arg "Maxerr.certify: more than 62 outputs";
  let npis = Graph.num_pis original in
  if Graph.num_pos original = 0 then Exact { max = 0.0; num = 0; den = 1; refinements = 0 }
  else if npis = 0 then begin
    let g = eval_value original [||] and a = eval_value approx [||] in
    let num, den = round_rational kind ~g ~a in
    Exact { max = float_of_int num /. float_of_int den; num; den; refinements = 0 }
  end
  else begin
    (* Start from the worst sampled round — a value some input provably
       attains — then let counterexamples to "error <= bound" push it up
       until the miter closes.  The final bound is therefore the exact
       maximum: attained by a witness AND proven unbeatable. *)
    let bound = ref (sampled_start ~seed ~rounds kind ~original ~approx) in
    let reference = const_false_reference ~npis in
    let rec loop i =
      if i > max_refinements then
        Undecided
          (Printf.sprintf "refinement budget exhausted after %d witnesses" max_refinements)
      else begin
        let num, den = !bound in
        let miter = violation kind ~original ~approx ~num ~den in
        match Verify.Cec.run ~seed ~rounds ~effort miter reference with
        | Verify.Cec.Equivalent ->
            Exact { max = float_of_int num /. float_of_int den; num; den; refinements = i }
        | Verify.Cec.Inequivalent cex ->
            let g = eval_value original cex.Verify.Cec.inputs
            and a = eval_value approx cex.Verify.Cec.inputs in
            let r = round_rational kind ~g ~a in
            if not (rat_gt r !bound) then
              Undecided "counterexample did not exceed the bound"
            else begin
              bound := r;
              loop (i + 1)
            end
        | Verify.Cec.Undecided msg -> Undecided msg
      end
    in
    loop 0
  end

let certified_le ?seed ?rounds ?effort ?max_refinements kind ~original ~approx
    ~threshold =
  match certify ?seed ?rounds ?effort ?max_refinements kind ~original ~approx with
  | Exact { max; _ } -> Ok (max <= threshold)
  | Undecided msg -> Error msg

let outcome_to_string = function
  | Exact { max; num; den; refinements } ->
      if den = 1 then Printf.sprintf "exact max %d (%d refinements)" num refinements
      else Printf.sprintf "exact max %d/%d = %g (%d refinements)" num den max refinements
  | Undecided msg -> "undecided: " ^ msg
