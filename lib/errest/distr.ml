module Bitvec = Logic.Bitvec

type t =
  | Unif
  | Enum of {
      npis : int;
      rows : bool array array;
      weights : float array;
    }

let unif = Unif

let validate_enum ~rows ~weights =
  let n = Array.length rows in
  if n = 0 then Error "enumerated distribution has no rows"
  else if Array.length weights <> n then Error "row/weight count mismatch"
  else begin
    let npis = Array.length rows.(0) in
    if Array.exists (fun r -> Array.length r <> npis) rows then
      Error "ragged pattern rows"
    else if
      Array.exists (fun w -> not (Float.is_finite w) || w < 0.0) weights
    then Error "weights must be finite and non-negative"
    else if Array.fold_left ( +. ) 0.0 weights <= 0.0 then
      Error "weights sum to zero"
    else Ok (Enum { npis; rows; weights })
  end

let enum ~rows ~weights =
  match validate_enum ~rows ~weights with
  | Ok d -> d
  | Error msg -> invalid_arg ("Distr.enum: " ^ msg)

let is_enum = function Unif -> false | Enum _ -> true
let npis = function Unif -> None | Enum { npis; _ } -> Some npis
let num_rows = function Unif -> 0 | Enum { rows; _ } -> Array.length rows

let equal a b =
  match (a, b) with
  | Unif, Unif -> true
  | Enum a, Enum b ->
      a.npis = b.npis && a.rows = b.rows
      && Array.length a.weights = Array.length b.weights
      && Array.for_all2 (fun x y -> Float.equal x y) a.weights b.weights
  | _ -> false

let validate_npis t ~npis:n =
  match t with
  | Unif -> Ok ()
  | Enum { npis; _ } ->
      if npis = n then Ok ()
      else
        Error
          (Printf.sprintf "distribution patterns have %d inputs, circuit has %d"
             npis n)

let row_to_string row =
  String.init (Array.length row) (fun i -> if row.(i) then '1' else '0')

let row_of_string s =
  let ok = ref true in
  let row =
    Array.init (String.length s) (fun i ->
        match s.[i] with
        | '0' -> false
        | '1' -> true
        | _ ->
            ok := false;
            false)
  in
  if !ok && String.length s > 0 then Some row else None

(* One line, no newlines: what the journal's key-value manifest stores.
   Weights are hex floats so the round trip is bit-exact. *)
let to_string = function
  | Unif -> "unif"
  | Enum { rows; weights; _ } ->
      let cell i = Printf.sprintf "%s:%h" (row_to_string rows.(i)) weights.(i) in
      "enum " ^ String.concat "," (List.init (Array.length rows) cell)

let of_string s =
  let s = String.trim s in
  if s = "unif" then Ok Unif
  else
    match String.index_opt s ' ' with
    | Some sp when String.sub s 0 sp = "enum" ->
        let body = String.sub s (sp + 1) (String.length s - sp - 1) in
        let cells = String.split_on_char ',' body in
        let parse cell =
          match String.index_opt cell ':' with
          | None -> Error (Printf.sprintf "bad distribution cell %S" cell)
          | Some c -> (
              let bits = String.sub cell 0 c in
              let w = String.sub cell (c + 1) (String.length cell - c - 1) in
              match (row_of_string bits, float_of_string_opt w) with
              | Some row, Some weight -> Ok (row, weight)
              | None, _ -> Error (Printf.sprintf "bad pattern %S" bits)
              | _, None -> Error (Printf.sprintf "bad weight %S" w))
        in
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | cell :: rest -> (
              match parse cell with
              | Ok c -> go (c :: acc) rest
              | Error _ as e -> e)
        in
        Result.bind (go [] cells) (fun cells ->
            let rows = Array.of_list (List.map fst cells) in
            let weights = Array.of_list (List.map snd cells) in
            validate_enum ~rows ~weights)
    | _ -> Error (Printf.sprintf "bad distribution %S (unif | enum ...)" s)

(* Pattern-file format (the ResubALS ENUM input): one "bitstring weight"
   pair per line, leftmost character = PI 0; '#' starts a comment. *)
let parse_lines lines =
  let cells = ref [] and err = ref None and lineno = ref 0 in
  List.iter
    (fun line ->
      incr lineno;
      if !err = None then begin
        let line =
          match String.index_opt line '#' with
          | Some h -> String.sub line 0 h
          | None -> line
        in
        let line = String.trim line in
        if line <> "" then begin
          match String.split_on_char ' ' line |> List.filter (( <> ) "") with
          | [ bits; w ] -> (
              match (row_of_string bits, float_of_string_opt w) with
              | Some row, Some weight -> cells := (row, weight) :: !cells
              | None, _ ->
                  err := Some (Printf.sprintf "line %d: bad pattern %S" !lineno bits)
              | _, None ->
                  err := Some (Printf.sprintf "line %d: bad weight %S" !lineno w))
          | _ ->
              err :=
                Some
                  (Printf.sprintf "line %d: expected \"bitstring weight\"" !lineno)
        end
      end)
    lines;
  match !err with
  | Some e -> Error e
  | None ->
      let cells = List.rev !cells in
      let rows = Array.of_list (List.map fst cells) in
      let weights = Array.of_list (List.map snd cells) in
      validate_enum ~rows ~weights

let load path =
  match In_channel.with_open_text path In_channel.input_lines with
  | lines -> (
      match parse_lines lines with
      | Ok d -> Ok d
      | Error e -> Error (Printf.sprintf "%s: %s" path e))
  | exception Sys_error msg -> Error msg

let signatures = function
  | Unif -> invalid_arg "Distr.signatures: uniform distribution is not enumerated"
  | Enum { npis; rows; _ } ->
      let len = Array.length rows in
      Array.init npis (fun i -> Bitvec.init len (fun m -> rows.(m).(i)))

let round_weights = function
  | Unif -> None
  | Enum { weights; _ } -> Some (Array.copy weights)

let sample t rng ~npis:n ~len =
  match t with
  | Unif -> Sim.Patterns.random rng ~npis:n ~len
  | Enum { npis; rows; weights } ->
      if npis <> n then invalid_arg "Distr.sample: PI count mismatch";
      let total = Array.fold_left ( +. ) 0.0 weights in
      let cum = Array.make (Array.length weights) 0.0 in
      let acc = ref 0.0 in
      Array.iteri
        (fun i w ->
          acc := !acc +. w;
          cum.(i) <- !acc)
        weights;
      let pick u =
        (* first index whose cumulative weight exceeds [u] *)
        let lo = ref 0 and hi = ref (Array.length cum - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if cum.(mid) > u then hi := mid else lo := mid + 1
        done;
        !lo
      in
      let chosen = Array.init len (fun _ -> pick (Logic.Rng.float rng *. total)) in
      Array.init n (fun i -> Bitvec.init len (fun m -> rows.(chosen.(m)).(i)))
