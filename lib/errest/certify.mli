(** Statistical certification of sampled error measurements.

    Liu & Zhang's method (reference [5]) certifies that an approximate
    circuit meets its error bound with a prescribed confidence, using
    concentration bounds on the Monte-Carlo estimate.

    {b Which bound family applies where.}  The Hoeffding bounds below are
    valid ONLY for metrics that are means of [0,1]-bounded per-round terms —
    exactly the kinds {!Metrics.bounded_mean} accepts ([Er], [Nmed],
    [Nmhd]).  Unbounded means ([Med], [Mse], [Mhd], [Mred]) admit no
    distribution-free concentration bound from a finite sample, and
    worst-case metrics ([Maxed], [Maxhd], [Maxred]) are not means at all: a
    sampled maximum is a {e lower} bound on the truth, so quoting Hoeffding
    for a max-error run would be unsound.  Max metrics are certified
    exactly by the error-computation miter in {!Maxerr}; enumerated
    distributions ({!Distr.Enum}) are measured exactly over their support
    and need no statistical bound at all.  [Core.Flow] reports carry the
    bound family alongside the value so no report can claim the wrong
    one. *)

val hoeffding_margin : samples:int -> confidence:float -> float
(** One-sided Hoeffding deviation bound for a mean of [0,1]-valued samples:
    with probability at least [confidence], the true mean is below the
    sampled mean plus this margin.  Requires [samples > 0] and
    [0 < confidence < 1]. *)

val upper_bound : sampled:float -> samples:int -> confidence:float -> float
(** Certified upper bound on the true error. *)

val certified_le :
  sampled:float -> samples:int -> confidence:float -> threshold:float -> bool
(** Does the sample certify [true error <= threshold] at this confidence? *)

val samples_needed : margin:float -> confidence:float -> int
(** Minimum sample count for a given margin at a given confidence. *)
