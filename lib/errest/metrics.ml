module Bitvec = Logic.Bitvec

type kind =
  | Er
  | Med
  | Nmed
  | Mred
  | Mse
  | Mhd
  | Nmhd
  | Maxed
  | Maxhd
  | Maxred

let kind_to_string = function
  | Er -> "er"
  | Med -> "med"
  | Nmed -> "nmed"
  | Mred -> "mred"
  | Mse -> "mse"
  | Mhd -> "mhd"
  | Nmhd -> "nmhd"
  | Maxed -> "maxed"
  | Maxhd -> "maxhd"
  | Maxred -> "maxred"

let kind_of_string = function
  | "er" -> Some Er
  | "med" -> Some Med
  | "nmed" -> Some Nmed
  | "mred" -> Some Mred
  | "mse" -> Some Mse
  | "mhd" -> Some Mhd
  | "nmhd" -> Some Nmhd
  | "maxed" -> Some Maxed
  | "maxhd" -> Some Maxhd
  | "maxred" -> Some Maxred
  | _ -> None

let all_kinds = [ Er; Med; Nmed; Mred; Mse; Mhd; Nmhd; Maxed; Maxhd; Maxred ]
let is_max = function Maxed | Maxhd | Maxred -> true | _ -> false
let bounded_mean = function Er | Nmed | Nmhd -> true | _ -> false

let check_shapes golden approx =
  if Array.length golden <> Array.length approx then
    invalid_arg "Metrics: PO count mismatch";
  if Array.length golden > 0 then begin
    let len = Bitvec.length golden.(0) in
    Array.iter
      (fun v -> if Bitvec.length v <> len then invalid_arg "Metrics: ragged signatures")
      (Array.append golden approx)
  end

let num_rounds golden =
  if Array.length golden = 0 then 0 else Bitvec.length golden.(0)

let er ~golden ~approx =
  check_shapes golden approx;
  let len = num_rounds golden in
  if len = 0 then 0.0
  else begin
    let diff = Bitvec.create len in
    Array.iteri
      (fun i go ->
        let x = Bitvec.logxor go approx.(i) in
        Bitvec.logor_inplace diff x)
      golden;
    float_of_int (Bitvec.popcount diff) /. float_of_int len
  end

let output_values pos =
  let npos = Array.length pos in
  if npos > 62 then invalid_arg "Metrics.output_values: more than 62 outputs";
  let len = num_rounds pos in
  let values = Array.make len 0 in
  for i = 0 to npos - 1 do
    let words = Bitvec.unsafe_words pos.(i) in
    for m = 0 to len - 1 do
      let bit = (words.(m / Bitvec.word_bits) lsr (m mod Bitvec.word_bits)) land 1 in
      values.(m) <- values.(m) lor (bit lsl i)
    done
  done;
  values

(* Word-blocked summation: fold rounds per 62-round block, then fold the
   block sums in block order.  This is THE float-summation order of every
   error-distance measurement (full and incremental alike, DESIGN.md
   section 10): a block whose rounds are untouched by a candidate
   contributes the exact same partial sum, so cached per-block partials
   compose bit-identically with recomputed ones. *)
let sum_blocked len f =
  let acc = ref 0.0 in
  let lo = ref 0 in
  while !lo < len do
    let hi = min len (!lo + Bitvec.word_bits) in
    let wacc = ref 0.0 in
    for m = !lo to hi - 1 do
      wacc := !wacc +. f m
    done;
    acc := !acc +. !wacc;
    lo := hi
  done;
  !acc

let fold_ed f ~golden ~approx =
  check_shapes golden approx;
  let len = num_rounds golden in
  if len = 0 then 0.0
  else begin
    let gv = output_values golden and av = output_values approx in
    sum_blocked len (fun m -> f gv.(m) av.(m)) /. float_of_int len
  end

let mean_ed ~golden ~approx =
  fold_ed (fun g a -> float_of_int (abs (g - a))) ~golden ~approx

let med = mean_ed

let nmed ~golden ~approx =
  let o = Array.length golden in
  let maxval = if o = 0 then 1.0 else (2.0 ** float_of_int o) -. 1.0 in
  mean_ed ~golden ~approx /. maxval

let mred ~golden ~approx =
  fold_ed
    (fun g a -> float_of_int (abs (g - a)) /. float_of_int (max g 1))
    ~golden ~approx

let worst_case_ed ~golden ~approx =
  check_shapes golden approx;
  if num_rounds golden = 0 then 0
  else begin
    let gv = output_values golden and av = output_values approx in
    let worst = ref 0 in
    Array.iteri (fun m g -> worst := max !worst (abs (g - av.(m)))) gv;
    !worst
  end

(* ---------- Per-round term families ----------

   Every value-decoded metric is [aggregate over rounds of
   term(gv, av) * weight(round)]: the aggregate is either the blocked mean
   or the maximum, the term is one of the four families below, and the
   weight bakes together the metric's own normalization and (optionally)
   the input distribution.  One shared [round_term] is evaluated by both
   the full and the incremental paths — that single code path is what makes
   them bit-identical ([Float.equal]). *)

type term_fn = Indicator | Abs_diff | Squared | Hamming

let term fn g a =
  match fn with
  | Indicator -> if g = a then 0.0 else 1.0
  | Abs_diff -> float_of_int (abs (g - a))
  | Squared ->
      let d = float_of_int (g - a) in
      d *. d
  | Hamming -> float_of_int (Bitvec.popcount_word (g lxor a))

let term_of_kind = function
  | Er -> Indicator
  | Med | Nmed | Mred | Maxed | Maxred -> Abs_diff
  | Mse -> Squared
  | Mhd | Nmhd | Maxhd -> Hamming

(* Per-round multiplier from the metric's own definition (normalization /
   relative denominator); the distribution multiplier is folded in by
   [prepare]. *)
let metric_weights kind ~npos values =
  let len = Array.length values in
  match kind with
  | Er | Med | Mse | Mhd | Maxed | Maxhd -> Array.make len 1.0
  | Nmed ->
      let maxval = if npos = 0 then 1.0 else (2.0 ** float_of_int npos) -. 1.0 in
      Array.make len (1.0 /. maxval)
  | Nmhd ->
      let o = if npos = 0 then 1.0 else float_of_int npos in
      Array.make len (1.0 /. o)
  | Mred | Maxred ->
      Array.map (fun g -> 1.0 /. float_of_int (max g 1)) values

type prepared =
  | Prep_er of Bitvec.t array
  | Prep_mean of {
      golden : Bitvec.t array;
      values : int array;
      weights : float array;  (** per-round multiplier applied to the term *)
      fn : term_fn;
    }
  | Prep_max of {
      golden : Bitvec.t array;
      values : int array;
      weights : float array;  (** metric weight, zeroed off-support rounds *)
      fn : term_fn;
    }

let check_distr_weights p ~len =
  if Array.length p <> len then
    invalid_arg "Metrics: distribution weight count mismatch";
  Array.iter
    (fun x ->
      if not (Float.is_finite x) || x < 0.0 then
        invalid_arg "Metrics: distribution weights must be finite and non-negative")
    p;
  let total = Array.fold_left ( +. ) 0.0 p in
  if total <= 0.0 then invalid_arg "Metrics: distribution weights sum to zero";
  total

let prepare ?weights kind ~golden =
  match (kind, weights) with
  | Er, None -> Prep_er golden
  | _ ->
      let len = num_rounds golden in
      let values = output_values golden in
      let npos = Array.length golden in
      let w = metric_weights kind ~npos values in
      let fn = term_of_kind kind in
      if is_max kind then begin
        (* Under a distribution the maximum ranges over the support only:
           a zero weight excludes the round, any positive weight keeps the
           metric weight untouched (worst case is not probability-scaled). *)
        (match weights with
        | None -> ()
        | Some p ->
            ignore (check_distr_weights p ~len : float);
            Array.iteri (fun m pm -> if pm <= 0.0 then w.(m) <- 0.0) p);
        Prep_max { golden; values; weights = w; fn }
      end
      else begin
        (* Weighted mean: the effective multiplier is
           [metric_w * (p_m / total) * len], so the final division by [len]
           in the blocked fold yields exactly the probability-weighted mean.
           Uniform weights over the sample give a multiplier of exactly 1.0,
           which is why ENUM-with-equal-weights is bit-identical to UNIF. *)
        (match weights with
        | None -> ()
        | Some p ->
            let total = check_distr_weights p ~len in
            let scale = float_of_int len /. total in
            Array.iteri (fun m pm -> w.(m) <- w.(m) *. (pm *. scale)) p);
        Prep_mean { golden; values; weights = w; fn }
      end

(* Per-round term of the prepared measurement; any change here must be
   mirrored in the incremental path below (bit-identity invariant). *)
let round_term fn values weights av m = term fn values.(m) av.(m) *. weights.(m)

let measure_prepared prep ~approx =
  match prep with
  | Prep_er golden -> er ~golden ~approx
  | Prep_mean { golden; values; weights; fn } ->
      check_shapes golden approx;
      let len = num_rounds golden in
      if len = 0 then 0.0
      else begin
        let av = output_values approx in
        sum_blocked len (round_term fn values weights av) /. float_of_int len
      end
  | Prep_max { golden; values; weights; fn } ->
      check_shapes golden approx;
      let len = num_rounds golden in
      if len = 0 then 0.0
      else begin
        let av = output_values approx in
        let worst = ref 0.0 in
        for m = 0 to len - 1 do
          let t = round_term fn values weights av m in
          if t > !worst then worst := t
        done;
        !worst
      end

let measure ?weights kind ~golden ~approx =
  match (weights, kind) with
  | None, Er -> er ~golden ~approx
  | None, Nmed -> nmed ~golden ~approx
  | None, Mred -> mred ~golden ~approx
  | _ -> measure_prepared (prepare ?weights kind ~golden) ~approx

let mse ~golden ~approx = measure Mse ~golden ~approx
let mhd ~golden ~approx = measure Mhd ~golden ~approx
let nmhd ~golden ~approx = measure Nmhd ~golden ~approx
let max_ed ~golden ~approx = measure Maxed ~golden ~approx
let max_hd ~golden ~approx = measure Maxhd ~golden ~approx
let max_red ~golden ~approx = measure Maxred ~golden ~approx

(* ---------- Incremental measurement ----------

   Per-word base state so a candidate pays only for the words its change
   actually reaches.  ER keeps the OR-of-differences per word (an integer,
   so the delta is exact by construction); the mean kinds keep the word's
   partial sum in the blocked order above, so substituting the recomputed
   words and re-folding all blocks reproduces the full measurement
   bit-for-bit; the max kinds keep the word's maximum term, and the
   maximum of per-word maxima is order-insensitive, so the same
   substitution argument holds trivially. *)

type incremental =
  | Inc_er of {
      len : int;
      golden_words : int array array;  (** borrowed per-PO word arrays *)
      base_or : int array;  (** per word: OR over POs of golden ^ base *)
      base_pop : int;
    }
  | Inc_mean of {
      len : int;
      nwords : int;
      npos : int;
      values : int array;  (** decoded golden output values (borrowed) *)
      weights : float array;  (** per-round multipliers (borrowed) *)
      fn : term_fn;
      base_contrib : float array;  (** per-word partial sums *)
      base_total : float;  (** fold of [base_contrib] in word order *)
    }
  | Inc_max of {
      len : int;
      nwords : int;
      npos : int;
      values : int array;
      weights : float array;
      fn : term_fn;
      base_wmax : float array;  (** per-word maximum term *)
      base_max : float;  (** maximum of [base_wmax] *)
    }

(* Decode the candidate's output values for the rounds of word [w] into
   [av.(0 .. nb-1)] (shared scratch, caller-allocated). *)
let decode_word ~npos ~get_word ~av w ~nb =
  Array.fill av 0 nb 0;
  for i = 0 to npos - 1 do
    let aw = get_word i w in
    if aw <> 0 then
      for r = 0 to nb - 1 do
        av.(r) <- av.(r) lor (((aw lsr r) land 1) lsl i)
      done
  done

let prepare_incremental prep ~approx =
  match prep with
  | Prep_er golden ->
      check_shapes golden approx;
      let len = num_rounds golden in
      let nwords = if len = 0 then 0 else Bitvec.num_words golden.(0) in
      let golden_words = Array.map Bitvec.unsafe_words golden in
      let approx_words = Array.map Bitvec.unsafe_words approx in
      let base_or = Array.make nwords 0 in
      for i = 0 to Array.length golden - 1 do
        let gw = golden_words.(i) and aw = approx_words.(i) in
        for w = 0 to nwords - 1 do
          base_or.(w) <- base_or.(w) lor (gw.(w) lxor aw.(w))
        done
      done;
      let base_pop = ref 0 in
      for w = 0 to nwords - 1 do
        base_pop := !base_pop + Bitvec.popcount_word base_or.(w)
      done;
      Inc_er { len; golden_words; base_or; base_pop = !base_pop }
  | Prep_mean { golden; values; weights; fn } ->
      check_shapes golden approx;
      let len = num_rounds golden in
      let nwords = if len = 0 then 0 else Bitvec.num_words golden.(0) in
      let av = output_values approx in
      let base_contrib = Array.make nwords 0.0 in
      for w = 0 to nwords - 1 do
        let lo = w * Bitvec.word_bits in
        let hi = min len (lo + Bitvec.word_bits) in
        let wacc = ref 0.0 in
        for m = lo to hi - 1 do
          wacc := !wacc +. round_term fn values weights av m
        done;
        base_contrib.(w) <- !wacc
      done;
      let base_total = ref 0.0 in
      for w = 0 to nwords - 1 do
        base_total := !base_total +. base_contrib.(w)
      done;
      Inc_mean
        {
          len;
          nwords;
          npos = Array.length golden;
          values;
          weights;
          fn;
          base_contrib;
          base_total = !base_total;
        }
  | Prep_max { golden; values; weights; fn } ->
      check_shapes golden approx;
      let len = num_rounds golden in
      let nwords = if len = 0 then 0 else Bitvec.num_words golden.(0) in
      let av = output_values approx in
      let base_wmax = Array.make nwords 0.0 in
      for w = 0 to nwords - 1 do
        let lo = w * Bitvec.word_bits in
        let hi = min len (lo + Bitvec.word_bits) in
        let wmax = ref 0.0 in
        for m = lo to hi - 1 do
          let t = round_term fn values weights av m in
          if t > !wmax then wmax := t
        done;
        base_wmax.(w) <- !wmax
      done;
      let base_max = ref 0.0 in
      for w = 0 to nwords - 1 do
        if base_wmax.(w) > !base_max then base_max := base_wmax.(w)
      done;
      Inc_max
        {
          len;
          nwords;
          npos = Array.length golden;
          values;
          weights;
          fn;
          base_wmax;
          base_max = !base_max;
        }

let incremental_base = function
  | Inc_er { len; base_pop; _ } ->
      if len = 0 then 0.0 else float_of_int base_pop /. float_of_int len
  | Inc_mean { len; base_total; _ } ->
      if len = 0 then 0.0 else base_total /. float_of_int len
  | Inc_max { len; base_max; _ } -> if len = 0 then 0.0 else base_max

let measure_incremental inc ~nchanged ~changed_words ~get_word =
  match inc with
  | Inc_er { len; golden_words; base_or; base_pop } ->
      if len = 0 then 0.0
      else begin
        let npos = Array.length golden_words in
        let delta = ref 0 in
        for k = 0 to nchanged - 1 do
          let w = changed_words.(k) in
          let new_or = ref 0 in
          for i = 0 to npos - 1 do
            new_or := !new_or lor (golden_words.(i).(w) lxor get_word i w)
          done;
          delta :=
            !delta + Bitvec.popcount_word !new_or - Bitvec.popcount_word base_or.(w)
        done;
        float_of_int (base_pop + !delta) /. float_of_int len
      end
  | Inc_mean { len; nwords; npos; values; weights; fn; base_contrib; _ } ->
      if len = 0 then 0.0
      else begin
        (* Recompute the contribution of each changed word (decoding output
           values for just its rounds), then re-fold ALL words in order. *)
        let av = Array.make Bitvec.word_bits 0 in
        let new_contrib = Array.make (max 1 nchanged) 0.0 in
        for k = 0 to nchanged - 1 do
          let w = changed_words.(k) in
          let lo = w * Bitvec.word_bits in
          let hi = min len (lo + Bitvec.word_bits) in
          let nb = hi - lo in
          decode_word ~npos ~get_word ~av w ~nb;
          let wacc = ref 0.0 in
          for m = lo to hi - 1 do
            wacc := !wacc +. (term fn values.(m) av.(m - lo) *. weights.(m))
          done;
          new_contrib.(k) <- !wacc
        done;
        let total = ref 0.0 and k = ref 0 in
        for w = 0 to nwords - 1 do
          let c =
            if !k < nchanged && changed_words.(!k) = w then begin
              let c = new_contrib.(!k) in
              incr k;
              c
            end
            else base_contrib.(w)
          in
          total := !total +. c
        done;
        !total /. float_of_int len
      end
  | Inc_max { len; nwords; npos; values; weights; fn; base_wmax; _ } ->
      if len = 0 then 0.0
      else begin
        let av = Array.make Bitvec.word_bits 0 in
        let new_wmax = Array.make (max 1 nchanged) 0.0 in
        for k = 0 to nchanged - 1 do
          let w = changed_words.(k) in
          let lo = w * Bitvec.word_bits in
          let hi = min len (lo + Bitvec.word_bits) in
          let nb = hi - lo in
          decode_word ~npos ~get_word ~av w ~nb;
          let wmax = ref 0.0 in
          for m = lo to hi - 1 do
            let t = term fn values.(m) av.(m - lo) *. weights.(m) in
            if t > !wmax then wmax := t
          done;
          new_wmax.(k) <- !wmax
        done;
        let worst = ref 0.0 and k = ref 0 in
        for w = 0 to nwords - 1 do
          let c =
            if !k < nchanged && changed_words.(!k) = w then begin
              let c = new_wmax.(!k) in
              incr k;
              c
            end
            else base_wmax.(w)
          in
          if c > !worst then worst := c
        done;
        !worst
      end

let compare_graphs ?weights kind ~original ~approx patterns =
  if Aig.Graph.num_pis original <> Aig.Graph.num_pis approx then
    invalid_arg "Metrics.compare_graphs: PI count mismatch";
  if Aig.Graph.num_pos original <> Aig.Graph.num_pos approx then
    invalid_arg "Metrics.compare_graphs: PO count mismatch";
  let golden = Sim.Engine.simulate_pos original patterns in
  let approx = Sim.Engine.simulate_pos approx patterns in
  measure ?weights kind ~golden ~approx

let evaluate ?(seed = 20260705) ?(sample = 1 lsl 17) kind ~original ~approx =
  let npis = Aig.Graph.num_pis original in
  let patterns =
    if npis <= Sim.Patterns.exhaustive_limit && 1 lsl npis <= sample then
      Sim.Patterns.exhaustive ~npis
    else Sim.Patterns.random (Logic.Rng.create seed) ~npis ~len:sample
  in
  compare_graphs kind ~original ~approx patterns
