module Bitvec = Logic.Bitvec
module Graph = Aig.Graph

let masks g ~sigs =
  let n = Graph.num_nodes g in
  let len = if n = 0 then 0 else Bitvec.length sigs.(0) in
  let obs = Array.init n (fun _ -> Bitvec.create len) in
  (* PO drivers are fully observable. *)
  Graph.iter_pos g (fun _ l -> Bitvec.fill obs.(Graph.node_of l) true);
  (* Reverse sweep: through an AND [z = a & b], a flip of [a] reaches [z]
     exactly when [b] is 1 (after edge phase). *)
  for id = n - 1 downto 1 do
    if Graph.is_and g id then begin
      let propagate fanin other =
        let child = Graph.node_of fanin in
        let ow = Bitvec.unsafe_words obs.(child)
        and zw = Bitvec.unsafe_words obs.(id)
        and vw = Bitvec.unsafe_words sigs.(Graph.node_of other) in
        let mask = if Graph.is_compl other then Bitvec.word_mask else 0 in
        for i = 0 to Array.length ow - 1 do
          ow.(i) <- ow.(i) lor (zw.(i) land (vw.(i) lxor mask))
        done;
        Bitvec.mask_tail obs.(child)
      in
      let f0 = Graph.fanin0 g id and f1 = Graph.fanin1 g id in
      propagate f0 f1;
      propagate f1 f0
    end
  done;
  obs

(* ---------- Execution observability ----------

   Reporting of the worker-pool counters ({!Parallel.Pool.stats}) alongside
   the flow's other run diagnostics.  Kept here so every observability
   surface of a run — signal-level (masks above) and execution-level (these
   counters) — is reported through one module. *)

let pp_pool_stats ppf (stats : Parallel.Pool.stat array) =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i (s : Parallel.Pool.stat) ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "worker %d: %6d tasks %5d steals  busy %8.3fs  idle %8.3fs"
        s.Parallel.Pool.worker s.Parallel.Pool.tasks s.Parallel.Pool.steals
        (Parallel.Clock.ns_to_s s.Parallel.Pool.busy_ns)
        (Parallel.Clock.ns_to_s s.Parallel.Pool.idle_ns))
    stats;
  Format.fprintf ppf "@]"

let pool_summary (stats : Parallel.Pool.stat array) =
  let tasks = Array.fold_left (fun a s -> a + s.Parallel.Pool.tasks) 0 stats in
  let steals = Array.fold_left (fun a s -> a + s.Parallel.Pool.steals) 0 stats in
  let busy =
    Array.fold_left
      (fun a s -> a +. Parallel.Clock.ns_to_s s.Parallel.Pool.busy_ns)
      0.0 stats
  in
  Printf.sprintf "%d workers, %d tasks, %d steals, %.3fs busy" (Array.length stats)
    tasks steals busy
