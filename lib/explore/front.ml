type point = { err : float; cost : float; tag : string }

(* Sorted by ascending (err, cost, tag); on a valid front the (err, cost)
   projection is strictly increasing in err and strictly decreasing in
   cost, but the insert/merge code never relies on that — only on the
   sort order and the antichain filter below. *)
type t = point list

let empty = []
let size = List.length
let points t = t

let compare_point a b =
  let c = Float.compare a.err b.err in
  if c <> 0 then c
  else
    let c = Float.compare a.cost b.cost in
    if c <> 0 then c else String.compare a.tag b.tag

let coords_equal a b = Float.equal a.err b.err && Float.equal a.cost b.cost

let dominates p q =
  p.err <= q.err && p.cost <= q.cost && not (coords_equal p q)

let valid_tag tag =
  tag <> ""
  && String.for_all
       (fun c -> c <> ' ' && c <> '\t' && c <> '\n' && c <> '\r')
       tag

let check_point p =
  if Float.is_nan p.err || Float.is_nan p.cost then
    invalid_arg "Front.insert: NaN coordinate";
  if not (valid_tag p.tag) then
    invalid_arg "Front.insert: tag must be non-empty, without whitespace"

let insert t p =
  check_point p;
  let keep_new =
    not
      (List.exists
         (fun q ->
           dominates q p || (coords_equal q p && String.compare q.tag p.tag <= 0))
         t)
  in
  if not keep_new then t
  else
    let survivors =
      List.filter (fun q -> not (dominates p q || coords_equal p q)) t
    in
    List.merge compare_point [ p ] survivors

let of_points ps = List.fold_left insert empty ps
let merge a b = List.fold_left insert a b
let member t p = List.exists (fun q -> coords_equal q p && q.tag = p.tag) t

let is_antichain t =
  let sorted = List.sort compare_point t in
  sorted = t
  && List.for_all
       (fun p ->
         List.for_all
           (fun q -> p == q || (not (dominates p q)) && not (coords_equal p q))
           t)
       t

let equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun p q -> coords_equal p q && p.tag = q.tag)
       a b

let to_string t =
  let buf = Buffer.create 256 in
  List.iter
    (fun p -> Buffer.add_string buf (Printf.sprintf "p %h %h %s\n" p.err p.cost p.tag))
    t;
  Buffer.contents buf

let of_string s =
  let parse_float what v =
    match float_of_string_opt v with
    | Some f -> f
    | None -> failwith (Printf.sprintf "Front.of_string: bad %s %S" what v)
  in
  let parse_line line =
    match String.split_on_char ' ' line with
    | [ "p"; err; cost; tag ] when valid_tag tag ->
        { err = parse_float "err" err; cost = parse_float "cost" cost; tag }
    | _ -> failwith (Printf.sprintf "Front.of_string: bad line %S" line)
  in
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "" && l.[0] <> '#')
  |> List.map parse_line
  |> of_points
