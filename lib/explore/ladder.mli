(** Error-budget ladders: the per-metric threshold sequences a sweep
    explores.

    A ladder pairs an error metric with an ascending list of budgets;
    the corpus sweep runs one full flow per (benchmark, metric, budget)
    triple.  The spec grammar (CLI [--ladder], also the manifest's
    persisted form) is semicolon-separated [metric=b1,b2,...] groups,
    e.g. ["er=0.01,0.03;nmed=0.001"].  Budgets accept both decimal and
    hexadecimal float literals; {!to_spec} always emits hex ([%h]) so a
    ladder round-trips through the manifest bit-exactly. *)

type t = {
  metric : Errest.Metrics.kind;
  budgets : float list;
      (** ascending; each in (0, 1] for rate-like metrics (ER and the
          normalized/relative distances), merely positive and finite for
          absolute distances and the worst-case metrics — a max-ED ladder
          of [1,3,7] is legal *)
}

val defaults : t list
(** The paper-shaped default sweep: an ER ladder over the thresholds of
    the Table IV/VI experiments plus NMED and MRED ladders in the Table
    V/VII ranges. *)

val parse : string -> (t list, string) result
(** Parse a spec; ["default"] (or [""]) yields {!defaults}.  Rejects
    unknown metrics, duplicate metrics, non-ascending or out-of-range
    budgets. *)

val to_spec : t list -> string
(** Canonical spec string ([%h] budgets); [parse (to_spec l)] recovers
    [l] exactly. *)

val pp : Format.formatter -> t -> unit
