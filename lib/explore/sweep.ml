type spec = {
  dir : string;
  benchmarks : string list;
  ladders : Ladder.t list;
  policy : Policy.kind;
  seed : int;
  eval_rounds : int;
  max_iters : int;
  shards : int;
  shard_id : int;
  jobs : int;
  distr : Errest.Distr.t;
}

type item = {
  index : int;
  bench : string;
  metric : Errest.Metrics.kind;
  budget : float;
}

let work_list (m : Store.manifest) =
  let items = ref [] in
  let index = ref 0 in
  List.iter
    (fun (l : Ladder.t) ->
      List.iter
        (fun bench ->
          List.iter
            (fun budget ->
              items := { index = !index; bench; metric = l.metric; budget } :: !items;
              incr index)
            l.budgets)
        m.benchmarks)
    m.ladders;
  Array.of_list (List.rev !items)

type progress = {
  manifest : Store.manifest;
  total : int;
  already_done : int;
  owned : int;
  ran : int;
}

let ( let* ) = Result.bind

let validate_benchmarks names =
  match names with
  | [] -> Error "no benchmarks selected"
  | _ -> (
      match List.find_opt (fun n -> Circuits.Suite.find n = None) names with
      | Some n ->
          Error (Printf.sprintf "unknown benchmark %s (try `alsrac list')" n)
      | None -> Ok ())

(* One point = one complete flow plus both technology mappings.  Pure in
   (manifest, index): sequential flow (jobs = 1), per-point seed, fresh
   policy hook, unbounded wall clock — nothing here may observe the
   execution layout. *)
let run_point (m : Store.manifest) (it : item) =
  let entry = Option.get (Circuits.Suite.find it.bench) in
  let g = Aig.Graph.compact (entry.Circuits.Suite.build ()) in
  let config =
    {
      (Core.Config.default ~metric:it.metric ~threshold:it.budget) with
      Core.Config.seed = m.seed + it.index;
      eval_rounds = m.eval_rounds;
      max_iters = m.max_iters;
      policy = Policy.make m.policy;
      distr = m.distr;
      jobs = 1;
    }
  in
  let approx, report = Core.Flow.run ~config g in
  let l0 = Techmap.Lutmap.run g and l1 = Techmap.Lutmap.run approx in
  let c0 = Techmap.Cellmap.run g and c1 = Techmap.Cellmap.run approx in
  {
    Store.index = it.index;
    bench = it.bench;
    metric = it.metric;
    budget = it.budget;
    est_error = report.Core.Flow.final_est_error;
    orig_ands = Aig.Graph.num_ands g;
    ands = Aig.Graph.num_ands approx;
    orig_luts = Techmap.Mapped.num_cells l0;
    luts = Techmap.Mapped.num_cells l1;
    orig_lut_depth = Techmap.Mapped.depth l0;
    lut_depth = Techmap.Mapped.depth l1;
    orig_area = Techmap.Mapped.area c0;
    area = Techmap.Mapped.area c1;
    orig_delay = Techmap.Mapped.delay c0;
    delay = Techmap.Mapped.delay c1;
    applied = report.Core.Flow.applied;
    scored = report.Core.Flow.scoring.Errest.Batch.scored;
    runtime_s = report.Core.Flow.runtime_s;
  }

let run ?(log = fun _ -> ()) spec =
  let* () = Shard.validate ~shards:spec.shards ~shard_id:spec.shard_id in
  let* () = validate_benchmarks spec.benchmarks in
  let* () =
    if spec.eval_rounds <= 0 then Error "eval-rounds must be positive"
    else if spec.max_iters < 0 then Error "max-iters must be >= 0"
    else if spec.jobs < 0 then Error "jobs must be >= 0"
    else Ok ()
  in
  let m =
    Store.init ~dir:spec.dir
      {
        Store.benchmarks = spec.benchmarks;
        ladders = spec.ladders;
        policy = spec.policy;
        seed = spec.seed;
        eval_rounds = spec.eval_rounds;
        max_iters = spec.max_iters;
        distr = spec.distr;
      }
  in
  (* The persisted manifest supersedes the command line (it may come
     from an interrupted run with different flags) — so its benchmark
     names must be re-validated, not trusted. *)
  let* () = validate_benchmarks m.Store.benchmarks in
  (* An enumerated distribution fixes a PI count; every benchmark of the
     (possibly resumed) manifest must match it, or run_point would raise
     mid-sweep. *)
  let* () =
    let rec check = function
      | [] -> Ok ()
      | bench :: rest -> (
          let entry = Option.get (Circuits.Suite.find bench) in
          let npis = Aig.Graph.num_pis (entry.Circuits.Suite.build ()) in
          match Errest.Distr.validate_npis m.Store.distr ~npis with
          | Ok () -> check rest
          | Error e -> Error (Printf.sprintf "benchmark %s: %s" bench e))
    in
    check m.Store.benchmarks
  in
  if
    m.Store.benchmarks <> spec.benchmarks
    || m.Store.ladders <> spec.ladders
    || not (Errest.Distr.equal m.Store.distr spec.distr)
  then log "resuming: existing manifest supersedes the command line";
  let items = work_list m in
  let total = Array.length items in
  let done0 = Store.completed ~dir:spec.dir ~total in
  let already_done = Array.fold_left (fun n r -> if r <> None then n + 1 else n) 0 done0 in
  let pending =
    Array.of_list
      (List.filter
         (fun it ->
           Shard.owns ~shards:spec.shards ~shard_id:spec.shard_id it.index
           && done0.(it.index) = None)
         (Array.to_list items))
  in
  let owned =
    Array.fold_left
      (fun n it ->
        if Shard.owns ~shards:spec.shards ~shard_id:spec.shard_id it.index then n + 1
        else n)
      0 items
  in
  let disk = Mutex.create () in
  let publish result =
    (* Atomic point write, then fronts rebuilt from the full completed
       set (other shards' fresh points included) — the fronts on disk
       are anytime-consistent after every flow. *)
    Mutex.lock disk;
    Fun.protect ~finally:(fun () -> Mutex.unlock disk) @@ fun () ->
    Store.record_point ~dir:spec.dir result;
    let all = Store.completed ~dir:spec.dir ~total in
    let results = List.filter_map Fun.id (Array.to_list all) in
    Store.write_fronts ~dir:spec.dir m results
  in
  let npending = Array.length pending in
  if npending > 0 then
    Parallel.Pool.with_pool ~jobs:spec.jobs (fun pool ->
        ignore
          (Parallel.Chunk.map ~pool ~chunk_size:1 ~n:npending (fun i ->
               let it = pending.(i) in
               let r = run_point m it in
               publish r;
               log
                 (Printf.sprintf "point %d/%d %s %s budget %g: ands %d -> %d (%d LACs)"
                    (it.index + 1) total it.bench
                    (Errest.Metrics.kind_to_string it.metric)
                    it.budget r.Store.orig_ands r.Store.ands r.Store.applied))));
  (* Refresh fronts even when nothing ran: a resume onto a completed
     directory must still leave consistent front files behind. *)
  let all = Store.completed ~dir:spec.dir ~total in
  let results = List.filter_map Fun.id (Array.to_list all) in
  Store.write_fronts ~dir:spec.dir m results;
  Ok { manifest = m; total; already_done; owned; ran = npending }
