(** Adaptive candidate-selection policies for the flow.

    The flow's greedy default attempts candidates in smallest-error-first
    order.  The bandit policy instead learns {e which kinds of candidate
    pay off} on the circuit at hand and re-prioritizes accordingly: every
    candidate is classified into one of {!arms} arms — a (transform
    family, node region) bucket — and a UCB1 bandit orders the arms by
    upper confidence bound on reward (area saved per scored candidate,
    fed back by the flow after each accepted change; see
    [Core.Config.policy_hook]).

    The bandit is deterministic: arm choice depends only on the reward
    history, ties break toward the lower arm index, and untried arms are
    explored first in index order.  Its whole state serializes to one
    line ([%h] floats, exact round-trip), which the journal checkpoints
    so a killed-and-resumed run replays the same decisions. *)

type kind = Greedy | Bandit

val kind_of_string : string -> kind option
val kind_to_string : kind -> string

val bandit_name : string
(** The [policy_name] the bandit hook reports (["ucb1"]); journal
    manifests persist it, and resume must supply a hook with the same
    name. *)

val arms : int
(** 12: four transform families (constant / wire / 2-divisor / wider
    resubstitution) crossed with three depth terciles of the target
    node. *)

val classify : depth_frac:float -> ndivisors:int -> int
(** Arm of a candidate: [min ndivisors 3 * 3 + tercile depth_frac].
    Exposed for tests; the hook built by {!make} uses exactly this. *)

val make : kind -> Core.Config.policy
(** [make Greedy] is [Core.Config.Greedy]; [make Bandit] allocates a
    {e fresh} bandit (hooks are stateful — never share one across
    concurrent flows) wrapped as [Core.Config.Hook]. *)

val hook : unit -> Core.Config.policy_hook
(** A fresh bandit hook, for [Core.Flow.resume ?policy]. *)
