(** Canonical Pareto fronts over (error, cost), both minimized.

    A front is the minimizing antichain of the points inserted into it:
    no member dominates another, and every dominated point is discarded
    at insertion.  The representation is {e canonical} — a front is a
    function of the {e set} of points ever inserted, never of their
    insertion order or of how that set was partitioned across shards:

    - members are kept sorted by ascending [(err, cost, tag)];
    - points with equal coordinates are deduplicated, keeping the
      lexicographically smallest [tag].

    Canonicity is what makes sharded exploration honest:
    [merge (of_points a) (of_points b) = of_points (a @ b)] for every
    partition, so shard-local fronts can be combined without replaying
    the sweep.  {!to_string} prints coordinates as hexadecimal float
    literals ([%h]) — exact round-trip, no decimal drift — so equal
    fronts serialize to byte-identical files. *)

type point = {
  err : float;  (** achieved (or budgeted) error — minimized *)
  cost : float;  (** area / delay / LUT count / depth — minimized *)
  tag : string;  (** provenance label; no whitespace or newlines *)
}

type t

val empty : t

val size : t -> int

val points : t -> point list
(** In canonical order: ascending [err], then [cost], then [tag]. *)

val dominates : point -> point -> bool
(** [dominates p q]: [p] is no worse on both coordinates and strictly
    better on at least one.  Equal-coordinate points do not dominate
    each other (they are merged by tag instead). *)

val insert : t -> point -> t
(** Add one point: discarded if dominated by (or coordinate-equal with a
    smaller-tagged) member; otherwise inserted, evicting every member it
    dominates.  Raises [Invalid_argument] on NaN coordinates or a tag
    containing whitespace. *)

val of_points : point list -> t

val merge : t -> t -> t
(** Union of two fronts, re-filtered; equals [of_points] of the union of
    their members (and, by induction, of everything ever inserted). *)

val member : t -> point -> bool
(** Exact membership ([Float.equal] on both coordinates, equal tag). *)

val is_antichain : t -> bool
(** No member dominates another, no two members share coordinates, and
    storage order is canonical — the representation invariant, exposed
    for property tests. *)

val equal : t -> t -> bool

val to_string : t -> string
(** One [p <err> <cost> <tag>] line per member in canonical order,
    coordinates as [%h] hex floats: equal fronts yield identical
    bytes. *)

val of_string : string -> t
(** Inverse of {!to_string}; raises [Failure] on malformed input.
    Ignores blank lines and lines starting with [#]. *)
