(** Deterministic work assignment for multi-process sweeps.

    A sweep's work list is canonical (fixed by the manifest, independent
    of execution), so sharding is just arithmetic on indices: shard [s]
    of [n] owns every point whose index is congruent to [s] mod [n].
    Ownership depends only on the index — never on process layout, pool
    size, or which points already completed — which is what lets any
    combination of shard runs (including interrupted and restarted ones
    with a {e different} shard count) converge to the same completed set
    and hence byte-identical fronts. *)

val validate : shards:int -> shard_id:int -> (unit, string) result
(** [shards >= 1] and [0 <= shard_id < shards]. *)

val owns : shards:int -> shard_id:int -> int -> bool
(** [owns ~shards ~shard_id index] — round-robin by index. *)
