(** On-disk state of a corpus sweep: the layer that makes exploration
    anytime and crash-resumable.

    A sweep directory holds:

    - [manifest] — the sweep's identity (benchmarks, ladders, policy,
      seed, flow knobs), written once, atomically.  On resume the
      manifest {e supersedes} the command line, exactly like the flow
      journal: a sweep's work list may never drift between restarts.
    - [points/point-NNNNNN] — one file per completed (benchmark, metric,
      budget) flow, written atomically when the flow finishes.  The
      completed set IS the sweep's progress: resume scans it and runs
      only the missing indices, so a [kill -9] mid-sweep loses at most
      the points that were in flight.
    - [fronts/] — Pareto front files, rebuilt from the completed points
      after every finished flow.  Fronts are a pure function of the
      completed {e set} (point results are deterministic, and
      {!Front.t} is canonical), so once all points exist the front files
      are byte-identical no matter how execution was sharded, paralleled,
      killed, or resumed.  Per-point [runtime_s] is recorded for
      reporting but deliberately kept out of every front file. *)

type manifest = {
  benchmarks : string list;  (** suite names, in sweep order *)
  ladders : Ladder.t list;
  policy : Policy.kind;
  seed : int;  (** base seed; point [i] runs the flow with [seed + i] *)
  eval_rounds : int;
  max_iters : int;
  distr : Errest.Distr.t;
      (** input distribution every point's flow measures error under;
          persisted with {!Errest.Distr.to_string} (manifests predating
          the field read back as [Unif]) *)
}

type result = {
  index : int;  (** position in the canonical work list *)
  bench : string;
  metric : Errest.Metrics.kind;
  budget : float;  (** the flow's error threshold *)
  est_error : float;  (** the flow's final sampled error *)
  orig_ands : int;
  ands : int;
  orig_luts : int;
  luts : int;
  orig_lut_depth : int;
  lut_depth : int;
  orig_area : float;
  area : float;
  orig_delay : float;
  delay : float;
  applied : int;  (** accepted LACs *)
  scored : int;  (** candidates scored (selection-efficiency counter) *)
  runtime_s : float;  (** CPU time; reporting only, never in fronts *)
}

val init : dir:string -> manifest -> manifest
(** Create the directory layout and persist [manifest] — unless a
    manifest already exists, in which case it is loaded and returned
    instead (resume semantics: disk wins).  Also removes [*.tmp.*]
    debris stranded by a process killed mid-[Atomic_file.write], so a
    resumed sweep's directories list only completed artifacts.  Raises
    [Failure] on an unreadable existing manifest. *)

val load_manifest : string -> manifest option
(** [None] when no manifest file exists; raises [Failure] on a corrupt
    one. *)

val manifest_to_string : manifest -> string
val manifest_of_string : string -> manifest

val point_path : string -> int -> string

val record_point : dir:string -> result -> unit
(** Atomic write of [points/point-<index>]. *)

val read_point : dir:string -> int -> result option
(** [None] for a missing or unreadable point (it will simply be
    re-run). *)

val completed : dir:string -> total:int -> result option array
(** Slot [i] holds point [i]'s result if its file exists and parses. *)

val front_sections : string list
(** The four cost dimensions of every per-benchmark front file:
    ["lut-area"; "lut-depth"; "cell-area"; "cell-delay"]. *)

val fronts_of_results :
  bench:string -> metric:Errest.Metrics.kind -> result list -> (string * Front.t) list
(** One front per {!front_sections} entry, built from the matching
    results: error coordinate [est_error], cost the section's measure,
    tag [b<budget>].  Exposed for tests. *)

val front_path : string -> bench:string -> metric:Errest.Metrics.kind -> string
val corpus_front_path : string -> metric:Errest.Metrics.kind -> string

val write_fronts : dir:string -> manifest -> result list -> unit
(** Atomically rewrite every front file covered by [results]: per
    (benchmark, metric) the four-section file, and per metric a corpus
    file of mean AND-ratios over the budgets at which {e every}
    benchmark has completed. *)
