(** The corpus sweep: one flow per (benchmark, metric, budget) point,
    anytime Pareto fronts on disk, resumable and shardable.

    Determinism contract (the subsystem's reason to exist): the final
    front files of a sweep directory are {e byte-identical} however the
    sweep was executed — any [--jobs], any [--shards] split across
    processes or machines sharing the directory tree, killed at any
    instant and resumed with {e different} settings.  It holds because

    - the work list is canonical: fixed by the manifest (which
      supersedes the command line on resume), ordered ladder-major,
      benchmark, then ascending budget;
    - each point's result is a pure function of the manifest and its
      index — the flow runs with [jobs = 1], seed [manifest.seed +
      index], a fresh policy hook, and no wall-clock budget;
    - completed points persist atomically, so progress is a {e set} of
      indices, and {!Store.write_fronts} + {!Front}'s canonical
      antichain make the fronts a function of that set alone. *)

type spec = {
  dir : string;
  benchmarks : string list;
  ladders : Ladder.t list;
  policy : Policy.kind;
  seed : int;
  eval_rounds : int;
  max_iters : int;  (** per-point cap on accepted LACs *)
  shards : int;
  shard_id : int;
  jobs : int;  (** concurrent points in this process; 0 = core count *)
  distr : Errest.Distr.t;
      (** input distribution for every point's error measurement; an
          enumerated distribution must match each benchmark's PI count
          (validated before any point runs) *)
}

type item = {
  index : int;
  bench : string;
  metric : Errest.Metrics.kind;
  budget : float;
}

val work_list : Store.manifest -> item array
(** The canonical order: per ladder (manifest order), per benchmark
    (manifest order), per budget (ascending). *)

type progress = {
  manifest : Store.manifest;  (** the effective (possibly resumed) one *)
  total : int;  (** corpus-wide points *)
  already_done : int;  (** found complete on entry *)
  owned : int;  (** points this shard is responsible for *)
  ran : int;  (** points this invocation executed *)
}

val run : ?log:(string -> unit) -> spec -> (progress, string) result
(** Execute this shard's missing points and rebuild the fronts after
    every completed flow (and once on exit, so a fully-resumed
    invocation still refreshes them).  [?log] receives one progress line
    per executed point.  Errors (unknown benchmark, bad shard spec, a
    resumed manifest naming benchmarks the suite lacks) are returned,
    not raised. *)
