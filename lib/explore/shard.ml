let validate ~shards ~shard_id =
  if shards < 1 then Error (Printf.sprintf "--shards must be >= 1 (got %d)" shards)
  else if shard_id < 0 || shard_id >= shards then
    Error (Printf.sprintf "--shard-id must be in 0..%d (got %d)" (shards - 1) shard_id)
  else Ok ()

let owns ~shards ~shard_id index = index mod shards = shard_id
