type manifest = {
  benchmarks : string list;
  ladders : Ladder.t list;
  policy : Policy.kind;
  seed : int;
  eval_rounds : int;
  max_iters : int;
  distr : Errest.Distr.t;
}

type result = {
  index : int;
  bench : string;
  metric : Errest.Metrics.kind;
  budget : float;
  est_error : float;
  orig_ands : int;
  ands : int;
  orig_luts : int;
  luts : int;
  orig_lut_depth : int;
  lut_depth : int;
  orig_area : float;
  area : float;
  orig_delay : float;
  delay : float;
  applied : int;
  scored : int;
  runtime_s : float;
}

let format_line = "alsrac-explore 1"

(* ---------- kv plumbing (same shape as the flow journal) ---------- *)

let kv_to_string kvs =
  let buf = Buffer.create 256 in
  List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s %s\n" k v)) kvs;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let kv_of_string ~what text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  match List.rev lines with
  | "end" :: rev_body ->
      List.rev_map
        (fun line ->
          match String.index_opt line ' ' with
          | Some i ->
              ( String.sub line 0 i,
                String.sub line (i + 1) (String.length line - i - 1) )
          | None -> failwith (Printf.sprintf "%s: bad line %S" what line))
        rev_body
  | _ -> failwith (Printf.sprintf "%s: missing end marker" what)

let field ~what kvs k =
  match List.assoc_opt k kvs with
  | Some v -> v
  | None -> failwith (Printf.sprintf "%s: missing field %s" what k)

let int_field ~what kvs k =
  match int_of_string_opt (field ~what kvs k) with
  | Some i -> i
  | None -> failwith (Printf.sprintf "%s: bad int field %s" what k)

let float_field ~what kvs k =
  match float_of_string_opt (field ~what kvs k) with
  | Some f -> f
  | None -> failwith (Printf.sprintf "%s: bad float field %s" what k)

(* ---------- manifest ---------- *)

let manifest_to_string m =
  format_line ^ "\n"
  ^ kv_to_string
      [
        ("benchmarks", String.concat "," m.benchmarks);
        ("ladder", Ladder.to_spec m.ladders);
        ("policy", Policy.kind_to_string m.policy);
        ("seed", string_of_int m.seed);
        ("eval_rounds", string_of_int m.eval_rounds);
        ("max_iters", string_of_int m.max_iters);
        ("distr", Errest.Distr.to_string m.distr);
      ]

let manifest_of_string text =
  let what = "explore manifest" in
  match String.index_opt text '\n' with
  | Some i when String.sub text 0 i = format_line ->
      let kvs =
        kv_of_string ~what (String.sub text (i + 1) (String.length text - i - 1))
      in
      let ladders =
        match Ladder.parse (field ~what kvs "ladder") with
        | Ok ls -> ls
        | Error e -> failwith (Printf.sprintf "%s: %s" what e)
      in
      let policy =
        let p = field ~what kvs "policy" in
        match Policy.kind_of_string p with
        | Some k -> k
        | None -> failwith (Printf.sprintf "%s: unknown policy %S" what p)
      in
      {
        benchmarks = String.split_on_char ',' (field ~what kvs "benchmarks");
        ladders;
        policy;
        seed = int_field ~what kvs "seed";
        eval_rounds = int_field ~what kvs "eval_rounds";
        max_iters = int_field ~what kvs "max_iters";
        distr =
          (* Manifests written before the distribution axis existed carry
             no [distr] key: those sweeps were uniform. *)
          (match List.assoc_opt "distr" kvs with
          | None -> Errest.Distr.Unif
          | Some v -> (
              match Errest.Distr.of_string v with
              | Ok d -> d
              | Error e -> failwith (Printf.sprintf "%s: bad distr: %s" what e)));
      }
  | _ -> failwith (Printf.sprintf "%s: not an %s file" what format_line)

let manifest_path dir = Filename.concat dir "manifest"
let points_dir dir = Filename.concat dir "points"
let fronts_dir dir = Filename.concat dir "fronts"

let ensure_dir d =
  if not (Sys.file_exists d) then
    try Sys.mkdir d 0o755
    with Sys_error _ when Sys.file_exists d -> () (* racing shard won *)

(* [Atomic_file.write] stages its temporary file next to the target, so a
   process killed mid-write strands a [*.tmp.*] file in the sweep
   directory.  Completed-point lookup goes by exact path and never sees
   the debris, but directory listings do — sweep it on (re)start.  A
   shard launched while another is mid-write could in principle remove
   the peer's sub-millisecond-old temp file; the peer's rename then
   fails loudly and the sweep stays resumable, so the race degrades to a
   retry, never to corruption. *)
let remove_debris = Circuit_io.Atomic_file.sweep_debris

let load_manifest dir =
  let path = manifest_path dir in
  if Sys.file_exists path then Some (manifest_of_string (Circuit_io.Atomic_file.read path))
  else None

let init ~dir m =
  ensure_dir dir;
  ensure_dir (points_dir dir);
  ensure_dir (fronts_dir dir);
  remove_debris dir;
  remove_debris (points_dir dir);
  remove_debris (fronts_dir dir);
  match load_manifest dir with
  | Some existing -> existing
  | None ->
      Circuit_io.Atomic_file.write (manifest_path dir) (manifest_to_string m);
      m

(* ---------- points ---------- *)

let point_path dir index =
  Filename.concat (points_dir dir) (Printf.sprintf "point-%06d" index)

let result_to_string r =
  kv_to_string
    [
      ("point", string_of_int r.index);
      ("bench", r.bench);
      ("metric", Errest.Metrics.kind_to_string r.metric);
      ("budget", Printf.sprintf "%h" r.budget);
      ("est_error", Printf.sprintf "%h" r.est_error);
      ("orig_ands", string_of_int r.orig_ands);
      ("ands", string_of_int r.ands);
      ("orig_luts", string_of_int r.orig_luts);
      ("luts", string_of_int r.luts);
      ("orig_lut_depth", string_of_int r.orig_lut_depth);
      ("lut_depth", string_of_int r.lut_depth);
      ("orig_area", Printf.sprintf "%h" r.orig_area);
      ("area", Printf.sprintf "%h" r.area);
      ("orig_delay", Printf.sprintf "%h" r.orig_delay);
      ("delay", Printf.sprintf "%h" r.delay);
      ("applied", string_of_int r.applied);
      ("scored", string_of_int r.scored);
      ("runtime_s", Printf.sprintf "%h" r.runtime_s);
    ]

let result_of_string text =
  let what = "explore point" in
  let kvs = kv_of_string ~what text in
  let metric =
    let m = field ~what kvs "metric" in
    match Errest.Metrics.kind_of_string m with
    | Some k -> k
    | None -> failwith (Printf.sprintf "%s: unknown metric %S" what m)
  in
  {
    index = int_field ~what kvs "point";
    bench = field ~what kvs "bench";
    metric;
    budget = float_field ~what kvs "budget";
    est_error = float_field ~what kvs "est_error";
    orig_ands = int_field ~what kvs "orig_ands";
    ands = int_field ~what kvs "ands";
    orig_luts = int_field ~what kvs "orig_luts";
    luts = int_field ~what kvs "luts";
    orig_lut_depth = int_field ~what kvs "orig_lut_depth";
    lut_depth = int_field ~what kvs "lut_depth";
    orig_area = float_field ~what kvs "orig_area";
    area = float_field ~what kvs "area";
    orig_delay = float_field ~what kvs "orig_delay";
    delay = float_field ~what kvs "delay";
    applied = int_field ~what kvs "applied";
    scored = int_field ~what kvs "scored";
    runtime_s = float_field ~what kvs "runtime_s";
  }

let record_point ~dir r =
  Circuit_io.Atomic_file.write (point_path dir r.index) (result_to_string r)

let read_point ~dir index =
  let path = point_path dir index in
  if not (Sys.file_exists path) then None
  else
    try
      let r = result_of_string (Circuit_io.Atomic_file.read path) in
      if r.index = index then Some r else None
    with Failure _ | Sys_error _ -> None

let completed ~dir ~total = Array.init total (fun i -> read_point ~dir i)

(* ---------- fronts ---------- *)

let front_sections = [ "lut-area"; "lut-depth"; "cell-area"; "cell-delay" ]

let tag_of_budget b = Printf.sprintf "b%h" b

let fronts_of_results ~bench ~metric results =
  let mine = List.filter (fun r -> r.bench = bench && r.metric = metric) results in
  let front cost =
    Front.of_points
      (List.map
         (fun r ->
           { Front.err = r.est_error; cost = cost r; tag = tag_of_budget r.budget })
         mine)
  in
  [
    ("lut-area", front (fun r -> float_of_int r.luts));
    ("lut-depth", front (fun r -> float_of_int r.lut_depth));
    ("cell-area", front (fun r -> r.area));
    ("cell-delay", front (fun r -> r.delay));
  ]

let front_path dir ~bench ~metric =
  Filename.concat (fronts_dir dir)
    (Printf.sprintf "%s.%s.front" bench (Errest.Metrics.kind_to_string metric))

let corpus_front_path dir ~metric =
  Filename.concat (fronts_dir dir)
    (Printf.sprintf "corpus.%s.front" (Errest.Metrics.kind_to_string metric))

let front_file_to_string ~name ~metric sections =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "front %s %s\n" name (Errest.Metrics.kind_to_string metric));
  List.iter
    (fun (section, front) ->
      Buffer.add_string buf (Printf.sprintf "section %s\n" section);
      Buffer.add_string buf (Front.to_string front))
    sections;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

(* The corpus front aggregates across benchmarks, so it only admits
   budgets at which EVERY benchmark of the manifest has completed —
   otherwise an in-flight sweep's corpus numbers would depend on
   completion order.  Mean of AND ratios in manifest benchmark order
   (ordered float summation: reproducible). *)
let corpus_front m ~metric results =
  let budgets =
    match List.find_opt (fun (l : Ladder.t) -> l.metric = metric) m.ladders with
    | Some l -> l.budgets
    | None -> []
  in
  let points =
    List.filter_map
      (fun budget ->
        let per_bench =
          List.map
            (fun bench ->
              List.find_opt
                (fun r ->
                  r.bench = bench && r.metric = metric && Float.equal r.budget budget)
                results)
            m.benchmarks
        in
        if List.exists Option.is_none per_bench then None
        else
          let ratios =
            List.map
              (fun r ->
                let r = Option.get r in
                float_of_int r.ands /. float_of_int (max 1 r.orig_ands))
              per_bench
          in
          let mean =
            List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios)
          in
          Some { Front.err = budget; cost = mean; tag = tag_of_budget budget })
      budgets
  in
  Front.of_points points

let write_fronts ~dir m results =
  List.iter
    (fun (l : Ladder.t) ->
      let metric = l.metric in
      List.iter
        (fun bench ->
          let sections = fronts_of_results ~bench ~metric results in
          Circuit_io.Atomic_file.write
            (front_path dir ~bench ~metric)
            (front_file_to_string ~name:bench ~metric sections))
        m.benchmarks;
      Circuit_io.Atomic_file.write
        (corpus_front_path dir ~metric)
        (front_file_to_string ~name:"corpus" ~metric
           [ ("and-ratio", corpus_front m ~metric results) ]))
    m.ladders
