type t = { metric : Errest.Metrics.kind; budgets : float list }

(* ER thresholds follow the paper's Tables IV/VI sweep points (0.1% to
   5%); the distance-metric ladders cover the Table V/VII ranges. *)
let defaults =
  [
    { metric = Errest.Metrics.Er; budgets = [ 0.001; 0.005; 0.01; 0.03; 0.05 ] };
    { metric = Errest.Metrics.Nmed; budgets = [ 0.0001; 0.0005; 0.001; 0.005 ] };
    { metric = Errest.Metrics.Mred; budgets = [ 0.005; 0.01; 0.05; 0.1 ] };
  ]

let ( let* ) = Result.bind

(* Rates and normalized distances live in (0, 1]; the remaining metrics
   (absolute distances and all worst-case bounds) are only required to be
   positive and finite — a max-ED budget of 3 on an adder is perfectly
   meaningful. *)
let rate_like = function
  | Errest.Metrics.Er | Errest.Metrics.Nmed | Errest.Metrics.Nmhd
  | Errest.Metrics.Mred ->
      true
  | Errest.Metrics.Med | Errest.Metrics.Mse | Errest.Metrics.Mhd
  | Errest.Metrics.Maxed | Errest.Metrics.Maxhd | Errest.Metrics.Maxred ->
      false

let parse_budget ~metric s =
  match float_of_string_opt (String.trim s) with
  | Some b when b > 0.0 && (if rate_like metric then b <= 1.0 else b < infinity)
    ->
      Ok b
  | Some b ->
      if rate_like metric then
        Error
          (Printf.sprintf "budget %g out of (0, 1] for %s" b
             (Errest.Metrics.kind_to_string metric))
      else
        Error
          (Printf.sprintf "budget %g for %s must be positive and finite" b
             (Errest.Metrics.kind_to_string metric))
  | None -> Error (Printf.sprintf "bad budget %S" s)

let rec parse_budgets ~metric = function
  | [] -> Ok []
  | s :: rest ->
      let* b = parse_budget ~metric s in
      let* bs = parse_budgets ~metric rest in
      Ok (b :: bs)

let ascending bs =
  let rec go = function
    | a :: (b :: _ as rest) -> a < b && go rest
    | _ -> true
  in
  go bs

let parse_group g =
  match String.index_opt g '=' with
  | None -> Error (Printf.sprintf "bad ladder group %S (want metric=b1,b2,...)" g)
  | Some i -> (
      let mname = String.trim (String.sub g 0 i) in
      let rest = String.sub g (i + 1) (String.length g - i - 1) in
      match Errest.Metrics.kind_of_string mname with
      | None ->
          Error
            (Printf.sprintf
               "unknown metric %S (er|med|nmed|mred|mse|mhd|nmhd|maxed|maxhd|maxred)"
               mname)
      | Some metric ->
          let* budgets = parse_budgets ~metric (String.split_on_char ',' rest) in
          if budgets = [] then Error (Printf.sprintf "empty ladder for %s" mname)
          else if not (ascending budgets) then
            Error (Printf.sprintf "budgets for %s must be strictly ascending" mname)
          else Ok { metric; budgets })

let parse spec =
  let spec = String.trim spec in
  if spec = "" || spec = "default" then Ok defaults
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | g :: rest ->
          let* l = parse_group g in
          if List.exists (fun l' -> l'.metric = l.metric) acc then
            Error
              (Printf.sprintf "duplicate ladder for metric %s"
                 (Errest.Metrics.kind_to_string l.metric))
          else go (l :: acc) rest
    in
    go []
      (String.split_on_char ';' spec
      |> List.map String.trim
      |> List.filter (fun g -> g <> ""))

let to_spec ls =
  String.concat ";"
    (List.map
       (fun l ->
         Printf.sprintf "%s=%s"
           (Errest.Metrics.kind_to_string l.metric)
           (String.concat "," (List.map (Printf.sprintf "%h") l.budgets)))
       ls)

let pp fmt l =
  Format.fprintf fmt "%s:[%s]"
    (Errest.Metrics.kind_to_string l.metric)
    (String.concat "," (List.map (Printf.sprintf "%g") l.budgets))
