type kind = Greedy | Bandit

let kind_of_string = function
  | "greedy" -> Some Greedy
  | "bandit" | "ucb1" -> Some Bandit
  | _ -> None

let kind_to_string = function Greedy -> "greedy" | Bandit -> "bandit"
let bandit_name = "ucb1"
let families = 4 (* ndivisors 0 (constant), 1 (wire), 2, >=3 *)
let regions = 3 (* depth terciles of the target node *)
let arms = families * regions

let classify ~depth_frac ~ndivisors =
  let family = if ndivisors >= families - 1 then families - 1 else max 0 ndivisors in
  let region =
    if depth_frac < 1.0 /. 3.0 then 0 else if depth_frac < 2.0 /. 3.0 then 1 else 2
  in
  (family * regions) + region

(* UCB1 with exploration constant c = 0.5 (rewards live in [0,1] but
   cluster near 0 — area saved per scored candidate — so the textbook
   c = sqrt 2 over-explores).  All tie-breaks are by arm index: the
   priority order is a pure function of (counts, rewards). *)
let ucb_c = 0.5

type state = { counts : int array; rewards : float array }

let choose_order st =
  let total = Array.fold_left ( + ) 0 st.counts in
  let score a =
    if st.counts.(a) = 0 then infinity
    else
      let n = float_of_int st.counts.(a) in
      (st.rewards.(a) /. n)
      +. (ucb_c *. sqrt (log (float_of_int (max 1 total)) /. n))
  in
  let order = Array.init arms (fun a -> a) in
  (* Stable sort + index tie-break: untried arms (infinite score) lead in
     index order, then descending UCB. *)
  let cmp a b =
    let c = Float.compare (score b) (score a) in
    if c <> 0 then c else compare a b
  in
  Array.stable_sort cmp order;
  order

let state_to_string st =
  String.concat " "
    ("ucb1"
    :: List.init arms (fun a ->
           Printf.sprintf "%d:%h" st.counts.(a) st.rewards.(a)))

let state_of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | "ucb1" :: cells when List.length cells = arms ->
      let counts = Array.make arms 0 and rewards = Array.make arms 0.0 in
      List.iteri
        (fun a cell ->
          match String.index_opt cell ':' with
          | Some i -> (
              let c = String.sub cell 0 i
              and r = String.sub cell (i + 1) (String.length cell - i - 1) in
              match (int_of_string_opt c, float_of_string_opt r) with
              | Some c, Some r when c >= 0 ->
                  counts.(a) <- c;
                  rewards.(a) <- r
              | _ -> failwith (Printf.sprintf "ucb1 state: bad cell %S" cell))
          | None -> failwith (Printf.sprintf "ucb1 state: bad cell %S" cell))
        cells;
      { counts; rewards }
  | _ -> failwith (Printf.sprintf "ucb1 state: cannot parse %S" s)

let hook () =
  let st = { counts = Array.make arms 0; rewards = Array.make arms 0.0 } in
  {
    Core.Config.policy_name = bandit_name;
    arms;
    classify;
    choose = (fun () -> choose_order st);
    feed =
      (fun ~arm ~reward ->
        if arm >= 0 && arm < arms then begin
          st.counts.(arm) <- st.counts.(arm) + 1;
          st.rewards.(arm) <- st.rewards.(arm) +. reward
        end);
    policy_state = (fun () -> state_to_string st);
    restore_state =
      (fun s ->
        let st' = state_of_string s in
        Array.blit st'.counts 0 st.counts 0 arms;
        Array.blit st'.rewards 0 st.rewards 0 arms);
  }

let make = function
  | Greedy -> Core.Config.Greedy
  | Bandit -> Core.Config.Hook (hook ())
