module Bitvec = Logic.Bitvec
module Truth = Logic.Truth

type source = Const of bool | Net of int

type cell = {
  label : string;
  area : float;
  delay : float;
  fanins : source array;
  tt : Truth.t;
}

type t = {
  name : string;
  npis : int;
  pi_names : string array;
  cells : cell array;
  pos : source array;
  po_names : string array;
}

let num_cells t = Array.length t.cells

let area t = Array.fold_left (fun acc c -> acc +. c.area) 0.0 t.cells

let net_count t = t.npis + Array.length t.cells

let arrivals weight t =
  let arr = Array.make (net_count t) 0.0 in
  Array.iteri
    (fun i c ->
      let latest =
        Array.fold_left
          (fun acc -> function Const _ -> acc | Net n -> Float.max acc arr.(n))
          0.0 c.fanins
      in
      arr.(t.npis + i) <- latest +. weight c)
    t.cells;
  arr

let delay t =
  let arr = arrivals (fun c -> c.delay) t in
  Array.fold_left
    (fun acc -> function Const _ -> acc | Net n -> Float.max acc arr.(n))
    0.0 t.pos

let depth t =
  let arr = arrivals (fun _ -> 1.0) t in
  let d =
    Array.fold_left
      (fun acc -> function Const _ -> acc | Net n -> Float.max acc arr.(n))
      0.0 t.pos
  in
  int_of_float d

let eval_tt_sigs tt inputs =
  let k = Truth.num_vars tt in
  if Array.length inputs <> k then invalid_arg "Mapped.eval_tt_sigs: arity mismatch";
  if k = 0 then invalid_arg "Mapped.eval_tt_sigs: zero-input table";
  let len = Bitvec.length inputs.(0) in
  let out = Bitvec.create len in
  let ow = Bitvec.unsafe_words out in
  let iw = Array.map Bitvec.unsafe_words inputs in
  let full = Bitvec.word_mask in
  for m = 0 to Truth.num_bits tt - 1 do
    if Truth.get tt m then
      for w = 0 to Array.length ow - 1 do
        let acc = ref full in
        for i = 0 to k - 1 do
          let v = iw.(i).(w) in
          acc := !acc land (if (m lsr i) land 1 = 1 then v else lnot v)
        done;
        ow.(w) <- ow.(w) lor !acc
      done
  done;
  Bitvec.mask_tail out;
  out

let simulate t inputs =
  if Array.length inputs <> t.npis then invalid_arg "Mapped.simulate: PI count mismatch";
  let len = if t.npis = 0 then 0 else Bitvec.length inputs.(0) in
  let nets = Array.make (net_count t) (Bitvec.create 0) in
  for i = 0 to t.npis - 1 do
    nets.(i) <- inputs.(i)
  done;
  let source_sig = function
    | Const false -> Bitvec.create len
    | Const true -> Bitvec.lognot (Bitvec.create len)
    | Net n -> nets.(n)
  in
  Array.iteri
    (fun i c -> nets.(t.npis + i) <- eval_tt_sigs c.tt (Array.map source_sig c.fanins))
    t.cells;
  Array.map source_sig t.pos

let validate t =
  let exception Bad of string in
  try
    if Array.length t.pi_names <> t.npis then raise (Bad "pi_names length mismatch");
    if Array.length t.po_names <> Array.length t.pos then
      raise (Bad "po_names length mismatch");
    Array.iteri
      (fun i c ->
        if Truth.num_vars c.tt <> Array.length c.fanins then
          raise (Bad (Printf.sprintf "cell %d: truth-table arity mismatch" i));
        Array.iter
          (function
            | Const _ -> ()
            | Net n ->
                if n < 0 || n >= t.npis + i then
                  raise (Bad (Printf.sprintf "cell %d: fanin net %d not yet defined" i n)))
          c.fanins)
      t.cells;
    Array.iter
      (function
        | Const _ -> ()
        | Net n -> if n < 0 || n >= net_count t then raise (Bad "PO net out of range"))
      t.pos;
    Ok ()
  with Bad msg -> Error msg

let to_graph t =
  let module Graph = Aig.Graph in
  let g = Graph.create ~name:t.name () in
  let nets = Array.make (net_count t) Graph.const0 in
  for i = 0 to t.npis - 1 do
    nets.(i) <- Graph.add_pi ~name:t.pi_names.(i) g
  done;
  let lit_of_source = function
    | Const false -> Graph.const0
    | Const true -> Graph.const1
    | Net n -> nets.(n)
  in
  Array.iteri
    (fun ci c ->
      let ins = Array.map lit_of_source c.fanins in
      let nvars = Truth.num_vars c.tt in
      let out =
        if Truth.is_const0 c.tt then Graph.const0
        else if Truth.is_const1 c.tt then Graph.const1
        else begin
          let cover = Logic.Isop.compute ~on:c.tt ~dc:(Truth.const0 nvars) in
          List.fold_left
            (fun acc cube ->
              let prod = ref Graph.const1 in
              for v = 0 to nvars - 1 do
                match Logic.Cube.phase_of cube v with
                | Some true -> prod := Graph.and_ g !prod ins.(v)
                | Some false -> prod := Graph.and_ g !prod (Graph.lit_not ins.(v))
                | None -> ()
              done;
              (* acc OR prod, via De Morgan *)
              Graph.lit_not
                (Graph.and_ g (Graph.lit_not acc) (Graph.lit_not !prod)))
            Graph.const0 cover.Logic.Cover.cubes
        end
      in
      nets.(t.npis + ci) <- out)
    t.cells;
  Array.iteri
    (fun o src -> ignore (Graph.add_po ~name:t.po_names.(o) g (lit_of_source src)))
    t.pos;
  g

let pp_stats ppf t =
  Format.fprintf ppf "%s: pi=%d po=%d cells=%d area=%.1f delay=%.2f depth=%d" t.name
    t.npis (Array.length t.pos) (num_cells t) (area t) (delay t) (depth t)
