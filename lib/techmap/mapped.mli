(** Technology-mapped netlists (standard cells or LUTs).

    Nets are numbered [0 .. npis-1] for the primary inputs, then one net per
    cell output in topological order. *)

type source = Const of bool | Net of int

type cell = {
  label : string;  (** gate name, or ["lut<k>"] *)
  area : float;
  delay : float;
  fanins : source array;
  tt : Logic.Truth.t;  (** function over the fanins *)
}

type t = {
  name : string;
  npis : int;
  pi_names : string array;
  cells : cell array;  (** fanins refer to PIs or earlier cells only *)
  pos : source array;
  po_names : string array;
}

val num_cells : t -> int

val area : t -> float

val delay : t -> float
(** Longest PI-to-PO path weighted by cell delays. *)

val depth : t -> int
(** Unit-delay depth (LUT-network depth in the FPGA experiments). *)

val net_count : t -> int

val simulate : t -> Logic.Bitvec.t array -> Logic.Bitvec.t array
(** PO signatures from PI signatures — used to verify mappers against the
    source AIG. *)

val validate : t -> (unit, string) result
(** Topological-order and arity checks. *)

val to_graph : t -> Aig.Graph.t
(** Re-express the netlist as an AIG computing the same function: each
    cell's truth table is expanded into an ISOP cover over its fanin nets.
    PI/PO order and names are preserved, so the result can be compared
    against the mapper's source AIG by an equivalence checker. *)

val eval_tt_sigs : Logic.Truth.t -> Logic.Bitvec.t array -> Logic.Bitvec.t
(** Word-parallel evaluation of a small truth table over input signatures
    (shared with the resubstitution engine's candidate scoring). *)

val pp_stats : Format.formatter -> t -> unit
