(** The ALSRAC flow (Algorithm 3), hardened into a resilient runtime.

    Iteratively: simulate fresh random care patterns, generate LAC
    candidates, score every candidate with batch error estimation against
    the ORIGINAL circuit, apply the best one if it respects the error
    threshold, re-optimize with traditional synthesis, and dynamically shrink
    the simulation round [N] whenever no candidate exists for [t] consecutive
    iterations.

    Three resilience mechanisms wrap the loop (see DESIGN.md, "Resilience &
    recovery"):

    - {b Guarded transforms} ([Config.guard], default on): every graph about
      to be committed — an accepted LAC after re-optimization, and the final
      resyn hand-off — must pass {!Aig.Check.check} plus a
      signature-consistency probe (its re-measured error on the evaluation
      sample must equal the predicted error; all transforms between
      prediction and commit are exact).  A violation rolls the flow back to
      the last good graph, quarantines the offending target (keyed by its
      evaluation-signature hash, stable across rebuilds) for the rest of the
      run, and continues.
    - {b Exception containment}: an iteration that raises (internal bug or
      injected fault) is abandoned; the last good graph is untouched and the
      flow continues with fresh patterns, up to a bounded number of
      recoveries.
    - {b Journaling} ([?journal]): after every accepted LAC the complete
      loop state and graph are checkpointed atomically via {!Journal};
      {!resume} restores a run mid-flight and — because all randomness flows
      from the single checkpointed stream — finishes with the exact circuit
      an uninterrupted run produces. *)

type event = Journal.event = {
  iteration : int;
  target : int;  (** node replaced *)
  est_error : float;  (** sampled error after the change *)
  ands_after : int;  (** AND count after change + re-optimization *)
  rounds : int;  (** care-simulation rounds [N] used this iteration *)
}

type certify = {
  exact_checks : int;  (** miter checks run on exact-transform applications *)
  exact_confirmed : int;  (** proven function-preserving by [Verify.Cec] *)
  exact_undecided : int;
      (** the bounded simulation-only portfolio could not close the miter;
          never treated as a pass *)
  exact_refuted : int;  (** proven NOT function-preserving — an internal bug *)
  lac_rechecks : int;  (** accepted LACs re-simulated on independent patterns *)
  lac_recheck_failures : int;
      (** rechecks deviating beyond the applicable tolerance: the
          two-sample Hoeffding tolerance for [0,1]-bounded mean metrics
          under the uniform distribution, [guard_tol] under an enumerated
          distribution (both measurements are exact over the support);
          deviations of unbounded means and max metrics are recorded but
          not judged — no such tolerance exists for them *)
  lac_max_deviation : float;
      (** largest |recheck - prediction| observed over the run *)
}
(** Verdicts of [Config.certify_exact] runs: machine-checked evidence that
    the run's two trust assumptions held — exact transforms preserved the
    function, and accepted LACs err as predicted.  Counters are per-process
    (not journaled): a resumed run reports the resumed portion only. *)

type arm_stat = {
  arm : int;
  first_choice : int;
      (** iterations in which this arm held the highest-priority candidate *)
  accepted : int;  (** accepted LACs classified into this arm *)
  reward_sum : float;  (** total reward fed to the hook for this arm *)
}

type policy_report = {
  policy_name : string;
  arm_stats : arm_stat array;  (** indexed by arm *)
}
(** Per-arm counters of a [Config.Hook] candidate-selection policy.
    Observational and per-process (like {!certify} and [scoring]): the
    hook's own reward state is journaled, these counters are not. *)

exception Cancelled
(** Raised by {!run}/{!resume} when the [?cancel] hook fires: at the next
    iteration boundary, or at the next pool chunk boundary inside
    simulation or candidate scoring, whichever comes first.  The loop state
    is abandoned exactly as an abrupt kill would leave it — the journal (if
    any) still holds the last accepted checkpoint, so a cancelled journaled
    run can be resumed or rolled back like a killed one. *)

type stop_reason =
  | Budget_exhausted  (** best candidate error exceeded the threshold *)
  | Stalled
      (** no productive candidate at the minimum simulation round, or the
          recovered-exception cap was hit *)
  | Max_iters
  | Emptied  (** the circuit shrank to constants *)
  | Timed_out  (** the [max_seconds] wall-clock budget ran out *)

type bound_family =
  | Hoeffding
      (** statistical upper bound at [Config.confidence], sound only for
          [0,1]-bounded mean metrics ({!Errest.Metrics.bounded_mean}) under
          Monte-Carlo uniform sampling *)
  | Exhaustive
      (** the evaluation covered the entire input space (enumerated support
          or exhaustive uniform evaluation): the value is exact *)
  | Max_miter
      (** exact worst-case error proven by the error-computation miter
          ({!Errest.Maxerr}): attained by a witness and proven unbeatable *)

type certificate = {
  upper : float;  (** certified upper bound on the true error *)
  family : bound_family;  (** which argument makes the bound sound *)
}

val family_to_string : bound_family -> string

type report = {
  input_ands : int;
  output_ands : int;
  applied : int;  (** number of accepted LACs *)
  final_est_error : float;  (** error on the flow's evaluation sample *)
  certified : certificate option;
      (** certified upper bound on the true error, tagged with the bound
          family that makes it sound.  [None] when no sound certificate
          exists: unbounded mean metrics ([Med], [Mse], [Mhd], [Mred])
          under Monte-Carlo sampling, or a max metric whose miter the
          bounded CEC portfolio could not close.  A max-metric report never
          carries a [Hoeffding] certificate — a sampled maximum bounds the
          truth from below, not above. *)
  final_rounds : int;  (** value of [N] at exit *)
  runtime_s : float;  (** CPU seconds, summed over all domains *)
  wall_s : float;  (** wall-clock seconds (with a pool the two diverge) *)
  stop_reason : stop_reason;
  guard_rejects : int;  (** transforms rolled back by the guard *)
  recovered_exns : int;  (** iterations abandoned after an exception *)
  quarantined : int;  (** targets barred for the rest of the run *)
  resumed : bool;  (** this report continues a journaled run *)
  pool : Parallel.Pool.stat array;
      (** per-worker execution counters of the run's pool (tasks, steals,
          busy/idle time); render with
          {!Errest.Observability.pp_pool_stats} *)
  scoring : Errest.Batch.stats;
      (** cumulative counters of the event-driven scoring kernel
          ({!Errest.Batch.stats}): candidates scored, difference-mask early
          exits, frontier nodes recomputed, changed POs/words re-measured.
          Per-process like [certify] — not journaled, so a resumed run
          reports the resumed portion only. *)
  resub : Resub_exact.stats option;
      (** cumulative counters of the exact-resubstitution pass, including
          its own scoring-kernel batch counters; [None] unless
          [Config.exact_resub].  Per-process like [scoring]. *)
  events : event list;  (** in application order, including pre-resume *)
  certify : certify option;
      (** verification verdicts; [None] unless [Config.certify_exact] *)
  policy : policy_report option;
      (** per-arm policy counters; [None] under the greedy policy *)
}

val run :
  ?journal:string ->
  ?cancel:(unit -> bool) ->
  ?pool:Parallel.Pool.t ->
  config:Config.t ->
  Aig.Graph.t ->
  Aig.Graph.t * report
(** Returns the approximate circuit (same PI/PO interface) and the run
    report.  The input graph is not modified.  [?journal] names a run
    directory to checkpoint into ({!Journal.create} — a fresh run, wiping
    any previous checkpoints there).  A worker pool of [config.jobs] lanes
    runs simulation, LAC generation and candidate scoring; every result is
    bit-identical to [jobs = 1].

    [?cancel] is a cooperative-cancellation hook, polled once per iteration
    and at every pool chunk boundary; when it returns [true] the run raises
    {!Cancelled} (see there for the state contract).  [?pool] runs the flow
    on an existing resident pool instead of creating one — [config.jobs] is
    then ignored and the pool is returned unchanged (its [should_stop] hook
    is restored on exit).  Cancellation and pool choice are execution
    policy: neither perturbs the result of a run that completes. *)

val resume :
  ?fault:Fault.plan ->
  ?jobs:int ->
  ?policy:Config.policy_hook ->
  ?cancel:(unit -> bool) ->
  ?pool:Parallel.Pool.t ->
  string ->
  Aig.Graph.t * report
(** Resume an interrupted journaled run from its directory: the config is
    read back from the manifest, the loop state and graph from the newest
    readable checkpoint (falling back per {!Journal.load}), and the run
    continues — journaling into the same directory — to the same final
    circuit as an uninterrupted run.  [?fault] installs a fault plan for the
    resumed portion (testing only; plans are never persisted).  [?jobs]
    overrides the manifest's pool size — the pool is execution policy, not
    run identity, so resuming at a different [jobs] still reproduces the
    uninterrupted run bit-for-bit.  [?cancel] and [?pool] behave exactly as
    in {!run}.  Raises [Failure] if the directory is not a usable
    journal. *)
