(** Local-approximate-change candidates (Algorithm 2).

    A LAC replaces target node [V] by a function of a feasible divisor set,
    derived from the approximate care set.  [gain] is the estimated AND-gate
    saving: the target's MFFC nodes that truly die (divisor cones inside the
    MFFC stay alive) minus the factored-form cost.  Candidates with negative
    estimates are dropped; the flow separately verifies real progress on the
    rebuilt graph, since structural hashing can shift the estimate in either
    direction. *)

type t = {
  target : int;
  divisors : int array;
  cover : Logic.Cover.t;
  expr : Logic.Factor.expr;
  gain : int;
}

val generate :
  ?obs:Logic.Bitvec.t array ->
  ?pool:Parallel.Pool.t ->
  Aig.Graph.t ->
  config:Config.t ->
  sigs:Logic.Bitvec.t array ->
  rounds:int ->
  t list
(** [sigs] are node signatures of the care-pattern simulation ([rounds]
    rounds, cf. Algorithm 2 line 1).  At most [config.lac_limit] candidates
    per node.  [obs] (per-node observability masks) enables the ODC-aware
    care sets of [Config.use_odc].  With [?pool], target nodes are processed
    concurrently (falling back to concurrent per-set care scans when the
    pool outnumbers the targets); the returned list — contents and order —
    is identical at any pool size. *)

val replacement : t -> Aig.Graph.replacement

val pp : Format.formatter -> t -> unit
