(** Simulation-guided exact Boolean resubstitution (Lee, Riener,
    Mishchenko — "Simulation-Guided Boolean Resubstitution",
    arXiv 2007.02579), validated by the CEC portfolio instead of SAT.

    The engine shares ALSRAC's whole substrate: divisor candidates come from
    the nearest-first, signature-filtered {!Divisor.collect}; don't-cares
    from the {!Care} tuple tables (an unseen divisor tuple is a free choice
    for the resubstitution function); the function itself from the same
    Espresso-ISOP + factoring pipeline as approximate LACs ({!Resub});
    candidate scoring runs through the event-driven {!Errest.Batch} kernel.
    What makes it EXACT is the commit protocol: a candidate is only applied
    if {!Verify.Cec} proves the rebuilt graph equivalent to the pre-sweep
    graph — [Undecided] is a rollback, never an accept — so don't-cares can
    be approximated from simulation without ever risking the function.

    Each pass sweeps the AND nodes in topological order.  Per target:
    0-resub (constant on every pattern), then k-resub for k ≤ 3 over the
    nearest divisors, choosing the candidate with the best net AND saving
    (MFFC nodes freed minus {!Logic.Factor.and2_cost}).  Passes repeat
    until a sweep accepts nothing (bounded by [max_passes]).

    Deterministic: the sweep is sequential; a pool only accelerates the
    bit-identical simulation and batch-scoring primitives, so results are
    byte-identical at any pool size. *)

type config = {
  rounds : int;  (** simulation rounds per sweep (exhaustive if it fits) *)
  check_rounds : int;
      (** independent re-simulation rounds gating each commit before CEC on
          non-exhaustive sweeps; [0] disables the filter *)
  seed : int;  (** fixes the pattern stream and the CEC seed *)
  max_divisors : int;  (** divisor collection cap per target *)
  pair_divisors : int;  (** nearest divisors considered for 2-resub *)
  triple_divisors : int;  (** nearest divisors considered for 3-resub *)
  derivations_per_target : int;  (** ISOP derivations per target *)
  max_passes : int;  (** sweep cap; passes stop early at a fixpoint *)
  cec_rounds : int;  (** refutation rounds of each certification call *)
  cec_effort : Verify.Cec.effort;
  undecided_patience : int;
      (** consecutive [Undecided] verdicts after which the sweep stops
          attempting commits — on graphs whose delta miters the portfolio
          cannot close (deep dividers, square roots) every attempt is a
          seconds-long guaranteed rollback.  Deterministic: the streak is a
          function of the graph and the seed.  Minimum 1. *)
}

val default : config

type stats = {
  passes : int;  (** sweeps run *)
  targets : int;  (** live AND nodes visited *)
  feasible : int;  (** conflict-free divisor sets found *)
  derived : int;  (** ISOP derivations performed *)
  accepted : int;  (** resubstitutions committed — all CEC-proven *)
  sim_refuted : int;
      (** candidates killed by the independent re-simulation filter — the
          cheap stage that keeps false candidates away from the portfolio *)
  cec_undecided : int;  (** candidates rolled back on an [Undecided] verdict *)
  cec_refuted : int;
      (** candidates the portfolio proved wrong — simulation don't-cares
          that were not don't-cares; caught before commit by design *)
  batch : Errest.Batch.stats;  (** scoring-kernel counters of the sweeps *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

val run :
  ?pool:Parallel.Pool.t ->
  ?config:config ->
  Aig.Graph.t ->
  Aig.Graph.t * stats
(** Run passes to a fixpoint (or [max_passes]).  The result is proven
    equivalent to the input at every commit point, never larger in AND
    count, and has the same PI/PO interface.  The input is not modified. *)

val pass : ?pool:Parallel.Pool.t -> ?config:config -> unit -> Aig.Graph.t -> Aig.Graph.t
(** [pass () ] is {!run} with the stats dropped — the shape
    {!Aig.Resyn.compress2}'s [?resub] hook expects. *)
