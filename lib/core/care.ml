module Bitvec = Logic.Bitvec

type entry = Unseen | Value of bool | Conflict

type t = { divisors : int array; table : entry array; care_count : int }

let scan ?mask ~sigs ~node ~divisors ~rounds () =
  let k = Array.length divisors in
  if k > Logic.Truth.max_vars then invalid_arg "Care.scan: too many divisors";
  (* A target among its own divisors would "resubstitute" a node by itself —
     a combinational loop once the replacement is rewired.  Enumeration
     ([Divisor]) never proposes it; this guard keeps direct callers honest. *)
  if Array.exists (fun d -> d = node) divisors then
    invalid_arg "Care.scan: target node cannot be its own divisor";
  let table = Array.make (1 lsl k) Unseen in
  let care_count = ref 0 in
  let div_words = Array.map (fun d -> Bitvec.unsafe_words sigs.(d)) divisors in
  let node_words = Bitvec.unsafe_words sigs.(node) in
  let wb = Bitvec.word_bits in
  let record tuple v =
    match table.(tuple) with
    | Unseen ->
        table.(tuple) <- Value v;
        incr care_count
    | Value v0 -> if v0 <> v then table.(tuple) <- Conflict
    | Conflict -> ()
  in
  let num_words = ((rounds - 1) / wb) + 1 in
  let full = Bitvec.word_mask in
  let mask_words = Option.map Bitvec.unsafe_words mask in
  let valid_of w base =
    let v = if rounds - base >= wb then full else (1 lsl (rounds - base)) - 1 in
    match mask_words with None -> v | Some mw -> v land mw.(w)
  in
  (* Word-parallel presence/conflict detection: for each divisor tuple,
     build the mask of rounds exhibiting it and compare the target bits
     under the mask — O(words) instead of O(rounds). *)
  let record_masked tuple mask nw =
    if mask <> 0 then begin
      let ones = mask land nw <> 0 and zeros = mask land lnot nw <> 0 in
      if ones && zeros then begin
        (match table.(tuple) with Unseen -> incr care_count | Value _ | Conflict -> ());
        table.(tuple) <- Conflict
      end
      else record tuple ones
    end
  in
  (match k with
  | 1 ->
      let d0 = div_words.(0) in
      for w = 0 to num_words - 1 do
        let base = w * wb in
        let valid = valid_of w base in
        let dw = d0.(w) and nw = node_words.(w) in
        record_masked 0 (lnot dw land valid) nw;
        record_masked 1 (dw land valid) nw
      done
  | 2 ->
      let d0 = div_words.(0) and d1 = div_words.(1) in
      for w = 0 to num_words - 1 do
        let base = w * wb in
        let valid = valid_of w base in
        let dw0 = d0.(w) and dw1 = d1.(w) and nw = node_words.(w) in
        record_masked 0 (lnot dw0 land lnot dw1 land valid) nw;
        record_masked 1 (dw0 land lnot dw1 land valid) nw;
        record_masked 2 (lnot dw0 land dw1 land valid) nw;
        record_masked 3 (dw0 land dw1 land valid) nw
      done
  | _ ->
      for w = 0 to num_words - 1 do
        let base = w * wb in
        let limit = min wb (rounds - base) in
        let valid = valid_of w base in
        let nw = node_words.(w) in
        for off = 0 to limit - 1 do
          if (valid lsr off) land 1 = 1 then begin
            let tuple = ref 0 in
            for i = 0 to k - 1 do
              tuple := !tuple lor (((div_words.(i).(w) lsr off) land 1) lsl i)
            done;
            record !tuple ((nw lsr off) land 1 = 1)
          end
        done
      done);
  { divisors; table; care_count = !care_count }

let care_tuples t =
  let acc = ref [] in
  for i = Array.length t.table - 1 downto 0 do
    match t.table.(i) with Unseen -> () | Value _ | Conflict -> acc := i :: !acc
  done;
  !acc
