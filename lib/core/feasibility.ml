let ok (care : Care.t) =
  Array.for_all (function Care.Conflict -> false | Care.Unseen | Care.Value _ -> true)
    care.Care.table

let check ~sigs ~node ~divisors ~rounds =
  ok (Care.scan ~sigs ~node ~divisors ~rounds ())

let filter ?pool ?mask ~sigs ~node ~sets ~rounds () =
  let n = Array.length sets in
  let scanned =
    (* Per-set scans are pure functions of the (read-only) signatures, so
       fanning them across the pool preserves the result exactly; the array
       keeps them in submission order. *)
    Parallel.Chunk.map ?pool ~n (fun i ->
        let divisors = sets.(i) in
        let care = Care.scan ?mask ~sigs ~node ~divisors ~rounds () in
        if ok care then Some (divisors, care) else None)
  in
  Array.to_list scanned |> List.filter_map Fun.id
