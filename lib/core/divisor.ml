module Graph = Aig.Graph
module Bitvec = Logic.Bitvec

let fanin_nodes g v =
  let n0 = Graph.node_of (Graph.fanin0 g v) in
  let n1 = Graph.node_of (Graph.fanin1 g v) in
  if n0 = n1 then [ n0 ] else [ n0; n1 ]

let normalize set =
  let arr = Array.of_list set in
  Array.sort compare arr;
  arr

(* ---------- Exact int-keyed set dedup ----------

   Divisor sets are short sorted int arrays.  They are deduplicated through
   an int-keyed hash table (FNV over the elements) whose buckets hold the
   sets themselves for exact comparison — the same collision discipline as
   [Sim.Fraig]'s signature classes, with none of the polymorphic-[Hashtbl]
   hashing of arrays the old implementation leaned on. *)

let set_hash arr =
  let h = ref (Array.length arr) in
  Array.iter (fun i -> h := ((!h * 0x01000193) lxor (i + 1)) land max_int) arr;
  !h

let same_set a b =
  Array.length a = Array.length b
  &&
  let eq = ref true in
  Array.iteri (fun i x -> if x <> b.(i) then eq := false) a;
  !eq

let dedup_create () : (int, int array list ref) Hashtbl.t = Hashtbl.create 64

let dedup_add seen arr =
  let h = set_hash arr in
  match Hashtbl.find_opt seen h with
  | None ->
      Hashtbl.add seen h (ref [ arr ]);
      true
  | Some bucket ->
      if List.exists (same_set arr) !bucket then false
      else begin
        bucket := arr :: !bucket;
        true
      end

(* ---------- Nearest-first TFI enumeration ----------

   [Cone.tfi_nodes] lists the cone in ASCENDING level order, so truncating
   it at [max_tfi] kept the PIs and dropped exactly the nodes structurally
   closest to the target — the divisors most likely to admit a small
   resubstitution function.  Enumerate nearest-first instead: descending
   level, ascending id within a level, straight off the cached SoA level
   view, and cap AFTER ordering so the near cone always survives. *)

let tfi_candidates g ~max_tfi v =
  if not (Graph.is_and g v) then []
  else begin
    let mask = Aig.Cone.tfi_mask g v in
    let lev = Graph.levels g in
    let buckets = Array.make (lev.(v) + 1) [] in
    for i = Graph.num_nodes g - 1 downto 1 do
      if mask.(i) && i <> v then buckets.(lev.(i)) <- i :: buckets.(lev.(i))
    done;
    let out = ref [] and count = ref 0 in
    (try
       for l = Array.length buckets - 1 downto 0 do
         List.iter
           (fun i ->
             if !count >= max_tfi then raise Exit;
             out := i :: !out;
             incr count)
           buckets.(l)
       done
     with Exit -> ());
    List.rev !out
  end

let iter_sets g ~max_tfi v f =
  if not (Graph.is_and g v) then ()
  else begin
    let fis = fanin_nodes g v in
    let tfi = tfi_candidates g ~max_tfi v in
    let seen = dedup_create () in
    let exception Stop in
    let emit set =
      let arr = normalize set in
      if dedup_add seen arr then
        match f arr with `Stop -> raise Stop | `Continue -> ()
    in
    try
      List.iter
        (fun n ->
          let a = List.filter (fun x -> x <> n) fis in
          emit a;
          List.iter (fun u -> if u <> v && not (List.mem u a) then emit (u :: a)) tfi)
        fis
    with Stop -> ()
  end

(* AND nodes of the target's MFFC that actually die when the target is
   replaced by a function of [divisors]: a divisor inside the MFFC keeps
   itself and its in-MFFC transitive fanin alive.  [in_mffc] is the node's
   membership table, built once per target and shared across its (many)
   divisor sets.  Shared by the LAC generator and the exact-resub engine. *)
let true_savings g ~in_mffc ~mffc_size divisors =
  (* Fast path: divisors outside the MFFC keep nothing alive. *)
  if Array.for_all (fun d -> not (Hashtbl.mem in_mffc d)) divisors then mffc_size
  else begin
    let kept = Hashtbl.create 8 in
    let rec keep id =
      if Hashtbl.mem in_mffc id && not (Hashtbl.mem kept id) then begin
        Hashtbl.replace kept id ();
        keep (Graph.node_of (Graph.fanin0 g id));
        keep (Graph.node_of (Graph.fanin1 g id))
      end
    in
    Array.iter keep divisors;
    mffc_size - Hashtbl.length kept
  end

let select g ~max_tfi v =
  let acc = ref [] in
  iter_sets g ~max_tfi v (fun set ->
      acc := set :: !acc;
      `Continue);
  List.rev !acc

(* ---------- Graph-wide signature-filtered collection ----------

   Divisor candidates for exact resubstitution: every PI or AND node that is
   not in the target's TFO cone (combinational-loop hazard) and sits at a
   level not above the target's, nearest-first.  With signatures, nodes that
   are constant on the sample or duplicate an already-kept divisor's
   signature (in either phase) are dropped — they cannot refine the care
   table, only blow up its size.  Hashing is over the raw signature words
   with phase normalization, collisions resolved by exact comparison, as in
   [Sim.Fraig]. *)

let collect g ?sigs ~tfo ~max v =
  let lev = Graph.levels g in
  let vlev = lev.(v) in
  let buckets = Array.make (vlev + 1) [] in
  for i = Graph.num_nodes g - 1 downto 1 do
    if (not tfo.(i)) && lev.(i) <= vlev then
      buckets.(lev.(i)) <- i :: buckets.(lev.(i))
  done;
  let keep =
    match sigs with
    | None -> fun _ -> true
    | Some sigs ->
        let rounds = if Array.length sigs = 0 then 0 else Bitvec.length sigs.(0) in
        let tail =
          let rem = rounds mod Bitvec.word_bits in
          if rem = 0 then Bitvec.word_mask else (1 lsl rem) - 1
        in
        let canon_hash s invert =
          let words = Bitvec.unsafe_words s in
          let nw = Array.length words in
          let inv = if invert then Bitvec.word_mask else 0 in
          let h = ref 0 in
          for i = 0 to nw - 1 do
            let w = words.(i) lxor inv in
            let w = if i = nw - 1 then w land tail else w in
            h := (!h * 0x9E3779B1) lxor w
          done;
          let h = !h lxor (!h lsr 16) in
          h * 0x85EBCA77 land max_int
        in
        let canon_equal a inva b invb =
          let wa = Bitvec.unsafe_words a and wb = Bitvec.unsafe_words b in
          let nw = Array.length wa in
          let eq = ref true in
          let i = ref 0 in
          if inva = invb then
            while !eq && !i < nw do
              if wa.(!i) <> wb.(!i) then eq := false;
              incr i
            done
          else
            while !eq && !i < nw do
              let m = if !i = nw - 1 then tail else Bitvec.word_mask in
              if wa.(!i) lxor wb.(!i) <> m then eq := false;
              incr i
            done;
          !eq
        in
        let classes : (int, (Bitvec.t * bool) list ref) Hashtbl.t =
          Hashtbl.create 128
        in
        fun d ->
          let s = sigs.(d) in
          if Bitvec.is_zero s || Bitvec.is_ones s then false
          else begin
            let phase = rounds > 0 && Bitvec.get s 0 in
            let h = canon_hash s phase in
            match Hashtbl.find_opt classes h with
            | None ->
                Hashtbl.add classes h (ref [ (s, phase) ]);
                true
            | Some bucket ->
                if
                  List.exists (fun (r, rp) -> canon_equal s phase r rp) !bucket
                then false
                else begin
                  bucket := (s, phase) :: !bucket;
                  true
                end
          end
  in
  let out = ref [] and count = ref 0 in
  (try
     for l = Array.length buckets - 1 downto 0 do
       List.iter
         (fun i ->
           if !count >= max then raise Exit;
           if keep i then begin
             out := i :: !out;
             incr count
           end)
         buckets.(l)
     done
   with Exit -> ());
  Array.of_list (List.rev !out)
