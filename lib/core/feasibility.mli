(** Divisor feasibility (Theorem 1 restricted to simulated patterns,
    Section III-B2).

    A divisor set can form an approximate resubstitution function when no two
    simulated rounds produce the same divisor tuple with different target
    values — i.e. the care scan contains no {!Care.Conflict} entry. *)

val ok : Care.t -> bool

val check :
  sigs:Logic.Bitvec.t array ->
  node:int ->
  divisors:int array ->
  rounds:int ->
  bool
(** Convenience: scan then test. *)

val filter :
  ?pool:Parallel.Pool.t ->
  ?mask:Logic.Bitvec.t ->
  sigs:Logic.Bitvec.t array ->
  node:int ->
  sets:int array array ->
  rounds:int ->
  unit ->
  (int array * Care.t) list
(** Care-scan every divisor set of one target node and keep the feasible
    ones together with their scans, preserving the input order.  With
    [?pool] the (independent, read-only) scans run concurrently; the result
    is identical at any pool size.  [?mask] is the node's ODC mask, as in
    {!Care.scan}. *)
