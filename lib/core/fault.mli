(** Deterministic fault injection for resilience testing.

    A {!plan} (carried in {!Config.t}) names exact flow iterations at which
    the runtime deliberately misbehaves, so tests can prove that each
    recovery path — guard rollback, LAC quarantine, exception containment,
    journal fallback — actually fires.  With the default empty plan every
    hook below is a no-op and costs one list scan per iteration. *)

exception Injected of string
(** Raised by the flow at a [Raise_at] site; also usable by tests. *)

exception Killed
(** Raised at a [Kill_after] site.  The flow deliberately does NOT recover
    from this one: it simulates an abrupt process death for kill-and-resume
    tests, escaping past all guards (the journal on disk stays valid). *)

type kind =
  | Flip_signatures of { iteration : int; bit : int }
      (** Flip bit [bit] of every node's evaluation signature at the given
          iteration — a soft-error model that silently skews the error
          predictions of all LAC candidates scored that iteration. *)
  | Corrupt_lac of { iteration : int }
      (** Replace the chosen LAC's resubstitution function with a constant
          before it is applied, modeling a buggy ISOP/factoring step: the
          prediction was made for the true function, the graph gets the
          wrong one. *)
  | Raise_at of { iteration : int }
      (** Raise {!Injected} mid-iteration. *)
  | Kill_after of { applied : int }
      (** Raise {!Killed} at the top of the first iteration with at least
          [applied] accepted LACs. *)
  | Io_short_read of { nth : int }
      (** The [nth] framed socket receive on a daemon connection stops
          mid-payload, as if the peer stalled and the read timed out — the
          decoder must treat the partial frame as malformed, not block. *)
  | Io_eof_mid_frame of { nth : int }
      (** The [nth] framed socket send truncates after the header and drops
          the connection, modeling a peer dying mid-frame. *)
  | Io_delay_write of { nth : int; ms : int }
      (** The [nth] framed socket send sleeps [ms] milliseconds before
          writing, modeling a slow client that must not wedge the daemon. *)

type plan = kind list

val none : plan

val flip_signatures : plan -> iteration:int -> int option
(** The bit to flip this iteration, if any. *)

val corrupt_lac : plan -> iteration:int -> bool

val should_raise : plan -> iteration:int -> bool

val should_kill : plan -> applied:int -> bool

(** {1 Socket / IO fault hooks}

    Consulted by the [lib/serve] transport with a per-connection operation
    counter; [nth] counts framed receives (for reads) or sends (for writes)
    on one connection, starting at 1. *)

val io_short_read : plan -> nth:int -> bool
val io_eof_mid_frame : plan -> nth:int -> bool

val io_delay_write : plan -> nth:int -> int option
(** Milliseconds to sleep before the [nth] send, if any. *)

(** {1 Plan spec strings}

    The [--fault-spec] grammar: comma-separated items, each
    [name\@arg] or [name\@arg:arg] —
    [flip-sigs\@ITER:BIT], [corrupt-lac\@ITER], [raise\@ITER],
    [kill\@APPLIED], [short-read\@NTH], [eof-mid-frame\@NTH],
    [delay-write\@NTH:MS].  The empty string is {!none}. *)

val plan_of_string : string -> plan
(** Raises [Failure] on an unparseable spec. *)

val plan_to_string : plan -> string
(** Inverse of {!plan_of_string}. *)

(** {1 File corruption helpers}

    For journal-recovery tests: fabricate the torn or bit-rotted files that
    the atomic writer itself can never produce. *)

val truncate_file : string -> keep:int -> unit
(** Truncate a file in place to its first [keep] bytes (clamped). *)

val corrupt_byte : string -> pos:int -> unit
(** XOR one byte of the file at offset [pos mod size].  Fails on an empty
    file. *)
