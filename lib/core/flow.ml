module Graph = Aig.Graph
module Bitvec = Logic.Bitvec

type event = Journal.event = {
  iteration : int;
  target : int;
  est_error : float;
  ands_after : int;
  rounds : int;
}

type stop_reason = Budget_exhausted | Stalled | Max_iters | Emptied | Timed_out

exception Cancelled

type certify = {
  exact_checks : int;
  exact_confirmed : int;
  exact_undecided : int;
  exact_refuted : int;
  lac_rechecks : int;
  lac_recheck_failures : int;
  lac_max_deviation : float;
}

type arm_stat = {
  arm : int;
  first_choice : int;
  accepted : int;
  reward_sum : float;
}

type policy_report = {
  policy_name : string;
  arm_stats : arm_stat array;
}

type bound_family = Hoeffding | Exhaustive | Max_miter

type certificate = { upper : float; family : bound_family }

let family_to_string = function
  | Hoeffding -> "hoeffding"
  | Exhaustive -> "exhaustive"
  | Max_miter -> "max-miter"

type report = {
  input_ands : int;
  output_ands : int;
  applied : int;
  final_est_error : float;
  certified : certificate option;
  final_rounds : int;
  runtime_s : float;
  wall_s : float;
  stop_reason : stop_reason;
  guard_rejects : int;
  recovered_exns : int;
  quarantined : int;
  resumed : bool;
  pool : Parallel.Pool.stat array;
  scoring : Errest.Batch.stats;
  resub : Resub_exact.stats option;
  events : event list;
  certify : certify option;
  policy : policy_report option;
}

let log_src = Logs.Src.create "alsrac.flow" ~doc:"ALSRAC flow progress"

module Log = (val Logs.src_log log_src : Logs.LOG)

let optimize ?resub (config : Config.t) g =
  match config.resyn with
  | Config.No_resyn -> Graph.compact g
  | Config.Light -> Aig.Resyn.light g
  | Config.Compress2 -> Aig.Resyn.compress2 ?resub g

(* Pattern generation honouring the configured input distribution: under an
   enumerated distribution, care patterns are support rows sampled by
   weight; under the uniform one, [input_probs] may bias the care set. *)
let gen_patterns rng (config : Config.t) ~npis ~len =
  match config.distr with
  | Errest.Distr.Enum _ as d -> Errest.Distr.sample d rng ~npis ~len
  | Errest.Distr.Unif -> (
      match config.input_probs with
      | None -> Sim.Patterns.random rng ~npis ~len
      | Some probs -> Sim.Patterns.weighted rng ~probs ~len)

(* Uniform-distribution evaluation patterns: exhaustive when the input space
   is small enough, Monte-Carlo otherwise.  (An enumerated distribution is
   evaluated on its support instead — see [eval_set].) *)
let eval_patterns rng (config : Config.t) npis =
  if
    config.input_probs = None
    && npis <= Sim.Patterns.exhaustive_limit
    && 1 lsl npis <= config.eval_rounds
  then Sim.Patterns.exhaustive ~npis
  else gen_patterns rng config ~npis ~len:config.eval_rounds

(* The evaluation sample and its per-round weights.  Enumerated
   distributions are evaluated EXACTLY: one round per support row, terms
   weighted by the row's probability — no Monte-Carlo error at all. *)
let eval_set rng (config : Config.t) npis =
  match config.distr with
  | Errest.Distr.Unif -> (eval_patterns rng config npis, None)
  | Errest.Distr.Enum _ as d ->
      (Errest.Distr.signatures d, Errest.Distr.round_weights d)

(* Quarantine key of a node: a hash of its evaluation signature.  The eval
   pattern set is fixed for the whole run, so the key survives the node-id
   renumbering of rebuild/compact — a misbehaving target stays quarantined
   even after the graph around it changes. *)
let sig_hash v =
  Array.fold_left
    (fun h w -> ((h * 1000003) lxor w) land max_int)
    (Bitvec.length v) (Bitvec.unsafe_words v)

(* Exceptions the per-iteration recovery wrapper must never swallow.
   Cancellation is in this set: a caller that asked the flow to stop must
   get control back, not watch the loop retry with fresh patterns. *)
let fatal = function
  | Fault.Killed | Cancelled | Parallel.Pool.Cancelled | Stack_overflow
  | Out_of_memory | Sys.Break ->
      true
  | _ -> false

let max_recovered_exns = 50

let run_loop ~(config : Config.t) ~pool ~cancel ~journal ~original
    ~(init : Journal.state option) g_start =
  let t_start = Sys.time () in
  let w_start = Parallel.Clock.now_s () in
  let npis = Graph.num_pis original in
  (match Errest.Distr.validate_npis config.distr ~npis with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Flow: " ^ msg));
  let rng0 = Logic.Rng.create config.seed in
  let eval_pats, eval_weights = eval_set (Logic.Rng.split rng0) config npis in
  let golden = Sim.Engine.simulate_pos ~pool original eval_pats in
  (* On resume the journal's RNG state supersedes the fresh stream: pattern
     generation continues exactly where the interrupted run left off. *)
  let rng =
    match init with None -> rng0 | Some s -> Logic.Rng.of_state s.Journal.rng_state
  in
  let g = ref g_start in
  (* Candidate-rebuild arena: the loop below materializes one rebuilt graph
     per tried candidate and throws most of them away at the cheap size
     check, so the mapping scratch and the rejected graph's arrays are
     recycled instead of re-allocated (steady state: zero allocation per
     rejected candidate beyond what the strash folding itself demands). *)
  let rb = Graph.rebuilder () in
  let depth_limit =
    if config.max_depth_growth = infinity then max_int
    else
      int_of_float
        (ceil (config.max_depth_growth *. float_of_int (max 1 (Aig.Topo.depth original))))
  in
  let field f default = match init with None -> default | Some s -> f s in
  let rounds = ref (field (fun s -> s.Journal.rounds) config.sim_rounds) in
  let patience = ref (field (fun s -> s.Journal.patience) 0) in
  let shrinks_at_floor = ref (field (fun s -> s.Journal.shrinks_at_floor) 0) in
  let applied = ref (field (fun s -> s.Journal.applied) 0) in
  let iteration = ref (field (fun s -> s.Journal.iteration) 0) in
  let events = ref (field (fun s -> s.Journal.events) []) in
  let last_error = ref (field (fun s -> s.Journal.last_error) 0.0) in
  let guard_rejects = ref (field (fun s -> s.Journal.guard_rejects) 0) in
  let recovered_exns = ref (field (fun s -> s.Journal.recovered_exns) 0) in
  let accepts_since_full = ref (field (fun s -> s.Journal.accepts_since_full) 0) in
  let quarantine : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  field (fun s -> List.iter (fun h -> Hashtbl.replace quarantine h ()) s.Journal.quarantined) ();
  (* Certification counters are per-process observations (like fault plans,
     they are not journaled): a resumed run's verdicts cover the resumed
     portion only. *)
  (* Scoring-kernel counters (same per-process policy as the certification
     counters below: observational, not journaled). *)
  let scoring = ref Errest.Batch.zero_stats in
  (* Exact-resubstitution pass ([Config.exact_resub]): threaded into every
     [Compress2] invocation as [Aig.Resyn]'s fourth pass.  Exact and
     self-certifying (every commit is CEC-proven inside [Resub_exact]), so
     the guard's "error is bit-for-bit unchanged" contract still holds.
     Deterministic in the config seed alone — a resumed run re-derives the
     same passes, keeping resume byte-identity.  Counters are per-process,
     like [scoring]. *)
  let resub_stats = ref Resub_exact.zero_stats in
  let resub =
    if config.exact_resub then
      Some
        (fun g ->
          let g', st =
            Resub_exact.run ~pool
              ~config:{ Resub_exact.default with Resub_exact.seed = config.seed }
              g
          in
          resub_stats := Resub_exact.add_stats !resub_stats st;
          g')
    else None
  in
  (* Per-arm policy counters (observational).  The hook's own reward state,
     by contrast, IS journaled — restored here so a resumed run replays the
     uninterrupted run's arm choices exactly. *)
  let pol_first, pol_accepted, pol_reward =
    match config.policy with
    | Config.Hook h ->
        (Array.make h.Config.arms 0, Array.make h.Config.arms 0,
         Array.make h.Config.arms 0.0)
    | Config.Greedy -> ([||], [||], [||])
  in
  (match (config.policy, init) with
  | Config.Hook h, Some s when s.Journal.policy_state <> "" ->
      h.Config.restore_state s.Journal.policy_state
  | _ -> ());
  let cert_exact_checks = ref 0
  and cert_exact_confirmed = ref 0
  and cert_exact_undecided = ref 0
  and cert_exact_refuted = ref 0
  and cert_lac_rechecks = ref 0
  and cert_lac_failures = ref 0
  and cert_lac_maxdev = ref 0.0 in
  (* Miter-check one exact-transform application.  Bounded effort: verdicts
     the portfolio cannot decide are counted, not guessed.  The check is
     sequential and draws no randomness from the run's stream, so it cannot
     perturb the flow's results at any [jobs] setting. *)
  let certify_exact_step what before after =
    if config.certify_exact then begin
      incr cert_exact_checks;
      match
        Verify.Cec.run ~seed:(config.seed + 0x5EED) ~rounds:512
          ~effort:Verify.Cec.Fast before after
      with
      | Verify.Cec.Equivalent -> incr cert_exact_confirmed
      | Verify.Cec.Undecided msg ->
          incr cert_exact_undecided;
          Log.debug (fun m -> m "certify: %s left undecided (%s)" what msg)
      | Verify.Cec.Inequivalent cex ->
          incr cert_exact_refuted;
          Log.err (fun m ->
              m "certify: exact transform %s is NOT function-preserving (PO %d)" what
                cex.Verify.Cec.po)
    end
  in
  (match init with
  | None ->
      let optimized = optimize ?resub config g_start in
      certify_exact_step "initial resyn" g_start optimized;
      g := optimized
  | Some _ -> ());
  let finished = ref false in
  let stop_reason = ref Max_iters in
  let snapshot () =
    {
      Journal.rng_state = Logic.Rng.state rng;
      rounds = !rounds;
      patience = !patience;
      shrinks_at_floor = !shrinks_at_floor;
      applied = !applied;
      iteration = !iteration;
      accepts_since_full = !accepts_since_full;
      last_error = !last_error;
      guard_rejects = !guard_rejects;
      recovered_exns = !recovered_exns;
      quarantined =
        List.sort compare (Hashtbl.fold (fun h () acc -> h :: acc) quarantine []);
      policy_state =
        (match config.policy with
        | Config.Hook h -> h.Config.policy_state ()
        | Config.Greedy -> "");
      events = !events;
    }
  in
  let measure_error g' =
    Errest.Metrics.measure ?weights:eval_weights config.metric ~golden
      ~approx:(Sim.Engine.simulate_pos ~pool g' eval_pats)
  in
  (* The guard: a candidate graph is kept only if it passes the structural
     invariants AND a signature-consistency probe — every transform between
     prediction and commit is exact, so the re-measured error must agree
     with the predicted one (within float-summation noise).  Returns the
     violation, if any. *)
  let guard_violation g' ~predicted =
    if not config.guard then None
    else if Graph.num_pis g' <> npis || Graph.num_pos g' <> Graph.num_pos original then
      Some "PI/PO interface changed"
    else
      match Aig.Check.check g' with
      | Error msg -> Some msg
      | Ok () ->
          let measured = measure_error g' in
          if Float.abs (measured -. predicted) > config.guard_tol then
            Some
              (Printf.sprintf "signature probe: measured %.9g vs predicted %.9g"
                 measured predicted)
          else None
  in
  (* Under Compress2, the full pipeline runs every tenth accepted LAC and at
     the end; the cheap sweep+balance runs in between.  This keeps the large
     arithmetic circuits tractable without giving up the final quality. *)
  let optimize_step replaced =
    let optimized =
      match config.resyn with
      | Config.No_resyn -> Graph.compact replaced
      | Config.Light -> Aig.Resyn.light replaced
      | Config.Compress2 ->
          incr accepts_since_full;
          if !accepts_since_full >= 10 then begin
            accepts_since_full := 0;
            Aig.Resyn.compress2 ?resub replaced
          end
          else Aig.Resyn.light replaced
    in
    certify_exact_step "inter-iteration resyn" replaced optimized;
    optimized
  in
  let shrink_rounds () =
    incr patience;
    if !patience >= config.patience then begin
      patience := 0;
      if !rounds > config.min_rounds then
        rounds := max config.min_rounds (int_of_float (float_of_int !rounds *. config.scale))
      else begin
        incr shrinks_at_floor;
        if !shrinks_at_floor > 3 then begin
          stop_reason := Stalled;
          finished := true
        end
      end
    end
  in
  let iteration_body () =
    let care_pats = gen_patterns rng config ~npis ~len:!rounds in
    let care_sigs = Sim.Engine.simulate ~pool !g care_pats in
    if Fault.should_raise config.fault ~iteration:!iteration then
      raise (Fault.Injected (Printf.sprintf "injected exception at iteration %d" !iteration));
    let obs =
      if config.use_odc then Some (Errest.Observability.masks !g ~sigs:care_sigs)
      else None
    in
    let lacs = Lac.generate ?obs ~pool !g ~config ~sigs:care_sigs ~rounds:!rounds in
    if lacs = [] then
      (* Algorithm 3 line 10: only after [t] consecutive empty iterations is
         the care set shrunk; fresh patterns alone may unblock us. *)
      shrink_rounds ()
    else begin
      let base_sigs = Sim.Engine.simulate ~pool !g eval_pats in
      (match Fault.flip_signatures config.fault ~iteration:!iteration with
      | Some bit ->
          (* Soft-error model: skew every node's evaluation signature, so the
             error predictions below no longer describe the real graph. *)
          Array.iter
            (fun s ->
              let len = Bitvec.length s in
              if len > 0 then begin
                let b = bit mod len in
                Bitvec.set s b (not (Bitvec.get s b))
              end)
            base_sigs
      | None -> ());
      (* Quarantined targets are dead to the run: a LAC on them already broke
         the guard once. *)
      let lacs =
        List.filter
          (fun (lac : Lac.t) -> not (Hashtbl.mem quarantine (sig_hash base_sigs.(lac.Lac.target))))
          lacs
      in
      let batch =
        Errest.Batch.create ?weights:eval_weights !g ~metric:config.metric ~golden
          ~base:base_sigs
      in
      (* Candidate scoring is the hottest loop of a flow iteration: fan it
         across the pool.  [candidate_errors] is bit-identical to the
         sequential scoring at any pool size, so the ranking below — and
         with it the whole run — is too. *)
      let lac_arr = Array.of_list lacs in
      let specs =
        Array.map
          (fun (lac : Lac.t) ->
            let pos_sigs = Array.map (fun d -> base_sigs.(d)) lac.Lac.divisors in
            (lac.Lac.target, Logic.Cover.eval_sigs lac.Lac.cover ~pos_sigs))
          lac_arr
      in
      let errs = Errest.Batch.candidate_errors ~pool batch specs in
      scoring := Errest.Batch.add_stats !scoring (Errest.Batch.stats batch);
      let scored =
        Array.to_list (Array.mapi (fun i lac -> (errs.(i), lac)) lac_arr)
      in
      (* Best LAC = smallest induced error, ties broken by estimated gain
         (Algorithm 3 line 6).  The estimate can still be optimistic when
         the factored form re-shares with live logic, so walk the ranking
         and accept the first candidate that actually shrinks the graph. *)
      let ranked =
        List.sort
          (fun (e1, (l1 : Lac.t)) (e2, (l2 : Lac.t)) ->
            let c = compare e1 e2 in
            if c <> 0 then c else compare l2.Lac.gain l1.Lac.gain)
          scored
      in
      (* Candidate-selection policy (DESIGN.md section 12).  Greedy is the
         paper's order: the ranked list as-is, so the code path below is
         bit-identical to the historical flow.  A policy hook re-prioritizes
         the within-budget candidates by arm — (transform family, node
         region) buckets — in the hook's chosen arm order, preserving the
         greedy order inside each arm.  The budget-exhaustion decision
         (Algorithm 3 line 7) always looks at the globally smallest error,
         so a policy can never terminate a run the greedy order would have
         continued. *)
      let budget = config.threshold *. config.margin in
      let ands_before = Graph.num_ands !g in
      let accepted_arm = ref (-1) in
      let first_arm = ref (-1) in
      let ordered =
        match config.policy with
        | Config.Greedy -> List.map (fun (e, l) -> (e, l, -1)) ranked
        | Config.Hook h ->
            let min_err = match ranked with (e, _) :: _ -> e | [] -> infinity in
            if min_err > budget then
              (* Leave one over-budget candidate at the head: [try_apply]
                 turns it into the same [`Over_budget] verdict greedy
                 reaches. *)
              List.map (fun (e, l) -> (e, l, -1)) ranked
            else begin
              let levels = Aig.Topo.levels !g in
              let gdepth = float_of_int (max 1 (Aig.Topo.depth !g)) in
              let with_arms =
                List.filter_map
                  (fun (e, (lac : Lac.t)) ->
                    if e > budget then None
                    else
                      let depth_frac =
                        float_of_int levels.(lac.Lac.target) /. gdepth
                      in
                      let a =
                        h.Config.classify ~depth_frac
                          ~ndivisors:(Array.length lac.Lac.divisors)
                      in
                      Some (e, lac, if a >= 0 && a < h.Config.arms then a else 0))
                  ranked
              in
              let rank = Array.make h.Config.arms max_int in
              Array.iteri
                (fun i a -> if a >= 0 && a < h.Config.arms && rank.(a) = max_int then rank.(a) <- i)
                (h.Config.choose ());
              let ordered =
                List.stable_sort
                  (fun (_, _, a1) (_, _, a2) -> compare rank.(a1) rank.(a2))
                  with_arms
              in
              (match ordered with
              | (_, _, a) :: _ ->
                  first_arm := a;
                  pol_first.(a) <- pol_first.(a) + 1
              | [] -> ());
              ordered
            end
      in
      let corrupt_pending = ref (Fault.corrupt_lac config.fault ~iteration:!iteration) in
      let rec try_apply ~skipped = function
        | [] -> `No_progress
        | (err, _, _) :: _ when err > budget ->
            (* Smallest remaining error exceeds the budget.  If that holds
               for the very best candidate, terminate (Algorithm 3 line 7);
               if we only got here by skipping no-op candidates, let fresh
               patterns try again first. *)
            if skipped then `No_progress else `Over_budget
        | (err, (lac : Lac.t), arm) :: rest ->
            let replacement =
              if !corrupt_pending then begin
                (* Injected ISOP corruption: commit a constant in place of
                   the derived function; the prediction above still
                   describes the true one, so the guard must trip. *)
                corrupt_pending := false;
                let s = base_sigs.(lac.Lac.target) in
                if 2 * Bitvec.popcount s > Bitvec.length s then Graph.Replace_lit Graph.const0
                else Graph.Replace_lit Graph.const1
              end
              else Lac.replacement lac
            in
            let replaced =
              Graph.rebuild_with rb
                ~replace:(fun id -> if id = lac.Lac.target then Some replacement else None)
                !g
            in
            (* Cheap progress check on the raw rebuild; the (expensive)
               re-optimization runs only on accepted candidates and can only
               shrink further. *)
            if
              Graph.num_ands replaced < Graph.num_ands !g
              && Aig.Topo.depth replaced <= depth_limit
            then begin
              let optimized = optimize_step replaced in
              (* [optimize_step] copies into a fresh graph, so the raw
                 rebuild is dead either way from here on. *)
              Graph.recycle rb replaced;
              (* The optimizer itself may deepen (refactor trades depth for
                 area); guard the graph we would actually keep. *)
              if Aig.Topo.depth optimized > depth_limit then try_apply ~skipped:true rest
              else
                match guard_violation optimized ~predicted:err with
                | Some violation ->
                    (* Roll back (the candidate graph is simply dropped) and
                       quarantine the target for the rest of the run. *)
                    incr guard_rejects;
                    Hashtbl.replace quarantine (sig_hash base_sigs.(lac.Lac.target)) ();
                    Log.warn (fun m ->
                        m "iter %d: guard rejected LAC on node %d (%s); rolled back"
                          !iteration lac.Lac.target violation);
                    try_apply ~skipped:true rest
                | None ->
                    g := optimized;
                    incr applied;
                    accepted_arm := arm;
                    last_error := err;
                    (* Independent cross-check of the accepted LAC: its
                       predicted error must re-measure consistently on a
                       pattern set the flow never saw.  The recheck RNG is
                       derived from (seed, iteration), never from the run's
                       stream, so journaled resumes are unaffected. *)
                    if config.certify_exact && npis > 0 then begin
                      incr cert_lac_rechecks;
                      let recheck_rng =
                        Logic.Rng.create ((config.seed * 1_000_003) + !iteration)
                      in
                      (* Under an enumerated distribution the recheck is the
                         exact support measurement itself — any deviation
                         beyond float-summation noise is a failure. *)
                      let pats, wts =
                        match config.distr with
                        | Errest.Distr.Enum _ as d ->
                            (Errest.Distr.signatures d, Errest.Distr.round_weights d)
                        | Errest.Distr.Unif ->
                            ( gen_patterns recheck_rng config ~npis
                                ~len:(max 64 config.eval_rounds),
                              None )
                      in
                      let e2 =
                        Errest.Metrics.compare_graphs ?weights:wts config.metric
                          ~original ~approx:optimized pats
                      in
                      let dev = Float.abs (e2 -. err) in
                      if dev > !cert_lac_maxdev then cert_lac_maxdev := dev;
                      let fail tol =
                        if dev > tol then begin
                          incr cert_lac_failures;
                          Log.err (fun m ->
                              m
                                "certify: LAC on node %d re-simulates at %.6g vs \
                                 predicted %.6g (tolerance %.3g)"
                                lac.Lac.target e2 err tol)
                        end
                      in
                      match config.distr with
                      | Errest.Distr.Enum _ -> fail config.guard_tol
                      | Errest.Distr.Unif ->
                          if Errest.Metrics.bounded_mean config.metric then
                            (* Both estimates concentrate around the true
                               error; their gap is bounded by the sum of the
                               two one-sided Hoeffding margins. *)
                            let n1 =
                              if Array.length eval_pats > 0 then
                                Bitvec.length eval_pats.(0)
                              else max 64 config.eval_rounds
                            in
                            fail
                              (Errest.Certify.hoeffding_margin ~samples:n1
                                 ~confidence:0.9999
                              +. Errest.Certify.hoeffding_margin
                                   ~samples:(max 64 config.eval_rounds)
                                   ~confidence:0.9999)
                          (* Unbounded means and max metrics admit no such
                             two-sample tolerance: deviations are recorded
                             in [lac_max_deviation], not judged. *)
                    end;
                    events :=
                      {
                        iteration = !iteration;
                        target = lac.Lac.target;
                        est_error = err;
                        ands_after = Graph.num_ands !g;
                        rounds = !rounds;
                      }
                      :: !events;
                    Log.debug (fun m ->
                        m "iter %d: applied LAC on node %d, err %.5f, ands %d" !iteration
                          lac.Lac.target err (Graph.num_ands !g));
                    `Applied
            end
            else begin
              Graph.recycle rb replaced;
              try_apply ~skipped:true rest
            end
      in
      match try_apply ~skipped:false ordered with
      | `Applied ->
          patience := 0;
          (* Reward the accepted candidate's arm BEFORE checkpointing, so
             the journaled policy state already reflects this iteration and
             a resume replays the next choice identically.  The reward is
             the area saved per candidate scored this iteration — arm
             productivity per unit of scoring work, straight from the
             scoring-kernel counters. *)
          (match config.policy with
          | Config.Hook h when !accepted_arm >= 0 ->
              let scored_now = (Errest.Batch.stats batch).Errest.Batch.scored in
              let reward =
                Float.min 1.0
                  (Float.max 0.0
                     (float_of_int (ands_before - Graph.num_ands !g)
                     /. float_of_int (max 1 scored_now)))
              in
              h.Config.feed ~arm:!accepted_arm ~reward;
              pol_accepted.(!accepted_arm) <- pol_accepted.(!accepted_arm) + 1;
              pol_reward.(!accepted_arm) <- pol_reward.(!accepted_arm) +. reward
          | Config.Hook _ | Config.Greedy -> ());
          (match journal with Some j -> Journal.record j (snapshot ()) !g | None -> ());
          if Graph.num_ands !g = 0 then begin
            stop_reason := Emptied;
            finished := true
          end
      | `Over_budget ->
          stop_reason := Budget_exhausted;
          finished := true
      | `No_progress ->
          (* The arm the policy bet on produced nothing: a zero-reward pull,
             fed before any later checkpoint so resumes stay aligned. *)
          (match config.policy with
          | Config.Hook h when !first_arm >= 0 ->
              h.Config.feed ~arm:!first_arm ~reward:0.0
          | Config.Hook _ | Config.Greedy -> ());
          (* All candidates were no-ops: treat like an empty candidate set
             so the dynamic-N schedule can unblock us. *)
          shrink_rounds ()
    end
  in
  (* The [max_seconds] budget is wall-clock: with a worker pool, CPU time
     accumulates across domains roughly [jobs] times faster than the wall,
     which is not what a time budget means. *)
  while
    (not !finished) && !applied < config.max_iters
    && Parallel.Clock.now_s () -. w_start < config.max_seconds
  do
    (* Cooperative cancellation checkpoint: once per iteration here, plus
       every pool chunk boundary via the [should_stop] hook installed by
       [run]/[resume].  The journal (if any) already holds the last accepted
       state, so a cancelled run resumes or rolls back cleanly. *)
    if cancel () then raise Cancelled;
    if Fault.should_kill config.fault ~applied:!applied then raise Fault.Killed;
    incr iteration;
    (* Containment: an iteration that blows up (an internal bug, or an
       injected fault) abandons its partial work — [!g] still holds the last
       good graph — and the flow moves on to fresh patterns. *)
    try iteration_body ()
    with e when not (fatal e) ->
      incr recovered_exns;
      Log.warn (fun m ->
          m "iter %d: recovered from exception %s; continuing from last good graph"
            !iteration (Printexc.to_string e));
      if !recovered_exns >= max_recovered_exns then begin
        stop_reason := Stalled;
        finished := true
      end
  done;
  if (not !finished) && !applied >= config.max_iters then stop_reason := Max_iters;
  if Parallel.Clock.now_s () -. w_start >= config.max_seconds then
    stop_reason := Timed_out;
  (match config.resyn with
  | Config.Compress2 ->
      let final = Aig.Resyn.compress2 ?resub !g in
      certify_exact_step "final resyn" !g final;
      if
        Graph.num_ands final < Graph.num_ands !g
        && Aig.Topo.depth final <= depth_limit
      then begin
        (* Guard the hand-off exactly like an accepted LAC: compress2 is an
           exact transform, so the error must be bit-for-bit unchanged. *)
        match
          if config.guard then guard_violation final ~predicted:(measure_error !g)
          else None
        with
        | None -> g := final
        | Some violation ->
            incr guard_rejects;
            Log.warn (fun m -> m "final resyn pass rejected by guard (%s); rolled back" violation)
      end
  | Config.No_resyn | Config.Light -> ());
  let final_approx = Sim.Engine.simulate_pos ~pool !g eval_pats in
  let final_err =
    Errest.Metrics.measure ?weights:eval_weights config.metric ~golden
      ~approx:final_approx
  in
  let eval_len =
    if Array.length eval_pats > 0 then Bitvec.length eval_pats.(0) else config.eval_rounds
  in
  (* The certificate and its bound family.  Each family is only ever claimed
     where it is sound:
     - [Exhaustive]: the measurement already covered the whole input space
       (enumerated support, or exhaustive uniform evaluation) — the sampled
       value IS the true value;
     - [Max_miter]: worst-case metrics under the uniform distribution get
       the exact error-computation-miter certificate ({!Errest.Maxerr});
     - [Hoeffding]: [0,1]-bounded mean metrics under Monte-Carlo sampling
       ({!Errest.Metrics.bounded_mean}); NEVER claimed for a max metric,
       whose sampled value is a lower bound the inequality runs the wrong
       way for. *)
  let certified =
    match config.distr with
    | Errest.Distr.Enum _ -> Some { upper = final_err; family = Exhaustive }
    | Errest.Distr.Unif ->
        if Errest.Metrics.is_max config.metric then begin
          if Graph.num_pos original > 62 then None
          else
            match
              Errest.Maxerr.certify ~seed:(config.seed + 0x3A7) config.metric
                ~original ~approx:!g
            with
            | Errest.Maxerr.Exact { max; _ } ->
                Some { upper = max; family = Max_miter }
            | Errest.Maxerr.Undecided msg ->
                Log.warn (fun m -> m "max-error certification undecided: %s" msg);
                None
        end
        else if
          config.input_probs = None
          && npis <= Sim.Patterns.exhaustive_limit
          && 1 lsl npis <= config.eval_rounds
        then Some { upper = final_err; family = Exhaustive }
        else if Errest.Metrics.bounded_mean config.metric then
          Some
            {
              upper =
                Errest.Certify.upper_bound ~sampled:final_err ~samples:eval_len
                  ~confidence:config.confidence;
              family = Hoeffding;
            }
        else None
  in
  ( !g,
    {
      input_ands = Graph.num_ands original;
      output_ands = Graph.num_ands !g;
      applied = !applied;
      final_est_error = final_err;
      certified;
      final_rounds = !rounds;
      runtime_s = Sys.time () -. t_start;
      wall_s = Parallel.Clock.now_s () -. w_start;
      stop_reason = !stop_reason;
      guard_rejects = !guard_rejects;
      recovered_exns = !recovered_exns;
      quarantined = Hashtbl.length quarantine;
      resumed = init <> None;
      pool = Parallel.Pool.stats pool;
      scoring = !scoring;
      resub = (if config.exact_resub then Some !resub_stats else None);
      events = List.rev !events;
      certify =
        (if config.certify_exact then
           Some
             {
               exact_checks = !cert_exact_checks;
               exact_confirmed = !cert_exact_confirmed;
               exact_undecided = !cert_exact_undecided;
               exact_refuted = !cert_exact_refuted;
               lac_rechecks = !cert_lac_rechecks;
               lac_recheck_failures = !cert_lac_failures;
               lac_max_deviation = !cert_lac_maxdev;
             }
         else None);
      policy =
        (match config.policy with
        | Config.Hook h ->
            Some
              {
                policy_name = h.Config.policy_name;
                arm_stats =
                  Array.init h.Config.arms (fun a ->
                      {
                        arm = a;
                        first_choice = pol_first.(a);
                        accepted = pol_accepted.(a);
                        reward_sum = pol_reward.(a);
                      });
              }
        | Config.Greedy -> None);
    } )

let no_cancel () = false

(* Execution policy shared by [run] and [resume]: use the caller's resident
   pool when one is given (the serving layer keeps one pool warm across
   requests), otherwise create and tear down a private one.  When a cancel
   hook is active it is also installed as the pool's [should_stop] for the
   duration of the run — chunk-grained cancellation inside simulation and
   scoring — and restored afterwards, so an external pool comes back
   unchanged.  [Pool.Cancelled] escaping a chunk is normalized to
   {!Cancelled}: callers see one cancellation exception regardless of which
   checkpoint fired first. *)
let with_run_pool ?pool ~jobs ~cancel f =
  let go pool =
    if cancel == no_cancel then f pool
    else
      Fun.protect
        ~finally:(fun () -> Parallel.Pool.set_should_stop pool None)
        (fun () ->
          Parallel.Pool.set_should_stop pool (Some cancel);
          try f pool with Parallel.Pool.Cancelled -> raise Cancelled)
  in
  match pool with
  | Some p -> go p
  | None -> Parallel.Pool.with_pool ~jobs go

let run ?journal ?(cancel = no_cancel) ?pool ~(config : Config.t) g0 =
  let original = Graph.compact g0 in
  let j = Option.map (fun dir -> Journal.create ~dir ~config ~original) journal in
  with_run_pool ?pool ~jobs:config.jobs ~cancel (fun pool ->
      run_loop ~config ~pool ~cancel ~journal:j ~original ~init:None original)

let resume ?(fault = Fault.none) ?jobs ?policy ?(cancel = no_cancel) ?pool dir =
  let r = Journal.load ?policy dir in
  (match r.Journal.degraded with
  | Some msg -> Log.warn (fun m -> m "resume: %s" msg)
  | None -> ());
  let config = { r.Journal.config with Config.fault } in
  (* The worker-pool size is execution policy, not run identity: results are
     bit-identical at any [jobs], so a resume may use a different pool size
     than the interrupted run. *)
  let config =
    match jobs with Some j -> { config with Config.jobs = j } | None -> config
  in
  let j = Journal.reopen dir in
  with_run_pool ?pool ~jobs:config.Config.jobs ~cancel (fun pool ->
      run_loop ~config ~pool ~cancel ~journal:(Some j) ~original:r.Journal.original
        ~init:r.Journal.state r.Journal.graph)
