module Graph = Aig.Graph
module Bitvec = Logic.Bitvec

type config = {
  rounds : int;
  check_rounds : int;
  seed : int;
  max_divisors : int;
  pair_divisors : int;
  triple_divisors : int;
  derivations_per_target : int;
  max_passes : int;
  cec_rounds : int;
  cec_effort : Verify.Cec.effort;
  undecided_patience : int;
}

let default =
  {
    rounds = 1024;
    check_rounds = 2048;
    seed = 1;
    max_divisors = 48;
    pair_divisors = 20;
    triple_divisors = 10;
    derivations_per_target = 4;
    max_passes = 4;
    cec_rounds = 256;
    cec_effort = Verify.Cec.Fast;
    undecided_patience = 4;
  }

type stats = {
  passes : int;
  targets : int;
  feasible : int;
  derived : int;
  accepted : int;
  sim_refuted : int;
  cec_undecided : int;
  cec_refuted : int;
  batch : Errest.Batch.stats;
}

let zero_stats =
  {
    passes = 0;
    targets = 0;
    feasible = 0;
    derived = 0;
    accepted = 0;
    sim_refuted = 0;
    cec_undecided = 0;
    cec_refuted = 0;
    batch = Errest.Batch.zero_stats;
  }

let add_stats a b =
  {
    passes = a.passes + b.passes;
    targets = a.targets + b.targets;
    feasible = a.feasible + b.feasible;
    derived = a.derived + b.derived;
    accepted = a.accepted + b.accepted;
    sim_refuted = a.sim_refuted + b.sim_refuted;
    cec_undecided = a.cec_undecided + b.cec_undecided;
    cec_refuted = a.cec_refuted + b.cec_refuted;
    batch = Errest.Batch.add_stats a.batch b.batch;
  }

(* A derived candidate replacement for one target: the factored function
   over the divisors, its signature on the sweep's pattern set, and the net
   AND saving it promises (MFFC nodes freed minus gates instantiated). *)
type cand = {
  divisors : int array;
  expr : Logic.Factor.expr;
  new_sig : Bitvec.t;
  gain : int;
}

(* Divisor-set enumeration order for one target: the nearest-first divisor
   list restricted to its cheap prefixes.  k = 1 scans every collected
   divisor; pairs and triples only the nearest few — the quadratic and
   cubic neighborhoods are where care-scan time goes. *)
let candidate_sets (cfg : config) divs =
  let n = Array.length divs in
  let sets = ref [] in
  for i = n - 1 downto 0 do
    sets := [| divs.(i) |] :: !sets
  done;
  let np = min n cfg.pair_divisors in
  for i = np - 1 downto 0 do
    for j = np - 1 downto i + 1 do
      sets := [| divs.(i); divs.(j) |] :: !sets
    done
  done;
  let nt = min n cfg.triple_divisors in
  for i = nt - 1 downto 0 do
    for j = nt - 1 downto i + 1 do
      for k = nt - 1 downto j + 1 do
        sets := [| divs.(i); divs.(j); divs.(k) |] :: !sets
      done
    done
  done;
  (* Built back-to-front, so the list is singletons, then pairs, then
     triples, each group in nearest-first order. *)
  !sets

let constant_sig ~rounds b =
  let v = Bitvec.create rounds in
  if b then Bitvec.fill v true;
  v

(* One sweep over a fixed (compacted) graph [g].  Candidates are discovered
   on [g]'s signatures and committed as an ACCUMULATED replacement map: each
   acceptance rebuilds [g] with all replacements so far and certifies the
   rebuilt graph equivalent to [g] with the CEC portfolio — so every commit
   point of the sweep is machine-proven, and an [Undecided] verdict rolls
   the candidate back instead of trusting simulation.  Sequential by
   construction; the pool only accelerates bit-identical simulation and
   batch scoring, so the sweep's result is the same at any pool size. *)
let sweep ?pool (cfg : config) ~rng g =
  let n = Graph.num_nodes g in
  let npis = Graph.num_pis g in
  let st = ref { zero_stats with passes = 1 } in
  (* Exhaustive patterns when the input space fits: the care table is then
     exact, so every feasible candidate is a true resubstitution and the
     CEC check can only confirm. *)
  let exhaustive =
    npis <= Sim.Patterns.exhaustive_limit && 1 lsl npis <= max cfg.rounds 1024
  in
  let pats =
    if exhaustive then Sim.Patterns.exhaustive ~npis
    else Sim.Patterns.random rng ~npis ~len:cfg.rounds
  in
  let rounds = if Array.length pats > 0 then Bitvec.length pats.(0) else 0 in
  let sigs = Sim.Engine.simulate ?pool g pats in
  let golden = Sim.Engine.po_values g sigs in
  (* On non-exhaustive sweeps a candidate that survives the care table and
     the scoring kernel is still only simulation-supported.  A second,
     independent pattern set filters almost all of the impostors at
     simulation cost, so the expensive CEC stage below runs (almost) only
     on true resubstitutions — without it, graphs whose node count dwarfs
     the pattern budget drown the sweep in portfolio calls that can only
     end Refuted or Undecided. *)
  let check =
    if exhaustive || cfg.check_rounds <= 0 then None
    else begin
      let cpats = Sim.Patterns.random rng ~npis ~len:cfg.check_rounds in
      let cgolden = Sim.Engine.po_values g (Sim.Engine.simulate ?pool g cpats) in
      Some (cpats, cgolden)
    end
  in
  let batch =
    Errest.Batch.create g ~metric:Errest.Metrics.Er ~golden ~base:sigs
  in
  (* Counterexample feedback — the refinement loop of the source paper,
     with the CEC portfolio in the SAT solver's seat: every witness a
     refuted commit produces becomes a permanent pattern that all later
     candidates of the sweep must survive at simulation cost.  Wrongly
     derived functions on one circuit tend to fail on the same few corner
     inputs (the ones uniform patterns essentially never draw), so a
     handful of witnesses replaces hundreds of portfolio calls. *)
  let cex_inputs = ref [] and cex_count = ref 0 in
  let cex_pats = ref None in
  let add_cex (c : Verify.Cec.counterexample) =
    cex_inputs := c.Verify.Cec.inputs :: !cex_inputs;
    incr cex_count;
    let m = !cex_count in
    (* Witnesses are stored most-recent-first; position in the pattern
       words is irrelevant as long as pats and golden agree. *)
    let pats =
      Array.init npis (fun i ->
          let v = Bitvec.create m in
          List.iteri (fun j ins -> Bitvec.set v j ins.(i)) !cex_inputs;
          v)
    in
    let gold = Sim.Engine.po_values g (Sim.Engine.simulate g pats) in
    cex_pats := Some (pats, gold)
  in
  let cex_ok g' =
    match !cex_pats with
    | None -> true
    | Some (cpats, gold) ->
        let pos = Sim.Engine.po_values g' (Sim.Engine.simulate g' cpats) in
        Array.for_all2 Bitvec.equal pos gold
  in
  let fanouts = Aig.Topo.fanout_counts g in
  (* Nodes scheduled to die with an already-accepted replacement: skipping
     them avoids wasted scans, nothing more — the AND-count check below is
     the arbiter of real progress. *)
  let removed = Array.make n false in
  let replacements : (int, Graph.replacement) Hashtbl.t = Hashtbl.create 16 in
  let cur = ref g and cur_ands = ref (Graph.num_ands g) in
  (* When the portfolio answers [Undecided] several times in a row the
     graph is one it structurally cannot close delta miters on (deep
     arithmetic: dividers, square roots) — every further attempt would buy
     the same ~seconds-long rollback.  The streak is deterministic (a
     function of the graph and the seed), so giving up on it preserves the
     byte-identity contract; a later pass starts with fresh patience. *)
  let undecided_streak = ref 0 in
  let gave_up () = !undecided_streak >= max cfg.undecided_patience 1 in
  let try_commit v (c : cand) ~in_mffc =
    Hashtbl.replace replacements v (Graph.Replace_expr (c.expr, c.divisors));
    let rollback () = Hashtbl.remove replacements v in
    match Graph.rebuild ~replace:(fun id -> Hashtbl.find_opt replacements id) g with
    | exception Failure _ ->
        (* A combinational cycle: impossible by construction (divisors are
           collected outside the target's TFO), kept as a hard guard. *)
        rollback ()
    | g' ->
        if Graph.num_ands g' >= !cur_ands then rollback ()
        else if
          (not (cex_ok g'))
          ||
          match check with
          | None -> false
          | Some (cpats, cgolden) ->
              let pos =
                Sim.Engine.po_values g' (Sim.Engine.simulate ?pool g' cpats)
              in
              not (Array.for_all2 Bitvec.equal pos cgolden)
        then begin
          rollback ();
          st := { !st with sim_refuted = !st.sim_refuted + 1 }
        end
        else begin
          (* Certify the ACCUMULATED transform [g -> g'].  Rebuilding from
             the sweep's base graph re-proves the earlier acceptances too;
             their shared structure folds away in the miter, so the marginal
             cost is the new replacement. *)
          match
            Verify.Cec.run ~seed:(cfg.seed + 0xE5B) ~rounds:cfg.cec_rounds
              ~effort:cfg.cec_effort g g'
          with
          | Verify.Cec.Equivalent ->
              undecided_streak := 0;
              cur := g';
              cur_ands := Graph.num_ands g';
              st := { !st with accepted = !st.accepted + 1 };
              Hashtbl.iter (fun id () -> removed.(id) <- true) in_mffc
          | Verify.Cec.Undecided _ ->
              incr undecided_streak;
              rollback ();
              st := { !st with cec_undecided = !st.cec_undecided + 1 }
          | Verify.Cec.Inequivalent c ->
              add_cex c;
              rollback ();
              st := { !st with cec_refuted = !st.cec_refuted + 1 }
        end
  in
  Graph.iter_ands g (fun v ->
      if fanouts.(v) > 0 && (not (removed.(v))) && not (gave_up ()) then begin
        st := { !st with targets = !st.targets + 1 };
        let mffc = Aig.Cone.mffc g ~fanouts v in
        let mffc_size = List.length mffc in
        let in_mffc = Hashtbl.create 16 in
        List.iter (fun i -> Hashtbl.replace in_mffc i ()) mffc;
        let sig_v = sigs.(v) in
        (* 0-resub: the target is constant on every simulated pattern. *)
        let const_cand =
          if rounds = 0 then None
          else if Bitvec.is_zero sig_v then
            Some
              {
                divisors = [||];
                expr = Logic.Factor.Const false;
                new_sig = constant_sig ~rounds false;
                gain = mffc_size;
              }
          else if Bitvec.is_ones sig_v then
            Some
              {
                divisors = [||];
                expr = Logic.Factor.Const true;
                new_sig = constant_sig ~rounds true;
                gain = mffc_size;
              }
          else None
        in
        let derived_cand =
          if const_cand <> None then None
          else begin
            let tfo = Aig.Cone.tfo_mask g v in
            let divs = Divisor.collect g ~sigs ~tfo ~max:cfg.max_divisors v in
            if Array.length divs = 0 then None
            else begin
              (* Feasible sets with their savings bound; derivation
                 (Espresso + factoring) only for the most promising few. *)
              let feasible = ref [] in
              List.iter
                (fun set ->
                  let k = Array.length set in
                  let savings =
                    Divisor.true_savings g ~in_mffc ~mffc_size set
                  in
                  (* k divisors need at least k-1 ANDs, so this bound is the
                     best gain the set can possibly deliver. *)
                  if savings - (k - 1) >= 1 then begin
                    let care =
                      Care.scan ~sigs ~node:v ~divisors:set ~rounds ()
                    in
                    if Feasibility.ok care then
                      feasible := (savings, set, care) :: !feasible
                  end)
                (candidate_sets cfg divs);
              let feasible = List.rev !feasible in
              st := { !st with feasible = !st.feasible + List.length feasible };
              let ranked =
                List.stable_sort
                  (fun (s1, d1, _) (s2, d2, _) ->
                    let c =
                      compare
                        (s2 - (Array.length d2 - 1))
                        (s1 - (Array.length d1 - 1))
                    in
                    c)
                  feasible
              in
              let best = ref None in
              let tried = ref 0 in
              List.iter
                (fun (savings, set, care) ->
                  if !tried < cfg.derivations_per_target then begin
                    incr tried;
                    st := { !st with derived = !st.derived + 1 };
                    let cover = Resub.derive care in
                    let expr = Resub.expr_of_cover cover in
                    let gain = savings - Logic.Factor.and2_cost expr in
                    if gain >= 1 then begin
                      let pos_sigs = Array.map (fun d -> sigs.(d)) set in
                      let new_sig = Logic.Cover.eval_sigs cover ~pos_sigs in
                      let better =
                        match !best with
                        | None -> true
                        | Some c -> gain > c.gain
                      in
                      if better then
                        best := Some { divisors = set; expr; new_sig; gain }
                    end
                  end)
                ranked;
              !best
            end
          end
        in
        match (const_cand, derived_cand) with
        | None, None -> ()
        | Some c, _ | None, Some c ->
            (* Route the candidate through the event-driven scoring kernel:
               an exact resubstitution must leave every PO signature
               untouched on the sweep's patterns.  A non-zero error here
               means the ISOP/factoring pipeline disagrees with the care
               table — a bug trap, counted and skipped, never committed. *)
            let err =
              Errest.Batch.candidate_error batch ~node:v ~new_sig:c.new_sig
            in
            if Float.equal err 0.0 then try_commit v c ~in_mffc
      end);
  st := { !st with batch = Errest.Batch.stats batch };
  (!cur, !st)

let run ?pool ?(config = default) g0 =
  let g = ref (Graph.compact g0) in
  let stats = ref zero_stats in
  let rng = Logic.Rng.create config.seed in
  let progress = ref true in
  while
    !progress
    && !stats.passes < config.max_passes
    && Graph.num_pis !g > 0
    && Graph.num_ands !g > 0
  do
    let g', st = sweep ?pool config ~rng !g in
    (* [rebuild] already dropped the freed logic; compact only re-numbers. *)
    g := Graph.compact g';
    stats := add_stats !stats st;
    progress := st.accepted > 0
  done;
  (!g, !stats)

let pass ?pool ?config () g = fst (run ?pool ?config g)
