module Graph = Aig.Graph

type event = {
  iteration : int;
  target : int;
  est_error : float;
  ands_after : int;
  rounds : int;
}

type state = {
  rng_state : int64;
  rounds : int;
  patience : int;
  shrinks_at_floor : int;
  applied : int;
  iteration : int;
  accepts_since_full : int;
  last_error : float;
  guard_rejects : int;
  recovered_exns : int;
  quarantined : int list;
  policy_state : string;
  events : event list;
}

type t = { dir : string }

type resume = {
  config : Config.t;
  original : Graph.t;
  graph : Graph.t;
  state : state option;
  degraded : string option;
}

let manifest_file dir = Filename.concat dir "manifest"
let original_file dir = Filename.concat dir "original.aag"
let checkpoint_file dir = Filename.concat dir "checkpoint"
let checkpoint_prev_file dir = Filename.concat dir "checkpoint.prev"

let dir t = t.dir

(* ---------- Scalars ---------- *)

(* Hex floats round-trip exactly; [infinity] needs a spelling of its own. *)
let emit_float f =
  if f = infinity then "inf"
  else if f = neg_infinity then "-inf"
  else Printf.sprintf "%h" f

let parse_float_exn what s =
  match s with
  | "inf" -> infinity
  | "-inf" -> neg_infinity
  | _ -> (
      match float_of_string_opt s with
      | Some f -> f
      | None -> failwith (Printf.sprintf "journal: bad float for %s: %S" what s))

let parse_int_exn what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> failwith (Printf.sprintf "journal: bad integer for %s: %S" what s)

(* ---------- Config serialization ---------- *)

let resyn_to_string = function
  | Config.No_resyn -> "none"
  | Config.Light -> "light"
  | Config.Compress2 -> "compress2"

let resyn_of_string = function
  | "none" -> Config.No_resyn
  | "light" -> Config.Light
  | "compress2" -> Config.Compress2
  | s -> failwith (Printf.sprintf "journal: bad resyn level %S" s)

let config_to_string (c : Config.t) =
  let buf = Buffer.create 512 in
  let kv k v = Buffer.add_string buf (Printf.sprintf "%s %s\n" k v) in
  kv "metric" (Errest.Metrics.kind_to_string c.metric);
  kv "threshold" (emit_float c.threshold);
  kv "sim_rounds" (string_of_int c.sim_rounds);
  kv "lac_limit" (string_of_int c.lac_limit);
  kv "patience" (string_of_int c.patience);
  kv "scale" (emit_float c.scale);
  kv "min_rounds" (string_of_int c.min_rounds);
  kv "eval_rounds" (string_of_int c.eval_rounds);
  kv "max_tfi_divisors" (string_of_int c.max_tfi_divisors);
  kv "seed" (string_of_int c.seed);
  kv "resyn" (resyn_to_string c.resyn);
  kv "max_iters" (string_of_int c.max_iters);
  kv "margin" (emit_float c.margin);
  kv "max_seconds" (emit_float c.max_seconds);
  kv "distr" (Errest.Distr.to_string c.distr);
  (match c.input_probs with
  | None -> kv "input_probs" "none"
  | Some probs ->
      kv "input_probs"
        (String.concat "," (Array.to_list (Array.map emit_float probs))));
  kv "max_depth_growth" (emit_float c.max_depth_growth);
  kv "use_odc" (string_of_bool c.use_odc);
  kv "guard" (string_of_bool c.guard);
  kv "guard_tol" (emit_float c.guard_tol);
  kv "confidence" (emit_float c.confidence);
  kv "certify_exact" (string_of_bool c.certify_exact);
  kv "exact_resub" (string_of_bool c.exact_resub);
  kv "jobs" (string_of_int c.jobs);
  (* The policy is persisted by name only; its (code) hook is re-supplied by
     the resuming caller and its internal state checkpointed per snapshot. *)
  kv "policy" (Config.policy_name c.policy);
  (* The fault plan is deliberately NOT persisted: injected faults belong to
     one process's run, not to the journal a resumed run continues from. *)
  Buffer.contents buf

let parse_bool_exn what s =
  match bool_of_string_opt s with
  | Some b -> b
  | None -> failwith (Printf.sprintf "journal: bad boolean for %s: %S" what s)

let config_of_string ?policy text =
  let c = ref (Config.default ~metric:Errest.Metrics.Er ~threshold:0.0) in
  let resolve_policy name =
    match (name, policy) with
    | "greedy", _ -> Config.Greedy
    | _, Some (h : Config.policy_hook) when h.Config.policy_name = name ->
        Config.Hook h
    | _ ->
        failwith
          (Printf.sprintf
             "journal: run used candidate-selection policy %S; resume must \
              supply the same policy hook"
             name)
  in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let line = String.trim line in
         if line <> "" then
           let key, value =
             match String.index_opt line ' ' with
             | Some sp ->
                 ( String.sub line 0 sp,
                   String.sub line (sp + 1) (String.length line - sp - 1) )
             | None -> (line, "")
           in
           match key with
           | "metric" -> (
               match Errest.Metrics.kind_of_string value with
               | Some m -> c := { !c with Config.metric = m }
               | None -> failwith (Printf.sprintf "journal: bad metric %S" value))
           | "threshold" -> c := { !c with Config.threshold = parse_float_exn key value }
           | "sim_rounds" -> c := { !c with Config.sim_rounds = parse_int_exn key value }
           | "lac_limit" -> c := { !c with Config.lac_limit = parse_int_exn key value }
           | "patience" -> c := { !c with Config.patience = parse_int_exn key value }
           | "scale" -> c := { !c with Config.scale = parse_float_exn key value }
           | "min_rounds" -> c := { !c with Config.min_rounds = parse_int_exn key value }
           | "eval_rounds" -> c := { !c with Config.eval_rounds = parse_int_exn key value }
           | "max_tfi_divisors" ->
               c := { !c with Config.max_tfi_divisors = parse_int_exn key value }
           | "seed" -> c := { !c with Config.seed = parse_int_exn key value }
           | "resyn" -> c := { !c with Config.resyn = resyn_of_string value }
           | "max_iters" -> c := { !c with Config.max_iters = parse_int_exn key value }
           | "margin" -> c := { !c with Config.margin = parse_float_exn key value }
           | "max_seconds" -> c := { !c with Config.max_seconds = parse_float_exn key value }
           | "distr" -> (
               match Errest.Distr.of_string value with
               | Ok d -> c := { !c with Config.distr = d }
               | Error msg ->
                   failwith (Printf.sprintf "journal: bad distr: %s" msg))
           | "input_probs" ->
               let probs =
                 if value = "none" then None
                 else
                   Some
                     (String.split_on_char ',' value
                     |> List.map (parse_float_exn key)
                     |> Array.of_list)
               in
               c := { !c with Config.input_probs = probs }
           | "max_depth_growth" ->
               c := { !c with Config.max_depth_growth = parse_float_exn key value }
           | "use_odc" -> c := { !c with Config.use_odc = parse_bool_exn key value }
           | "guard" -> c := { !c with Config.guard = parse_bool_exn key value }
           | "guard_tol" -> c := { !c with Config.guard_tol = parse_float_exn key value }
           | "confidence" -> c := { !c with Config.confidence = parse_float_exn key value }
           | "certify_exact" ->
               c := { !c with Config.certify_exact = parse_bool_exn key value }
           | "exact_resub" ->
               c := { !c with Config.exact_resub = parse_bool_exn key value }
           | "jobs" -> c := { !c with Config.jobs = parse_int_exn key value }
           | "policy" -> c := { !c with Config.policy = resolve_policy value }
           | _ -> failwith (Printf.sprintf "journal: unknown config key %S" key));
  !c

(* ---------- Checkpoint serialization ---------- *)

let checksum s =
  let h = ref 0 in
  String.iter (fun ch -> h := ((!h * 131) + Char.code ch) land 0x3FFFFFFF) s;
  !h

let state_to_string state graph_text =
  let buf = Buffer.create (String.length graph_text + 1024) in
  let kv k v = Buffer.add_string buf (Printf.sprintf "%s %s\n" k v) in
  Buffer.add_string buf "alsrac-checkpoint 1\n";
  kv "rng" (Int64.to_string state.rng_state);
  kv "rounds" (string_of_int state.rounds);
  kv "patience" (string_of_int state.patience);
  kv "shrinks_at_floor" (string_of_int state.shrinks_at_floor);
  kv "applied" (string_of_int state.applied);
  kv "iteration" (string_of_int state.iteration);
  kv "accepts_since_full" (string_of_int state.accepts_since_full);
  kv "last_error" (emit_float state.last_error);
  kv "guard_rejects" (string_of_int state.guard_rejects);
  kv "recovered_exns" (string_of_int state.recovered_exns);
  kv "quarantined"
    (String.concat " " (List.map string_of_int state.quarantined));
  if String.contains state.policy_state '\n' then
    failwith "journal: policy state must be a single line";
  kv "policy_state" state.policy_state;
  kv "events" (string_of_int (List.length state.events));
  List.iter
    (fun (e : event) ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %s %d %d\n" e.iteration e.target
           (emit_float e.est_error) e.ands_after e.rounds))
    state.events;
  kv "graph"
    (Printf.sprintf "%d %d" (String.length graph_text) (checksum graph_text));
  Buffer.add_string buf graph_text;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let parse_checkpoint text =
  let len = String.length text in
  let pos = ref 0 in
  let next_line () =
    if !pos >= len then failwith "journal: truncated checkpoint";
    match String.index_from_opt text !pos '\n' with
    | None -> failwith "journal: truncated checkpoint"
    | Some i ->
        let s = String.sub text !pos (i - !pos) in
        pos := i + 1;
        s
  in
  let field key =
    let line = next_line () in
    match String.index_opt line ' ' with
    | Some sp when String.sub line 0 sp = key ->
        String.sub line (sp + 1) (String.length line - sp - 1)
    | _ -> failwith (Printf.sprintf "journal: expected %S field, got %S" key line)
  in
  if next_line () <> "alsrac-checkpoint 1" then
    failwith "journal: bad checkpoint header";
  let rng_state =
    let s = field "rng" in
    match Int64.of_string_opt s with
    | Some v -> v
    | None -> failwith (Printf.sprintf "journal: bad rng state %S" s)
  in
  let rounds = parse_int_exn "rounds" (field "rounds") in
  let patience = parse_int_exn "patience" (field "patience") in
  let shrinks_at_floor = parse_int_exn "shrinks_at_floor" (field "shrinks_at_floor") in
  let applied = parse_int_exn "applied" (field "applied") in
  let iteration = parse_int_exn "iteration" (field "iteration") in
  let accepts_since_full =
    parse_int_exn "accepts_since_full" (field "accepts_since_full")
  in
  let last_error = parse_float_exn "last_error" (field "last_error") in
  let guard_rejects = parse_int_exn "guard_rejects" (field "guard_rejects") in
  let recovered_exns = parse_int_exn "recovered_exns" (field "recovered_exns") in
  let quarantined =
    field "quarantined" |> String.split_on_char ' '
    |> List.filter (fun s -> s <> "")
    |> List.map (parse_int_exn "quarantined")
  in
  let policy_state = field "policy_state" in
  let nevents = parse_int_exn "events" (field "events") in
  if nevents < 0 then failwith "journal: negative event count";
  (* Each event is one line: bound the claimed count by the bytes left. *)
  if nevents > len - !pos then failwith "journal: event count exceeds file size";
  let events =
    List.init nevents (fun _ ->
        let line = next_line () in
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ it; tg; err; ands; rds ] ->
            {
              iteration = parse_int_exn "event iteration" it;
              target = parse_int_exn "event target" tg;
              est_error = parse_float_exn "event est_error" err;
              ands_after = parse_int_exn "event ands_after" ands;
              rounds = parse_int_exn "event rounds" rds;
            }
        | _ -> failwith (Printf.sprintf "journal: bad event line %S" line))
  in
  let nbytes, sum =
    match String.split_on_char ' ' (field "graph") with
    | [ n; s ] -> (parse_int_exn "graph size" n, parse_int_exn "graph checksum" s)
    | _ -> failwith "journal: bad graph field"
  in
  if nbytes < 0 || !pos + nbytes > len then failwith "journal: truncated graph section";
  let graph_text = String.sub text !pos nbytes in
  pos := !pos + nbytes;
  if checksum graph_text <> sum then failwith "journal: graph checksum mismatch";
  if next_line () <> "end" then failwith "journal: missing end marker";
  let graph = Circuit_io.Aiger.parse graph_text in
  ( {
      rng_state;
      rounds;
      patience;
      shrinks_at_floor;
      applied;
      iteration;
      accepts_since_full;
      last_error;
      guard_rejects;
      recovered_exns;
      quarantined;
      policy_state;
      events;
    },
    graph )

(* ---------- Run directory ---------- *)

let create ~dir ~(config : Config.t) ~original =
  (if not (Sys.file_exists dir) then
     try Sys.mkdir dir 0o755
     with Sys_error msg -> failwith (Printf.sprintf "journal: cannot create %s: %s" dir msg));
  if not (Sys.is_directory dir) then
    failwith (Printf.sprintf "journal: %s is not a directory" dir);
  (* A fresh run must not inherit checkpoints from a previous one — nor the
     [*.tmp.*] staging debris a killed run may have stranded. *)
  Circuit_io.Atomic_file.sweep_debris dir;
  List.iter
    (fun f -> if Sys.file_exists f then Sys.remove f)
    [ checkpoint_file dir; checkpoint_prev_file dir ];
  Circuit_io.Atomic_file.write (manifest_file dir)
    ("alsrac-journal 1\n" ^ config_to_string config ^ "end\n");
  Circuit_io.Aiger.write_graph (original_file dir) original;
  { dir }

let reopen dir =
  if not (Sys.file_exists dir && Sys.is_directory dir && Sys.file_exists (manifest_file dir))
  then failwith (Printf.sprintf "journal: %s is not a journal directory" dir);
  Circuit_io.Atomic_file.sweep_debris dir;
  { dir }

let record t state graph =
  let contents = state_to_string state (Circuit_io.Aiger.graph_to_string graph) in
  let cp = checkpoint_file t.dir in
  (* Rotate, then write atomically: at any instant the directory holds at
     least one complete checkpoint (or none at all, right after [create]). *)
  if Sys.file_exists cp then Sys.rename cp (checkpoint_prev_file t.dir);
  Circuit_io.Atomic_file.write cp contents

let load_manifest ?policy dir =
  let path = manifest_file dir in
  let text =
    try Circuit_io.Atomic_file.read path
    with Sys_error msg -> failwith (Printf.sprintf "journal: cannot read manifest: %s" msg)
  in
  match String.index_opt text '\n' with
  | Some i when String.sub text 0 i = "alsrac-journal 1" ->
      let body = String.sub text (i + 1) (String.length text - i - 1) in
      let body =
        (* The trailing "end" marker detects truncation. *)
        match String.split_on_char '\n' body |> List.rev with
        | "" :: "end" :: rev_rest | "end" :: rev_rest ->
            String.concat "\n" (List.rev rev_rest)
        | _ -> failwith "journal: truncated manifest"
      in
      config_of_string ?policy body
  | _ -> failwith "journal: bad manifest header"

let load ?policy dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    failwith (Printf.sprintf "journal: %s is not a journal directory" dir);
  (* Same kill-crash debris leak the point stores had: a run killed inside
     [Atomic_file.write] strands the staged temp next to the checkpoint. *)
  Circuit_io.Atomic_file.sweep_debris dir;
  let config = load_manifest ?policy dir in
  let original =
    try Circuit_io.Aiger.read (original_file dir)
    with Sys_error msg ->
      failwith (Printf.sprintf "journal: cannot read original circuit: %s" msg)
  in
  let try_checkpoint path =
    if not (Sys.file_exists path) then None
    else
      match parse_checkpoint (Circuit_io.Atomic_file.read path) with
      | state, graph -> Some (Ok (state, graph))
      | exception (Failure msg | Sys_error msg) -> Some (Error msg)
  in
  let primary = try_checkpoint (checkpoint_file dir) in
  let fallback = try_checkpoint (checkpoint_prev_file dir) in
  match (primary, fallback) with
  | Some (Ok (state, graph)), _ ->
      { config; original; graph; state = Some state; degraded = None }
  | Some (Error msg), Some (Ok (state, graph)) ->
      {
        config;
        original;
        graph;
        state = Some state;
        degraded = Some (Printf.sprintf "checkpoint unreadable (%s); resumed from previous checkpoint" msg);
      }
  | None, Some (Ok (state, graph)) ->
      (* The crash hit between rotation and the new write. *)
      {
        config;
        original;
        graph;
        state = Some state;
        degraded = Some "checkpoint missing; resumed from previous checkpoint";
      }
  | Some (Error msg), (Some (Error _) | None) ->
      {
        config;
        original;
        graph = original;
        state = None;
        degraded = Some (Printf.sprintf "all checkpoints unreadable (%s); restarting from the original circuit" msg);
      }
  | None, Some (Error msg) ->
      {
        config;
        original;
        graph = original;
        state = None;
        degraded = Some (Printf.sprintf "all checkpoints unreadable (%s); restarting from the original circuit" msg);
      }
  | None, None -> { config; original; graph = original; state = None; degraded = None }
