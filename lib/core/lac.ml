module Graph = Aig.Graph

type t = {
  target : int;
  divisors : int array;
  cover : Logic.Cover.t;
  expr : Logic.Factor.expr;
  gain : int;
}

(* Derivation (Espresso + factoring) is the expensive step, so first collect
   every feasible divisor set with its cheap savings bound, then derive
   functions only for the most promising few. *)
let derivations_per_node = 8

(* Candidates of one target node, in the order the sequential flow has
   always produced them.  Pure in everything shared: the graph, signatures,
   fanout counts and ODC masks are only read, all scratch state is local —
   which is what makes the per-node fan-out below safe. *)
let candidates_for ?obs ?pool g ~(config : Config.t) ~sigs ~rounds ~fanouts v =
  let mffc = Aig.Cone.mffc g ~fanouts v in
  let mffc_size = List.length mffc in
  let in_mffc = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace in_mffc n ()) mffc;
  let mask = Option.map (fun o -> o.(v)) obs in
  let sets = Array.of_list (Divisor.select g ~max_tfi:config.max_tfi_divisors v) in
  let feasible =
    Feasibility.filter ?pool ?mask ~sigs ~node:v ~sets ~rounds ()
    |> List.map (fun (divisors, care) ->
           (Divisor.true_savings g ~in_mffc ~mffc_size divisors, divisors, care))
  in
  let ranked =
    List.stable_sort (fun (s1, _, _) (s2, _, _) -> compare s2 s1) feasible
  in
  let found = ref 0 and derived = ref 0 in
  let candidates = ref [] in
  List.iter
    (fun (savings, divisors, care) ->
      if !derived < derivations_per_node && !found < config.lac_limit && savings >= 1
      then begin
        incr derived;
        let cover = Resub.derive care in
        let expr = Resub.expr_of_cover cover in
        let gain = savings - Logic.Factor.and2_cost expr in
        if gain >= 0 then begin
          incr found;
          candidates := { target = v; divisors; cover; expr; gain } :: !candidates
        end
      end)
    ranked;
  !candidates

let generate ?obs ?pool g ~(config : Config.t) ~sigs ~rounds =
  let fanouts = Aig.Topo.fanout_counts g in
  let nodes = ref [] in
  Graph.iter_ands g (fun v -> if fanouts.(v) > 0 then nodes := v :: !nodes);
  let nodes = Array.of_list (List.rev !nodes) in
  let n = Array.length nodes in
  (* Fan across target nodes; when the pool outnumbers the targets, push it
     one level down so the per-set care scans fill the idle lanes instead
     (nested submit is supported and results are order-independent). *)
  let set_pool =
    match pool with
    | Some p when n < Parallel.Pool.size p -> pool
    | Some _ | None -> None
  in
  let per_node =
    Parallel.Chunk.map ?pool ~n (fun i ->
        candidates_for ?obs ?pool:set_pool g ~config ~sigs ~rounds ~fanouts nodes.(i))
  in
  List.concat (Array.to_list per_node)

let replacement lac = Graph.Replace_expr (lac.expr, lac.divisors)

let pp ppf lac =
  Format.fprintf ppf "node %d <- %a over [%a] (gain %d)" lac.target Logic.Factor.pp
    lac.expr
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (Array.to_list lac.divisors)
    lac.gain
