(** Divisor collection, shared by the approximate LAC generator
    (Algorithm 1) and the exact resubstitution engine.

    Candidates are enumerated {e nearest-first}: descending logic level,
    ascending node id within a level.  A divisor close to the target is the
    one most likely to admit a small resubstitution function, so when a cap
    truncates the enumeration it is the deep, remote part of the cone that
    is dropped — never the near divisors.  (The previous implementation
    truncated [Cone.tfi_nodes]'s ascending-level order, silently discarding
    exactly the near divisors on any node whose TFI exceeded the cap.)
    Duplicate sets are suppressed by an int-keyed hash with exact
    collision resolution, never by polymorphic hashing of arrays. *)

val tfi_candidates : Aig.Graph.t -> max_tfi:int -> int -> int list
(** TFI nodes of the target (target excluded), nearest-first, at most
    [max_tfi] of them.  Empty on non-AND targets. *)

val iter_sets :
  Aig.Graph.t ->
  max_tfi:int ->
  int ->
  (int array -> [ `Stop | `Continue ]) ->
  unit
(** [iter_sets g ~max_tfi v f] calls [f] on each divisor set (array of node
    ids, sorted) until [f] answers [`Stop] or the sets are exhausted.  For a
    target with fanin set [FI], the sets are: each [FI \ {n}] (drop one
    fanin), then each [(FI \ {n}) + {u}] for every [u] of
    {!tfi_candidates} — at most [max_tfi] TFI nodes, nearest-first. *)

val select : Aig.Graph.t -> max_tfi:int -> int -> int array list
(** Eager version (mainly for tests): all sets in enumeration order. *)

val true_savings :
  Aig.Graph.t ->
  in_mffc:(int, unit) Hashtbl.t ->
  mffc_size:int ->
  int array ->
  int
(** AND nodes of the target's MFFC that actually die when the target is
    replaced by a function of the divisors: a divisor inside the MFFC keeps
    itself and its in-MFFC transitive fanin alive.  [in_mffc] maps the
    MFFC's node ids (from {!Aig.Cone.mffc}), built once per target. *)

val collect :
  Aig.Graph.t ->
  ?sigs:Logic.Bitvec.t array ->
  tfo:bool array ->
  max:int ->
  int ->
  int array
(** [collect g ~tfo ~max v]: graph-wide divisor candidates for target [v] —
    every PI or AND node outside the target's TFO cone ([tfo] from
    {!Aig.Cone.tfo_mask}; the mask includes [v] itself, so the target can
    never be its own divisor) whose level does not exceed the target's,
    nearest-first, at most [max] of them.

    With per-node signatures [?sigs] (from {!Sim.Engine.simulate} on the
    care patterns), divisors that are constant on the sample or whose
    signature duplicates an already-kept divisor's in either phase are
    filtered out: on the observed patterns they cannot distinguish any care
    tuple the kept divisor does not already distinguish.  The kept
    representative is always the nearest one. *)
