type resyn_level = No_resyn | Light | Compress2

type policy_hook = {
  policy_name : string;
  arms : int;
  classify : depth_frac:float -> ndivisors:int -> int;
  choose : unit -> int array;
  feed : arm:int -> reward:float -> unit;
  policy_state : unit -> string;
  restore_state : string -> unit;
}

type policy = Greedy | Hook of policy_hook

let policy_name = function Greedy -> "greedy" | Hook h -> h.policy_name

type t = {
  metric : Errest.Metrics.kind;
  threshold : float;
  sim_rounds : int;
  lac_limit : int;
  patience : int;
  scale : float;
  min_rounds : int;
  eval_rounds : int;
  max_tfi_divisors : int;
  seed : int;
  resyn : resyn_level;
  max_iters : int;
  margin : float;
  max_seconds : float;
  distr : Errest.Distr.t;
  input_probs : float array option;
  max_depth_growth : float;
  use_odc : bool;
  guard : bool;
  guard_tol : float;
  confidence : float;
  certify_exact : bool;
  exact_resub : bool;
  fault : Fault.plan;
  jobs : int;
  policy : policy;
}

let default ~metric ~threshold =
  {
    metric;
    threshold;
    sim_rounds = 32;
    lac_limit = 1;
    patience = 5;
    scale = 0.9;
    min_rounds = 4;
    eval_rounds = 4096;
    max_tfi_divisors = 5000;
    seed = 1;
    resyn = Compress2;
    max_iters = 10_000;
    margin = 1.0;
    max_seconds = infinity;
    distr = Errest.Distr.Unif;
    input_probs = None;
    max_depth_growth = 1.3;
    use_odc = false;
    guard = true;
    guard_tol = 1e-9;
    confidence = 0.999;
    certify_exact = false;
    exact_resub = false;
    fault = Fault.none;
    jobs = 1;
    policy = Greedy;
  }

let pp ppf t =
  Format.fprintf ppf
    "metric=%s threshold=%g N=%d L=%d t=%d r=%g eval=%d seed=%d jobs=%d policy=%s \
     distr=%s"
    (Errest.Metrics.kind_to_string t.metric)
    t.threshold t.sim_rounds t.lac_limit t.patience t.scale t.eval_rounds t.seed
    t.jobs (policy_name t.policy)
    (match t.distr with
    | Errest.Distr.Unif -> "unif"
    | Errest.Distr.Enum { rows; _ } ->
        Printf.sprintf "enum(%d rows)" (Array.length rows))
