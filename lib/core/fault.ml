exception Injected of string

exception Killed

type kind =
  | Flip_signatures of { iteration : int; bit : int }
  | Corrupt_lac of { iteration : int }
  | Raise_at of { iteration : int }
  | Kill_after of { applied : int }
  | Io_short_read of { nth : int }
  | Io_eof_mid_frame of { nth : int }
  | Io_delay_write of { nth : int; ms : int }

type plan = kind list

let none = []

let flip_signatures plan ~iteration =
  List.find_map
    (function
      | Flip_signatures f when f.iteration = iteration -> Some f.bit
      | _ -> None)
    plan

let corrupt_lac plan ~iteration =
  List.exists (function Corrupt_lac f -> f.iteration = iteration | _ -> false) plan

let should_raise plan ~iteration =
  List.exists (function Raise_at f -> f.iteration = iteration | _ -> false) plan

let should_kill plan ~applied =
  List.exists (function Kill_after f -> applied >= f.applied | _ -> false) plan

(* ---------- Socket / IO faults (lib/serve transport hooks) ---------- *)

let io_short_read plan ~nth =
  List.exists (function Io_short_read f -> f.nth = nth | _ -> false) plan

let io_eof_mid_frame plan ~nth =
  List.exists (function Io_eof_mid_frame f -> f.nth = nth | _ -> false) plan

let io_delay_write plan ~nth =
  List.find_map
    (function Io_delay_write f when f.nth = nth -> Some f.ms | _ -> None)
    plan

(* ---------- Plan spec strings (--fault-spec) ---------- *)

let kind_to_string = function
  | Flip_signatures f -> Printf.sprintf "flip-sigs@%d:%d" f.iteration f.bit
  | Corrupt_lac f -> Printf.sprintf "corrupt-lac@%d" f.iteration
  | Raise_at f -> Printf.sprintf "raise@%d" f.iteration
  | Kill_after f -> Printf.sprintf "kill@%d" f.applied
  | Io_short_read f -> Printf.sprintf "short-read@%d" f.nth
  | Io_eof_mid_frame f -> Printf.sprintf "eof-mid-frame@%d" f.nth
  | Io_delay_write f -> Printf.sprintf "delay-write@%d:%d" f.nth f.ms

let plan_to_string plan = String.concat "," (List.map kind_to_string plan)

let kind_of_string s =
  let bad () = failwith (Printf.sprintf "fault spec: cannot parse %S" s) in
  let int_exn v = match int_of_string_opt v with Some n -> n | None -> bad () in
  match String.index_opt s '@' with
  | None -> bad ()
  | Some at -> (
      let name = String.sub s 0 at in
      let arg = String.sub s (at + 1) (String.length s - at - 1) in
      let one () = int_exn arg in
      let two () =
        match String.index_opt arg ':' with
        | None -> bad ()
        | Some c ->
            ( int_exn (String.sub arg 0 c),
              int_exn (String.sub arg (c + 1) (String.length arg - c - 1)) )
      in
      match name with
      | "flip-sigs" ->
          let iteration, bit = two () in
          Flip_signatures { iteration; bit }
      | "corrupt-lac" -> Corrupt_lac { iteration = one () }
      | "raise" -> Raise_at { iteration = one () }
      | "kill" -> Kill_after { applied = one () }
      | "short-read" -> Io_short_read { nth = one () }
      | "eof-mid-frame" -> Io_eof_mid_frame { nth = one () }
      | "delay-write" ->
          let nth, ms = two () in
          Io_delay_write { nth; ms }
      | _ -> bad ())

let plan_of_string s =
  String.split_on_char ',' s
  |> List.filter_map (fun part ->
         let part = String.trim part in
         if part = "" then None else Some (kind_of_string part))

(* ---------- File corruption (for journal-recovery tests) ---------- *)

let truncate_file path ~keep =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let keep = max 0 (min keep len) in
  let contents = really_input_string ic keep in
  close_in ic;
  (* Deliberately NOT atomic: the whole point is to fabricate the torn file
     an atomic writer never produces. *)
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let corrupt_byte path ~pos =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = Bytes.of_string (really_input_string ic len) in
  close_in ic;
  if len = 0 then failwith "Fault.corrupt_byte: empty file";
  let pos = pos mod len in
  Bytes.set contents pos (Char.chr (Char.code (Bytes.get contents pos) lxor 0x2a));
  let oc = open_out_bin path in
  output_bytes oc contents;
  close_out oc
