(** Journaled checkpoints for the ALSRAC flow.

    A journal is a run directory holding:

    - [manifest] — format version plus the full serialized {!Config.t}
      (written once, atomically);
    - [original.aag] — the compacted input circuit, from which the golden
      evaluation signatures are re-derived on resume;
    - [checkpoint] / [checkpoint.prev] — the two most recent flow snapshots.

    After every accepted LAC the flow calls {!record}, which rotates
    [checkpoint] to [checkpoint.prev] and atomically writes a new snapshot:
    the complete loop state (RNG stream position, dynamic simulation round
    [N], patience counters, accepted-event list, quarantine set) followed by
    the current graph as checksummed AIGER text and an [end] marker.  Because
    every write is write-to-temp + rename and the graph section carries a
    byte count and checksum, {!load} can always distinguish a complete
    snapshot from a torn one, and falls back — newest checkpoint, previous
    checkpoint, fresh start from [original.aag] — rather than resuming from
    corrupt state.

    Checkpoints capture the RNG state at the end of the accepting iteration,
    and the flow draws randomness only from that single stream, so a resumed
    run replays the exact iteration sequence the uninterrupted run would
    have produced: same final circuit, same report counters. *)

type event = {
  iteration : int;
  target : int;
  est_error : float;
  ands_after : int;
  rounds : int;
}
(** One accepted LAC; re-exported by {!Flow} as its event type. *)

type state = {
  rng_state : int64;  (** splitmix64 stream position *)
  rounds : int;  (** dynamic simulation round [N] *)
  patience : int;
  shrinks_at_floor : int;
  applied : int;
  iteration : int;
  accepts_since_full : int;  (** Compress2 cheap/full pass schedule *)
  last_error : float;
  guard_rejects : int;
  recovered_exns : int;
  quarantined : int list;  (** signature hashes of quarantined targets *)
  policy_state : string;
      (** serialized candidate-selection-policy state
          ([Config.policy_hook.policy_state]); [""] for the greedy policy *)
  events : event list;  (** newest first, as the flow accumulates them *)
}

type t
(** An open journal (run directory) being written. *)

val create : dir:string -> config:Config.t -> original:Aig.Graph.t -> t
(** Initialize a run directory (created if missing): write the manifest and
    the original circuit, and remove checkpoints left by any previous run.
    Raises [Failure] if the directory cannot be created. *)

val dir : t -> string

val reopen : string -> t
(** Open an existing journal for further {!record}s (used by a resumed run);
    unlike {!create}, existing checkpoints are kept.  Raises [Failure] if
    the directory or its manifest is missing. *)

val record : t -> state -> Aig.Graph.t -> unit
(** Atomically persist a snapshot of the loop state and current graph,
    keeping the previous snapshot as fallback. *)

type resume = {
  config : Config.t;  (** deserialized from the manifest *)
  original : Aig.Graph.t;
  graph : Aig.Graph.t;  (** last checkpointed graph, or [original] *)
  state : state option;  (** [None]: no usable checkpoint — start fresh *)
  degraded : string option;
      (** set when a corrupt/torn checkpoint was skipped over *)
}

val load : ?policy:Config.policy_hook -> string -> resume
(** Read a journal directory back.  Corrupt or truncated checkpoints are
    tolerated (see module description); a missing or corrupt manifest or
    original circuit raises [Failure] — without them there is nothing
    meaningful to resume.  [?policy] resolves a manifest that names a
    non-greedy candidate-selection policy: the hook's name must match the
    manifest's, or the load fails (a policy is code; only its name and
    per-checkpoint state are persisted). *)

(** {1 Config serialization} (exposed for tests) *)

val config_to_string : Config.t -> string
(** One [key value] line per field.  The {!Config.t.fault} plan is not
    persisted: injected faults belong to a process, not to the run; the
    {!Config.t.policy} is persisted by name only. *)

val config_of_string : ?policy:Config.policy_hook -> string -> Config.t
(** Inverse of {!config_to_string}; unknown keys raise [Failure], as does a
    non-greedy policy name that [?policy] does not supply. *)
