(** ALSRAC flow parameters (Algorithm 3 inputs plus engineering knobs). *)

type resyn_level = No_resyn | Light | Compress2

(** {1 Candidate-selection policy}

    The flow's default candidate order is greedy: smallest induced error
    first, ties broken by estimated gain.  A [policy_hook] lets a caller
    (e.g. [Explore.Policy]'s UCB bandit) re-prioritize candidates by {e arm}
    — a (transform family, node region) bucket — before each application
    attempt.  The hook must be deterministic: [choose] may depend only on
    the reward history it has been [feed], never on wall clock or external
    randomness, so that runs (and journaled resumes, which restore the
    hook's serialized state) stay reproducible. *)

type policy_hook = {
  policy_name : string;  (** persisted in journal manifests *)
  arms : int;  (** number of arms; [classify] must return [0 .. arms-1] *)
  classify : depth_frac:float -> ndivisors:int -> int;
      (** arm of a candidate: [depth_frac] is the target node's level
          divided by the current graph depth, [ndivisors] the candidate's
          divisor count *)
  choose : unit -> int array;
      (** priority order over all arms (a permutation of [0 .. arms-1]);
          candidates from earlier arms are attempted first *)
  feed : arm:int -> reward:float -> unit;
      (** reward in [0, 1] for one pull of [arm]: the flow feeds the
          accepted candidate's arm with its area saving per scored
          candidate, and the first-priority arm with 0 when an iteration
          applies nothing *)
  policy_state : unit -> string;
      (** single-line serialization of the internal state, checkpointed by
          {!Journal} alongside the RNG stream *)
  restore_state : string -> unit;  (** inverse of [policy_state] *)
}

type policy = Greedy | Hook of policy_hook

val policy_name : policy -> string

type t = {
  metric : Errest.Metrics.kind;  (** error metric of the constraint *)
  threshold : float;  (** error threshold [E_t] *)
  sim_rounds : int;  (** initial simulation round [N] (paper: 32) *)
  lac_limit : int;  (** per-node LAC limit [L] (paper: 1) *)
  patience : int;  (** controlling parameter [t] (paper: 5) *)
  scale : float;  (** scaling factor [r] (paper: 0.9) *)
  min_rounds : int;  (** lower bound on [N] when shrinking *)
  eval_rounds : int;  (** Monte-Carlo sample for LAC error estimation *)
  max_tfi_divisors : int;  (** cap on TFI nodes scanned per target node *)
  seed : int;  (** PRNG seed: fixes the whole run *)
  resyn : resyn_level;  (** Algorithm 3 line 9 optimization strength *)
  max_iters : int;  (** safety cap on accepted LACs *)
  margin : float;  (** accept LACs with error <= margin * threshold *)
  max_seconds : float;  (** wall-clock budget; [infinity] = unbounded *)
  distr : Errest.Distr.t;
      (** input distribution of the error measurement (ResubALS
          [--distrType]): [Unif] samples/enumerates uniformly; [Enum]
          scores candidates on weight-sampled care patterns and evaluates
          the final error {e exactly} over the enumerated support with
          per-round weights.  Orthogonal to [input_probs], which only
          biases care-set sampling for the approximate care set. *)
  input_probs : float array option;
      (** per-PI one-probabilities (Section III-A's user-specified input
          distribution); [None] = uniform *)
  max_depth_growth : float;
      (** reject LACs that leave the circuit deeper than this factor times
          the original depth (the paper's results implicitly preserve
          delay); [infinity] disables the guard *)
  use_odc : bool;
      (** ODC-aware care sets: mask out care-simulation rounds on which the
          target's value is (heuristically) unobservable at the outputs — an
          extension beyond the paper, benched as an ablation *)
  guard : bool;
      (** guarded transforms: after every accepted LAC (and the final resyn
          pass), re-check structural invariants and probe the measured error
          against the prediction; on violation roll back to the last good
          graph and quarantine the target instead of keeping a poisoned
          circuit.  Default on. *)
  guard_tol : float;
      (** absolute slack allowed between the predicted candidate error and
          the re-measured error before the guard trips (exact transforms
          should agree bit-for-bit; this only absorbs float-summation
          noise) *)
  confidence : float;
      (** confidence for the Hoeffding-certified upper bound on the final
          sampled error (reported only for [0,1]-bounded mean metrics,
          {!Errest.Metrics.bounded_mean}; max metrics get an exact miter
          certificate instead — see {!Errest.Certify} and
          {!Errest.Maxerr}) *)
  certify_exact : bool;
      (** machine-checked verification of the run's trust assumptions
          (default off): every exact-transform application (inter-iteration
          resyn, the final hand-off) is miter-checked with [Verify.Cec], and
          every accepted LAC's predicted error is cross-checked against an
          independent re-simulation.  Verdicts are recorded in the flow
          report; the checks are observational and never change the result
          circuit. *)
  exact_resub : bool;
      (** append the simulation-guided exact resubstitution pass
          ({!Resub_exact}) to every [Compress2] inter-iteration optimization
          and the final hand-off.  Exact: each committed resubstitution is
          CEC-proven, so the flow's error accounting is untouched.  Default
          off. *)
  fault : Fault.plan;
      (** deterministic fault injection for resilience tests; {!Fault.none}
          (the default) disables every hook *)
  jobs : int;
      (** worker-pool size for simulation and candidate scoring: [1]
          (default) runs fully sequentially, [0] detects the core count,
          [n > 1] spawns [n - 1] worker domains.  Results are bit-identical
          at every setting ({!Parallel.Chunk}'s determinism contract), so
          [jobs] may differ between a journaled run and its resume. *)
  policy : policy;
      (** candidate-selection policy: [Greedy] (the paper's order) or an
          adaptive [Hook].  Part of run identity — journaled by name, with
          the hook's state checkpointed so resumes replay its decisions. *)
}

val default : metric:Errest.Metrics.kind -> threshold:float -> t
(** Paper defaults: [N = 32], [L = 1], [t = 5], [r = 0.9]; evaluation sample
    4096 rounds, [Compress2] inter-iteration optimization, seed fixed. *)

val pp : Format.formatter -> t -> unit
