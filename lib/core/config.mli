(** ALSRAC flow parameters (Algorithm 3 inputs plus engineering knobs). *)

type resyn_level = No_resyn | Light | Compress2

type t = {
  metric : Errest.Metrics.kind;  (** error metric of the constraint *)
  threshold : float;  (** error threshold [E_t] *)
  sim_rounds : int;  (** initial simulation round [N] (paper: 32) *)
  lac_limit : int;  (** per-node LAC limit [L] (paper: 1) *)
  patience : int;  (** controlling parameter [t] (paper: 5) *)
  scale : float;  (** scaling factor [r] (paper: 0.9) *)
  min_rounds : int;  (** lower bound on [N] when shrinking *)
  eval_rounds : int;  (** Monte-Carlo sample for LAC error estimation *)
  max_tfi_divisors : int;  (** cap on TFI nodes scanned per target node *)
  seed : int;  (** PRNG seed: fixes the whole run *)
  resyn : resyn_level;  (** Algorithm 3 line 9 optimization strength *)
  max_iters : int;  (** safety cap on accepted LACs *)
  margin : float;  (** accept LACs with error <= margin * threshold *)
  max_seconds : float;  (** wall-clock budget; [infinity] = unbounded *)
  input_probs : float array option;
      (** per-PI one-probabilities (Section III-A's user-specified input
          distribution); [None] = uniform *)
  max_depth_growth : float;
      (** reject LACs that leave the circuit deeper than this factor times
          the original depth (the paper's results implicitly preserve
          delay); [infinity] disables the guard *)
  use_odc : bool;
      (** ODC-aware care sets: mask out care-simulation rounds on which the
          target's value is (heuristically) unobservable at the outputs — an
          extension beyond the paper, benched as an ablation *)
  guard : bool;
      (** guarded transforms: after every accepted LAC (and the final resyn
          pass), re-check structural invariants and probe the measured error
          against the prediction; on violation roll back to the last good
          graph and quarantine the target instead of keeping a poisoned
          circuit.  Default on. *)
  guard_tol : float;
      (** absolute slack allowed between the predicted candidate error and
          the re-measured error before the guard trips (exact transforms
          should agree bit-for-bit; this only absorbs float-summation
          noise) *)
  confidence : float;
      (** confidence for the Hoeffding-certified upper bound on the final
          sampled error (reported for [Er]; see {!Errest.Certify}) *)
  certify_exact : bool;
      (** machine-checked verification of the run's trust assumptions
          (default off): every exact-transform application (inter-iteration
          resyn, the final hand-off) is miter-checked with [Verify.Cec], and
          every accepted LAC's predicted error is cross-checked against an
          independent re-simulation.  Verdicts are recorded in the flow
          report; the checks are observational and never change the result
          circuit. *)
  fault : Fault.plan;
      (** deterministic fault injection for resilience tests; {!Fault.none}
          (the default) disables every hook *)
  jobs : int;
      (** worker-pool size for simulation and candidate scoring: [1]
          (default) runs fully sequentially, [0] detects the core count,
          [n > 1] spawns [n - 1] worker domains.  Results are bit-identical
          at every setting ({!Parallel.Chunk}'s determinism contract), so
          [jobs] may differ between a journaled run and its resume. *)
}

val default : metric:Errest.Metrics.kind -> threshold:float -> t
(** Paper defaults: [N = 32], [L = 1], [t = 5], [r = 0.9]; evaluation sample
    4096 rounds, [Compress2] inter-iteration optimization, seed fixed. *)

val pp : Format.formatter -> t -> unit
