(* ALSRAC command-line driver: benchmark generation, statistics, exact
   optimization, approximate synthesis (ALSRAC / Su / MCMC), technology
   mapping and error measurement. *)

let ( let* ) = Result.bind

(* ---------- Circuit loading / saving ---------- *)

(* Parsers and the journal report recoverable problems (malformed input,
   unusable run directory) as [Failure]: surface those as ordinary CLI
   errors, not cmdliner's uncaught-exception backtrace. *)
let failure_to_msg f = try f () with Failure msg -> Error (`Msg msg)

let load spec =
  if Sys.file_exists spec then
    failure_to_msg @@ fun () ->
    if Filename.check_suffix spec ".blif" then Ok (Circuit_io.Blif.read spec)
    else if Filename.check_suffix spec ".bench" then Ok (Circuit_io.Bench_fmt.read spec)
    else if Filename.check_suffix spec ".aag" then Ok (Circuit_io.Aiger.read spec)
    else Error (`Msg (Printf.sprintf "unknown circuit format: %s" spec))
  else
    match Circuits.Suite.find spec with
    | Some e -> Ok (e.Circuits.Suite.build ())
    | None ->
        Error
          (`Msg
             (Printf.sprintf
                "%s is neither a file nor a known benchmark (try `alsrac list')" spec))

let save path g =
  if Filename.check_suffix path ".blif" then Ok (Circuit_io.Blif.write_graph path g)
  else if Filename.check_suffix path ".bench" then
    Ok (Circuit_io.Bench_fmt.write_graph path g)
  else if Filename.check_suffix path ".aag" then Ok (Circuit_io.Aiger.write_graph path g)
  else if Filename.check_suffix path ".v" then Ok (Circuit_io.Verilog.write_graph path g)
  else if Filename.check_suffix path ".dot" then Ok (Circuit_io.Dot.write_graph path g)
  else Error (`Msg (Printf.sprintf "unknown output format: %s" path))

(* ---------- list ---------- *)

let list_cmd () =
  List.iter
    (fun (e : Circuits.Suite.entry) ->
      let g = e.Circuits.Suite.build () in
      Printf.printf "%-10s %-22s pi=%4d po=%4d and=%6d depth=%4d  %s\n"
        e.Circuits.Suite.name
        (Circuits.Suite.klass_to_string e.Circuits.Suite.klass)
        (Aig.Graph.num_pis g) (Aig.Graph.num_pos g) (Aig.Graph.num_ands g)
        (Aig.Topo.depth g) e.Circuits.Suite.note)
    Circuits.Suite.all;
  Ok ()

(* ---------- gen ---------- *)

let gen_cmd name output =
  let* g = load name in
  save output g

(* ---------- stats ---------- *)

let stats_cmd spec mapping =
  let* g = load spec in
  Printf.printf "%s: pi=%d po=%d and=%d depth=%d\n" (Aig.Graph.name g)
    (Aig.Graph.num_pis g) (Aig.Graph.num_pos g) (Aig.Graph.num_ands g)
    (Aig.Topo.depth g);
  (match mapping with
  | `None -> ()
  | `Asic ->
      let m = Techmap.Cellmap.run g in
      Printf.printf "asic: cells=%d area=%.1f delay=%.2f\n" (Techmap.Mapped.num_cells m)
        (Techmap.Mapped.area m) (Techmap.Mapped.delay m)
  | `Fpga ->
      let m = Techmap.Lutmap.run g in
      Printf.printf "fpga: luts=%d depth=%d\n" (Techmap.Mapped.num_cells m)
        (Techmap.Mapped.depth m));
  Ok ()

(* ---------- opt ---------- *)

let opt_cmd spec fraig exact_resub output =
  let* g = load spec in
  let before = Aig.Graph.num_ands g in
  let rstats = ref Core.Resub_exact.zero_stats in
  let resub =
    if exact_resub then
      Some
        (fun g ->
          let g', st = Core.Resub_exact.run g in
          rstats := Core.Resub_exact.add_stats !rstats st;
          g')
    else None
  in
  let g' = Aig.Resyn.compress2 ?resub g in
  let g' = if fraig then Aig.Resyn.compress2 ?resub (Sim.Fraig.run g') else g' in
  Printf.printf "%s: %d -> %d ands (depth %d -> %d)\n"
    (String.concat "+"
       (("compress2" :: (if exact_resub then [ "resub" ] else []))
       @ (if fraig then [ "fraig" ] else [])))
    before (Aig.Graph.num_ands g') (Aig.Topo.depth g) (Aig.Topo.depth g');
  if exact_resub then begin
    let s = !rstats in
    Printf.printf
      "resub: %d accepted over %d passes (%d targets, %d feasible sets, %d \
       derived, %d sim-refuted, %d undecided, %d refuted)\n"
      s.Core.Resub_exact.accepted s.Core.Resub_exact.passes
      s.Core.Resub_exact.targets s.Core.Resub_exact.feasible
      s.Core.Resub_exact.derived s.Core.Resub_exact.sim_refuted
      s.Core.Resub_exact.cec_undecided s.Core.Resub_exact.cec_refuted
  end;
  match output with Some path -> save path g' | None -> Ok ()

(* ---------- eval ---------- *)

let parse_metric m =
  match Errest.Metrics.kind_of_string m with
  | Some k -> Ok k
  | None ->
      Error
        (`Msg
           (Printf.sprintf
              "unknown metric %s (er|med|nmed|mred|mse|mhd|nmhd|maxed|maxhd|maxred)"
              m))

let parse_distr spec =
  if String.lowercase_ascii (String.trim spec) = "unif" then Ok Errest.Distr.Unif
  else
    match (try Errest.Distr.load spec with Sys_error e -> Error e) with
    | Ok d -> Ok d
    | Error e -> Error (`Msg (Printf.sprintf "--distr %s: %s" spec e))

let check_distr_npis distr g =
  match Errest.Distr.validate_npis distr ~npis:(Aig.Graph.num_pis g) with
  | Ok () -> Ok ()
  | Error e -> Error (`Msg e)

(* Rates and normalized distances read naturally as percentages; absolute
   distances and worst-case bounds do not (a max ED of 3 is not 300%). *)
let format_metric_value metric v =
  match metric with
  | Errest.Metrics.Er | Errest.Metrics.Nmed | Errest.Metrics.Nmhd
  | Errest.Metrics.Mred ->
      Printf.sprintf "%.6f%%" (100.0 *. v)
  | Errest.Metrics.Med | Errest.Metrics.Mse | Errest.Metrics.Mhd
  | Errest.Metrics.Maxed | Errest.Metrics.Maxhd | Errest.Metrics.Maxred ->
      Printf.sprintf "%.6f" v

(* Under an enumerated distribution the error is computed exactly over the
   support with per-row weights; no Monte-Carlo estimate is involved. *)
let measure_under distr metric ~original ~approx ~sample =
  match distr with
  | Errest.Distr.Unif -> Errest.Metrics.evaluate ~sample metric ~original ~approx
  | Errest.Distr.Enum _ as d ->
      Errest.Metrics.compare_graphs
        ?weights:(Errest.Distr.round_weights d)
        metric ~original ~approx (Errest.Distr.signatures d)

let eval_cmd original approx metric sample distr =
  let* metric = parse_metric metric in
  let* distr = parse_distr distr in
  let* g0 = load original in
  let* g1 = load approx in
  let* () = check_distr_npis distr g0 in
  let e = measure_under distr metric ~original:g0 ~approx:g1 ~sample in
  Printf.printf "%s = %s\n"
    (Errest.Metrics.kind_to_string metric)
    (format_metric_value metric e);
  Ok ()

(* ---------- approx ---------- *)

let parse_policy p =
  match Explore.Policy.kind_of_string p with
  | Some k -> Ok k
  | None -> Error (`Msg (Printf.sprintf "unknown policy %s (greedy|bandit)" p))

let approx_cmd spec metric threshold method_ seed eval_rounds mapping output journal
    resume guard certify exact_resub jobs policy distr max_error =
  let* metric = parse_metric metric in
  (* [--max-error E] is worst-case sugar: budget E on the maximum error,
     defaulting the metric to maxed unless a max metric was named
     explicitly (maxhd / maxred). *)
  let* metric, threshold =
    match max_error with
    | None -> Ok (metric, threshold)
    | Some e when e < 0.0 -> Error (`Msg "--max-error must be non-negative")
    | Some e ->
        if Errest.Metrics.is_max metric then Ok (metric, e)
        else Ok (Errest.Metrics.Maxed, e)
  in
  let* distr = parse_distr distr in
  let* policy = parse_policy policy in
  let* g = load spec in
  let original = Aig.Graph.compact g in
  let* () = check_distr_npis distr original in
  let* () =
    if Errest.Distr.is_enum distr && method_ <> "alsrac" then
      Error (`Msg "--distr is only supported with --method alsrac")
    else Ok ()
  in
  let t0 = Sys.time () in
  let* () =
    if (journal <> None || resume <> None) && method_ <> "alsrac" then
      Error (`Msg "--journal/--resume are only supported with --method alsrac")
    else Ok ()
  in
  let* () =
    if jobs <> None && method_ <> "alsrac" then
      Error (`Msg "--jobs is only supported with --method alsrac")
    else Ok ()
  in
  let* () =
    if certify && method_ <> "alsrac" then
      Error (`Msg "--certify-exact is only supported with --method alsrac")
    else Ok ()
  in
  let* () =
    if exact_resub && method_ <> "alsrac" then
      Error (`Msg "--exact-resub is only supported with --method alsrac")
    else Ok ()
  in
  let* () =
    if policy <> Explore.Policy.Greedy && method_ <> "alsrac" then
      Error (`Msg "--policy is only supported with --method alsrac")
    else Ok ()
  in
  let* approx =
    match method_ with
    | "alsrac" ->
        let config =
          { (Core.Config.default ~metric ~threshold) with
            Core.Config.seed;
            eval_rounds;
            guard;
            certify_exact = certify;
            exact_resub;
            distr;
            jobs = Option.value jobs ~default:1;
            policy = Explore.Policy.make policy }
        in
        let* a, r =
          failure_to_msg @@ fun () ->
          Ok
            (match resume with
            | Some dir ->
                (* The journal manifest supersedes the command line: metric,
                   threshold, seed and the rest come from the original run.
                   [--jobs] is the exception — the pool size is execution
                   policy and results are jobs-invariant, so a resume may
                   use any pool size.  A fresh bandit hook is always on
                   offer; the journal binds it only when the manifest names
                   the bandit, and restores its checkpointed state. *)
                Core.Flow.resume ?jobs ~policy:(Explore.Policy.hook ()) dir
            | None -> Core.Flow.run ?journal ~config g)
        in
        Printf.printf "alsrac: %d LACs applied%s, sampled %s = %s\n"
          r.Core.Flow.applied
          (if r.Core.Flow.resumed then " (resumed)" else "")
          (Errest.Metrics.kind_to_string metric)
          (format_metric_value metric r.Core.Flow.final_est_error);
        (match r.Core.Flow.certified with
        | Some c ->
            Printf.printf "certified %s <= %s (%s)\n"
              (Errest.Metrics.kind_to_string metric)
              (format_metric_value metric c.Core.Flow.upper)
              (Core.Flow.family_to_string c.Core.Flow.family)
        | None -> ());
        (match r.Core.Flow.certify with
        | Some c ->
            Printf.printf
              "certify: %d/%d exact transforms proven equivalent (%d undecided, %d \
               refuted); %d LAC rechecks, %d outside tolerance (max deviation %.3g)\n"
              c.Core.Flow.exact_confirmed c.Core.Flow.exact_checks
              c.Core.Flow.exact_undecided c.Core.Flow.exact_refuted
              c.Core.Flow.lac_rechecks c.Core.Flow.lac_recheck_failures
              c.Core.Flow.lac_max_deviation
        | None -> ());
        if
          r.Core.Flow.guard_rejects > 0
          || r.Core.Flow.recovered_exns > 0
          || r.Core.Flow.quarantined > 0
        then
          Printf.printf
            "resilience: %d guard rollbacks, %d quarantined targets, %d recovered exceptions\n"
            r.Core.Flow.guard_rejects r.Core.Flow.quarantined
            r.Core.Flow.recovered_exns;
        (let s = r.Core.Flow.scoring in
         if s.Errest.Batch.scored > 0 then
           Printf.printf
             "scoring: %d candidates (%d trivial, %d early exits), %d frontier \
              nodes, %d changed POs, %d changed words\n"
             s.Errest.Batch.scored s.Errest.Batch.trivial s.Errest.Batch.early_exits
             s.Errest.Batch.frontier_nodes s.Errest.Batch.changed_pos
             s.Errest.Batch.changed_words);
        (match r.Core.Flow.resub with
        | Some s ->
            Printf.printf
              "resub: %d accepted over %d passes (%d targets, %d feasible sets, \
               %d derived, %d sim-refuted, %d undecided, %d refuted; %d scored)\n"
              s.Core.Resub_exact.accepted s.Core.Resub_exact.passes
              s.Core.Resub_exact.targets s.Core.Resub_exact.feasible
              s.Core.Resub_exact.derived s.Core.Resub_exact.sim_refuted
              s.Core.Resub_exact.cec_undecided s.Core.Resub_exact.cec_refuted
              s.Core.Resub_exact.batch.Errest.Batch.scored
        | None -> ());
        (match r.Core.Flow.policy with
        | Some p ->
            let active =
              Array.to_list p.Core.Flow.arm_stats
              |> List.filter (fun (a : Core.Flow.arm_stat) -> a.Core.Flow.accepted > 0)
            in
            Printf.printf "policy %s: accepted per arm %s\n" p.Core.Flow.policy_name
              (if active = [] then "(none)"
               else
                 String.concat ", "
                   (List.map
                      (fun (a : Core.Flow.arm_stat) ->
                        Printf.sprintf "%d:%d" a.Core.Flow.arm a.Core.Flow.accepted)
                      active))
        | None -> ());
        if Array.length r.Core.Flow.pool > 1 then begin
          Printf.printf "parallel: %s (wall %.1fs, cpu %.1fs)\n"
            (Errest.Observability.pool_summary r.Core.Flow.pool)
            r.Core.Flow.wall_s r.Core.Flow.runtime_s;
          Format.printf "%a@." Errest.Observability.pp_pool_stats r.Core.Flow.pool
        end;
        Ok a
    | "sasimi" | "su" ->
        let config =
          { (Baselines.Sasimi.default_config ~metric ~threshold) with
            Baselines.Sasimi.seed; eval_rounds }
        in
        let a, r = Baselines.Sasimi.run ~config g in
        Printf.printf "sasimi: %d substitutions, sampled %s = %s\n"
          r.Baselines.Sasimi.applied
          (Errest.Metrics.kind_to_string metric)
          (format_metric_value metric r.Baselines.Sasimi.final_est_error);
        Ok a
    | "mcmc" | "liu" ->
        let config =
          { (Baselines.Mcmc.default_config ~metric ~threshold) with
            Baselines.Mcmc.seed; eval_rounds }
        in
        let a, r = Baselines.Mcmc.run ~config g in
        Printf.printf "mcmc: %d/%d proposals accepted, sampled %s = %s\n"
          r.Baselines.Mcmc.accepted r.Baselines.Mcmc.proposals_tried
          (Errest.Metrics.kind_to_string metric)
          (format_metric_value metric r.Baselines.Mcmc.final_est_error);
        Ok a
    | m -> Error (`Msg (Printf.sprintf "unknown method %s (alsrac|sasimi|mcmc)" m))
  in
  let runtime = Sys.time () -. t0 in
  Printf.printf "ands: %d -> %d (ratio %.2f%%), runtime %.1fs\n"
    (Aig.Graph.num_ands original) (Aig.Graph.num_ands approx)
    (100.0 *. float_of_int (Aig.Graph.num_ands approx)
    /. float_of_int (max 1 (Aig.Graph.num_ands original)))
    runtime;
  let exact =
    measure_under distr metric ~original ~approx ~sample:(1 lsl 17)
  in
  Printf.printf "measured %s = %s\n"
    (Errest.Metrics.kind_to_string metric)
    (format_metric_value metric exact);
  (match mapping with
  | `None -> ()
  | `Asic ->
      let m0 = Techmap.Cellmap.run original and m1 = Techmap.Cellmap.run approx in
      Printf.printf "asic area ratio: %.2f%%  delay ratio: %.2f%%\n"
        (100.0 *. Techmap.Mapped.area m1 /. Float.max 1.0 (Techmap.Mapped.area m0))
        (100.0 *. Techmap.Mapped.delay m1 /. Float.max 0.001 (Techmap.Mapped.delay m0))
  | `Fpga ->
      let m0 = Techmap.Lutmap.run original and m1 = Techmap.Lutmap.run approx in
      Printf.printf "fpga LUT ratio: %.2f%%  depth ratio: %.2f%%\n"
        (100.0
        *. float_of_int (Techmap.Mapped.num_cells m1)
        /. float_of_int (max 1 (Techmap.Mapped.num_cells m0)))
        (100.0
        *. float_of_int (Techmap.Mapped.depth m1)
        /. float_of_int (max 1 (Techmap.Mapped.depth m0))));
  match output with Some path -> save path approx | None -> Ok ()

(* ---------- cec ---------- *)

let cec_cmd a_spec b_spec seed rounds effort =
  let* a = load a_spec in
  let* b = load b_spec in
  let* () =
    if Aig.Graph.num_pis a <> Aig.Graph.num_pis b then
      Error
        (`Msg
           (Printf.sprintf "PI count mismatch: %s has %d, %s has %d" a_spec
              (Aig.Graph.num_pis a) b_spec (Aig.Graph.num_pis b)))
    else if Aig.Graph.num_pos a <> Aig.Graph.num_pos b then
      Error
        (`Msg
           (Printf.sprintf "PO count mismatch: %s has %d, %s has %d" a_spec
              (Aig.Graph.num_pos a) b_spec (Aig.Graph.num_pos b)))
    else Ok ()
  in
  match Verify.Cec.run ~seed ~rounds ~effort a b with
  | Verify.Cec.Equivalent ->
      Printf.printf "equivalent\n";
      Ok ()
  | Verify.Cec.Inequivalent cex ->
      Printf.printf "inequivalent: output %d (%s) is %b in %s, %b in %s\n"
        cex.Verify.Cec.po
        (Aig.Graph.po_name a cex.Verify.Cec.po)
        cex.Verify.Cec.value_a a_spec cex.Verify.Cec.value_b b_spec;
      Printf.printf "counterexample (PI order):\n";
      Array.iteri
        (fun i v ->
          Printf.printf "  %s = %d\n" (Aig.Graph.pi_name a i) (if v then 1 else 0))
        cex.Verify.Cec.inputs;
      Error (`Msg "circuits are not equivalent")
  | Verify.Cec.Undecided msg -> Error (`Msg ("undecided: " ^ msg))

(* ---------- map ---------- *)

let map_cmd spec target output =
  let* g = load spec in
  let m =
    match target with
    | `Asic -> Techmap.Cellmap.run g
    | `Fpga | `None -> Techmap.Lutmap.run g
  in
  Printf.printf "%s\n" (Format.asprintf "%a" Techmap.Mapped.pp_stats m);
  match output with
  | None -> Ok ()
  | Some path ->
      if Filename.check_suffix path ".blif" then Ok (Circuit_io.Blif.write_mapped path m)
      else if Filename.check_suffix path ".v" then
        Ok (Circuit_io.Verilog.write_mapped path m)
      else Error (`Msg "mapped output must be .blif or .v")

(* ---------- explore ---------- *)

let explore_cmd dir benchmarks ladder policy seed eval_rounds max_iters shards shard_id
    jobs quiet distr =
  let* ladders =
    match Explore.Ladder.parse ladder with Ok l -> Ok l | Error e -> Error (`Msg e)
  in
  let* policy = parse_policy policy in
  let* distr = parse_distr distr in
  let spec =
    {
      Explore.Sweep.dir;
      benchmarks =
        String.split_on_char ',' benchmarks
        |> List.map String.trim
        |> List.filter (fun b -> b <> "");
      ladders;
      policy;
      seed;
      eval_rounds;
      max_iters;
      shards;
      shard_id;
      jobs;
      distr;
    }
  in
  let log = if quiet then fun _ -> () else print_endline in
  match Explore.Sweep.run ~log spec with
  | Error e -> Error (`Msg e)
  | Ok p ->
      let m = p.Explore.Sweep.manifest in
      Printf.printf
        "explore: %d/%d points complete (%d ran here, %d found done; shard %d/%d owns \
         %d)\n"
        (p.Explore.Sweep.already_done + p.Explore.Sweep.ran)
        p.Explore.Sweep.total p.Explore.Sweep.ran p.Explore.Sweep.already_done shard_id
        shards p.Explore.Sweep.owned;
      List.iter
        (fun (l : Explore.Ladder.t) ->
          List.iter
            (fun bench ->
              Printf.printf "front: %s\n"
                (Explore.Store.front_path dir ~bench ~metric:l.Explore.Ladder.metric))
            m.Explore.Store.benchmarks;
          Printf.printf "front: %s\n"
            (Explore.Store.corpus_front_path dir ~metric:l.Explore.Ladder.metric))
        m.Explore.Store.ladders;
      Ok ()

(* ---------- serve / client ---------- *)

let serve_cmd socket state_dir jobs max_queue max_resident_mb deadline
    read_timeout max_sessions fault_spec log =
  failure_to_msg @@ fun () ->
  let fault = Core.Fault.plan_of_string fault_spec in
  Serve.Daemon.run
    {
      Serve.Daemon.socket;
      state_dir;
      jobs;
      max_queue;
      max_resident_mb;
      default_deadline_s = deadline;
      read_timeout_s = read_timeout;
      max_sessions;
      fault;
      log;
    };
  Ok ()

(* Transport failures are operational errors (daemon down, timeout), not
   bugs: surface them as CLI messages. *)
let transport_to_msg f =
  try f () with
  | Serve.Transport.Closed -> Error (`Msg "connection closed by daemon")
  | Serve.Transport.Timeout -> Error (`Msg "timed out waiting for the daemon")
  | Serve.Transport.Malformed m -> Error (`Msg ("malformed reply: " ^ m))
  | Unix.Unix_error (e, _, _) -> Error (`Msg (Unix.error_message e))

let print_ok_kvs kvs = List.iter (fun (k, v) -> Printf.printf "%s %s\n" k v) kvs

let response_to_result resp =
  match resp with
  | Serve.Protocol.Ok (kvs, _) ->
      print_ok_kvs kvs;
      Ok resp
  | Serve.Protocol.Err { code; detail; retry_after_s } ->
      Error
        (`Msg
           (Printf.sprintf "%s: %s%s"
              (Serve.Protocol.code_to_string code)
              detail
              (match retry_after_s with
              | Some r -> Printf.sprintf " (retry after %.1fs)" r
              | None -> "")))

let client_cmd socket verb session circuit metric threshold seed eval_rounds
    max_iters deadline priority output =
  let* metric = parse_metric metric in
  let need what = function
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "%s requires %s" verb what))
  in
  transport_to_msg @@ fun () ->
  let conn = Serve.Client.connect ~path:socket () in
  Fun.protect ~finally:(fun () -> Serve.Client.close conn) @@ fun () ->
  match verb with
  | "ping" ->
      if Serve.Client.ping conn then begin
        print_endline "pong";
        Ok ()
      end
      else Error (`Msg "daemon did not answer the ping")
  | "load" ->
      let* s = need "SESSION" session in
      let* c = need "CIRCUIT" circuit in
      (* A file ships its AIGER bytes; anything else names a daemon-side
         benchmark. *)
      let* circuit, graph =
        if Sys.file_exists c then
          let* g = load c in
          Ok ("-", Some (Circuit_io.Aiger.graph_to_string g))
        else Ok (c, None)
      in
      let* _ =
        response_to_result
          (Serve.Client.load conn ~session:s ~circuit ?graph ~priority ())
      in
      Ok ()
  | "approx" ->
      let* s = need "SESSION" session in
      let params =
        {
          Serve.Protocol.metric;
          threshold;
          seed;
          eval_rounds;
          max_iters;
        }
      in
      let* _ =
        response_to_result
          (Serve.Client.request_retry conn
             (Serve.Protocol.Approx
                { session = s; params; deadline_s = deadline }))
      in
      Ok ()
  | "metrics" ->
      let* s = need "SESSION" session in
      let* _ = response_to_result (Serve.Client.metrics conn ~session:s ~metric) in
      Ok ()
  | "cec" ->
      let* s = need "SESSION" session in
      let* _ = response_to_result (Serve.Client.cec conn ~session:s) in
      Ok ()
  | "get" ->
      let* s = need "SESSION" session in
      let* resp = response_to_result (Serve.Client.get conn ~session:s) in
      let* bytes =
        match resp with
        | Serve.Protocol.Ok (_, Some bytes) -> Ok bytes
        | _ -> Error (`Msg "daemon reply carried no circuit")
      in
      (match output with
      | Some path ->
          let* g = failure_to_msg (fun () -> Ok (Circuit_io.Aiger.parse bytes)) in
          save path g
      | None ->
          print_string bytes;
          Ok ())
  | "status" ->
      let* _ = response_to_result (Serve.Client.status conn) in
      Ok ()
  | "evict" ->
      let* s = need "SESSION" session in
      let* _ = response_to_result (Serve.Client.evict conn ~session:s) in
      Ok ()
  | "shutdown" ->
      let* _ = response_to_result (Serve.Client.shutdown conn) in
      Ok ()
  | v ->
      Error
        (`Msg
           (Printf.sprintf
              "unknown verb %s (ping|load|approx|metrics|cec|get|status|evict|shutdown)"
              v))

(* ---------- Cmdliner plumbing ---------- *)

open Cmdliner

let circuit_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT"
         ~doc:"Benchmark name (see $(b,alsrac list)) or a .blif/.bench/.aag file.")

let output_opt =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write the resulting circuit (.blif, .bench, .aag, .v, .dot).")

let metric_arg =
  Arg.(value & opt string "er" & info [ "m"; "metric" ] ~docv:"METRIC"
         ~doc:"Error metric: er (error rate), med/nmed (mean/normalized mean \
               error distance), mred (mean relative error distance), mse \
               (mean squared error), mhd/nmhd (mean/normalized mean Hamming \
               distance), or the worst-case metrics maxed, maxhd, maxred \
               (certified exactly by the error-computation miter).")

let distr_arg =
  Arg.(value & opt string "unif" & info [ "distr" ] ~docv:"DIST"
         ~doc:"Input distribution of the error measurement (ResubALS \
               --distrType): $(b,unif) for uniform inputs, or a pattern file \
               of `bits weight' lines (one input assignment per line, leftmost \
               bit = first PI) for an enumerated weighted distribution.  Under \
               an enumerated distribution the error is computed exactly over \
               the listed support — no sampling bound is involved.")

let mapping_arg =
  Arg.(value & opt (enum [ ("none", `None); ("asic", `Asic); ("fpga", `Fpga) ]) `None
       & info [ "map" ] ~docv:"TARGET" ~doc:"Also report mapped results (asic or fpga).")

let exits_of_result = function
  | Ok () -> 0
  | Error (`Msg m) ->
      prerr_endline ("alsrac: " ^ m);
      1

let wrap f = Term.(const (fun x -> exits_of_result (f x)))

let list_term = Term.(const (fun () -> exits_of_result (list_cmd ())) $ const ())
let list_cmd' = Cmd.v (Cmd.info "list" ~doc:"List the built-in benchmark suite") list_term

let gen_term =
  Term.(
    const (fun name output -> exits_of_result (gen_cmd name output))
    $ circuit_arg
    $ Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Output file (.blif, .bench, .v, .dot)."))

let gen_cmd' = Cmd.v (Cmd.info "gen" ~doc:"Emit a benchmark circuit to a file") gen_term

let stats_term =
  Term.(
    const (fun spec mapping -> exits_of_result (stats_cmd spec mapping))
    $ circuit_arg $ mapping_arg)

let stats_cmd' = Cmd.v (Cmd.info "stats" ~doc:"Print circuit statistics") stats_term

let opt_term =
  Term.(
    const (fun spec fraig exact_resub output ->
        exits_of_result (opt_cmd spec fraig exact_resub output))
    $ circuit_arg
    $ Arg.(value & flag & info [ "fraig" ]
             ~doc:"Also run simulation-guided exact equivalence merging.")
    $ Arg.(value & flag & info [ "exact-resub" ]
             ~doc:"Append the simulation-guided exact resubstitution pass to \
                   the pipeline: signature-filtered divisors, k-resub (k <= 3) \
                   with simulation don't-cares, every committed substitution \
                   proven equivalent by the CEC portfolio.")
    $ output_opt)

let opt_cmd' =
  Cmd.v (Cmd.info "opt" ~doc:"Exact logic optimization (compress2)") opt_term

let eval_term =
  Term.(
    const (fun original approx metric sample distr ->
        exits_of_result (eval_cmd original approx metric sample distr))
    $ Arg.(required & pos 0 (some string) None & info [] ~docv:"ORIGINAL")
    $ Arg.(required & pos 1 (some string) None & info [] ~docv:"APPROX")
    $ metric_arg
    $ Arg.(value & opt int (1 lsl 17) & info [ "sample" ] ~docv:"N"
             ~doc:"Monte-Carlo rounds when exhaustive evaluation is infeasible.")
    $ distr_arg)

let eval_cmd' =
  Cmd.v (Cmd.info "eval" ~doc:"Measure the error between two circuits") eval_term

let policy_arg =
  Arg.(value & opt string "greedy" & info [ "policy" ] ~docv:"POLICY"
         ~doc:"Candidate-selection policy: greedy (smallest error first, the \
               paper's order) or bandit (UCB1 over transform-family x \
               node-depth arms, learning which candidate kinds pay off).  \
               Deterministic either way; the bandit's state is journaled, so \
               killed runs resume to the identical result.")

let approx_term =
  Term.(
    const
      (fun spec metric threshold method_ seed eval_rounds mapping output journal resume
           guard certify exact_resub jobs policy distr max_error ->
        exits_of_result
          (approx_cmd spec metric threshold method_ seed eval_rounds mapping output
             journal resume guard certify exact_resub jobs policy distr max_error))
    $ circuit_arg $ metric_arg
    $ Arg.(value & opt float 0.01 & info [ "t"; "threshold" ] ~docv:"E"
             ~doc:"Error threshold (fraction, e.g. 0.01 for 1%).")
    $ Arg.(value & opt string "alsrac" & info [ "method" ] ~docv:"M"
             ~doc:"Synthesis method: alsrac, sasimi (Su's) or mcmc (Liu's).")
    $ Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.")
    $ Arg.(value & opt int 4096 & info [ "eval-rounds" ] ~docv:"N"
             ~doc:"Evaluation sample size during synthesis.")
    $ mapping_arg $ output_opt
    $ Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"DIR"
             ~doc:"Checkpoint the run into $(docv) after every accepted change, \
                   so it can be resumed with $(b,--resume) after a crash.")
    $ Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"DIR"
             ~doc:"Resume an interrupted journaled run from $(docv).  The \
                   journal's recorded configuration (metric, threshold, seed, ...) \
                   supersedes the command line; the seeded RNG makes the resumed \
                   run finish with the exact circuit of an uninterrupted one.")
    $ Arg.(value & opt bool true & info [ "guard" ] ~docv:"BOOL"
             ~doc:"Guarded transforms: verify structural invariants and \
                   signature consistency after every accepted change, rolling \
                   back and quarantining on violation (default on).")
    $ Arg.(value & flag & info [ "certify-exact" ]
             ~doc:"Machine-check the run's trust assumptions: miter-check every \
                   exact transform application with the verification subsystem \
                   and re-simulate every accepted change's error on independent \
                   patterns, reporting the verdicts.  Observational: never \
                   changes the result circuit.")
    $ Arg.(value & flag & info [ "exact-resub" ]
             ~doc:"Append the simulation-guided exact resubstitution pass to \
                   every inter-iteration and final compress2: k-resub (k <= 3) \
                   over signature-filtered divisors with simulation \
                   don't-cares, every committed substitution proven \
                   equivalent by the CEC portfolio — the flow's error \
                   accounting is untouched.")
    $ Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker-pool size for simulation and candidate scoring: 1 \
                   (default) is fully sequential, 0 detects the core count, \
                   N > 1 spawns N-1 worker domains.  Results are bit-identical \
                   at every setting, so $(docv) may also differ between a \
                   journaled run and its $(b,--resume).")
    $ policy_arg
    $ distr_arg
    $ Arg.(value & opt (some float) None & info [ "max-error" ] ~docv:"E"
             ~doc:"Worst-case constraint sugar: synthesize under a maximum \
                   error budget of $(docv), i.e. set the threshold to $(docv) \
                   and the metric to maxed — unless $(b,--metric) already \
                   names a worst-case metric (maxhd, maxred), which is kept.  \
                   Under the uniform distribution the final bound is proven \
                   by the error-computation miter, not sampled."))

let approx_cmd' =
  Cmd.v (Cmd.info "approx" ~doc:"Approximate logic synthesis under an error constraint")
    approx_term

let cec_term =
  Term.(
    const (fun a b seed rounds effort -> exits_of_result (cec_cmd a b seed rounds effort))
    $ Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT_A"
             ~doc:"Benchmark name or circuit file.")
    $ Arg.(required & pos 1 (some string) None & info [] ~docv:"CIRCUIT_B"
             ~doc:"Benchmark name or circuit file with the same PI/PO interface.")
    $ Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S"
             ~doc:"PRNG seed for the refutation patterns (the verdict is \
                   deterministic in the seed).")
    $ Arg.(value & opt int 1024 & info [ "rounds" ] ~docv:"N"
             ~doc:"Random refutation rounds before the proof portfolio runs.")
    $ Arg.(value
           & opt (enum [ ("fast", Verify.Cec.Fast); ("thorough", Verify.Cec.Thorough) ])
               Verify.Cec.Thorough
           & info [ "effort" ] ~docv:"LEVEL"
               ~doc:"Proof effort: fast (bounded, as used in-flow) or thorough."))

let cec_cmd' =
  Cmd.v
    (Cmd.info "cec"
       ~doc:"Combinational equivalence check (miter-based, simulation-only; exit \
             status 0 only on a proven-equivalent verdict)")
    cec_term

let map_term =
  Term.(
    const (fun spec target output -> exits_of_result (map_cmd spec target output))
    $ circuit_arg $ mapping_arg $ output_opt)

let map_cmd' = Cmd.v (Cmd.info "map" ~doc:"Technology mapping (LUT or standard cells)") map_term

let explore_term =
  Term.(
    const
      (fun dir benchmarks ladder policy seed eval_rounds max_iters shards shard_id jobs
           quiet distr ->
        exits_of_result
          (explore_cmd dir benchmarks ladder policy seed eval_rounds max_iters shards
             shard_id jobs quiet distr))
    $ Arg.(required & opt (some string) None & info [ "d"; "dir" ] ~docv:"DIR"
             ~doc:"Sweep directory: manifest, per-point results and Pareto front \
                   files live here.  Restarting onto an existing directory \
                   resumes it (the stored manifest supersedes the command \
                   line); completed points are never re-run.")
    $ Arg.(value & opt string "c880,cavlc,ctrl,int2float" & info [ "benchmarks" ]
             ~docv:"NAMES"
             ~doc:"Comma-separated benchmark names (see $(b,alsrac list)).")
    $ Arg.(value & opt string "default" & info [ "ladder" ] ~docv:"SPEC"
             ~doc:"Error-budget ladders: semicolon-separated metric=b1,b2,... \
                   groups, e.g. $(b,er=0.01,0.03;nmed=0.001), or $(b,default) \
                   for the paper-shaped ER/NMED/MRED sweep.")
    $ policy_arg
    $ Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S"
             ~doc:"Base PRNG seed; point $(i,i) runs the flow with seed S+i.")
    $ Arg.(value & opt int 4096 & info [ "eval-rounds" ] ~docv:"N"
             ~doc:"Evaluation sample size per flow.")
    $ Arg.(value & opt int 10000 & info [ "max-iters" ] ~docv:"N"
             ~doc:"Per-point cap on accepted changes.")
    $ Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N"
             ~doc:"Total shards splitting the corpus: shard $(i,s) owns the \
                   points with index = s mod N.  Ownership depends only on the \
                   canonical point index, so any combination of shard runs \
                   over a shared directory converges to byte-identical \
                   fronts.")
    $ Arg.(value & opt int 0 & info [ "shard-id" ] ~docv:"I"
             ~doc:"This process's shard index (0-based).")
    $ Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Concurrent points in this process (0 detects the core \
                   count).  Each point's flow is sequential, so results do \
                   not depend on $(docv).")
    $ Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress per-point progress lines.")
    $ distr_arg)

let explore_cmd' =
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Corpus-scale Pareto exploration: run the approximation flow over \
             benchmark x metric x error-budget points, maintaining anytime \
             area/delay-vs-error Pareto fronts on disk.  Crash-resumable \
             (completed points persist atomically) and shardable across \
             processes; final front files are byte-identical at any \
             --shards/--jobs setting, including across kill and resume")
    explore_term

let socket_arg =
  Arg.(value & opt string "/tmp/alsrac.sock" & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket the daemon listens on.")

let serve_term =
  Term.(
    const
      (fun socket state_dir jobs max_queue max_resident_mb deadline read_timeout
           max_sessions fault_spec log ->
        exits_of_result
          (serve_cmd socket state_dir jobs max_queue max_resident_mb deadline
             read_timeout max_sessions fault_spec log))
    $ socket_arg
    $ Arg.(value & opt string "/tmp/alsrac-state" & info [ "state-dir" ] ~docv:"DIR"
             ~doc:"Session persistence root; sessions found here are resumed \
                   (including interrupted approximations) before the socket opens.")
    $ Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Resident worker-pool size shared by all requests (0 detects \
                   the core count).")
    $ Arg.(value & opt int 32 & info [ "max-queue" ] ~docv:"N"
             ~doc:"Bound on queued requests; overflow is answered with an \
                   overloaded error and a retry-after hint.")
    $ Arg.(value & opt int 512 & info [ "max-resident-mb" ] ~docv:"MB"
             ~doc:"Resident-memory high watermark; past it the coldest idle \
                   sessions are evicted until usage drops to 3/4 of the bound.")
    $ Arg.(value & opt float 30.0 & info [ "deadline" ] ~docv:"S"
             ~doc:"Default per-request deadline; a timed-out approximation is \
                   rolled back to its last checkpoint and reported as a \
                   structured timeout.")
    $ Arg.(value & opt float 30.0 & info [ "read-timeout" ] ~docv:"S"
             ~doc:"Per-connection frame-read deadline.")
    $ Arg.(value & opt int 64 & info [ "max-sessions" ] ~docv:"N"
             ~doc:"Bound on resident sessions.")
    $ Arg.(value & opt string "" & info [ "fault-spec" ] ~docv:"SPEC"
             ~doc:"Deterministic fault injection for resilience testing, e.g. \
                   $(b,short-read\\@2,raise\\@3); see Core.Fault.")
    $ Arg.(value & flag & info [ "log" ] ~doc:"Log daemon events to stderr."))

let serve_cmd' =
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the resident ALS daemon: named sessions keep circuits, fanout \
             and simulation state warm across requests, with per-request \
             deadlines, bounded-queue backpressure and crash-resumable \
             journaled state")
    serve_term

let client_term =
  Term.(
    const
      (fun socket verb session circuit metric threshold seed eval_rounds
           max_iters deadline priority output ->
        exits_of_result
          (client_cmd socket verb session circuit metric threshold seed
             eval_rounds max_iters deadline priority output))
    $ socket_arg
    $ Arg.(required & pos 0 (some string) None & info [] ~docv:"VERB"
             ~doc:"One of: ping, load, approx, metrics, cec, get, status, \
                   evict, shutdown.")
    $ Arg.(value & pos 1 (some string) None & info [] ~docv:"SESSION"
             ~doc:"Session name (most verbs).")
    $ Arg.(value & pos 2 (some string) None & info [] ~docv:"CIRCUIT"
             ~doc:"For $(b,load): benchmark name, or a circuit file whose \
                   contents are shipped to the daemon.")
    $ metric_arg
    $ Arg.(value & opt float 0.01 & info [ "t"; "threshold" ] ~docv:"E"
             ~doc:"Error threshold for $(b,approx).")
    $ Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed for $(b,approx).")
    $ Arg.(value & opt int 4096 & info [ "eval-rounds" ] ~docv:"N"
             ~doc:"Evaluation sample size for $(b,approx).")
    $ Arg.(value & opt int 1000 & info [ "max-iters" ] ~docv:"N"
             ~doc:"Cap on accepted changes for $(b,approx).")
    $ Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"S"
             ~doc:"Per-request deadline override for $(b,approx).")
    $ Arg.(value & opt int 0 & info [ "priority" ] ~docv:"P"
             ~doc:"Session priority for $(b,load): under overload, lower \
                   priorities are shed first.")
    $ output_opt)

let client_cmd'' =
  Cmd.v
    (Cmd.info "client"
       ~doc:"Talk to a running $(b,alsrac serve) daemon (warm requests: the \
             daemon keeps circuits and simulation state resident)")
    client_term

let default =
  Term.(ret (const (`Help (`Pager, None))))

let () =
  ignore wrap;
  let info =
    Cmd.info "alsrac" ~version:"1.0.0"
      ~doc:"Approximate logic synthesis by resubstitution with approximate care sets"
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [ list_cmd'; gen_cmd'; stats_cmd'; opt_cmd'; eval_cmd'; approx_cmd'; map_cmd';
            explore_cmd'; cec_cmd'; serve_cmd'; client_cmd'' ]))
