(* Faithful replication of the pre-refactor [Aig.Graph] / [Aig.Fanout] /
   [Sim.Fraig] hot paths, kept here so `bench/main.exe core` can measure the
   struct-of-arrays core against the exact code it replaced:

   - strash as a tuple-keyed [Hashtbl] — every [and_] probe allocates the
     boxed [(a, b)] key and runs the generic hasher;
   - node-indexed arrays grown independently, one bounds check + grow test
     per array per append;
   - [rebuild] allocating a fresh graph, a fresh mapping array and a fresh
     strash table on every call;
   - fanout CSR and levels rebuilt from scratch on every request (no
     revision-stamped view cache);
   - fraig candidate classes keyed by [Bitvec.to_string] of the
     phase-canonical signature (allocates the complement vector and an
     O(rounds) string per node).

   This is benchmark scaffolding, not a supported API. *)

type lit = int

let const0 = 0
let const1 = 1
let make_lit id compl = (id * 2) + if compl then 1 else 0
let node_of l = l lsr 1
let is_compl l = l land 1 = 1
let lit_not l = l lxor 1
let lit_not_cond l c = if c then l lxor 1 else l
let pi_sentinel = -1

type t = {
  mutable fanin0 : int array;
  mutable fanin1 : int array;
  mutable nnodes : int;
  mutable pis : int array;
  mutable npis : int;
  mutable pi_names : string array;
  mutable pos : int array;
  mutable npos : int;
  mutable po_names : string array;
  strash : (int * int, int) Hashtbl.t;
  mutable pi_pos : int array;
  mutable rev : int;
}

let create () =
  let cap = 64 in
  {
    fanin0 = Array.make cap pi_sentinel;
    fanin1 = Array.make cap pi_sentinel;
    nnodes = 1;
    pis = Array.make 8 0;
    npis = 0;
    pi_names = Array.make 8 "";
    pos = Array.make 8 0;
    npos = 0;
    po_names = Array.make 8 "";
    strash = Hashtbl.create 1024;
    pi_pos = Array.make cap (-1);
    rev = 0;
  }

let grow_int arr len fill =
  if len < Array.length arr then arr
  else begin
    let arr' = Array.make (max (2 * Array.length arr) (len + 1)) fill in
    Array.blit arr 0 arr' 0 (Array.length arr);
    arr'
  end

let new_node g f0 f1 =
  let id = g.nnodes in
  g.fanin0 <- grow_int g.fanin0 id pi_sentinel;
  g.fanin1 <- grow_int g.fanin1 id pi_sentinel;
  g.pi_pos <- grow_int g.pi_pos id (-1);
  g.fanin0.(id) <- f0;
  g.fanin1.(id) <- f1;
  g.pi_pos.(id) <- -1;
  g.nnodes <- id + 1;
  g.rev <- g.rev + 1;
  id

let grow_str arr len =
  if len < Array.length arr then arr
  else begin
    let arr' = Array.make (max (2 * Array.length arr) (len + 1)) "" in
    Array.blit arr 0 arr' 0 (Array.length arr);
    arr'
  end

let add_pi ?name g =
  let id = new_node g pi_sentinel pi_sentinel in
  let idx = g.npis in
  g.pis <- grow_int g.pis idx 0;
  g.pi_names <- grow_str g.pi_names idx;
  g.pis.(idx) <- id;
  g.pi_names.(idx) <- (match name with Some n -> n | None -> Printf.sprintf "x%d" idx);
  g.npis <- idx + 1;
  g.pi_pos.(id) <- idx;
  make_lit id false

let and_ g a b =
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = const0 then const0
  else if a = const1 then b
  else if a = b then a
  else if a = lit_not b then const0
  else
    match Hashtbl.find_opt g.strash (a, b) with
    | Some id -> make_lit id false
    | None ->
        let id = new_node g a b in
        Hashtbl.add g.strash (a, b) id;
        make_lit id false

let add_po ?name g l =
  let idx = g.npos in
  g.pos <- grow_int g.pos idx 0;
  g.po_names <- grow_str g.po_names idx;
  g.pos.(idx) <- l;
  g.po_names.(idx) <- (match name with Some n -> n | None -> Printf.sprintf "y%d" idx);
  g.npos <- idx + 1;
  g.rev <- g.rev + 1;
  idx

let num_nodes g = g.nnodes
let num_ands g = g.nnodes - 1 - g.npis
let is_and g id = g.fanin0.(id) <> pi_sentinel

let iter_ands g f =
  for id = 1 to g.nnodes - 1 do
    if g.fanin0.(id) <> pi_sentinel then f id
  done

(* Allocating rebuild, exactly as the old [Graph.rebuild]: fresh graph,
   fresh mapping, fresh strash table, every call. *)
let rebuild g =
  let fresh = create () in
  let mapping = Array.make g.nnodes (-2) in
  mapping.(0) <- const0;
  for i = 0 to g.npis - 1 do
    mapping.(g.pis.(i)) <- add_pi ~name:g.pi_names.(i) fresh
  done;
  let rec copy_lit l = lit_not_cond (copy_node (node_of l)) (is_compl l)
  and copy_node id =
    match mapping.(id) with
    | -3 -> failwith "legacy rebuild: cycle"
    | -2 ->
        mapping.(id) <- -3;
        let result = and_ fresh (copy_lit g.fanin0.(id)) (copy_lit g.fanin1.(id)) in
        mapping.(id) <- result;
        result
    | l -> l
  in
  for i = 0 to g.npos - 1 do
    ignore (add_po ~name:g.po_names.(i) fresh (copy_lit g.pos.(i)))
  done;
  fresh

(* Standalone two-pass CSR fanout build, as the old [Aig.Fanout.build]. *)
let fanout_build g =
  let n = num_nodes g in
  let offsets = Array.make (n + 1) 0 in
  let po_offsets = Array.make (n + 1) 0 in
  iter_ands g (fun id ->
      let n0 = node_of g.fanin0.(id) in
      let n1 = node_of g.fanin1.(id) in
      offsets.(n0) <- offsets.(n0) + 1;
      if n1 <> n0 then offsets.(n1) <- offsets.(n1) + 1);
  for i = 0 to g.npos - 1 do
    let d = node_of g.pos.(i) in
    po_offsets.(d) <- po_offsets.(d) + 1
  done;
  let acc = ref 0 in
  for v = 0 to n do
    let c = offsets.(v) in
    offsets.(v) <- !acc;
    acc := !acc + c
  done;
  let targets = Array.make !acc 0 in
  let pacc = ref 0 in
  for v = 0 to n do
    let c = po_offsets.(v) in
    po_offsets.(v) <- !pacc;
    pacc := !pacc + c
  done;
  let po_targets = Array.make !pacc 0 in
  let cursor = Array.copy offsets in
  iter_ands g (fun id ->
      let n0 = node_of g.fanin0.(id) in
      let n1 = node_of g.fanin1.(id) in
      targets.(cursor.(n0)) <- id;
      cursor.(n0) <- cursor.(n0) + 1;
      if n1 <> n0 then begin
        targets.(cursor.(n1)) <- id;
        cursor.(n1) <- cursor.(n1) + 1
      end);
  let po_cursor = Array.copy po_offsets in
  for i = 0 to g.npos - 1 do
    let d = node_of g.pos.(i) in
    po_targets.(po_cursor.(d)) <- i;
    po_cursor.(d) <- po_cursor.(d) + 1
  done;
  (offsets, targets, po_offsets, po_targets)

(* Per-call level computation, as the old [Aig.Topo.levels]. *)
let levels g =
  let lv = Array.make (num_nodes g) 0 in
  iter_ands g (fun id ->
      lv.(id) <- 1 + max lv.(node_of g.fanin0.(id)) lv.(node_of g.fanin1.(id)));
  lv

(* The old string-keyed fraig classification: phase-canonical signature via a
   materialized complement, [Bitvec.to_string] as the class key.  Returns the
   number of classes with at least two members (the work the exact-equality
   prover would see). *)
let classify_string ~(sigs : Logic.Bitvec.t array) ~(ids : int array) ~rounds =
  let classes : (string, (int * bool) list ref) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun id ->
      let s = sigs.(id) in
      let phase = rounds > 0 && Logic.Bitvec.get s 0 in
      let canon = if phase then Logic.Bitvec.lognot s else s in
      let key = Logic.Bitvec.to_string canon in
      match Hashtbl.find_opt classes key with
      | Some l -> l := (id, phase) :: !l
      | None -> Hashtbl.add classes key (ref [ (id, phase) ]))
    ids;
  Hashtbl.fold
    (fun _ members acc -> if List.length !members >= 2 then acc + 1 else acc)
    classes 0
