(* Benchmark harness: regenerates every table of the paper's evaluation
   section (Tables III-VII) on the reconstructed benchmark suite, plus
   bechamel microbenchmarks of the engine kernels and the ablations called
   out in DESIGN.md.

     dune exec bench/main.exe -- [table3|table4|table5|table6|table7|micro|all]

   Default parameters are scaled for a laptop run: a subset of each
   threshold sweep and one seed per configuration.  Set ALSRAC_BENCH_FULL=1
   for the paper's full sweeps averaged over three seeds.  Every run is
   deterministic given the seed set. *)

module Graph = Aig.Graph
module Metrics = Errest.Metrics

let full_mode =
  match Sys.getenv_opt "ALSRAC_BENCH_FULL" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let seeds = if full_mode then [ 1; 2; 3 ] else [ 1 ]

(* ALSRAC_BENCH_JOBS=<n> fans independent sweep points (threshold x seed
   runs) across a worker pool; every run itself stays sequential
   (config.jobs = 1), so per-run results are identical to a serial bench. *)
let bench_jobs =
  match Sys.getenv_opt "ALSRAC_BENCH_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 0 -> n | _ -> 1)
  | None -> 1

let wall () = Parallel.Clock.now_s ()

let er_thresholds =
  (* Paper: 0.1%, 0.3%, 0.5%, 0.8%, 1%, 3%, 5%. *)
  if full_mode then [ 0.001; 0.003; 0.005; 0.008; 0.01; 0.03; 0.05 ]
  else [ 0.001; 0.01; 0.05 ]

let nmed_thresholds =
  (* Paper: 0.00153% ... 0.19531% (eight doublings). *)
  if full_mode then
    [ 0.0000153; 0.0000305; 0.0000610; 0.0001221; 0.0002441; 0.0004883;
      0.0009766; 0.0019531 ]
  else [ 0.0000153; 0.0002441; 0.0019531 ]

let eval_rounds = if full_mode then 8192 else 2048

(* Per-run wall-clock budget in scaled mode; full mode runs to convergence
   (the paper's own runtimes for the large Table VII circuits are hours).
   ALSRAC_BENCH_BUDGET=<seconds> overrides the scaled-mode budget. *)
let max_seconds =
  if full_mode then infinity
  else
    match Sys.getenv_opt "ALSRAC_BENCH_BUDGET" with
    | Some s -> (try float_of_string s with _ -> 150.0)
    | None -> 150.0

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs))

let pct x = 100.0 *. x

(* ---------- Method runners ----------

   Each returns (approximate AIG, CPU seconds).  Wall-clock time is measured
   around the call by the sweep: [runtime_s] is CPU time, and once runs
   share the process with a worker pool the two diverge — speedups are only
   visible on the wall axis. *)

let run_alsrac ~metric ~threshold ~seed g =
  let config =
    { (Core.Config.default ~metric ~threshold) with
      Core.Config.eval_rounds; seed; max_seconds }
  in
  let approx, report = Core.Flow.run ~config g in
  (approx, report.Core.Flow.runtime_s)

let run_sasimi ~metric ~threshold ~seed g =
  let config =
    { (Baselines.Sasimi.default_config ~metric ~threshold) with
      Baselines.Sasimi.eval_rounds; seed; max_seconds }
  in
  let approx, report = Baselines.Sasimi.run ~config g in
  (approx, report.Baselines.Sasimi.runtime_s)

let run_mcmc ~metric ~threshold ~seed g =
  let config =
    { (Baselines.Mcmc.default_config ~metric ~threshold) with
      Baselines.Mcmc.eval_rounds; seed;
      proposals = (if full_mode then 8000 else 3000) }
  in
  let approx, report = Baselines.Mcmc.run ~config g in
  (approx, report.Baselines.Mcmc.runtime_s)

(* ---------- Mapped quality ---------- *)

type mapped_ratios = { area : float; delay : float }

let asic_ratios ~original approx =
  let m0 = Techmap.Cellmap.run original and m1 = Techmap.Cellmap.run approx in
  {
    area = Techmap.Mapped.area m1 /. Float.max 1.0 (Techmap.Mapped.area m0);
    delay = Techmap.Mapped.delay m1 /. Float.max 0.001 (Techmap.Mapped.delay m0);
  }

let fpga_ratios ~original approx =
  let m0 = Techmap.Lutmap.run original and m1 = Techmap.Lutmap.run approx in
  {
    area =
      float_of_int (Techmap.Mapped.num_cells m1)
      /. float_of_int (max 1 (Techmap.Mapped.num_cells m0));
    delay =
      float_of_int (Techmap.Mapped.depth m1)
      /. float_of_int (max 1 (Techmap.Mapped.depth m0));
  }

(* Run [f] with [Some pool] when ALSRAC_BENCH_JOBS asks for one. *)
let with_bench_pool f =
  if bench_jobs > 1 then
    Parallel.Pool.with_pool ~jobs:bench_jobs (fun p -> f (Some p))
  else f None

type sweep_result = {
  s_area : float;
  s_delay : float;
  s_cpu : float;  (** mean CPU seconds per run *)
  s_wall : float;  (** mean wall-clock seconds per run *)
  s_capped : bool;  (** some run hit the scaled-mode budget *)
}

(* Average a method over thresholds x seeds on one circuit.  Every
   (threshold, seed) point is an independent run; with [?pool] the points
   execute concurrently (chunk size 1 — one run per task) and, because each
   run is self-contained and deterministic given its seed, the averaged
   results are identical to the serial bench.  [s_capped] marks sweeps in
   which at least one run hit the budget (reported with a '*' — full mode
   never truncates). *)
let sweep ?pool ~runner ~ratios ~metric ~thresholds entry =
  let g = (entry : Circuits.Suite.entry).Circuits.Suite.build () in
  (* Both methods start from, and are measured against, the exactly
     optimized circuit (the paper pre-optimizes its benchmarks with SIS). *)
  let original = Aig.Resyn.compress2 (Graph.compact g) in
  let g = original in
  let points =
    Array.of_list
      (List.concat_map
         (fun threshold -> List.map (fun seed -> (threshold, seed)) seeds)
         thresholds)
  in
  let runs =
    Parallel.Chunk.map ?pool ~chunk_size:1 ~n:(Array.length points) (fun i ->
        let threshold, seed = points.(i) in
        let w0 = wall () in
        let approx, cpu = runner ~metric ~threshold ~seed g in
        let w = wall () -. w0 in
        let r = ratios ~original approx in
        (r.area, r.delay, cpu, w))
  in
  let runs = Array.to_list runs in
  let col f = mean (List.map f runs) in
  {
    s_area = col (fun (a, _, _, _) -> a);
    s_delay = col (fun (_, d, _, _) -> d);
    s_cpu = col (fun (_, _, c, _) -> c);
    s_wall = col (fun (_, _, _, w) -> w);
    s_capped =
      List.exists (fun (_, _, c, w) -> Float.max c w >= max_seconds -. 1.0) runs;
  }

(* ---------- Table III ---------- *)

let table3 () =
  Printf.printf
    "\n== Table III: benchmark suite (reconstructed; see DESIGN.md section 2) ==\n";
  Printf.printf "%-10s %-22s %6s %6s | %9s %7s | %6s %6s\n" "circuit" "class" "ands"
    "depth" "cell-area" "delay" "LUT6" "Ldep";
  List.iter
    (fun (e : Circuits.Suite.entry) ->
      let g = e.Circuits.Suite.build () in
      let asic = Techmap.Cellmap.run g in
      let fpga = Techmap.Lutmap.run g in
      Printf.printf "%-10s %-22s %6d %6d | %9.1f %7.2f | %6d %6d\n%!"
        e.Circuits.Suite.name
        (Circuits.Suite.klass_to_string e.Circuits.Suite.klass)
        (Graph.num_ands g) (Aig.Topo.depth g) (Techmap.Mapped.area asic)
        (Techmap.Mapped.delay asic)
        (Techmap.Mapped.num_cells fpga)
        (Techmap.Mapped.depth fpga))
    Circuits.Suite.all

(* ---------- Tables IV / V: ALSRAC vs Su on ASIC ---------- *)

let versus_table ~title ~paper_note ~entries ~metric ~thresholds ~ratios
    ~baseline_name ~baseline =
  Printf.printf "\n== %s ==\n(%s)\n" title paper_note;
  Printf.printf "%-10s | %9s %9s | %9s %9s | %8s %8s | %8s %8s\n" "circuit"
    "ALSRAC-a" (baseline_name ^ "-a") "ALSRAC-d" (baseline_name ^ "-d") "cpu-ALS"
    "wall-ALS"
    ("cpu-" ^ baseline_name)
    ("wall-" ^ baseline_name);
  let acc = ref [] in
  with_bench_pool (fun pool ->
      List.iter
        (fun entry ->
          let a = sweep ?pool ~runner:run_alsrac ~ratios ~metric ~thresholds entry in
          let b = sweep ?pool ~runner:baseline ~ratios ~metric ~thresholds entry in
          acc := (a, b) :: !acc;
          Printf.printf
            "%-10s | %8.2f%% %8.2f%% | %8.2f%% %8.2f%% | %6.1fs%s %6.1fs%s | \
             %6.1fs%s %6.1fs%s\n\
             %!"
            entry.Circuits.Suite.name (pct a.s_area) (pct b.s_area)
            (pct a.s_delay) (pct b.s_delay) a.s_cpu
            (if a.s_capped then "*" else " ")
            a.s_wall
            (if a.s_capped then "*" else " ")
            b.s_cpu
            (if b.s_capped then "*" else " ")
            b.s_wall
            (if b.s_capped then "*" else " "))
        entries);
  let col f = mean (List.map f !acc) in
  Printf.printf
    "%-10s | %8.2f%% %8.2f%% | %8.2f%% %8.2f%% | %7.1fs %7.1fs | %7.1fs %7.1fs\n"
    "arithmean"
    (pct (col (fun (a, _) -> a.s_area)))
    (pct (col (fun (_, b) -> b.s_area)))
    (pct (col (fun (a, _) -> a.s_delay)))
    (pct (col (fun (_, b) -> b.s_delay)))
    (col (fun (a, _) -> a.s_cpu))
    (col (fun (a, _) -> a.s_wall))
    (col (fun (_, b) -> b.s_cpu))
    (col (fun (_, b) -> b.s_wall));
  Printf.printf "('*' = at least one run hit the %gs scaled-mode budget)\n"
    max_seconds

let table4 () =
  versus_table
    ~title:
      "Table IV: ALSRAC vs Su's method under ER constraint (ASIC, MCNC-class cells)"
    ~paper_note:
      (Printf.sprintf
         "area/delay ratios averaged over ER thresholds %s, %d seed(s); paper \
          arithmeans: ALSRAC 80.11%% vs Su 87.45%% area"
         (String.concat ", "
            (List.map (fun t -> Printf.sprintf "%g%%" (pct t)) er_thresholds))
         (List.length seeds))
    ~entries:(Circuits.Suite.of_klass Circuits.Suite.Iscas_arith)
    ~metric:Metrics.Er ~thresholds:er_thresholds ~ratios:asic_ratios
    ~baseline_name:"Su" ~baseline:run_sasimi

let table5 () =
  let entries = List.filter_map Circuits.Suite.find Circuits.Suite.nmed_set in
  versus_table
    ~title:"Table V: ALSRAC vs Su's method under NMED constraint (ASIC)"
    ~paper_note:
      (Printf.sprintf
         "ratios averaged over NMED thresholds %s, %d seed(s); paper arithmeans: \
          ALSRAC 39.64%% vs Su 48.43%% area"
         (String.concat ", "
            (List.map (fun t -> Printf.sprintf "%.5f%%" (pct t)) nmed_thresholds))
         (List.length seeds))
    ~entries ~metric:Metrics.Nmed ~thresholds:nmed_thresholds ~ratios:asic_ratios
    ~baseline_name:"Su" ~baseline:run_sasimi

(* ---------- Tables VI / VII: ALSRAC vs Liu on FPGA ---------- *)

let table6 () =
  versus_table
    ~title:"Table VI: ALSRAC vs Liu's method under ER = 1% (FPGA, 6-LUT)"
    ~paper_note:
      "EPFL random/control class; paper arithmeans: ALSRAC 74.30% vs Liu 80.25% LUTs"
    ~entries:(Circuits.Suite.of_klass Circuits.Suite.Epfl_control)
    ~metric:Metrics.Er ~thresholds:[ 0.01 ] ~ratios:fpga_ratios ~baseline_name:"Liu"
    ~baseline:run_mcmc

let table7 () =
  let entries =
    List.filter
      (fun (e : Circuits.Suite.entry) -> e.Circuits.Suite.name <> "hyp")
      (Circuits.Suite.of_klass Circuits.Suite.Epfl_arith)
  in
  versus_table
    ~title:"Table VII: ALSRAC vs Liu's method under MRED = 0.19531% (FPGA, 6-LUT)"
    ~paper_note:
      "EPFL arithmetic class, hyp excluded exactly as in the paper; paper \
       arithmeans (w/o max): ALSRAC 56.20% vs Liu 63.76% LUTs"
    ~entries ~metric:Metrics.Mred ~thresholds:[ 0.0019531 ] ~ratios:fpga_ratios
    ~baseline_name:"Liu" ~baseline:run_mcmc

(* ---------- Bechamel microbenchmarks ---------- *)

let micro () =
  let open Bechamel in
  Printf.printf "\n== Microbenchmarks (bechamel, monotonic clock) ==\n%!";
  (* Shared fixtures, built once. *)
  let mtp8 = Circuits.Multipliers.array_mult ~width:8 in
  let rng = Logic.Rng.create 42 in
  let pats2048 = Sim.Patterns.random rng ~npis:16 ~len:2048 in
  let sigs = Sim.Engine.simulate mtp8 pats2048 in
  let golden = Sim.Engine.po_values mtp8 sigs in
  let cavlc = Circuits.Epfl_control.cavlc () in
  let adder16 = Circuits.Adders.ripple_carry ~width:16 in
  let tt10 = Logic.Truth.of_fun 10 (fun m -> (m * 2654435761) land 0x400 <> 0) in
  let and_nodes =
    let acc = ref [] in
    Graph.iter_ands mtp8 (fun id -> acc := id :: !acc);
    Array.of_list !acc
  in
  let mid_node = and_nodes.(Array.length and_nodes / 2) in
  let tfo = Aig.Cone.tfo_mask mtp8 mid_node in
  let flipped = Logic.Bitvec.lognot sigs.(mid_node) in
  let care_cfg = Core.Config.default ~metric:Metrics.Er ~threshold:0.01 in
  let tests =
    [
      (* One kernel per table: the dominant inner operation each table's
         regeneration spends its time in. *)
      Test.make ~name:"t3-kernel: cellmap mtp8"
        (Staged.stage (fun () -> ignore (Techmap.Cellmap.run mtp8)));
      Test.make ~name:"t4-kernel: LAC generation (N=32, mtp8)"
        (Staged.stage (fun () ->
             let pats = Sim.Patterns.random (Logic.Rng.create 7) ~npis:16 ~len:32 in
             let s = Sim.Engine.simulate mtp8 pats in
             ignore (Core.Lac.generate mtp8 ~config:care_cfg ~sigs:s ~rounds:32)));
      Test.make ~name:"t5-kernel: batch error estimation (TFO resim, 2048 rounds)"
        (Staged.stage (fun () ->
             ignore
               (Sim.Engine.resimulate_tfo mtp8 ~base:sigs ~tfo ~node:mid_node
                  ~value:flipped)));
      Test.make ~name:"t6-kernel: lutmap cavlc"
        (Staged.stage (fun () -> ignore (Techmap.Lutmap.run cavlc)));
      Test.make ~name:"t7-kernel: NMED measurement (2048 rounds)"
        (Staged.stage (fun () -> ignore (Metrics.nmed ~golden ~approx:golden)));
      (* Engine kernels. *)
      Test.make ~name:"simulate mtp8 x2048 rounds"
        (Staged.stage (fun () -> ignore (Sim.Engine.simulate mtp8 pats2048)));
      Test.make ~name:"compress2 adder16"
        (Staged.stage (fun () -> ignore (Aig.Resyn.compress2 adder16)));
      Test.make ~name:"cut enumeration k=6 mtp8"
        (Staged.stage (fun () -> ignore (Aig.Cut.enumerate mtp8 ~k:6 ())));
      Test.make ~name:"isop 10-var table"
        (Staged.stage (fun () ->
             ignore (Logic.Isop.compute ~on:tt10 ~dc:(Logic.Truth.const0 10))));
      Test.make ~name:"espresso 10-var table"
        (Staged.stage (fun () ->
             ignore (Logic.Espresso.minimize ~on:tt10 ~dc:(Logic.Truth.const0 10))));
      (* Ablation: exact TFO re-simulation vs backward observability masks. *)
      Test.make ~name:"ablation: observability masks (backward pass)"
        (Staged.stage (fun () -> ignore (Errest.Observability.masks mtp8 ~sigs)));
      Test.make ~name:"fraig-lite mtp8"
        (Staged.stage (fun () -> ignore (Sim.Fraig.run mtp8)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-58s %14.1f ns/run\n%!" name est
          | _ -> Printf.printf "%-58s (no estimate)\n%!" name)
        analysis)
    tests

(* ---------- Pool microbenchmark (DESIGN.md section 8) ----------

   Wall-clock speedup of the worker pool on the two kernels the flow
   parallelizes — word-sharded bit-parallel simulation and batch candidate
   scoring — at jobs = 1/2/4/8 on the largest suite circuit.  Each cell is
   the best of three runs; the jobs = 1 row is the exact sequential path
   (the pool runs tasks eagerly on the caller), so speedups are against the
   true serial baseline.  Results are recorded in EXPERIMENTS.md. *)

let pool_bench () =
  Printf.printf "\n== Pool microbenchmark: simulate + candidate scoring ==\n";
  Printf.printf "(host reports %d core(s); jobs beyond that only measure overhead)\n%!"
    (Parallel.Pool.cpu_count ());
  let name, g =
    List.fold_left
      (fun best (e : Circuits.Suite.entry) ->
        let g = e.Circuits.Suite.build () in
        match best with
        | Some (_, bg) when Graph.num_ands bg >= Graph.num_ands g -> best
        | _ -> Some (e.Circuits.Suite.name, g))
      None Circuits.Suite.all
    |> Option.get
  in
  let rounds = 8192 in
  Printf.printf "circuit: %s (%d ANDs), %d evaluation rounds\n%!" name
    (Graph.num_ands g) rounds;
  let rng = Logic.Rng.create 42 in
  let pats = Sim.Patterns.random rng ~npis:(Graph.num_pis g) ~len:rounds in
  let sigs = Sim.Engine.simulate g pats in
  let golden = Sim.Engine.po_values g sigs in
  let batch = Errest.Batch.create g ~metric:Metrics.Er ~golden ~base:sigs in
  let ands =
    let acc = ref [] in
    Graph.iter_ands g (fun id -> acc := id :: !acc);
    Array.of_list (List.rev !acc)
  in
  let nspecs = min 256 (Array.length ands) in
  let stride = max 1 (Array.length ands / nspecs) in
  (* Flipping a node's signature forces a full TFO re-simulation per
     candidate — the worst (and most common) case in the flow. *)
  let specs =
    Array.init nspecs (fun i ->
        let id = ands.(i * stride) in
        (id, Logic.Bitvec.lognot sigs.(id)))
  in
  let ref_sigs = Sim.Engine.simulate g pats in
  let ref_errs = Errest.Batch.candidate_errors batch specs in
  let best_of_3 f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = wall () in
      f ();
      best := Float.min !best (wall () -. t0)
    done;
    !best
  in
  Printf.printf "%-34s %5s %10s %8s\n" "kernel" "jobs" "best wall" "speedup";
  let report kernel ~check f =
    let base = ref nan in
    List.iter
      (fun jobs ->
        Parallel.Pool.with_pool ~jobs (fun pool ->
            let t = best_of_3 (fun () -> f pool) in
            if jobs = 1 then base := t;
            let ok = check pool in
            Printf.printf "%-34s %5d %9.4fs %7.2fx%s\n%!" kernel jobs t
              (!base /. t)
              (if ok then "" else "  DETERMINISM MISMATCH");
            if jobs = 4 then
              Printf.printf "%-34s %5s %s\n" "" ""
                (Errest.Observability.pool_summary (Parallel.Pool.stats pool))))
      [ 1; 2; 4; 8 ]
  in
  report
    (Printf.sprintf "simulate (%d rounds)" rounds)
    ~check:(fun pool ->
      let s = Sim.Engine.simulate ~pool g pats in
      Array.for_all2 Logic.Bitvec.equal s ref_sigs)
    (fun pool -> ignore (Sim.Engine.simulate ~pool g pats));
  report
    (Printf.sprintf "candidate scoring (%d specs)" nspecs)
    ~check:(fun pool ->
      Errest.Batch.candidate_errors ~pool batch specs = ref_errs)
    (fun pool -> ignore (Errest.Batch.candidate_errors ~pool batch specs))

(* ---------- Scoring-kernel microbenchmark (DESIGN.md section 10) ----------

   Old vs new candidate scoring on a realistic candidate mix.  The "old"
   kernel replicates the pre-CSR strategy faithfully: a dense TFO mask per
   target (cached, as the old estimator cached it), a full re-simulation of
   the masked cone via [Sim.Engine.resimulate_tfo], and a full
   [Metrics.measure_prepared] over all POs and words.  The "new" kernel is
   [Errest.Batch] — sparse frontier, difference-mask early exit,
   incremental metric deltas.  Both must return bit-identical errors
   ([Float.equal]); any mismatch fails the bench.

   Writes BENCH_scoring.json next to the working directory.  Smoke mode
   (ALSRAC_BENCH_SMOKE=1, used by CI) shrinks the fixture and exits
   non-zero on a mismatch or a pathological (< 0.2x) slowdown. *)

let smoke_mode =
  match Sys.getenv_opt "ALSRAC_BENCH_SMOKE" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

type scoring_row = {
  r_circuit : string;
  r_metric : string;
  r_workload : string;
  r_rounds : int;
  r_nspecs : int;
  r_old_cps : float;  (** candidates/second, old kernel *)
  r_new_cps : float;
  r_speedup : float;
  r_mean_frontier : float;  (** frontier nodes recomputed per candidate *)
  r_early_exit_rate : float;
  r_identical : bool;  (** every error Float.equal between kernels *)
}

let old_kernel g ~metric ~golden ~base =
  let prep = Metrics.prepare metric ~golden in
  let tfo_cache : (int, bool array) Hashtbl.t = Hashtbl.create 64 in
  fun (node, new_sig) ->
    let tfo =
      match Hashtbl.find_opt tfo_cache node with
      | Some m -> m
      | None ->
          let m = Aig.Cone.tfo_mask g node in
          Hashtbl.add tfo_cache node m;
          m
    in
    let pos = Sim.Engine.resimulate_tfo g ~base ~tfo ~node ~value:new_sig in
    Metrics.measure_prepared prep ~approx:pos

(* The synthetic stress mix, four candidate classes per target in rotation:
   divisor copy, divisor complement, sparse diff (the target's signature
   erring on a handful of rounds), and a full signature flip (the worst
   case: every TFO word changes). *)
let stress_specs rng g ~base ~rounds ~nspecs =
  let ands =
    let acc = ref [] in
    Graph.iter_ands g (fun id -> acc := id :: !acc);
    Array.of_list (List.rev !acc)
  in
  let n = min nspecs (4 * Array.length ands) in
  let sparse_diff id =
    let v = Logic.Bitvec.copy base.(id) in
    for _ = 1 to 8 do
      let m = Logic.Rng.int rng rounds in
      Logic.Bitvec.set v m (not (Logic.Bitvec.get v m))
    done;
    v
  in
  Array.init n (fun i ->
      let id = ands.((i / 4 * (max 1 (4 * Array.length ands / (n + 4)))) mod Array.length ands) in
      match i mod 4 with
      | 0 -> (id, Logic.Bitvec.copy base.(Logic.Rng.int rng (max 1 id)))
      | 1 -> (id, Logic.Bitvec.lognot base.(Logic.Rng.int rng (max 1 id)))
      | 2 -> (id, sparse_diff id)
      | _ -> (id, Logic.Bitvec.lognot base.(id)))

(* The flow's real workload: candidates from the actual LAC generator on a
   fresh care set, with their signatures evaluated exactly the way
   [Core.Flow] builds scoring specs.  Such candidates agree with the target
   on the care patterns, so their evaluation-set differences are sparse —
   the case the event-driven kernel is built for. *)
let lac_specs rng g ~metric ~base ~nspecs =
  let care_rounds = 32 in
  let care_pats = Sim.Patterns.random rng ~npis:(Graph.num_pis g) ~len:care_rounds in
  let care_sigs = Sim.Engine.simulate g care_pats in
  let config = Core.Config.default ~metric ~threshold:0.01 in
  let lacs = Core.Lac.generate g ~config ~sigs:care_sigs ~rounds:care_rounds in
  let specs =
    List.map
      (fun (lac : Core.Lac.t) ->
        let pos_sigs = Array.map (fun d -> base.(d)) lac.Core.Lac.divisors in
        (lac.Core.Lac.target, Logic.Cover.eval_sigs lac.Core.Lac.cover ~pos_sigs))
      lacs
  in
  Array.of_list (List.filteri (fun i _ -> i < nspecs) specs)

let time_scoring ~repeats f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = wall () in
    f ();
    best := Float.min !best (wall () -. t0)
  done;
  !best

let scoring_row (e : Circuits.Suite.entry) ~metric ~workload ~rounds ~nspecs =
  let g = e.Circuits.Suite.build () in
  let rng = Logic.Rng.create 42 in
  let pats = Sim.Patterns.random rng ~npis:(Graph.num_pis g) ~len:rounds in
  let base = Sim.Engine.simulate g pats in
  let golden = Sim.Engine.po_values g base in
  let specs =
    match workload with
    | `Lac -> lac_specs rng g ~metric ~base ~nspecs
    | `Stress -> stress_specs rng g ~base ~rounds ~nspecs
  in
  let n = Array.length specs in
  if n = 0 then failwith ("scoring bench: no candidates for " ^ e.Circuits.Suite.name);
  let old_score = old_kernel g ~metric ~golden ~base in
  let old_errs = Array.map old_score specs in
  let batch = Errest.Batch.create g ~metric ~golden ~base in
  let new_errs = Errest.Batch.candidate_errors batch specs in
  let identical = Array.for_all2 Float.equal old_errs new_errs in
  let repeats = if smoke_mode then 2 else 3 in
  let t_old = time_scoring ~repeats (fun () -> Array.iter (fun s -> ignore (old_score s)) specs) in
  let t_new =
    time_scoring ~repeats (fun () ->
        ignore (Errest.Batch.candidate_errors batch specs))
  in
  let s = Errest.Batch.stats batch in
  let scored = float_of_int (max 1 s.Errest.Batch.scored) in
  {
    r_circuit = e.Circuits.Suite.name;
    r_metric = Metrics.kind_to_string metric;
    r_workload = (match workload with `Lac -> "lac" | `Stress -> "stress");
    r_rounds = rounds;
    r_nspecs = n;
    r_old_cps = float_of_int n /. Float.max 1e-9 t_old;
    r_new_cps = float_of_int n /. Float.max 1e-9 t_new;
    r_speedup = t_old /. Float.max 1e-9 t_new;
    r_mean_frontier = float_of_int s.Errest.Batch.frontier_nodes /. scored;
    r_early_exit_rate = float_of_int s.Errest.Batch.early_exits /. scored;
    r_identical = identical;
  }

let scoring_json rows =
  let row r =
    Printf.sprintf
      "  {\"circuit\": \"%s\", \"metric\": \"%s\", \"workload\": \"%s\", \
       \"rounds\": %d, \"nspecs\": %d, \"old_candidates_per_s\": %.1f, \
       \"new_candidates_per_s\": %.1f, \"speedup\": %.2f, \"mean_frontier\": \
       %.1f, \"early_exit_rate\": %.4f, \"identical\": %b}"
      r.r_circuit r.r_metric r.r_workload r.r_rounds r.r_nspecs r.r_old_cps
      r.r_new_cps r.r_speedup r.r_mean_frontier r.r_early_exit_rate r.r_identical
  in
  Printf.sprintf "{\"mode\": \"%s\", \"rows\": [\n%s\n]}\n"
    (if smoke_mode then "smoke" else "full")
    (String.concat ",\n" (List.map row rows))

let scoring () =
  Printf.printf "\n== Scoring-kernel microbenchmark: old (dense TFO resim) vs new (event-driven) ==\n%!";
  let fixtures =
    if smoke_mode then
      [ ("c880", Metrics.Er, `Lac, 512, 64); ("c880", Metrics.Er, `Stress, 512, 64) ]
    else
      [
        (* The flow's real workload: LAC-generator candidates. *)
        ("c880", Metrics.Er, `Lac, 8192, 256);
        ("c7552", Metrics.Er, `Lac, 8192, 256);
        ("mtp8", Metrics.Nmed, `Lac, 8192, 256);
        ("c1908", Metrics.Mred, `Lac, 8192, 256);
        (* Synthetic stress mix, including worst-case full flips. *)
        ("c880", Metrics.Er, `Stress, 8192, 256);
        ("mtp8", Metrics.Nmed, `Stress, 8192, 256);
      ]
  in
  let rows =
    List.map
      (fun (name, metric, workload, rounds, nspecs) ->
        match Circuits.Suite.find name with
        | None -> failwith ("scoring bench: unknown circuit " ^ name)
        | Some e ->
            let r = scoring_row e ~metric ~workload ~rounds ~nspecs in
            Printf.printf
              "%-8s %-5s %-7s %5d rounds %4d cands | old %8.0f/s  new %8.0f/s  \
               (%5.1fx) | frontier %7.1f  early-exit %5.1f%%%s\n\
               %!"
              r.r_circuit r.r_metric r.r_workload r.r_rounds r.r_nspecs r.r_old_cps
              r.r_new_cps r.r_speedup r.r_mean_frontier
              (100.0 *. r.r_early_exit_rate)
              (if r.r_identical then "" else "  ERROR MISMATCH");
            r)
      fixtures
  in
  let out = open_out "BENCH_scoring.json" in
  output_string out (scoring_json rows);
  close_out out;
  Printf.printf "wrote BENCH_scoring.json\n%!";
  let bad_identity = List.exists (fun r -> not r.r_identical) rows in
  if bad_identity then begin
    Printf.eprintf "scoring bench: kernels disagree — new kernel is WRONG\n";
    exit 1
  end;
  if smoke_mode && List.exists (fun r -> r.r_speedup < 0.2) rows then begin
    Printf.eprintf "scoring bench: new kernel is >5x slower than the old one\n";
    exit 1
  end

(* ---------- Serve benchmark (DESIGN.md section 11) ----------

   Warm (resident daemon) vs cold (one CLI process per query) latency for
   the same question: the error of a session's current circuit against its
   original.  The daemon keeps the parsed AIG, evaluation patterns and
   golden output signatures resident, so a warm [metrics] request is one
   socket round-trip plus a per-revision cache probe; the cold path pays
   process startup, AIGER parsing and a fresh simulation on every query.

   Writes BENCH_serve.json.  Smoke mode (ALSRAC_BENCH_SMOKE=1, used by CI)
   shrinks the iteration counts; both modes exit non-zero when the warm P50
   is not at least 5x better than the cold P50. *)

let percentile xs p =
  let n = Array.length xs in
  let xs = Array.copy xs in
  Array.sort compare xs;
  let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) - 1 in
  xs.(max 0 (min (n - 1) rank))

let serve_bench () =
  Printf.printf "\n== Serve benchmark: warm resident daemon vs cold CLI ==\n%!";
  let warm_iters = if smoke_mode then 20 else 100 in
  let cold_iters = if smoke_mode then 3 else 10 in
  let circuit = "cavlc" and threshold = 0.05 in
  let g =
    match Circuits.Suite.find circuit with
    | Some e -> e.Circuits.Suite.build ()
    | None -> failwith ("serve bench: unknown circuit " ^ circuit)
  in
  let bytes = Circuit_io.Aiger.graph_to_string g in
  let dir = Filename.temp_file "alsrac_bench" "" ^ ".d" in
  Unix.mkdir dir 0o755;
  let socket =
    (* [temp_file] reserves a short path (sockets are length-limited); the
       placeholder is removed so the daemon can bind there. *)
    let p = Filename.temp_file "als" ".sock" in
    Sys.remove p;
    p
  in
  let cfg =
    { (Serve.Daemon.default ~socket ~state_dir:(Filename.concat dir "state")) with
      Serve.Daemon.default_deadline_s = 300.0 }
  in
  let daemon = Thread.create Serve.Daemon.run cfg in
  let conn = Serve.Client.connect ~path:socket () in
  let finally () =
    (try ignore (Serve.Client.shutdown conn) with _ -> ());
    Thread.join daemon
  in
  Fun.protect ~finally @@ fun () ->
  let expect what = function
    | Serve.Protocol.Ok (kvs, blob) -> (kvs, blob)
    | Serve.Protocol.Err { detail; _ } ->
        failwith (Printf.sprintf "serve bench: %s failed: %s" what detail)
  in
  ignore (expect "load" (Serve.Client.load conn ~session:"bench" ~circuit:"-" ~graph:bytes ()));
  let params =
    { Serve.Protocol.metric = Metrics.Er; threshold; seed = 1;
      eval_rounds = 1024; max_iters = 1000 }
  in
  ignore (expect "approx" (Serve.Client.approx conn ~session:"bench" ~params ()));
  (* First metrics call fills the per-revision cache; steady-state warm
     requests are what a resident client observes. *)
  ignore (expect "metrics" (Serve.Client.metrics conn ~session:"bench" ~metric:Metrics.Er));
  let warm =
    Array.init warm_iters (fun _ ->
        let t0 = wall () in
        ignore
          (expect "metrics" (Serve.Client.metrics conn ~session:"bench" ~metric:Metrics.Er));
        wall () -. t0)
  in
  let current =
    match expect "get" (Serve.Client.get conn ~session:"bench") with
    | _, Some blob -> blob
    | _, None -> failwith "serve bench: get returned no graph"
  in
  let write name data =
    let p = Filename.concat dir name in
    let oc = open_out_bin p in
    output_string oc data;
    close_out oc;
    p
  in
  let orig_f = write "original.aag" bytes and cur_f = write "current.aag" current in
  let exe =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/alsrac.exe"
  in
  let cold_kind, cold_once =
    if Sys.file_exists exe then
      ( "cli",
        fun () ->
          let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
          let pid =
            Unix.create_process exe
              [| exe; "eval"; orig_f; cur_f; "-m"; "er"; "--sample"; "1024" |]
              Unix.stdin null null
          in
          let _, status = Unix.waitpid [] pid in
          Unix.close null;
          match status with
          | Unix.WEXITED 0 -> ()
          | _ -> failwith "serve bench: cold CLI eval failed" )
    else
      ( "in-process",
        (* No CLI binary next to the bench (e.g. a partial build): fall back
           to the same work in-process — parse both circuits and evaluate
           from scratch.  This underestimates the cold cost (no process
           startup), so the 5x gate is conservative. *)
        fun () ->
          let o = Circuit_io.Aiger.parse bytes
          and a = Circuit_io.Aiger.parse current in
          ignore (Metrics.evaluate ~sample:1024 Metrics.Er ~original:o ~approx:a) )
  in
  let cold =
    Array.init cold_iters (fun _ ->
        let t0 = wall () in
        cold_once ();
        wall () -. t0)
  in
  let ms xs q = 1000.0 *. percentile xs q in
  let wp50 = ms warm 50.0 and wp95 = ms warm 95.0 in
  let cp50 = ms cold 50.0 and cp95 = ms cold 95.0 in
  let speedup = cp50 /. Float.max 1e-6 wp50 in
  Printf.printf
    "%-8s warm (%d reqs): P50 %7.3fms  P95 %7.3fms | cold-%s (%d runs): P50 \
     %7.1fms  P95 %7.1fms | warm is %.0fx faster\n%!"
    circuit warm_iters wp50 wp95 cold_kind cold_iters cp50 cp95 speedup;
  let out = open_out "BENCH_serve.json" in
  Printf.fprintf out
    "{\"mode\": \"%s\", \"circuit\": \"%s\", \"threshold\": %g,\n\
    \ \"warm_iters\": %d, \"warm_p50_ms\": %.3f, \"warm_p95_ms\": %.3f,\n\
    \ \"cold_kind\": \"%s\", \"cold_iters\": %d, \"cold_p50_ms\": %.1f, \
     \"cold_p95_ms\": %.1f,\n\
    \ \"speedup_p50\": %.1f}\n"
    (if smoke_mode then "smoke" else "full")
    circuit threshold warm_iters wp50 wp95 cold_kind cold_iters cp50 cp95 speedup;
  close_out out;
  Printf.printf "wrote BENCH_serve.json\n%!";
  if speedup < 5.0 then begin
    Printf.eprintf
      "serve bench: warm P50 is only %.1fx better than cold (need >= 5x)\n" speedup;
    exit 1
  end

(* ---------- Ablation: ALSRAC design choices (DESIGN.md section 5) ---------- *)

let ablations () =
  Printf.printf "\n== Ablations (wal8, NMED <= 0.1%%) ==\n%!";
  let g = Circuits.Multipliers.wallace ~width:8 in
  let base = Core.Config.default ~metric:Metrics.Nmed ~threshold:0.001 in
  let variants =
    [
      ("default (N=32, compress2)", base);
      ("no inter-iteration resyn", { base with Core.Config.resyn = Core.Config.No_resyn });
      ("light resyn only", { base with Core.Config.resyn = Core.Config.Light });
      ("fixed small care set (N=8)", { base with Core.Config.sim_rounds = 8 });
      ("large care set (N=256)", { base with Core.Config.sim_rounds = 256 });
      ("L=4 LACs per node", { base with Core.Config.lac_limit = 4 });
      ("ODC-aware care sets", { base with Core.Config.use_odc = true });
      ("no depth guard", { base with Core.Config.max_depth_growth = infinity });
    ]
  in
  List.iter
    (fun (name, config) ->
      let config = { config with Core.Config.eval_rounds; seed = 1; max_seconds } in
      let approx, report = Core.Flow.run ~config g in
      let exact = Metrics.evaluate Metrics.Nmed ~original:g ~approx in
      Printf.printf "%-28s ands %3d -> %3d (%.1f%%), NMED %.4f%%, %.1fs\n%!" name
        report.Core.Flow.input_ands report.Core.Flow.output_ands
        (pct
           (float_of_int report.Core.Flow.output_ands
           /. float_of_int report.Core.Flow.input_ands))
        (pct exact) report.Core.Flow.runtime_s)
    variants

(* ---------- Explore bench: sweep determinism + policy comparison ----------

   Three corpus sweeps over the same manifest: greedy at jobs=1, greedy at
   jobs=2 into a fresh directory (the determinism gate: every front file
   must be byte-identical — exit 1 otherwise), and the UCB1 bandit.  The
   greedy and bandit sweeps share seeds point-for-point, so their per-point
   deltas are matched pairs.  Writes BENCH_explore.json: per-point rows,
   corpus-mean area ratios, the policy-vs-greedy improvement, selection
   efficiency (accepts per thousand scored candidates), and the bandit's
   per-arm counters from a representative run. *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let fronts_identical dir_a dir_b =
  let ls d = Sys.readdir (Filename.concat d "fronts") |> Array.to_list |> List.sort compare in
  let fa = ls dir_a and fb = ls dir_b in
  fa = fb
  && List.for_all
       (fun f ->
         read_file (Filename.concat (Filename.concat dir_a "fronts") f)
         = read_file (Filename.concat (Filename.concat dir_b "fronts") f))
       fa

let explore_bench () =
  Printf.printf "\n== Explore: corpus sweep determinism and policy comparison ==\n%!";
  let benchmarks =
    if smoke_mode then [ "ctrl"; "int2float" ]
    else [ "c880"; "cavlc"; "ctrl"; "int2float" ]
  in
  let ladders =
    [ { Explore.Ladder.metric = Metrics.Er;
        budgets = (if smoke_mode then [ 0.01; 0.05 ] else [ 0.001; 0.01; 0.05 ]) } ]
  in
  let e_rounds = if smoke_mode then 256 else 2048 in
  let e_iters = if smoke_mode then 5 else 50 in
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "alsrac-bench-explore-%d" (Unix.getpid ()))
  in
  rm_rf root;
  Unix.mkdir root 0o755;
  let spec dir policy jobs =
    {
      Explore.Sweep.dir = Filename.concat root dir;
      benchmarks;
      ladders;
      policy;
      seed = 1;
      eval_rounds = e_rounds;
      max_iters = e_iters;
      shards = 1;
      shard_id = 0;
      jobs;
      distr = Errest.Distr.Unif;
    }
  in
  let sweep name s =
    let t0 = wall () in
    match Explore.Sweep.run s with
    | Error e ->
        Printf.eprintf "explore bench: %s sweep failed: %s\n" name e;
        exit 1
    | Ok p ->
        Printf.printf "%-14s %d points in %.1fs wall (jobs=%d)\n%!" name
          p.Explore.Sweep.total (wall () -. t0) s.Explore.Sweep.jobs;
        p
  in
  let pg = sweep "greedy/j1" (spec "greedy-j1" Explore.Policy.Greedy 1) in
  let _ = sweep "greedy/j2" (spec "greedy-j2" Explore.Policy.Greedy 2) in
  let _ = sweep "bandit/j2" (spec "bandit-j2" Explore.Policy.Bandit 2) in
  let identical =
    fronts_identical (Filename.concat root "greedy-j1") (Filename.concat root "greedy-j2")
  in
  Printf.printf "determinism: jobs=1 vs jobs=2 front files %s\n%!"
    (if identical then "byte-identical" else "DIFFER");
  let total = pg.Explore.Sweep.total in
  let points dir =
    Explore.Store.completed ~dir:(Filename.concat root dir) ~total
    |> Array.map (function
         | Some r -> r
         | None ->
             Printf.eprintf "explore bench: incomplete sweep in %s\n" dir;
             exit 1)
  in
  let gp = points "greedy-j1" and bp = points "bandit-j2" in
  let ratio (r : Explore.Store.result) =
    float_of_int r.Explore.Store.ands /. float_of_int (max 1 r.Explore.Store.orig_ands)
  in
  let mean_ratio ps = mean (Array.to_list (Array.map ratio ps)) in
  let g_ratio = mean_ratio gp and b_ratio = mean_ratio bp in
  let eff ps =
    let applied =
      Array.fold_left (fun n r -> n + r.Explore.Store.applied) 0 ps
    and scored = Array.fold_left (fun n r -> n + r.Explore.Store.scored) 0 ps in
    1000.0 *. float_of_int applied /. float_of_int (max 1 scored)
  in
  let g_eff = eff gp and b_eff = eff bp in
  let improvement_pp = pct (g_ratio -. b_ratio) in
  Printf.printf
    "corpus mean area ratio: greedy %.2f%%, bandit %.2f%% (improvement %+.2fpp)\n%!"
    (pct g_ratio) (pct b_ratio) improvement_pp;
  Printf.printf
    "selection efficiency: greedy %.2f accepts/kcand, bandit %.2f accepts/kcand\n%!"
    g_eff b_eff;
  (* Per-arm counters from one representative bandit run (the largest
     budget of the first benchmark): what the bandit actually learned. *)
  let arm_stats =
    let e = Option.get (Circuits.Suite.find (List.hd benchmarks)) in
    let g = Graph.compact (e.Circuits.Suite.build ()) in
    let config =
      {
        (Core.Config.default ~metric:Metrics.Er ~threshold:0.05) with
        Core.Config.seed = 1;
        eval_rounds = e_rounds;
        max_iters = e_iters;
        policy = Explore.Policy.make Explore.Policy.Bandit;
      }
    in
    let _, report = Core.Flow.run ~config g in
    match report.Core.Flow.policy with
    | Some p -> Array.to_list p.Core.Flow.arm_stats
    | None -> []
  in
  let row i =
    let g = gp.(i) and b = bp.(i) in
    Printf.sprintf
      "  {\"bench\": \"%s\", \"metric\": \"%s\", \"budget\": %g, \"orig_ands\": %d, \
       \"greedy_ands\": %d, \"bandit_ands\": %d, \"greedy_applied\": %d, \
       \"bandit_applied\": %d, \"greedy_scored\": %d, \"bandit_scored\": %d}"
      g.Explore.Store.bench
      (Metrics.kind_to_string g.Explore.Store.metric)
      g.Explore.Store.budget g.Explore.Store.orig_ands g.Explore.Store.ands
      b.Explore.Store.ands g.Explore.Store.applied b.Explore.Store.applied
      g.Explore.Store.scored b.Explore.Store.scored
  in
  let arm (a : Core.Flow.arm_stat) =
    Printf.sprintf
      "  {\"arm\": %d, \"first_choice\": %d, \"accepted\": %d, \"reward_sum\": %.4f}"
      a.Core.Flow.arm a.Core.Flow.first_choice a.Core.Flow.accepted a.Core.Flow.reward_sum
  in
  let out = open_out "BENCH_explore.json" in
  Printf.fprintf out
    "{\"mode\": \"%s\", \"determinism_fronts_identical\": %b,\n\
    \ \"greedy_mean_area_ratio\": %.4f, \"bandit_mean_area_ratio\": %.4f,\n\
    \ \"policy_improvement_pp\": %.3f,\n\
    \ \"greedy_accepts_per_kcand\": %.2f, \"bandit_accepts_per_kcand\": %.2f,\n\
     \"rows\": [\n%s\n],\n\"bandit_arms\": [\n%s\n]}\n"
    (if smoke_mode then "smoke" else "full")
    identical g_ratio b_ratio improvement_pp g_eff b_eff
    (String.concat ",\n" (List.map row (List.init total Fun.id)))
    (String.concat ",\n" (List.map arm arm_stats));
  close_out out;
  Printf.printf "wrote BENCH_explore.json\n%!";
  rm_rf root;
  if not identical then begin
    Printf.eprintf "explore bench: fronts are not jobs-invariant\n";
    exit 1
  end

(* ---------- Max-error certification microbenchmark ----------

   Worst-case synthesis splits into a cheap sampled phase (the maximum
   over simulated rounds — a lower bound on the truth) and the exact
   error-computation-miter certification that closes the gap
   (Errest.Maxerr: violation miter + witness refinement, no SAT).  For
   each fixture a max-metric flow first shrinks the circuit under its
   budget; the bench then times the two phases separately on the result
   and records the sampled/certified gap and the refinement count.
   Writes BENCH_maxerr.json.  Any closed certification with
   sampled > certified is a soundness bug and fails the bench; smoke mode
   additionally fails if a miter does not close. *)

type maxerr_row = {
  x_circuit : string;
  x_metric : string;
  x_threshold : float;
  x_ands_before : int;
  x_ands_after : int;
  x_applied : int;
  x_sampled : float;
  x_certified : float;
  x_refinements : int;
  x_sim_s : float;
  x_certify_s : float;
  x_closed : bool;
}

let maxerr_fixture (name, kind, threshold) =
  match Circuits.Suite.find name with
  | None -> failwith ("maxerr bench: unknown circuit " ^ name)
  | Some e ->
      let g = Graph.compact (e.Circuits.Suite.build ()) in
      let config =
        {
          (Core.Config.default ~metric:kind ~threshold) with
          Core.Config.seed = 1;
          eval_rounds = (if smoke_mode then 512 else 2048);
          max_iters = (if smoke_mode then 6 else 40);
        }
      in
      let approx, report = Core.Flow.run ~config g in
      let t0 = wall () in
      let sampled = Metrics.evaluate ~seed:7 ~sample:4096 kind ~original:g ~approx in
      let sim_s = wall () -. t0 in
      let t1 = wall () in
      let outcome = Errest.Maxerr.certify kind ~original:g ~approx in
      let certify_s = wall () -. t1 in
      let certified, refinements, closed =
        match outcome with
        | Errest.Maxerr.Exact { max; refinements; _ } -> (max, refinements, true)
        | Errest.Maxerr.Undecided _ -> (Float.nan, -1, false)
      in
      {
        x_circuit = name;
        x_metric = Metrics.kind_to_string kind;
        x_threshold = threshold;
        x_ands_before = Graph.num_ands g;
        x_ands_after = Graph.num_ands approx;
        x_applied = report.Core.Flow.applied;
        x_sampled = sampled;
        x_certified = certified;
        x_refinements = refinements;
        x_sim_s = sim_s;
        x_certify_s = certify_s;
        x_closed = closed;
      }

let maxerr_bench () =
  Printf.printf "\n== Max-error certification: sampled phase vs miter phase ==\n%!";
  let fixtures =
    if smoke_mode then [ ("ctrl", Metrics.Maxed, 3.0); ("cavlc", Metrics.Maxhd, 2.0) ]
    else
      [
        ("ctrl", Metrics.Maxed, 3.0);
        ("cavlc", Metrics.Maxed, 2.0);
        ("cavlc", Metrics.Maxhd, 2.0);
        ("int2float", Metrics.Maxed, 3.0);
        ("int2float", Metrics.Maxred, 0.25);
        ("rca32", Metrics.Maxed, 7.0);
      ]
  in
  let rows =
    List.map
      (fun fixture ->
        let r = maxerr_fixture fixture in
        Printf.printf
          "%-10s %-7s budget %-5g | ands %4d -> %4d (%2d LACs) | sampled %-8g \
           certified %-8g (%d refinements) | sim %6.3fs  certify %6.3fs%s\n\
           %!"
          r.x_circuit r.x_metric r.x_threshold r.x_ands_before r.x_ands_after
          r.x_applied r.x_sampled r.x_certified r.x_refinements r.x_sim_s
          r.x_certify_s
          (if r.x_closed then "" else "  UNDECIDED");
        r)
      fixtures
  in
  let row r =
    Printf.sprintf
      "  {\"circuit\": \"%s\", \"metric\": \"%s\", \"threshold\": %g, \
       \"ands_before\": %d, \"ands_after\": %d, \"applied\": %d, \"sampled\": \
       %g, \"certified\": %g, \"refinements\": %d, \"sim_s\": %.4f, \
       \"certify_s\": %.4f, \"closed\": %b}"
      r.x_circuit r.x_metric r.x_threshold r.x_ands_before r.x_ands_after
      r.x_applied r.x_sampled r.x_certified r.x_refinements r.x_sim_s
      r.x_certify_s r.x_closed
  in
  let out = open_out "BENCH_maxerr.json" in
  Printf.fprintf out "{\"mode\": \"%s\", \"rows\": [\n%s\n]}\n"
    (if smoke_mode then "smoke" else "full")
    (String.concat ",\n" (List.map row rows));
  close_out out;
  Printf.printf "wrote BENCH_maxerr.json\n%!";
  let unsound =
    List.exists (fun r -> r.x_closed && r.x_sampled > r.x_certified +. 1e-9) rows
  in
  if unsound then begin
    Printf.eprintf "maxerr bench: a sampled max exceeds its certified bound — UNSOUND\n";
    exit 1
  end;
  if smoke_mode && List.exists (fun r -> not r.x_closed) rows then begin
    Printf.eprintf "maxerr bench: a smoke-size miter failed to close\n";
    exit 1
  end

(* ---------- Core benchmark (DESIGN.md section 14) ----------

   The struct-of-arrays AIG core against the code it replaced, measured on
   identical operation streams.  [Legacy_core] replicates the pre-refactor
   hot paths verbatim (tuple-keyed strash Hashtbl, per-array growth,
   allocating rebuild, per-call CSR/levels, string-keyed fraig classes); the
   new side is the live [Aig.Graph].  Every workload cross-checks the two
   cores' results before timing anything, so a speedup can never hide a
   behavior change.

   Writes BENCH_core.json.  Smoke mode (ALSRAC_BENCH_SMOKE=1, used by CI)
   shrinks repeat counts and only sanity-checks the speedups; full mode
   enforces the headline targets (>= 2x construction and rebuild, >= 1.5x
   clone). *)

type core_row = {
  k_circuit : string;
  k_workload : string;
  k_old_s : float;  (** best-of wall seconds, legacy core *)
  k_new_s : float;
  k_speedup : float;
  k_checked : bool;  (** both cores produced identical results *)
}

(* A graph as a replayable operation stream.  Node ids ascend in creation
   order in both cores and the stream is already strashed/normalized, so
   replaying it assigns every node the same id in either core and literal
   operands can be reused verbatim. *)
type trace_op = T_pi | T_and of int * int | T_po of int

let trace_of g =
  let ops = ref [] in
  for id = 1 to Graph.num_nodes g - 1 do
    if Graph.is_pi g id then ops := T_pi :: !ops
    else ops := T_and (Graph.fanin0 g id, Graph.fanin1 g id) :: !ops
  done;
  Graph.iter_pos g (fun _ l -> ops := T_po l :: !ops);
  Array.of_list (List.rev !ops)

let replay_legacy ops =
  let g = Legacy_core.create () in
  Array.iter
    (function
      | T_pi -> ignore (Legacy_core.add_pi g)
      | T_and (a, b) -> ignore (Legacy_core.and_ g a b)
      | T_po l -> ignore (Legacy_core.add_po g l))
    ops;
  g

let replay_new ops =
  let g = Graph.create () in
  Array.iter
    (function
      | T_pi -> ignore (Graph.add_pi g)
      | T_and (a, b) -> ignore (Graph.and_ g a b)
      | T_po l -> ignore (Graph.add_po g l))
    ops;
  g

let same_structure lg ng =
  Legacy_core.num_nodes lg = Graph.num_nodes ng
  && Legacy_core.num_ands lg = Graph.num_ands ng
  && begin
       let ok = ref true in
       for id = 1 to Graph.num_nodes ng - 1 do
         if Graph.is_and ng id then begin
           if
             (not (Legacy_core.is_and lg id))
             || Legacy_core.(lg.fanin0.(id)) <> Graph.fanin0 ng id
             || Legacy_core.(lg.fanin1.(id)) <> Graph.fanin1 ng id
           then ok := false
         end
         else if Legacy_core.is_and lg id then ok := false
       done;
       !ok
     end

(* The new int-keyed fraig classification, replicated from [Sim.Fraig] the
   same way [old_kernel] above replicates the dense scoring kernel: direct
   word hashing of the phase-canonical signature, collisions resolved by
   exact word comparison.  Returns the same count as
   [Legacy_core.classify_string]. *)
let classify_int ~(sigs : Logic.Bitvec.t array) ~(ids : int array) ~rounds =
  let module Bitvec = Logic.Bitvec in
  let tail =
    let rem = rounds mod Bitvec.word_bits in
    if rem = 0 then Bitvec.word_mask else (1 lsl rem) - 1
  in
  let canon_hash s invert =
    let words = Bitvec.unsafe_words s in
    let nw = Array.length words in
    let inv = if invert then Bitvec.word_mask else 0 in
    let h = ref 0 in
    for i = 0 to nw - 1 do
      let w = words.(i) lxor inv in
      let w = if i = nw - 1 then w land tail else w in
      h := (!h * 0x9E3779B1) lxor w
    done;
    let h = !h lxor (!h lsr 16) in
    h * 0x85EBCA77 land max_int
  in
  let canon_equal a inva b invb =
    let wa = Bitvec.unsafe_words a and wb = Bitvec.unsafe_words b in
    let nw = Array.length wa in
    let eq = ref true in
    let i = ref 0 in
    if inva = invb then
      while !eq && !i < nw do
        if wa.(!i) <> wb.(!i) then eq := false;
        incr i
      done
    else
      while !eq && !i < nw do
        let m = if !i = nw - 1 then tail else Bitvec.word_mask in
        if wa.(!i) lxor wb.(!i) <> m then eq := false;
        incr i
      done;
    !eq
  in
  let classes :
      (int, (Bitvec.t * bool * (int * bool) list ref) list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  Array.iter
    (fun id ->
      let s = sigs.(id) in
      let phase = rounds > 0 && Bitvec.get s 0 in
      let h = canon_hash s phase in
      match Hashtbl.find_opt classes h with
      | None -> Hashtbl.add classes h (ref [ (s, phase, ref [ (id, phase) ]) ])
      | Some bucket -> (
          match
            List.find_opt (fun (rs, rp, _) -> canon_equal s phase rs rp) !bucket
          with
          | Some (_, _, members) -> members := (id, phase) :: !members
          | None -> bucket := (s, phase, ref [ (id, phase) ]) :: !bucket))
    ids;
  Hashtbl.fold
    (fun _ bucket acc ->
      List.fold_left
        (fun acc (_, _, members) ->
          if List.length !members >= 2 then acc + 1 else acc)
        acc !bucket)
    classes 0

let core_rows (e : Circuits.Suite.entry) =
  let src = Graph.compact (e.Circuits.Suite.build ()) in
  let name = e.Circuits.Suite.name in
  let ops = trace_of src in
  let repeats = if smoke_mode then 3 else 5 in
  let iters = if smoke_mode then 20 else 100 in
  let lg = replay_legacy ops in
  let ng = replay_new ops in
  let structure_ok = same_structure lg ng in
  let row workload ~checked old_f new_f =
    let t_old = time_scoring ~repeats (fun () -> for _ = 1 to iters do old_f () done) in
    let t_new = time_scoring ~repeats (fun () -> for _ = 1 to iters do new_f () done) in
    {
      k_circuit = name;
      k_workload = workload;
      k_old_s = t_old;
      k_new_s = t_new;
      k_speedup = t_old /. Float.max 1e-12 t_new;
      k_checked = checked;
    }
  in
  (* Construction: the full append stream into a fresh core, strash misses
     throughout. *)
  let construction =
    row "construction" ~checked:structure_ok
      (fun () -> ignore (replay_legacy ops))
      (fun () -> ignore (replay_new ops))
  in
  (* Strash hits: re-issue every AND of the built graph; every probe is a
     table hit, no node is created. *)
  let hit_legacy () =
    let acc = ref 0 in
    Array.iter
      (function T_and (a, b) -> acc := !acc lxor Legacy_core.and_ lg a b | _ -> ())
      ops;
    ignore !acc
  and hit_new () =
    let acc = ref 0 in
    Array.iter
      (function T_and (a, b) -> acc := !acc lxor Graph.and_ ng a b | _ -> ())
      ops;
    ignore !acc
  in
  let nodes_before = Graph.num_nodes ng in
  hit_legacy ();
  hit_new ();
  let hits_ok = Graph.num_nodes ng = nodes_before && Legacy_core.num_nodes lg = nodes_before in
  let strash_hit = row "strash-hit" ~checked:hits_ok hit_legacy hit_new in
  (* Rebuild: allocating legacy rebuild vs the arena-backed [rebuild_with]
     recycling both the mapping scratch and the destination graph. *)
  let rb = Graph.rebuilder () in
  let rebuild_ok =
    Legacy_core.num_ands (Legacy_core.rebuild lg) = Graph.num_ands (Graph.rebuild src)
    &&
    let r = Graph.rebuild_with rb src in
    let same =
      Circuit_io.Aiger.graph_to_string r
      = Circuit_io.Aiger.graph_to_string (Graph.rebuild src)
    in
    Graph.recycle rb r;
    same
  in
  let rebuild =
    row "rebuild" ~checked:rebuild_ok
      (fun () -> ignore (Legacy_core.rebuild lg))
      (fun () ->
        let r = Graph.rebuild_with rb src in
        Graph.recycle rb r)
  in
  (* Derived views, cold: legacy rebuilds the CSR and the level array on
     every request; the new core recomputes the whole view bundle once per
     revision (here forced stale each iteration via a PO rewire). *)
  let v = Graph.views src in
  let lv_old = Legacy_core.levels lg in
  let off_old, tgt_old, _, _ = Legacy_core.fanout_build lg in
  let views_ok =
    lv_old = Array.sub v.Graph.v_levels 0 (Graph.num_nodes src)
    && off_old = v.Graph.v_offsets && tgt_old = v.Graph.v_targets
  in
  let views_cold =
    row "views-cold" ~checked:views_ok
      (fun () ->
        ignore (Legacy_core.fanout_build lg);
        ignore (Legacy_core.levels lg))
      (fun () ->
        (* Same-literal PO rewire: structurally a no-op, but it bumps the
           revision and invalidates the cached bundle. *)
        Graph.set_po src 0 (Graph.po_lit src 0);
        ignore (Graph.views src))
  in
  (* Derived views, warm: what a consumer actually pays per query — the old
     code rebuilt per call, the new one returns the cached bundle. *)
  let views_warm =
    row "views-warm" ~checked:views_ok
      (fun () ->
        ignore (Legacy_core.fanout_build lg);
        ignore (Legacy_core.levels lg))
      (fun () -> ignore (Graph.views src))
  in
  (* Clone: the old core's only way to an independent copy was a full
     strash-re-inserting rebuild; the new one blits the arrays. *)
  let clone_ok =
    Circuit_io.Aiger.graph_to_string (Graph.clone src)
    = Circuit_io.Aiger.graph_to_string src
  in
  let clone =
    row "clone" ~checked:clone_ok
      (fun () -> ignore (Legacy_core.rebuild lg))
      (fun () -> ignore (Graph.clone src))
  in
  (* Fraig classification over real simulation signatures: string-keyed
     (materialized complement + O(rounds) key per node) vs direct word
     hashing. *)
  let rounds = if smoke_mode then 256 else 1024 in
  let rng = Logic.Rng.create 7 in
  let pats = Sim.Patterns.random rng ~npis:(Graph.num_pis src) ~len:rounds in
  let sigs = Sim.Engine.simulate src pats in
  let ids =
    let acc = ref [] in
    Graph.iter_ands src (fun id -> acc := id :: !acc);
    Array.of_list (List.rev !acc)
  in
  let fraig_ok =
    Legacy_core.classify_string ~sigs ~ids ~rounds = classify_int ~sigs ~ids ~rounds
  in
  let fraig =
    row "fraig-classify" ~checked:fraig_ok
      (fun () -> ignore (Legacy_core.classify_string ~sigs ~ids ~rounds))
      (fun () -> ignore (classify_int ~sigs ~ids ~rounds))
  in
  [ construction; strash_hit; rebuild; views_cold; views_warm; clone; fraig ]

let core_json rows =
  let row r =
    Printf.sprintf
      "  {\"circuit\": \"%s\", \"workload\": \"%s\", \"old_s\": %.6f, \
       \"new_s\": %.6f, \"speedup\": %.2f, \"checked\": %b}"
      r.k_circuit r.k_workload r.k_old_s r.k_new_s r.k_speedup r.k_checked
  in
  Printf.sprintf "{\"mode\": \"%s\", \"rows\": [\n%s\n]}\n"
    (if smoke_mode then "smoke" else "full")
    (String.concat ",\n" (List.map row rows))

let core_bench () =
  Printf.printf
    "\n== AIG-core microbenchmark: legacy (boxed strash, per-call views) vs \
     struct-of-arrays ==\n\
     %!";
  let circuits = if smoke_mode then [ "c880" ] else [ "c880"; "c1908"; "c7552"; "mtp8" ] in
  let rows =
    List.concat_map
      (fun name ->
        match Circuits.Suite.find name with
        | None -> failwith ("core bench: unknown circuit " ^ name)
        | Some e ->
            let rows = core_rows e in
            List.iter
              (fun r ->
                Printf.printf "%-8s %-14s | old %10.3f ms  new %10.3f ms  (%6.1fx)%s\n%!"
                  r.k_circuit r.k_workload (1e3 *. r.k_old_s) (1e3 *. r.k_new_s)
                  r.k_speedup
                  (if r.k_checked then "" else "  RESULT MISMATCH"))
              rows;
            rows)
      circuits
  in
  let out = open_out "BENCH_core.json" in
  output_string out (core_json rows);
  close_out out;
  Printf.printf "wrote BENCH_core.json\n%!";
  if List.exists (fun r -> not r.k_checked) rows then begin
    Printf.eprintf "core bench: the two cores disagree — the refactor is WRONG\n";
    exit 1
  end;
  let floor workload = if smoke_mode then 0.5 else
    match workload with
    | "construction" | "rebuild" -> 2.0
    | "clone" -> 1.5
    | _ -> 0.5
  in
  let below = List.filter (fun r -> r.k_speedup < floor r.k_workload) rows in
  if below <> [] then begin
    List.iter
      (fun r ->
        Printf.eprintf "core bench: %s/%s at %.2fx is below the %.1fx floor\n"
          r.k_circuit r.k_workload r.k_speedup (floor r.k_workload))
      below;
    exit 1
  end

(* ---------- Exact-resubstitution benchmark (DESIGN.md section 15) ----------

   resyn2-with-resub against the plain three-pass pipeline over the
   benchmark suite: node/level reduction and wall-clock of compress2 with
   and without the fourth (exact-resubstitution) pass.  Each run's final
   graph is independently re-proven equivalent to the original with the CEC
   portfolio — a bench row is only "proven" if the end-to-end result
   certifies, on top of the per-commit proofs inside the engine.

   Writes BENCH_resub.json.  Gates: a refuted end-to-end proof is fatal
   in every mode; an Undecided one is fatal only in smoke mode, where
   the fixtures are small enough that the portfolio always closes (on
   the full corpus the largest miters can exhaust the bounded portfolio
   without implying anything is wrong — every commit inside the engine
   was individually certified).  In both modes resub must never end
   larger than plain compress2, and the fourth pass must yield a strict
   AND-count win on at least half the corpus — the headline claim of
   the pass. *)

type resub_row = {
  b_circuit : string;
  b_ands : int;  (** input (compacted) AND count *)
  b_plain_ands : int;
  b_resub_ands : int;
  b_plain_depth : int;
  b_resub_depth : int;
  b_plain_s : float;
  b_resub_s : float;
  b_accepted : int;
  b_proven : bool;  (** final graph CEC-proven equivalent to the input *)
  b_refuted : bool;  (** the CEC portfolio found a counterexample *)
}

let resub_fixture (e : Circuits.Suite.entry) =
  let g = Graph.compact (e.Circuits.Suite.build ()) in
  let t0 = wall () in
  let plain = Aig.Resyn.compress2 g in
  let plain_s = wall () -. t0 in
  let stats = ref Core.Resub_exact.zero_stats in
  let resub h =
    let h', st = Core.Resub_exact.run h in
    stats := Core.Resub_exact.add_stats !stats st;
    h'
  in
  let t1 = wall () in
  let withr = Aig.Resyn.compress2 ~resub g in
  let resub_s = wall () -. t1 in
  let proven, refuted =
    match Verify.Cec.run ~seed:11 ~effort:Verify.Cec.Thorough g withr with
    | Verify.Cec.Equivalent -> (true, false)
    | Verify.Cec.Undecided _ -> (false, false)
    | Verify.Cec.Inequivalent _ -> (false, true)
  in
  {
    b_circuit = e.Circuits.Suite.name;
    b_ands = Graph.num_ands g;
    b_plain_ands = Graph.num_ands plain;
    b_resub_ands = Graph.num_ands withr;
    b_plain_depth = Aig.Topo.depth plain;
    b_resub_depth = Aig.Topo.depth withr;
    b_plain_s = plain_s;
    b_resub_s = resub_s;
    b_accepted = !stats.Core.Resub_exact.accepted;
    b_proven = proven;
    b_refuted = refuted;
  }

let resub_bench () =
  Printf.printf
    "\n== Exact resubstitution: compress2 vs compress2+resub ==\n%!";
  let entries =
    if smoke_mode then
      List.filter_map Circuits.Suite.find [ "c880"; "c1908"; "ctrl"; "int2float" ]
    else Circuits.Suite.all
  in
  let rows =
    List.map
      (fun e ->
        let r = resub_fixture e in
        Printf.printf
          "%-10s %5d ands | plain %5d (d%3d) %6.2fs | +resub %5d (d%3d) %6.2fs \
           | %3d resubs%s%s\n\
           %!"
          r.b_circuit r.b_ands r.b_plain_ands r.b_plain_depth r.b_plain_s
          r.b_resub_ands r.b_resub_depth r.b_resub_s r.b_accepted
          (if r.b_resub_ands < r.b_plain_ands then "  WIN" else "")
          (if r.b_proven then ""
           else if r.b_refuted then "  REFUTED"
           else "  UNDECIDED");
        r)
      entries
  in
  let row r =
    Printf.sprintf
      "  {\"circuit\": \"%s\", \"ands\": %d, \"plain_ands\": %d, \
       \"resub_ands\": %d, \"plain_depth\": %d, \"resub_depth\": %d, \
       \"plain_s\": %.4f, \"resub_s\": %.4f, \"accepted\": %d, \
       \"proven\": %b, \"refuted\": %b}"
      r.b_circuit r.b_ands r.b_plain_ands r.b_resub_ands r.b_plain_depth
      r.b_resub_depth r.b_plain_s r.b_resub_s r.b_accepted r.b_proven
      r.b_refuted
  in
  let wins = List.length (List.filter (fun r -> r.b_resub_ands < r.b_plain_ands) rows) in
  let out = open_out "BENCH_resub.json" in
  Printf.fprintf out "{\"mode\": \"%s\", \"wins\": %d, \"rows\": [\n%s\n]}\n"
    (if smoke_mode then "smoke" else "full")
    wins
    (String.concat ",\n" (List.map row rows));
  close_out out;
  Printf.printf "wrote BENCH_resub.json (%d/%d strict AND wins)\n%!" wins
    (List.length rows);
  if List.exists (fun r -> r.b_refuted) rows then begin
    Printf.eprintf "resub bench: end-to-end CEC REFUTED a result — UNSOUND\n";
    exit 1
  end;
  let undecided = List.filter (fun r -> not r.b_proven) rows in
  if undecided <> [] then begin
    if smoke_mode then begin
      Printf.eprintf
        "resub bench: smoke fixture left Undecided by end-to-end CEC\n";
      exit 1
    end;
    List.iter
      (fun r ->
        Printf.printf
          "note: %s end-to-end proof Undecided (portfolio budget; every \
           commit was certified individually)\n"
          r.b_circuit)
      undecided
  end;
  if List.exists (fun r -> r.b_resub_ands > r.b_plain_ands) rows then begin
    Printf.eprintf "resub bench: resub ended LARGER than plain compress2\n";
    exit 1
  end;
  if 2 * wins < List.length rows then begin
    Printf.eprintf
      "resub bench: strict AND wins on only %d/%d circuits (need >= half)\n" wins
      (List.length rows);
    exit 1
  end

(* ---------- Driver ---------- *)

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let t0 = Sys.time () in
  let w0 = wall () in
  (match mode with
  | "table3" -> table3 ()
  | "table4" -> table4 ()
  | "table5" -> table5 ()
  | "table6" -> table6 ()
  | "table7" -> table7 ()
  | "micro" -> micro ()
  | "pool" -> pool_bench ()
  | "scoring" -> scoring ()
  | "core" -> core_bench ()
  | "serve" -> serve_bench ()
  | "explore" -> explore_bench ()
  | "maxerr" -> maxerr_bench ()
  | "resub" -> resub_bench ()
  | "ablations" -> ablations ()
  | "all" ->
      table3 ();
      table4 ();
      table5 ();
      table6 ();
      table7 ();
      ablations ();
      micro ();
      pool_bench ();
      scoring ();
      core_bench ();
      serve_bench ();
      explore_bench ();
      maxerr_bench ();
      resub_bench ()
  | m ->
      Printf.eprintf
        "unknown mode %s \
         (table3|table4|table5|table6|table7|ablations|micro|pool|scoring|core|serve|explore|maxerr|resub|all)\n"
        m;
      exit 1);
  Printf.printf "\ntotal bench time: %.1fs cpu, %.1fs wall%s\n" (Sys.time () -. t0)
    (wall () -. w0)
    (if full_mode then " (full mode)"
     else " (scaled mode; ALSRAC_BENCH_FULL=1 for full sweeps)")
