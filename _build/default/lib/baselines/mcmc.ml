module Graph = Aig.Graph
module Bitvec = Logic.Bitvec

type config = {
  metric : Errest.Metrics.kind;
  threshold : float;
  eval_rounds : int;
  proposals : int;
  temperature : float;
  seed : int;
  margin : float;
}

let default_config ~metric ~threshold =
  {
    metric;
    threshold;
    eval_rounds = 4096;
    proposals = 2000;
    temperature = 2.0;
    seed = 1;
    margin = 1.0;
  }

type report = {
  input_ands : int;
  output_ands : int;
  accepted : int;
  proposals_tried : int;
  final_est_error : float;
  runtime_s : float;
}

let run ~config g0 =
  let t_start = Sys.time () in
  let rng = Logic.Rng.create config.seed in
  let original = Graph.compact g0 in
  let npis = Graph.num_pis original in
  let eval_pats =
    if npis <= Sim.Patterns.exhaustive_limit && 1 lsl npis <= config.eval_rounds then
      Sim.Patterns.exhaustive ~npis
    else Sim.Patterns.random (Logic.Rng.split rng) ~npis ~len:config.eval_rounds
  in
  let golden = Sim.Engine.simulate_pos original eval_pats in
  let g = ref (Aig.Resyn.compress2 original) in
  let best = ref !g in
  let accepted = ref 0 in
  let tried = ref 0 in
  (* Cached state of the current chain element. *)
  let base_sigs = ref (Sim.Engine.simulate !g eval_pats) in
  let batch =
    ref (Errest.Batch.create !g ~metric:config.metric ~golden ~base:!base_sigs)
  in
  let and_nodes graph =
    let acc = ref [] in
    Graph.iter_ands graph (fun id -> acc := id :: !acc);
    Array.of_list !acc
  in
  let nodes = ref (and_nodes !g) in
  while !tried < config.proposals && Array.length !nodes > 0 do
    incr tried;
    let v = !nodes.(Logic.Rng.int rng (Array.length !nodes)) in
    let action = Logic.Rng.int rng 10 in
    let replacement_lit, new_sig =
      if action < 2 then begin
        let b = Logic.Rng.bool rng in
        let vec = Bitvec.create (Bitvec.length !base_sigs.(0)) in
        if b then Bitvec.fill vec true;
        ((if b then Graph.const1 else Graph.const0), vec)
      end
      else begin
        (* Earlier signal, random phase: provably acyclic. *)
        let s = 1 + Logic.Rng.int rng (max 1 (v - 1)) in
        let compl = Logic.Rng.bool rng in
        let base = !base_sigs.(s) in
        (Graph.make_lit s compl, if compl then Bitvec.lognot base else Bitvec.copy base)
      end
    in
    let err = Errest.Batch.candidate_error !batch ~node:v ~new_sig in
    if err <= config.threshold *. config.margin then begin
      let candidate =
        Graph.rebuild
          ~replace:(fun id ->
            if id = v then Some (Graph.Replace_lit replacement_lit) else None)
          !g
      in
      let candidate = Graph.compact candidate in
      let delta = Graph.num_ands candidate - Graph.num_ands !g in
      let accept =
        delta <= 0
        || Logic.Rng.float rng < exp (-.float_of_int delta /. config.temperature)
      in
      if accept then begin
        g := candidate;
        incr accepted;
        base_sigs := Sim.Engine.simulate !g eval_pats;
        batch := Errest.Batch.create !g ~metric:config.metric ~golden ~base:!base_sigs;
        nodes := and_nodes !g;
        if Graph.num_ands !g < Graph.num_ands !best then best := !g
      end
    end
  done;
  (* Final clean-up and certification on the evaluation sample. *)
  let final = Aig.Resyn.compress2 !best in
  let final_approx = Sim.Engine.simulate_pos final eval_pats in
  let final_err = Errest.Metrics.measure config.metric ~golden ~approx:final_approx in
  ( final,
    {
      input_ands = Graph.num_ands original;
      output_ands = Graph.num_ands final;
      accepted = !accepted;
      proposals_tried = !tried;
      final_est_error = final_err;
      runtime_s = Sys.time () -. t_start;
    } )
