(** Liu & Zhang's statistically certified stochastic ALS (reference [5]):
    Markov-chain Monte-Carlo search over local circuit mutations.

    Proposals draw a random node and replace it with a constant or an
    earlier signal; a proposal is feasible when its sampled error respects
    the threshold, and feasible proposals are accepted by the Metropolis
    rule on the AND-count cost.  The best feasible circuit seen is returned
    after a final certification measurement on the evaluation sample. *)

type config = {
  metric : Errest.Metrics.kind;
  threshold : float;
  eval_rounds : int;
  proposals : int;  (** MCMC chain length *)
  temperature : float;  (** Metropolis temperature on the AND-count cost *)
  seed : int;
  margin : float;
}

val default_config : metric:Errest.Metrics.kind -> threshold:float -> config

type report = {
  input_ands : int;
  output_ands : int;
  accepted : int;
  proposals_tried : int;
  final_est_error : float;
  runtime_s : float;
}

val run : config:config -> Aig.Graph.t -> Aig.Graph.t * report
