lib/baselines/mcmc.ml: Aig Array Errest Logic Sim Sys
