lib/baselines/sasimi.ml: Aig Array Core Errest List Logic Sim Sys
