lib/baselines/sasimi.mli: Aig Core Errest
