lib/baselines/mcmc.mli: Aig Errest
