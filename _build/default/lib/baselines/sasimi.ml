module Graph = Aig.Graph
module Bitvec = Logic.Bitvec

type config = {
  metric : Errest.Metrics.kind;
  threshold : float;
  eval_rounds : int;
  max_candidates_per_node : int;
  seed : int;
  resyn : Core.Config.resyn_level;
  max_iters : int;
  margin : float;
  max_seconds : float;
}

let default_config ~metric ~threshold =
  {
    metric;
    threshold;
    eval_rounds = 4096;
    max_candidates_per_node = 4;
    seed = 1;
    (* SASIMI is "substitute and simplify": dead-logic removal plus light
       cleanup, not a full resynthesis (see EXPERIMENTS.md for the ablation
       with Compress2). *)
    resyn = Core.Config.Light;
    max_iters = 10_000;
    margin = 1.0;
    max_seconds = infinity;
  }

type report = {
  input_ands : int;
  output_ands : int;
  applied : int;
  final_est_error : float;
  runtime_s : float;
}

type action = Sub_signal of int * bool (* source node, complemented *) | Sub_const of bool

let optimize (resyn : Core.Config.resyn_level) g =
  match resyn with
  | Core.Config.No_resyn -> Graph.compact g
  | Core.Config.Light -> Aig.Resyn.light g
  | Core.Config.Compress2 -> Aig.Resyn.compress2 g

(* Similar-signal candidates for node [v]: sources that precede it
   topologically (hence provably outside its TFO), ranked by signature
   hamming distance in either phase, plus the two constants. *)
let candidates_for g sim_sigs rounds cfg v =
  let sig_v = sim_sigs.(v) in
  let scored = ref [] in
  for s = 1 to v - 1 do
    if Graph.is_pi g s || Graph.is_and g s then begin
      let h = Bitvec.hamming sig_v sim_sigs.(s) in
      let direct = (h, Sub_signal (s, false)) in
      let inverted = (rounds - h, Sub_signal (s, true)) in
      scored := direct :: inverted :: !scored
    end
  done;
  let ones = Bitvec.popcount sig_v in
  scored := (ones, Sub_const false) :: (rounds - ones, Sub_const true) :: !scored;
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) !scored in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | (_, act) :: rest -> act :: take (n - 1) rest
  in
  take cfg.max_candidates_per_node sorted

let run ~config g0 =
  let t_start = Sys.time () in
  let rng = Logic.Rng.create config.seed in
  let original = Graph.compact g0 in
  let npis = Graph.num_pis original in
  let eval_pats =
    if npis <= Sim.Patterns.exhaustive_limit && 1 lsl npis <= config.eval_rounds then
      Sim.Patterns.exhaustive ~npis
    else Sim.Patterns.random (Logic.Rng.split rng) ~npis ~len:config.eval_rounds
  in
  let golden = Sim.Engine.simulate_pos original eval_pats in
  let sim_rounds = 128 in
  let g = ref (optimize config.resyn original) in
  let applied = ref 0 in
  let finished = ref false in
  while
    (not !finished) && !applied < config.max_iters && Graph.num_ands !g > 0
    && Sys.time () -. t_start < config.max_seconds
  do
    (* Small simulation for similarity ranking; large one for error. *)
    let sim_pats = Sim.Patterns.random rng ~npis ~len:sim_rounds in
    let sim_sigs = Sim.Engine.simulate !g sim_pats in
    let base_sigs = Sim.Engine.simulate !g eval_pats in
    let batch = Errest.Batch.create !g ~metric:config.metric ~golden ~base:base_sigs in
    let fanouts = Aig.Topo.fanout_counts !g in
    let best = ref None in
    Graph.iter_ands !g (fun v ->
        if fanouts.(v) > 0 then begin
          let gain = List.length (Aig.Cone.mffc !g ~fanouts v) in
          List.iter
            (fun action ->
              let new_sig =
                match action with
                | Sub_const b ->
                    let vec = Bitvec.create (Bitvec.length base_sigs.(0)) in
                    if b then Bitvec.fill vec true;
                    vec
                | Sub_signal (s, compl) ->
                    if compl then Bitvec.lognot base_sigs.(s) else Bitvec.copy base_sigs.(s)
              in
              let err = Errest.Batch.candidate_error batch ~node:v ~new_sig in
              if err <= config.threshold *. config.margin then begin
                let better =
                  match !best with
                  | None -> true
                  | Some (e0, g0, _, _) -> err < e0 || (err = e0 && gain > g0)
                in
                if better then best := Some (err, gain, v, action)
              end)
            (candidates_for !g sim_sigs sim_rounds config v)
        end);
    match !best with
    | None -> finished := true
    | Some (_, _, v, action) ->
        let replacement =
          match action with
          | Sub_const b -> Graph.Replace_lit (if b then Graph.const1 else Graph.const0)
          | Sub_signal (s, compl) -> Graph.Replace_lit (Graph.make_lit s compl)
        in
        let replaced =
          Graph.rebuild ~replace:(fun id -> if id = v then Some replacement else None) !g
        in
        let optimized = optimize config.resyn replaced in
        if Graph.num_ands optimized >= Graph.num_ands !g then finished := true
        else begin
          g := optimized;
          incr applied
        end
  done;
  let final_approx = Sim.Engine.simulate_pos !g eval_pats in
  let final_err = Errest.Metrics.measure config.metric ~golden ~approx:final_approx in
  ( !g,
    {
      input_ands = Graph.num_ands original;
      output_ands = Graph.num_ands !g;
      applied = !applied;
      final_est_error = final_err;
      runtime_s = Sys.time () -. t_start;
    } )
