(** Su's method (reference [13] of the paper): SASIMI-style
    substitute-and-simplify driven by the same batch error estimator.

    Each LAC replaces a target node by another signal of the circuit (either
    phase) or by a constant — the single-input substitution the paper
    contrasts with multi-input resubstitution.  Candidates are ranked by
    signature similarity; every iteration scores them with
    {!Errest.Batch} and applies the best one under the threshold. *)

type config = {
  metric : Errest.Metrics.kind;
  threshold : float;
  eval_rounds : int;
  max_candidates_per_node : int;  (** similar-signal candidates kept *)
  seed : int;
  resyn : Core.Config.resyn_level;
  max_iters : int;
  margin : float;
  max_seconds : float;  (** wall-clock budget; [infinity] = unbounded *)
}

val default_config : metric:Errest.Metrics.kind -> threshold:float -> config

type report = {
  input_ands : int;
  output_ands : int;
  applied : int;
  final_est_error : float;
  runtime_s : float;
}

val run : config:config -> Aig.Graph.t -> Aig.Graph.t * report
