(** EPFL random/control-class benchmark substitutes (DESIGN.md §2.2).

    Functions with a public specification ([dec], [priority], [int2float],
    [voter], [arbiter]) are rebuilt to spec, some at reduced width; the
    irregular controllers ([cavlc], [i2c], [mem_ctrl], [router], [ctrl])
    are structured synthetic control logic of the same size class, generated
    deterministically. *)

val arbiter : ?n:int -> unit -> Aig.Graph.t
(** Rotating-priority arbiter: requests [r0..], pointer [p0..]; one-hot
    grants.  Default [n = 32] (EPFL original: 256). *)

val cavlc : unit -> Aig.Graph.t
(** 10-in / 11-out table-lookup logic (seeded two-level structure). *)

val ctrl : unit -> Aig.Graph.t
(** 7-in / 26-out instruction-decode control block. *)

val dec : ?bits:int -> unit -> Aig.Graph.t
(** Full decoder; default [bits = 8] → 256 outputs (EPFL-exact). *)

val i2c : unit -> Aig.Graph.t
(** Bus-controller slice: next-state + data-path steering. *)

val int2float : unit -> Aig.Graph.t
(** 11-bit signed integer to sign/exponent/mantissa (7 outputs). *)

val mem_ctrl : unit -> Aig.Graph.t
(** Memory-controller slice: bank decode, rotating arbitration, timers. *)

val priority : ?n:int -> unit -> Aig.Graph.t
(** Priority encoder; default [n = 128] (EPFL-exact size). *)

val router : unit -> Aig.Graph.t
(** Address-range port matcher. *)

val voter : ?n:int -> unit -> Aig.Graph.t
(** Majority voter; default [n = 101] (EPFL original: 1001). *)
