(** Unsigned multipliers: the [mtp8] (carry-save array) and [wal8]
    (Wallace tree) benchmarks and the EPFL [mult]/[square] classes.

    PIs [a0.., b0..], POs [p0 .. p2w-1] (LSB first). *)

val array_mult : width:int -> Aig.Graph.t
(** Carry-save array multiplier ([mtp<width>]). *)

val wallace : width:int -> Aig.Graph.t
(** Wallace-tree reduction with a final ripple adder ([wal<width>]). *)

val square : width:int -> Aig.Graph.t
(** Squarer: single operand, POs [p0 .. p2w-1]. *)

val reduce_columns : Aig.Graph.t -> Aig.Graph.lit list array -> Word.word
(** Wallace-style 3:2 column compression to two rows, then a ripple adder;
    [columns.(i)] holds the weight-[2^i] partial bits.  Shared with the
    composite arithmetic benchmarks. *)
