(** ISCAS-85-class synthetic substitutes (DESIGN.md §2.1): circuits of the
    same functional family and size class as the c-series benchmarks the
    paper uses.  Names carry a [c<nnnn>] prefix to signal the class they
    stand in for. *)

val c880_like : unit -> Aig.Graph.t
(** 8-bit ALU ([c880] is documented as an 8-bit ALU). *)

val c1908_like : unit -> Aig.Graph.t
(** (21,16) Hamming SEC encoder/corrector ([c1908] is a 16-bit SEC/DED). *)

val c2670_like : unit -> Aig.Graph.t
(** 12-bit adder + magnitude/equality comparator with control enables. *)

val c3540_like : unit -> Aig.Graph.t
(** 8-bit multi-function ALU with two banks selected by a mode bit. *)

val c5315_like : unit -> Aig.Graph.t
(** 9-bit ALU with dual result buses. *)

val c7552_like : unit -> Aig.Graph.t
(** 32-bit adder + comparator + parity network. *)
