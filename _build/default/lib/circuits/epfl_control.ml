module Graph = Aig.Graph
module Builder = Aig.Builder

let arbiter ?(n = 32) () =
  let g = Graph.create ~name:"arbiter" () in
  let req = Word.input_word g "r" n in
  let ptr_bits = Encode.bits_for n in
  let ptr = Word.input_word g "p" ptr_bits in
  (* Rotate requests right by the pointer, pick the first, rotate back. *)
  let rotate word ~right =
    let result = ref word in
    Array.iteri
      (fun stage sel ->
        let k = 1 lsl stage in
        let rotated =
          Array.init n (fun i ->
              let src = if right then (i + k) mod n else (i - k + n) mod n in
              !result.(src))
        in
        result := Word.mux_word g ~sel ~t:rotated ~e:!result)
      ptr;
    !result
  in
  let rotated = rotate req ~right:true in
  let grant_rot = Encode.one_hot_first g rotated in
  let grant = rotate grant_rot ~right:false in
  Word.output_word g "g" grant;
  g

(* Deterministic structured random logic: the stand-in for table-driven
   controllers whose netlists are irregular by nature. *)
let seeded_sop g rng inputs ~cubes ~lits_lo ~lits_hi =
  let n = Array.length inputs in
  let cube () =
    let lits = lits_lo + Logic.Rng.int rng (lits_hi - lits_lo + 1) in
    let chosen = Array.make n 0 in
    let terms = ref [] in
    for _ = 1 to lits do
      let v = Logic.Rng.int rng n in
      if chosen.(v) = 0 then begin
        chosen.(v) <- 1;
        let lit = if Logic.Rng.bool rng then inputs.(v) else Graph.lit_not inputs.(v) in
        terms := lit :: !terms
      end
    done;
    Builder.and_list g !terms
  in
  Builder.or_list g (List.init cubes (fun _ -> cube ()))

let cavlc () =
  let g = Graph.create ~name:"cavlc" () in
  let inputs = Word.input_word g "x" 10 in
  let rng = Logic.Rng.create 0xCA71C in
  for o = 0 to 10 do
    let f = seeded_sop g rng inputs ~cubes:9 ~lits_lo:3 ~lits_hi:6 in
    ignore (Graph.add_po ~name:(Printf.sprintf "y%d" o) g f)
  done;
  g

let ctrl () =
  (* Instruction decoder: 7-bit opcode -> 26 control lines, built from a full
     decode of the top 4 bits combined with the low bits. *)
  let g = Graph.create ~name:"ctrl" () in
  let opcode = Word.input_word g "op" 7 in
  let hi = Array.sub opcode 3 4 in
  let lo = Array.sub opcode 0 3 in
  let onehot = Encode.decode g hi in
  let classes =
    [|
      [ 0; 1; 2 ]; [ 3; 4 ]; [ 5 ]; [ 6; 7; 8 ]; [ 9 ]; [ 10; 11 ];
      [ 12; 13; 14; 15 ]; [ 1; 5; 9 ]; [ 2; 6; 10 ]; [ 0; 15 ]; [ 4; 8; 12 ];
      [ 3; 7; 11 ]; [ 13; 14 ]; [ 0; 2; 4; 6 ]; [ 1; 3; 5; 7 ]; [ 8; 9; 10; 11 ];
    |]
  in
  let class_sig idxs = Builder.or_list g (List.map (fun i -> onehot.(i)) idxs) in
  Array.iteri
    (fun i idxs ->
      ignore (Graph.add_po ~name:(Printf.sprintf "c%d" i) g (class_sig idxs)))
    classes;
  (* Qualified lines mixing the low bits in. *)
  let quals =
    [
      (0, 0); (1, 1); (2, 2); (3, 0); (4, 1); (5, 2); (6, 0); (7, 1); (8, 2); (9, 0);
    ]
  in
  List.iteri
    (fun i (cls, bit) ->
      let f = Graph.and_ g (class_sig classes.(cls)) lo.(bit) in
      ignore (Graph.add_po ~name:(Printf.sprintf "q%d" i) g f))
    quals;
  g

let dec ?(bits = 8) () =
  let g = Graph.create ~name:"dec" () in
  let sel = Word.input_word g "a" bits in
  Word.output_word g "d" (Encode.decode g sel);
  g

let i2c () =
  (* Controller slice: 5-bit state machine step + address match + shifter. *)
  let g = Graph.create ~name:"i2c" () in
  let state = Word.input_word g "st" 5 in
  let scl = Graph.add_pi ~name:"scl" g in
  let sda = Graph.add_pi ~name:"sda" g in
  let start = Graph.add_pi ~name:"start" g in
  let stop = Graph.add_pi ~name:"stop" g in
  let addr = Word.input_word g "addr" 7 in
  let own = Word.input_word g "own" 7 in
  let data = Word.input_word g "d" 8 in
  let addr_match = Word.equal g addr own in
  let one = Word.const_word 1 ~width:5 in
  let next_seq, _ = Word.ripple_add g state one ~cin:Graph.const0 in
  let idle = Word.const_word 0 ~width:5 in
  let next =
    Word.mux_word g ~sel:stop ~t:idle
      ~e:(Word.mux_word g ~sel:start ~t:(Word.const_word 1 ~width:5) ~e:next_seq)
  in
  let gated = Word.mux_word g ~sel:scl ~t:next ~e:state in
  Word.output_word g "nst" gated;
  let shifted = Array.init 8 (fun i -> if i = 0 then sda else data.(i - 1)) in
  Word.output_word g "sh" shifted;
  ignore (Graph.add_po ~name:"ack" g (Graph.and_ g addr_match scl));
  ignore
    (Graph.add_po ~name:"busy" g
       (Graph.and_ g (Builder.or_list g (Array.to_list state)) (Graph.lit_not stop)));
  ignore (Graph.add_po ~name:"sda_o" g (Builder.mux g ~sel:addr_match ~t:data.(7) ~e:sda));
  g

let int2float () =
  (* 11-bit two's-complement integer -> sign, 4-bit exponent, 2-bit mantissa
     (truncated), the EPFL 11-in/7-out interface. *)
  let g = Graph.create ~name:"int2float" () in
  let x = Word.input_word g "x" 11 in
  let sign = x.(10) in
  let mag10 = Array.sub (Word.mux_word g ~sel:sign ~t:(Word.negate g x) ~e:x) 0 10 in
  let lead = Encode.one_hot_last g mag10 in
  let exp = Encode.binary_of_one_hot g lead in
  (* Mantissa: the two bits right below the leading one. *)
  let bit_at_offset off =
    let taps = ref [] in
    Array.iteri
      (fun i sel -> if i - off >= 0 then taps := Graph.and_ g sel mag10.(i - off) :: !taps)
      lead;
    Builder.or_list g !taps
  in
  ignore (Graph.add_po ~name:"sign" g sign);
  Word.output_word g "exp" exp;
  ignore (Graph.add_po ~name:"m1" g (bit_at_offset 1));
  ignore (Graph.add_po ~name:"m2" g (bit_at_offset 2));
  g

let mem_ctrl () =
  (* A wide controller slice: bank decoding with enables, a 4-master rotating
     arbiter, refresh-timer comparators and byte steering. *)
  let g = Graph.create ~name:"mem_ctrl" () in
  let addr = Word.input_word g "addr" 16 in
  let req = Word.input_word g "req" 4 in
  let ptr = Word.input_word g "ptr" 2 in
  let timer = Word.input_word g "t" 12 in
  let refresh_at = Word.input_word g "rfsh" 12 in
  let wdata = Word.input_word g "w" 8 in
  let be = Word.input_word g "be" 4 in
  let mode = Word.input_word g "mode" 3 in
  (* Bank select: top 4 address bits. *)
  let bank = Encode.decode g (Array.sub addr 12 4) in
  let row_parity = Word.parity g (Array.sub addr 0 12) in
  (* Rotating arbitration among 4 masters. *)
  let rotate word right =
    let result = ref word in
    Array.iteri
      (fun stage sel ->
        let k = 1 lsl stage in
        let rotated =
          Array.init 4 (fun i -> !result.((if right then i + k else i - k + 8) mod 4))
        in
        result := Word.mux_word g ~sel ~t:rotated ~e:!result)
      ptr;
    !result
  in
  let grant = rotate (Encode.one_hot_first g (rotate req true)) false in
  (* Refresh when the timer reaches the programmed interval. *)
  let refresh = Word.equal g timer refresh_at in
  let urgent = Word.less_unsigned g refresh_at timer in
  let do_refresh = Builder.or_ g refresh urgent in
  (* Byte lanes: write data replicated under byte enables, killed during
     refresh. *)
  let lanes =
    Array.concat
      (List.init 4 (fun lane ->
           Array.map
             (fun b ->
               Builder.and_list g [ b; be.(lane); Graph.lit_not do_refresh ])
             wdata))
  in
  Word.output_word g "bank" (Array.map (fun b -> Graph.and_ g b (Graph.lit_not do_refresh)) bank);
  Word.output_word g "gnt" grant;
  Word.output_word g "lane" lanes;
  ignore (Graph.add_po ~name:"rfsh_go" g do_refresh);
  ignore (Graph.add_po ~name:"rp" g row_parity);
  (* Mode-dependent command encoding. *)
  let cmd = Encode.decode g mode in
  Array.iteri
    (fun i c ->
      if i < 6 then
        ignore
          (Graph.add_po ~name:(Printf.sprintf "cmd%d" i) g
             (Graph.and_ g c (Builder.or_list g (Array.to_list req)))))
    cmd;
  g

let priority ?(n = 128) () =
  let g = Graph.create ~name:"priority" () in
  let x = Word.input_word g "x" n in
  let sel = Encode.one_hot_first g x in
  Word.output_word g "idx" (Encode.binary_of_one_hot g sel);
  ignore (Graph.add_po ~name:"valid" g (Builder.or_list g (Array.to_list x)));
  g

let router () =
  (* Route an 8-bit destination against three [lo, hi] port ranges. *)
  let g = Graph.create ~name:"router" () in
  let dest = Word.input_word g "dest" 8 in
  let hits =
    List.init 3 (fun p ->
        let lo = Word.input_word g (Printf.sprintf "lo%d" p) 8 in
        let hi = Word.input_word g (Printf.sprintf "hi%d" p) 8 in
        let ge_lo = Graph.lit_not (Word.less_unsigned g dest lo) in
        let le_hi = Graph.lit_not (Word.less_unsigned g hi dest) in
        Graph.and_ g ge_lo le_hi)
  in
  let any = Builder.or_list g hits in
  List.iteri
    (fun p hit -> ignore (Graph.add_po ~name:(Printf.sprintf "port%d" p) g hit))
    hits;
  ignore (Graph.add_po ~name:"dflt" g (Graph.lit_not any));
  (* First matching port as a 2-bit index. *)
  let onehot = Encode.one_hot_first g (Array.of_list hits) in
  Word.output_word g "pidx" (Encode.binary_of_one_hot g onehot);
  g

let voter ?(n = 101) () =
  let g = Graph.create ~name:"voter" () in
  let x = Word.input_word g "x" n in
  let count = Encode.popcount g x in
  let majority = Word.const_word ((n / 2) + 1) ~width:(Array.length count) in
  let ge = Graph.lit_not (Word.less_unsigned g count majority) in
  ignore (Graph.add_po ~name:"maj" g ge);
  g
