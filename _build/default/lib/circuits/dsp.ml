module Graph = Aig.Graph

let constant_mult g x c =
  if c < 0 then invalid_arg "Dsp.constant_mult: negative constant";
  let out_width = Array.length x + Encode.bits_for (max 1 c) in
  let acc = ref (Word.zero ~width:out_width) in
  let bit = ref 0 in
  let c = ref c in
  while !c <> 0 do
    if !c land 1 = 1 then begin
      (* acc += x << bit *)
      let shifted =
        Array.init out_width (fun i ->
            if i - !bit >= 0 && i - !bit < Array.length x then x.(i - !bit)
            else Graph.const0)
      in
      let sum, _ = Word.ripple_add g !acc shifted ~cin:Graph.const0 in
      acc := sum
    end;
    incr bit;
    c := !c lsr 1
  done;
  !acc

let weighted_sum g words weights =
  let terms = List.map2 (fun w c -> constant_mult g w c) words weights in
  let width = List.fold_left (fun acc t -> max acc (Array.length t)) 0 terms + 4 in
  List.fold_left
    (fun acc t ->
      let sum, _ = Word.ripple_add g acc (Word.resize t width) ~cin:Graph.const0 in
      sum)
    (Word.zero ~width) terms

let fir3 ?(width = 8) ?(taps = (1, 2, 1)) () =
  let c0, c1, c2 = taps in
  let g = Graph.create ~name:"fir3" () in
  let xs = List.init 3 (fun i -> Word.input_word g (Printf.sprintf "x%d" i) width) in
  let y = weighted_sum g xs [ c0; c1; c2 ] in
  (* Trim to the exact maximum value of the sum. *)
  let maxval = ((1 lsl width) - 1) * (c0 + c1 + c2) in
  Word.output_word g "y" (Word.resize y (Encode.bits_for (maxval + 1)));
  g

let gaussian3x3 ?(width = 8) () =
  let g = Graph.create ~name:"gaussian3x3" () in
  let pixels =
    List.init 9 (fun i -> Word.input_word g (Printf.sprintf "p%d" i) width)
  in
  let weights = [ 1; 2; 1; 2; 4; 2; 1; 2; 1 ] in
  let sum = weighted_sum g pixels weights in
  (* Divide by 16: drop four low bits. *)
  let out = Array.init width (fun i -> if i + 4 < Array.length sum then sum.(i + 4) else Graph.const0) in
  Word.output_word g "y" out;
  g

let sobel3x3 ?(width = 8) () =
  (* |Gx| + |Gy| with Gx = (p2 + 2 p5 + p8) - (p0 + 2 p3 + p6),
                    Gy = (p6 + 2 p7 + p8) - (p0 + 2 p1 + p2). *)
  let g = Graph.create ~name:"sobel3x3" () in
  let p = Array.init 9 (fun i -> Word.input_word g (Printf.sprintf "p%d" i) width) in
  let side idxs = weighted_sum g (List.map (fun (i, c) -> (p.(i), c)) idxs |> List.map fst)
                    (List.map snd idxs) in
  let w = width + 3 in
  let abs_diff a b =
    let a = Word.resize a w and b = Word.resize b w in
    let d1, no_borrow = Word.subtract g a b in
    let d2, _ = Word.subtract g b a in
    Word.mux_word g ~sel:no_borrow ~t:d1 ~e:d2
  in
  let gx = abs_diff (side [ (2, 1); (5, 2); (8, 1) ]) (side [ (0, 1); (3, 2); (6, 1) ]) in
  let gy = abs_diff (side [ (6, 1); (7, 2); (8, 1) ]) (side [ (0, 1); (1, 2); (2, 1) ]) in
  let mag, _ = Word.ripple_add g gx gy ~cin:Graph.const0 in
  Word.output_word g "m" (Word.resize mag (width + 2));
  g

let mac ?(width = 8) () =
  let g = Graph.create ~name:"mac" () in
  let a = Word.input_word g "a" width in
  let b = Word.input_word g "b" width in
  let acc = Word.input_word g "c" (2 * width) in
  let pp = Array.map (fun bj -> Array.map (fun ai -> Graph.and_ g ai bj) a) b in
  let columns = Array.make ((2 * width) + 1) [] in
  Array.iteri
    (fun j row -> Array.iteri (fun i bit -> columns.(i + j) <- bit :: columns.(i + j)) row)
    pp;
  Array.iteri (fun i bit -> columns.(i) <- bit :: columns.(i)) acc;
  let sum = Multipliers.reduce_columns g columns in
  Word.output_word g "y" sum;
  g

(* Compare-exchange: after the swap, position [i] holds the minimum. *)
let median3x3 ?(width = 8) () =
  let g = Graph.create ~name:"median3x3" () in
  let p = Array.init 9 (fun i -> Word.input_word g (Printf.sprintf "p%d" i) width) in
  let exchange i j =
    let gt = Word.less_unsigned g p.(j) p.(i) in
    let lo = Word.mux_word g ~sel:gt ~t:p.(j) ~e:p.(i) in
    let hi = Word.mux_word g ~sel:gt ~t:p.(i) ~e:p.(j) in
    p.(i) <- lo;
    p.(j) <- hi
  in
  (* Paeth's 19-exchange median-of-9 network. *)
  List.iter
    (fun (i, j) -> exchange i j)
    [ (1, 2); (4, 5); (7, 8); (0, 1); (3, 4); (6, 7); (1, 2); (4, 5); (7, 8);
      (0, 3); (5, 8); (4, 7); (3, 6); (1, 4); (2, 5); (4, 7); (4, 2); (6, 4);
      (4, 2) ]
  ;
  Word.output_word g "m" p.(4);
  g
