module Graph = Aig.Graph
module Builder = Aig.Builder

let adder ?(width = 32) () =
  let g = Graph.create ~name:"adder" () in
  let a = Word.input_word g "a" width in
  let b = Word.input_word g "b" width in
  let sum, cout = Word.ripple_add g a b ~cin:Graph.const0 in
  Word.output_word g "s" sum;
  ignore (Graph.add_po ~name:"cout" g cout);
  g

let shifter ?(width = 32) () =
  let g = Graph.create ~name:"shifter" () in
  let x = Word.input_word g "x" width in
  let amount = Word.input_word g "sh" (Encode.bits_for width) in
  Word.output_word g "y" (Word.shift_right g x ~amount);
  g

let divide_core g num den =
  let w = Array.length num in
  let rw = w + 1 in
  let den_ext = Word.resize den rw in
  let rem = ref (Word.zero ~width:rw) in
  let q = Array.make w Graph.const0 in
  for i = w - 1 downto 0 do
    let shifted = Array.init rw (fun j -> if j = 0 then num.(i) else !rem.(j - 1)) in
    let diff, no_borrow = Word.subtract g shifted den_ext in
    q.(i) <- no_borrow;
    rem := Word.mux_word g ~sel:no_borrow ~t:diff ~e:shifted
  done;
  (q, Array.sub !rem 0 w)

let divisor ?(width = 16) () =
  let g = Graph.create ~name:"divisor" () in
  let num = Word.input_word g "n" width in
  let den = Word.input_word g "d" width in
  let q, r = divide_core g num den in
  Word.output_word g "q" q;
  Word.output_word g "r" r;
  g

let isqrt_core g x =
  let w = Array.length x in
  if w mod 2 <> 0 then invalid_arg "isqrt_core: odd width";
  let half = w / 2 in
  let rw = half + 4 in
  let rem = ref (Word.zero ~width:rw) in
  let root = ref (Word.zero ~width:rw) in
  for i = half - 1 downto 0 do
    (* Bring down two radicand bits. *)
    let shifted =
      Array.init rw (fun j ->
          if j = 0 then x.(2 * i)
          else if j = 1 then x.((2 * i) + 1)
          else !rem.(j - 2))
    in
    (* Trial subtrahend: (root << 2) | 1. *)
    let trial =
      Array.init rw (fun j ->
          if j = 0 then Graph.const1 else if j = 1 then Graph.const0 else !root.(j - 2))
    in
    let diff, no_borrow = Word.subtract g shifted trial in
    rem := Word.mux_word g ~sel:no_borrow ~t:diff ~e:shifted;
    root := Array.init rw (fun j -> if j = 0 then no_borrow else !root.(j - 1))
  done;
  (Array.sub !root 0 half, !rem)

let sqrt_ ?(width = 32) () =
  let g = Graph.create ~name:"sqrt" () in
  let x = Word.input_word g "x" width in
  let root, _ = isqrt_core g x in
  Word.output_word g "rt" root;
  g

let hyp ?(width = 8) () =
  let g = Graph.create ~name:"hyp" () in
  let x = Word.input_word g "x" width in
  let y = Word.input_word g "y" width in
  let pps a = Array.map (fun bj -> Array.map (fun ai -> Graph.and_ g ai bj) a) a in
  let square_word a =
    let columns = Array.make (2 * width) [] in
    Array.iteri
      (fun j row ->
        Array.iteri (fun i bit -> columns.(i + j) <- bit :: columns.(i + j)) row)
      (pps a);
    columns
  in
  (* Sum of squares via shared column reduction, then an 18-bit sqrt. *)
  let cx = square_word x and cy = square_word y in
  let columns = Array.init ((2 * width) + 2) (fun i ->
      (if i < 2 * width then cx.(i) @ cy.(i) else [])) in
  let total = Multipliers.reduce_columns g columns in
  let root, _ = isqrt_core g total in
  Word.output_word g "h" root;
  g

let log2 ?(width = 16) () =
  (* Leading-one position (integer part) plus the 8 bits that follow the
     leading one (truncated binary fraction). *)
  let g = Graph.create ~name:"log2" () in
  let x = Word.input_word g "x" width in
  let lead = Encode.one_hot_last g x in
  let ilog = Encode.binary_of_one_hot g lead in
  let frac_bits = 8 in
  let frac =
    Array.init frac_bits (fun k ->
        let off = k + 1 in
        let taps = ref [] in
        Array.iteri
          (fun i sel ->
            if i - off >= 0 then taps := Graph.and_ g sel x.(i - off) :: !taps)
          lead;
        Builder.or_list g !taps)
  in
  (* frac.(0) is right below the leading one = weight 1/2 -> emit MSB-down. *)
  Word.output_word g "ilog" ilog;
  Word.output_word g "frac" (Array.init frac_bits (fun i -> frac.(frac_bits - 1 - i)));
  ignore (Graph.add_po ~name:"valid" g (Builder.or_list g (Array.to_list x)));
  g

let max_ ?(width = 16) () =
  let g = Graph.create ~name:"max" () in
  let ops = Array.init 4 (fun i -> Word.input_word g (Printf.sprintf "x%c" (Char.chr (97 + i))) width) in
  let pick a b = (* (max, a_wins) *)
    let b_gt = Word.less_unsigned g a b in
    (Word.mux_word g ~sel:b_gt ~t:b ~e:a, Graph.lit_not b_gt)
  in
  let m01, w01 = pick ops.(0) ops.(1) in
  let m23, w23 = pick ops.(2) ops.(3) in
  let m, first_pair_wins = pick m01 m23 in
  Word.output_word g "m" m;
  (* Argmax index (2 bits). *)
  let idx0 =
    Builder.mux g ~sel:first_pair_wins ~t:(Graph.lit_not w01) ~e:(Graph.lit_not w23)
  in
  ignore (Graph.add_po ~name:"i0" g idx0);
  ignore (Graph.add_po ~name:"i1" g (Graph.lit_not first_pair_wins));
  g

let mult ?(width = 16) () =
  let g = Multipliers.wallace ~width in
  Graph.set_name g "mult";
  g

let sine ?(width = 12) () =
  (* sin(pi * t) for t in [0,1) as fixed point: the Bhaskara-like parabola
     4 t (1 - t), computed exactly in fixed point and truncated to [width]
     fractional bits. *)
  let g = Graph.create ~name:"sine" () in
  let t = Word.input_word g "t" width in
  let one_minus_t = Word.negate g t in
  (* (1 - t) mod 1 == two's complement negation for t <> 0; t = 0 -> 0. *)
  let pp = Array.map (fun bj -> Array.map (fun ai -> Graph.and_ g ai bj) t) one_minus_t in
  let columns = Array.make (2 * width) [] in
  Array.iteri
    (fun j row -> Array.iteri (fun i bit -> columns.(i + j) <- bit :: columns.(i + j)) row)
    pp;
  let prod = Multipliers.reduce_columns g columns in
  (* t(1-t) in [0, 1/4]; multiply by 4 = shift left 2, keep top [width]. *)
  let y = Array.init width (fun i -> prod.(width - 2 + i)) in
  Word.output_word g "y" y;
  g

let square ?(width = 16) () =
  let g = Multipliers.square ~width in
  Graph.set_name g "square";
  g
