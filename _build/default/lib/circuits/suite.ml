type klass = Iscas_arith | Epfl_control | Epfl_arith

type entry = {
  name : string;
  klass : klass;
  note : string;
  build : unit -> Aig.Graph.t;
}

let exact = "exact architecture reconstruction"

let all =
  [
    (* --- ISCAS & arithmetic (Tables IV, V) --- *)
    { name = "alu4"; klass = Iscas_arith;
      note = "74181-class 4-bit ALU as a flat PLA (MCNC alu4 is a PLA)";
      build = (fun () -> Alu.alu4_pla ()) };
    { name = "c880"; klass = Iscas_arith; note = "8-bit ALU stand-in";
      build = (fun () -> Iscas_like.c880_like ()) };
    { name = "c1908"; klass = Iscas_arith; note = "(21,16) Hamming SEC stand-in";
      build = (fun () -> Iscas_like.c1908_like ()) };
    { name = "c2670"; klass = Iscas_arith; note = "12-bit add/compare + control stand-in";
      build = (fun () -> Iscas_like.c2670_like ()) };
    { name = "c3540"; klass = Iscas_arith; note = "dual-bank 8-bit ALU stand-in";
      build = (fun () -> Iscas_like.c3540_like ()) };
    { name = "c5315"; klass = Iscas_arith; note = "9-bit ALU stand-in";
      build = (fun () -> Iscas_like.c5315_like ()) };
    { name = "c7552"; klass = Iscas_arith; note = "32-bit add/compare/parity stand-in";
      build = (fun () -> Iscas_like.c7552_like ()) };
    { name = "rca32"; klass = Iscas_arith; note = exact;
      build = (fun () -> Adders.ripple_carry ~width:32) };
    { name = "cla32"; klass = Iscas_arith; note = exact;
      build = (fun () -> Adders.carry_lookahead ~width:32) };
    { name = "ksa32"; klass = Iscas_arith; note = exact;
      build = (fun () -> Adders.kogge_stone ~width:32) };
    { name = "mtp8"; klass = Iscas_arith; note = exact ^ " (8x8 array multiplier)";
      build = (fun () -> Multipliers.array_mult ~width:8) };
    { name = "wal8"; klass = Iscas_arith; note = exact ^ " (8x8 Wallace multiplier)";
      build = (fun () -> Multipliers.wallace ~width:8) };
    (* --- EPFL random/control (Table VI) --- *)
    { name = "arbiter"; klass = Epfl_control; note = "rotating arbiter, 32 req (EPFL: 256)";
      build = (fun () -> Epfl_control.arbiter ()) };
    { name = "cavlc"; klass = Epfl_control; note = "seeded table-lookup logic, 10 in / 11 out";
      build = (fun () -> Epfl_control.cavlc ()) };
    { name = "ctrl"; klass = Epfl_control; note = "instruction-decode block, 7 in / 26 out";
      build = (fun () -> Epfl_control.ctrl ()) };
    { name = "dec"; klass = Epfl_control; note = "8-to-256 decoder (EPFL-exact interface)";
      build = (fun () -> Epfl_control.dec ()) };
    { name = "i2c"; klass = Epfl_control; note = "bus-controller slice stand-in";
      build = (fun () -> Epfl_control.i2c ()) };
    { name = "int2float"; klass = Epfl_control; note = "11-bit int to 7-bit float (EPFL-exact interface)";
      build = (fun () -> Epfl_control.int2float ()) };
    { name = "mem_ctrl"; klass = Epfl_control; note = "memory-controller slice stand-in";
      build = (fun () -> Epfl_control.mem_ctrl ()) };
    { name = "priority"; klass = Epfl_control; note = "128-bit priority encoder (EPFL-exact size)";
      build = (fun () -> Epfl_control.priority ()) };
    { name = "router"; klass = Epfl_control; note = "range-match port router stand-in";
      build = (fun () -> Epfl_control.router ()) };
    { name = "voter"; klass = Epfl_control; note = "101-input majority (EPFL: 1001)";
      build = (fun () -> Epfl_control.voter ()) };
    (* --- EPFL arithmetic (Table VII) --- *)
    { name = "adder"; klass = Epfl_arith; note = "32-bit (EPFL: 128)";
      build = (fun () -> Epfl_arith.adder ()) };
    { name = "shifter"; klass = Epfl_arith; note = "32-bit logical right barrel (EPFL: 128)";
      build = (fun () -> Epfl_arith.shifter ()) };
    { name = "divisor"; klass = Epfl_arith; note = "16-bit restoring divider (EPFL: 64)";
      build = (fun () -> Epfl_arith.divisor ()) };
    { name = "hyp"; klass = Epfl_arith;
      note = "8-bit Euclidean norm (EPFL: 128); excluded from runs like the paper";
      build = (fun () -> Epfl_arith.hyp ()) };
    { name = "log2"; klass = Epfl_arith; note = "16-bit input (EPFL: 32)";
      build = (fun () -> Epfl_arith.log2 ()) };
    { name = "max"; klass = Epfl_arith; note = "4x16-bit (EPFL: 4x128)";
      build = (fun () -> Epfl_arith.max_ ()) };
    { name = "mult"; klass = Epfl_arith; note = "16x16 Wallace (EPFL: 64x64)";
      build = (fun () -> Epfl_arith.mult ()) };
    { name = "sine"; klass = Epfl_arith; note = "12-bit parabolic approximation (EPFL sin: 24)";
      build = (fun () -> Epfl_arith.sine ()) };
    { name = "sqrt"; klass = Epfl_arith; note = "32-bit radicand (EPFL: 128)";
      build = (fun () -> Epfl_arith.sqrt_ ()) };
    { name = "square"; klass = Epfl_arith; note = "16-bit (EPFL: 64)";
      build = (fun () -> Epfl_arith.square ()) };
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let of_klass k = List.filter (fun e -> e.klass = k) all

let nmed_set = [ "cla32"; "ksa32"; "mtp8"; "rca32"; "wal8" ]

let klass_to_string = function
  | Iscas_arith -> "ISCAS & arithmetic"
  | Epfl_control -> "EPFL random/control"
  | Epfl_arith -> "EPFL arithmetic"
