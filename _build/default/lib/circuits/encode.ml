module Graph = Aig.Graph
module Builder = Aig.Builder

let one_hot_first g bits =
  let blocked = ref Graph.const0 in
  Array.map
    (fun b ->
      let sel = Graph.and_ g b (Graph.lit_not !blocked) in
      blocked := Builder.or_ g !blocked b;
      sel)
    bits

let one_hot_last g bits =
  let n = Array.length bits in
  let rev = Array.init n (fun i -> bits.(n - 1 - i)) in
  let sel = one_hot_first g rev in
  Array.init n (fun i -> sel.(n - 1 - i))

let bits_for n =
  let rec go b = if 1 lsl b >= n then b else go (b + 1) in
  go 0

let binary_of_one_hot g one_hot =
  let n = Array.length one_hot in
  let w = bits_for n in
  Array.init w (fun j ->
      let taps = ref [] in
      Array.iteri (fun i s -> if (i lsr j) land 1 = 1 then taps := s :: !taps) one_hot;
      Builder.or_list g !taps)

let decode g sel =
  let n = Array.length sel in
  Array.init (1 lsl n) (fun v ->
      Builder.and_list g
        (List.init n (fun j ->
             if (v lsr j) land 1 = 1 then sel.(j) else Graph.lit_not sel.(j))))

let popcount g bits =
  (* Pairwise full-adder (3:2 compressor) reduction on equal-weight bins. *)
  let out_width = bits_for (Array.length bits + 1) in
  let bins = Array.make (out_width + 1) [] in
  bins.(0) <- Array.to_list bits;
  for w = 0 to out_width - 1 do
    let rec crunch = function
      | a :: b :: c :: rest ->
          let s, carry = Builder.full_adder g a b c in
          bins.(w + 1) <- carry :: bins.(w + 1);
          s :: crunch rest
      | [ a; b ] ->
          let s, carry = Builder.half_adder g a b in
          bins.(w + 1) <- carry :: bins.(w + 1);
          [ s ]
      | rest -> rest
    in
    let rec fixpoint bits = if List.length bits > 1 then fixpoint (crunch bits) else bits in
    bins.(w) <- fixpoint bins.(w)
  done;
  Array.init out_width (fun w -> match bins.(w) with [ b ] -> b | _ -> Graph.const0)
