(** Encoders/decoders shared by the control-class benchmarks. *)

val bits_for : int -> int
(** Smallest [b] with [2^b >= n]. *)

val one_hot_first : Aig.Graph.t -> Word.word -> Word.word
(** [one_hot_first g bits]: bit [i] set iff input bit [i] is the
    lowest-index set bit. *)

val one_hot_last : Aig.Graph.t -> Word.word -> Word.word
(** Highest-index set bit wins (leading-one detector). *)

val binary_of_one_hot : Aig.Graph.t -> Word.word -> Word.word
(** Encode a one-hot word into its index ([ceil log2 n] bits). *)

val decode : Aig.Graph.t -> Word.word -> Word.word
(** Full binary decoder: [n] select bits to [2^n] one-hot outputs. *)

val popcount : Aig.Graph.t -> Word.word -> Word.word
(** Population count as a [ceil log2 (n+1)]-bit word (full-adder tree). *)
