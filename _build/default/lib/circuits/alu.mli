(** Multi-function ALUs: the [alu4]-class benchmark and the ISCAS-class ALU
    substitutes (see DESIGN.md §2.1).

    Interface of {!alu}: PIs [a0..], [b0..], [op0..op2], [mode], [cin],
    [en]; POs [f0..], [cout], [zero], [par].  Operations by [op]:
    add, sub, and, or, xor, nor, shift-left-1 (into [cin]), pass-A; [mode]
    complements the result, [en] gates it to zero. *)

val alu : ?name:string -> width:int -> unit -> Aig.Graph.t

val alu4 : unit -> Aig.Graph.t
(** 4-bit instance (14 PIs / 8 POs, the [alu4] size class). *)

val alu4_pla : unit -> Aig.Graph.t
(** The same function rebuilt as a flat two-level PLA (ISOP per output from
    the exhaustively tabulated truth tables) — the MCNC [alu4] benchmark is
    a PLA, so this is the faithful structural form, and at ~3.6k AND gates
    it also matches the paper's reported size (2798 mapped gates). *)
