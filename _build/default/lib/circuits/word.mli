(** Word-level construction helpers: little-endian literal arrays (index 0 =
    LSB), the building blocks of every generated benchmark. *)

type word = Aig.Graph.lit array

val input_word : Aig.Graph.t -> string -> int -> word
(** [input_word g "a" 4] adds PIs [a0..a3]. *)

val output_word : Aig.Graph.t -> string -> word -> unit
(** Adds POs [<name>0 ..] LSB first — the encoding {!Errest.Metrics} expects. *)

val const_word : int -> width:int -> word
(** Constant literals of the given value. *)

val zero : width:int -> word

val ripple_add : Aig.Graph.t -> word -> word -> cin:Aig.Graph.lit -> word * Aig.Graph.lit
(** [(sum, carry_out)]; operands must share a width. *)

val subtract : Aig.Graph.t -> word -> word -> word * Aig.Graph.lit
(** Two's complement [a - b]; the carry out is the NOT-borrow. *)

val negate : Aig.Graph.t -> word -> word

val equal : Aig.Graph.t -> word -> word -> Aig.Graph.lit

val less_unsigned : Aig.Graph.t -> word -> word -> Aig.Graph.lit
(** [a < b], unsigned. *)

val mux_word : Aig.Graph.t -> sel:Aig.Graph.lit -> t:word -> e:word -> word

val and_word : Aig.Graph.t -> word -> word -> word
val or_word : Aig.Graph.t -> word -> word -> word
val xor_word : Aig.Graph.t -> word -> word -> word
val not_word : word -> word

val shift_left : Aig.Graph.t -> word -> amount:word -> word
(** Barrel shifter; [amount] is a little-endian shift count (any width);
    vacated positions fill with 0; result has the operand's width. *)

val shift_right : Aig.Graph.t -> word -> amount:word -> word

val resize : word -> int -> word
(** Truncate or zero-extend. *)

val parity : Aig.Graph.t -> word -> Aig.Graph.lit
