module Graph = Aig.Graph
module Builder = Aig.Builder

let partial_products g a b =
  Array.map (fun bj -> Array.map (fun ai -> Graph.and_ g ai bj) a) b

let array_mult ~width =
  let g = Graph.create ~name:(Printf.sprintf "mtp%d" width) () in
  let a = Word.input_word g "a" width in
  let b = Word.input_word g "b" width in
  let pp = partial_products g a b in
  (* Row-by-row accumulation.  Invariant: before processing row [j],
     [acc.(i)] carries weight [2^(j+i)]; afterwards [product.(0..j)] holds
     the settled low bits. *)
  let product = Array.make (2 * width) Graph.const0 in
  product.(0) <- pp.(0).(0);
  let acc =
    ref (Array.init width (fun i -> if i + 1 < width then pp.(0).(i + 1) else Graph.const0))
  in
  for j = 1 to width - 1 do
    let sum, cout = Word.ripple_add g pp.(j) !acc ~cin:Graph.const0 in
    product.(j) <- sum.(0);
    acc := Array.init width (fun i -> if i + 1 < width then sum.(i + 1) else cout)
  done;
  for i = 0 to width - 1 do
    product.(width + i) <- !acc.(i)
  done;
  Word.output_word g "p" product;
  g

(* Dadda/Wallace-style column reduction using full/half adders until every
   column has at most two bits, then one ripple adder. *)
let reduce_columns g columns =
  let width = Array.length columns in
  let current = Array.map (fun l -> ref l) columns in
  let busy () = Array.exists (fun c -> List.length !c > 2) current in
  while busy () do
    let next = Array.map (fun _ -> ref []) current in
    for i = 0 to width - 1 do
      let rec crunch bits =
        match bits with
        | a :: b :: c :: rest ->
            let s, carry = Builder.full_adder g a b c in
            next.(i) := s :: !(next.(i));
            if i + 1 < width then next.(i + 1) := carry :: !(next.(i + 1));
            crunch rest
        | [ a; b ] when List.length !(current.(i)) > 2 ->
            let s, carry = Builder.half_adder g a b in
            next.(i) := s :: !(next.(i));
            if i + 1 < width then next.(i + 1) := carry :: !(next.(i + 1))
        | rest -> next.(i) := rest @ !(next.(i))
      in
      crunch !(current.(i))
    done;
    Array.iteri (fun i c -> current.(i) <- c) next
  done;
  let x = Array.make width Graph.const0 and y = Array.make width Graph.const0 in
  Array.iteri
    (fun i c ->
      match !c with
      | [] -> ()
      | [ a ] -> x.(i) <- a
      | [ a; b ] ->
          x.(i) <- a;
          y.(i) <- b
      | _ -> assert false)
    current;
  let sum, _ = Word.ripple_add g x y ~cin:Graph.const0 in
  sum

let wallace_product g a b width =
  let pp = partial_products g a b in
  let columns = Array.make (2 * width) [] in
  Array.iteri
    (fun j row -> Array.iteri (fun i bit -> columns.(i + j) <- bit :: columns.(i + j)) row)
    pp;
  reduce_columns g columns

let wallace ~width =
  let g = Graph.create ~name:(Printf.sprintf "wal%d" width) () in
  let a = Word.input_word g "a" width in
  let b = Word.input_word g "b" width in
  Word.output_word g "p" (wallace_product g a b width);
  g

let square ~width =
  let g = Graph.create ~name:(Printf.sprintf "square%d" width) () in
  let a = Word.input_word g "a" width in
  Word.output_word g "p" (wallace_product g a a width);
  g
