(** EPFL arithmetic-class benchmark substitutes, width-scaled for an
    iterative ALS loop on laptop hardware (scale factors are recorded in
    {!Suite} and DESIGN.md §2.2). *)

val adder : ?width:int -> unit -> Aig.Graph.t
(** Plain adder; default 32 bits (EPFL: 128; kept within the 62-output
    limit of the integer-encoded error metrics). *)

val shifter : ?width:int -> unit -> Aig.Graph.t
(** Logical right barrel shifter; default 32 bits (EPFL: 128). *)

val divisor : ?width:int -> unit -> Aig.Graph.t
(** Restoring divider, quotient + remainder; default 16 bits (EPFL: 64).
    Division by zero yields an all-ones quotient and passes the dividend
    through as remainder. *)

val hyp : ?width:int -> unit -> Aig.Graph.t
(** Euclidean norm [floor (sqrt (x^2 + y^2))]; default 8-bit operands (EPFL
    hyp: 128-bit).  Listed for completeness; excluded from the Table VII
    runs exactly as the paper excludes [hyp]. *)

val log2 : ?width:int -> unit -> Aig.Graph.t
(** Integer + 8-bit fractional base-2 logarithm; default 16-bit input
    (EPFL: 32). *)

val max_ : ?width:int -> unit -> Aig.Graph.t
(** Maximum of four unsigned operands + argmax index; default 16 bits
    (EPFL: four 128-bit operands). *)

val mult : ?width:int -> unit -> Aig.Graph.t
(** Wallace multiplier; default 16×16 (EPFL: 64×64). *)

val sine : ?width:int -> unit -> Aig.Graph.t
(** Fixed-point parabolic sine approximation over a half period; default
    12-bit phase (EPFL sin: 24-bit). *)

val sqrt_ : ?width:int -> unit -> Aig.Graph.t
(** Restoring integer square root; default 32-bit radicand (EPFL: 128). *)

val square : ?width:int -> unit -> Aig.Graph.t
(** Squarer; default 16 bits (EPFL: 64). *)

(** {1 Cores} (shared with tests) *)

val divide_core :
  Aig.Graph.t -> Word.word -> Word.word -> Word.word * Word.word
(** [(quotient, remainder)] of equal-width unsigned operands. *)

val isqrt_core : Aig.Graph.t -> Word.word -> Word.word * Word.word
(** [(root, remainder)]; the input width must be even. *)
