lib/circuits/adders.mli: Aig
