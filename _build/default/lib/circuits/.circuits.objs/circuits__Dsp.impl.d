lib/circuits/dsp.ml: Aig Array Encode List Multipliers Printf Word
