lib/circuits/epfl_control.ml: Aig Array Encode List Logic Printf Word
