lib/circuits/suite.ml: Adders Aig Alu Epfl_arith Epfl_control Iscas_like List Multipliers
