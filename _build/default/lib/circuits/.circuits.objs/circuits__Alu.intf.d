lib/circuits/alu.mli: Aig
