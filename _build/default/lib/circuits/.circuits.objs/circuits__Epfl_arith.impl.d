lib/circuits/epfl_arith.ml: Aig Array Char Encode Multipliers Printf Word
