lib/circuits/suite.mli: Aig
