lib/circuits/encode.ml: Aig Array List
