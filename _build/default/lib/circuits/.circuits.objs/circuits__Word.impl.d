lib/circuits/word.ml: Aig Array Printf
