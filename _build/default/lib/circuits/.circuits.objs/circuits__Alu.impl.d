lib/circuits/alu.ml: Aig Array List Logic Printf Sim Word
