lib/circuits/multipliers.ml: Aig Array List Printf Word
