lib/circuits/encode.mli: Aig Word
