lib/circuits/dsp.mli: Aig Word
