lib/circuits/adders.ml: Aig Array Printf Word
