lib/circuits/epfl_arith.mli: Aig Word
