lib/circuits/epfl_control.mli: Aig
