lib/circuits/iscas_like.ml: Aig Alu Array List Word
