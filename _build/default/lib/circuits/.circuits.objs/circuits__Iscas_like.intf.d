lib/circuits/iscas_like.mli: Aig
