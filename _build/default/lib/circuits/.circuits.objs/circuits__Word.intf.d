lib/circuits/word.mli: Aig
