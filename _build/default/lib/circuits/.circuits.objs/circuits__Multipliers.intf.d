lib/circuits/multipliers.mli: Aig Word
