module Graph = Aig.Graph
module Builder = Aig.Builder

let c880_like () = Alu.alu ~name:"c880" ~width:8 ()

(* (21,16) Hamming code: 16 data bits live at the non-power-of-two positions
   of a 21-bit codeword; check bits at positions 1,2,4,8,16.  The circuit
   receives a codeword, recomputes the syndrome, and corrects a single-bit
   error in the data. *)
let c1908_like () =
  let g = Graph.create ~name:"c1908" () in
  let code = Word.input_word g "c" 21 in
  (* position = index + 1 (1-based positions). *)
  let syndrome =
    Array.init 5 (fun j ->
        let taps = ref [] in
        Array.iteri
          (fun i bit ->
            let pos = i + 1 in
            if (pos lsr j) land 1 = 1 then taps := bit :: !taps)
          code;
        Builder.xor_list g !taps)
  in
  (* Correct data bits: data bit k sits at the k-th non-power position. *)
  let is_power p = p land (p - 1) = 0 in
  let corrected = ref [] in
  Array.iteri
    (fun i bit ->
      let pos = i + 1 in
      if not (is_power pos) then begin
        (* Syndrome equals this position -> flip. *)
        let hit =
          Builder.and_list g
            (List.init 5 (fun j ->
                 if (pos lsr j) land 1 = 1 then syndrome.(j) else Graph.lit_not syndrome.(j)))
        in
        corrected := Builder.xor g bit hit :: !corrected
      end)
    code;
  Word.output_word g "d" (Array.of_list (List.rev !corrected));
  Word.output_word g "syn" syndrome;
  ignore
    (Graph.add_po ~name:"err" g (Builder.or_list g (Array.to_list syndrome)));
  g

let c2670_like () =
  let g = Graph.create ~name:"c2670" () in
  let width = 12 in
  let a = Word.input_word g "a" width in
  let b = Word.input_word g "b" width in
  let cin = Graph.add_pi ~name:"cin" g in
  let en_add = Graph.add_pi ~name:"en_add" g in
  let en_cmp = Graph.add_pi ~name:"en_cmp" g in
  let inv_b = Graph.add_pi ~name:"inv_b" g in
  let b' = Array.map (fun l -> Builder.xor g l inv_b) b in
  let sum, cout = Word.ripple_add g a b' ~cin in
  let gated = Array.map (fun l -> Graph.and_ g l en_add) sum in
  let eq = Graph.and_ g (Word.equal g a b') en_cmp in
  let lt = Graph.and_ g (Word.less_unsigned g a b') en_cmp in
  Word.output_word g "s" gated;
  ignore (Graph.add_po ~name:"cout" g (Graph.and_ g cout en_add));
  ignore (Graph.add_po ~name:"eq" g eq);
  ignore (Graph.add_po ~name:"lt" g lt);
  ignore (Graph.add_po ~name:"par" g (Word.parity g gated));
  g

let c3540_like () =
  (* Two ALU banks sharing operands, selected by a mode input: mimics the
     binary/BCD dual personality of c3540. *)
  let g = Graph.create ~name:"c3540" () in
  let width = 8 in
  let a = Word.input_word g "a" width in
  let b = Word.input_word g "b" width in
  let op = Word.input_word g "op" 3 in
  let bank = Graph.add_pi ~name:"bank" g in
  let cin = Graph.add_pi ~name:"cin" g in
  let add_sum, add_cout = Word.ripple_add g a b ~cin in
  let sub_sum, sub_cout = Word.subtract g a b in
  let shl = Word.shift_left g a ~amount:(Word.resize op 2) in
  let shr = Word.shift_right g a ~amount:(Word.resize op 2) in
  let bank0 =
    [| add_sum; sub_sum; Word.and_word g a b; Word.or_word g a b |]
  in
  let bank1 =
    [| Word.xor_word g a b; Word.not_word (Word.and_word g a b); shl; shr |]
  in
  let pick bank_arr =
    let l1 =
      Array.init 2 (fun i ->
          Word.mux_word g ~sel:op.(0) ~t:bank_arr.((2 * i) + 1) ~e:bank_arr.(2 * i))
    in
    Word.mux_word g ~sel:op.(1) ~t:l1.(1) ~e:l1.(0)
  in
  let f = Word.mux_word g ~sel:bank ~t:(pick bank1) ~e:(pick bank0) in
  let cout = Builder.mux g ~sel:op.(0) ~t:sub_cout ~e:add_cout in
  Word.output_word g "f" f;
  ignore (Graph.add_po ~name:"cout" g (Graph.and_ g cout (Graph.lit_not bank)));
  ignore (Graph.add_po ~name:"zero" g (Graph.lit_not (Builder.or_list g (Array.to_list f))));
  ignore (Graph.add_po ~name:"neg" g f.(width - 1));
  g

let c5315_like () = Alu.alu ~name:"c5315" ~width:9 ()

let c7552_like () =
  let g = Graph.create ~name:"c7552" () in
  let width = 32 in
  let a = Word.input_word g "a" width in
  let b = Word.input_word g "b" width in
  let cin = Graph.add_pi ~name:"cin" g in
  let sel = Graph.add_pi ~name:"sel" g in
  let sum, cout = Word.ripple_add g a b ~cin in
  let diff, bout = Word.subtract g a b in
  let f = Word.mux_word g ~sel ~t:diff ~e:sum in
  Word.output_word g "f" f;
  ignore (Graph.add_po ~name:"cout" g (Builder.mux g ~sel ~t:bout ~e:cout));
  ignore (Graph.add_po ~name:"eq" g (Word.equal g a b));
  ignore (Graph.add_po ~name:"lt" g (Word.less_unsigned g a b));
  ignore (Graph.add_po ~name:"para" g (Word.parity g a));
  ignore (Graph.add_po ~name:"parb" g (Word.parity g b));
  ignore (Graph.add_po ~name:"parf" g (Word.parity g f));
  g
