(** The benchmark catalog: every circuit of the paper's Table III, with the
    substitution/scale notes of DESIGN.md §2. *)

type klass =
  | Iscas_arith  (** "ISCAS & arithmetic" group (Tables IV and V) *)
  | Epfl_control  (** "EPFL random/control" group (Table VI) *)
  | Epfl_arith  (** "EPFL arithmetic" group (Table VII) *)

type entry = {
  name : string;  (** the paper's benchmark name *)
  klass : klass;
  note : string;  (** substitution / scaling note *)
  build : unit -> Aig.Graph.t;
}

val all : entry list

val find : string -> entry option

val of_klass : klass -> entry list

val nmed_set : string list
(** The arithmetic circuits of the Table V (NMED) experiment. *)

val klass_to_string : klass -> string
