module Graph = Aig.Graph
module Builder = Aig.Builder

let interface name width =
  let g = Graph.create ~name () in
  let a = Word.input_word g "a" width in
  let b = Word.input_word g "b" width in
  let cin = Graph.add_pi ~name:"cin" g in
  (g, a, b, cin)

let finish g sum cout =
  Word.output_word g "s" sum;
  ignore (Graph.add_po ~name:"cout" g cout);
  g

let ripple_carry ~width =
  let g, a, b, cin = interface (Printf.sprintf "rca%d" width) width in
  let sum, cout = Word.ripple_add g a b ~cin in
  finish g sum cout

let carry_lookahead ~width =
  let g, a, b, cin = interface (Printf.sprintf "cla%d" width) width in
  let p = Array.init width (fun i -> Builder.xor g a.(i) b.(i)) in
  let gen = Array.init width (fun i -> Graph.and_ g a.(i) b.(i)) in
  let carries = Array.make (width + 1) cin in
  (* 4-bit lookahead groups; group carry-ins ripple between groups. *)
  let group = 4 in
  let i = ref 0 in
  while !i < width do
    let base = !i in
    let hi = min (base + group) width in
    for j = base to hi - 1 do
      (* c_{j+1} = g_j + p_j g_{j-1} + ... + p_j..p_base c_base *)
      let terms = ref [] in
      for t = base to j do
        let prod = ref gen.(t) in
        for u = t + 1 to j do
          prod := Graph.and_ g !prod p.(u)
        done;
        terms := !prod :: !terms
      done;
      let prop_all = ref carries.(base) in
      for u = base to j do
        prop_all := Graph.and_ g !prop_all p.(u)
      done;
      carries.(j + 1) <- Builder.or_list g (!prop_all :: !terms)
    done;
    i := hi
  done;
  let sum = Array.init width (fun i -> Builder.xor g p.(i) carries.(i)) in
  finish g sum carries.(width)

let kogge_stone ~width =
  let g, a, b, cin = interface (Printf.sprintf "ksa%d" width) width in
  let p0 = Array.init width (fun i -> Builder.xor g a.(i) b.(i)) in
  let g0 = Array.init width (fun i -> Graph.and_ g a.(i) b.(i)) in
  (* Fold cin into bit 0's generate/propagate. *)
  let gen = Array.copy g0 and prop = Array.copy p0 in
  gen.(0) <- Builder.or_ g g0.(0) (Graph.and_ g p0.(0) cin);
  (* Parallel-prefix: (G, P) o (G', P') = (G + P G', P P'). *)
  let dist = ref 1 in
  while !dist < width do
    let gen' = Array.copy gen and prop' = Array.copy prop in
    for i = !dist to width - 1 do
      gen'.(i) <- Builder.or_ g gen.(i) (Graph.and_ g prop.(i) gen.(i - !dist));
      prop'.(i) <- Graph.and_ g prop.(i) prop.(i - !dist)
    done;
    Array.blit gen' 0 gen 0 width;
    Array.blit prop' 0 prop 0 width;
    dist := !dist * 2
  done;
  (* carries.(i) = carry INTO bit i. *)
  let carry_in i = if i = 0 then cin else gen.(i - 1) in
  let sum = Array.init width (fun i -> Builder.xor g p0.(i) (carry_in i)) in
  finish g sum gen.(width - 1)
