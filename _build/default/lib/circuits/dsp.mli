(** DSP-style datapath circuits: the error-resilient workloads the paper's
    introduction motivates (image processing, filtering).

    All are pure combinational datapaths over unsigned fixed-point words,
    built from the shared {!Word}/{!Multipliers} blocks. *)

val constant_mult : Aig.Graph.t -> Word.word -> int -> Word.word
(** [constant_mult g x c]: shift-and-add multiplication by a non-negative
    constant; result width is [width x + bits_for c]. *)

val fir3 : ?width:int -> ?taps:int * int * int -> unit -> Aig.Graph.t
(** 3-tap FIR filter [y = c0 x0 + c1 x1 + c2 x2] over three [width]-bit
    samples (default 8-bit, taps (1, 2, 1) — the binomial smoothing
    kernel).  POs carry the full-precision sum. *)

val gaussian3x3 : ?width:int -> unit -> Aig.Graph.t
(** 3x3 binomial ("Gaussian") image-smoothing kernel: nine [width]-bit
    pixels in, one [width]-bit pixel out ([ (sum of weighted pixels) / 16 ],
    weights 1-2-1 / 2-4-2 / 1-2-1).  Default 8-bit pixels. *)

val sobel3x3 : ?width:int -> unit -> Aig.Graph.t
(** 3x3 Sobel gradient magnitude (|Gx| + |Gy| approximation), nine pixels
    in, [width+2]-bit magnitude out.  Default 8-bit pixels. *)

val mac : ?width:int -> unit -> Aig.Graph.t
(** Multiply-accumulate [a * b + acc]: the inner kernel of every dot
    product.  Default 8x8 + 16. *)

val median3x3 : ?width:int -> unit -> Aig.Graph.t
(** 3x3 median filter: nine [width]-bit pixels in, their median out,
    realized as a 19-comparator selection network (Paeth's classic
    9-element median exchange sequence).  Default 8-bit pixels. *)
