module Graph = Aig.Graph
module Builder = Aig.Builder

type word = Graph.lit array

let input_word g name width =
  Array.init width (fun i -> Graph.add_pi ~name:(Printf.sprintf "%s%d" name i) g)

let output_word g name w =
  Array.iteri
    (fun i l -> ignore (Graph.add_po ~name:(Printf.sprintf "%s%d" name i) g l))
    w

let const_word value ~width =
  Array.init width (fun i ->
      if (value lsr i) land 1 = 1 then Graph.const1 else Graph.const0)

let zero ~width = const_word 0 ~width

let check_widths a b = if Array.length a <> Array.length b then invalid_arg "Word: width mismatch"

let ripple_add g a b ~cin =
  check_widths a b;
  let carry = ref cin in
  let sum =
    Array.init (Array.length a) (fun i ->
        let s, c = Builder.full_adder g a.(i) b.(i) !carry in
        carry := c;
        s)
  in
  (sum, !carry)

let not_word a = Array.map Graph.lit_not a

let subtract g a b =
  let sum, carry = ripple_add g a (not_word b) ~cin:Graph.const1 in
  (sum, carry)

let negate g a =
  let sum, _ = ripple_add g (not_word a) (const_word 1 ~width:(Array.length a)) ~cin:Graph.const0 in
  sum

let equal g a b =
  check_widths a b;
  Builder.and_list g (Array.to_list (Array.map2 (Builder.xnor g) a b))

let less_unsigned g a b =
  check_widths a b;
  (* a < b  <=>  a - b borrows  <=>  NOT carry_out of a + ~b + 1. *)
  let _, carry = subtract g a b in
  Graph.lit_not carry

let mux_word g ~sel ~t ~e =
  check_widths t e;
  Array.init (Array.length t) (fun i -> Builder.mux g ~sel ~t:t.(i) ~e:e.(i))

let and_word g a b =
  check_widths a b;
  Array.map2 (Graph.and_ g) a b

let or_word g a b =
  check_widths a b;
  Array.map2 (Builder.or_ g) a b

let xor_word g a b =
  check_widths a b;
  Array.map2 (Builder.xor g) a b

let shift_by_fixed w ~left ~k =
  let n = Array.length w in
  Array.init n (fun i ->
      let src = if left then i - k else i + k in
      if src < 0 || src >= n then Graph.const0 else w.(src))

let barrel g w ~amount ~left =
  let result = ref w in
  Array.iteri
    (fun stage sel ->
      let k = 1 lsl stage in
      if k < 2 * Array.length w then
        result := mux_word g ~sel ~t:(shift_by_fixed !result ~left ~k) ~e:!result)
    amount;
  !result

let shift_left g w ~amount = barrel g w ~amount ~left:true

let shift_right g w ~amount = barrel g w ~amount ~left:false

let resize w width =
  Array.init width (fun i -> if i < Array.length w then w.(i) else Graph.const0)

let parity g w = Aig.Builder.xor_list g (Array.to_list w)
