(** Adder architectures: the [rca32]/[cla32]/[ksa32] benchmarks and the EPFL
    [adder] class.

    All build a fresh AIG with PIs [a0.., b0.., cin] and POs [s0.., cout]
    (LSB-first unsigned encoding). *)

val ripple_carry : width:int -> Aig.Graph.t
(** [rca<width>]: chained full adders. *)

val carry_lookahead : width:int -> Aig.Graph.t
(** [cla<width>]: 4-bit lookahead groups with rippled group carries. *)

val kogge_stone : width:int -> Aig.Graph.t
(** [ksa<width>]: logarithmic parallel-prefix adder. *)
