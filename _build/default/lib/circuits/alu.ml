module Graph = Aig.Graph
module Builder = Aig.Builder

let alu ?name ~width () =
  let name = match name with Some n -> n | None -> Printf.sprintf "alu%d" width in
  let g = Graph.create ~name () in
  let a = Word.input_word g "a" width in
  let b = Word.input_word g "b" width in
  let op = Word.input_word g "op" 3 in
  let mode = Graph.add_pi ~name:"mode" g in
  let cin = Graph.add_pi ~name:"cin" g in
  let en = Graph.add_pi ~name:"en" g in
  let add_sum, add_cout = Word.ripple_add g a b ~cin in
  let sub_sum, sub_cout = Word.subtract g a b in
  let shl = Array.init width (fun i -> if i = 0 then cin else a.(i - 1)) in
  let results =
    [|
      add_sum;
      sub_sum;
      Word.and_word g a b;
      Word.or_word g a b;
      Word.xor_word g a b;
      Word.not_word (Word.or_word g a b);
      shl;
      a;
    |]
  in
  (* 3-level mux tree over the op bits. *)
  let level1 =
    Array.init 4 (fun i ->
        Word.mux_word g ~sel:op.(0) ~t:results.((2 * i) + 1) ~e:results.(2 * i))
  in
  let level2 =
    Array.init 2 (fun i -> Word.mux_word g ~sel:op.(1) ~t:level1.((2 * i) + 1) ~e:level1.(2 * i))
  in
  let selected = Word.mux_word g ~sel:op.(2) ~t:level2.(1) ~e:level2.(0) in
  let f = Array.map (fun l -> Builder.xor g l mode) selected in
  let f = Array.map (fun l -> Graph.and_ g l en) f in
  (* Carry out is meaningful for add/sub only. *)
  let is_add =
    Builder.and_list g [ Graph.lit_not op.(0); Graph.lit_not op.(1); Graph.lit_not op.(2) ]
  in
  let is_sub =
    Builder.and_list g [ op.(0); Graph.lit_not op.(1); Graph.lit_not op.(2) ]
  in
  let cout =
    Builder.or_ g (Graph.and_ g is_add add_cout) (Graph.and_ g is_sub sub_cout)
  in
  let zero = Graph.lit_not (Builder.or_list g (Array.to_list f)) in
  Word.output_word g "f" f;
  ignore (Graph.add_po ~name:"cout" g (Graph.and_ g cout en));
  ignore (Graph.add_po ~name:"zero" g zero);
  ignore (Graph.add_po ~name:"par" g (Word.parity g f));
  g

let alu4 () = alu ~name:"alu4" ~width:4 ()

let alu4_pla () =
  let beh = alu4 () in
  let npis = Graph.num_pis beh in
  let pats = Sim.Patterns.exhaustive ~npis in
  let pos = Sim.Engine.simulate_pos beh pats in
  let g = Graph.create ~name:"alu4" () in
  let pis = Array.init npis (fun i -> Graph.add_pi ~name:(Graph.pi_name beh i) g) in
  Array.iteri
    (fun o sigv ->
      let tt = Logic.Truth.of_fun npis (fun m -> Logic.Bitvec.get sigv m) in
      let cover = Logic.Isop.compute ~on:tt ~dc:(Logic.Truth.const0 npis) in
      let cube_lit (c : Logic.Cube.t) =
        let lits = ref [] in
        for v = 0 to npis - 1 do
          match Logic.Cube.phase_of c v with
          | Some true -> lits := pis.(v) :: !lits
          | Some false -> lits := Graph.lit_not pis.(v) :: !lits
          | None -> ()
        done;
        Builder.and_list g !lits
      in
      let products = List.map cube_lit cover.Logic.Cover.cubes in
      ignore (Graph.add_po ~name:(Graph.po_name beh o) g (Builder.or_list g products)))
    pos;
  g
