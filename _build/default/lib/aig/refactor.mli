(** MFFC-based refactoring (the [rf] step of resyn2).

    Each maximum fanout-free cone with few enough inputs is collapsed to a
    truth table, minimized with Espresso, algebraically factored, and the
    factored form replaces the cone when it needs fewer AND gates.  The
    transform never increases the AND count: the rebuilt graph is returned
    only when smaller. *)

val run : ?max_inputs:int -> Graph.t -> Graph.t
(** Default [max_inputs] is 10. *)
