(** Transitive fanin/fanout cones and maximum fanout-free cones (MFFCs). *)

val tfi_mask : Graph.t -> int -> bool array
(** [tfi_mask g id]: per node, membership in the TFI cone of [id] (the node
    itself included, per the paper's Section II terminology). *)

val tfi_nodes : Graph.t -> int -> int list
(** AND and PI nodes of the TFI cone of [id], excluding [id] itself, sorted
    by ascending logic level (the divisor-candidate order of Algorithm 1). *)

val tfo_mask : Graph.t -> int -> bool array
(** Per node, membership in the transitive fanout cone of [id] (the node
    itself included). *)

val mffc : Graph.t -> fanouts:int array -> int -> int list
(** [mffc g ~fanouts id]: node ids of the maximum fanout-free cone rooted at
    [id] — the AND nodes that become dead if [id] is removed.  [fanouts]
    comes from {!Topo.fanout_counts} and is not modified.  [id] itself is
    included; PIs and the constant never are. *)

val cone_inputs : Graph.t -> int list -> int list
(** Boundary of a node set: nodes outside the set feeding nodes inside. *)
