(** Structural invariant checking, used by the test-suite and after complex
    transforms in debug runs. *)

val check : Graph.t -> (unit, string) result
(** Verifies: fanins precede their node (acyclicity), no constant or trivial
    fanin survives folding, normalized fanin order, no duplicated strash
    pairs, PO literals in range, and PI bookkeeping consistency. *)

val check_exn : Graph.t -> unit
(** Raises [Failure] with the first violated invariant. *)
