(** Gate-level construction helpers on top of {!Graph.and_}. *)

val or_ : Graph.t -> Graph.lit -> Graph.lit -> Graph.lit
val nand : Graph.t -> Graph.lit -> Graph.lit -> Graph.lit
val nor : Graph.t -> Graph.lit -> Graph.lit -> Graph.lit
val xor : Graph.t -> Graph.lit -> Graph.lit -> Graph.lit
val xnor : Graph.t -> Graph.lit -> Graph.lit -> Graph.lit

val mux : Graph.t -> sel:Graph.lit -> t:Graph.lit -> e:Graph.lit -> Graph.lit
(** [mux ~sel ~t ~e] is [if sel then t else e]. *)

val maj3 : Graph.t -> Graph.lit -> Graph.lit -> Graph.lit -> Graph.lit

val and_list : Graph.t -> Graph.lit list -> Graph.lit
(** Balanced conjunction ([const1] on the empty list). *)

val or_list : Graph.t -> Graph.lit list -> Graph.lit
val xor_list : Graph.t -> Graph.lit list -> Graph.lit

val full_adder :
  Graph.t -> Graph.lit -> Graph.lit -> Graph.lit -> Graph.lit * Graph.lit
(** [full_adder g a b cin] is [(sum, carry_out)]. *)

val half_adder : Graph.t -> Graph.lit -> Graph.lit -> Graph.lit * Graph.lit
