(** Depth-oriented AND-tree balancing (the [b] step of resyn2).

    Maximal single-fanout conjunction trees are collected and rebuilt as
    minimum-depth trees, combining lowest-level operands first. *)

val run : Graph.t -> Graph.t
