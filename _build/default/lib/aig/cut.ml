type t = { leaves : int array; sign : int }

let signature leaves =
  Array.fold_left (fun acc id -> acc lor (1 lsl (id mod 62))) 0 leaves

let of_leaves leaves =
  let leaves = Array.copy leaves in
  Array.sort compare leaves;
  { leaves; sign = signature leaves }

let trivial id = { leaves = [| id |]; sign = signature [| id |] }

let size c = Array.length c.leaves

let mem id c = Array.exists (fun x -> x = id) c.leaves

let subset a b =
  a.sign land lnot b.sign = 0 && Array.for_all (fun id -> mem id b) a.leaves

(* Merge two sorted leaf arrays, bailing out past [k] distinct leaves. *)
let merge ~k a b =
  let la = a.leaves and lb = b.leaves in
  let na = Array.length la and nb = Array.length lb in
  let buf = Array.make k 0 in
  let rec go i j n =
    if i = na && j = nb then Some n
    else if n = k then None
    else if i = na then begin
      buf.(n) <- lb.(j);
      go i (j + 1) (n + 1)
    end
    else if j = nb then begin
      buf.(n) <- la.(i);
      go (i + 1) j (n + 1)
    end
    else if la.(i) = lb.(j) then begin
      buf.(n) <- la.(i);
      go (i + 1) (j + 1) (n + 1)
    end
    else if la.(i) < lb.(j) then begin
      buf.(n) <- la.(i);
      go (i + 1) j (n + 1)
    end
    else begin
      buf.(n) <- lb.(j);
      go i (j + 1) (n + 1)
    end
  in
  match go 0 0 0 with
  | None -> None
  | Some n ->
      let leaves = Array.sub buf 0 n in
      Some { leaves; sign = signature leaves }

let insert_pruned max_cuts cuts cut =
  if List.exists (fun c -> subset c cut) cuts then cuts
  else begin
    let cuts = List.filter (fun c -> not (subset cut c)) cuts in
    let cuts = cuts @ [ cut ] in
    let sorted = List.stable_sort (fun a b -> compare (size a) (size b)) cuts in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | c :: rest -> c :: take (n - 1) rest
    in
    take max_cuts sorted
  end

let enumerate g ~k ?(max_cuts = 8) () =
  let n = Graph.num_nodes g in
  let all = Array.make n [] in
  all.(0) <- [ { leaves = [||]; sign = 0 } ];
  for i = 0 to Graph.num_pis g - 1 do
    let id = Graph.pi_node g i in
    all.(id) <- [ trivial id ]
  done;
  Graph.iter_ands g (fun id ->
      let c0 = all.(Graph.node_of (Graph.fanin0 g id)) in
      let c1 = all.(Graph.node_of (Graph.fanin1 g id)) in
      let cuts = ref [] in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              match merge ~k a b with
              | Some c -> cuts := insert_pruned max_cuts !cuts c
              | None -> ())
            c1)
        c0;
      (* The trivial cut must survive pruning so fanouts can merge on it. *)
      all.(id) <- insert_pruned (max_cuts + 1) !cuts (trivial id));
  all

let truth g ~root ~leaves =
  let nvars = Array.length leaves in
  if nvars > Logic.Truth.max_vars then failwith "Cut.truth: too many leaves";
  let memo = Hashtbl.create 64 in
  Array.iteri (fun i id -> Hashtbl.replace memo id (Logic.Truth.var nvars i)) leaves;
  let rec eval id =
    match Hashtbl.find_opt memo id with
    | Some tt -> tt
    | None ->
        if Graph.is_const id then Logic.Truth.const0 nvars
        else if Graph.is_pi g id then
          failwith "Cut.truth: leaves do not form a cut (reached a PI)"
        else begin
          let eval_lit l =
            let tt = eval (Graph.node_of l) in
            if Graph.is_compl l then Logic.Truth.bnot tt else tt
          in
          let tt = Logic.Truth.band (eval_lit (Graph.fanin0 g id)) (eval_lit (Graph.fanin1 g id)) in
          Hashtbl.replace memo id tt;
          tt
        end
  in
  eval root
