lib/aig/cone.ml: Array Graph Hashtbl List Topo
