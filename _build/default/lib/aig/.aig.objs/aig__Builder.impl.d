lib/aig/builder.ml: Graph
