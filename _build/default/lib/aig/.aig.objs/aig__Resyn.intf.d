lib/aig/resyn.mli: Graph
