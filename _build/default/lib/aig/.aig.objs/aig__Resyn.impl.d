lib/aig/resyn.ml: Balance Graph Refactor Rewrite
