lib/aig/rewrite.ml: Array Cone Cut Graph Hashtbl List Logic Topo
