lib/aig/builder.mli: Graph
