lib/aig/refactor.ml: Array Cone Cut Graph Hashtbl List Logic Topo
