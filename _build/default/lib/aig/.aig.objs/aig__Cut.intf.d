lib/aig/cut.mli: Graph Logic
