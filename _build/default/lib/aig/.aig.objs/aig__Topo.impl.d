lib/aig/topo.ml: Array Graph
