lib/aig/balance.mli: Graph
