lib/aig/cone.mli: Graph
