lib/aig/balance.ml: Array Graph Hashtbl Int List Option Set Topo
