lib/aig/check.ml: Graph Hashtbl Printf
