lib/aig/refactor.mli: Graph
