lib/aig/check.mli: Graph
