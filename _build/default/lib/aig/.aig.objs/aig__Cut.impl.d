lib/aig/cut.ml: Array Graph Hashtbl List Logic
