lib/aig/topo.mli: Graph
