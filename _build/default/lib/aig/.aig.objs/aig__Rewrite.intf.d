lib/aig/rewrite.mli: Graph
