lib/aig/graph.mli: Format Logic
