(* Nodes of the cut cone of [root] above the leaves. *)
let cone_nodes g root leaves =
  let leaf_set = Hashtbl.create 8 in
  Array.iter (fun l -> Hashtbl.replace leaf_set l ()) leaves;
  let seen = Hashtbl.create 16 in
  let rec visit id =
    if (not (Hashtbl.mem leaf_set id)) && not (Hashtbl.mem seen id) then
      if Graph.is_and g id then begin
        Hashtbl.replace seen id ();
        visit (Graph.node_of (Graph.fanin0 g id));
        visit (Graph.node_of (Graph.fanin1 g id))
      end
  in
  visit root;
  Hashtbl.fold (fun id () acc -> id :: acc) seen []

let run ?(k = 4) g =
  let cuts = Cut.enumerate g ~k () in
  let fanouts = Topo.fanout_counts g in
  let n = Graph.num_nodes g in
  let choices : (int, Graph.replacement) Hashtbl.t = Hashtbl.create 64 in
  let covered = Array.make n false in
  for id = n - 1 downto 1 do
    if Graph.is_and g id && not covered.(id) then begin
      let mffc = Cone.mffc g ~fanouts id in
      let in_mffc = Hashtbl.create 16 in
      List.iter (fun m -> Hashtbl.replace in_mffc m ()) mffc;
      let best = ref None in
      List.iter
        (fun cut ->
          let sz = Cut.size cut in
          if sz >= 2 && not (Array.exists (fun l -> l = id) cut.Cut.leaves) then begin
            let cone = cone_nodes g id cut.Cut.leaves in
            (* Gates guaranteed freed: cone nodes that are also in the MFFC. *)
            let saved = List.length (List.filter (Hashtbl.mem in_mffc) cone) in
            if saved >= 2 then begin
              let tt = Cut.truth g ~root:id ~leaves:cut.Cut.leaves in
              let dc = Logic.Truth.const0 sz in
              let cover = Logic.Espresso.minimize ~on:tt ~dc in
              let expr = Logic.Factor.of_cover cover in
              let cost = Logic.Factor.and2_cost expr in
              let gain = saved - cost in
              let better =
                match !best with None -> gain > 0 | Some (g0, _, _) -> gain > g0
              in
              if better then best := Some (gain, expr, (cut.Cut.leaves, cone))
            end
          end)
        cuts.(id);
      match !best with
      | Some (_, expr, (leaves, cone)) ->
          Hashtbl.replace choices id (Graph.Replace_expr (expr, leaves));
          List.iter
            (fun m -> if Hashtbl.mem in_mffc m then covered.(m) <- true)
            cone
      | None -> ()
    end
  done;
  if Hashtbl.length choices = 0 then g
  else begin
    let rebuilt = Graph.rebuild ~replace:(Hashtbl.find_opt choices) g in
    if Graph.num_ands rebuilt < Graph.num_ands g then rebuilt else g
  end
