let or_ g a b = Graph.lit_not (Graph.and_ g (Graph.lit_not a) (Graph.lit_not b))

let nand g a b = Graph.lit_not (Graph.and_ g a b)

let nor g a b = Graph.and_ g (Graph.lit_not a) (Graph.lit_not b)

let xor g a b =
  or_ g (Graph.and_ g a (Graph.lit_not b)) (Graph.and_ g (Graph.lit_not a) b)

let xnor g a b = Graph.lit_not (xor g a b)

let mux g ~sel ~t ~e =
  or_ g (Graph.and_ g sel t) (Graph.and_ g (Graph.lit_not sel) e)

let maj3 g a b c =
  or_ g (Graph.and_ g a b) (or_ g (Graph.and_ g a c) (Graph.and_ g b c))

let rec tree op neutral g = function
  | [] -> neutral
  | [ x ] -> x
  | lits ->
      let rec pair = function
        | [] -> []
        | [ x ] -> [ x ]
        | a :: b :: rest -> op g a b :: pair rest
      in
      tree op neutral g (pair lits)

let and_list g lits = tree Graph.and_ Graph.const1 g lits

let or_list g lits = tree or_ Graph.const0 g lits

let xor_list g lits = tree xor Graph.const0 g lits

let full_adder g a b cin =
  let axb = xor g a b in
  let sum = xor g axb cin in
  let carry = or_ g (Graph.and_ g a b) (Graph.and_ g axb cin) in
  (sum, carry)

let half_adder g a b = (xor g a b, Graph.and_ g a b)
