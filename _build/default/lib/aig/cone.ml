let tfi_mask g id =
  let mask = Array.make (Graph.num_nodes g) false in
  let rec mark id =
    if not mask.(id) then begin
      mask.(id) <- true;
      if Graph.is_and g id then begin
        mark (Graph.node_of (Graph.fanin0 g id));
        mark (Graph.node_of (Graph.fanin1 g id))
      end
    end
  in
  mark id;
  mask

let tfi_nodes g id =
  let mask = tfi_mask g id in
  let lev = Topo.levels g in
  (* Bucket by level (counting sort): levels are small and dense. *)
  let max_level = Array.fold_left max 0 lev in
  let buckets = Array.make (max_level + 1) [] in
  for i = Graph.num_nodes g - 1 downto 1 do
    if mask.(i) && i <> id then buckets.(lev.(i)) <- i :: buckets.(lev.(i))
  done;
  List.concat (Array.to_list buckets)

let tfo_mask g id =
  let n = Graph.num_nodes g in
  let mask = Array.make n false in
  mask.(id) <- true;
  (* Node ids ascend topologically, so one forward sweep suffices. *)
  Graph.iter_ands g (fun i ->
      if i > id then
        if
          mask.(Graph.node_of (Graph.fanin0 g i))
          || mask.(Graph.node_of (Graph.fanin1 g i))
        then mask.(i) <- true);
  mask

let mffc g ~fanouts id =
  if not (Graph.is_and g id) then []
  else begin
    let refs = Array.copy fanouts in
    let collected = ref [] in
    let rec deref id =
      if Graph.is_and g id then begin
        collected := id :: !collected;
        let visit l =
          let child = Graph.node_of l in
          refs.(child) <- refs.(child) - 1;
          if refs.(child) = 0 then deref child
        in
        visit (Graph.fanin0 g id);
        visit (Graph.fanin1 g id)
      end
    in
    deref id;
    !collected
  end

let cone_inputs g nodes =
  let in_set = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace in_set id ()) nodes;
  let inputs = Hashtbl.create 16 in
  let order = ref [] in
  let consider l =
    let child = Graph.node_of l in
    if (not (Hashtbl.mem in_set child)) && not (Hashtbl.mem inputs child) then begin
      Hashtbl.replace inputs child ();
      order := child :: !order
    end
  in
  List.iter
    (fun id ->
      if Graph.is_and g id then begin
        consider (Graph.fanin0 g id);
        consider (Graph.fanin1 g id)
      end)
    nodes;
  List.rev !order
