(** Structural measurements over an AIG: levels, depth, fanout counts. *)

val levels : Graph.t -> int array
(** Per node id: logic level (constant and PIs at 0, AND = 1 + max fanin). *)

val depth : Graph.t -> int
(** Maximum level over the PO drivers (0 for constant / wire-only graphs). *)

val fanout_counts : Graph.t -> int array
(** Per node id: number of fanout references (AND fanins + PO drivers). *)

val node_count_in_use : Graph.t -> int
(** Number of AND nodes reachable from the POs. *)
