let levels g =
  let n = Graph.num_nodes g in
  let lev = Array.make n 0 in
  Graph.iter_ands g (fun id ->
      let l0 = lev.(Graph.node_of (Graph.fanin0 g id)) in
      let l1 = lev.(Graph.node_of (Graph.fanin1 g id)) in
      lev.(id) <- 1 + max l0 l1);
  lev

let depth g =
  let lev = levels g in
  let d = ref 0 in
  Graph.iter_pos g (fun _ l -> d := max !d lev.(Graph.node_of l));
  !d

let fanout_counts g =
  let n = Graph.num_nodes g in
  let counts = Array.make n 0 in
  let bump l = counts.(Graph.node_of l) <- counts.(Graph.node_of l) + 1 in
  Graph.iter_ands g (fun id ->
      bump (Graph.fanin0 g id);
      bump (Graph.fanin1 g id));
  Graph.iter_pos g (fun _ l -> bump l);
  counts

let node_count_in_use g =
  let n = Graph.num_nodes g in
  let reachable = Array.make n false in
  let rec mark id =
    if not reachable.(id) then begin
      reachable.(id) <- true;
      if Graph.is_and g id then begin
        mark (Graph.node_of (Graph.fanin0 g id));
        mark (Graph.node_of (Graph.fanin1 g id))
      end
    end
  in
  Graph.iter_pos g (fun _ l -> mark (Graph.node_of l));
  let count = ref 0 in
  Graph.iter_ands g (fun id -> if reachable.(id) then incr count);
  !count
