let run ?(max_inputs = 10) g =
  let fanouts = Topo.fanout_counts g in
  let n = Graph.num_nodes g in
  let choices : (int, Graph.replacement) Hashtbl.t = Hashtbl.create 64 in
  let covered = Array.make n false in
  for id = n - 1 downto 1 do
    if Graph.is_and g id && not covered.(id) then begin
      let mffc = Cone.mffc g ~fanouts id in
      let mffc_size = List.length mffc in
      if mffc_size >= 2 then begin
        let inputs = Cone.cone_inputs g mffc in
        if List.length inputs <= max_inputs then begin
          let leaves = Array.of_list inputs in
          let tt = Cut.truth g ~root:id ~leaves in
          let dc = Logic.Truth.const0 (Array.length leaves) in
          let isop = Logic.Isop.compute ~on:tt ~dc in
          (* XOR-dominated cones explode in two-level form; the factored
             realization cannot win there, so skip the expensive loop. *)
          if Logic.Cover.num_cubes isop <= 24 then begin
            let cover = Logic.Espresso.minimize ~on:tt ~dc in
            let expr = Logic.Factor.of_cover cover in
            if Logic.Factor.and2_cost expr < mffc_size then begin
              Hashtbl.replace choices id (Graph.Replace_expr (expr, leaves));
              List.iter (fun m -> covered.(m) <- true) mffc
            end
          end
        end
      end
    end
  done;
  if Hashtbl.length choices = 0 then g
  else begin
    let rebuilt = Graph.rebuild ~replace:(Hashtbl.find_opt choices) g in
    if Graph.num_ands rebuilt < Graph.num_ands g then rebuilt else g
  end
