(** Cut-based local rewriting (the [rw] step of resyn2).

    For every AND node, 4-input cuts are enumerated; the node's cut function
    is re-synthesized as a minimized factored form, and the replacement is
    selected when it costs fewer gates than the logic it exclusively owns
    (MFFC restricted to the cut cone).  The rebuilt graph is returned only
    when strictly smaller. *)

val run : ?k:int -> Graph.t -> Graph.t
(** Default cut width [k] is 4. *)
