(** K-feasible cut enumeration with priority pruning.

    A cut of node [n] is a set of nodes (leaves) such that every path from a
    PI to [n] passes through a leaf; the node computes a function of its cut
    leaves.  Cuts drive rewriting ([k = 4]) and both technology mappers. *)

type t = private {
  leaves : int array;  (** sorted node ids *)
  sign : int;  (** subset-check signature *)
}

val of_leaves : int array -> t
(** Builds a cut from a (possibly unsorted) array of node ids. *)

val trivial : int -> t
(** The unit cut [{n}]. *)

val size : t -> int

val subset : t -> t -> bool
(** [subset a b] iff [a]'s leaves are all leaves of [b]. *)

val merge : k:int -> t -> t -> t option
(** Leaf union if it fits in [k] leaves. *)

val enumerate : Graph.t -> k:int -> ?max_cuts:int -> unit -> t list array
(** Per node id, the priority cuts (smallest first, dominated cuts removed,
    at most [max_cuts] kept, the trivial cut always present).  Default
    [max_cuts] is 8. *)

val truth : Graph.t -> root:int -> leaves:int array -> Logic.Truth.t
(** Function of [root] in terms of the cut leaves (variable [i] = leaf [i]).
    Raises [Failure] if the leaves do not form a cut of [root]. *)
