type t = { pos : int; neg : int }

let full = { pos = 0; neg = 0 }

let make ~pos ~neg =
  if pos land neg <> 0 then invalid_arg "Cube.make: contradictory literals";
  { pos; neg }

let lit v phase =
  if v < 0 || v >= 30 then invalid_arg "Cube.lit: variable out of range";
  if phase then { pos = 1 lsl v; neg = 0 } else { pos = 0; neg = 1 lsl v }

let add_lit c v phase =
  let bit = 1 lsl v in
  if phase then begin
    if c.neg land bit <> 0 then invalid_arg "Cube.add_lit: contradictory literal";
    { c with pos = c.pos lor bit }
  end
  else begin
    if c.pos land bit <> 0 then invalid_arg "Cube.add_lit: contradictory literal";
    { c with neg = c.neg lor bit }
  end

let remove_var c v =
  let keep = lnot (1 lsl v) in
  { pos = c.pos land keep; neg = c.neg land keep }

let has_var c v = (c.pos lor c.neg) land (1 lsl v) <> 0

let phase_of c v =
  let bit = 1 lsl v in
  if c.pos land bit <> 0 then Some true
  else if c.neg land bit <> 0 then Some false
  else None

let popcount n =
  let rec go n acc = if n = 0 then acc else go (n land (n - 1)) (acc + 1) in
  go n 0

let num_lits c = popcount (c.pos lor c.neg)

let vars_mask c = c.pos lor c.neg

let equal a b = a.pos = b.pos && a.neg = b.neg

let compare a b =
  let c = Stdlib.compare a.pos b.pos in
  if c <> 0 then c else Stdlib.compare a.neg b.neg

let contains_minterm c m = m land c.pos = c.pos && lnot m land c.neg = c.neg

let subsumes a b = a.pos land b.pos = a.pos && a.neg land b.neg = a.neg

let intersect a b =
  if a.pos land b.neg <> 0 || a.neg land b.pos <> 0 then None
  else Some { pos = a.pos lor b.pos; neg = a.neg lor b.neg }

(* Word-parallel: AND of the literal projections, O(lits x words) instead of
   a per-minterm loop. *)
let to_truth n c =
  let t = ref (Truth.const1 n) in
  for v = 0 to n - 1 do
    let bit = 1 lsl v in
    if c.pos land bit <> 0 then t := Truth.band !t (Truth.var n v)
    else if c.neg land bit <> 0 then t := Truth.band !t (Truth.bnot (Truth.var n v))
  done;
  !t

let of_minterm n m =
  if n > 30 then invalid_arg "Cube.of_minterm: too many variables";
  let all = (1 lsl n) - 1 in
  { pos = m land all; neg = lnot m land all }

let supercube_of_minterm n = of_minterm n 0

let supercube a b = { pos = a.pos land b.pos; neg = a.neg land b.neg }

let eval_sigs c ~pos_sigs acc =
  Bitvec.fill acc true;
  let rec loop mask phase =
    if mask <> 0 then begin
      let v = ref 0 and m = ref mask in
      while !m land 1 = 0 do
        incr v;
        m := !m lsr 1
      done;
      let s = pos_sigs.(!v) in
      if phase then Bitvec.logand_inplace acc s
      else begin
        (* acc &= ~s, done via De Morgan on a temporary-free path. *)
        let aw = Bitvec.unsafe_words acc and sw = Bitvec.unsafe_words s in
        for i = 0 to Array.length aw - 1 do
          aw.(i) <- aw.(i) land lnot sw.(i)
        done;
        Bitvec.mask_tail acc
      end;
      loop (mask land lnot (1 lsl !v)) phase
    end
  in
  loop c.pos true;
  loop c.neg false

let to_string n c =
  String.init n (fun v ->
      match phase_of c v with Some true -> '1' | Some false -> '0' | None -> '-')

let pp n ppf c = Format.pp_print_string ppf (to_string n c)
