(* Minato-Morreale recursive ISOP: at each step split on a variable, compute
   covers that are forced into the 0- and 1-cofactor, then cover what remains
   with cubes free of the split variable. *)

let rec isop lower upper =
  if Truth.is_const0 lower then ([], Truth.const0 (Truth.num_vars lower))
  else if Truth.is_const1 upper then ([ Cube.full ], Truth.const1 (Truth.num_vars lower))
  else begin
    let v =
      match Truth.support upper with
      | v :: _ -> v
      | [] ->
          (* upper is constant but not 1 => constant 0, and lower <= upper is
             nonzero: the interval is infeasible. *)
          invalid_arg "Isop: lower not contained in upper"
    in
    let l0 = Truth.cofactor0 lower v and l1 = Truth.cofactor1 lower v in
    let u0 = Truth.cofactor0 upper v and u1 = Truth.cofactor1 upper v in
    let c0, f0 = isop (Truth.bdiff l0 u1) u0 in
    let c1, f1 = isop (Truth.bdiff l1 u0) u1 in
    let rest = Truth.bor (Truth.bdiff l0 f0) (Truth.bdiff l1 f1) in
    let cs, fs = isop rest (Truth.band u0 u1) in
    let cubes =
      List.map (fun c -> Cube.add_lit c v false) c0
      @ List.map (fun c -> Cube.add_lit c v true) c1
      @ cs
    in
    let xv = Truth.var (Truth.num_vars lower) v in
    let f =
      Truth.bor
        (Truth.bor (Truth.band (Truth.bnot xv) f0) (Truth.band xv f1))
        fs
    in
    (cubes, f)
  end

let compute_interval ~lower ~upper =
  if Truth.num_vars lower <> Truth.num_vars upper then
    invalid_arg "Isop: variable count mismatch";
  if not (Truth.is_const0 (Truth.bdiff lower upper)) then
    invalid_arg "Isop: lower not contained in upper";
  let cubes, f = isop lower upper in
  (* The recursion guarantees lower <= f <= upper; check in debug builds. *)
  assert (Truth.is_const0 (Truth.bdiff lower f));
  assert (Truth.is_const0 (Truth.bdiff f upper));
  Cover.make (Truth.num_vars lower) cubes

let compute ~on ~dc =
  if not (Truth.is_const0 (Truth.band on dc)) then
    invalid_arg "Isop: ON and DC sets overlap";
  compute_interval ~lower:on ~upper:(Truth.bor on dc)
