type t = { nvars : int; words : int64 array }

let max_vars = 16

let num_vars t = t.nvars

let num_bits t = 1 lsl t.nvars

let words_for nvars = if nvars <= 6 then 1 else 1 lsl (nvars - 6)

(* Classic variable masks within a 64-bit word, for variables 0..5. *)
let var_masks =
  [| 0xAAAAAAAAAAAAAAAAL; 0xCCCCCCCCCCCCCCCCL; 0xF0F0F0F0F0F0F0F0L;
     0xFF00FF00FF00FF00L; 0xFFFF0000FFFF0000L; 0xFFFFFFFF00000000L |]

let tail_mask nvars =
  if nvars >= 6 then -1L
  else Int64.sub (Int64.shift_left 1L (1 lsl nvars)) 1L

let check_nvars nvars =
  if nvars < 0 || nvars > max_vars then
    invalid_arg (Printf.sprintf "Truth: %d variables unsupported" nvars)

let const0 nvars =
  check_nvars nvars;
  { nvars; words = Array.make (words_for nvars) 0L }

let const1 nvars =
  check_nvars nvars;
  { nvars; words = Array.make (words_for nvars) (tail_mask nvars) }

let var nvars i =
  check_nvars nvars;
  if i < 0 || i >= nvars then invalid_arg "Truth.var: variable out of range";
  let words = Array.make (words_for nvars) 0L in
  if i < 6 then
    Array.fill words 0 (Array.length words) (Int64.logand var_masks.(i) (tail_mask nvars))
  else begin
    let stride = 1 lsl (i - 6) in
    let j = ref 0 in
    while !j < Array.length words do
      Array.fill words (!j + stride) stride (-1L);
      j := !j + (2 * stride)
    done
  end;
  { nvars; words }

let get t m =
  if m < 0 || m >= num_bits t then invalid_arg "Truth.get: minterm out of range";
  Int64.logand (Int64.shift_right_logical t.words.(m lsr 6) (m land 63)) 1L = 1L

let set t m b =
  if m < 0 || m >= num_bits t then invalid_arg "Truth.set: minterm out of range";
  let words = Array.copy t.words in
  let w = m lsr 6 and off = m land 63 in
  if b then words.(w) <- Int64.logor words.(w) (Int64.shift_left 1L off)
  else words.(w) <- Int64.logand words.(w) (Int64.lognot (Int64.shift_left 1L off));
  { t with words }

let of_fun nvars f =
  check_nvars nvars;
  let words = Array.make (words_for nvars) 0L in
  for m = 0 to (1 lsl nvars) - 1 do
    if f m then begin
      let w = m lsr 6 and off = m land 63 in
      words.(w) <- Int64.logor words.(w) (Int64.shift_left 1L off)
    end
  done;
  { nvars; words }

let equal a b = a.nvars = b.nvars && a.words = b.words

let compare a b =
  let c = Stdlib.compare a.nvars b.nvars in
  if c <> 0 then c else Stdlib.compare a.words b.words

let hash t = Hashtbl.hash (t.nvars, t.words)

let check_same a b =
  if a.nvars <> b.nvars then invalid_arg "Truth: variable count mismatch"

let map2 f a b =
  check_same a b;
  { nvars = a.nvars; words = Array.map2 f a.words b.words }

let band a b = map2 Int64.logand a b
let bor a b = map2 Int64.logor a b
let bxor a b = map2 Int64.logxor a b

let bnot a =
  let mask = tail_mask a.nvars in
  { a with words = Array.map (fun w -> Int64.logand (Int64.lognot w) mask) a.words }

let bdiff a b = band a (bnot b)

let is_const0 t = Array.for_all (fun w -> w = 0L) t.words

let is_const1 t = equal t (const1 t.nvars)

let popcount64 w =
  let w = Int64.sub w (Int64.logand (Int64.shift_right_logical w 1) 0x5555555555555555L) in
  let w =
    Int64.add
      (Int64.logand w 0x3333333333333333L)
      (Int64.logand (Int64.shift_right_logical w 2) 0x3333333333333333L)
  in
  let w = Int64.logand (Int64.add w (Int64.shift_right_logical w 4)) 0x0F0F0F0F0F0F0F0FL in
  Int64.to_int (Int64.shift_right_logical (Int64.mul w 0x0101010101010101L) 56)

let count_ones t = Array.fold_left (fun acc w -> acc + popcount64 w) 0 t.words

let iter_minterms t f =
  for m = 0 to num_bits t - 1 do
    if get t m then f m
  done

let cofactor0 t i =
  if i < 0 || i >= t.nvars then invalid_arg "Truth.cofactor0: variable out of range";
  if i < 6 then begin
    let m = Int64.lognot var_masks.(i) in
    let shift = 1 lsl i in
    let words =
      Array.map
        (fun w ->
          let low = Int64.logand w m in
          Int64.logor low (Int64.shift_left low shift))
        t.words
    in
    { t with words = Array.map (fun w -> Int64.logand w (tail_mask t.nvars)) words }
  end
  else begin
    let words = Array.copy t.words in
    let stride = 1 lsl (i - 6) in
    let j = ref 0 in
    while !j < Array.length words do
      Array.blit words !j words (!j + stride) stride;
      j := !j + (2 * stride)
    done;
    { t with words }
  end

let cofactor1 t i =
  if i < 0 || i >= t.nvars then invalid_arg "Truth.cofactor1: variable out of range";
  if i < 6 then begin
    let m = var_masks.(i) in
    let shift = 1 lsl i in
    let words =
      Array.map
        (fun w ->
          let high = Int64.logand w m in
          Int64.logor high (Int64.shift_right_logical high shift))
        t.words
    in
    { t with words }
  end
  else begin
    let words = Array.copy t.words in
    let stride = 1 lsl (i - 6) in
    let j = ref 0 in
    while !j < Array.length words do
      Array.blit words (!j + stride) words !j stride;
      j := !j + (2 * stride)
    done;
    { t with words }
  end

let exists t i = bor (cofactor0 t i) (cofactor1 t i)

let forall t i = band (cofactor0 t i) (cofactor1 t i)

let depends_on t i = not (equal (cofactor0 t i) (cofactor1 t i))

let support t =
  let rec loop i acc =
    if i < 0 then acc else loop (i - 1) (if depends_on t i then i :: acc else acc)
  in
  loop (t.nvars - 1) []

let eval t assignment =
  if Array.length assignment <> t.nvars then
    invalid_arg "Truth.eval: assignment length mismatch";
  let m = ref 0 in
  for i = 0 to t.nvars - 1 do
    if assignment.(i) then m := !m lor (1 lsl i)
  done;
  get t !m

let shrink_to_support t =
  let sup = support t in
  let n' = List.length sup in
  let sup_arr = Array.of_list sup in
  let shrunk =
    of_fun n' (fun m' ->
        (* Spread the compact minterm back onto the original variables;
           non-support variables are don't-care, fix them to 0. *)
        let m = ref 0 in
        Array.iteri (fun j v -> if (m' lsr j) land 1 = 1 then m := !m lor (1 lsl v)) sup_arr;
        get t !m)
  in
  (shrunk, sup)

let expand t ~into ~placement =
  check_nvars into;
  if Array.length placement <> t.nvars then
    invalid_arg "Truth.expand: placement length mismatch";
  Array.iter
    (fun p -> if p < 0 || p >= into then invalid_arg "Truth.expand: placement out of range")
    placement;
  of_fun into (fun m ->
      let m' = ref 0 in
      Array.iteri (fun i p -> if (m lsr p) land 1 = 1 then m' := !m' lor (1 lsl i)) placement;
      get t !m')

let to_hex t =
  let hex_digits = max 1 (num_bits t / 4) in
  let buf = Buffer.create hex_digits in
  for d = hex_digits - 1 downto 0 do
    let nibble =
      if num_bits t < 4 then Int64.to_int (Int64.logand t.words.(0) (tail_mask t.nvars))
      else
        let bit = d * 4 in
        let w = bit lsr 6 and off = bit land 63 in
        Int64.to_int (Int64.logand (Int64.shift_right_logical t.words.(w) off) 0xFL)
    in
    Buffer.add_char buf "0123456789abcdef".[nibble]
  done;
  Buffer.contents buf

let pp ppf t = Format.fprintf ppf "0x%s" (to_hex t)
