(** Algebraic factoring of two-level covers into multi-level expressions.

    The classic "quick factor" literal-division heuristic: repeatedly divide
    the cover by its most frequent literal.  The resulting expression trees
    are what the synthesis passes instantiate as AIG nodes, so the gate cost
    of an expression ({!and2_cost}) is the acceptance metric used by
    refactoring and resubstitution. *)

type expr =
  | Const of bool
  | Lit of int * bool  (** variable index, phase (true = positive) *)
  | And of expr list
  | Or of expr list

val of_cover : Cover.t -> expr
(** Factor a cover.  The expression is logically equal to the cover. *)

val eval : expr -> bool array -> bool

val and2_cost : expr -> int
(** Number of two-input AND gates needed to realize the expression in an AIG
    (inverters are free on AIG edges; an OR of [k] terms costs [k-1] ANDs by
    De Morgan). *)

val num_lits : expr -> int

val pp : Format.formatter -> expr -> unit
