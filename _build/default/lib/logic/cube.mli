(** Single product terms (cubes) in positional-literal form.

    A cube over [n <= 30] variables is a pair of bit masks: [pos] marks
    variables appearing as positive literals, [neg] as negative literals;
    a variable in neither mask is absent (don't-care in the cube).  The empty
    cube (no literals) is the tautology. *)

type t = private { pos : int; neg : int }

val full : t
(** The tautology cube (no literals). *)

val make : pos:int -> neg:int -> t
(** Raises [Invalid_argument] if [pos land neg <> 0]. *)

val lit : int -> bool -> t
(** [lit v phase] is the single-literal cube [v] (positive if [phase]). *)

val add_lit : t -> int -> bool -> t
(** Conjoin one more literal.  Raises if the opposite literal is present. *)

val remove_var : t -> int -> t
(** Drop any literal of the given variable (cube expansion). *)

val has_var : t -> int -> bool

val phase_of : t -> int -> bool option
(** [Some true]/[Some false] for a positive/negative literal, [None] if
    absent. *)

val num_lits : t -> int

val vars_mask : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int

val contains_minterm : t -> int -> bool
(** Is the minterm (bit [i] = value of var [i]) inside the cube? *)

val subsumes : t -> t -> bool
(** [subsumes a b] iff every minterm of [b] is a minterm of [a], i.e. [a]'s
    literals are a subset of [b]'s. *)

val intersect : t -> t -> t option
(** Cube intersection, [None] if empty. *)

val to_truth : int -> t -> Truth.t
(** Characteristic function over [n] variables. *)

val supercube_of_minterm : int -> t
(** The cube containing exactly one minterm of [n] variables is built with
    {!of_minterm}; kept for symmetry. *)

val of_minterm : int -> int -> t
(** [of_minterm n m]: the full-literal cube equal to minterm [m]. *)

val supercube : t -> t -> t
(** Smallest cube containing both. *)

val eval_sigs : t -> pos_sigs:Bitvec.t array -> Bitvec.t -> unit
(** [eval_sigs c ~pos_sigs acc] word-parallel-evaluates the cube over
    signature vectors (entry [i] = signature of variable [i]) and stores the
    result in [acc].  All vectors must share a length. *)

val to_string : int -> t -> string
(** SOP-row syntax over [n] vars, e.g. ["1-0"] . *)

val pp : int -> Format.formatter -> t -> unit
