let cost c = (Cover.num_cubes c, Cover.num_lits c)

let cost_le a b = cost a <= cost b

(* Smallest cube containing every ON-minterm of [f]. *)
let supercube_of_truth f =
  let n = Truth.num_vars f in
  let all = if n = 0 then 0 else (1 lsl n) - 1 in
  let pos = ref all and neg = ref all and seen = ref false in
  Truth.iter_minterms f (fun m ->
      seen := true;
      pos := !pos land m;
      neg := !neg land lnot m land all);
  if not !seen then None else Some (Cube.make ~pos:!pos ~neg:!neg)

(* EXPAND: make each cube prime by removing literals while the cube stays
   disjoint from the OFF-set; drop cubes subsumed by the expanded result. *)
let expand nvars off cubes =
  let expand_cube c =
    let rec try_vars c v =
      if v >= nvars then c
      else if Cube.has_var c v then begin
        let c' = Cube.remove_var c v in
        let hits_off =
          not (Truth.is_const0 (Truth.band (Cube.to_truth nvars c') off))
        in
        try_vars (if hits_off then c else c') (v + 1)
      end
      else try_vars c (v + 1)
    in
    try_vars c 0
  in
  let rec loop done_ todo =
    match todo with
    | [] -> List.rev done_
    | c :: rest ->
        let c' = expand_cube c in
        let not_subsumed x = not (Cube.subsumes c' x) in
        loop (c' :: List.filter not_subsumed done_) (List.filter not_subsumed rest)
  in
  loop [] cubes

(* Suffix unions of cube truths: [suffix.(i)] covers cubes [i ..]. *)
let suffix_unions nvars dc cubes =
  let arr = Array.of_list cubes in
  let n = Array.length arr in
  let suffix = Array.make (n + 1) dc in
  for i = n - 1 downto 0 do
    suffix.(i) <- Truth.bor suffix.(i + 1) (Cube.to_truth nvars arr.(i))
  done;
  (arr, suffix)

(* IRREDUNDANT: drop any cube whose minterms are covered by the rest + DC.
   Sequential semantics with running prefix / precomputed suffix unions. *)
let irredundant nvars dc cubes =
  let arr, suffix = suffix_unions nvars dc cubes in
  let kept = ref [] in
  let kept_union = ref (Truth.const0 nvars) in
  Array.iteri
    (fun i c ->
      let others = Truth.bor !kept_union suffix.(i + 1) in
      let ct = Cube.to_truth nvars c in
      if not (Truth.is_const0 (Truth.bdiff ct others)) then begin
        kept := c :: !kept;
        kept_union := Truth.bor !kept_union ct
      end)
    arr;
  List.rev !kept

(* REDUCE: shrink each cube to the supercube of the minterms only it covers
   (its essential part), opening room for the next EXPAND to move. *)
let reduce nvars dc cubes =
  let arr, suffix = suffix_unions nvars dc cubes in
  let kept = ref [] in
  let kept_union = ref (Truth.const0 nvars) in
  Array.iteri
    (fun i c ->
      let others = Truth.bor !kept_union suffix.(i + 1) in
      let essential = Truth.bdiff (Cube.to_truth nvars c) others in
      match supercube_of_truth essential with
      | None -> ()
      | Some c' ->
          kept := c' :: !kept;
          kept_union := Truth.bor !kept_union (Cube.to_truth nvars c'))
    arr;
  List.rev !kept

let minimize ~on ~dc =
  if Truth.num_vars on <> Truth.num_vars dc then
    invalid_arg "Espresso: variable count mismatch";
  if not (Truth.is_const0 (Truth.band on dc)) then
    invalid_arg "Espresso: ON and DC sets overlap";
  let nvars = Truth.num_vars on in
  let off = Truth.bnot (Truth.bor on dc) in
  let start = Isop.compute ~on ~dc in
  let step cubes = expand nvars off cubes |> irredundant nvars dc in
  let rec loop best cubes iters =
    let cubes' = step cubes in
    let candidate = Cover.make nvars cubes' in
    let best = if cost_le candidate best then candidate else best in
    if iters = 0 then best
    else begin
      let reduced = reduce nvars dc cubes' in
      if List.length reduced = List.length cubes'
         && List.for_all2 Cube.equal reduced cubes'
      then best
      else loop best reduced (iters - 1)
    end
  in
  let result = loop start start.Cover.cubes 4 in
  assert (Cover.covers result on);
  assert (Cover.within result (Truth.bor on dc));
  result

let minimize_cover cover ~dc =
  let f = Cover.to_truth cover in
  minimize ~on:(Truth.bdiff f dc) ~dc
