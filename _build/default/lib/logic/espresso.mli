(** Heuristic two-level minimization in the style of Espresso.

    The classical EXPAND / IRREDUNDANT / REDUCE loop, run to a fixed point on
    the cover cost (cube count, then literal count).  Functions are supplied
    as completely tabulated ON/DC truth tables, which keeps every check exact;
    this covers all uses in this repository (resubstitution functions and
    refactoring windows are at most {!Truth.max_vars} inputs wide). *)

val minimize : on:Truth.t -> dc:Truth.t -> Cover.t
(** Returns a cover [f] with [on <= f <= on + dc].  Raises
    [Invalid_argument] if the sets overlap or differ in width. *)

val minimize_cover : Cover.t -> dc:Truth.t -> Cover.t
(** Minimize an existing cover against a DC set (ON-set taken as the cover's
    function minus DC). *)

val cost : Cover.t -> int * int
(** [(num_cubes, num_lits)] — the comparison key used by the loop. *)
