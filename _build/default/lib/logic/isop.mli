(** Irredundant sum-of-products computation (Minato–Morreale).

    Given an incompletely-specified function as an ON-set and a DC-set truth
    table, computes an ISOP cover [f] with [on <= f <= on + dc] in which every
    cube is prime relative to the interval and no cube is redundant. *)

val compute : on:Truth.t -> dc:Truth.t -> Cover.t
(** Raises [Invalid_argument] if the tables disagree on variable count or if
    [on] and [dc] overlap. *)

val compute_interval : lower:Truth.t -> upper:Truth.t -> Cover.t
(** Same with explicit interval bounds, [lower <= upper]. *)
