(** Sums of products: lists of {!Cube.t} over a fixed variable count. *)

type t = { nvars : int; cubes : Cube.t list }

val make : int -> Cube.t list -> t
(** Validates that every literal is within range. *)

val const0 : int -> t
val const1 : int -> t

val num_cubes : t -> int

val num_lits : t -> int
(** Total literal count (the classic two-level cost). *)

val to_truth : t -> Truth.t

val of_minterms : int -> int list -> t

val remove_subsumed : t -> t
(** Drop every cube contained in another single cube of the cover. *)

val covers : t -> Truth.t -> bool
(** [covers c f]: does the cover contain all of [f]'s ON-set? *)

val within : t -> Truth.t -> bool
(** [within c f]: is the cover's function a subset of [f]? *)

val eval_sigs : t -> pos_sigs:Bitvec.t array -> Bitvec.t
(** Word-parallel evaluation over per-variable signature vectors. *)

val eval_minterm : t -> int -> bool

val to_pla_rows : t -> string list
(** One ["1-0 1"]-style row per cube (output column always 1). *)

val pp : Format.formatter -> t -> unit
