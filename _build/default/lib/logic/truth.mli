(** Truth tables over up to 16 variables.

    A truth table represents a completely-specified Boolean function; bit [m]
    is the function value on minterm [m], where bit [i] of [m] is the value of
    variable [i].  Tables are backed by 64-bit words with the conventional
    variable masks, so cofactoring and bulk logic are word-parallel. *)

type t

val max_vars : int
(** 16: ample for cut functions, refactoring windows and resubstitution. *)

val num_vars : t -> int

val num_bits : t -> int
(** [2 ^ num_vars]. *)

val const0 : int -> t
(** [const0 n] is the constant-false function of [n] variables. *)

val const1 : int -> t

val var : int -> int -> t
(** [var n i] is the projection onto variable [i] ([0 <= i < n]). *)

val get : t -> int -> bool
(** Value on a minterm. *)

val set : t -> int -> bool -> t
(** Functional update of one minterm. *)

val of_fun : int -> (int -> bool) -> t
(** [of_fun n f] tabulates [f] over all [2^n] minterms. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t
val bnot : t -> t
val bdiff : t -> t -> t
(** [bdiff a b] is [a AND NOT b]. *)

val is_const0 : t -> bool
val is_const1 : t -> bool

val count_ones : t -> int

val iter_minterms : t -> (int -> unit) -> unit
(** Apply to every ON-set minterm in increasing order. *)

val cofactor0 : t -> int -> t
(** [cofactor0 t i] is [t] with variable [i] fixed to 0 (still [n] vars). *)

val cofactor1 : t -> int -> t

val exists : t -> int -> t
(** Existential quantification: [cofactor0 t i OR cofactor1 t i]. *)

val forall : t -> int -> t

val depends_on : t -> int -> bool
(** True if the function actually depends on variable [i]. *)

val support : t -> int list
(** Indices of all variables the function depends on, increasing. *)

val shrink_to_support : t -> t * int list
(** Re-express over its support only.  Returns the smaller table and the list
    mapping new variable [j] to the original variable [support.(j)]. *)

val expand : t -> into:int -> placement:int array -> t
(** [expand t ~into:n ~placement] re-expresses [t] over [n] variables where
    old variable [i] becomes variable [placement.(i)].  Placements must be
    distinct and within range. *)

val eval : t -> bool array -> bool
(** Evaluate under a point assignment (array length = [num_vars]). *)

val to_hex : t -> string

val pp : Format.formatter -> t -> unit
