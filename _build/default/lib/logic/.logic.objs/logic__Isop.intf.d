lib/logic/isop.mli: Cover Truth
