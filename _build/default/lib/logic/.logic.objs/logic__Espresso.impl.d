lib/logic/espresso.ml: Array Cover Cube Isop List Truth
