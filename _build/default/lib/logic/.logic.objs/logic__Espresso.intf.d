lib/logic/espresso.mli: Cover Truth
