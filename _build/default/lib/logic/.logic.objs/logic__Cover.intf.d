lib/logic/cover.mli: Bitvec Cube Format Truth
