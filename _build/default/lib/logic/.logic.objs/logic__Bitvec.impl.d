lib/logic/bitvec.ml: Array Format Hashtbl Printf Rng Stdlib String
