lib/logic/cube.mli: Bitvec Format Truth
