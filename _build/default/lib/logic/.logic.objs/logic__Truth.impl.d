lib/logic/truth.ml: Array Buffer Format Hashtbl Int64 List Printf Stdlib String
