lib/logic/rng.mli:
