lib/logic/cover.ml: Array Bitvec Cube Format List Truth
