lib/logic/factor.mli: Cover Format
