lib/logic/rng.ml: Int64
