lib/logic/truth.mli: Format
