lib/logic/bitvec.mli: Format Rng
