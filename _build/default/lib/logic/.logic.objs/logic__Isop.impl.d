lib/logic/isop.ml: Cover Cube List Truth
