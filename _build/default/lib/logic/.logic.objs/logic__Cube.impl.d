lib/logic/cube.ml: Array Bitvec Format Stdlib String Truth
