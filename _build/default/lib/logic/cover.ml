type t = { nvars : int; cubes : Cube.t list }

let make nvars cubes =
  if nvars < 0 || nvars > 30 then invalid_arg "Cover.make: bad variable count";
  let all = if nvars = 0 then 0 else (1 lsl nvars) - 1 in
  List.iter
    (fun c ->
      if Cube.vars_mask c land lnot all <> 0 then
        invalid_arg "Cover.make: literal out of range")
    cubes;
  { nvars; cubes }

let const0 nvars = { nvars; cubes = [] }

let const1 nvars = { nvars; cubes = [ Cube.full ] }

let num_cubes t = List.length t.cubes

let num_lits t = List.fold_left (fun acc c -> acc + Cube.num_lits c) 0 t.cubes

let to_truth t =
  List.fold_left
    (fun acc c -> Truth.bor acc (Cube.to_truth t.nvars c))
    (Truth.const0 t.nvars) t.cubes

let of_minterms nvars ms =
  { nvars; cubes = List.map (Cube.of_minterm nvars) ms }

let remove_subsumed t =
  let rec keep acc = function
    | [] -> List.rev acc
    | c :: rest ->
        let subsumed_by other = (not (Cube.equal other c)) && Cube.subsumes other c in
        if List.exists subsumed_by rest || List.exists subsumed_by acc then keep acc rest
        else keep (c :: acc) rest
  in
  { t with cubes = keep [] t.cubes }

let covers t f = Truth.is_const0 (Truth.bdiff f (to_truth t))

let within t f = Truth.is_const0 (Truth.bdiff (to_truth t) f)

let eval_sigs t ~pos_sigs =
  match pos_sigs with
  | [||] ->
      (* A zero-variable cover is a constant; represent over length 0. *)
      Bitvec.create 0
  | _ ->
      let len = Bitvec.length pos_sigs.(0) in
      let acc = Bitvec.create len in
      let tmp = Bitvec.create len in
      List.iter
        (fun c ->
          Cube.eval_sigs c ~pos_sigs tmp;
          Bitvec.logor_inplace acc tmp)
        t.cubes;
      acc

let eval_minterm t m = List.exists (fun c -> Cube.contains_minterm c m) t.cubes

let to_pla_rows t = List.map (fun c -> Cube.to_string t.nvars c ^ " 1") t.cubes

let pp ppf t =
  if t.cubes = [] then Format.pp_print_string ppf "<const0>"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf " + ")
      (fun ppf c ->
        if Cube.num_lits c = 0 then Format.pp_print_string ppf "<const1>"
        else Cube.pp t.nvars ppf c)
      ppf t.cubes
