type expr =
  | Const of bool
  | Lit of int * bool
  | And of expr list
  | Or of expr list

let smart_and = function [] -> Const true | [ e ] -> e | es -> And es

let smart_or = function [] -> Const false | [ e ] -> e | es -> Or es

let cube_expr c =
  let lits = ref [] in
  for v = 29 downto 0 do
    match Cube.phase_of c v with
    | Some phase -> lits := Lit (v, phase) :: !lits
    | None -> ()
  done;
  smart_and !lits

(* Most frequent literal across the cubes, with its occurrence count. *)
let best_literal cubes =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun c ->
      for v = 0 to 29 do
        match Cube.phase_of c v with
        | Some phase ->
            let key = (v, phase) in
            Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
        | None -> ()
      done)
    cubes;
  Hashtbl.fold
    (fun key n acc ->
      match acc with
      | Some (_, best) when best >= n -> acc
      | _ -> Some (key, n))
    counts None

let rec factor_cubes cubes =
  match cubes with
  | [] -> Const false
  | _ when List.exists (fun c -> Cube.num_lits c = 0) cubes -> Const true
  | [ c ] -> cube_expr c
  | _ -> (
      match best_literal cubes with
      | None -> Const true
      | Some (_, 1) -> smart_or (List.map cube_expr cubes)
      | Some ((v, phase), _) ->
          let quotient, remainder =
            List.partition (fun c -> Cube.phase_of c v = Some phase) cubes
          in
          let quotient = List.map (fun c -> Cube.remove_var c v) quotient in
          let divided = smart_and [ Lit (v, phase); factor_cubes quotient ] in
          if remainder = [] then divided
          else smart_or [ divided; factor_cubes remainder ])

let of_cover (c : Cover.t) = factor_cubes c.Cover.cubes

let rec eval e point =
  match e with
  | Const b -> b
  | Lit (v, phase) -> if phase then point.(v) else not point.(v)
  | And es -> List.for_all (fun e -> eval e point) es
  | Or es -> List.exists (fun e -> eval e point) es

let rec and2_cost = function
  | Const _ | Lit _ -> 0
  | And es | Or es ->
      List.fold_left (fun acc e -> acc + and2_cost e) (List.length es - 1) es

let rec num_lits = function
  | Const _ -> 0
  | Lit _ -> 1
  | And es | Or es -> List.fold_left (fun acc e -> acc + num_lits e) 0 es

let rec pp ppf = function
  | Const b -> Format.pp_print_string ppf (if b then "1" else "0")
  | Lit (v, phase) -> Format.fprintf ppf "%sx%d" (if phase then "" else "!") v
  | And es ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ") pp)
        es
  | Or es ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ") pp)
        es
