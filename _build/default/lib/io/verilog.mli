(** Structural Verilog emission for mapped netlists and AIGs (write-only;
    reading Verilog is out of scope). *)

val mapped_to_string : Techmap.Mapped.t -> string
(** One continuous-assign per cell, expression from an ISOP of the cell
    function. *)

val write_mapped : string -> Techmap.Mapped.t -> unit

val graph_to_string : Aig.Graph.t -> string
(** One assign per AND node. *)

val write_graph : string -> Aig.Graph.t -> unit
