(** Graphviz rendering of AIGs (debugging aid; Figure-1-style pictures). *)

val graph_to_string : Aig.Graph.t -> string
(** Dashed edges are complemented. *)

val write_graph : string -> Aig.Graph.t -> unit
