module Graph = Aig.Graph

let graph_to_string g =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n  rankdir=BT;\n" (Graph.name g));
  for i = 0 to Graph.num_pis g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\" shape=triangle];\n" (Graph.pi_node g i)
         (Graph.pi_name g i))
  done;
  Graph.iter_ands g (fun id ->
      Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%d\" shape=circle];\n" id id);
      let edge l =
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d%s;\n" (Graph.node_of l) id
             (if Graph.is_compl l then " [style=dashed]" else ""))
      in
      edge (Graph.fanin0 g id);
      edge (Graph.fanin1 g id));
  Graph.iter_pos g (fun i l ->
      Buffer.add_string buf
        (Printf.sprintf "  po%d [label=\"%s\" shape=invtriangle];\n" i (Graph.po_name g i));
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> po%d%s;\n" (Graph.node_of l) i
           (if Graph.is_compl l then " [style=dashed]" else "")));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_graph path g = Atomic_file.write path (graph_to_string g)
