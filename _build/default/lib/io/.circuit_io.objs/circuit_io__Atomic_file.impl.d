lib/io/atomic_file.ml: Fun Hashtbl Printf Sys
