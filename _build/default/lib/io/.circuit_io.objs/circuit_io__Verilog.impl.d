lib/io/verilog.ml: Aig Array Buffer Fun List Logic Printf String Techmap
