lib/io/verilog.ml: Aig Array Atomic_file Buffer List Logic Printf String Techmap
