lib/io/blif.mli: Aig Techmap
