lib/io/dot.ml: Aig Buffer Fun Printf
