lib/io/dot.ml: Aig Atomic_file Buffer Printf
