lib/io/aiger.ml: Aig Array Atomic_file Buffer List Option Printf String
