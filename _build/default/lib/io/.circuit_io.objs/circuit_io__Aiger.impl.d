lib/io/aiger.ml: Aig Array Buffer Fun List Option Printf String
