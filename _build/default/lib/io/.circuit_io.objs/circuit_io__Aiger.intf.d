lib/io/aiger.mli: Aig
