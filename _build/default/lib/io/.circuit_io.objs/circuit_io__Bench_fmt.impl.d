lib/io/bench_fmt.ml: Aig Atomic_file Buffer Hashtbl List Printf String
