lib/io/bench_fmt.ml: Aig Buffer Fun Hashtbl List Printf String
