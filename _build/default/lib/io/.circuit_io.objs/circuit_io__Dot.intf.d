lib/io/dot.mli: Aig
