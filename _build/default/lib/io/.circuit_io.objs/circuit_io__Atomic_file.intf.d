lib/io/atomic_file.mli:
