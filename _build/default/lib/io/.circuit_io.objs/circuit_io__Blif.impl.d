lib/io/blif.ml: Aig Array Buffer Fun Hashtbl List Logic Printf String Techmap
