lib/io/blif.ml: Aig Array Atomic_file Buffer Hashtbl List Logic Printf String Techmap
