lib/io/verilog.mli: Aig Techmap
