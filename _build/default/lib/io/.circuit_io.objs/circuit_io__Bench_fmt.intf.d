lib/io/bench_fmt.mli: Aig
