(** ISCAS-85 [.bench] format reading and writing.

    Supported gate lines: [AND], [OR], [NAND], [NOR], [XOR], [XNOR], [NOT],
    [BUFF] (any arity where meaningful), plus [INPUT(..)] / [OUTPUT(..)]
    declarations.  Definitions may appear in any order. *)

val graph_to_string : Aig.Graph.t -> string

val write_graph : string -> Aig.Graph.t -> unit

val parse : string -> Aig.Graph.t
(** Raises [Failure] on malformed input or combinational loops. *)

val read : string -> Aig.Graph.t
