module Graph = Aig.Graph

let graph_to_string g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" (Graph.name g));
  for i = 0 to Graph.num_pis g - 1 do
    Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (Graph.pi_name g i))
  done;
  for i = 0 to Graph.num_pos g - 1 do
    Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" (Graph.po_name g i))
  done;
  (* Complemented edges need explicit NOT gates; memoize them. *)
  let inverted = Hashtbl.create 64 in
  let base_name id =
    if Graph.is_const id then "const0"
    else if Graph.is_pi g id then Graph.pi_name g (Graph.pi_index g id)
    else Printf.sprintf "n%d" id
  in
  let used_const = ref false in
  let lit_str l =
    let id = Graph.node_of l in
    if Graph.is_const id then used_const := true;
    if Graph.is_compl l then begin
      match Hashtbl.find_opt inverted id with
      | Some nm -> nm
      | None ->
          let nm = base_name id ^ "_bar" in
          Buffer.add_string buf (Printf.sprintf "%s = NOT(%s)\n" nm (base_name id));
          Hashtbl.replace inverted id nm;
          nm
    end
    else base_name id
  in
  Graph.iter_ands g (fun id ->
      let a = lit_str (Graph.fanin0 g id) and b = lit_str (Graph.fanin1 g id) in
      Buffer.add_string buf (Printf.sprintf "n%d = AND(%s, %s)\n" id a b));
  Graph.iter_pos g (fun i l ->
      Buffer.add_string buf (Printf.sprintf "%s = BUFF(%s)\n" (Graph.po_name g i) (lit_str l)));
  if !used_const then
    (* const0 = x AND NOT x over the first input (bench has no constants). *)
    if Graph.num_pis g > 0 then begin
      let x = Graph.pi_name g 0 in
      Buffer.add_string buf (Printf.sprintf "const0_b = NOT(%s)\n" x);
      Buffer.add_string buf (Printf.sprintf "const0 = AND(%s, const0_b)\n" x)
    end;
  Buffer.contents buf

let write_graph path g = Atomic_file.write path (graph_to_string g)

type def = { op : string; args : string list }

let parse text =
  let lines = String.split_on_char '\n' text in
  let inputs = ref [] and outputs = ref [] in
  let defs : (string, def) Hashtbl.t = Hashtbl.create 256 in
  List.iteri
    (fun lineno line ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let line = String.trim line in
      if line <> "" then begin
        let fail fmt =
          Printf.ksprintf
            (fun s -> failwith (Printf.sprintf "bench:%d: %s" (lineno + 1) s))
            fmt
        in
        let parse_call s =
          (* OP(a, b, ...) *)
          match String.index_opt s '(' with
          | None -> fail "expected a gate call in %S" s
          | Some i ->
              let op = String.trim (String.sub s 0 i) in
              let rest = String.sub s (i + 1) (String.length s - i - 1) in
              let rest =
                match String.rindex_opt rest ')' with
                | Some j -> String.sub rest 0 j
                | None -> fail "missing ')' in %S" s
              in
              let args =
                String.split_on_char ',' rest |> List.map String.trim
                |> List.filter (fun a -> a <> "")
              in
              (String.uppercase_ascii op, args)
        in
        match String.index_opt line '=' with
        | None -> (
            let op, args = parse_call line in
            match (op, args) with
            | "INPUT", [ n ] -> inputs := n :: !inputs
            | "OUTPUT", [ n ] -> outputs := n :: !outputs
            | _ -> fail "unknown declaration %s" op)
        | Some i ->
            let out = String.trim (String.sub line 0 i) in
            let rhs = String.sub line (i + 1) (String.length line - i - 1) in
            let op, args = parse_call rhs in
            if args = [] then fail "gate %s with no operands" op;
            Hashtbl.replace defs out { op; args }
      end)
    lines;
  let inputs = List.rev !inputs and outputs = List.rev !outputs in
  let g = Graph.create ~name:"bench" () in
  let env : (string, Graph.lit) Hashtbl.t = Hashtbl.create 256 in
  List.iter (fun n -> Hashtbl.replace env n (Graph.add_pi ~name:n g)) inputs;
  let building = Hashtbl.create 16 in
  let rec lookup name =
    match Hashtbl.find_opt env name with
    | Some l -> l
    | None ->
        if Hashtbl.mem building name then
          failwith (Printf.sprintf "bench: combinational loop through %s" name);
        Hashtbl.replace building name ();
        let l =
          match Hashtbl.find_opt defs name with
          | None -> failwith (Printf.sprintf "bench: undefined signal %s" name)
          | Some { op; args } -> (
              let lits = List.map lookup args in
              match (op, lits) with
              | "NOT", [ a ] -> Graph.lit_not a
              | "BUFF", [ a ] | "BUF", [ a ] -> a
              | "AND", _ -> Aig.Builder.and_list g lits
              | "NAND", _ -> Graph.lit_not (Aig.Builder.and_list g lits)
              | "OR", _ -> Aig.Builder.or_list g lits
              | "NOR", _ -> Graph.lit_not (Aig.Builder.or_list g lits)
              | "XOR", _ -> Aig.Builder.xor_list g lits
              | "XNOR", _ -> Graph.lit_not (Aig.Builder.xor_list g lits)
              | _ -> failwith (Printf.sprintf "bench: unsupported gate %s" op))
        in
        Hashtbl.remove building name;
        Hashtbl.replace env name l;
        l
  in
  List.iter (fun n -> ignore (Graph.add_po ~name:n g (lookup n))) outputs;
  g

let read path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text
