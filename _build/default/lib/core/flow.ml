module Graph = Aig.Graph
module Bitvec = Logic.Bitvec

type event = {
  iteration : int;
  target : int;
  est_error : float;
  ands_after : int;
  rounds : int;
}

type stop_reason = Budget_exhausted | Stalled | Max_iters | Emptied | Timed_out

type report = {
  input_ands : int;
  output_ands : int;
  applied : int;
  final_est_error : float;
  final_rounds : int;
  runtime_s : float;
  stop_reason : stop_reason;
  events : event list;
}

let log_src = Logs.Src.create "alsrac.flow" ~doc:"ALSRAC flow progress"

module Log = (val Logs.src_log log_src : Logs.LOG)

let optimize (config : Config.t) g =
  match config.resyn with
  | Config.No_resyn -> Graph.compact g
  | Config.Light -> Aig.Resyn.light g
  | Config.Compress2 -> Aig.Resyn.compress2 g

(* Pattern generation honouring the configured input distribution. *)
let gen_patterns rng (config : Config.t) ~npis ~len =
  match config.input_probs with
  | None -> Sim.Patterns.random rng ~npis ~len
  | Some probs -> Sim.Patterns.weighted rng ~probs ~len

(* Evaluation patterns: exhaustive when the input space is small enough and
   the distribution is uniform, Monte-Carlo otherwise. *)
let eval_patterns rng (config : Config.t) npis =
  if
    config.input_probs = None
    && npis <= Sim.Patterns.exhaustive_limit
    && 1 lsl npis <= config.eval_rounds
  then Sim.Patterns.exhaustive ~npis
  else gen_patterns rng config ~npis ~len:config.eval_rounds

let run ~(config : Config.t) g0 =
  let t_start = Sys.time () in
  let rng = Logic.Rng.create config.seed in
  let original = Graph.compact g0 in
  let npis = Graph.num_pis original in
  let eval_pats = eval_patterns (Logic.Rng.split rng) config npis in
  let golden = Sim.Engine.simulate_pos original eval_pats in
  let g = ref (optimize config original) in
  let depth_limit =
    if config.max_depth_growth = infinity then max_int
    else
      int_of_float
        (ceil (config.max_depth_growth *. float_of_int (max 1 (Aig.Topo.depth original))))
  in
  let rounds = ref config.sim_rounds in
  let patience = ref 0 in
  let shrinks_at_floor = ref 0 in
  let applied = ref 0 in
  let iteration = ref 0 in
  let events = ref [] in
  let last_error = ref 0.0 in
  let finished = ref false in
  let stop_reason = ref Max_iters in
  (* Under Compress2, the full pipeline runs every tenth accepted LAC and at
     the end; the cheap sweep+balance runs in between.  This keeps the large
     arithmetic circuits tractable without giving up the final quality. *)
  let accepts_since_full = ref 0 in
  let optimize_step replaced =
    match config.resyn with
    | Config.No_resyn -> Graph.compact replaced
    | Config.Light -> Aig.Resyn.light replaced
    | Config.Compress2 ->
        incr accepts_since_full;
        if !accepts_since_full >= 10 then begin
          accepts_since_full := 0;
          Aig.Resyn.compress2 replaced
        end
        else Aig.Resyn.light replaced
  in
  while
    (not !finished) && !applied < config.max_iters
    && Sys.time () -. t_start < config.max_seconds
  do
    incr iteration;
    let care_pats = gen_patterns rng config ~npis ~len:!rounds in
    let care_sigs = Sim.Engine.simulate !g care_pats in
    let obs =
      if config.use_odc then Some (Errest.Observability.masks !g ~sigs:care_sigs)
      else None
    in
    let lacs = Lac.generate ?obs !g ~config ~sigs:care_sigs ~rounds:!rounds in
    if lacs = [] then begin
      (* Algorithm 3 line 10: only after [t] consecutive empty iterations is
         the care set shrunk; fresh patterns alone may unblock us. *)
      incr patience;
      if !patience >= config.patience then begin
        patience := 0;
        if !rounds > config.min_rounds then
          rounds := max config.min_rounds (int_of_float (float_of_int !rounds *. config.scale))
        else begin
          incr shrinks_at_floor;
          if !shrinks_at_floor > 3 then begin
            stop_reason := Stalled;
            finished := true
          end
        end
      end
    end
    else begin
      let base_sigs = Sim.Engine.simulate !g eval_pats in
      let batch = Errest.Batch.create !g ~metric:config.metric ~golden ~base:base_sigs in
      let scored =
        List.map
          (fun (lac : Lac.t) ->
            let pos_sigs = Array.map (fun d -> base_sigs.(d)) lac.Lac.divisors in
            let new_sig = Logic.Cover.eval_sigs lac.Lac.cover ~pos_sigs in
            let err = Errest.Batch.candidate_error batch ~node:lac.Lac.target ~new_sig in
            (err, lac))
          lacs
      in
      (* Best LAC = smallest induced error, ties broken by estimated gain
         (Algorithm 3 line 6).  The estimate can still be optimistic when
         the factored form re-shares with live logic, so walk the ranking
         and accept the first candidate that actually shrinks the graph. *)
      let ranked =
        List.sort
          (fun (e1, (l1 : Lac.t)) (e2, (l2 : Lac.t)) ->
            let c = compare e1 e2 in
            if c <> 0 then c else compare l2.Lac.gain l1.Lac.gain)
          scored
      in
      let rec try_apply ~skipped = function
        | [] -> `No_progress
        | (err, _) :: _ when err > config.threshold *. config.margin ->
            (* Smallest remaining error exceeds the budget.  If that holds
               for the very best candidate, terminate (Algorithm 3 line 7);
               if we only got here by skipping no-op candidates, let fresh
               patterns try again first. *)
            if skipped then `No_progress else `Over_budget
        | (err, (lac : Lac.t)) :: rest ->
            let replaced =
              Graph.rebuild
                ~replace:(fun id ->
                  if id = lac.Lac.target then Some (Lac.replacement lac) else None)
                !g
            in
            (* Cheap progress check on the raw rebuild; the (expensive)
               re-optimization runs only on accepted candidates and can only
               shrink further. *)
            if
              Graph.num_ands replaced < Graph.num_ands !g
              && Aig.Topo.depth replaced <= depth_limit
              &&
              (* The optimizer itself may deepen (refactor trades depth for
                 area); guard the graph we would actually keep. *)
              (let optimized = optimize_step replaced in
               if Aig.Topo.depth optimized <= depth_limit then begin
                 g := optimized;
                 true
               end
               else false)
            then begin
              incr applied;
              last_error := err;
              events :=
                {
                  iteration = !iteration;
                  target = lac.Lac.target;
                  est_error = err;
                  ands_after = Graph.num_ands !g;
                  rounds = !rounds;
                }
                :: !events;
              Log.debug (fun m ->
                  m "iter %d: applied LAC on node %d, err %.5f, ands %d" !iteration
                    lac.Lac.target err (Graph.num_ands !g));
              `Applied
            end
            else try_apply ~skipped:true rest
      in
      match try_apply ~skipped:false ranked with
      | `Applied ->
          patience := 0;
          if Graph.num_ands !g = 0 then begin
            stop_reason := Emptied;
            finished := true
          end
      | `Over_budget ->
          stop_reason := Budget_exhausted;
          finished := true
      | `No_progress ->
          (* All candidates were no-ops: treat like an empty candidate set
             so the dynamic-N schedule can unblock us. *)
          incr patience;
          if !patience >= config.patience then begin
            patience := 0;
            if !rounds > config.min_rounds then
              rounds :=
                max config.min_rounds (int_of_float (float_of_int !rounds *. config.scale))
            else begin
              incr shrinks_at_floor;
              if !shrinks_at_floor > 3 then begin
                stop_reason := Stalled;
                finished := true
              end
            end
          end
    end
  done;
  if (not !finished) && !applied >= config.max_iters then stop_reason := Max_iters;
  if Sys.time () -. t_start >= config.max_seconds then stop_reason := Timed_out;
  (match config.resyn with
  | Config.Compress2 ->
      let final = Aig.Resyn.compress2 !g in
      if
        Graph.num_ands final < Graph.num_ands !g
        && Aig.Topo.depth final <= depth_limit
      then g := final
  | Config.No_resyn | Config.Light -> ());
  let final_approx = Sim.Engine.simulate_pos !g eval_pats in
  let final_err = Errest.Metrics.measure config.metric ~golden ~approx:final_approx in
  ( !g,
    {
      input_ands = Graph.num_ands original;
      output_ands = Graph.num_ands !g;
      applied = !applied;
      final_est_error = final_err;
      final_rounds = !rounds;
      runtime_s = Sys.time () -. t_start;
      stop_reason = !stop_reason;
      events = List.rev !events;
    } )
