(** The ALSRAC flow (Algorithm 3).

    Iteratively: simulate fresh random care patterns, generate LAC
    candidates, score every candidate with batch error estimation against
    the ORIGINAL circuit, apply the best one if it respects the error
    threshold, re-optimize with traditional synthesis, and dynamically shrink
    the simulation round [N] whenever no candidate exists for [t] consecutive
    iterations. *)

type event = {
  iteration : int;
  target : int;  (** node replaced *)
  est_error : float;  (** sampled error after the change *)
  ands_after : int;  (** AND count after change + re-optimization *)
  rounds : int;  (** care-simulation rounds [N] used this iteration *)
}

type stop_reason =
  | Budget_exhausted  (** best candidate error exceeded the threshold *)
  | Stalled  (** no productive candidate at the minimum simulation round *)
  | Max_iters
  | Emptied  (** the circuit shrank to constants *)
  | Timed_out  (** the [max_seconds] wall-clock budget ran out *)

type report = {
  input_ands : int;
  output_ands : int;
  applied : int;  (** number of accepted LACs *)
  final_est_error : float;  (** error on the flow's evaluation sample *)
  final_rounds : int;  (** value of [N] at exit *)
  runtime_s : float;  (** CPU seconds *)
  stop_reason : stop_reason;
  events : event list;  (** in application order *)
}

val run : config:Config.t -> Aig.Graph.t -> Aig.Graph.t * report
(** Returns the approximate circuit (same PI/PO interface) and the run
    report.  The input graph is not modified. *)
