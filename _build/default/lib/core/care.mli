(** Approximate care sets from logic simulation (Section III-A).

    After simulating [rounds] random PI patterns, the approximate care set of
    node [v] at divisors [g] is the set of value tuples observed across the
    divisor signatures; each tuple is tagged with the value(s) [v] took on
    the rounds producing it. *)

type entry =
  | Unseen  (** tuple never observed: don't-care for the resubstitution *)
  | Value of bool  (** tuple observed with a unique target value *)
  | Conflict  (** tuple observed with both target values: infeasible *)

type t = {
  divisors : int array;
  table : entry array;  (** index = divisor-value tuple, LSB = divisor 0 *)
  care_count : int;  (** observed distinct tuples *)
}

val scan :
  ?mask:Logic.Bitvec.t ->
  sigs:Logic.Bitvec.t array ->
  node:int ->
  divisors:int array ->
  rounds:int ->
  unit ->
  t
(** [sigs] are per-node signatures of at least [rounds] bits (typically from
    {!Sim.Engine.simulate} on the care pattern set).  At most
    {!Logic.Truth.max_vars} divisors.

    [mask] restricts the scan to the rounds whose bit is set: with an
    observability mask (see {!Errest.Observability}) this yields the
    ODC-aware approximate care set — rounds on which the target's value
    cannot reach an output impose no constraint (an extension beyond the
    paper, off by default; see DESIGN.md §5). *)

val care_tuples : t -> int list
(** Observed tuples, ascending. *)
