let tables (care : Care.t) =
  let k = Array.length care.Care.divisors in
  let on = ref (Logic.Truth.const0 k) and dc = ref (Logic.Truth.const0 k) in
  Array.iteri
    (fun tuple entry ->
      match entry with
      | Care.Value true -> on := Logic.Truth.set !on tuple true
      | Care.Value false -> ()
      | Care.Unseen -> dc := Logic.Truth.set !dc tuple true
      | Care.Conflict -> invalid_arg "Resub.tables: infeasible care scan")
    care.Care.table;
  (!on, !dc)

let derive care =
  let on, dc = tables care in
  Logic.Espresso.minimize ~on ~dc

let expr_of_cover = Logic.Factor.of_cover
